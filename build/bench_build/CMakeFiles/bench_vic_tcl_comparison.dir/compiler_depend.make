# Empty compiler generated dependencies file for bench_vic_tcl_comparison.
# This may be replaced when dependencies are built.
