file(REMOVE_RECURSE
  "../bench/bench_vic_tcl_comparison"
  "../bench/bench_vic_tcl_comparison.pdb"
  "CMakeFiles/bench_vic_tcl_comparison.dir/bench_vic_tcl_comparison.cpp.o"
  "CMakeFiles/bench_vic_tcl_comparison.dir/bench_vic_tcl_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vic_tcl_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
