# Empty compiler generated dependencies file for bench_fig7_otsu_images.
# This may be replaced when dependencies are built.
