file(REMOVE_RECURSE
  "../bench/bench_fig7_otsu_images"
  "../bench/bench_fig7_otsu_images.pdb"
  "CMakeFiles/bench_fig7_otsu_images.dir/bench_fig7_otsu_images.cpp.o"
  "CMakeFiles/bench_fig7_otsu_images.dir/bench_fig7_otsu_images.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_otsu_images.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
