# Empty compiler generated dependencies file for bench_ablation_stream_vs_lite.
# This may be replaced when dependencies are built.
