file(REMOVE_RECURSE
  "../bench/bench_ablation_stream_vs_lite"
  "../bench/bench_ablation_stream_vs_lite.pdb"
  "CMakeFiles/bench_ablation_stream_vs_lite.dir/bench_ablation_stream_vs_lite.cpp.o"
  "CMakeFiles/bench_ablation_stream_vs_lite.dir/bench_ablation_stream_vs_lite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stream_vs_lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
