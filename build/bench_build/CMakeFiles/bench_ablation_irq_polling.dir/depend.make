# Empty dependencies file for bench_ablation_irq_polling.
# This may be replaced when dependencies are built.
