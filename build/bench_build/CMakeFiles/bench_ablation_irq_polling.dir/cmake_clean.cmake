file(REMOVE_RECURSE
  "../bench/bench_ablation_irq_polling"
  "../bench/bench_ablation_irq_polling.pdb"
  "CMakeFiles/bench_ablation_irq_polling.dir/bench_ablation_irq_polling.cpp.o"
  "CMakeFiles/bench_ablation_irq_polling.dir/bench_ablation_irq_polling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_irq_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
