# Empty compiler generated dependencies file for bench_fig10_block_designs.
# This may be replaced when dependencies are built.
