file(REMOVE_RECURSE
  "../bench/bench_fig10_block_designs"
  "../bench/bench_fig10_block_designs.pdb"
  "CMakeFiles/bench_fig10_block_designs.dir/bench_fig10_block_designs.cpp.o"
  "CMakeFiles/bench_fig10_block_designs.dir/bench_fig10_block_designs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_block_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
