file(REMOVE_RECURSE
  "../bench/bench_ablation_dma_sharing"
  "../bench/bench_ablation_dma_sharing.pdb"
  "CMakeFiles/bench_ablation_dma_sharing.dir/bench_ablation_dma_sharing.cpp.o"
  "CMakeFiles/bench_ablation_dma_sharing.dir/bench_ablation_dma_sharing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dma_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
