# Empty dependencies file for bench_dse_partitions.
# This may be replaced when dependencies are built.
