file(REMOVE_RECURSE
  "../bench/bench_dse_partitions"
  "../bench/bench_dse_partitions.pdb"
  "CMakeFiles/bench_dse_partitions.dir/bench_dse_partitions.cpp.o"
  "CMakeFiles/bench_dse_partitions.dir/bench_dse_partitions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dse_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
