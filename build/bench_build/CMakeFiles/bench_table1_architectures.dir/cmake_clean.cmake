file(REMOVE_RECURSE
  "../bench/bench_table1_architectures"
  "../bench/bench_table1_architectures.pdb"
  "CMakeFiles/bench_table1_architectures.dir/bench_table1_architectures.cpp.o"
  "CMakeFiles/bench_table1_architectures.dir/bench_table1_architectures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
