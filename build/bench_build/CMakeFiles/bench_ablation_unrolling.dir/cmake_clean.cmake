file(REMOVE_RECURSE
  "../bench/bench_ablation_unrolling"
  "../bench/bench_ablation_unrolling.pdb"
  "CMakeFiles/bench_ablation_unrolling.dir/bench_ablation_unrolling.cpp.o"
  "CMakeFiles/bench_ablation_unrolling.dir/bench_ablation_unrolling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unrolling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
