file(REMOVE_RECURSE
  "CMakeFiles/dsl_from_file.dir/dsl_from_file.cpp.o"
  "CMakeFiles/dsl_from_file.dir/dsl_from_file.cpp.o.d"
  "dsl_from_file"
  "dsl_from_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_from_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
