# Empty dependencies file for dsl_from_file.
# This may be replaced when dependencies are built.
