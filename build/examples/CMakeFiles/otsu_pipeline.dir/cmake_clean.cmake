file(REMOVE_RECURSE
  "CMakeFiles/otsu_pipeline.dir/otsu_pipeline.cpp.o"
  "CMakeFiles/otsu_pipeline.dir/otsu_pipeline.cpp.o.d"
  "otsu_pipeline"
  "otsu_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otsu_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
