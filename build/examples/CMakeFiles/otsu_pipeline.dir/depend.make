# Empty dependencies file for otsu_pipeline.
# This may be replaced when dependencies are built.
