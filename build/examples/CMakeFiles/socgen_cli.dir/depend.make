# Empty dependencies file for socgen_cli.
# This may be replaced when dependencies are built.
