file(REMOVE_RECURSE
  "CMakeFiles/socgen_cli.dir/socgen_cli.cpp.o"
  "CMakeFiles/socgen_cli.dir/socgen_cli.cpp.o.d"
  "socgen_cli"
  "socgen_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socgen_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
