file(REMOVE_RECURSE
  "CMakeFiles/test_sw.dir/test_sw.cpp.o"
  "CMakeFiles/test_sw.dir/test_sw.cpp.o.d"
  "test_sw"
  "test_sw.pdb"
  "test_sw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
