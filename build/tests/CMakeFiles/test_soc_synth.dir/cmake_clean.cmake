file(REMOVE_RECURSE
  "CMakeFiles/test_soc_synth.dir/test_soc_synth.cpp.o"
  "CMakeFiles/test_soc_synth.dir/test_soc_synth.cpp.o.d"
  "test_soc_synth"
  "test_soc_synth.pdb"
  "test_soc_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soc_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
