# Empty dependencies file for test_soc_synth.
# This may be replaced when dependencies are built.
