file(REMOVE_RECURSE
  "CMakeFiles/test_soc_runtime.dir/test_soc_runtime.cpp.o"
  "CMakeFiles/test_soc_runtime.dir/test_soc_runtime.cpp.o.d"
  "test_soc_runtime"
  "test_soc_runtime.pdb"
  "test_soc_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
