file(REMOVE_RECURSE
  "CMakeFiles/test_core_htg.dir/test_core_htg.cpp.o"
  "CMakeFiles/test_core_htg.dir/test_core_htg.cpp.o.d"
  "test_core_htg"
  "test_core_htg.pdb"
  "test_core_htg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_htg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
