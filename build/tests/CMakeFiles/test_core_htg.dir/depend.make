# Empty dependencies file for test_core_htg.
# This may be replaced when dependencies are built.
