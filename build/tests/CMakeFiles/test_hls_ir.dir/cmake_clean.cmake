file(REMOVE_RECURSE
  "CMakeFiles/test_hls_ir.dir/test_hls_ir.cpp.o"
  "CMakeFiles/test_hls_ir.dir/test_hls_ir.cpp.o.d"
  "test_hls_ir"
  "test_hls_ir.pdb"
  "test_hls_ir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
