# Empty compiler generated dependencies file for test_hls_ir.
# This may be replaced when dependencies are built.
