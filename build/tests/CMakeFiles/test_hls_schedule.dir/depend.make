# Empty dependencies file for test_hls_schedule.
# This may be replaced when dependencies are built.
