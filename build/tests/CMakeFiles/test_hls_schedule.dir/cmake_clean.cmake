file(REMOVE_RECURSE
  "CMakeFiles/test_hls_schedule.dir/test_hls_schedule.cpp.o"
  "CMakeFiles/test_hls_schedule.dir/test_hls_schedule.cpp.o.d"
  "test_hls_schedule"
  "test_hls_schedule.pdb"
  "test_hls_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
