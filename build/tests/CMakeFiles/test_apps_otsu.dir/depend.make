# Empty dependencies file for test_apps_otsu.
# This may be replaced when dependencies are built.
