file(REMOVE_RECURSE
  "CMakeFiles/test_apps_otsu.dir/test_apps_otsu.cpp.o"
  "CMakeFiles/test_apps_otsu.dir/test_apps_otsu.cpp.o.d"
  "test_apps_otsu"
  "test_apps_otsu.pdb"
  "test_apps_otsu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_otsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
