file(REMOVE_RECURSE
  "CMakeFiles/test_hls_vm.dir/test_hls_vm.cpp.o"
  "CMakeFiles/test_hls_vm.dir/test_hls_vm.cpp.o.d"
  "test_hls_vm"
  "test_hls_vm.pdb"
  "test_hls_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
