# Empty compiler generated dependencies file for test_hls_vm.
# This may be replaced when dependencies are built.
