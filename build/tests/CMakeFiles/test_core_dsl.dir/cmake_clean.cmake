file(REMOVE_RECURSE
  "CMakeFiles/test_core_dsl.dir/test_core_dsl.cpp.o"
  "CMakeFiles/test_core_dsl.dir/test_core_dsl.cpp.o.d"
  "test_core_dsl"
  "test_core_dsl.pdb"
  "test_core_dsl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
