# Empty dependencies file for test_soc_bitstream.
# This may be replaced when dependencies are built.
