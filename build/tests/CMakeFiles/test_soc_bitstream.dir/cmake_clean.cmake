file(REMOVE_RECURSE
  "CMakeFiles/test_soc_bitstream.dir/test_soc_bitstream.cpp.o"
  "CMakeFiles/test_soc_bitstream.dir/test_soc_bitstream.cpp.o.d"
  "test_soc_bitstream"
  "test_soc_bitstream.pdb"
  "test_soc_bitstream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soc_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
