# Empty dependencies file for test_rtl_netlist.
# This may be replaced when dependencies are built.
