file(REMOVE_RECURSE
  "CMakeFiles/test_rtl_netlist.dir/test_rtl_netlist.cpp.o"
  "CMakeFiles/test_rtl_netlist.dir/test_rtl_netlist.cpp.o.d"
  "test_rtl_netlist"
  "test_rtl_netlist.pdb"
  "test_rtl_netlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
