file(REMOVE_RECURSE
  "CMakeFiles/test_rtl_verilog.dir/test_rtl_verilog.cpp.o"
  "CMakeFiles/test_rtl_verilog.dir/test_rtl_verilog.cpp.o.d"
  "test_rtl_verilog"
  "test_rtl_verilog.pdb"
  "test_rtl_verilog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
