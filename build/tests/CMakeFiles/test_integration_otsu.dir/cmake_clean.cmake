file(REMOVE_RECURSE
  "CMakeFiles/test_integration_otsu.dir/test_integration_otsu.cpp.o"
  "CMakeFiles/test_integration_otsu.dir/test_integration_otsu.cpp.o.d"
  "test_integration_otsu"
  "test_integration_otsu.pdb"
  "test_integration_otsu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_otsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
