# Empty dependencies file for test_integration_otsu.
# This may be replaced when dependencies are built.
