# Empty dependencies file for test_rtl_sim.
# This may be replaced when dependencies are built.
