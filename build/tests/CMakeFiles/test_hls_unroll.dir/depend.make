# Empty dependencies file for test_hls_unroll.
# This may be replaced when dependencies are built.
