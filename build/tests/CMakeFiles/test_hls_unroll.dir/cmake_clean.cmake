file(REMOVE_RECURSE
  "CMakeFiles/test_hls_unroll.dir/test_hls_unroll.cpp.o"
  "CMakeFiles/test_hls_unroll.dir/test_hls_unroll.cpp.o.d"
  "test_hls_unroll"
  "test_hls_unroll.pdb"
  "test_hls_unroll[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
