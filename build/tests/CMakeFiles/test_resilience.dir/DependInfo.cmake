
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_resilience.cpp" "tests/CMakeFiles/test_resilience.dir/test_resilience.cpp.o" "gcc" "tests/CMakeFiles/test_resilience.dir/test_resilience.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/socgen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
