file(REMOVE_RECURSE
  "CMakeFiles/test_hls_codegen.dir/test_hls_codegen.cpp.o"
  "CMakeFiles/test_hls_codegen.dir/test_hls_codegen.cpp.o.d"
  "test_hls_codegen"
  "test_hls_codegen.pdb"
  "test_hls_codegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
