file(REMOVE_RECURSE
  "CMakeFiles/test_soc_design.dir/test_soc_design.cpp.o"
  "CMakeFiles/test_soc_design.dir/test_soc_design.cpp.o.d"
  "test_soc_design"
  "test_soc_design.pdb"
  "test_soc_design[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soc_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
