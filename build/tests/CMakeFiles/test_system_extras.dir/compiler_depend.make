# Empty compiler generated dependencies file for test_system_extras.
# This may be replaced when dependencies are built.
