file(REMOVE_RECURSE
  "CMakeFiles/test_system_extras.dir/test_system_extras.cpp.o"
  "CMakeFiles/test_system_extras.dir/test_system_extras.cpp.o.d"
  "test_system_extras"
  "test_system_extras.pdb"
  "test_system_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
