file(REMOVE_RECURSE
  "CMakeFiles/test_rtl_vhdl.dir/test_rtl_vhdl.cpp.o"
  "CMakeFiles/test_rtl_vhdl.dir/test_rtl_vhdl.cpp.o.d"
  "test_rtl_vhdl"
  "test_rtl_vhdl.pdb"
  "test_rtl_vhdl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl_vhdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
