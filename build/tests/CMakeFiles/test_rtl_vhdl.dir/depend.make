# Empty dependencies file for test_rtl_vhdl.
# This may be replaced when dependencies are built.
