file(REMOVE_RECURSE
  "CMakeFiles/test_core_parser.dir/test_core_parser.cpp.o"
  "CMakeFiles/test_core_parser.dir/test_core_parser.cpp.o.d"
  "test_core_parser"
  "test_core_parser.pdb"
  "test_core_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
