file(REMOVE_RECURSE
  "CMakeFiles/test_hls_optimize.dir/test_hls_optimize.cpp.o"
  "CMakeFiles/test_hls_optimize.dir/test_hls_optimize.cpp.o.d"
  "test_hls_optimize"
  "test_hls_optimize.pdb"
  "test_hls_optimize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
