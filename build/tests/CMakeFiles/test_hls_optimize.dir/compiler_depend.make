# Empty compiler generated dependencies file for test_hls_optimize.
# This may be replaced when dependencies are built.
