file(REMOVE_RECURSE
  "CMakeFiles/test_apps_image.dir/test_apps_image.cpp.o"
  "CMakeFiles/test_apps_image.dir/test_apps_image.cpp.o.d"
  "test_apps_image"
  "test_apps_image.pdb"
  "test_apps_image[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
