# Empty dependencies file for test_apps_image.
# This may be replaced when dependencies are built.
