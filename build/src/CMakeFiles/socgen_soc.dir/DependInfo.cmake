
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/socgen/soc/accelerator.cpp" "src/CMakeFiles/socgen_soc.dir/socgen/soc/accelerator.cpp.o" "gcc" "src/CMakeFiles/socgen_soc.dir/socgen/soc/accelerator.cpp.o.d"
  "/root/repo/src/socgen/soc/bitstream.cpp" "src/CMakeFiles/socgen_soc.dir/socgen/soc/bitstream.cpp.o" "gcc" "src/CMakeFiles/socgen_soc.dir/socgen/soc/bitstream.cpp.o.d"
  "/root/repo/src/socgen/soc/block_design.cpp" "src/CMakeFiles/socgen_soc.dir/socgen/soc/block_design.cpp.o" "gcc" "src/CMakeFiles/socgen_soc.dir/socgen/soc/block_design.cpp.o.d"
  "/root/repo/src/socgen/soc/device.cpp" "src/CMakeFiles/socgen_soc.dir/socgen/soc/device.cpp.o" "gcc" "src/CMakeFiles/socgen_soc.dir/socgen/soc/device.cpp.o.d"
  "/root/repo/src/socgen/soc/dma.cpp" "src/CMakeFiles/socgen_soc.dir/socgen/soc/dma.cpp.o" "gcc" "src/CMakeFiles/socgen_soc.dir/socgen/soc/dma.cpp.o.d"
  "/root/repo/src/socgen/soc/interconnect.cpp" "src/CMakeFiles/socgen_soc.dir/socgen/soc/interconnect.cpp.o" "gcc" "src/CMakeFiles/socgen_soc.dir/socgen/soc/interconnect.cpp.o.d"
  "/root/repo/src/socgen/soc/memory.cpp" "src/CMakeFiles/socgen_soc.dir/socgen/soc/memory.cpp.o" "gcc" "src/CMakeFiles/socgen_soc.dir/socgen/soc/memory.cpp.o.d"
  "/root/repo/src/socgen/soc/synthesis.cpp" "src/CMakeFiles/socgen_soc.dir/socgen/soc/synthesis.cpp.o" "gcc" "src/CMakeFiles/socgen_soc.dir/socgen/soc/synthesis.cpp.o.d"
  "/root/repo/src/socgen/soc/system_sim.cpp" "src/CMakeFiles/socgen_soc.dir/socgen/soc/system_sim.cpp.o" "gcc" "src/CMakeFiles/socgen_soc.dir/socgen/soc/system_sim.cpp.o.d"
  "/root/repo/src/socgen/soc/tcl.cpp" "src/CMakeFiles/socgen_soc.dir/socgen/soc/tcl.cpp.o" "gcc" "src/CMakeFiles/socgen_soc.dir/socgen/soc/tcl.cpp.o.d"
  "/root/repo/src/socgen/soc/zynq_ps.cpp" "src/CMakeFiles/socgen_soc.dir/socgen/soc/zynq_ps.cpp.o" "gcc" "src/CMakeFiles/socgen_soc.dir/socgen/soc/zynq_ps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/socgen_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
