# Empty dependencies file for socgen_soc.
# This may be replaced when dependencies are built.
