file(REMOVE_RECURSE
  "libsocgen_soc.a"
)
