file(REMOVE_RECURSE
  "CMakeFiles/socgen_soc.dir/socgen/soc/accelerator.cpp.o"
  "CMakeFiles/socgen_soc.dir/socgen/soc/accelerator.cpp.o.d"
  "CMakeFiles/socgen_soc.dir/socgen/soc/bitstream.cpp.o"
  "CMakeFiles/socgen_soc.dir/socgen/soc/bitstream.cpp.o.d"
  "CMakeFiles/socgen_soc.dir/socgen/soc/block_design.cpp.o"
  "CMakeFiles/socgen_soc.dir/socgen/soc/block_design.cpp.o.d"
  "CMakeFiles/socgen_soc.dir/socgen/soc/device.cpp.o"
  "CMakeFiles/socgen_soc.dir/socgen/soc/device.cpp.o.d"
  "CMakeFiles/socgen_soc.dir/socgen/soc/dma.cpp.o"
  "CMakeFiles/socgen_soc.dir/socgen/soc/dma.cpp.o.d"
  "CMakeFiles/socgen_soc.dir/socgen/soc/interconnect.cpp.o"
  "CMakeFiles/socgen_soc.dir/socgen/soc/interconnect.cpp.o.d"
  "CMakeFiles/socgen_soc.dir/socgen/soc/memory.cpp.o"
  "CMakeFiles/socgen_soc.dir/socgen/soc/memory.cpp.o.d"
  "CMakeFiles/socgen_soc.dir/socgen/soc/synthesis.cpp.o"
  "CMakeFiles/socgen_soc.dir/socgen/soc/synthesis.cpp.o.d"
  "CMakeFiles/socgen_soc.dir/socgen/soc/system_sim.cpp.o"
  "CMakeFiles/socgen_soc.dir/socgen/soc/system_sim.cpp.o.d"
  "CMakeFiles/socgen_soc.dir/socgen/soc/tcl.cpp.o"
  "CMakeFiles/socgen_soc.dir/socgen/soc/tcl.cpp.o.d"
  "CMakeFiles/socgen_soc.dir/socgen/soc/zynq_ps.cpp.o"
  "CMakeFiles/socgen_soc.dir/socgen/soc/zynq_ps.cpp.o.d"
  "libsocgen_soc.a"
  "libsocgen_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socgen_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
