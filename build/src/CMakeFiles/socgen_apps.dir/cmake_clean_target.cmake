file(REMOVE_RECURSE
  "libsocgen_apps.a"
)
