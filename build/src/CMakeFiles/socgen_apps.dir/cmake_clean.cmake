file(REMOVE_RECURSE
  "CMakeFiles/socgen_apps.dir/socgen/apps/image.cpp.o"
  "CMakeFiles/socgen_apps.dir/socgen/apps/image.cpp.o.d"
  "CMakeFiles/socgen_apps.dir/socgen/apps/kernels.cpp.o"
  "CMakeFiles/socgen_apps.dir/socgen/apps/kernels.cpp.o.d"
  "CMakeFiles/socgen_apps.dir/socgen/apps/otsu.cpp.o"
  "CMakeFiles/socgen_apps.dir/socgen/apps/otsu.cpp.o.d"
  "CMakeFiles/socgen_apps.dir/socgen/apps/otsu_project.cpp.o"
  "CMakeFiles/socgen_apps.dir/socgen/apps/otsu_project.cpp.o.d"
  "libsocgen_apps.a"
  "libsocgen_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socgen_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
