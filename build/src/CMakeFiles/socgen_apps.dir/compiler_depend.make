# Empty compiler generated dependencies file for socgen_apps.
# This may be replaced when dependencies are built.
