# Empty compiler generated dependencies file for socgen_common.
# This may be replaced when dependencies are built.
