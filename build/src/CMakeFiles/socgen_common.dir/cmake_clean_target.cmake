file(REMOVE_RECURSE
  "libsocgen_common.a"
)
