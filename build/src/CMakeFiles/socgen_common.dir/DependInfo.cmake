
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/socgen/common/error.cpp" "src/CMakeFiles/socgen_common.dir/socgen/common/error.cpp.o" "gcc" "src/CMakeFiles/socgen_common.dir/socgen/common/error.cpp.o.d"
  "/root/repo/src/socgen/common/log.cpp" "src/CMakeFiles/socgen_common.dir/socgen/common/log.cpp.o" "gcc" "src/CMakeFiles/socgen_common.dir/socgen/common/log.cpp.o.d"
  "/root/repo/src/socgen/common/stopwatch.cpp" "src/CMakeFiles/socgen_common.dir/socgen/common/stopwatch.cpp.o" "gcc" "src/CMakeFiles/socgen_common.dir/socgen/common/stopwatch.cpp.o.d"
  "/root/repo/src/socgen/common/strings.cpp" "src/CMakeFiles/socgen_common.dir/socgen/common/strings.cpp.o" "gcc" "src/CMakeFiles/socgen_common.dir/socgen/common/strings.cpp.o.d"
  "/root/repo/src/socgen/common/textfile.cpp" "src/CMakeFiles/socgen_common.dir/socgen/common/textfile.cpp.o" "gcc" "src/CMakeFiles/socgen_common.dir/socgen/common/textfile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
