file(REMOVE_RECURSE
  "CMakeFiles/socgen_common.dir/socgen/common/error.cpp.o"
  "CMakeFiles/socgen_common.dir/socgen/common/error.cpp.o.d"
  "CMakeFiles/socgen_common.dir/socgen/common/log.cpp.o"
  "CMakeFiles/socgen_common.dir/socgen/common/log.cpp.o.d"
  "CMakeFiles/socgen_common.dir/socgen/common/stopwatch.cpp.o"
  "CMakeFiles/socgen_common.dir/socgen/common/stopwatch.cpp.o.d"
  "CMakeFiles/socgen_common.dir/socgen/common/strings.cpp.o"
  "CMakeFiles/socgen_common.dir/socgen/common/strings.cpp.o.d"
  "CMakeFiles/socgen_common.dir/socgen/common/textfile.cpp.o"
  "CMakeFiles/socgen_common.dir/socgen/common/textfile.cpp.o.d"
  "libsocgen_common.a"
  "libsocgen_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socgen_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
