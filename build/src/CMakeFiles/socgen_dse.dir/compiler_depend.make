# Empty compiler generated dependencies file for socgen_dse.
# This may be replaced when dependencies are built.
