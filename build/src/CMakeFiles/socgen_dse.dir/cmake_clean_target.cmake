file(REMOVE_RECURSE
  "libsocgen_dse.a"
)
