file(REMOVE_RECURSE
  "CMakeFiles/socgen_dse.dir/socgen/dse/explorer.cpp.o"
  "CMakeFiles/socgen_dse.dir/socgen/dse/explorer.cpp.o.d"
  "libsocgen_dse.a"
  "libsocgen_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socgen_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
