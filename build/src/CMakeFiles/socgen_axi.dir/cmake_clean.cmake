file(REMOVE_RECURSE
  "CMakeFiles/socgen_axi.dir/socgen/axi/lite.cpp.o"
  "CMakeFiles/socgen_axi.dir/socgen/axi/lite.cpp.o.d"
  "CMakeFiles/socgen_axi.dir/socgen/axi/monitor.cpp.o"
  "CMakeFiles/socgen_axi.dir/socgen/axi/monitor.cpp.o.d"
  "CMakeFiles/socgen_axi.dir/socgen/axi/stream.cpp.o"
  "CMakeFiles/socgen_axi.dir/socgen/axi/stream.cpp.o.d"
  "libsocgen_axi.a"
  "libsocgen_axi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socgen_axi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
