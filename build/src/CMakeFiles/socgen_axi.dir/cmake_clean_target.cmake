file(REMOVE_RECURSE
  "libsocgen_axi.a"
)
