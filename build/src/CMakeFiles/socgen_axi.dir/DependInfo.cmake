
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/socgen/axi/lite.cpp" "src/CMakeFiles/socgen_axi.dir/socgen/axi/lite.cpp.o" "gcc" "src/CMakeFiles/socgen_axi.dir/socgen/axi/lite.cpp.o.d"
  "/root/repo/src/socgen/axi/monitor.cpp" "src/CMakeFiles/socgen_axi.dir/socgen/axi/monitor.cpp.o" "gcc" "src/CMakeFiles/socgen_axi.dir/socgen/axi/monitor.cpp.o.d"
  "/root/repo/src/socgen/axi/stream.cpp" "src/CMakeFiles/socgen_axi.dir/socgen/axi/stream.cpp.o" "gcc" "src/CMakeFiles/socgen_axi.dir/socgen/axi/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/socgen_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
