# Empty dependencies file for socgen_axi.
# This may be replaced when dependencies are built.
