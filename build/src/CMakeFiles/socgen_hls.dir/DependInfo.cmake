
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/socgen/hls/binding.cpp" "src/CMakeFiles/socgen_hls.dir/socgen/hls/binding.cpp.o" "gcc" "src/CMakeFiles/socgen_hls.dir/socgen/hls/binding.cpp.o.d"
  "/root/repo/src/socgen/hls/bytecode.cpp" "src/CMakeFiles/socgen_hls.dir/socgen/hls/bytecode.cpp.o" "gcc" "src/CMakeFiles/socgen_hls.dir/socgen/hls/bytecode.cpp.o.d"
  "/root/repo/src/socgen/hls/codegen.cpp" "src/CMakeFiles/socgen_hls.dir/socgen/hls/codegen.cpp.o" "gcc" "src/CMakeFiles/socgen_hls.dir/socgen/hls/codegen.cpp.o.d"
  "/root/repo/src/socgen/hls/dfg.cpp" "src/CMakeFiles/socgen_hls.dir/socgen/hls/dfg.cpp.o" "gcc" "src/CMakeFiles/socgen_hls.dir/socgen/hls/dfg.cpp.o.d"
  "/root/repo/src/socgen/hls/directives.cpp" "src/CMakeFiles/socgen_hls.dir/socgen/hls/directives.cpp.o" "gcc" "src/CMakeFiles/socgen_hls.dir/socgen/hls/directives.cpp.o.d"
  "/root/repo/src/socgen/hls/engine.cpp" "src/CMakeFiles/socgen_hls.dir/socgen/hls/engine.cpp.o" "gcc" "src/CMakeFiles/socgen_hls.dir/socgen/hls/engine.cpp.o.d"
  "/root/repo/src/socgen/hls/interpreter.cpp" "src/CMakeFiles/socgen_hls.dir/socgen/hls/interpreter.cpp.o" "gcc" "src/CMakeFiles/socgen_hls.dir/socgen/hls/interpreter.cpp.o.d"
  "/root/repo/src/socgen/hls/ir.cpp" "src/CMakeFiles/socgen_hls.dir/socgen/hls/ir.cpp.o" "gcc" "src/CMakeFiles/socgen_hls.dir/socgen/hls/ir.cpp.o.d"
  "/root/repo/src/socgen/hls/optimize.cpp" "src/CMakeFiles/socgen_hls.dir/socgen/hls/optimize.cpp.o" "gcc" "src/CMakeFiles/socgen_hls.dir/socgen/hls/optimize.cpp.o.d"
  "/root/repo/src/socgen/hls/resources.cpp" "src/CMakeFiles/socgen_hls.dir/socgen/hls/resources.cpp.o" "gcc" "src/CMakeFiles/socgen_hls.dir/socgen/hls/resources.cpp.o.d"
  "/root/repo/src/socgen/hls/schedule.cpp" "src/CMakeFiles/socgen_hls.dir/socgen/hls/schedule.cpp.o" "gcc" "src/CMakeFiles/socgen_hls.dir/socgen/hls/schedule.cpp.o.d"
  "/root/repo/src/socgen/hls/unroll.cpp" "src/CMakeFiles/socgen_hls.dir/socgen/hls/unroll.cpp.o" "gcc" "src/CMakeFiles/socgen_hls.dir/socgen/hls/unroll.cpp.o.d"
  "/root/repo/src/socgen/hls/verify.cpp" "src/CMakeFiles/socgen_hls.dir/socgen/hls/verify.cpp.o" "gcc" "src/CMakeFiles/socgen_hls.dir/socgen/hls/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/socgen_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
