file(REMOVE_RECURSE
  "libsocgen_hls.a"
)
