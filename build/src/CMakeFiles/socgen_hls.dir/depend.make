# Empty dependencies file for socgen_hls.
# This may be replaced when dependencies are built.
