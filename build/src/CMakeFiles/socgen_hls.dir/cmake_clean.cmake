file(REMOVE_RECURSE
  "CMakeFiles/socgen_hls.dir/socgen/hls/binding.cpp.o"
  "CMakeFiles/socgen_hls.dir/socgen/hls/binding.cpp.o.d"
  "CMakeFiles/socgen_hls.dir/socgen/hls/bytecode.cpp.o"
  "CMakeFiles/socgen_hls.dir/socgen/hls/bytecode.cpp.o.d"
  "CMakeFiles/socgen_hls.dir/socgen/hls/codegen.cpp.o"
  "CMakeFiles/socgen_hls.dir/socgen/hls/codegen.cpp.o.d"
  "CMakeFiles/socgen_hls.dir/socgen/hls/dfg.cpp.o"
  "CMakeFiles/socgen_hls.dir/socgen/hls/dfg.cpp.o.d"
  "CMakeFiles/socgen_hls.dir/socgen/hls/directives.cpp.o"
  "CMakeFiles/socgen_hls.dir/socgen/hls/directives.cpp.o.d"
  "CMakeFiles/socgen_hls.dir/socgen/hls/engine.cpp.o"
  "CMakeFiles/socgen_hls.dir/socgen/hls/engine.cpp.o.d"
  "CMakeFiles/socgen_hls.dir/socgen/hls/interpreter.cpp.o"
  "CMakeFiles/socgen_hls.dir/socgen/hls/interpreter.cpp.o.d"
  "CMakeFiles/socgen_hls.dir/socgen/hls/ir.cpp.o"
  "CMakeFiles/socgen_hls.dir/socgen/hls/ir.cpp.o.d"
  "CMakeFiles/socgen_hls.dir/socgen/hls/optimize.cpp.o"
  "CMakeFiles/socgen_hls.dir/socgen/hls/optimize.cpp.o.d"
  "CMakeFiles/socgen_hls.dir/socgen/hls/resources.cpp.o"
  "CMakeFiles/socgen_hls.dir/socgen/hls/resources.cpp.o.d"
  "CMakeFiles/socgen_hls.dir/socgen/hls/schedule.cpp.o"
  "CMakeFiles/socgen_hls.dir/socgen/hls/schedule.cpp.o.d"
  "CMakeFiles/socgen_hls.dir/socgen/hls/unroll.cpp.o"
  "CMakeFiles/socgen_hls.dir/socgen/hls/unroll.cpp.o.d"
  "CMakeFiles/socgen_hls.dir/socgen/hls/verify.cpp.o"
  "CMakeFiles/socgen_hls.dir/socgen/hls/verify.cpp.o.d"
  "libsocgen_hls.a"
  "libsocgen_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socgen_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
