file(REMOVE_RECURSE
  "CMakeFiles/socgen_core.dir/socgen/core/dsl.cpp.o"
  "CMakeFiles/socgen_core.dir/socgen/core/dsl.cpp.o.d"
  "CMakeFiles/socgen_core.dir/socgen/core/flow.cpp.o"
  "CMakeFiles/socgen_core.dir/socgen/core/flow.cpp.o.d"
  "CMakeFiles/socgen_core.dir/socgen/core/htg.cpp.o"
  "CMakeFiles/socgen_core.dir/socgen/core/htg.cpp.o.d"
  "CMakeFiles/socgen_core.dir/socgen/core/lexer.cpp.o"
  "CMakeFiles/socgen_core.dir/socgen/core/lexer.cpp.o.d"
  "CMakeFiles/socgen_core.dir/socgen/core/parser.cpp.o"
  "CMakeFiles/socgen_core.dir/socgen/core/parser.cpp.o.d"
  "CMakeFiles/socgen_core.dir/socgen/core/project.cpp.o"
  "CMakeFiles/socgen_core.dir/socgen/core/project.cpp.o.d"
  "CMakeFiles/socgen_core.dir/socgen/core/report.cpp.o"
  "CMakeFiles/socgen_core.dir/socgen/core/report.cpp.o.d"
  "libsocgen_core.a"
  "libsocgen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socgen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
