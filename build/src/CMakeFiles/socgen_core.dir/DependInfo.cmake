
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/socgen/core/dsl.cpp" "src/CMakeFiles/socgen_core.dir/socgen/core/dsl.cpp.o" "gcc" "src/CMakeFiles/socgen_core.dir/socgen/core/dsl.cpp.o.d"
  "/root/repo/src/socgen/core/flow.cpp" "src/CMakeFiles/socgen_core.dir/socgen/core/flow.cpp.o" "gcc" "src/CMakeFiles/socgen_core.dir/socgen/core/flow.cpp.o.d"
  "/root/repo/src/socgen/core/htg.cpp" "src/CMakeFiles/socgen_core.dir/socgen/core/htg.cpp.o" "gcc" "src/CMakeFiles/socgen_core.dir/socgen/core/htg.cpp.o.d"
  "/root/repo/src/socgen/core/lexer.cpp" "src/CMakeFiles/socgen_core.dir/socgen/core/lexer.cpp.o" "gcc" "src/CMakeFiles/socgen_core.dir/socgen/core/lexer.cpp.o.d"
  "/root/repo/src/socgen/core/parser.cpp" "src/CMakeFiles/socgen_core.dir/socgen/core/parser.cpp.o" "gcc" "src/CMakeFiles/socgen_core.dir/socgen/core/parser.cpp.o.d"
  "/root/repo/src/socgen/core/project.cpp" "src/CMakeFiles/socgen_core.dir/socgen/core/project.cpp.o" "gcc" "src/CMakeFiles/socgen_core.dir/socgen/core/project.cpp.o.d"
  "/root/repo/src/socgen/core/report.cpp" "src/CMakeFiles/socgen_core.dir/socgen/core/report.cpp.o" "gcc" "src/CMakeFiles/socgen_core.dir/socgen/core/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/socgen_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/socgen_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
