file(REMOVE_RECURSE
  "libsocgen_core.a"
)
