# Empty compiler generated dependencies file for socgen_core.
# This may be replaced when dependencies are built.
