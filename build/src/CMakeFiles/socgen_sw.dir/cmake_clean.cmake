file(REMOVE_RECURSE
  "CMakeFiles/socgen_sw.dir/socgen/sw/boot.cpp.o"
  "CMakeFiles/socgen_sw.dir/socgen/sw/boot.cpp.o.d"
  "CMakeFiles/socgen_sw.dir/socgen/sw/devicetree.cpp.o"
  "CMakeFiles/socgen_sw.dir/socgen/sw/devicetree.cpp.o.d"
  "CMakeFiles/socgen_sw.dir/socgen/sw/drivers.cpp.o"
  "CMakeFiles/socgen_sw.dir/socgen/sw/drivers.cpp.o.d"
  "libsocgen_sw.a"
  "libsocgen_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socgen_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
