file(REMOVE_RECURSE
  "libsocgen_sw.a"
)
