# Empty dependencies file for socgen_sw.
# This may be replaced when dependencies are built.
