# Empty compiler generated dependencies file for socgen_sim.
# This may be replaced when dependencies are built.
