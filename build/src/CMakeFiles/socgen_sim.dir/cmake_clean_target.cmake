file(REMOVE_RECURSE
  "libsocgen_sim.a"
)
