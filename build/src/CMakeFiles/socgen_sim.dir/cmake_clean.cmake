file(REMOVE_RECURSE
  "CMakeFiles/socgen_sim.dir/socgen/sim/engine.cpp.o"
  "CMakeFiles/socgen_sim.dir/socgen/sim/engine.cpp.o.d"
  "CMakeFiles/socgen_sim.dir/socgen/sim/fault.cpp.o"
  "CMakeFiles/socgen_sim.dir/socgen/sim/fault.cpp.o.d"
  "libsocgen_sim.a"
  "libsocgen_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socgen_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
