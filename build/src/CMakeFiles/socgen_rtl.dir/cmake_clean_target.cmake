file(REMOVE_RECURSE
  "libsocgen_rtl.a"
)
