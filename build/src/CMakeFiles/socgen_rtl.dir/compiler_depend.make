# Empty compiler generated dependencies file for socgen_rtl.
# This may be replaced when dependencies are built.
