file(REMOVE_RECURSE
  "CMakeFiles/socgen_rtl.dir/socgen/rtl/netlist.cpp.o"
  "CMakeFiles/socgen_rtl.dir/socgen/rtl/netlist.cpp.o.d"
  "CMakeFiles/socgen_rtl.dir/socgen/rtl/netlist_sim.cpp.o"
  "CMakeFiles/socgen_rtl.dir/socgen/rtl/netlist_sim.cpp.o.d"
  "CMakeFiles/socgen_rtl.dir/socgen/rtl/primitives.cpp.o"
  "CMakeFiles/socgen_rtl.dir/socgen/rtl/primitives.cpp.o.d"
  "CMakeFiles/socgen_rtl.dir/socgen/rtl/vcd.cpp.o"
  "CMakeFiles/socgen_rtl.dir/socgen/rtl/vcd.cpp.o.d"
  "CMakeFiles/socgen_rtl.dir/socgen/rtl/verilog.cpp.o"
  "CMakeFiles/socgen_rtl.dir/socgen/rtl/verilog.cpp.o.d"
  "CMakeFiles/socgen_rtl.dir/socgen/rtl/vhdl.cpp.o"
  "CMakeFiles/socgen_rtl.dir/socgen/rtl/vhdl.cpp.o.d"
  "libsocgen_rtl.a"
  "libsocgen_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socgen_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
