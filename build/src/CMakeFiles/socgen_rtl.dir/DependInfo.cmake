
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/socgen/rtl/netlist.cpp" "src/CMakeFiles/socgen_rtl.dir/socgen/rtl/netlist.cpp.o" "gcc" "src/CMakeFiles/socgen_rtl.dir/socgen/rtl/netlist.cpp.o.d"
  "/root/repo/src/socgen/rtl/netlist_sim.cpp" "src/CMakeFiles/socgen_rtl.dir/socgen/rtl/netlist_sim.cpp.o" "gcc" "src/CMakeFiles/socgen_rtl.dir/socgen/rtl/netlist_sim.cpp.o.d"
  "/root/repo/src/socgen/rtl/primitives.cpp" "src/CMakeFiles/socgen_rtl.dir/socgen/rtl/primitives.cpp.o" "gcc" "src/CMakeFiles/socgen_rtl.dir/socgen/rtl/primitives.cpp.o.d"
  "/root/repo/src/socgen/rtl/vcd.cpp" "src/CMakeFiles/socgen_rtl.dir/socgen/rtl/vcd.cpp.o" "gcc" "src/CMakeFiles/socgen_rtl.dir/socgen/rtl/vcd.cpp.o.d"
  "/root/repo/src/socgen/rtl/verilog.cpp" "src/CMakeFiles/socgen_rtl.dir/socgen/rtl/verilog.cpp.o" "gcc" "src/CMakeFiles/socgen_rtl.dir/socgen/rtl/verilog.cpp.o.d"
  "/root/repo/src/socgen/rtl/vhdl.cpp" "src/CMakeFiles/socgen_rtl.dir/socgen/rtl/vhdl.cpp.o" "gcc" "src/CMakeFiles/socgen_rtl.dir/socgen/rtl/vhdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/socgen_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
