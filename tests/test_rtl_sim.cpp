#include "socgen/common/error.hpp"
#include "socgen/rtl/netlist_sim.hpp"
#include "socgen/rtl/primitives.hpp"

#include <gtest/gtest.h>

namespace socgen::rtl {
namespace {

TEST(NetlistSim, CombinationalAdder) {
    const Netlist n = makeAdder("add", 16);
    NetlistSimulator sim(n);
    sim.setInput("a", 40);
    sim.setInput("b", 2);
    sim.evaluate();
    EXPECT_EQ(sim.output("sum"), 42u);
    sim.setInput("a", 0xFFFF);
    sim.setInput("b", 1);
    sim.evaluate();
    EXPECT_EQ(sim.output("sum"), 0u);  // wraps at width
}

TEST(NetlistSim, CounterCountsWithEnable) {
    const Netlist n = makeCounter("ctr", 8);
    NetlistSimulator sim(n);
    sim.setInput("en", 1);
    for (int i = 0; i < 5; ++i) {
        sim.step();
    }
    sim.evaluate();
    EXPECT_EQ(sim.output("count"), 5u);
    sim.setInput("en", 0);
    for (int i = 0; i < 3; ++i) {
        sim.step();
    }
    sim.evaluate();
    EXPECT_EQ(sim.output("count"), 5u);  // frozen while disabled
    EXPECT_EQ(sim.cycleCount(), 8u);
}

TEST(NetlistSim, CounterWrapsAtWidth) {
    const Netlist n = makeCounter("ctr", 4);
    NetlistSimulator sim(n);
    sim.setInput("en", 1);
    for (int i = 0; i < 20; ++i) {
        sim.step();
    }
    sim.evaluate();
    EXPECT_EQ(sim.output("count"), 20u % 16u);
}

TEST(NetlistSim, MacAccumulates) {
    const Netlist n = makeMac("mac", 32);
    NetlistSimulator sim(n);
    sim.setInput("en", 1);
    sim.setInput("a", 3);
    sim.setInput("b", 5);
    sim.step();  // acc = 15
    sim.setInput("a", 2);
    sim.setInput("b", 10);
    sim.step();  // acc = 35
    sim.evaluate();
    EXPECT_EQ(sim.output("acc"), 35u);
    sim.reset();
    sim.evaluate();
    EXPECT_EQ(sim.output("acc"), 0u);
}

struct BinCase {
    CellKind kind;
    std::uint64_t a;
    std::uint64_t b;
    std::uint64_t expected;
};

class BinaryCellSim : public testing::TestWithParam<BinCase> {};

TEST_P(BinaryCellSim, ComputesExpected) {
    const BinCase& c = GetParam();
    NetlistBuilder builder("bin");
    const NetId a = builder.inputPort("a", 32);
    const NetId b = builder.inputPort("b", 32);
    const NetId out = builder.binary(c.kind, a, b, 32);
    builder.outputPort("y", out);
    NetlistSimulator sim(builder.netlist());
    sim.setInput("a", c.a);
    sim.setInput("b", c.b);
    sim.evaluate();
    EXPECT_EQ(sim.output("y"), c.expected) << cellKindName(c.kind);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, BinaryCellSim,
    testing::Values(BinCase{CellKind::Add, 7, 8, 15}, BinCase{CellKind::Sub, 7, 8, 0xFFFFFFFF},
                    BinCase{CellKind::Mul, 6, 7, 42}, BinCase{CellKind::Div, 42, 5, 8},
                    BinCase{CellKind::Div, 42, 0, 0xFFFFFFFF},
                    BinCase{CellKind::Mod, 42, 5, 2}, BinCase{CellKind::Mod, 42, 0, 42},
                    BinCase{CellKind::And, 0b1100, 0b1010, 0b1000},
                    BinCase{CellKind::Or, 0b1100, 0b1010, 0b1110},
                    BinCase{CellKind::Xor, 0b1100, 0b1010, 0b0110},
                    BinCase{CellKind::Shl, 3, 4, 48}, BinCase{CellKind::Shr, 48, 4, 3},
                    BinCase{CellKind::Eq, 5, 5, 1}, BinCase{CellKind::Eq, 5, 6, 0},
                    BinCase{CellKind::Ne, 5, 6, 1}, BinCase{CellKind::Lt, 5, 6, 1},
                    BinCase{CellKind::Le, 6, 6, 1}, BinCase{CellKind::Gt, 7, 6, 1},
                    BinCase{CellKind::Ge, 6, 7, 0}));

TEST(NetlistSim, MuxSelects) {
    NetlistBuilder b("mux");
    const NetId sel = b.inputPort("sel", 1);
    const NetId x = b.inputPort("x", 8);
    const NetId y = b.inputPort("y", 8);
    b.outputPort("o", b.mux(sel, x, y, 8));
    NetlistSimulator sim(b.netlist());
    sim.setInput("x", 11);
    sim.setInput("y", 22);
    sim.setInput("sel", 0);
    sim.evaluate();
    EXPECT_EQ(sim.output("o"), 11u);
    sim.setInput("sel", 1);
    sim.evaluate();
    EXPECT_EQ(sim.output("o"), 22u);
}

TEST(NetlistSim, BramWritesThenReads) {
    NetlistBuilder b("mem");
    const NetId addr = b.inputPort("addr", 8);
    const NetId wdata = b.inputPort("wdata", 16);
    const NetId we = b.inputPort("we", 1);
    const NetId rdata = b.bram(addr, wdata, we, 16, 64);
    b.outputPort("rdata", rdata);
    NetlistSimulator sim(b.netlist());

    sim.setInput("addr", 5);
    sim.setInput("wdata", 1234);
    sim.setInput("we", 1);
    sim.step();  // write 1234 @5; synchronous read-after-write
    sim.setInput("we", 0);
    sim.evaluate();
    EXPECT_EQ(sim.output("rdata"), 1234u);

    sim.setInput("addr", 6);
    sim.step();  // read empty slot
    sim.evaluate();
    EXPECT_EQ(sim.output("rdata"), 0u);
}

TEST(NetlistSim, BramOutOfRangeThrows) {
    NetlistBuilder b("mem");
    const NetId addr = b.inputPort("addr", 8);
    const NetId wdata = b.inputPort("wdata", 16);
    const NetId we = b.inputPort("we", 1);
    b.outputPort("rdata", b.bram(addr, wdata, we, 16, 4));
    NetlistSimulator sim(b.netlist());
    sim.setInput("addr", 9);
    EXPECT_THROW(sim.step(), SimulationError);
}

TEST(NetlistSim, FsmAdvancesAndSaturates) {
    NetlistBuilder b("fsm");
    const NetId go = b.inputPort("go", 1);
    const NetId state = b.fsm({go}, 4);
    b.outputPort("state", state);
    NetlistSimulator sim(b.netlist());
    sim.setInput("go", 0);
    sim.step();
    sim.evaluate();
    EXPECT_EQ(sim.output("state"), 0u);
    sim.setInput("go", 1);
    for (int i = 0; i < 10; ++i) {
        sim.step();
    }
    sim.evaluate();
    EXPECT_EQ(sim.output("state"), 3u);  // saturates at states-1
}

TEST(NetlistSim, DrivingOutputPortThrows) {
    const Netlist n = makeAdder("add", 8);
    NetlistSimulator sim(n);
    EXPECT_THROW(sim.setInput("sum", 1), SimulationError);
}

} // namespace
} // namespace socgen::rtl
