// Golden-file snapshot tests for the Verilog and VHDL emitters: the
// exact text emitted for a set of reference designs is committed under
// tests/golden/ and any drift fails the suite. Regenerate on purpose
// with `test_rtl_golden --update-golden` (or SOCGEN_UPDATE_GOLDEN=1) and
// review the diff like any other code change.

#include "socgen/apps/dataflow.hpp"
#include "socgen/apps/kernels.hpp"
#include "socgen/common/textfile.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/rtl/codegen_emit.hpp"
#include "socgen/rtl/compiled_program.hpp"
#include "socgen/rtl/primitives.hpp"
#include "socgen/rtl/sim_batch.hpp"
#include "socgen/rtl/vcd.hpp"
#include "socgen/rtl/verilog.hpp"
#include "socgen/rtl/vhdl.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace socgen::rtl {
namespace {

bool g_update = false;

std::string goldenPath(const std::string& stem, const char* ext) {
    return std::string(SOCGEN_GOLDEN_DIR) + "/" + stem + ext;
}

/// Compares `text` against the committed snapshot (or rewrites it in
/// update mode). Kept as one helper so every design exercises the same
/// path for both HDL flavours.
void expectMatchesGolden(const std::string& stem, const char* ext,
                         const std::string& text) {
    const std::string path = goldenPath(stem, ext);
    if (g_update) {
        writeTextFile(path, text);
        SUCCEED() << "updated " << path;
        return;
    }
    ASSERT_TRUE(fileExists(path))
        << path << " missing - run test_rtl_golden --update-golden to create it";
    EXPECT_EQ(readTextFile(path), text)
        << stem << ext << " drifted from the committed golden file; if the "
        << "change is intentional, run test_rtl_golden --update-golden and "
        << "commit the new snapshot";
}

void expectGolden(const std::string& stem, const Netlist& netlist) {
    expectMatchesGolden(stem, ".v", VerilogEmitter{}.emit(netlist));
    expectMatchesGolden(stem, ".vhd", VhdlEmitter{}.emit(netlist));
}

TEST(Golden, Counter8) { expectGolden("ctr8", makeCounter("ctr", 8)); }

// The generated-C++ simulator source for the same counter. Pins the
// emitter's exact output — the evalOp-mirroring expressions, the
// deferred-publication step order, the extern "C" ABI — so any emitter
// change is a reviewed diff, not a silent semantic drift. No host
// compiler is needed: this snapshots the source, not the object.
TEST(Golden, CodegenCounter8) {
    const Netlist netlist = makeCounter("ctr", 8);
    const CodegenUnit unit = emitCodegenUnit(netlist, compileProgram(netlist));
    expectMatchesGolden("codegen_ctr8", ".cpp", unit.source);
}

TEST(Golden, Adder16) { expectGolden("add16", makeAdder("add", 16)); }

TEST(Golden, Mac32) { expectGolden("mac32", makeMac("mac", 32)); }

TEST(Golden, HlsAddKernel) {
    const hls::HlsResult r = hls::HlsEngine{}.synthesize(apps::makeAddKernel(), {});
    expectGolden("hls_add", r.netlist);
}

// The dataflow-channel FIFO primitive, with initial tokens so the
// primed-register path is part of the snapshot.
TEST(Golden, DataflowFifo) { expectGolden("fifo8x4", makeFifo("fifo", 8, 4, 1)); }

// The assembled process-wrapper glue: three flattened stage cores, two
// channel FIFOs, the ap_start broadcast and the ap_done AND-tree. Any
// change to the wrapper assembly or FIFO port naming shows up here.
TEST(Golden, DataflowWrapper) {
    const hls::HlsResult r =
        hls::HlsEngine{}.synthesize(apps::makeStreamPipelineNetwork(8));
    expectGolden("dataflow_tri", r.netlist);
}

// Per-lane VCD extraction from a batched run: a 4-lane MAC batch with a
// distinct deterministic stimulus per lane, traced through SimBatchLane.
// The snapshots pin both the extraction path (a lane view is a faithful
// Simulator for the tracer) and the batch engine's per-lane semantics —
// lane 3 gates its accumulator with `en`, so its trace must diverge from
// the always-enabled lanes in exactly the committed way.
TEST(Golden, BatchMacLaneTraces) {
    const Netlist netlist = makeMac("mac", 16);
    const auto batch = makeSimBatch(netlist, 4, SimBackend::Compiled);

    std::vector<std::unique_ptr<SimBatchLane>> lanes;
    std::vector<std::unique_ptr<VcdTrace>> traces;
    for (unsigned lane = 0; lane < batch->laneCount(); ++lane) {
        lanes.push_back(std::make_unique<SimBatchLane>(*batch, lane));
        traces.push_back(std::make_unique<VcdTrace>(netlist, *lanes.back()));
    }

    for (unsigned cycle = 0; cycle < 8; ++cycle) {
        for (unsigned lane = 0; lane < batch->laneCount(); ++lane) {
            batch->setInput("a", lane, (lane + 1) * 3);
            batch->setInput("b", lane, cycle + lane);
            batch->setInput("en", lane, lane == 3 ? cycle % 2 : 1);
        }
        batch->step();
        batch->evaluate();
        for (auto& trace : traces) {
            trace->sample();
        }
    }

    for (unsigned lane = 0; lane < batch->laneCount(); ++lane) {
        expectMatchesGolden("batch_mac16_lane" + std::to_string(lane), ".vcd",
                            traces[lane]->render());
    }
}

} // namespace
} // namespace socgen::rtl

int main(int argc, char** argv) {
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--update-golden") == 0) {
            socgen::rtl::g_update = true;
        }
    }
    if (const char* env = std::getenv("SOCGEN_UPDATE_GOLDEN");
        env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0) {
        socgen::rtl::g_update = true;
    }
    return RUN_ALL_TESTS();
}
