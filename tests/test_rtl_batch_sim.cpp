// Differential test for the 64-way batched simulator: every lane of a
// BatchCompiledSim (and of the scalar-farm fallback) must be
// byte-identical — every net, every cycle — to an independent scalar
// CompiledSim run fed the same per-lane stimulus, including final BRAM
// contents per lane and throw parity: a lane whose scalar twin throws
// SimulationError faults on the same cycle with the same message while
// the other lanes keep running. ctest label: diff-sim.

#include "netlist_gen.hpp"
#include "socgen/apps/kernels.hpp"
#include "socgen/apps/otsu_project.hpp"
#include "socgen/common/error.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/rtl/compiled_sim.hpp"
#include "socgen/rtl/primitives.hpp"
#include "socgen/rtl/sim_batch.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace socgen::rtl {
namespace {

using Stimulus = std::map<std::string, std::uint64_t>;

/// Random per-cycle stimulus (mirrors the diff-sim suite's shape: ports
/// change with probability 1/4 so dirty skipping stays exercised).
std::vector<Stimulus> randomStimulus(const Netlist& netlist, std::uint64_t seed,
                                     unsigned cycles) {
    testing::SplitMix64 rng(seed ^ 0xa0761d6478bd642fULL);
    std::vector<Stimulus> out(cycles);
    for (unsigned cycle = 0; cycle < cycles; ++cycle) {
        for (const auto& port : netlist.ports()) {
            if (port.dir != PortDir::In) {
                continue;
            }
            if (cycle == 0 || rng.below(4) == 0) {
                out[cycle][port.name] = rng.next();
            }
        }
    }
    return out;
}

struct ScalarFault {
    std::uint64_t cycle = 0;
    std::string message;
};

/// Runs `batch` against one independent scalar CompiledSim per lane in
/// lockstep, asserting after every step that every lane agrees with its
/// scalar twin on every net, that faults land on the same cycle with
/// the same message, and at the end that per-lane BRAM contents match.
void expectBatchMatchesScalars(const Netlist& netlist, SimBatch& batch,
                               const std::vector<std::vector<Stimulus>>& laneStim) {
    const unsigned lanes = batch.laneCount();
    ASSERT_EQ(laneStim.size(), lanes);
    const std::size_t cycles = laneStim.front().size();

    std::vector<std::unique_ptr<CompiledSim>> scalars;
    std::vector<std::optional<ScalarFault>> faults(lanes);
    for (unsigned lane = 0; lane < lanes; ++lane) {
        scalars.push_back(std::make_unique<CompiledSim>(netlist));
    }

    for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
        for (unsigned lane = 0; lane < lanes; ++lane) {
            for (const auto& [port, value] : laneStim[lane][cycle]) {
                batch.setInput(port, lane, value);
                if (!faults[lane].has_value()) {
                    scalars[lane]->setInput(port, value);
                }
            }
        }
        batch.step();
        batch.evaluate();
        for (unsigned lane = 0; lane < lanes; ++lane) {
            if (faults[lane].has_value()) {
                continue;  // verified at fault time; the lane stays frozen
            }
            bool threw = false;
            try {
                scalars[lane]->step();
                scalars[lane]->evaluate();
            } catch (const SimulationError& error) {
                threw = true;
                faults[lane] = ScalarFault{scalars[lane]->cycleCount(), error.what()};
            }
            ASSERT_EQ(batch.laneFaulted(lane), threw)
                << netlist.name() << ": lane " << lane << " fault parity broke on cycle "
                << cycle;
            if (threw) {
                EXPECT_EQ(batch.laneFaultCycle(lane), faults[lane]->cycle)
                    << netlist.name() << ": lane " << lane;
                EXPECT_EQ(batch.laneFaultMessage(lane), faults[lane]->message)
                    << netlist.name() << ": lane " << lane;
                continue;
            }
            for (NetId id = 0; id < netlist.nets().size(); ++id) {
                ASSERT_EQ(scalars[lane]->netValue(id), batch.netValue(id, lane))
                    << netlist.name() << ": lane " << lane << " net '"
                    << netlist.net(id).name << "' (id " << id << ") diverged on cycle "
                    << cycle;
            }
        }
    }

    for (unsigned lane = 0; lane < lanes; ++lane) {
        for (CellId id = 0; id < netlist.cells().size(); ++id) {
            if (netlist.cell(id).kind == CellKind::Bram) {
                EXPECT_EQ(scalars[lane]->memoryContents(id), batch.memoryContents(id, lane))
                    << netlist.name() << ": lane " << lane << " BRAM '"
                    << netlist.cell(id).name << "' final contents diverged";
            }
        }
    }
}

/// Per-lane stimulus: each lane gets its own seed stream.
std::vector<std::vector<Stimulus>> laneStimulus(const Netlist& netlist,
                                                std::uint64_t seed, unsigned lanes,
                                                unsigned cycles) {
    std::vector<std::vector<Stimulus>> out;
    out.reserve(lanes);
    for (unsigned lane = 0; lane < lanes; ++lane) {
        out.push_back(randomStimulus(netlist, seed * 64 + lane, cycles));
    }
    return out;
}

class BatchRandomNetlist : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchRandomNetlist, SixtyFourLanesMatchSixtyFourScalarRuns) {
    const std::uint64_t seed = GetParam();
    const Netlist netlist = testing::randomNetlist(seed, testing::sweepOptions(seed));
    BatchCompiledSim batch(netlist, [] {
        SimConfig config;
        config.batchLanes = 64;
        config.threads = 1;
        return config;
    }());
    ASSERT_EQ(batch.laneCount(), 64u);
    expectBatchMatchesScalars(netlist, batch, laneStimulus(netlist, seed, 64, 60));
}

// A subset of the diff-sim sweep seeds, chosen to include each of the
// newer corpus constructs (wide buses: %3, BRAM pairs: %4, chains: %5).
INSTANTIATE_TEST_SUITE_P(Seeds, BatchRandomNetlist,
                         ::testing::Values(7919ULL,           // plain
                                           15838ULL,          // plain
                                           23757ULL,          // wide buses
                                           31676ULL,          // bram pairs
                                           39595ULL,          // chains
                                           47514ULL,          // wide buses
                                           95028ULL,          // wide + pairs
                                           475140ULL));       // wide + pairs + chains

TEST(BatchRandomNetlist, ThreadedBatchMatchesScalarRuns) {
    // Threads and lanes compose: the partitioned batch must still match
    // 64 scalar serial runs bit for bit.
    const std::uint64_t seed = 424242;
    testing::NetlistGenOptions opt = testing::sweepOptions(seed);
    opt.combCells = 400;
    const Netlist netlist = testing::randomNetlist(seed, opt);
    SimConfig config;
    config.batchLanes = 64;
    config.threads = 4;
    config.parallelGrainOps = 1;  // force the worker-pool path
    BatchCompiledSim batch(netlist, config);
    EXPECT_EQ(batch.threadCount(), 4u);
    expectBatchMatchesScalars(netlist, batch, laneStimulus(netlist, seed, 64, 40));
}

TEST(BatchFaults, LanesThrowOnTheSameCycleWithTheSameMessage) {
    // Depth-4 BRAM with the address driven straight from a port: lanes
    // whose address is out of range must fault exactly where the scalar
    // run throws while in-range lanes keep stepping and end up with
    // per-lane distinct memory contents.
    NetlistBuilder b("mem");
    const NetId addr = b.inputPort("addr", 8);
    const NetId wdata = b.inputPort("wdata", 16);
    const NetId we = b.inputPort("we", 1);
    b.outputPort("rdata", b.bram(addr, wdata, we, 16, 4));
    const Netlist netlist = b.netlist();

    const unsigned lanes = 64;
    std::vector<std::vector<Stimulus>> stim(lanes);
    for (unsigned lane = 0; lane < lanes; ++lane) {
        for (unsigned cycle = 0; cycle < 6; ++cycle) {
            // Lanes 0..3 stay in range; lane 4+ walks out of range on a
            // lane-dependent cycle so faults land on different cycles.
            const std::uint64_t address =
                (lane < 4 || cycle < lane % 5) ? lane % 4 : lane % 8;
            stim[lane].push_back(
                {{"addr", address}, {"wdata", 100 + lane}, {"we", 1}});
        }
    }
    BatchCompiledSim batch(netlist, [] {
        SimConfig config;
        config.batchLanes = 64;
        return config;
    }());
    expectBatchMatchesScalars(netlist, batch, stim);

    // Spot-check the surviving lanes really hold lane-distinct payloads.
    for (unsigned lane = 0; lane < 4; ++lane) {
        ASSERT_FALSE(batch.laneFaulted(lane));
        const auto mem = batch.memoryContents(0, lane);
        ASSERT_EQ(mem.size(), 4u);
        EXPECT_EQ(mem[lane % 4], 100u + lane);
    }
    EXPECT_TRUE(batch.laneFaulted(7));
    EXPECT_NE(batch.laneFaultMessage(7).find("out of range"), std::string::npos);
}

TEST(BatchFaults, ResetRevivesFaultedLanes) {
    NetlistBuilder b("mem");
    const NetId addr = b.inputPort("addr", 8);
    const NetId wdata = b.inputPort("wdata", 16);
    const NetId we = b.inputPort("we", 1);
    b.outputPort("rdata", b.bram(addr, wdata, we, 16, 4));
    const Netlist netlist = b.netlist();

    BatchCompiledSim batch(netlist, [] {
        SimConfig config;
        config.batchLanes = 2;
        return config;
    }());
    batch.setInput("addr", 0, 1);
    batch.setInput("addr", 1, 200);  // out of range -> lane 1 faults
    batch.setInputAll("we", 1);
    batch.setInputAll("wdata", 7);
    batch.step();
    EXPECT_FALSE(batch.laneFaulted(0));
    ASSERT_TRUE(batch.laneFaulted(1));
    EXPECT_EQ(batch.laneFaultCycle(1), 0u);

    batch.reset();
    EXPECT_FALSE(batch.laneFaulted(1));
    batch.setInput("addr", 1, 2);  // back in range, lane accepts input again
    batch.step();
    batch.evaluate();
    EXPECT_FALSE(batch.laneFaulted(1));
    EXPECT_EQ(batch.memoryContents(0, 1)[2], 7u);
}

// ---------------------------------------------------------------------------
// Otsu case study: every HLS netlist of Arch1..Arch4, 64 lanes each.

std::vector<Stimulus> hlsCoreStimulus(const Netlist& netlist, std::uint64_t seed,
                                      unsigned cycles) {
    testing::SplitMix64 rng(seed);
    std::vector<Stimulus> out(cycles);
    for (unsigned cycle = 0; cycle < cycles; ++cycle) {
        for (const auto& port : netlist.ports()) {
            if (port.dir != PortDir::In) {
                continue;
            }
            const std::string& name = port.name;
            if (name == "ap_start") {
                out[cycle][name] = 1;
            } else if (name.ends_with("_tdata")) {
                out[cycle][name] = rng.below(256);
            } else if (name.ends_with("_tvalid") || name.ends_with("_tready")) {
                out[cycle][name] = rng.below(4) != 0 ? 1 : 0;
            } else if (cycle == 0) {
                out[cycle][name] = rng.below(256);
            }
        }
    }
    return out;
}

TEST(OtsuBatchDiff, AllArchitecturesMatchScalarRunsAcrossLanes) {
    const core::Htg htg = apps::makeOtsuHtg();
    const hls::KernelLibrary kernels = apps::makeOtsuKernelLibrary(4096);
    core::FlowOptions options = apps::otsuFlowOptions();
    options.runSynthesis = false;
    options.generateSoftware = false;
    const auto cache = std::make_shared<core::HlsCache>();
    for (int arch = 1; arch <= 4; ++arch) {
        core::Flow flow(options, kernels, cache);
        const core::FlowResult result = flow.run(
            "batchsim_arch" + std::to_string(arch),
            core::lowerToTaskGraph(htg, apps::otsuArchPartition(arch)));
        ASSERT_FALSE(result.hlsResults.empty()) << "arch " << arch;
        for (const auto& [node, hlsResult] : result.hlsResults) {
            SCOPED_TRACE("arch " + std::to_string(arch) + " core " + node);
            const Netlist& netlist = hlsResult.netlist;
            BatchCompiledSim batch(netlist, [] {
                SimConfig config;
                config.batchLanes = 64;
                return config;
            }());
            std::vector<std::vector<Stimulus>> stim;
            for (unsigned lane = 0; lane < 64; ++lane) {
                stim.push_back(hlsCoreStimulus(
                    netlist, 0x0b000000u + static_cast<unsigned>(arch) * 64 + lane, 80));
            }
            expectBatchMatchesScalars(netlist, batch, stim);
        }
    }
}

// ---------------------------------------------------------------------------
// Batch construction, the scalar-farm fallback, and the lane view.

class EnvGuard {
public:
    explicit EnvGuard(const char* name) : name_(name) {
        if (const char* value = std::getenv(name)) {
            saved_ = value;
        }
        ::unsetenv(name);
    }
    ~EnvGuard() {
        if (saved_.has_value()) {
            ::setenv(name_, saved_->c_str(), 1);
        } else {
            ::unsetenv(name_);
        }
    }
    EnvGuard(const EnvGuard&) = delete;
    EnvGuard& operator=(const EnvGuard&) = delete;

private:
    const char* name_;
    std::optional<std::string> saved_;
};

TEST(BatchSelect, FactoryFollowsTheBackendRule) {
    const EnvGuard backendGuard("SOCGEN_SIM_BACKEND");
    const EnvGuard denyGuard("SOCGEN_COMPILED_SIM_DENY");
    const Netlist netlist = makeCounter("ctr", 8);
    EXPECT_EQ(makeSimBatch(netlist, 4)->backendName(), "compiled-batch");
    EXPECT_EQ(makeSimBatch(netlist, 4, SimBackend::EventDriven)->backendName(),
              "scalar-farm");
    // Unsupported constructs degrade Auto to the farm, like makeSimulator.
    ::setenv("SOCGEN_COMPILED_SIM_DENY", "REG", 1);
    EXPECT_EQ(makeSimBatch(netlist, 4)->backendName(), "scalar-farm");
    EXPECT_THROW((void)makeSimBatch(netlist, 4, SimBackend::Compiled),
                 UnsupportedNetlistError);
    ::unsetenv("SOCGEN_COMPILED_SIM_DENY");
    // Lane resolution: 0 means one lane, requests clamp to kMaxSimLanes.
    EXPECT_EQ(makeSimBatch(netlist, 0)->laneCount(), 1u);
    EXPECT_EQ(makeSimBatch(netlist, 1000)->laneCount(), kMaxSimLanes);
    EXPECT_EQ(resolveSimLanes(), 1u);
    EXPECT_EQ(resolveSimLanes(200), kMaxSimLanes);
}

TEST(BatchSelect, ScalarFarmMatchesBatchedEngine) {
    // The farm is the semantic reference for SimBatch just like the
    // event engine is for Simulator: run both strategies over the same
    // lanes and compare every net every cycle.
    const std::uint64_t seed = 7919;
    const Netlist netlist = testing::randomNetlist(seed, testing::sweepOptions(seed));
    const unsigned lanes = 8;
    const auto stim = laneStimulus(netlist, seed, lanes, 50);
    const auto farm = makeSimBatch(netlist, lanes, SimBackend::EventDriven);
    const auto batch = makeSimBatch(netlist, lanes, SimBackend::Compiled);
    ASSERT_EQ(farm->backendName(), "scalar-farm");
    ASSERT_EQ(batch->backendName(), "compiled-batch");
    for (std::size_t cycle = 0; cycle < stim.front().size(); ++cycle) {
        for (unsigned lane = 0; lane < lanes; ++lane) {
            for (const auto& [port, value] : stim[lane][cycle]) {
                farm->setInput(port, lane, value);
                batch->setInput(port, lane, value);
            }
        }
        farm->step();
        farm->evaluate();
        batch->step();
        batch->evaluate();
        for (unsigned lane = 0; lane < lanes; ++lane) {
            ASSERT_EQ(farm->laneFaulted(lane), batch->laneFaulted(lane));
            if (farm->laneFaulted(lane)) {
                EXPECT_EQ(farm->laneFaultCycle(lane), batch->laneFaultCycle(lane));
                EXPECT_EQ(farm->laneFaultMessage(lane), batch->laneFaultMessage(lane));
                continue;
            }
            for (NetId id = 0; id < netlist.nets().size(); ++id) {
                ASSERT_EQ(farm->netValue(id, lane), batch->netValue(id, lane))
                    << "lane " << lane << " net " << id << " cycle " << cycle;
            }
        }
    }
}

TEST(BatchLaneView, ForwardsReadsAndRefusesToAdvance) {
    const Netlist netlist = makeCounter("ctr", 8);
    const auto batch = makeSimBatch(netlist, 2);
    batch->setInput("en", 0, 1);
    batch->setInput("en", 1, 0);
    for (int i = 0; i < 5; ++i) {
        batch->step();
    }
    batch->evaluate();

    SimBatchLane lane0(*batch, 0);
    SimBatchLane lane1(*batch, 1);
    EXPECT_EQ(lane0.backendName(), "batch-lane");
    EXPECT_EQ(lane0.output("count"), 5u);
    EXPECT_EQ(lane1.output("count"), 0u);
    EXPECT_EQ(lane0.cycleCount(), batch->cycleCount());
    EXPECT_THROW(lane0.step(), SimulationError);
    EXPECT_THROW(lane0.evaluate(), SimulationError);
    EXPECT_THROW(lane0.reset(), SimulationError);
    EXPECT_THROW((SimBatchLane(*batch, 9)), Error);  // lane out of range

    // setInput through the view drives exactly the viewed lane.
    lane1.setInput("en", 1);
    batch->step();
    batch->evaluate();
    EXPECT_EQ(lane0.output("count"), 6u);
    EXPECT_EQ(lane1.output("count"), 1u);
}

TEST(BatchLaneView, SetInputAllDrivesEveryLane) {
    const Netlist netlist = makeCounter("ctr", 8);
    const auto batch = makeSimBatch(netlist, 3);
    batch->setInputAll("en", 1);
    for (int i = 0; i < 4; ++i) {
        batch->step();
    }
    batch->evaluate();
    for (unsigned lane = 0; lane < 3; ++lane) {
        EXPECT_EQ(batch->output("count", lane), 4u);
    }
}

} // namespace
} // namespace socgen::rtl
