// Unit tests for the Subprocess primitive under the worker fleet
// (CTest label: worker-fleet): fork/exec with pipe I/O, clean spawn
// failures, signal forwarding, and zombie-free reaping.

#include "socgen/common/error.hpp"
#include "socgen/common/subprocess.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <string>
#include <thread>

#include <sys/wait.h>

namespace socgen {
namespace {

/// Reads the child's stdout until EOF, concatenating everything.
std::string readToEof(Subprocess& child) {
    std::string out;
    for (;;) {
        auto chunk = child.readAvailable(2000);
        if (!chunk) {
            return out;  // EOF
        }
        out += *chunk;
    }
}

TEST(Subprocess, CatRoundtripsStdinToStdout) {
    Subprocess cat = Subprocess::spawn({"/bin/cat"});
    ASSERT_GT(cat.pid(), 0);
    ASSERT_TRUE(cat.writeAll("hello fleet\n"));
    cat.closeStdin();  // EOF -> cat drains and exits
    EXPECT_EQ(readToEof(cat), "hello fleet\n");
    const int status = cat.wait();
    EXPECT_EQ(waitStatusExited(status), std::optional<int>(0));
    EXPECT_EQ(waitStatusSignal(status), std::nullopt);
}

TEST(Subprocess, ReportsNonzeroExitCode) {
    Subprocess sh = Subprocess::spawn({"/bin/sh", "-c", "exit 7"});
    const int status = sh.wait();
    EXPECT_EQ(waitStatusExited(status), std::optional<int>(7));
}

TEST(Subprocess, ReportsDeathBySignal) {
    Subprocess sleeper = Subprocess::spawn({"/bin/sleep", "30"});
    ASSERT_TRUE(sleeper.running());
    sleeper.kill(SIGKILL);
    const int status = sleeper.wait();
    EXPECT_EQ(waitStatusExited(status), std::nullopt);
    EXPECT_EQ(waitStatusSignal(status), std::optional<int>(SIGKILL));
    EXPECT_FALSE(sleeper.running());
}

TEST(Subprocess, SpawnOfMissingBinaryThrowsInParent) {
    // The CLOEXEC errno pipe turns the child's failed exec into a clean
    // parent-side throw — no half-spawned zombie to reap.
    EXPECT_THROW((void)Subprocess::spawn({"/no/such/binary/anywhere"}),
                 SubprocessError);
}

TEST(Subprocess, ReadTimesOutOnSilentChild) {
    Subprocess sleeper = Subprocess::spawn({"/bin/sleep", "30"});
    const auto chunk = sleeper.readAvailable(50);
    ASSERT_TRUE(chunk.has_value());  // not EOF — the child is alive
    EXPECT_TRUE(chunk->empty());     // just nothing to read yet
    sleeper.kill(SIGKILL);
    (void)sleeper.wait();
}

TEST(Subprocess, ReadReturnsEofAfterChildKilled) {
    Subprocess sleeper = Subprocess::spawn({"/bin/sleep", "30"});
    sleeper.kill(SIGKILL);
    (void)sleeper.wait();
    // Pipe write end is gone: EOF, not a hang.
    EXPECT_EQ(sleeper.readAvailable(2000), std::nullopt);
}

TEST(Subprocess, WriteToDeadChildReturnsFalse) {
    Subprocess sh = Subprocess::spawn({"/bin/sh", "-c", "exit 0"});
    (void)sh.wait();
    // EPIPE (not SIGPIPE, not a throw): the fleet treats this as "worker
    // died", a recoverable event.
    std::string big(1 << 20, 'x');
    EXPECT_FALSE(sh.writeAll(big));
}

TEST(Subprocess, DestructorKillsAndReapsRunningChild) {
    pid_t pid = -1;
    {
        Subprocess sleeper = Subprocess::spawn({"/bin/sleep", "30"});
        pid = sleeper.pid();
        ASSERT_TRUE(sleeper.running());
    }
    // The destructor SIGKILLed and reaped: the pid is no longer ours.
    // (waitpid on a reaped child of ours returns ECHILD.)
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, WNOHANG), -1);
}

TEST(Subprocess, MoveTransfersOwnership) {
    Subprocess a = Subprocess::spawn({"/bin/cat"});
    const pid_t pid = a.pid();
    Subprocess b = std::move(a);
    EXPECT_EQ(b.pid(), pid);
    ASSERT_TRUE(b.writeAll("x"));
    b.closeStdin();
    EXPECT_EQ(readToEof(b), "x");
    (void)b.wait();
}

} // namespace
} // namespace socgen
