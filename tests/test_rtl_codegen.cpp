// The generated-C++ backend's own suite: emitter determinism and key
// stability, the cold/warm shared-object cache pipeline, quarantine of
// a corrupted cached object, and the graceful degradation chain
// (Codegen → Compiled → EventDriven) with its structured fallback
// events. Lockstep value parity against the other two backends lives in
// test_rtl_diff_sim.cpp. ctest label: diff-sim.

#include "socgen/common/blob_store.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/textfile.hpp"
#include "socgen/rtl/codegen_emit.hpp"
#include "socgen/rtl/codegen_sim.hpp"
#include "socgen/rtl/compiled_program.hpp"
#include "socgen/rtl/primitives.hpp"
#include "socgen/rtl/sim_backend.hpp"
#include "socgen/rtl/sim_batch.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace socgen::rtl {
namespace {

/// Saves an environment variable and restores it on scope exit (copy of
/// the diff-sim helper; the suites are independent binaries).
class EnvGuard {
public:
    explicit EnvGuard(const char* name) : name_(name) {
        if (const char* value = std::getenv(name)) {
            saved_ = value;
        }
        ::unsetenv(name);
    }
    ~EnvGuard() {
        if (saved_.has_value()) {
            ::setenv(name_, saved_->c_str(), 1);
        } else {
            ::unsetenv(name_);
        }
    }
    EnvGuard(const EnvGuard&) = delete;
    EnvGuard& operator=(const EnvGuard&) = delete;

private:
    const char* name_;
    std::optional<std::string> saved_;
};

/// Captures structured fallback events for the duration of a test.
class FallbackCapture {
public:
    FallbackCapture() {
        previous_ = setSimBackendFallbackHook(
            [this](const SimBackendFallback& event) { events_.push_back(event); });
    }
    ~FallbackCapture() { (void)setSimBackendFallbackHook(std::move(previous_)); }

    [[nodiscard]] const std::vector<SimBackendFallback>& events() const {
        return events_;
    }

private:
    SimBackendFallbackHook previous_;
    std::vector<SimBackendFallback> events_;
};

/// Points the codegen cache at a fresh per-test directory and clears
/// the in-process registry/stats, so every test starts cold.
class FreshCache {
public:
    explicit FreshCache(const std::string& tag) : guard_("SOCGEN_CODEGEN_CACHE_DIR") {
        dir_ = (std::filesystem::temp_directory_path() /
                ("socgen-codegen-test-" + tag + "-" + std::to_string(::getpid())))
                   .string();
        std::filesystem::remove_all(dir_);
        ::setenv("SOCGEN_CODEGEN_CACHE_DIR", dir_.c_str(), 1);
        codegenTestReset();
    }
    ~FreshCache() {
        codegenTestReset();
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    [[nodiscard]] const std::string& dir() const { return dir_; }

private:
    EnvGuard guard_;
    std::string dir_;
};

bool toolchainHere() {
    static const bool available = codegenToolchainAvailable();
    return available;
}

// ---------------------------------------------------------------------------
// Emitter: deterministic bytes, stable keys.

TEST(CodegenEmit, EmitterIsByteDeterministic) {
    const Netlist netlist = makeMac("mac", 24);
    const CodegenUnit first = emitCodegenUnit(netlist, compileProgram(netlist));
    const CodegenUnit second = emitCodegenUnit(netlist, compileProgram(netlist));
    EXPECT_EQ(first.source, second.source);
    EXPECT_EQ(first.sourceDigest, second.sourceDigest);
    EXPECT_EQ(first.netlistDigest, second.netlistDigest);
    // Key stability is what makes the cache warm across processes.
    EXPECT_EQ(codegenArtifactKey(first, "test-compiler-1.0"),
              codegenArtifactKey(second, "test-compiler-1.0"));
    EXPECT_EQ(codegenArtifactKey(first, "test-compiler-1.0").size(), 32u);
}

TEST(CodegenEmit, KeySeparatesCompilerAndNetlist) {
    const Netlist mac = makeMac("mac", 24);
    const Netlist ctr = makeCounter("ctr", 8);
    const CodegenUnit macUnit = emitCodegenUnit(mac, compileProgram(mac));
    const CodegenUnit ctrUnit = emitCodegenUnit(ctr, compileProgram(ctr));
    // A compiler upgrade must recompile; a different netlist must never
    // collide with another's shared object.
    EXPECT_NE(codegenArtifactKey(macUnit, "gcc 12"),
              codegenArtifactKey(macUnit, "gcc 13"));
    EXPECT_NE(codegenArtifactKey(macUnit, "gcc 12"),
              codegenArtifactKey(ctrUnit, "gcc 12"));
    EXPECT_NE(macUnit.netlistDigest, ctrUnit.netlistDigest);
}

TEST(CodegenEmit, SourceCarriesVersionAndDigest) {
    const Netlist netlist = makeCounter("ctr", 8);
    const CodegenUnit unit = emitCodegenUnit(netlist, compileProgram(netlist));
    EXPECT_NE(unit.source.find(kCodegenEmitterVersion), std::string::npos);
    EXPECT_NE(unit.source.find(unit.netlistDigest.hex()), std::string::npos);
    EXPECT_NE(unit.source.find("socgen_cg_step"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cache pipeline: cold compile, in-process registry, store warm start.

TEST(CodegenCache, ColdThenRegistryThenStore) {
    if (!toolchainHere()) {
        GTEST_SKIP() << "no host compiler";
    }
    const FreshCache cache("coldwarm");
    const Netlist netlist = makeMac("mac", 16);

    // Cold: one emit, one compile, nothing cached anywhere.
    const CodegenSim first(netlist);
    CodegenStats stats = codegenStats();
    EXPECT_EQ(stats.compiles, 1u);
    EXPECT_EQ(stats.storeHits, 0u);
    EXPECT_EQ(stats.registryHits, 0u);
    const std::string key = first.artifactKey();
    EXPECT_EQ(key.size(), 32u);

    // Same process, same netlist: the loaded module is shared.
    const CodegenSim second(netlist);
    stats = codegenStats();
    EXPECT_EQ(stats.compiles, 1u);
    EXPECT_EQ(stats.registryHits, 1u);
    EXPECT_EQ(second.artifactKey(), key);

    // "New process": drop the registry — the store must serve the bytes
    // with zero recompiles.
    codegenTestReset();
    const CodegenSim third(netlist);
    stats = codegenStats();
    EXPECT_EQ(stats.compiles, 0u);
    EXPECT_EQ(stats.storeHits, 1u);

    // And the two module instances still simulate: quick smoke cycle.
    // (Full value parity is the diff suite's job.)
    CodegenSim sim(netlist);
    sim.setInput("a", 3);
    sim.setInput("b", 5);
    sim.setInput("en", 1);
    sim.step();
    sim.evaluate();
    EXPECT_EQ(sim.output("acc"), 15u);
    EXPECT_EQ(sim.cycleCount(), 1u);
    sim.reset();
    EXPECT_EQ(sim.cycleCount(), 0u);
    sim.evaluate();
    EXPECT_EQ(sim.output("acc"), 0u);
}

TEST(CodegenCache, CorruptedSharedObjectIsQuarantinedAndRebuilt) {
    if (!toolchainHere()) {
        GTEST_SKIP() << "no host compiler";
    }
    const FreshCache cache("corrupt");
    const Netlist netlist = makeCounter("ctr", 8);
    const CodegenSim first(netlist);
    const std::string key = first.artifactKey();
    EXPECT_EQ(codegenStats().compiles, 1u);

    // Flip a payload byte in the stored object, then force a cold load.
    codegenTestReset();
    const BlobStore store(cache.dir() + "/store", "SOCGENSO1");
    ASSERT_TRUE(store.contains(key));
    store.corruptObject(key);

    // The read path must quarantine the corrupt object (a miss, not a
    // crash and not a silent load of bad machine code) and recompile.
    const CodegenSim rebuilt(netlist);
    EXPECT_EQ(rebuilt.artifactKey(), key);
    const CodegenStats stats = codegenStats();
    EXPECT_EQ(stats.storeHits, 0u);
    EXPECT_EQ(stats.compiles, 1u);
    EXPECT_TRUE(fileExists(cache.dir() + "/store/quarantine/" + key + ".art"));
    ASSERT_TRUE(store.contains(key));  // rebuilt object took the slot back
}

// ---------------------------------------------------------------------------
// Degradation chain and its structured events.

TEST(CodegenFallback, NoCompilerDegradesToCompiledWithEvent) {
    const FreshCache cache("nocxx");
    const EnvGuard cxxGuard("SOCGEN_CXX");
    ::setenv("SOCGEN_CXX", "/nonexistent/socgen-no-cxx", 1);
    const Netlist netlist = makeCounter("ctr", 8);

    // Strict construction names the problem...
    EXPECT_THROW(CodegenSim{netlist}, CodegenUnavailableError);

    // ...while the factory degrades with a structured event, not a crash.
    FallbackCapture capture;
    const auto sim = makeSimulator(netlist, SimBackend::Codegen);
    EXPECT_EQ(sim->backendName(), "compiled");
    ASSERT_EQ(capture.events().size(), 1u);
    const SimBackendFallback& event = capture.events().front();
    EXPECT_EQ(event.netlist, "ctr");
    EXPECT_EQ(event.requested, SimBackend::Codegen);
    EXPECT_EQ(event.chosen, SimBackend::Compiled);
    EXPECT_NE(event.reason.find("SOCGEN_CXX"), std::string::npos) << event.reason;

    // The same chain engages via the environment override path.
    const EnvGuard backendGuard("SOCGEN_SIM_BACKEND");
    ::setenv("SOCGEN_SIM_BACKEND", "codegen", 1);
    EXPECT_EQ(makeSimulator(netlist)->backendName(), "compiled");
}

TEST(CodegenFallback, UnsupportedConstructSkipsToEventDriven) {
    // A construct neither compiled path can lower jumps straight to the
    // interpreter; the Compiled middle hop would only fail the same way.
    const FreshCache cache("deny");
    const EnvGuard denyGuard("SOCGEN_COMPILED_SIM_DENY");
    ::setenv("SOCGEN_COMPILED_SIM_DENY", "REG", 1);
    const Netlist netlist = makeCounter("ctr", 8);

    FallbackCapture capture;
    const auto sim = makeSimulator(netlist, SimBackend::Codegen);
    EXPECT_EQ(sim->backendName(), "event");
    ASSERT_EQ(capture.events().size(), 1u);
    EXPECT_EQ(capture.events().front().requested, SimBackend::Codegen);
    EXPECT_EQ(capture.events().front().chosen, SimBackend::EventDriven);
}

TEST(CodegenFallback, CompileErrorSurfacesCompilerDiagnostics) {
    if (!toolchainHere()) {
        GTEST_SKIP() << "no host compiler";
    }
    const FreshCache cache("cerr");
    const std::string srcPath = cache.dir() + "/broken.cpp";
    writeTextFile(srcPath, "int broken( { this is not C++ ;\n");
    const CodegenToolchain toolchain = resolveCodegenToolchain();
    try {
        (void)compileSharedObject(toolchain, srcPath, cache.dir() + "/broken.so");
        FAIL() << "compiled a syntactically broken translation unit";
    } catch (const CodegenCompileError& e) {
        // The thrown diagnostic must embed the compiler's own stderr so
        // an emitter bug is debuggable from the test log alone.
        EXPECT_FALSE(e.compilerOutput().empty());
        EXPECT_NE(std::string(e.what()).find("error"), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("broken.cpp"), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Batched lanes over the codegen backend share one compile.

TEST(CodegenBatch, LanesShareOneModuleAndMatchScalar) {
    if (!toolchainHere()) {
        GTEST_SKIP() << "no host compiler";
    }
    const FreshCache cache("batch");
    const Netlist netlist = makeMac("mac", 16);

    SimConfig config;
    config.backend = SimBackend::Codegen;
    config.batchLanes = 4;
    const auto batch = makeSimBatch(netlist, config);
    EXPECT_EQ(codegenStats().compiles, 1u);  // four lanes, one compile

    CodegenSim scalar(netlist);
    for (unsigned cycle = 0; cycle < 16; ++cycle) {
        for (unsigned lane = 0; lane < batch->laneCount(); ++lane) {
            batch->setInput("a", lane, 3);
            batch->setInput("b", lane, cycle);
            batch->setInput("en", lane, 1);
        }
        scalar.setInput("a", 3);
        scalar.setInput("b", cycle);
        scalar.setInput("en", 1);
        batch->step();
        batch->evaluate();
        scalar.step();
        scalar.evaluate();
        for (unsigned lane = 0; lane < batch->laneCount(); ++lane) {
            ASSERT_EQ(batch->output("acc", lane), scalar.output("acc"))
                << "lane " << lane << " cycle " << cycle;
        }
    }
}

// ---------------------------------------------------------------------------
// The generic BlobStore under the shared-object cache.

TEST(BlobStoreTest, RoundTripValidateQuarantine) {
    const FreshCache cache("blob");
    const BlobStore store(cache.dir() + "/blobs", "TESTMAGIC1");
    const std::string key = "00112233445566778899aabbccddeeff";
    EXPECT_FALSE(store.contains(key));
    EXPECT_FALSE(store.load(key).has_value());

    // Long enough that corruptObject's byte flip (placed a quarter from
    // the end of the on-disk image) lands in the payload, exercising the
    // digest check rather than the header parse.
    std::string payload = "payload bytes\x01\x02";
    payload.resize(512, 'x');
    store.store(key, payload);
    EXPECT_TRUE(store.contains(key));
    EXPECT_EQ(store.objectCount(), 1u);
    EXPECT_EQ(store.keys(), std::vector<std::string>{key});
    const std::optional<std::string> loaded = store.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, payload);

    // Corruption: digest mismatch -> quarantined miss with diagnostics.
    store.corruptObject(key);
    BlobStore::LoadDiag diag;
    EXPECT_FALSE(store.load(key, &diag).has_value());
    EXPECT_TRUE(diag.quarantined);
    EXPECT_NE(diag.whyMiss.find("digest mismatch"), std::string::npos) << diag.whyMiss;
    EXPECT_FALSE(store.contains(key));
    EXPECT_EQ(store.quarantinedObjects(), 1u);
    ASSERT_EQ(store.quarantineRecords().size(), 1u);
    EXPECT_EQ(store.quarantineRecords().front().key, key);
    EXPECT_TRUE(fileExists(diag.quarantinePath));

    // Re-store over the quarantined slot and scrub stays clean.
    store.store(key, "second payload");
    const BlobStore::ScrubReport report = store.scrub();
    EXPECT_EQ(report.scanned, 1u);
    EXPECT_TRUE(report.quarantined.empty());
}

TEST(BlobStoreTest, MagicMismatchIsQuarantinedNotDecoded) {
    const FreshCache cache("magic");
    const std::string root = cache.dir() + "/blobs";
    const std::string key = "ffeeddccbbaa99887766554433221100";
    {
        const BlobStore writer(root, "STOREA1");
        writer.store(key, "bytes");
    }
    // The same object opened under a different magic fails validation.
    const BlobStore reader(root, "STOREB1");
    BlobStore::LoadDiag diag;
    EXPECT_FALSE(reader.load(key, &diag).has_value());
    EXPECT_TRUE(diag.quarantined);
    EXPECT_NE(diag.whyMiss.find("bad magic"), std::string::npos) << diag.whyMiss;
}

} // namespace
} // namespace socgen::rtl
