// Resilience harness (CTest label: resilience): runs the paper's Otsu
// Arch4 case study under an injected-fault sweep and asserts the hardened
// runtime either recovers bit-exactly or fails with a structured,
// component-naming error — never a hang, never silent corruption.

#include "socgen/apps/otsu_project.hpp"
#include "socgen/axi/stream.hpp"
#include "socgen/common/error.hpp"
#include "socgen/sim/engine.hpp"
#include "socgen/sim/fault.hpp"
#include "socgen/soc/bitstream.hpp"
#include "socgen/socgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace socgen {
namespace {

constexpr unsigned kW = 48;
constexpr unsigned kH = 48;
constexpr std::int64_t kPixels = static_cast<std::int64_t>(kW) * kH;

/// Mirrors the word-address layout of otsu_project.cpp: the RGB input
/// buffer staged by the readImage task.
constexpr std::uint64_t kImgBase = 0x1000;

/// Channel / IRQ / DMA names of the Arch4 shared-DMA system, as produced
/// by SystemSimulator ("from -> to" endpoint strings).
const char* const kInputChannel = "'soc -> grayScale/imageIn";
const char* const kChChannel = "grayScale/imageOutCH -> computeHistogram/grayScaleImage";
const char* const kSharedDma = "axi_dma_0";
const char* const kMm2sIrq = "axi_dma_0_mm2s_introut";
const char* const kS2mmIrq = "axi_dma_0_s2mm_introut";

struct ResilienceCase {
    apps::RgbImage scene = apps::makeSyntheticScene(kW, kH);
    apps::GrayImage reference = apps::otsuFilterRef(scene);
    core::Htg htg = apps::makeOtsuHtg();
    hls::KernelLibrary kernels = apps::makeOtsuKernelLibrary(kPixels);
    std::shared_ptr<core::HlsCache> cache = std::make_shared<core::HlsCache>();
    core::FlowResult arch4 = buildArch4();

    core::FlowResult buildArch4() {
        core::Flow flow(apps::otsuFlowOptions(), kernels, cache);
        return flow.run("Arch4", core::lowerToTaskGraph(htg, apps::otsuArchPartition(4)));
    }
};

ResilienceCase& fixture() {
    static ResilienceCase instance;
    return instance;
}

struct FaultRun {
    apps::OtsuSystemRunner::Result result;
    std::string injectorLog;
};

/// Runs Arch4 with the plan armed against the freshly built simulator.
FaultRun runWithPlan(const soc::SystemOptions& options, const sim::FaultPlan& plan) {
    ResilienceCase& rc = fixture();
    apps::OtsuSystemRunner runner(rc.arch4, apps::otsuArchPartition(4), options);
    sim::FaultInjector injector(plan);
    FaultRun out;
    out.result = runner.run(
        rc.scene, [&injector](soc::SystemSimulator& sim) { sim.armFaults(injector); });
    out.injectorLog = injector.log();
    return out;
}

/// All recovery mechanisms on at once — the hardened system the sweep
/// exercises. Watchdog/retry budgets are generous enough that the
/// bounded faults of FaultPlan::randomPlan always recover.
soc::SystemOptions hardenedOptions() {
    soc::SystemOptions options;
    options.useInterrupts = true;
    options.irqWatchdogCycles = 6'000;
    options.irqWatchdogFallbackToPoll = true;
    options.pollWatchdogCycles = 500'000;
    options.dmaRetryLimit = 6;
    options.memoryEcc = true;
    return options;
}

sim::FaultPlan::Space arch4FaultSpace() {
    sim::FaultPlan::Space space;
    space.channels = {kInputChannel, kChChannel};
    space.irqLines = {kMm2sIrq, kS2mmIrq};
    space.dmas = {kSharedDma};
    space.maxCycle = 20'000;
    space.ddrWords = static_cast<std::uint64_t>(kPixels);
    space.eventCount = 5;
    return space;
}

// ---------------------------------------------------------------------------
// Fault targeting: the names a plan uses must be addressable on the
// simulated system (and a clean interrupt-mode run stays bit-exact).

TEST(Resilience, FaultTargetsAreAddressable) {
    ResilienceCase& rc = fixture();
    soc::SystemOptions options;
    options.useInterrupts = true;
    apps::OtsuSystemRunner runner(rc.arch4, apps::otsuArchPartition(4), options);
    std::vector<std::string> channels;
    std::vector<std::string> irqs;
    std::vector<std::string> dmas;
    const auto run = runner.run(rc.scene, [&](soc::SystemSimulator& sim) {
        channels = sim.channelNames();
        irqs = sim.irqNames();
        dmas = sim.dmaNames();
        EXPECT_NE(sim.channelByName(kInputChannel), nullptr);
        EXPECT_NE(sim.channelByName(kChChannel), nullptr);
        EXPECT_NE(sim.irqByName(kMm2sIrq), nullptr);
        EXPECT_EQ(sim.channelByName("no-such-channel"), nullptr);
        EXPECT_EQ(sim.irqByName("no-such-line"), nullptr);
    });
    EXPECT_TRUE(run.output == rc.reference);
    const auto has = [](const std::vector<std::string>& names, const char* name) {
        return std::find(names.begin(), names.end(), name) != names.end();
    };
    EXPECT_TRUE(has(channels, kInputChannel));
    EXPECT_TRUE(has(channels, kChChannel));
    EXPECT_TRUE(has(irqs, kMm2sIrq));
    EXPECT_TRUE(has(irqs, kS2mmIrq));
    EXPECT_TRUE(has(dmas, kSharedDma));
}

// ---------------------------------------------------------------------------
// Fault kind 1: stream stall.

TEST(Resilience, TransientStreamStallRecoversBitExact) {
    sim::FaultPlan plan;
    plan.stallStream(300, kChChannel, 500);
    const FaultRun run = runWithPlan({}, plan);
    EXPECT_TRUE(run.result.output == fixture().reference);
    EXPECT_NE(run.injectorLog.find("stream-stall"), std::string::npos);
    EXPECT_NE(run.injectorLog.find("stream-resume"), std::string::npos);
}

TEST(Resilience, PersistentStreamStallHitsPollWatchdog) {
    soc::SystemOptions options;
    options.pollWatchdogCycles = 20'000;
    sim::FaultPlan plan;
    plan.stallStream(100, kInputChannel, 50'000'000);
    try {
        (void)runWithPlan(options, plan);
        FAIL() << "expected a watchdog diagnosis";
    } catch (const WatchdogError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("watchdog"), std::string::npos);
        EXPECT_NE(what.find("poll of"), std::string::npos);
        EXPECT_NE(what.find("stuck"), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Fault kind 2: dropped / delayed interrupt edges.

TEST(Resilience, IrqDropFallsBackToPolling) {
    soc::SystemOptions options;
    options.useInterrupts = true;
    options.irqWatchdogCycles = 4'000;
    options.irqWatchdogFallbackToPoll = true;
    sim::FaultPlan plan;
    plan.dropIrq(10, kMm2sIrq);
    const FaultRun run = runWithPlan(options, plan);
    EXPECT_TRUE(run.result.output == fixture().reference);
    EXPECT_NE(run.result.report.find("IRQ watchdog fires"), std::string::npos);
    EXPECT_NE(run.result.report.find("fallbacks to polling"), std::string::npos);
}

TEST(Resilience, IrqDropWithoutFallbackNamesTheLine) {
    soc::SystemOptions options;
    options.useInterrupts = true;
    options.irqWatchdogCycles = 4'000;
    options.irqWatchdogFallbackToPoll = false;
    sim::FaultPlan plan;
    plan.dropIrq(10, kMm2sIrq);
    try {
        (void)runWithPlan(options, plan);
        FAIL() << "expected a watchdog diagnosis";
    } catch (const WatchdogError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(kMm2sIrq), std::string::npos);
        EXPECT_NE(what.find("not raised within"), std::string::npos);
    }
}

TEST(Resilience, DelayedIrqEdgeIsToleratedByTheWait) {
    soc::SystemOptions options;
    options.useInterrupts = true;
    sim::FaultPlan plan;
    plan.delayIrq(10, kS2mmIrq, 2'000);
    const FaultRun run = runWithPlan(options, plan);
    EXPECT_TRUE(run.result.output == fixture().reference);
    EXPECT_NE(run.injectorLog.find("irq-delay"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault kind 3: DDR bit flips.

TEST(Resilience, DdrBitFlipCorrectedByEcc) {
    soc::SystemOptions options;
    options.memoryEcc = true;
    sim::FaultPlan plan;
    plan.flipDdrBit(50, kImgBase + 123, 5);
    const FaultRun run = runWithPlan(options, plan);
    EXPECT_TRUE(run.result.output == fixture().reference);
    EXPECT_NE(run.result.report.find("ECC-corrected"), std::string::npos);
}

TEST(Resilience, DdrMultiBitFlipIsUncorrectableButNamed) {
    soc::SystemOptions options;
    options.memoryEcc = true;
    sim::FaultPlan plan;
    plan.flipDdrBit(50, kImgBase + 77, 2);
    plan.flipDdrBit(51, kImgBase + 77, 9);
    try {
        (void)runWithPlan(options, plan);
        FAIL() << "expected an uncorrectable-ECC diagnosis";
    } catch (const SimulationError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("uncorrectable"), std::string::npos);
        EXPECT_NE(what.find("0x"), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Fault kind 4: DMA data-path corruption and stalls.

TEST(Resilience, Mm2sCorruptionRetriedToBitExact) {
    soc::SystemOptions options;
    options.dmaRetryLimit = 4;
    sim::FaultPlan plan;
    plan.corruptMm2s(100, kSharedDma, 0x00FF00FF, 3);
    const FaultRun run = runWithPlan(options, plan);
    EXPECT_TRUE(run.result.output == fixture().reference);
    EXPECT_NE(run.result.report.find("verification retries"), std::string::npos);
}

TEST(Resilience, S2mmCorruptionRewrittenToBitExact) {
    soc::SystemOptions options;
    options.dmaRetryLimit = 4;
    sim::FaultPlan plan;
    plan.corruptS2mm(100, kSharedDma, 0xA5A5A5A5, 2);
    const FaultRun run = runWithPlan(options, plan);
    EXPECT_TRUE(run.result.output == fixture().reference);
    EXPECT_NE(run.result.report.find("verification retries"), std::string::npos);
}

TEST(Resilience, PersistentDmaCorruptionExhaustsRetriesAndNamesTheDma) {
    soc::SystemOptions options;
    options.dmaRetryLimit = 2;
    sim::FaultPlan plan;
    plan.corruptMm2s(100, kSharedDma, 0xDEADBEEF, 5'000'000);
    try {
        (void)runWithPlan(options, plan);
        FAIL() << "expected a verification diagnosis";
    } catch (const SimulationError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(kSharedDma), std::string::npos);
        EXPECT_NE(what.find("failed verification"), std::string::npos);
    }
}

TEST(Resilience, DmaStallDelaysButRecovers) {
    sim::FaultPlan plan;
    plan.stallDma(200, kSharedDma, 400);
    const FaultRun run = runWithPlan({}, plan);
    EXPECT_TRUE(run.result.output == fixture().reference);
    EXPECT_NE(run.injectorLog.find("dma-stall"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault kind 5: bitstream corruption (flow-level, consumed pre-run).

/// Flips a bit of section `section`'s record bytes inside a serialized
/// image, mirroring the on-disk layout documented in bitstream.cpp:
/// magic, payload CRC, design, part, count, then `len:crc:record` lines.
std::string corruptBitstreamSection(std::string image, std::size_t section,
                                    unsigned bit) {
    std::size_t pos = 0;
    for (int line = 0; line < 5; ++line) {
        pos = image.find('\n', pos);
        if (pos == std::string::npos) {
            throw Error("test: bitstream image shorter than its header");
        }
        ++pos;
    }
    for (std::size_t i = 0;; ++i) {
        const std::size_t lenEnd = image.find(':', pos);
        if (lenEnd == std::string::npos) {
            throw Error("test: bitstream image has fewer sections than expected");
        }
        const std::size_t len = std::stoul(image.substr(pos, lenEnd - pos));
        const std::size_t recordStart = image.find(':', lenEnd + 1) + 1;
        if (i == section) {
            // Low bits keep the byte printable so only this record's CRC
            // breaks (no structural damage to neighbouring sections).
            image[recordStart] ^= static_cast<char>(1u << (bit % 3));
            return image;
        }
        pos = recordStart + len + 1;  // record + trailing newline
    }
}

TEST(Resilience, BitstreamCorruptionLocalizedToSection) {
    ResilienceCase& rc = fixture();
    ASSERT_GE(rc.arch4.bitstream.configRecords.size(), 4u);
    sim::FaultPlan plan;
    plan.corruptBitstream(2, 1);
    const auto events = plan.eventsOfKind(sim::FaultKind::BitstreamCorrupt);
    ASSERT_EQ(events.size(), 1u);
    const std::string corrupted = corruptBitstreamSection(
        rc.arch4.bitstream.serialize(), events[0].a,
        static_cast<unsigned>(events[0].b));
    try {
        (void)soc::Bitstream::parse(corrupted);
        FAIL() << "expected a CRC diagnosis";
    } catch (const BitstreamError& e) {
        ASSERT_EQ(e.badSections().size(), 1u);
        EXPECT_EQ(e.badSections()[0], 2u);
        EXPECT_NE(std::string(e.what()).find("[2]"), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Fault kind 6: per-kernel HLS failure (flow-level, degrade to software).

TEST(Resilience, HlsFailureDegradesKernelAndSoftwareFallbackIsBitExact) {
    ResilienceCase& rc = fixture();
    sim::FaultPlan plan;
    plan.failHls("segment");
    core::FlowOptions flowOptions = apps::otsuFlowOptions();
    for (const auto& e : plan.eventsOfKind(sim::FaultKind::HlsFailure)) {
        flowOptions.injectHlsFailures.insert(e.target);
    }
    core::Flow flow(flowOptions, rc.kernels, rc.cache);
    const core::FlowResult degraded = flow.run(
        "Arch4Degraded", core::lowerToTaskGraph(rc.htg, apps::otsuArchPartition(4)));

    EXPECT_TRUE(degraded.diagnostics.anyDegraded());
    EXPECT_EQ(degraded.diagnostics.degradedNodes(),
              std::vector<std::string>{"segment"});
    EXPECT_NE(degraded.diagnostics.render().find("segment"), std::string::npos);
    EXPECT_EQ(degraded.design.hlsCores().size(), 3u);

    // The flow completed: run the surviving three-core system with
    // segment mapped back to software — output must still be bit-exact.
    apps::OtsuSystemRunner runner(degraded, apps::otsuMaskPartition(0b0111));
    EXPECT_TRUE(runner.run(rc.scene).output == rc.reference);
}

TEST(Resilience, HlsFailureWithAbortPolicyStopsTheFlow) {
    ResilienceCase& rc = fixture();
    core::FlowOptions flowOptions = apps::otsuFlowOptions();
    flowOptions.hlsFailurePolicy = core::HlsFailurePolicy::Abort;
    flowOptions.injectHlsFailures.insert("segment");
    core::Flow flow(flowOptions, rc.kernels, rc.cache);
    EXPECT_THROW(
        (void)flow.run("Arch4Abort",
                       core::lowerToTaskGraph(rc.htg, apps::otsuArchPartition(4))),
        HlsError);
}

// ---------------------------------------------------------------------------
// Seed determinism: a failing sweep iteration replays exactly.

TEST(Resilience, RandomPlansAreSeedDeterministic) {
    const sim::FaultPlan::Space space = arch4FaultSpace();
    const sim::FaultPlan a = sim::FaultPlan::randomPlan(42, space);
    const sim::FaultPlan b = sim::FaultPlan::randomPlan(42, space);
    EXPECT_EQ(a.render(), b.render());
    EXPECT_EQ(a.events().size(), space.eventCount);
    EXPECT_NE(a.render(), sim::FaultPlan::randomPlan(43, space).render());
}

TEST(Resilience, SameSeedSameOutcome) {
    const sim::FaultPlan plan =
        sim::FaultPlan::randomPlan(42, arch4FaultSpace());
    const FaultRun first = runWithPlan(hardenedOptions(), plan);
    const FaultRun second = runWithPlan(hardenedOptions(), plan);
    EXPECT_TRUE(first.result.output == second.result.output);
    EXPECT_EQ(first.result.cycles, second.result.cycles);
    EXPECT_EQ(first.injectorLog, second.injectorLog);
}

// ---------------------------------------------------------------------------
// The sweep: random plans against the fully hardened system. Either the
// run recovers bit-exactly, or it fails with a structured socgen error
// that names the faulting component — it may never hang (watchdogs and
// the stall limit bound every wait) and never complete with wrong data.

TEST(Resilience, RandomFaultSweepRecoversOrDiagnoses) {
    const sim::FaultPlan::Space space = arch4FaultSpace();
    unsigned recovered = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const sim::FaultPlan plan = sim::FaultPlan::randomPlan(seed, space);
        try {
            const FaultRun run = runWithPlan(hardenedOptions(), plan);
            // A completed run under the hardened system must be bit-exact:
            // anything else would be silent corruption.
            EXPECT_TRUE(run.result.output == fixture().reference)
                << "silent corruption under " << plan.render();
            ++recovered;
        } catch (const Error& e) {
            EXPECT_FALSE(std::string(e.what()).empty()) << plan.render();
        }
    }
    // The bounded faults of randomPlan are all recoverable for this space.
    EXPECT_GE(recovered, 6u);
}

// ---------------------------------------------------------------------------
// Deadlock forensics: two cross-linked read-first stream nodes wedge, and
// the DeadlockReport names both of them with channel occupancy state.

class StreamRelay final : public sim::Component {
public:
    StreamRelay(std::string name, axi::StreamChannel& in, axi::StreamChannel& out)
        : name_(std::move(name)), in_(in), out_(out) {}

    [[nodiscard]] const std::string& name() const override { return name_; }
    bool tick() override {
        axi::StreamBeat beat;
        if (!in_.tryPop(beat)) {
            return false;  // read-first: cannot emit before consuming
        }
        (void)out_.tryPush(beat);
        return true;
    }
    [[nodiscard]] bool idle() const override { return false; }
    [[nodiscard]] std::string debugState() const override {
        return "waiting for a beat on " + in_.name();
    }

private:
    std::string name_;
    axi::StreamChannel& in_;
    axi::StreamChannel& out_;
};

TEST(Resilience, CrossLinkedStreamNodesProduceDeadlockReport) {
    axi::StreamChannel aToB("nodeA/out -> nodeB/in", 4, 32);
    axi::StreamChannel bToA("nodeB/out -> nodeA/in", 4, 32);
    StreamRelay a("nodeA", bToA, aToB);
    StreamRelay b("nodeB", aToB, bToA);
    sim::Engine engine;
    engine.add(a);
    engine.add(b);
    for (axi::StreamChannel* chan : {&aToB, &bToA}) {
        engine.addChannelWatch([chan] {
            sim::DeadlockReport::ChannelState state;
            state.name = chan->name();
            state.occupancy = chan->size();
            state.capacity = chan->capacity();
            state.popStalls = chan->popStalls();
            state.empty = chan->empty();
            return state;
        });
    }
    try {
        (void)engine.runUntilIdle(20'000, 64);
        FAIL() << "expected a deadlock";
    } catch (const sim::DeadlockError& e) {
        const sim::DeadlockReport& report = e.report();
        EXPECT_EQ(report.stallCycles, 64u);
        EXPECT_GE(report.cycle, 64u);
        const auto blocked = report.blockedComponents();
        EXPECT_NE(std::find(blocked.begin(), blocked.end(), "nodeA"), blocked.end());
        EXPECT_NE(std::find(blocked.begin(), blocked.end(), "nodeB"), blocked.end());
        ASSERT_EQ(report.components.size(), 2u);
        EXPECT_EQ(report.components[0].lastProgressCycle, 0u);
        ASSERT_EQ(report.channels.size(), 2u);
        EXPECT_TRUE(report.channels[0].empty);
        EXPECT_TRUE(report.channels[1].empty);
        EXPECT_GT(report.channels[0].popStalls, 0u);
        const std::string what = e.what();
        EXPECT_NE(what.find("deadlock"), std::string::npos);
        EXPECT_NE(what.find("nodeA"), std::string::npos);
        EXPECT_NE(what.find("nodeB"), std::string::npos);
        EXPECT_NE(what.find("waiting for a beat"), std::string::npos);
    }
}

} // namespace
} // namespace socgen
