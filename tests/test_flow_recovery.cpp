// Crash-recovery harness (CTest label: resilience): kills the flow at
// every journaled stage boundary, corrupts stored artifacts, injects
// transient tool failures and hangs, and asserts the journaled,
// supervised flow always recovers to a bit-identical bitstream — with
// zero re-synthesis of journal-committed nodes and never a silently
// loaded corrupt artifact.

#include "socgen/apps/kernels.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/textfile.hpp"
#include "socgen/core/artifact_store.hpp"
#include "socgen/core/flow.hpp"
#include "socgen/core/journal.hpp"
#include "socgen/core/parser.hpp"
#include "socgen/hls/serialize.hpp"
#include "socgen/sim/fault.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace socgen::core {
namespace {

hls::KernelLibrary exampleKernels() {
    hls::KernelLibrary lib;
    lib.add(apps::makeAddKernel());
    lib.add(apps::makeMulKernel());
    lib.add(apps::makeGaussKernel(64));
    lib.add(apps::makeEdgeKernel(64));
    return lib;
}

TaskGraph quickstartGraph() {
    constexpr const char* dsl = R"(
object q extends App {
  tg nodes;
    tg node "MUL" i "A" i "B" i "return" end;
    tg node "GAUSS" is "in" is "out" end;
    tg node "EDGE" is "in" is "out" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("GAUSS","in") end;
    tg link ("GAUSS","out") to ("EDGE","in") end;
    tg link ("EDGE","out") to 'soc end;
    tg connect "MUL";
  tg end_edges;
}
)";
    return parseDsl(dsl).graph;
}

const std::vector<std::string>& graphNodes() {
    static const std::vector<std::string> nodes = {"MUL", "GAUSS", "EDGE"};
    return nodes;
}

std::string freshDir(const std::string& name) {
    const std::string dir = testing::TempDir() + "/socgen_recovery_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

const FlowDiagnostics::NodeOutcome& outcomeOf(const FlowResult& result,
                                              const std::string& node) {
    for (const auto& n : result.diagnostics.nodes) {
        if (n.node == node) {
            return n;
        }
    }
    throw Error("test: no outcome for node " + node);
}

/// The clean reference build every recovery run must reproduce bit-exactly.
const FlowResult& referenceResult() {
    static const FlowResult result = [] {
        const hls::KernelLibrary kernels = exampleKernels();
        return Flow(FlowOptions{}, kernels).run("proj", quickstartGraph());
    }();
    return result;
}

std::string journalPathOf(const std::string& dir) {
    return dir + "/.socgen/journal/proj.jsonl";
}

// ---------------------------------------------------------------------------
// The crash sweep: kill the flow at every stage boundary (both at stage
// begin and pre-commit), then re-run with the same outputDir. The
// recovery run must produce a bit-identical bitstream, and every node the
// journal recorded as committed must be served from the store with zero
// engine attempts.

TEST(FlowRecovery, CrashSweepResumesBitIdentical) {
    const hls::KernelLibrary kernels = exampleKernels();
    const std::string referenceBits = referenceResult().bitstream.serialize();
    std::vector<std::string> stages = {"scala",   "integrate", "synth",    "devicetree",
                                       "drivers", "boot",      "artifacts"};
    for (const std::string& node : graphNodes()) {
        stages.push_back("hls:" + node);
    }
    for (const std::string& stage : stages) {
        for (std::uint64_t phase = 0; phase <= 1; ++phase) {
            const std::string tag =
                stage.substr(stage.find(':') + 1) + "_p" + std::to_string(phase);
            const std::string dir = freshDir("crash_" + tag);
            FlowOptions crashing;
            crashing.outputDir = dir;
            crashing.flowFaults.crashFlow(stage, phase);
            Flow broken(crashing, kernels);
            EXPECT_THROW((void)broken.run("proj", quickstartGraph()), FlowCrashError)
                << stage << " phase " << phase;

            // What did the crashed run durably commit?
            const FlowJournal journal = FlowJournal::open(journalPathOf(dir));
            const std::vector<std::string> committed = journal.committedStages();

            FlowOptions clean;
            clean.outputDir = dir;
            const FlowResult recovered = Flow(clean, kernels).run("proj", quickstartGraph());
            EXPECT_EQ(recovered.bitstream.serialize(), referenceBits)
                << "recovery after crash at " << stage << " phase " << phase
                << " is not bit-identical";
            EXPECT_EQ(recovered.diagnostics.digestMismatches, 0u) << stage;

            // Zero re-synthesis of committed nodes, journal-verified.
            for (const std::string& done : committed) {
                if (done.rfind("hls:", 0) != 0) {
                    continue;
                }
                const auto& outcome = outcomeOf(recovered, done.substr(4));
                EXPECT_TRUE(outcome.storeHit) << done << " after crash at " << stage;
                EXPECT_TRUE(outcome.resumedFromJournal) << done;
                EXPECT_EQ(outcome.attempts, 0u) << done;
                EXPECT_DOUBLE_EQ(outcome.toolSeconds, 0.0) << done;
            }

            // A third run resumes everything: no engine work at all.
            const FlowResult warm = Flow(clean, kernels).run("proj", quickstartGraph());
            EXPECT_EQ(warm.diagnostics.engineRuns(), 0u) << stage;
            EXPECT_EQ(warm.diagnostics.storeHits(), graphNodes().size()) << stage;
            EXPECT_EQ(warm.bitstream.serialize(), referenceBits) << stage;
            std::filesystem::remove_all(dir);
        }
    }
}

// ---------------------------------------------------------------------------
// Corruption: a stored artifact damaged after its commit must be detected
// by digest validation on the next run and rebuilt — never silently
// loaded into the design.

TEST(FlowRecovery, CorruptArtifactDetectedAndRebuilt) {
    const hls::KernelLibrary kernels = exampleKernels();
    const std::string dir = freshDir("corrupt");
    FlowOptions first;
    first.outputDir = dir;
    first.flowFaults.corruptArtifact("GAUSS");
    const FlowResult seeded = Flow(first, kernels).run("proj", quickstartGraph());
    EXPECT_EQ(seeded.diagnostics.engineRuns(), 3u);

    FlowOptions second;
    second.outputDir = dir;
    const FlowResult recovered = Flow(second, kernels).run("proj", quickstartGraph());
    const auto& gauss = outcomeOf(recovered, "GAUSS");
    EXPECT_FALSE(gauss.storeHit);  // validation rejected the object
    EXPECT_EQ(gauss.attempts, 1u);
    EXPECT_EQ(recovered.diagnostics.corruptArtifacts, 1u);
    EXPECT_EQ(recovered.diagnostics.storeHits(), 2u);  // MUL and EDGE intact
    EXPECT_EQ(recovered.bitstream.serialize(), referenceResult().bitstream.serialize());
    EXPECT_NE(recovered.diagnostics.render().find("corrupt artifact"), std::string::npos);

    // The rebuild overwrote the bad object: a third run is fully warm.
    const FlowResult warm = Flow(second, kernels).run("proj", quickstartGraph());
    EXPECT_EQ(warm.diagnostics.engineRuns(), 0u);
    std::filesystem::remove_all(dir);
}

TEST(FlowRecovery, StoreValidationRejectsFlippedByte) {
    const hls::KernelLibrary kernels = exampleKernels();
    const std::string dir = freshDir("store_validate");
    FlowOptions options;
    options.outputDir = dir;
    Flow flow(options, kernels);
    const FlowResult result = flow.run("proj", quickstartGraph());
    ASSERT_NE(flow.artifactStore(), nullptr);
    const std::string key = outcomeOf(result, "EDGE").artifactKey;
    ASSERT_TRUE(flow.artifactStore()->contains(key));
    flow.artifactStore()->corruptObject(key);
    std::string why;
    EXPECT_FALSE(flow.artifactStore()->load(key, &why).has_value());
    EXPECT_FALSE(why.empty());
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Cache-key regression (the stale-hit bug): the in-memory cache is keyed
// by content, so changing a kernel's directives must miss and re-run HLS
// rather than returning the result synthesized under the old directives.

TEST(FlowRecovery, ChangedDirectivesNeverHitTheStaleCacheEntry) {
    const hls::KernelLibrary kernels = exampleKernels();
    auto cache = std::make_shared<HlsCache>();
    const FlowResult plain =
        Flow(FlowOptions{}, kernels, cache).run("a", quickstartGraph());
    EXPECT_EQ(cache->size(), 3u);

    FlowOptions unrolled;
    unrolled.kernelDirectives["GAUSS"] = hls::Directives{};
    unrolled.kernelDirectives["GAUSS"].unrollFactors["i"] = 4;
    const FlowResult tuned =
        Flow(unrolled, kernels, cache).run("b", quickstartGraph());

    // GAUSS re-synthesized under the new directives; MUL/EDGE still hit.
    EXPECT_FALSE(outcomeOf(tuned, "GAUSS").cacheHit);
    EXPECT_EQ(outcomeOf(tuned, "GAUSS").attempts, 1u);
    EXPECT_TRUE(outcomeOf(tuned, "MUL").cacheHit);
    EXPECT_TRUE(outcomeOf(tuned, "EDGE").cacheHit);
    EXPECT_NE(outcomeOf(tuned, "GAUSS").artifactKey,
              outcomeOf(plain, "GAUSS").artifactKey);
    EXPECT_NE(tuned.hlsResults.at("GAUSS").directiveText,
              plain.hlsResults.at("GAUSS").directiveText);
    EXPECT_EQ(cache->size(), 4u);  // both GAUSS variants coexist

    // And the original directives still hit their own entry.
    const FlowResult again =
        Flow(FlowOptions{}, kernels, cache).run("c", quickstartGraph());
    EXPECT_TRUE(outcomeOf(again, "GAUSS").cacheHit);
    EXPECT_EQ(again.hlsResults.at("GAUSS").vhdl, plain.hlsResults.at("GAUSS").vhdl);
}

TEST(FlowRecovery, ArtifactKeySensitivity) {
    const hls::KernelLibrary kernels = exampleKernels();
    const hls::Kernel& gauss = kernels.get("GAUSS");
    const hls::Directives base;
    const soc::FpgaDevice device = soc::zedboard();
    const std::string key = ArtifactStore::deriveKey(gauss, base, device, "tool-1");
    EXPECT_EQ(key.size(), 32u);
    EXPECT_EQ(key, ArtifactStore::deriveKey(gauss, base, device, "tool-1"));

    hls::Directives tuned = base;
    tuned.unrollFactors["i"] = 2;
    EXPECT_NE(key, ArtifactStore::deriveKey(gauss, tuned, device, "tool-1"));

    soc::FpgaDevice other = device;
    other.part = "xc7z045ffg900-2";
    EXPECT_NE(key, ArtifactStore::deriveKey(gauss, base, other, "tool-1"));
    EXPECT_NE(key, ArtifactStore::deriveKey(gauss, base, device, "tool-2"));
    EXPECT_NE(key, ArtifactStore::deriveKey(kernels.get("EDGE"), base, device, "tool-1"));
}

// ---------------------------------------------------------------------------
// Supervision: transient failures are retried with backoff; exhaustion
// degrades under the Degrade policy; hangs hit the deadline and retry.

TEST(FlowRecovery, TransientFailureRetriesThenSucceeds) {
    const hls::KernelLibrary kernels = exampleKernels();
    FlowOptions options;
    options.transientHlsFailures["GAUSS"] = 2;  // attempts 1+2 fail, 3 succeeds
    const FlowResult result = Flow(options, kernels).run("proj", quickstartGraph());
    EXPECT_FALSE(result.diagnostics.anyDegraded());
    EXPECT_EQ(outcomeOf(result, "GAUSS").attempts, 3u);
    EXPECT_EQ(outcomeOf(result, "MUL").attempts, 1u);
    EXPECT_GE(result.diagnostics.stageRetries, 2u);
    EXPECT_EQ(result.bitstream.serialize(), referenceResult().bitstream.serialize());
}

TEST(FlowRecovery, RetriesExhaustedDegradeTheNode) {
    const hls::KernelLibrary kernels = exampleKernels();
    FlowOptions options;
    options.transientHlsFailures["GAUSS"] = 100;  // outlives every retry budget
    const FlowResult result = Flow(options, kernels).run("proj", quickstartGraph());
    EXPECT_EQ(result.diagnostics.degradedNodes(), std::vector<std::string>{"GAUSS"});
    EXPECT_EQ(outcomeOf(result, "GAUSS").attempts,
              static_cast<unsigned>(StagePolicy{}.maxAttempts));

    FlowOptions aborting = options;
    aborting.hlsFailurePolicy = HlsFailurePolicy::Abort;
    EXPECT_THROW((void)Flow(aborting, kernels).run("proj", quickstartGraph()), HlsError);
}

TEST(FlowRecovery, StageHangHitsDeadlineAndRetries) {
    const hls::KernelLibrary kernels = exampleKernels();
    FlowOptions options;
    options.stagePolicy.deadlineMs = 250.0;
    options.flowFaults.hangStage("hls:GAUSS", 1'000);  // one-shot: retry is clean
    const FlowResult result = Flow(options, kernels).run("proj", quickstartGraph());
    EXPECT_FALSE(result.diagnostics.anyDegraded());
    EXPECT_EQ(outcomeOf(result, "GAUSS").attempts, 2u);
    EXPECT_GE(result.diagnostics.stageTimeouts, 1u);
    EXPECT_EQ(result.bitstream.serialize(), referenceResult().bitstream.serialize());
}

// ---------------------------------------------------------------------------
// Journal parity: jobs=4 must leave the same journal and the same
// per-node diagnostics as jobs=1 even under injected failures.

TEST(FlowRecovery, ParallelJobsLeaveIdenticalJournalAndDiagnostics) {
    const hls::KernelLibrary kernels = exampleKernels();
    const std::string dirSerial = freshDir("jobs1");
    const std::string dirParallel = freshDir("jobs4");
    const auto runWith = [&](const std::string& dir, unsigned jobs) {
        FlowOptions options;
        options.outputDir = dir;
        options.jobs = jobs;
        options.transientHlsFailures["EDGE"] = 1;
        return Flow(options, kernels).run("proj", quickstartGraph());
    };
    const FlowResult serial = runWith(dirSerial, 1);
    const FlowResult parallel = runWith(dirParallel, 4);

    const FlowJournal journalSerial = FlowJournal::open(journalPathOf(dirSerial));
    const FlowJournal journalParallel = FlowJournal::open(journalPathOf(dirParallel));
    EXPECT_EQ(journalSerial.renderText(), journalParallel.renderText());
    EXPECT_FALSE(journalSerial.renderText().empty());

    ASSERT_EQ(serial.diagnostics.nodes.size(), parallel.diagnostics.nodes.size());
    for (std::size_t i = 0; i < serial.diagnostics.nodes.size(); ++i) {
        const auto& a = serial.diagnostics.nodes[i];
        const auto& b = parallel.diagnostics.nodes[i];
        EXPECT_EQ(a.node, b.node);
        EXPECT_EQ(a.degraded, b.degraded);
        EXPECT_EQ(a.attempts, b.attempts);
        EXPECT_EQ(a.cacheHit, b.cacheHit);
        EXPECT_EQ(a.storeHit, b.storeHit);
        EXPECT_EQ(a.artifactKey, b.artifactKey);
        EXPECT_DOUBLE_EQ(a.toolSeconds, b.toolSeconds);
    }
    EXPECT_EQ(serial.diagnostics.render(), parallel.diagnostics.render());
    EXPECT_EQ(serial.bitstream.serialize(), parallel.bitstream.serialize());

    // The per-stage table agrees field by field (hostMs is the only
    // non-deterministic column and is deliberately excluded).
    ASSERT_EQ(serial.diagnostics.stages.size(), parallel.diagnostics.stages.size());
    ASSERT_FALSE(serial.diagnostics.stages.empty());
    for (std::size_t i = 0; i < serial.diagnostics.stages.size(); ++i) {
        const auto& a = serial.diagnostics.stages[i];
        const auto& b = parallel.diagnostics.stages[i];
        EXPECT_EQ(a.stage, b.stage);
        EXPECT_EQ(a.attempts, b.attempts);
        EXPECT_EQ(a.timeouts, b.timeouts);
        EXPECT_DOUBLE_EQ(a.toolSeconds, b.toolSeconds);
        EXPECT_EQ(a.source, b.source);
        EXPECT_EQ(a.committed, b.committed);
    }

    // Every written artifact is byte-identical across jobs settings.
    // REPORT.md is excluded: it renders the measured host milliseconds.
    const auto artifactBytes = [](const std::string& dir) {
        std::map<std::string, std::string> files;
        const std::filesystem::path root = std::filesystem::path(dir) / "proj";
        for (const auto& entry : std::filesystem::recursive_directory_iterator(root)) {
            if (!entry.is_regular_file() || entry.path().filename() == "REPORT.md") {
                continue;
            }
            std::ifstream in(entry.path(), std::ios::binary);
            std::string bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
            files.emplace(std::filesystem::relative(entry.path(), root).string(),
                          std::move(bytes));
        }
        return files;
    };
    const auto filesSerial = artifactBytes(dirSerial);
    EXPECT_FALSE(filesSerial.empty());
    EXPECT_EQ(filesSerial, artifactBytes(dirParallel));
    std::filesystem::remove_all(dirSerial);
    std::filesystem::remove_all(dirParallel);
}

// ---------------------------------------------------------------------------
// Journal robustness: torn tails are compacted; changed flow inputs reset
// the journal rather than resuming against stale commits.

TEST(FlowRecovery, TornJournalTailIsCompactedAndResumeStillWorks) {
    const hls::KernelLibrary kernels = exampleKernels();
    const std::string dir = freshDir("torn");
    FlowOptions options;
    options.outputDir = dir;
    (void)Flow(options, kernels).run("proj", quickstartGraph());

    // Simulate a crash mid-append: a partial record with no newline.
    {
        std::ofstream torn(journalPathOf(dir), std::ios::app | std::ios::binary);
        torn << R"({"seq": 99, "event": "com)";
    }
    const FlowJournal compacted = FlowJournal::open(journalPathOf(dir));
    for (const auto& record : compacted.records()) {
        EXPECT_NE(record.seq, 99u);
    }

    const FlowResult resumed = Flow(options, kernels).run("proj", quickstartGraph());
    EXPECT_EQ(resumed.diagnostics.engineRuns(), 0u);
    EXPECT_EQ(resumed.diagnostics.storeHits(), 3u);
    EXPECT_EQ(resumed.bitstream.serialize(), referenceResult().bitstream.serialize());
    std::filesystem::remove_all(dir);
}

TEST(FlowRecovery, ChangedInputsResetTheJournal) {
    const hls::KernelLibrary kernels = exampleKernels();
    const std::string dir = freshDir("reset");
    FlowOptions options;
    options.outputDir = dir;
    (void)Flow(options, kernels).run("proj", quickstartGraph());

    FlowOptions bumped = options;
    bumped.toolVersion = "socgen-hls-2";  // invalidates keys AND the fingerprint
    const FlowResult rebuilt = Flow(bumped, kernels).run("proj", quickstartGraph());
    EXPECT_EQ(rebuilt.diagnostics.engineRuns(), 3u);
    EXPECT_EQ(rebuilt.diagnostics.storeHits(), 0u);
    EXPECT_EQ(rebuilt.diagnostics.resumedStages, 0u);
    for (const auto& n : rebuilt.diagnostics.nodes) {
        EXPECT_FALSE(n.resumedFromJournal) << n.node;
    }
    std::filesystem::remove_all(dir);
}

TEST(FlowRecovery, SwitchedSimBackendResetsTheJournal) {
    // The resolved simulation backend is folded into the flow
    // fingerprint: a journal written under the compiled engine must not
    // be resumed under the event-driven one (sim-derived outputs could
    // otherwise replay across backends), while HLS cores — which do not
    // depend on how they are later simulated — still come from the store.
    const hls::KernelLibrary kernels = exampleKernels();
    const std::string dir = freshDir("simbackend");
    FlowOptions options;
    options.outputDir = dir;
    (void)Flow(options, kernels).run("proj", quickstartGraph());  // Auto -> compiled

    FlowOptions switched = options;
    switched.simBackend = rtl::SimBackend::EventDriven;
    const FlowResult rebuilt = Flow(switched, kernels).run("proj", quickstartGraph());
    EXPECT_EQ(rebuilt.diagnostics.storeHits(), 3u);
    EXPECT_EQ(rebuilt.diagnostics.engineRuns(), 0u);
    EXPECT_EQ(rebuilt.diagnostics.resumedStages, 0u);
    for (const auto& n : rebuilt.diagnostics.nodes) {
        EXPECT_FALSE(n.resumedFromJournal) << n.node;
    }

    // The SOCGEN_SIM_BACKEND override resolves to the same fingerprint
    // as the explicit option, so this run resumes the event journal.
    ::setenv("SOCGEN_SIM_BACKEND", "event", 1);
    const FlowResult viaEnv = Flow(options, kernels).run("proj", quickstartGraph());
    ::unsetenv("SOCGEN_SIM_BACKEND");
    EXPECT_GT(viaEnv.diagnostics.resumedStages, 0u);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Codec: a decoded artifact is interchangeable with a fresh result, and
// damage anywhere in the byte stream is detected.

TEST(FlowRecovery, HlsResultCodecRoundTrips) {
    const hls::KernelLibrary kernels = exampleKernels();
    const FlowResult result = Flow(FlowOptions{}, kernels).run("proj", quickstartGraph());
    for (const std::string& node : graphNodes()) {
        const hls::HlsResult& original = result.hlsResults.at(node);
        const std::string bytes = hls::encodeHlsResult(original);
        const hls::HlsResult decoded = hls::decodeHlsResult(bytes);
        EXPECT_EQ(decoded.kernelName, original.kernelName);
        EXPECT_EQ(decoded.vhdl, original.vhdl);
        EXPECT_EQ(decoded.verilog, original.verilog);
        EXPECT_EQ(decoded.directiveText, original.directiveText);
        EXPECT_EQ(decoded.reportText, original.reportText);
        EXPECT_DOUBLE_EQ(decoded.toolSeconds, original.toolSeconds);
        EXPECT_EQ(decoded.resources, original.resources);
        EXPECT_EQ(decoded.program.ports.size(), original.program.ports.size());
        EXPECT_EQ(decoded.netlist.cells().size(), original.netlist.cells().size());
        EXPECT_EQ(decoded.netlist.nets().size(), original.netlist.nets().size());
        // Re-encoding the decode is byte-stable (canonical form).
        EXPECT_EQ(hls::encodeHlsResult(decoded), bytes);
    }
}

TEST(FlowRecovery, CodecRejectsTruncationAndTrailingGarbage) {
    const hls::KernelLibrary kernels = exampleKernels();
    const FlowResult result = Flow(FlowOptions{}, kernels).run("proj", quickstartGraph());
    const std::string bytes = hls::encodeHlsResult(result.hlsResults.at("MUL"));
    EXPECT_THROW((void)hls::decodeHlsResult(bytes.substr(0, bytes.size() / 2)),
                 ArtifactError);
    EXPECT_THROW((void)hls::decodeHlsResult(bytes + "x"), ArtifactError);
    EXPECT_THROW((void)hls::decodeHlsResult(""), ArtifactError);
}

// ---------------------------------------------------------------------------
// Store hygiene under crashes and concurrent writers

TEST(FlowRecovery, OrphanedTempFilesAreCollectedOnOpen) {
    const std::string dir = freshDir("tmp_gc");
    const std::string storeDir = dir + "/store";
    {
        const ArtifactStore store(storeDir);
        const FlowResult result =
            Flow(FlowOptions{}, exampleKernels()).run("proj", quickstartGraph());
        store.store("deadbeefdeadbeefdeadbeefdeadbeef", result.hlsResults.at("MUL"));
        EXPECT_EQ(store.reclaimedTempFiles(), 0u);
    }
    // A crashed writer's leftovers: write-then-rename temporaries that
    // never made it to their final name, in the objects directory.
    writeTextFile(storeDir + "/objects/0123.art.tmp1", "torn partial object");
    writeTextFile(storeDir + "/objects/4567.art.tmp42", "another one");

    const ArtifactStore reopened(storeDir);
    EXPECT_EQ(reopened.reclaimedTempFiles(), 2u);
    EXPECT_FALSE(fileExists(storeDir + "/objects/0123.art.tmp1"));
    EXPECT_FALSE(fileExists(storeDir + "/objects/4567.art.tmp42"));
    // The real object survived the sweep.
    EXPECT_TRUE(reopened.contains("deadbeefdeadbeefdeadbeefdeadbeef"));
    EXPECT_EQ(reopened.objectCount(), 1u);
    std::filesystem::remove_all(dir);
}

TEST(FlowRecovery, TwoWritersSameDigestLeaveOneValidObject) {
    // Two flows (two tenants of a shared store) synthesize the same
    // kernel concurrently and both store under the same content key.
    // Whoever wins the rename, the object must validate and decode —
    // never a torn mix of both writers.
    const std::string dir = freshDir("two_writers");
    const ArtifactStore store(dir + "/store");
    const FlowResult result =
        Flow(FlowOptions{}, exampleKernels()).run("proj", quickstartGraph());
    const hls::HlsResult& artifact = result.hlsResults.at("GAUSS");
    const std::string key = "feedfacefeedfacefeedfacefeedface";

    constexpr int kWriters = 8;
    constexpr int kRoundsPerWriter = 25;
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&store, &artifact, &key] {
            for (int i = 0; i < kRoundsPerWriter; ++i) {
                store.store(key, artifact);
            }
        });
    }
    for (auto& thread : writers) {
        thread.join();
    }
    std::string whyMiss;
    const std::optional<hls::HlsResult> loaded = store.load(key, &whyMiss);
    ASSERT_TRUE(loaded.has_value()) << whyMiss;
    EXPECT_EQ(hls::encodeHlsResult(*loaded), hls::encodeHlsResult(artifact));
    EXPECT_EQ(store.objectCount(), 1u);
    // No orphaned temporaries survive the race either.
    const ArtifactStore reopened(dir + "/store");
    EXPECT_EQ(reopened.reclaimedTempFiles(), 0u);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace socgen::core
