#include "socgen/apps/kernels.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/core/dsl.hpp"
#include "socgen/core/parser.hpp"
#include "socgen/core/project.hpp"

#include <gtest/gtest.h>

namespace socgen::core {
namespace {

hls::KernelLibrary exampleKernels() {
    hls::KernelLibrary lib;
    lib.add(apps::makeAddKernel());
    lib.add(apps::makeMulKernel());
    lib.add(apps::makeGaussKernel(64));
    lib.add(apps::makeEdgeKernel(64));
    return lib;
}

SocProject& buildQuickstart(SocProject& p) {
    p.tg_nodes();
    p.tg_node("MUL").i("A").i("B").i("return").end();
    p.tg_node("ADD").i("A").i("B").i("return").end();
    p.tg_node("GAUSS").is("in").is("out").end();
    p.tg_node("EDGE").is("in").is("out").end();
    p.tg_end_nodes();
    p.tg_edges();
    p.tg_link(SocProject::soc()).to(SocProject::port("GAUSS", "in")).end();
    p.tg_link(SocProject::port("GAUSS", "out")).to(SocProject::port("EDGE", "in")).end();
    p.tg_link(SocProject::port("EDGE", "out")).to(SocProject::soc()).end();
    p.tg_connect("MUL");
    p.tg_connect("ADD");
    p.tg_end_edges();
    return p;
}

TEST(EmbeddedDsl, BuildsAndExecutesTheRunningExample) {
    const hls::KernelLibrary kernels = exampleKernels();
    SocProject project("quickstart", kernels);
    buildQuickstart(project);
    EXPECT_TRUE(project.executed());
    EXPECT_EQ(project.hlsRunsCompleted(), 4u);
    const FlowResult& result = project.result();
    EXPECT_EQ(result.projectName, "quickstart");
    EXPECT_EQ(result.hlsResults.size(), 4u);
    EXPECT_EQ(result.design.hlsCores().size(), 4u);
    EXPECT_FALSE(result.tclText.empty());
    EXPECT_FALSE(result.bitstream.configRecords.empty());
}

TEST(EmbeddedDsl, KeywordsRunHlsImmediately) {
    // The `end` keyword invokes HLS per node (paper Section IV-B step 4):
    // after two tg_node..end calls, two HLS runs have completed even
    // though edges were never declared.
    const hls::KernelLibrary kernels = exampleKernels();
    SocProject project("partial", kernels);
    project.tg_nodes();
    project.tg_node("ADD").i("A").i("B").i("return").end();
    project.tg_node("MUL").i("A").i("B").i("return").end();
    EXPECT_EQ(project.hlsRunsCompleted(), 2u);
    EXPECT_FALSE(project.executed());
}

TEST(EmbeddedDsl, StepLogFollowsThePaper) {
    const hls::KernelLibrary kernels = exampleKernels();
    LogCapture capture(LogLevel::Info);
    SocProject project("quickstart", kernels);
    buildQuickstart(project);
    // The eight execution steps of Section IV-B all appear.
    for (int step = 1; step <= 8; ++step) {
        EXPECT_TRUE(capture.contains(format("dsl step %d", step))) << "step " << step;
    }
    // Step order: 1 (nodes) before 4 (HLS) before 8 (end_edges).
    std::size_t step1 = SIZE_MAX;
    std::size_t step4 = SIZE_MAX;
    std::size_t step8 = SIZE_MAX;
    const auto& lines = capture.lines();
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].find("dsl step 1") != std::string::npos && step1 == SIZE_MAX) {
            step1 = i;
        }
        if (lines[i].find("dsl step 4") != std::string::npos && step4 == SIZE_MAX) {
            step4 = i;
        }
        if (lines[i].find("dsl step 8") != std::string::npos && step8 == SIZE_MAX) {
            step8 = i;
        }
    }
    EXPECT_LT(step1, step4);
    EXPECT_LT(step4, step8);
}

TEST(EmbeddedDsl, OutOfOrderKeywordsRejected) {
    const hls::KernelLibrary kernels = exampleKernels();
    {
        SocProject p("bad", kernels);
        EXPECT_THROW((void)p.tg_node("ADD"), DslError);  // before tg_nodes
    }
    {
        SocProject p("bad", kernels);
        EXPECT_THROW(p.tg_edges(), DslError);  // before nodes section closed
    }
    {
        SocProject p("bad", kernels);
        p.tg_nodes();
        EXPECT_THROW(p.tg_connect("ADD"), DslError);  // connect inside nodes
    }
    {
        SocProject p("bad", kernels);
        p.tg_nodes();
        EXPECT_THROW(p.tg_end_edges(), DslError);
    }
    {
        SocProject p("bad", kernels);
        p.tg_nodes();
        EXPECT_THROW(p.tg_end_nodes(), DslError);  // empty nodes list
    }
}

TEST(EmbeddedDsl, NodeScopeValidation) {
    const hls::KernelLibrary kernels = exampleKernels();
    SocProject p("bad", kernels);
    p.tg_nodes();
    {
        auto scope = p.tg_node("ADD");
        EXPECT_THROW(scope.end(), DslError);  // no interfaces declared
    }
    {
        auto scope = p.tg_node("ADD");
        scope.i("A").i("B").i("return");
        scope.end();
        EXPECT_THROW(scope.end(), DslError);  // double end
    }
}

TEST(EmbeddedDsl, LinkScopeValidation) {
    const hls::KernelLibrary kernels = exampleKernels();
    SocProject p("bad", kernels);
    p.tg_nodes();
    p.tg_node("GAUSS").is("in").is("out").end();
    p.tg_end_nodes();
    p.tg_edges();
    {
        auto link = p.tg_link(SocProject::soc());
        EXPECT_THROW(link.end(), DslError);  // missing to()
    }
    {
        auto link = p.tg_link(SocProject::soc());
        link.to(SocProject::port("GAUSS", "in"));
        EXPECT_THROW(link.to(SocProject::port("GAUSS", "in")), DslError);  // double to
    }
}

TEST(EmbeddedDsl, ResultBeforeExecutionThrows) {
    const hls::KernelLibrary kernels = exampleKernels();
    SocProject p("pending", kernels);
    EXPECT_THROW((void)p.result(), DslError);
}

TEST(EmbeddedDsl, UnknownKernelRejectedAtEnd) {
    const hls::KernelLibrary kernels = exampleKernels();
    SocProject p("bad", kernels);
    p.tg_nodes();
    auto scope = p.tg_node("NO_SUCH_KERNEL");
    scope.i("A");
    EXPECT_THROW(scope.end(), DslError);
}

TEST(EmbeddedDsl, InterfaceKindMismatchRejected) {
    const hls::KernelLibrary kernels = exampleKernels();
    SocProject p("bad", kernels);
    p.tg_nodes();
    // ADD's ports are scalars; declaring one as a stream must fail.
    auto scope = p.tg_node("ADD");
    scope.is("A");
    EXPECT_THROW(scope.end(), DslError);
}

TEST(EmbeddedDsl, EquivalentToParsedText) {
    // The embedded DSL and the textual front end produce the same graph
    // and the same generated Tcl.
    const hls::KernelLibrary kernels = exampleKernels();
    SocProject project("quickstart", kernels);
    buildQuickstart(project);
    const FlowResult& embedded = project.result();

    const FlowResult parsed = runDslText(embedded.dslText, kernels);
    EXPECT_TRUE(parsed.graph == embedded.graph);
    EXPECT_EQ(parsed.tclText, embedded.tclText);
    EXPECT_EQ(parsed.dslText, embedded.dslText);
    EXPECT_EQ(parsed.synthesis.total, embedded.synthesis.total);
}

TEST(Comparison, TclRatiosInPaperBand) {
    const hls::KernelLibrary kernels = exampleKernels();
    SocProject project("quickstart", kernels);
    buildQuickstart(project);
    const DslTclComparison cmp = compareDslToTcl(project.result());
    // Section VI-C: Tcl is ~4x the lines and 4-10x the characters.
    EXPECT_GT(cmp.lineRatio(), 2.0);
    EXPECT_LT(cmp.lineRatio(), 6.0);
    EXPECT_GT(cmp.charRatio(), 4.0);
    EXPECT_LT(cmp.charRatio(), 10.5);
}

} // namespace
} // namespace socgen::core
