#include "socgen/apps/kernels.hpp"
#include "socgen/apps/otsu.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/rtl/sim_backend.hpp"

#include <gtest/gtest.h>

namespace socgen::hls {
namespace {

HlsResult synth(const Kernel& kernel, Directives d = {}) {
    return HlsEngine{}.synthesize(kernel, d);
}

TEST(Codegen, AllAppKernelNetlistsAreValid) {
    // generateRtl runs Netlist::check() internally; synthesize throws on
    // structural violations.
    EXPECT_NO_THROW(synth(apps::makeAddKernel()));
    EXPECT_NO_THROW(synth(apps::makeMulKernel()));
    EXPECT_NO_THROW(synth(apps::makeGaussKernel(256)));
    EXPECT_NO_THROW(synth(apps::makeEdgeKernel(256)));
    EXPECT_NO_THROW(synth(apps::makeGrayScaleKernel(1024), apps::grayScaleDirectives()));
    EXPECT_NO_THROW(synth(apps::makeHistogramKernel(1024)));
    EXPECT_NO_THROW(synth(apps::makeOtsuKernel(1024), apps::otsuDirectives()));
    EXPECT_NO_THROW(synth(apps::makeBinarizationKernel(1024)));
}

TEST(Codegen, PortSetsMatchKernelInterfaces) {
    const HlsResult r = synth(apps::makeBinarizationKernel(64));
    const rtl::Netlist& n = r.netlist;
    EXPECT_TRUE(n.hasPort("ap_start"));
    EXPECT_TRUE(n.hasPort("ap_done"));
    // Stream-in: tdata/tvalid in, tready out.
    EXPECT_TRUE(n.hasPort("grayScaleImage_tdata"));
    EXPECT_TRUE(n.hasPort("grayScaleImage_tvalid"));
    EXPECT_TRUE(n.hasPort("grayScaleImage_tready"));
    EXPECT_EQ(n.port("grayScaleImage_tready").dir, rtl::PortDir::Out);
    // Stream-out: tdata/tvalid out, tready in.
    EXPECT_TRUE(n.hasPort("segmentedGrayImage_tdata"));
    EXPECT_EQ(n.port("segmentedGrayImage_tdata").dir, rtl::PortDir::Out);
    EXPECT_EQ(n.port("segmentedGrayImage_tready").dir, rtl::PortDir::In);
}

TEST(Codegen, ScalarPortsOnAxiLiteCore) {
    const HlsResult r = synth(apps::makeAddKernel());
    EXPECT_TRUE(r.netlist.hasPort("A"));
    EXPECT_TRUE(r.netlist.hasPort("B"));
    EXPECT_TRUE(r.netlist.hasPort("return"));
    EXPECT_EQ(r.netlist.port("A").dir, rtl::PortDir::In);
    EXPECT_EQ(r.netlist.port("return").dir, rtl::PortDir::Out);
}

TEST(Codegen, FsmAndSharedUnitsPresent) {
    const HlsResult r = synth(apps::makeOtsuKernel(512), apps::otsuDirectives());
    EXPECT_EQ(r.netlist.countKind(rtl::CellKind::Fsm), 1u);
    EXPECT_GE(r.netlist.countKind(rtl::CellKind::Div), 1u);
    EXPECT_GE(r.netlist.countKind(rtl::CellKind::Mul), 1u);
    EXPECT_GE(r.netlist.countKind(rtl::CellKind::Bram), 1u);
}

/// Straight-line scalar kernels must be functionally identical between
/// the generated netlist (simulated at gate level) and the kernel
/// semantics: drive ap_start, clock until ap_done, read the result port.
class ScalarNetlistEquivalence
    : public testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {};

TEST_P(ScalarNetlistEquivalence, AddMatches) {
    const auto [a, b] = GetParam();
    const HlsResult r = synth(apps::makeAddKernel());
    const auto simPtr = rtl::makeSimulator(r.netlist);
    rtl::Simulator& sim = *simPtr;
    sim.setInput("ap_start", 1);
    sim.setInput("A", a);
    sim.setInput("B", b);
    for (int cycle = 0; cycle < 64; ++cycle) {
        sim.step();
        sim.evaluate();
        if (sim.output("ap_done") != 0) {
            break;
        }
    }
    EXPECT_EQ(sim.output("ap_done"), 1u);
    EXPECT_EQ(sim.output("return"), (a + b) & 0xFFFFFFFFu);
}

TEST_P(ScalarNetlistEquivalence, MulMatches) {
    const auto [a, b] = GetParam();
    const HlsResult r = synth(apps::makeMulKernel());
    const auto simPtr = rtl::makeSimulator(r.netlist);
    rtl::Simulator& sim = *simPtr;
    sim.setInput("ap_start", 1);
    sim.setInput("A", a);
    sim.setInput("B", b);
    for (int cycle = 0; cycle < 64; ++cycle) {
        sim.step();
        sim.evaluate();
        if (sim.output("ap_done") != 0) {
            break;
        }
    }
    EXPECT_EQ(sim.output("return"), (a * b) & 0xFFFFFFFFu);
}

INSTANTIATE_TEST_SUITE_P(Vectors, ScalarNetlistEquivalence,
                         testing::Values(std::make_pair(0ull, 0ull),
                                         std::make_pair(20ull, 22ull),
                                         std::make_pair(6ull, 7ull),
                                         std::make_pair(0xFFFFFFFFull, 2ull),
                                         std::make_pair(12345ull, 67890ull)));

TEST(Resources, DspForMulWidths) {
    EXPECT_EQ(dspForMul(8), 1);
    EXPECT_EQ(dspForMul(18), 1);
    EXPECT_EQ(dspForMul(25), 2);
    EXPECT_EQ(dspForMul(32), 2);
    EXPECT_EQ(dspForMul(64), 4);
}

TEST(Resources, Bram18Granularity) {
    EXPECT_EQ(bram18For(16, 32), 0);        // tiny -> LUTRAM
    EXPECT_EQ(bram18For(256, 32), 1);       // 8 Kb
    EXPECT_EQ(bram18For(1024, 32), 2);      // 32 Kb -> 2 blocks
    EXPECT_EQ(bram18For(65536, 8), 29);     // half a megabit
}

TEST(Resources, EstimateIncludesInterfaces) {
    const CostModel cost;
    const auto lite = cost.axiLitePortCost(32);
    const auto stream = cost.axiStreamPortCost(32);
    EXPECT_GT(lite.lut, 0);
    EXPECT_GT(lite.ff, 0);
    EXPECT_GT(stream.ff, 0);
    const auto overhead = cost.coreOverhead();
    EXPECT_GT(overhead.lut, 0);
}

TEST(Resources, OtsuCoreDominatesHistogramCore) {
    const HlsResult hist = synth(apps::makeHistogramKernel(4096));
    const HlsResult otsu = synth(apps::makeOtsuKernel(4096), apps::otsuDirectives());
    EXPECT_GT(otsu.resources.lut, hist.resources.lut);   // divider-heavy
    EXPECT_GT(otsu.resources.dsp, hist.resources.dsp);
    EXPECT_EQ(hist.resources.dsp, 0);
}

TEST(Resources, CaseStudyDspColumn) {
    // Table II: DSP usage is 0 (histogram), 2 (otsuMethod), 1 (grayScale),
    // 0 (binarization).
    EXPECT_EQ(synth(apps::makeHistogramKernel(1024)).resources.dsp, 0);
    EXPECT_EQ(synth(apps::makeOtsuKernel(1024), apps::otsuDirectives()).resources.dsp, 2);
    EXPECT_EQ(
        synth(apps::makeGrayScaleKernel(1024), apps::grayScaleDirectives()).resources.dsp,
        1);
    EXPECT_EQ(synth(apps::makeBinarizationKernel(1024)).resources.dsp, 0);
}

TEST(Engine, ResultCarriesAllArtifacts) {
    const HlsResult r = synth(apps::makeGaussKernel(128));
    EXPECT_EQ(r.kernelName, "GAUSS");
    EXPECT_FALSE(r.vhdl.empty());
    EXPECT_FALSE(r.reportText.empty());
    EXPECT_FALSE(r.directiveText.empty());
    EXPECT_FALSE(r.program.instrs.empty());
    EXPECT_GT(r.toolSeconds, 0.0);
    EXPECT_NE(r.vhdl.find("entity GAUSS"), std::string::npos);
}

TEST(Engine, DeterministicAcrossRuns) {
    const HlsResult a = synth(apps::makeEdgeKernel(64));
    const HlsResult b = synth(apps::makeEdgeKernel(64));
    EXPECT_EQ(a.vhdl, b.vhdl);
    EXPECT_EQ(a.resources, b.resources);
    EXPECT_DOUBLE_EQ(a.toolSeconds, b.toolSeconds);
}

} // namespace
} // namespace socgen::hls
