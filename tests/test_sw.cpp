#include "socgen/apps/kernels.hpp"
#include "socgen/common/error.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/soc/synthesis.hpp"
#include "socgen/sw/boot.hpp"
#include "socgen/sw/devicetree.hpp"
#include "socgen/sw/drivers.hpp"

#include <gtest/gtest.h>

namespace socgen::sw {
namespace {

struct Fixture {
    soc::BlockDesign design{"fixture", soc::zedboard()};
    std::map<std::string, hls::Program> programs;

    Fixture() {
        hls::HlsEngine engine;
        const hls::HlsResult add = engine.synthesize(apps::makeAddKernel(), {});
        const hls::HlsResult gauss = engine.synthesize(apps::makeGaussKernel(64), {});
        programs["ADD"] = add.program;
        programs["GAUSS"] = gauss.program;
        design.addHlsCore("ADD", add.resources, {}, true);
        design.addHlsCore(
            "GAUSS", gauss.resources,
            {soc::CorePort{"in", hls::InterfaceProtocol::AxiStream, true, 8},
             soc::CorePort{"out", hls::InterfaceProtocol::AxiStream, false, 8}},
            false);
        design.connectLite("ADD");
        design.connectStream(soc::StreamEndpoint{soc::StreamEndpoint::kSoc, ""},
                             soc::StreamEndpoint{"GAUSS", "in"}, 8);
        design.connectStream(soc::StreamEndpoint{"GAUSS", "out"},
                             soc::StreamEndpoint{soc::StreamEndpoint::kSoc, ""}, 8);
        design.finalise();
    }
};

TEST(DeviceTree, DescribesAllLiteSlaves) {
    Fixture f;
    const std::string dts = DeviceTreeGenerator{}.generate(f.design);
    EXPECT_NE(dts.find("/dts-v1/"), std::string::npos);
    EXPECT_NE(dts.find("add: accelerator@43c00000"), std::string::npos);
    EXPECT_NE(dts.find("axi_dma_0: dma@40400000"), std::string::npos);
    EXPECT_NE(dts.find("socgen,hls-core-1.0"), std::string::npos);
    EXPECT_NE(dts.find("xlnx,axi-dma-1.00.a"), std::string::npos);
    EXPECT_NE(dts.find("#dma-cells"), std::string::npos);
}

TEST(DeviceTree, DevNodeNaming) {
    EXPECT_EQ(DeviceTreeGenerator::devNodeFor("axi_dma_0"), "/dev/axi_dma_0");
    EXPECT_EQ(DeviceTreeGenerator::devNodeFor("My Core"), "/dev/my_core");
}

TEST(DeviceTree, RequiresFinalisedDesign) {
    soc::BlockDesign raw("raw", soc::zedboard());
    EXPECT_THROW((void)DeviceTreeGenerator{}.generate(raw), Error);
}

TEST(Drivers, HeaderDeclaresApis) {
    Fixture f;
    const auto files = DriverGenerator{}.generate(f.design, f.programs);
    ASSERT_EQ(files.size(), 2u);
    const std::string& header = files[0].content;
    EXPECT_EQ(files[0].path, "fixture_api.h");
    // readDMA/writeDMA pair for the DMA core (paper Section V).
    EXPECT_NE(header.find("int axi_dma_0_writeDMA(int route, const uint32_t* data, "
                          "size_t words);"),
              std::string::npos);
    EXPECT_NE(header.find("int axi_dma_0_readDMA(int route, uint32_t* data, size_t "
                          "words);"),
              std::string::npos);
    // AXI-Lite wrappers for the ADD core.
    EXPECT_NE(header.find("void ADD_set_A(uint32_t value);"), std::string::npos);
    EXPECT_NE(header.find("void ADD_set_B(uint32_t value);"), std::string::npos);
    EXPECT_NE(header.find("uint32_t ADD_get_return(void);"), std::string::npos);
    EXPECT_NE(header.find("void ADD_start(void);"), std::string::npos);
    EXPECT_NE(header.find("void ADD_wait_done(void);"), std::string::npos);
    // Include guard.
    EXPECT_NE(header.find("#ifndef SOCGEN_fixture_API_H"), std::string::npos);
}

TEST(Drivers, SourceUsesDevNodesAndRegisterMap) {
    Fixture f;
    const auto files = DriverGenerator{}.generate(f.design, f.programs);
    const std::string& source = files[1].content;
    EXPECT_EQ(files[1].path, "fixture_api.c");
    EXPECT_NE(source.find("open(\"/dev/axi_dma_0\""), std::string::npos);
    EXPECT_NE(source.find("REG32(ADD_base, 0x10) = value"), std::string::npos);
    EXPECT_NE(source.find("REG32(ADD_base, 0x00) = 0x1"), std::string::npos);
    EXPECT_NE(source.find("while (!(REG32(ADD_base, 0x00) & 0x2))"), std::string::npos);
}

TEST(Drivers, RequireProgramsForCores) {
    Fixture f;
    std::map<std::string, hls::Program> empty;
    EXPECT_THROW((void)DriverGenerator{}.generate(f.design, empty), Error);
}

TEST(Boot, ImageRoundTrip) {
    Fixture f;
    const soc::SynthesisResult synth = soc::SynthesisModel{}.run(f.design);
    const soc::Bitstream bit = soc::generateBitstream(f.design, synth);
    const std::string dts = DeviceTreeGenerator{}.generate(f.design);
    const BootImage boot = makeBootImage(f.design, bit, dts);

    ASSERT_GE(boot.partitions.size(), 5u);
    EXPECT_NE(boot.find("fsbl.elf"), nullptr);
    EXPECT_NE(boot.find("fixture.bit"), nullptr);
    EXPECT_NE(boot.find("devicetree.dtb"), nullptr);
    EXPECT_NE(boot.find("uImage"), nullptr);
    EXPECT_EQ(boot.find("nonexistent"), nullptr);

    const std::string image = boot.serialize();
    const BootImage parsed = BootImage::parse(image);
    ASSERT_EQ(parsed.partitions.size(), boot.partitions.size());
    EXPECT_EQ(parsed.find("devicetree.dtb")->content, dts);
    // The embedded bitstream survives and still parses.
    EXPECT_NO_THROW(
        (void)soc::Bitstream::parse(parsed.find("fixture.bit")->content));
}

TEST(Boot, CorruptImagesRejected) {
    EXPECT_THROW((void)BootImage::parse("garbage"), Error);
    Fixture f;
    const soc::SynthesisResult synth = soc::SynthesisModel{}.run(f.design);
    const soc::Bitstream bit = soc::generateBitstream(f.design, synth);
    const std::string image =
        makeBootImage(f.design, bit, "dts").serialize();
    EXPECT_THROW((void)BootImage::parse(image.substr(0, image.size() - 20)), Error);
}

} // namespace
} // namespace socgen::sw
