#include "socgen/common/error.hpp"
#include "socgen/soc/block_design.hpp"

#include <gtest/gtest.h>

namespace socgen::soc {
namespace {

BlockDesign pipelineDesign(DmaPolicy policy = DmaPolicy::SharedDma) {
    BlockDesign design("pipe", zedboard(), policy);
    design.addHlsCore("A", {100, 200, 0, 0},
                      {CorePort{"in", hls::InterfaceProtocol::AxiStream, true, 8},
                       CorePort{"out", hls::InterfaceProtocol::AxiStream, false, 8}},
                      false);
    design.addHlsCore("B", {150, 250, 1, 1},
                      {CorePort{"in", hls::InterfaceProtocol::AxiStream, true, 8},
                       CorePort{"out", hls::InterfaceProtocol::AxiStream, false, 8}},
                      false);
    design.connectStream(StreamEndpoint{StreamEndpoint::kSoc, ""},
                         StreamEndpoint{"A", "in"}, 8);
    design.connectStream(StreamEndpoint{"A", "out"}, StreamEndpoint{"B", "in"}, 8);
    design.connectStream(StreamEndpoint{"B", "out"},
                         StreamEndpoint{StreamEndpoint::kSoc, ""}, 8);
    return design;
}

TEST(BlockDesign, FinaliseAddsInfrastructure) {
    BlockDesign design = pipelineDesign();
    design.finalise();
    EXPECT_TRUE(design.finalised());
    EXPECT_TRUE(design.hasInstance("processing_system7_0"));
    EXPECT_TRUE(design.hasInstance("rst_ps7_100M"));
    EXPECT_TRUE(design.hasInstance("axi_dma_0"));
    EXPECT_TRUE(design.hasInstance("ps7_0_axi_periph"));
    EXPECT_TRUE(design.hasInstance("axi_mem_intercon"));
    EXPECT_EQ(design.dmaInstances().size(), 1u);   // shared policy
    EXPECT_EQ(design.hlsCores().size(), 2u);
}

TEST(BlockDesign, SharedDmaAssignsRoutes) {
    BlockDesign design = pipelineDesign(DmaPolicy::SharedDma);
    design.finalise();
    int socLinks = 0;
    for (const auto& s : design.streams()) {
        if (s.from.isSoc() || s.to.isSoc()) {
            EXPECT_EQ(s.dmaInstance, "axi_dma_0");
            EXPECT_GE(s.dmaRoute, 0);
            ++socLinks;
        } else {
            EXPECT_EQ(s.dmaRoute, -1);
        }
    }
    EXPECT_EQ(socLinks, 2);
}

TEST(BlockDesign, PerLinkDmaInstantiatesOnePerSocLink) {
    BlockDesign design = pipelineDesign(DmaPolicy::DmaPerLink);
    design.finalise();
    EXPECT_EQ(design.dmaInstances().size(), 2u);
    for (const auto& s : design.streams()) {
        if (s.from.isSoc() || s.to.isSoc()) {
            EXPECT_EQ(s.dmaRoute, 0);
        }
    }
}

TEST(BlockDesign, PerLinkPolicyCostsMoreResources) {
    BlockDesign shared = pipelineDesign(DmaPolicy::SharedDma);
    shared.finalise();
    BlockDesign perLink = pipelineDesign(DmaPolicy::DmaPerLink);
    perLink.finalise();
    EXPECT_GT(perLink.totalResources().lut, shared.totalResources().lut);
    EXPECT_GT(perLink.totalResources().bram18, shared.totalResources().bram18);
}

TEST(BlockDesign, AddressAssignmentIsDisjoint) {
    BlockDesign design("lite", zedboard());
    design.addHlsCore("X", {10, 10, 0, 0}, {}, true);
    design.addHlsCore("Y", {10, 10, 0, 0}, {}, true);
    design.connectLite("X");
    design.connectLite("Y");
    design.finalise();
    ASSERT_EQ(design.lites().size(), 2u);
    EXPECT_NE(design.lites()[0].baseAddress, design.lites()[1].baseAddress);
    EXPECT_GE(design.lites()[0].baseAddress, 0x43C00000u);
}

TEST(BlockDesign, DmaGetsControlAddress) {
    BlockDesign design = pipelineDesign();
    design.finalise();
    bool dmaMapped = false;
    for (const auto& l : design.lites()) {
        if (l.instance == "axi_dma_0") {
            dmaMapped = true;
            EXPECT_EQ(l.baseAddress, 0x40400000u);
        }
    }
    EXPECT_TRUE(dmaMapped);
}

TEST(BlockDesign, DuplicateCoreRejected) {
    BlockDesign design("dup", zedboard());
    design.addHlsCore("X", {}, {}, true);
    EXPECT_THROW(design.addHlsCore("X", {}, {}, true), SynthesisError);
}

TEST(BlockDesign, SocToSocLinkRejected) {
    BlockDesign design("bad", zedboard());
    EXPECT_THROW(design.connectStream(StreamEndpoint{StreamEndpoint::kSoc, ""},
                                      StreamEndpoint{StreamEndpoint::kSoc, ""}, 8),
                 SynthesisError);
}

TEST(BlockDesign, UnknownEndpointFailsFinalise) {
    BlockDesign design("bad", zedboard());
    design.addHlsCore("A", {},
                      {CorePort{"out", hls::InterfaceProtocol::AxiStream, false, 8}},
                      false);
    design.connectStream(StreamEndpoint{"A", "out"}, StreamEndpoint{"GHOST", "in"}, 8);
    EXPECT_THROW(design.finalise(), SynthesisError);
}

TEST(BlockDesign, UnknownPortFailsFinalise) {
    BlockDesign design("bad", zedboard());
    design.addHlsCore("A", {},
                      {CorePort{"out", hls::InterfaceProtocol::AxiStream, false, 8}},
                      false);
    design.connectStream(StreamEndpoint{"A", "wrongport"},
                         StreamEndpoint{StreamEndpoint::kSoc, ""}, 8);
    EXPECT_THROW(design.finalise(), SynthesisError);
}

TEST(BlockDesign, WrongDirectionFailsFinalise) {
    BlockDesign design("bad", zedboard());
    design.addHlsCore("A", {},
                      {CorePort{"in", hls::InterfaceProtocol::AxiStream, true, 8}},
                      false);
    // Using an input port as a stream source.
    design.connectStream(StreamEndpoint{"A", "in"},
                         StreamEndpoint{StreamEndpoint::kSoc, ""}, 8);
    EXPECT_THROW(design.finalise(), SynthesisError);
}

TEST(BlockDesign, DoubleConnectedPortFailsFinalise) {
    BlockDesign design("bad", zedboard());
    design.addHlsCore("A", {},
                      {CorePort{"out", hls::InterfaceProtocol::AxiStream, false, 8}},
                      false);
    design.connectStream(StreamEndpoint{"A", "out"},
                         StreamEndpoint{StreamEndpoint::kSoc, ""}, 8);
    design.connectStream(StreamEndpoint{"A", "out"},
                         StreamEndpoint{StreamEndpoint::kSoc, ""}, 8);
    EXPECT_THROW(design.finalise(), SynthesisError);
}

TEST(BlockDesign, UnconnectedStreamPortFailsFinalise) {
    BlockDesign design("bad", zedboard());
    design.addHlsCore("A", {},
                      {CorePort{"in", hls::InterfaceProtocol::AxiStream, true, 8},
                       CorePort{"out", hls::InterfaceProtocol::AxiStream, false, 8}},
                      false);
    design.connectStream(StreamEndpoint{StreamEndpoint::kSoc, ""},
                         StreamEndpoint{"A", "in"}, 8);
    // A/out left dangling.
    EXPECT_THROW(design.finalise(), SynthesisError);
}

TEST(BlockDesign, LiteOnStreamOnlyCoreFailsFinalise) {
    BlockDesign design("bad", zedboard());
    design.addHlsCore("A", {},
                      {CorePort{"in", hls::InterfaceProtocol::AxiStream, true, 8},
                       CorePort{"out", hls::InterfaceProtocol::AxiStream, false, 8}},
                      /*hasAxiLiteControl=*/false);
    design.connectStream(StreamEndpoint{StreamEndpoint::kSoc, ""},
                         StreamEndpoint{"A", "in"}, 8);
    design.connectStream(StreamEndpoint{"A", "out"},
                         StreamEndpoint{StreamEndpoint::kSoc, ""}, 8);
    design.connectLite("A");
    EXPECT_THROW(design.finalise(), SynthesisError);
}

TEST(BlockDesign, MutationAfterFinaliseRejected) {
    BlockDesign design = pipelineDesign();
    design.finalise();
    EXPECT_THROW(design.addHlsCore("Z", {}, {}, true), SynthesisError);
    EXPECT_THROW(design.connectLite("A"), SynthesisError);
    EXPECT_THROW(design.finalise(), SynthesisError);
}

TEST(BlockDesign, DotRenderingShowsTopology) {
    BlockDesign design = pipelineDesign();
    design.finalise();
    const std::string dot = design.toDot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("\"A\" -> \"B\""), std::string::npos);
    EXPECT_NE(dot.find("AXI-Stream"), std::string::npos);
    EXPECT_NE(dot.find("axi_dma_0"), std::string::npos);
}

TEST(FpgaDevice, FitsAndUtilisation) {
    const FpgaDevice dev = zedboard();
    EXPECT_TRUE(dev.fits({1000, 1000, 10, 10}));
    EXPECT_FALSE(dev.fits({100000, 0, 0, 0}));
    EXPECT_FALSE(dev.fits({0, 0, 0, 500}));
    EXPECT_NEAR(dev.worstUtilisation({53200 / 2, 0, 0, 0}), 0.5, 1e-9);
}

TEST(Endpoints, StringForms) {
    EXPECT_EQ((StreamEndpoint{StreamEndpoint::kSoc, ""}.str()), "'soc");
    EXPECT_EQ((StreamEndpoint{"core", "port"}.str()), "core/port");
    EXPECT_EQ(ipKindName(IpKind::AxiDma), "axi_dma");
    EXPECT_EQ(ipKindName(IpKind::ZynqPs), "processing_system7");
}

} // namespace
} // namespace socgen::soc
