#include "socgen/apps/image.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/textfile.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace socgen::apps {
namespace {

TEST(GrayImage, PixelAccess) {
    GrayImage img(4, 3, 7);
    EXPECT_EQ(img.width(), 4u);
    EXPECT_EQ(img.height(), 3u);
    EXPECT_EQ(img.pixelCount(), 12u);
    EXPECT_EQ(img.at(0, 0), 7);
    img.set(3, 2, 200);
    EXPECT_EQ(img.at(3, 2), 200);
    EXPECT_THROW((void)img.at(4, 0), Error);
    EXPECT_THROW(img.set(0, 3, 1), Error);
}

TEST(RgbImage, PackedLayout) {
    RgbImage img(2, 2);
    img.set(1, 0, 0x12, 0x34, 0x56);
    EXPECT_EQ(img.packedAt(1, 0), 0x123456u);
    const auto packed = img.packedPixels();
    ASSERT_EQ(packed.size(), 4u);
    EXPECT_EQ(packed[1], 0x123456u);
    EXPECT_THROW((void)img.packedAt(2, 0), Error);
}

TEST(Pgm, EncodeDecodeRoundTrip) {
    GrayImage img(5, 4);
    for (unsigned y = 0; y < 4; ++y) {
        for (unsigned x = 0; x < 5; ++x) {
            img.set(x, y, static_cast<std::uint8_t>(x * 50 + y));
        }
    }
    const GrayImage decoded = decodePgm(encodePgm(img));
    EXPECT_EQ(decoded, img);
}

TEST(Pgm, DecodesAsciiP2) {
    const GrayImage img = decodePgm("P2\n# a comment\n2 2\n255\n0 64\n128 255\n");
    EXPECT_EQ(img.width(), 2u);
    EXPECT_EQ(img.at(0, 0), 0);
    EXPECT_EQ(img.at(1, 0), 64);
    EXPECT_EQ(img.at(0, 1), 128);
    EXPECT_EQ(img.at(1, 1), 255);
}

TEST(Pgm, RejectsBadInput) {
    EXPECT_THROW((void)decodePgm("P7\n1 1\n255\nx"), Error);
    EXPECT_THROW((void)decodePgm("P5\n4 4\n255\nxx"), Error);  // truncated
    EXPECT_THROW((void)decodePgm("P5\n1 1\n70000\n"), Error);  // bad maxval
    EXPECT_THROW((void)decodePgm(""), Error);
}

TEST(Pgm, FileRoundTrip) {
    const std::string path = testing::TempDir() + "/socgen_img.pgm";
    const GrayImage img = makeSyntheticGrayScene(16, 16);
    writePgm(path, img);
    EXPECT_EQ(readPgm(path), img);
    std::filesystem::remove(path);
}

TEST(Ppm, WritesValidHeader) {
    const std::string path = testing::TempDir() + "/socgen_img.ppm";
    writePpm(path, makeSyntheticScene(8, 8));
    const std::string data = readTextFile(path);
    EXPECT_EQ(data.substr(0, 2), "P6");
    EXPECT_EQ(data.size(), std::string("P6\n8 8\n255\n").size() + 8 * 8 * 3);
    std::filesystem::remove(path);
}

TEST(Synthetic, DeterministicPerSeed) {
    const RgbImage a = makeSyntheticScene(32, 32, 5);
    const RgbImage b = makeSyntheticScene(32, 32, 5);
    const RgbImage c = makeSyntheticScene(32, 32, 6);
    EXPECT_EQ(a.packedPixels(), b.packedPixels());
    EXPECT_NE(a.packedPixels(), c.packedPixels());
}

TEST(Synthetic, SceneIsBimodal) {
    // The scene must have clear foreground and background populations so
    // the Otsu threshold separates them (the Figure 7 premise).
    const GrayImage gray = makeSyntheticGrayScene(64, 64);
    std::size_t dark = 0;
    std::size_t bright = 0;
    for (std::uint8_t px : gray.pixels()) {
        if (px < 80) {
            ++dark;
        }
        if (px > 140) {
            ++bright;
        }
    }
    EXPECT_GT(dark, gray.pixelCount() / 4);
    EXPECT_GT(bright, gray.pixelCount() / 20);
    // Few pixels in the dead zone between the modes.
    EXPECT_LT(gray.pixelCount() - dark - bright, gray.pixelCount() / 5);
}

class SyntheticSizes : public testing::TestWithParam<unsigned> {};

TEST_P(SyntheticSizes, GrayMatchesRgbConversion) {
    const unsigned n = GetParam();
    const RgbImage rgb = makeSyntheticScene(n, n, 11);
    const GrayImage gray = makeSyntheticGrayScene(n, n, 11);
    EXPECT_EQ(gray.width(), n);
    // Spot-check the luma formula agreement.
    for (unsigned i = 0; i < n; i += 3) {
        const std::uint32_t px = rgb.packedAt(i, i / 2);
        const std::uint32_t r = (px >> 16) & 0xFF;
        const std::uint32_t g = (px >> 8) & 0xFF;
        const std::uint32_t b = px & 0xFF;
        EXPECT_EQ(gray.at(i, i / 2), (r * 77 + g * 150 + b * 29) >> 8);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SyntheticSizes, testing::Values(8u, 16u, 33u, 64u));

} // namespace
} // namespace socgen::apps
