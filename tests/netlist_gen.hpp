#pragma once

// Seeded random-netlist generator for the differential simulation suite
// (test_rtl_diff_sim.cpp) and the backend benchmarks. Every construct
// the HLS code generator can emit appears here — the full combinational
// op set, registers with and without enables (including feedback loops
// closed through registers), synchronous BRAMs, and FSM cells — so a
// divergence between the event-driven and compiled backends on any
// generated design also reproduces on some seed of this generator.
//
// Determinism: the generator uses its own splitmix64 stream (not
// std::uniform_int_distribution, whose mapping is implementation
// defined), so a seed names the same netlist on every toolchain.

#include "socgen/rtl/netlist.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace socgen::testing {

/// Deterministic 64-bit PRNG (splitmix64).
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform-ish value in [0, n); n == 0 yields 0.
    std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

    /// Value in [lo, hi] inclusive.
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
        return lo + below(hi - lo + 1);
    }

private:
    std::uint64_t state_;
};

struct NetlistGenOptions {
    unsigned inputPorts = 4;
    unsigned outputPorts = 4;
    unsigned combCells = 120;
    unsigned regs = 12;       ///< registers; half close feedback loops
    unsigned brams = 2;
    unsigned fsms = 1;
    unsigned maxWidth = 64;
    /// Combinational cells on >64-bit nets (65..128). Both engines track
    /// the low 64 bits of such a net; the corpus pins that they agree.
    /// Also adds one wide input port so setInput truncation is covered.
    unsigned wideBuses = 0;
    /// Pairs of BRAMs sharing address and write-data nets with
    /// independent write enables over a tiny depth. Each cell keeps its
    /// own storage, so the pair exercises same-address read/write
    /// collisions within each port and divergence through the enables
    /// on nearly every cycle.
    unsigned bramPairs = 0;
    /// Length of an extra serial combinational chain (each cell consumes
    /// the previous one's output), forcing hundreds of levelization
    /// levels with one-op bands — the worst case for band dispatch.
    unsigned chainDepth = 0;
};

/// Builds a structurally valid random netlist from `seed`. The netlist
/// passes Netlist::check(): every net is driven, feedback paths are
/// closed only through registers, and BRAM address inputs are narrowed
/// so addresses always fall inside the memory depth.
inline rtl::Netlist randomNetlist(std::uint64_t seed, NetlistGenOptions opt = {}) {
    using namespace rtl;
    SplitMix64 rng(seed ^ 0xd1b54a32d192ed03ULL);
    Netlist n("rand" + std::to_string(seed));

    const auto width = [&]() -> unsigned {
        // Mix of narrow control-ish and wide datapath widths.
        const std::uint64_t pick = rng.below(4);
        if (pick == 0) {
            return 1;
        }
        if (pick == 1) {
            return static_cast<unsigned>(rng.range(2, 8));
        }
        return static_cast<unsigned>(rng.range(9, opt.maxWidth));
    };

    std::vector<NetId> pool;  // nets usable as cell inputs

    for (unsigned i = 0; i < opt.inputPorts; ++i) {
        const unsigned w = i == 0 ? 1 : width();  // guarantee one 1-bit input
        const NetId net = n.addNet("in" + std::to_string(i), w);
        n.addPort("in" + std::to_string(i), PortDir::In, w, net);
        pool.push_back(net);
    }
    if (opt.wideBuses > 0) {
        const unsigned w = static_cast<unsigned>(rng.range(65, 128));
        const NetId net = n.addNet("inw", w);
        n.addPort("inw", PortDir::In, w, net);
        pool.push_back(net);
    }

    // Pre-created output nets of the sequential cells, so combinational
    // logic can consume them (feedback closed through state).
    std::vector<NetId> regOuts, bramOuts, fsmOuts;
    std::vector<unsigned> regWidths, bramWidths, fsmWidths;
    for (unsigned i = 0; i < opt.regs; ++i) {
        const unsigned w = width();
        regOuts.push_back(n.addNet("rq" + std::to_string(i), w));
        regWidths.push_back(w);
        pool.push_back(regOuts.back());
    }
    for (unsigned i = 0; i < opt.brams; ++i) {
        const unsigned w = width();
        bramOuts.push_back(n.addNet("mq" + std::to_string(i), w));
        bramWidths.push_back(w);
        pool.push_back(bramOuts.back());
    }
    std::vector<NetId> pairOuts;
    std::vector<unsigned> pairWidths;
    for (unsigned i = 0; i < opt.bramPairs * 2; ++i) {
        const unsigned w = width();
        pairOuts.push_back(n.addNet("pq" + std::to_string(i), w));
        pairWidths.push_back(w);
        pool.push_back(pairOuts.back());
    }
    for (unsigned i = 0; i < opt.fsms; ++i) {
        const unsigned w = static_cast<unsigned>(rng.range(2, 8));
        fsmOuts.push_back(n.addNet("sq" + std::to_string(i), w));
        fsmWidths.push_back(w);
        pool.push_back(fsmOuts.back());
    }

    const auto anyNet = [&]() { return pool[rng.below(pool.size())]; };

    static constexpr CellKind kCombKinds[] = {
        CellKind::Not, CellKind::And, CellKind::Or,  CellKind::Xor, CellKind::Add,
        CellKind::Sub, CellKind::Mul, CellKind::Div, CellKind::Mod, CellKind::Shl,
        CellKind::Shr, CellKind::Eq,  CellKind::Ne,  CellKind::Lt,  CellKind::Le,
        CellKind::Gt,  CellKind::Ge,  CellKind::Mux};

    unsigned counter = 0;
    const auto fresh = [&](unsigned w) {
        return n.addNet("t" + std::to_string(counter++), w);
    };

    for (unsigned i = 0; i < opt.combCells; ++i) {
        const unsigned w = width();
        if (rng.below(8) == 0) {
            const NetId out = fresh(w);
            n.addCell("const" + std::to_string(i), CellKind::Const, w, {}, {out},
                      static_cast<std::int64_t>(rng.next()));
            pool.push_back(out);
            continue;
        }
        const CellKind kind = kCombKinds[rng.below(std::size(kCombKinds))];
        std::vector<NetId> ins;
        const int arity = pinSpec(kind).inputs;
        for (int k = 0; k < arity; ++k) {
            ins.push_back(anyNet());
        }
        const NetId out = fresh(w);
        n.addCell("c" + std::to_string(i), kind, w, std::move(ins), {out});
        pool.push_back(out);
    }

    for (unsigned i = 0; i < opt.wideBuses; ++i) {
        const unsigned w = static_cast<unsigned>(rng.range(65, 128));
        const NetId out = fresh(w);
        if (rng.below(4) == 0) {
            n.addCell("wconst" + std::to_string(i), CellKind::Const, w, {}, {out},
                      static_cast<std::int64_t>(rng.next()));
        } else {
            static constexpr CellKind kWideKinds[] = {CellKind::Add, CellKind::Sub,
                                                      CellKind::Mul, CellKind::Xor,
                                                      CellKind::Or,  CellKind::Shl};
            const CellKind kind = kWideKinds[rng.below(std::size(kWideKinds))];
            n.addCell("wide" + std::to_string(i), kind, w, {anyNet(), anyNet()}, {out});
        }
        pool.push_back(out);
    }

    if (opt.chainDepth > 0) {
        const unsigned w = static_cast<unsigned>(rng.range(16, 48));
        NetId prev = anyNet();
        static constexpr CellKind kChainKinds[] = {CellKind::Add, CellKind::Xor,
                                                   CellKind::Sub, CellKind::Or};
        for (unsigned i = 0; i < opt.chainDepth; ++i) {
            const NetId out = fresh(w);
            n.addCell("chain" + std::to_string(i),
                      kChainKinds[rng.below(std::size(kChainKinds))], w, {prev, anyNet()},
                      {out});
            prev = out;
            pool.push_back(out);
        }
    }

    for (unsigned i = 0; i < opt.regs; ++i) {
        std::vector<NetId> ins{anyNet()};
        if (rng.below(2) == 0) {
            ins.push_back(anyNet());  // enable
        }
        n.addCell("reg" + std::to_string(i), CellKind::Reg, regWidths[i], std::move(ins),
                  {regOuts[i]});
    }

    for (unsigned i = 0; i < opt.brams; ++i) {
        // Narrow the address through an And cell so it always stays
        // below the depth (the simulators throw on out-of-range).
        const unsigned addrW = static_cast<unsigned>(rng.range(3, 7));
        const NetId addr = fresh(addrW);
        n.addCell("maddr" + std::to_string(i), CellKind::And, addrW, {anyNet(), anyNet()},
                  {addr});
        n.addCell("bram" + std::to_string(i), CellKind::Bram, bramWidths[i],
                  {addr, anyNet(), anyNet()}, {bramOuts[i]},
                  static_cast<std::int64_t>(1ULL << addrW));
    }

    for (unsigned i = 0; i < opt.bramPairs; ++i) {
        // Two BRAMs on one shared address and write-data net with
        // independent write enables over a tiny memory: with a depth of
        // 4-8 words, same-address write+read collisions (the
        // read-after-write path) happen almost every cycle, and the two
        // cells diverge only through their enables — any engine bug that
        // mixes up write gating or RAW ordering shows up as the pair
        // disagreeing between backends.
        const unsigned addrW = static_cast<unsigned>(rng.range(2, 3));
        const NetId addr = fresh(addrW);
        n.addCell("paddr" + std::to_string(i), CellKind::And, addrW, {anyNet(), anyNet()},
                  {addr});
        const NetId wdata = anyNet();
        for (unsigned port = 0; port < 2; ++port) {
            const unsigned idx = i * 2 + port;
            n.addCell("pbram" + std::to_string(idx), CellKind::Bram, pairWidths[idx],
                      {addr, wdata, anyNet()}, {pairOuts[idx]},
                      static_cast<std::int64_t>(1ULL << addrW));
        }
    }

    for (unsigned i = 0; i < opt.fsms; ++i) {
        std::vector<NetId> status;
        const unsigned statusCount = static_cast<unsigned>(rng.range(1, 3));
        for (unsigned k = 0; k < statusCount; ++k) {
            status.push_back(anyNet());
        }
        n.addCell("fsm" + std::to_string(i), CellKind::Fsm, fsmWidths[i], std::move(status),
                  {fsmOuts[i]}, static_cast<std::int64_t>(rng.range(2, 16)));
    }

    for (unsigned i = 0; i < opt.outputPorts; ++i) {
        // Only driven nets may be output ports; everything after the
        // input ports qualifies.
        const NetId net =
            pool[opt.inputPorts + rng.below(pool.size() - opt.inputPorts)];
        n.addPort("out" + std::to_string(i), PortDir::Out, n.net(net).width, net);
    }

    n.check();
    return n;
}

/// The diff-sim sweep's seed list: 40 seeds shared by the scalar
/// backend-parity, thread-parity and batch-parity suites so every
/// engine mode is exercised on the same corpus.
inline std::vector<std::uint64_t> diffSimSeeds() {
    std::vector<std::uint64_t> seeds;
    seeds.reserve(40);
    for (std::uint64_t i = 1; i <= 40; ++i) {
        seeds.push_back(i * 7919ULL);  // arbitrary but stable spacing
    }
    return seeds;
}

/// Deterministic per-seed shape for the sweep: every seed gets a
/// different mix of sizes, and the newer constructs (wide buses, BRAM
/// collision pairs, deep chains) each appear on a fixed subset of seeds
/// so a corpus regression names the construct in the failing seed.
inline NetlistGenOptions sweepOptions(std::uint64_t seed) {
    NetlistGenOptions opt;
    SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    opt.combCells = static_cast<unsigned>(rng.range(80, 200));
    opt.regs = static_cast<unsigned>(rng.range(8, 20));
    opt.brams = static_cast<unsigned>(rng.range(1, 3));
    opt.fsms = static_cast<unsigned>(rng.below(3));
    if (seed % 3 == 0) {
        opt.wideBuses = static_cast<unsigned>(rng.range(2, 4));
    }
    if (seed % 4 == 0) {
        opt.bramPairs = static_cast<unsigned>(rng.range(1, 2));
    }
    if (seed % 5 == 0) {
        opt.chainDepth = static_cast<unsigned>(rng.range(100, 250));
    }
    return opt;
}

} // namespace socgen::testing
