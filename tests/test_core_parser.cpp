#include "socgen/common/error.hpp"
#include "socgen/core/parser.hpp"

#include <gtest/gtest.h>

namespace socgen::core {
namespace {

TEST(Lexer, TokenKinds) {
    const auto tokens = tokenize("object x { ( ) , ; } \"str\" 'soc");
    ASSERT_EQ(tokens.size(), 11u);  // incl. EOF
    EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[0].text, "object");
    EXPECT_EQ(tokens[2].kind, TokenKind::LBrace);
    EXPECT_EQ(tokens[3].kind, TokenKind::LParen);
    EXPECT_EQ(tokens[4].kind, TokenKind::RParen);
    EXPECT_EQ(tokens[5].kind, TokenKind::Comma);
    EXPECT_EQ(tokens[6].kind, TokenKind::Semicolon);
    EXPECT_EQ(tokens[7].kind, TokenKind::RBrace);
    EXPECT_EQ(tokens[8].kind, TokenKind::String);
    EXPECT_EQ(tokens[8].text, "str");
    EXPECT_EQ(tokens[9].kind, TokenKind::SocQuote);
    EXPECT_EQ(tokens[10].kind, TokenKind::EndOfFile);
}

TEST(Lexer, TracksLineAndColumn) {
    const auto tokens = tokenize("a\n  b");
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[0].column, 1);
    EXPECT_EQ(tokens[1].line, 2);
    EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, SkipsComments) {
    const auto tokens = tokenize("// line comment\nfoo /* block\ncomment */ bar");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].text, "foo");
    EXPECT_EQ(tokens[1].text, "bar");
}

TEST(Lexer, RejectsBadInput) {
    EXPECT_THROW((void)tokenize("$"), DslError);
    EXPECT_THROW((void)tokenize("\"unterminated"), DslError);
    EXPECT_THROW((void)tokenize("\"multi\nline\""), DslError);
    EXPECT_THROW((void)tokenize("'nosoc"), DslError);
    EXPECT_THROW((void)tokenize("/* unterminated"), DslError);
}

TEST(Lexer, ErrorsCarryPosition) {
    try {
        (void)tokenize("ok\n   $");
        FAIL();
    } catch (const DslError& e) {
        EXPECT_NE(std::string(e.what()).find("2:4"), std::string::npos);
    }
}

constexpr const char* kQuickstart = R"(
object quickstart extends App {
  tg nodes;
    tg node "MUL" i "A" i "B" i "return" end;
    tg node "ADD" i "A" i "B" i "return" end;
    tg node "GAUSS" is "in" is "out" end;
    tg node "EDGE" is "in" is "out" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("GAUSS","in") end;
    tg link ("GAUSS","out") to ("EDGE","in") end;
    tg link ("EDGE","out") to 'soc end;
    tg connect "MUL";
    tg connect "ADD";
  tg end_edges;
}
)";

TEST(Parser, ParsesTheRunningExample) {
    const ParsedDsl parsed = parseDsl(kQuickstart);
    EXPECT_EQ(parsed.projectName, "quickstart");
    EXPECT_EQ(parsed.graph.nodes().size(), 4u);
    EXPECT_EQ(parsed.graph.links().size(), 3u);
    EXPECT_EQ(parsed.graph.connects().size(), 2u);
    const TgNode& mul = parsed.graph.node("MUL");
    ASSERT_EQ(mul.ports.size(), 3u);
    EXPECT_EQ(mul.ports[0].protocol, hls::InterfaceProtocol::AxiLite);
    const TgNode& gauss = parsed.graph.node("GAUSS");
    EXPECT_EQ(gauss.ports[0].protocol, hls::InterfaceProtocol::AxiStream);
    EXPECT_TRUE(parsed.graph.links()[0].from.soc);
    EXPECT_EQ(parsed.graph.links()[1].from.node, "GAUSS");
    EXPECT_EQ(parsed.graph.links()[1].to.port, "in");
}

TEST(Parser, ParsesTheArch4ListingOfThePaper) {
    // Listing 4 verbatim (modulo whitespace).
    constexpr const char* kArch4 = R"(
object otsu extends App {
  tg nodes;
    tg node "grayScale" is "imageIn" is "imageOutCH" is "imageOutSEG" end;
    tg node "computeHistogram" is "grayScaleImage" is "histogram" end;
    tg node "halfProbability" is "histogram" is "probability" end;
    tg node "segment" is "grayScaleImage" is "otsuThreshold" is "segmentedGrayImage" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("grayScale","imageIn") end;
    tg link ("grayScale","imageOutCH") to ("computeHistogram","grayScaleImage") end;
    tg link ("grayScale","imageOutSEG") to ("segment","grayScaleImage") end;
    tg link ("computeHistogram","histogram") to ("halfProbability","histogram") end;
    tg link ("halfProbability","probability") to ("segment","otsuThreshold") end;
    tg link ("segment","segmentedGrayImage") to 'soc end;
  tg end_edges;
}
)";
    const ParsedDsl parsed = parseDsl(kArch4);
    EXPECT_EQ(parsed.projectName, "otsu");
    EXPECT_EQ(parsed.graph.nodes().size(), 4u);
    EXPECT_EQ(parsed.graph.links().size(), 6u);
    EXPECT_TRUE(parsed.graph.connects().empty());
}

TEST(Parser, AcceptsOptionalEndAfterConnect) {
    constexpr const char* dsl = R"(
object p extends App {
  tg nodes; tg node "X" i "a" end; tg end_nodes;
  tg edges; tg connect "X" end; tg end_edges;
}
)";
    EXPECT_EQ(parseDsl(dsl).graph.connects().size(), 1u);
}

struct BadCase {
    const char* name;
    const char* source;
};

class ParserErrors : public testing::TestWithParam<BadCase> {};

TEST_P(ParserErrors, Rejected) {
    EXPECT_THROW((void)parseDsl(GetParam().source), DslError) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrors,
    testing::Values(
        BadCase{"empty", ""},
        BadCase{"no_object", "tg nodes;"},
        BadCase{"missing_extends", "object p App { }"},
        BadCase{"empty_nodes",
                "object p extends App { tg nodes; tg end_nodes; tg edges; tg "
                "end_edges; }"},
        BadCase{"node_without_interface",
                "object p extends App { tg nodes; tg node \"X\" end; tg end_nodes; tg "
                "edges; tg end_edges; }"},
        BadCase{"missing_end",
                "object p extends App { tg nodes; tg node \"X\" i \"a\"; tg end_nodes; "
                "tg edges; tg end_edges; }"},
        BadCase{"link_without_to",
                "object p extends App { tg nodes; tg node \"X\" is \"a\" end; tg "
                "end_nodes; tg edges; tg link ('soc) end; tg end_edges; }"},
        BadCase{"unbalanced_brace",
                "object p extends App { tg nodes; tg node \"X\" i \"a\" end; tg "
                "end_nodes; tg edges; tg end_edges;"},
        BadCase{"trailing_garbage",
                "object p extends App { tg nodes; tg node \"X\" i \"a\" end; tg "
                "end_nodes; tg edges; tg end_edges; } extra"},
        BadCase{"semantic_duplicate_node",
                "object p extends App { tg nodes; tg node \"X\" i \"a\" end; tg node "
                "\"X\" i \"a\" end; tg end_nodes; tg edges; tg end_edges; }"},
        BadCase{"semantic_dangling_stream",
                "object p extends App { tg nodes; tg node \"X\" is \"a\" end; tg "
                "end_nodes; tg edges; tg end_edges; }"}),
    [](const testing::TestParamInfo<BadCase>& info) { return info.param.name; });

TEST(Parser, TruncatedLinkReportsPositionAndFoundToken) {
    const char* dsl =
        "object p extends App {\n"
        "  tg nodes; tg node \"X\" is \"a\" end; tg end_nodes;\n"
        "  tg edges;\n"
        "    tg link (\"X\",\"a\") to";
    try {
        (void)parseDsl(dsl);
        FAIL() << "expected a parse error";
    } catch (const DslError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("4:"), std::string::npos);  // the truncated line
        EXPECT_NE(what.find("expected"), std::string::npos);
        EXPECT_NE(what.find("end of input"), std::string::npos);
    }
}

TEST(Parser, TruncatedSocLinkRejected) {
    EXPECT_THROW((void)parseDsl("object p extends App {\n"
                                "  tg nodes; tg node \"X\" is \"a\" end; tg end_nodes;\n"
                                "  tg edges; tg link 'soc to"),
                 DslError);
}

TEST(Parser, UnknownPortKindNamesTokenAndPosition) {
    const char* dsl =
        "object p extends App {\n"
        "  tg nodes;\n"
        "    tg node \"X\" os \"a\" end;\n"
        "  tg end_nodes;\n"
        "  tg edges; tg end_edges;\n"
        "}";
    try {
        (void)parseDsl(dsl);
        FAIL() << "expected a parse error";
    } catch (const DslError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("3:17"), std::string::npos);
        EXPECT_NE(what.find("unknown port kind 'os'"), std::string::npos);
        EXPECT_NE(what.find("expected 'i', 'is', or 'end'"), std::string::npos);
    }
}

TEST(Parser, ErrorMessageHasPositionAndExpectation) {
    try {
        (void)parseDsl("object p extends App { tg bogus; }");
        FAIL();
    } catch (const DslError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("1:"), std::string::npos);
        EXPECT_NE(what.find("keyword"), std::string::npos);
    }
}

} // namespace
} // namespace socgen::core
