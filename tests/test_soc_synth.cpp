#include "socgen/common/error.hpp"
#include "socgen/soc/synthesis.hpp"
#include "socgen/soc/tcl.hpp"

#include <gtest/gtest.h>

namespace socgen::soc {
namespace {

BlockDesign smallDesign(const std::string& name, hls::ResourceEstimate coreRes = {2000,
                                                                                  3000, 2,
                                                                                  1}) {
    BlockDesign design(name, zedboard());
    design.addHlsCore("core0", coreRes,
                      {CorePort{"in", hls::InterfaceProtocol::AxiStream, true, 32},
                       CorePort{"out", hls::InterfaceProtocol::AxiStream, false, 32}},
                      false);
    design.connectStream(StreamEndpoint{StreamEndpoint::kSoc, ""},
                         StreamEndpoint{"core0", "in"}, 32);
    design.connectStream(StreamEndpoint{"core0", "out"},
                         StreamEndpoint{StreamEndpoint::kSoc, ""}, 32);
    design.finalise();
    return design;
}

TEST(Synthesis, AggregatesPerInstance) {
    const BlockDesign design = smallDesign("agg");
    const SynthesisResult result = SynthesisModel{}.run(design);
    EXPECT_EQ(result.designName, "agg");
    EXPECT_EQ(result.perInstance.size(), design.instances().size());
    hls::ResourceEstimate manual;
    for (const auto& row : result.perInstance) {
        manual += row.resources;
    }
    EXPECT_EQ(manual, result.total);
    EXPECT_GT(result.total.lut, 2000);  // core + infrastructure
    EXPECT_GT(result.utilisationPercent, 0.0);
    EXPECT_TRUE(result.timingMet);
}

TEST(Synthesis, RequiresFinalisedDesign) {
    BlockDesign design("raw", zedboard());
    EXPECT_THROW((void)SynthesisModel{}.run(design), SynthesisError);
}

TEST(Synthesis, OverCapacityThrows) {
    const BlockDesign design = smallDesign("huge", {80000, 10000, 10, 10});
    try {
        (void)SynthesisModel{}.run(design);
        FAIL() << "expected capacity failure";
    } catch (const SynthesisError& e) {
        EXPECT_NE(std::string(e.what()).find("does not fit"), std::string::npos);
    }
}

TEST(Synthesis, DeterministicForSameDesign) {
    const BlockDesign design = smallDesign("det");
    const SynthesisResult a = SynthesisModel{}.run(design);
    const SynthesisResult b = SynthesisModel{}.run(design);
    EXPECT_DOUBLE_EQ(a.achievedClockMhz, b.achievedClockMhz);
    EXPECT_DOUBLE_EQ(a.totalSeconds(), b.totalSeconds());
}

TEST(Synthesis, ClockDegradesWithUtilisation) {
    const SynthesisResult small = SynthesisModel{}.run(smallDesign("s", {500, 500, 0, 0}));
    const SynthesisResult big =
        SynthesisModel{}.run(smallDesign("s", {40000, 40000, 100, 100}));
    EXPECT_GT(small.achievedClockMhz, big.achievedClockMhz);
    EXPECT_GT(big.implSeconds, small.implSeconds);
}

TEST(Synthesis, ToolTimeScalesWithSize) {
    const SynthesisResult small = SynthesisModel{}.run(smallDesign("a", {500, 500, 0, 0}));
    const SynthesisResult big = SynthesisModel{}.run(smallDesign("a", {30000, 30000, 0, 0}));
    EXPECT_GT(big.totalSeconds(), small.totalSeconds());
    EXPECT_GT(small.synthSeconds, 0.0);
    EXPECT_GT(small.bitgenSeconds, 0.0);
}

TEST(Synthesis, ReportContainsTable) {
    const SynthesisResult r = SynthesisModel{}.run(smallDesign("rep"));
    const std::string report = r.utilisationReport();
    EXPECT_NE(report.find("Instance"), std::string::npos);
    EXPECT_NE(report.find("core0"), std::string::npos);
    EXPECT_NE(report.find("TOTAL"), std::string::npos);
    EXPECT_NE(report.find("MHz"), std::string::npos);
}

TEST(Tcl, ProjectScriptStructure) {
    const BlockDesign design = smallDesign("tclproj");
    const std::string tcl = TclEmitter{}.emitProject(design);
    EXPECT_NE(tcl.find("create_project tclproj"), std::string::npos);
    EXPECT_NE(tcl.find("-part xc7z020clg484-1"), std::string::npos);
    EXPECT_NE(tcl.find("create_bd_design"), std::string::npos);
    EXPECT_NE(tcl.find("launch_runs synth_1"), std::string::npos);
    EXPECT_NE(tcl.find("write_bitstream"), std::string::npos);
}

TEST(Tcl, OneCellPerInstance) {
    const BlockDesign design = smallDesign("cells");
    const std::string tcl = TclEmitter{}.emitBlockDesign(design);
    std::size_t count = 0;
    std::size_t pos = 0;
    while ((pos = tcl.find("create_bd_cell", pos)) != std::string::npos) {
        ++count;
        pos += 1;
    }
    EXPECT_EQ(count, design.instances().size());
}

TEST(Tcl, StreamAndLiteConnections) {
    const BlockDesign design = smallDesign("conn");
    const std::string tcl = TclEmitter{}.emitBlockDesign(design);
    EXPECT_NE(tcl.find("connect_bd_intf_net"), std::string::npos);
    EXPECT_NE(tcl.find("M_AXIS_MM2S"), std::string::npos);
    EXPECT_NE(tcl.find("S_AXIS_S2MM"), std::string::npos);
    EXPECT_NE(tcl.find("assign_bd_address"), std::string::npos);
    EXPECT_NE(tcl.find("S_AXI_HP0"), std::string::npos);
    EXPECT_NE(tcl.find("validate_bd_design"), std::string::npos);
}

TEST(Tcl, RequiresFinalisedDesign) {
    BlockDesign design("raw", zedboard());
    EXPECT_THROW((void)TclEmitter{}.emitBlockDesign(design), SynthesisError);
}

} // namespace
} // namespace socgen::soc
