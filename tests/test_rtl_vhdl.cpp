#include "socgen/common/error.hpp"
#include "socgen/rtl/primitives.hpp"
#include "socgen/rtl/vhdl.hpp"

#include <gtest/gtest.h>

namespace socgen::rtl {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
    return haystack.find(needle) != std::string::npos;
}

TEST(Vhdl, AdderEntityAndArchitecture) {
    const std::string vhdl = VhdlEmitter{}.emit(makeAdder("my_adder", 16));
    EXPECT_TRUE(contains(vhdl, "entity my_adder is"));
    EXPECT_TRUE(contains(vhdl, "architecture rtl of my_adder"));
    EXPECT_TRUE(contains(vhdl, "clk : in std_logic"));
    EXPECT_TRUE(contains(vhdl, "rst : in std_logic"));
    EXPECT_TRUE(contains(vhdl, "a : in std_logic_vector(15 downto 0)"));
    EXPECT_TRUE(contains(vhdl, "sum : out std_logic_vector(15 downto 0)"));
    EXPECT_TRUE(contains(vhdl, "use ieee.numeric_std.all"));
    EXPECT_TRUE(contains(vhdl, "end architecture rtl;"));
}

TEST(Vhdl, CounterHasClockedProcess) {
    const std::string vhdl = VhdlEmitter{}.emit(makeCounter("ctr", 8));
    EXPECT_TRUE(contains(vhdl, "rising_edge(clk)"));
    EXPECT_TRUE(contains(vhdl, "if rst = '1' then"));
    EXPECT_TRUE(contains(vhdl, "process (clk)"));
}

TEST(Vhdl, MacEmitsMultiplyWithResize) {
    const std::string vhdl = VhdlEmitter{}.emit(makeMac("mac", 32));
    EXPECT_TRUE(contains(vhdl, "resize("));
    EXPECT_TRUE(contains(vhdl, "*"));
}

TEST(Vhdl, BramEmitsArrayType) {
    NetlistBuilder b("memmod");
    const NetId addr = b.inputPort("addr", 8);
    const NetId wdata = b.inputPort("wdata", 16);
    const NetId we = b.inputPort("we", 1);
    b.outputPort("rdata", b.bram(addr, wdata, we, 16, 256, "tbl"));
    const std::string vhdl = VhdlEmitter{}.emit(b.netlist());
    EXPECT_TRUE(contains(vhdl, "is array (0 to 255) of"));
    EXPECT_TRUE(contains(vhdl, "_mem"));
}

TEST(Vhdl, SingleBitPortsUseStdLogic) {
    NetlistBuilder b("bitmod");
    const NetId x = b.inputPort("x", 1);
    b.outputPort("y", b.unary(CellKind::Not, x, 1));
    const std::string vhdl = VhdlEmitter{}.emit(b.netlist());
    EXPECT_TRUE(contains(vhdl, "x : in std_logic;"));
    EXPECT_TRUE(contains(vhdl, "y : out std_logic"));
    EXPECT_FALSE(contains(vhdl, "x : in std_logic_vector"));
}

TEST(Vhdl, ComparatorsEmitConditionalAssign) {
    NetlistBuilder b("cmp");
    const NetId a = b.inputPort("a", 8);
    const NetId c = b.inputPort("b", 8);
    b.outputPort("lt", b.binary(CellKind::Lt, a, c, 1));
    const std::string vhdl = VhdlEmitter{}.emit(b.netlist());
    EXPECT_TRUE(contains(vhdl, "'1' when"));
    EXPECT_TRUE(contains(vhdl, " < "));
}

TEST(Vhdl, MuxEmitsWhenElse) {
    NetlistBuilder b("muxmod");
    const NetId sel = b.inputPort("sel", 1);
    const NetId a = b.inputPort("a", 8);
    const NetId c = b.inputPort("b", 8);
    b.outputPort("y", b.mux(sel, a, c, 8));
    const std::string vhdl = VhdlEmitter{}.emit(b.netlist());
    EXPECT_TRUE(contains(vhdl, " when "));
    EXPECT_TRUE(contains(vhdl, " else "));
}

TEST(Vhdl, SanitizesNonIdentifierNames) {
    const std::string vhdl = VhdlEmitter{}.emit(makeAdder("my adder!", 8));
    EXPECT_TRUE(contains(vhdl, "entity my_adder_ is"));
}

TEST(Vhdl, DeterministicOutput) {
    const Netlist n = makeMac("mac", 16);
    EXPECT_EQ(VhdlEmitter{}.emit(n), VhdlEmitter{}.emit(n));
}

TEST(Vhdl, InvalidNetlistRejected) {
    Netlist bad("bad");
    (void)bad.addNet("floating", 4);
    EXPECT_THROW((void)VhdlEmitter{}.emit(bad), Error);
}

} // namespace
} // namespace socgen::rtl
