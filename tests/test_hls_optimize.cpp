#include "socgen/apps/otsu.hpp"
#include "socgen/common/error.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/hls/interpreter.hpp"
#include "socgen/hls/optimize.hpp"
#include "socgen/hls/verify.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <map>

namespace socgen::hls {
namespace {

/// Vector-backed IO used to compare pre/post-optimisation semantics.
class VecIo : public KernelIo {
public:
    std::map<PortId, std::uint64_t> args;
    std::map<PortId, std::uint64_t> results;
    std::map<PortId, std::deque<std::uint64_t>> inputs;
    std::map<PortId, std::vector<std::uint64_t>> outputs;

    std::uint64_t argValue(PortId port) override { return args[port]; }
    void setResult(PortId port, std::uint64_t value) override { results[port] = value; }
    bool streamRead(PortId port, std::uint64_t& value) override {
        auto& q = inputs[port];
        if (q.empty()) {
            return false;
        }
        value = q.front();
        q.pop_front();
        return true;
    }
    bool streamWrite(PortId port, std::uint64_t value) override {
        outputs[port].push_back(value);
        return true;
    }
};

void runKernel(const Kernel& kernel, VecIo& io) {
    Directives d;
    d.enableOptimizer = false;  // run exactly the kernel given
    const Program p = compileKernel(kernel, scheduleKernel(kernel, d));
    KernelVm vm(p, io);
    vm.start();
    std::uint64_t guard = 0;
    while (vm.running() && ++guard < 10'000'000) {
        vm.tick();
    }
    ASSERT_TRUE(vm.finished());
}

TEST(Optimize, FoldsConstantExpressions) {
    KernelBuilder kb("fold");
    const PortId r = kb.scalarOut("r", 32);
    // (3 + 4) * 2 - 14 == 0; ~0 == all ones.
    kb.setResult(r, kb.sub(kb.mul(kb.add(kb.c(3), kb.c(4)), kb.c(2)), kb.c(14)));
    const Kernel k = kb.build();
    OptStats stats;
    const Kernel opt = optimize(k, &stats);
    EXPECT_GE(stats.foldedConstants, 2u);
    // The optimised body computes the same value.
    VecIo a;
    VecIo b;
    runKernel(k, a);
    runKernel(opt, b);
    EXPECT_EQ(a.results[0], b.results[0]);
    EXPECT_EQ(b.results[0], 0u);
}

TEST(Optimize, AlgebraicIdentities) {
    KernelBuilder kb("alg");
    const PortId x = kb.scalarIn("x", 32);
    const PortId r = kb.scalarOut("r", 32);
    // ((x + 0) * 1) >> 0  ==  x
    kb.setResult(r, kb.shr(kb.mul(kb.add(kb.arg(x), kb.c(0)), kb.c(1)), kb.c(0)));
    OptStats stats;
    const Kernel opt = optimize(kb.build(), &stats);
    EXPECT_GE(stats.simplifiedAlgebra, 3u);
    VecIo io;
    io.args[0] = 777;
    runKernel(opt, io);
    EXPECT_EQ(io.results[1], 777u);
}

TEST(Optimize, MulByZeroWithoutSideEffectsFolds) {
    KernelBuilder kb("zero");
    const PortId x = kb.scalarIn("x", 32);
    const PortId r = kb.scalarOut("r", 32);
    kb.setResult(r, kb.mul(kb.arg(x), kb.c(0)));
    OptStats stats;
    const Kernel opt = optimize(kb.build(), &stats);
    EXPECT_GE(stats.simplifiedAlgebra, 1u);
    VecIo io;
    io.args[0] = 123;
    runKernel(opt, io);
    EXPECT_EQ(io.results[1], 0u);
}

TEST(Optimize, MulByZeroKeepsStreamReads) {
    // read(in) * 0 must still consume the stream beat.
    KernelBuilder kb("sideeffect");
    const PortId in = kb.streamIn("in", 32);
    const PortId out = kb.streamOut("out", 32);
    kb.write(out, kb.mul(kb.read(in), kb.c(0)));
    kb.write(out, kb.read(in));  // sees the SECOND beat only if the first was consumed
    const Kernel opt = optimize(kb.build());
    VecIo io;
    io.inputs[0] = {11, 22};
    runKernel(opt, io);
    ASSERT_EQ(io.outputs[1].size(), 2u);
    EXPECT_EQ(io.outputs[1][0], 0u);
    EXPECT_EQ(io.outputs[1][1], 22u);
}

TEST(Optimize, DeadAssignRemoved) {
    KernelBuilder kb("dead");
    const PortId r = kb.scalarOut("r", 32);
    const VarId unused = kb.var("unused", 32);
    const VarId used = kb.var("used", 32);
    kb.assign(unused, kb.c(5));          // never read
    kb.assign(used, kb.c(6));
    kb.setResult(r, kb.v(used));
    OptStats stats;
    const Kernel opt = optimize(kb.build(), &stats);
    EXPECT_EQ(stats.removedStatements, 1u);
    EXPECT_EQ(opt.body().size(), 2u);
    VecIo io;
    runKernel(opt, io);
    EXPECT_EQ(io.results[0], 6u);
}

TEST(Optimize, DeadAssignWithStreamReadKept) {
    KernelBuilder kb("deadread");
    const PortId in = kb.streamIn("in", 32);
    const PortId out = kb.streamOut("out", 32);
    const VarId sink = kb.var("sink", 32);
    kb.assign(sink, kb.read(in));  // value unused, but the read must stay
    kb.write(out, kb.read(in));
    const Kernel opt = optimize(kb.build());
    VecIo io;
    io.inputs[0] = {1, 2};
    runKernel(opt, io);
    EXPECT_EQ(io.outputs[1], std::vector<std::uint64_t>{2});
}

TEST(Optimize, ConstantConditionIfFlattened) {
    KernelBuilder kb("constif");
    const PortId r = kb.scalarOut("r", 32);
    const VarId v = kb.var("v", 32);
    kb.ifBegin(kb.gt(kb.c(5), kb.c(3)));
    kb.assign(v, kb.c(100));
    kb.elseBegin();
    kb.assign(v, kb.c(200));
    kb.endIf();
    kb.setResult(r, kb.v(v));
    OptStats stats;
    const Kernel opt = optimize(kb.build(), &stats);
    // The if disappeared; only the taken branch and setResult remain.
    for (StmtId id : opt.body()) {
        EXPECT_NE(opt.stmt(id).kind, StmtKind::If);
    }
    VecIo io;
    runKernel(opt, io);
    EXPECT_EQ(io.results[0], 100u);
}

TEST(Optimize, EmptyLoopRemoved) {
    KernelBuilder kb("emptyloop");
    const PortId r = kb.scalarOut("r", 32);
    const VarId i = kb.var("i", 32);
    kb.forLoop(i, kb.c(100));
    kb.endLoop();
    kb.setResult(r, kb.c(9));
    OptStats stats;
    const Kernel opt = optimize(kb.build(), &stats);
    EXPECT_EQ(stats.removedStatements, 1u);
    EXPECT_EQ(opt.body().size(), 1u);
}

TEST(Optimize, OptimizedKernelsStillVerify) {
    for (const Kernel& k :
         {apps::makeGrayScaleKernel(256), apps::makeHistogramKernel(256),
          apps::makeOtsuKernel(256), apps::makeBinarizationKernel(256)}) {
        EXPECT_NO_THROW(verify(optimize(k))) << k.name();
    }
}

class OptimizerEquivalence : public testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizerEquivalence, OtsuKernelSemanticsPreserved) {
    // Property: the optimised otsu kernel produces the same threshold as
    // the original for arbitrary histograms.
    const apps::GrayImage img = apps::makeSyntheticGrayScene(24, 24, GetParam());
    const auto hist = apps::histogramRef(img);
    const Kernel original = apps::makeOtsuKernel(
        static_cast<std::int64_t>(img.pixelCount()));
    const Kernel optimised = optimize(original);

    const auto runOtsu = [&](const Kernel& k) {
        VecIo io;
        for (auto h : hist) {
            io.inputs[k.portId("histogram")].push_back(h);
        }
        runKernel(k, io);
        return io.outputs[k.portId("probability")].at(0);
    };
    EXPECT_EQ(runOtsu(original), runOtsu(optimised));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerEquivalence,
                         testing::Values(2u, 9u, 33u, 77u, 1001u));

TEST(Optimize, EngineReportsOptimizerStats) {
    KernelBuilder kb("report");
    const PortId r = kb.scalarOut("r", 32);
    kb.setResult(r, kb.add(kb.c(1), kb.c(2)));
    const HlsResult result = HlsEngine{}.synthesize(kb.build(), Directives{});
    EXPECT_NE(result.reportText.find("optimizer:"), std::string::npos);
    EXPECT_FALSE(result.verilog.empty());
    EXPECT_NE(result.verilog.find("module report"), std::string::npos);
}

TEST(Optimize, StrengthReductionMulByPowerOfTwo) {
    KernelBuilder kb("sr");
    const PortId x = kb.scalarIn("x", 32);
    const PortId r = kb.scalarOut("r", 32);
    kb.setResult(r, kb.mul(kb.arg(x), kb.c(8)));
    OptStats stats;
    const Kernel opt = optimize(kb.build(), &stats);
    EXPECT_EQ(stats.strengthReduced, 1u);
    VecIo io;
    io.args[0] = 13;
    runKernel(opt, io);
    EXPECT_EQ(io.results[1], 104u);
    // The engine stops charging a DSP for it.
    const auto makeKernel = [] {
        KernelBuilder b("sr2");
        const PortId xx = b.scalarIn("x", 32);
        const PortId rr = b.scalarOut("r", 32);
        b.setResult(rr, b.mul(b.arg(xx), b.c(8)));
        return b.build();
    };
    Directives d;
    const HlsResult withOpt = HlsEngine{}.synthesize(makeKernel(), d);
    d.enableOptimizer = false;
    const HlsResult withoutOpt = HlsEngine{}.synthesize(makeKernel(), d);
    EXPECT_LT(withOpt.resources.dsp, withoutOpt.resources.dsp);
}

TEST(Optimize, StrengthReductionDivMod) {
    KernelBuilder kb("dm");
    const PortId x = kb.scalarIn("x", 32);
    const PortId q = kb.scalarOut("q", 32);
    const PortId m = kb.scalarOut("m", 32);
    kb.setResult(q, kb.div(kb.arg(x), kb.c(16)));
    kb.setResult(m, kb.mod(kb.arg(x), kb.c(16)));
    OptStats stats;
    const Kernel opt = optimize(kb.build(), &stats);
    EXPECT_EQ(stats.strengthReduced, 2u);
    VecIo io;
    io.args[0] = 1234;
    runKernel(opt, io);
    EXPECT_EQ(io.results[1], 1234u / 16);
    EXPECT_EQ(io.results[2], 1234u % 16);
    // No iterative divider remains in the datapath.
    const HlsResult r = HlsEngine{}.synthesize(opt, Directives{});
    EXPECT_EQ(r.binding.divUnits, 0);
}

TEST(Optimize, NonPowerOfTwoLeftAlone) {
    KernelBuilder kb("np");
    const PortId x = kb.scalarIn("x", 32);
    const PortId r = kb.scalarOut("r", 32);
    kb.setResult(r, kb.mul(kb.arg(x), kb.c(7)));
    OptStats stats;
    const Kernel opt = optimize(kb.build(), &stats);
    EXPECT_EQ(stats.strengthReduced, 0u);
    VecIo io;
    io.args[0] = 6;
    runKernel(opt, io);
    EXPECT_EQ(io.results[1], 42u);
}

TEST(Optimize, CanBeDisabled) {
    KernelBuilder kb("off");
    const PortId r = kb.scalarOut("r", 32);
    kb.setResult(r, kb.add(kb.c(1), kb.c(2)));
    Directives d;
    d.enableOptimizer = false;
    const HlsResult result = HlsEngine{}.synthesize(kb.build(), d);
    EXPECT_EQ(result.reportText.find("optimizer:"), std::string::npos);
}

} // namespace
} // namespace socgen::hls
