// Generated simulator for netlist 'ctr'. Do not edit.
// emitter: socgen-codegen-v1
// netlist-digest: bad5e4304a15bf1985dd417144e58431

namespace {

struct State {
    unsigned long long v[4];
    unsigned long long s[1];
    unsigned long long mem[1];
};

inline void band_0(State& st) {
    st.v[1] = 1ULL;
}

inline void band_1(State& st) {
    st.v[3] = (st.v[2] + st.v[1]) & 0xffULL;
}

void evalAll(State& st) {
    st.v[2] = st.s[0] & 0xffULL;
    band_0(st);
    band_1(st);
}

long long stepOnce(State& st, unsigned long long* faultAddr) {
    evalAll(st);
    if (st.v[0] != 0ULL) { st.s[0] = st.v[3] & 0xffULL; }
    (void)faultAddr;
    return -1;
}

void resetState(State& st) {
    for (unsigned long long i = 0; i < 1ULL; ++i) { st.s[i] = 0ULL; }
    for (unsigned long long i = 0; i < 0ULL; ++i) { st.mem[i] = 0ULL; }
}

} // namespace

extern "C" {

int socgen_cg_abi(void) { return 1; }

const char* socgen_cg_digest(void) { return "bad5e4304a15bf1985dd417144e58431"; }

unsigned long long socgen_cg_net_count(void) { return 4ULL; }

void* socgen_cg_create(void) { return new State(); }

void socgen_cg_destroy(void* p) { delete static_cast<State*>(p); }

unsigned long long* socgen_cg_vals(void* p) { return static_cast<State*>(p)->v; }

unsigned long long* socgen_cg_mem(void* p, unsigned long long idx) {
    (void)p;
    (void)idx;
    return nullptr;
}

void socgen_cg_eval(void* p) { evalAll(*static_cast<State*>(p)); }

long long socgen_cg_step(void* p, unsigned long long* faultAddr) {
    return stepOnce(*static_cast<State*>(p), faultAddr);
}

void socgen_cg_reset(void* p) { resetState(*static_cast<State*>(p)); }

} // extern "C"
