// Differential test between the RTL simulation backends: the
// event-driven reference engine (NetlistSimulator), the compiled
// levelized engine (CompiledSim), and — when a host compiler is
// available — the generated-C++ engine (CodegenSim) must produce
// cycle-identical signal traces — every net, every cycle — and
// identical final memory state on every design we can throw at them:
// seeded random netlists covering the full cell vocabulary, and the
// HLS netlists of all four Otsu case study architectures.
// ctest label: diff-sim.

#include "netlist_gen.hpp"
#include "socgen/apps/kernels.hpp"
#include "socgen/apps/otsu_project.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/textfile.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/rtl/codegen_emit.hpp"
#include "socgen/rtl/codegen_sim.hpp"
#include "socgen/rtl/compiled_sim.hpp"
#include "socgen/rtl/netlist_sim.hpp"
#include "socgen/rtl/primitives.hpp"
#include "socgen/rtl/sim_backend.hpp"
#include "socgen/rtl/vcd.hpp"
#include "socgen/sim/engine.hpp"
#include "socgen/soc/rtl_core.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace socgen::rtl {
namespace {

/// Per-cycle stimulus: port name -> value to drive before the step.
using Stimulus = std::map<std::string, std::uint64_t>;

/// True once per process: is the generated-C++ backend usable here? The
/// no-compiler CI leg (SOCGEN_CXX=/nonexistent) runs the same suite as
/// a two-way comparison; everywhere else the suite is three-way.
bool codegenUsable() {
    static const bool usable = codegenToolchainAvailable();
    return usable;
}

/// Strict CodegenSim construction for the differential suite: the
/// toolchain probe above is the only sanctioned reason to skip, so any
/// emit/compile/load failure on a supported netlist is a test failure,
/// not a silent two-way downgrade.
std::unique_ptr<Simulator> makeCodegenStrict(const Netlist& netlist) {
    return std::make_unique<CodegenSim>(netlist);
}

/// Steps every backend in lockstep for `cycles` cycles, asserting after
/// every step that all net values agree pairwise against the
/// event-driven reference, and at the end that every BRAM holds
/// identical contents and all engines counted the same cycles. A
/// SimulationError (e.g. BRAM address overflow from random stimulus)
/// must be raised by every backend on the same cycle to count as
/// agreement.
void expectLockstep(const Netlist& netlist,
                    const std::vector<Stimulus>& stimulus) {
    std::vector<std::unique_ptr<Simulator>> sims;
    sims.push_back(std::make_unique<NetlistSimulator>(netlist));
    sims.push_back(std::make_unique<CompiledSim>(netlist));
    if (codegenUsable()) {
        sims.push_back(makeCodegenStrict(netlist));
    }
    Simulator& reference = *sims.front();

    const auto compareNets = [&](std::size_t cycle, const char* when) {
        for (std::size_t s = 1; s < sims.size(); ++s) {
            for (NetId id = 0; id < netlist.nets().size(); ++id) {
                ASSERT_EQ(reference.netValue(id), sims[s]->netValue(id))
                    << netlist.name() << ": net '" << netlist.net(id).name << "' (id "
                    << id << ") diverged on backend " << sims[s]->backendName() << " "
                    << when << " cycle " << cycle;
            }
        }
    };

    for (std::size_t cycle = 0; cycle < stimulus.size(); ++cycle) {
        std::vector<bool> threw(sims.size(), false);
        for (std::size_t s = 0; s < sims.size(); ++s) {
            for (const auto& [port, value] : stimulus[cycle]) {
                sims[s]->setInput(port, value);
            }
            try {
                sims[s]->step();
            } catch (const SimulationError&) {
                threw[s] = true;
            }
        }
        for (std::size_t s = 1; s < sims.size(); ++s) {
            ASSERT_EQ(threw[0], threw[s])
                << netlist.name() << ": backends " << reference.backendName() << " and "
                << sims[s]->backendName() << " disagreed about throwing on cycle "
                << cycle;
        }
        if (threw[0]) {
            return;  // parity on the error path is all we require
        }
        compareNets(cycle, "after step on");
    }
    for (auto& sim : sims) {
        sim->evaluate();
    }
    compareNets(stimulus.size(), "after final evaluate at");

    for (std::size_t s = 1; s < sims.size(); ++s) {
        EXPECT_EQ(reference.cycleCount(), sims[s]->cycleCount())
            << netlist.name() << ": cycle count diverged on " << sims[s]->backendName();
        for (CellId id = 0; id < netlist.cells().size(); ++id) {
            if (netlist.cell(id).kind == CellKind::Bram) {
                EXPECT_EQ(reference.memoryContents(id), sims[s]->memoryContents(id))
                    << netlist.name() << ": BRAM '" << netlist.cell(id).name
                    << "' final contents diverged on " << sims[s]->backendName();
            }
        }
    }
}

/// Random per-cycle stimulus for every input port; ports change value
/// with probability 1/4 so parts of the design stay quiescent (the
/// compiled backend's dirty skipping must not change observable state).
std::vector<Stimulus> randomStimulus(const Netlist& netlist, std::uint64_t seed,
                                     unsigned cycles) {
    testing::SplitMix64 rng(seed ^ 0xa0761d6478bd642fULL);
    std::vector<Stimulus> out(cycles);
    for (unsigned cycle = 0; cycle < cycles; ++cycle) {
        for (const auto& port : netlist.ports()) {
            if (port.dir != PortDir::In) {
                continue;
            }
            if (cycle == 0 || rng.below(4) == 0) {
                out[cycle][port.name] = rng.next();
            }
        }
    }
    return out;
}

class RandomNetlistDiff : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNetlistDiff, BackendsAgreeCycleForCycle) {
    const std::uint64_t seed = GetParam();
    // sweepOptions varies the shape per seed and folds in the newer
    // constructs (wide >64-bit buses, BRAM collision pairs, deep serial
    // chains) on fixed seed subsets.
    const Netlist netlist = testing::randomNetlist(seed, testing::sweepOptions(seed));
    expectLockstep(netlist, randomStimulus(netlist, seed, 200));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlistDiff,
                         ::testing::ValuesIn(testing::diffSimSeeds()));

TEST(RandomNetlistDiff, LargeNetlistAgrees) {
    testing::NetlistGenOptions opt;
    opt.combCells = 600;
    opt.regs = 48;
    opt.brams = 6;
    opt.fsms = 3;
    opt.inputPorts = 8;
    const Netlist netlist = testing::randomNetlist(424242, opt);
    expectLockstep(netlist, randomStimulus(netlist, 424242, 120));
}

// ---------------------------------------------------------------------------
// Reference primitives (hand-built circuits from rtl/primitives.hpp).

TEST(PrimitiveDiff, CounterAdderMacAgree) {
    for (const Netlist& netlist :
         {makeCounter("ctr", 16), makeAdder("add", 32), makeMac("mac", 24)}) {
        expectLockstep(netlist, randomStimulus(netlist, 99, 64));
    }
}

TEST(PrimitiveDiff, BramOutOfRangeThrowsOnBothBackends) {
    NetlistBuilder b("mem");
    const NetId addr = b.inputPort("addr", 8);
    const NetId wdata = b.inputPort("wdata", 16);
    const NetId we = b.inputPort("we", 1);
    b.outputPort("rdata", b.bram(addr, wdata, we, 16, 4));
    expectLockstep(b.netlist(), {{{"addr", 9}, {"we", 1}, {"wdata", 1}}});
}

// ---------------------------------------------------------------------------
// Otsu case study: every HLS netlist of Arch1..Arch4 (Table I).

std::vector<Stimulus> hlsCoreStimulus(const Netlist& netlist, std::uint64_t seed,
                                      unsigned cycles) {
    testing::SplitMix64 rng(seed);
    std::vector<Stimulus> out(cycles);
    for (unsigned cycle = 0; cycle < cycles; ++cycle) {
        for (const auto& port : netlist.ports()) {
            if (port.dir != PortDir::In) {
                continue;
            }
            const std::string& name = port.name;
            if (name == "ap_start") {
                out[cycle][name] = 1;
            } else if (name.ends_with("_tdata")) {
                out[cycle][name] = rng.below(256);  // pixel-sized payloads
            } else if (name.ends_with("_tvalid") || name.ends_with("_tready")) {
                out[cycle][name] = rng.below(4) != 0 ? 1 : 0;
            } else if (cycle == 0) {
                out[cycle][name] = rng.below(256);  // scalar argument
            }
        }
    }
    return out;
}

TEST(OtsuArchDiff, AllArchitecturesAgreeOnBothBackends) {
    const core::Htg htg = apps::makeOtsuHtg();
    const hls::KernelLibrary kernels = apps::makeOtsuKernelLibrary(4096);
    core::FlowOptions options = apps::otsuFlowOptions();
    options.runSynthesis = false;
    options.generateSoftware = false;
    const auto cache = std::make_shared<core::HlsCache>();
    for (int arch = 1; arch <= 4; ++arch) {
        core::Flow flow(options, kernels, cache);
        const core::FlowResult result = flow.run(
            "diffsim_arch" + std::to_string(arch),
            core::lowerToTaskGraph(htg, apps::otsuArchPartition(arch)));
        ASSERT_FALSE(result.hlsResults.empty()) << "arch " << arch;
        for (const auto& [node, hlsResult] : result.hlsResults) {
            SCOPED_TRACE("arch " + std::to_string(arch) + " core " + node);
            expectLockstep(hlsResult.netlist,
                           hlsCoreStimulus(hlsResult.netlist,
                                           0x07500000u + static_cast<unsigned>(arch),
                                           300));
        }
    }
}

// ---------------------------------------------------------------------------
// VCD traces: byte-identical between backends (and committable as a
// bench artifact via SOCGEN_DUMP_TRACE_DIR).

TEST(TraceDiff, CounterVcdIsByteIdenticalAcrossBackends) {
    const Netlist netlist = makeCounter("ctr", 8);
    std::vector<SimBackend> backends = {SimBackend::EventDriven, SimBackend::Compiled};
    if (codegenUsable()) {
        backends.push_back(SimBackend::Codegen);
    }
    std::vector<std::string> rendered;
    for (const SimBackend backend : backends) {
        const auto sim = backend == SimBackend::Codegen ? makeCodegenStrict(netlist)
                                                        : makeSimulator(netlist, backend);
        VcdTrace trace(netlist, *sim);
        sim->setInput("en", 1);
        for (int cycle = 0; cycle < 24; ++cycle) {
            if (cycle == 10) {
                sim->setInput("en", 0);
            }
            if (cycle == 14) {
                sim->setInput("en", 1);
            }
            sim->step();
            sim->evaluate();
            trace.sample();
        }
        rendered.push_back(trace.render());
    }
    for (std::size_t i = 1; i < rendered.size(); ++i) {
        EXPECT_EQ(rendered[0], rendered[i])
            << "VCD bytes diverged on " << simBackendName(backends[i]);
    }
    if (const char* dir = std::getenv("SOCGEN_DUMP_TRACE_DIR")) {
        writeTextFile(std::string(dir) + "/diff_sim_counter.vcd", rendered[1]);
    }
}

// ---------------------------------------------------------------------------
// Backend selection and the Auto-fallback rule.

/// Saves an environment variable and restores it on scope exit, so the
/// selection tests behave the same under the CI diff-sim job (which runs
/// the whole label with SOCGEN_SIM_BACKEND exported).
class EnvGuard {
public:
    explicit EnvGuard(const char* name) : name_(name) {
        if (const char* value = std::getenv(name)) {
            saved_ = value;
        }
        ::unsetenv(name);
    }
    ~EnvGuard() {
        if (saved_.has_value()) {
            ::setenv(name_, saved_->c_str(), 1);
        } else {
            ::unsetenv(name_);
        }
    }
    EnvGuard(const EnvGuard&) = delete;
    EnvGuard& operator=(const EnvGuard&) = delete;

private:
    const char* name_;
    std::optional<std::string> saved_;
};

TEST(BackendSelect, NamesAndParsing) {
    EXPECT_EQ(simBackendName(SimBackend::EventDriven), "event");
    EXPECT_EQ(simBackendName(SimBackend::Compiled), "compiled");
    EXPECT_EQ(simBackendName(SimBackend::Codegen), "codegen");
    EXPECT_EQ(simBackendFromString("event-driven"), SimBackend::EventDriven);
    EXPECT_EQ(simBackendFromString("compiled"), SimBackend::Compiled);
    EXPECT_EQ(simBackendFromString("codegen"), SimBackend::Codegen);
    EXPECT_EQ(simBackendFromString("auto"), SimBackend::Auto);
    EXPECT_THROW((void)simBackendFromString("verilator"), Error);
}

TEST(BackendSelect, ExplicitBackendsReportThemselves) {
    const Netlist netlist = makeCounter("ctr", 8);
    EXPECT_EQ(makeSimulator(netlist, SimBackend::EventDriven)->backendName(), "event");
    EXPECT_EQ(makeSimulator(netlist, SimBackend::Compiled)->backendName(), "compiled");
    if (codegenUsable()) {
        EXPECT_EQ(makeSimulator(netlist, SimBackend::Codegen)->backendName(), "codegen");
    }
}

TEST(BackendSelect, CodegenResolvesThroughEnvAndFingerprint) {
    // SOCGEN_SIM_BACKEND=codegen must flow through resolveSimBackend —
    // the function flow fingerprints fold in — whether or not a host
    // compiler exists; only construction degrades, never the request.
    const EnvGuard guard("SOCGEN_SIM_BACKEND");
    ::setenv("SOCGEN_SIM_BACKEND", "codegen", 1);
    EXPECT_EQ(resolveSimBackend(), SimBackend::Codegen);
    EXPECT_EQ(resolveSimBackend(SimBackend::Compiled), SimBackend::Compiled);
}

TEST(BackendSelect, EnvOverridesAuto) {
    const EnvGuard guard("SOCGEN_SIM_BACKEND");
    const Netlist netlist = makeCounter("ctr", 8);
    EXPECT_EQ(makeSimulator(netlist)->backendName(), "compiled");  // Auto default
    EXPECT_EQ(resolveSimBackend(), SimBackend::Compiled);
    ::setenv("SOCGEN_SIM_BACKEND", "event", 1);
    EXPECT_EQ(makeSimulator(netlist)->backendName(), "event");
    EXPECT_EQ(resolveSimBackend(), SimBackend::EventDriven);
    ::setenv("SOCGEN_SIM_BACKEND", "compiled", 1);
    EXPECT_EQ(makeSimulator(netlist)->backendName(), "compiled");
    // An explicit backend beats the env override.
    EXPECT_EQ(resolveSimBackend(SimBackend::EventDriven), SimBackend::EventDriven);
    // A malformed override fails loudly, naming the variable.
    ::setenv("SOCGEN_SIM_BACKEND", "verilator", 1);
    try {
        (void)resolveSimBackend();
        FAIL() << "accepted SOCGEN_SIM_BACKEND=verilator";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("SOCGEN_SIM_BACKEND"), std::string::npos)
            << e.what();
    }
}

TEST(BackendSelect, AutoFallsBackWhenCompilerDeclinesAConstruct) {
    // The deny hook stands in for a future construct the compiler does
    // not cover: Auto must fall back to the event-driven engine for
    // affected netlists and keep compiling everything else.
    const EnvGuard backendGuard("SOCGEN_SIM_BACKEND");
    const EnvGuard denyGuard("SOCGEN_COMPILED_SIM_DENY");
    const Netlist counter = makeCounter("ctr", 8);  // contains Reg cells
    const Netlist adder = makeAdder("add", 8);      // purely combinational
    ::setenv("SOCGEN_COMPILED_SIM_DENY", "REG", 1);
    EXPECT_EQ(makeSimulator(counter)->backendName(), "event");
    EXPECT_EQ(makeSimulator(adder)->backendName(), "compiled");
    EXPECT_THROW((void)makeSimulator(counter, SimBackend::Compiled),
                 UnsupportedNetlistError);
    ::unsetenv("SOCGEN_COMPILED_SIM_DENY");
    EXPECT_EQ(makeSimulator(counter)->backendName(), "compiled");
}

TEST(EngineHosting, RtlCoreRunsIdenticallyUnderBothBackends) {
    // A generated accelerator hosted in the SoC cycle engine via
    // RtlCoreComponent must reach ap_done on the same engine cycle with
    // the same result whichever RTL backend clocks the netlist.
    const hls::HlsResult r = hls::HlsEngine{}.synthesize(apps::makeAddKernel(), {});
    std::vector<SimBackend> backends = {SimBackend::EventDriven, SimBackend::Compiled};
    if (codegenUsable()) {
        backends.push_back(SimBackend::Codegen);
    }
    std::vector<std::uint64_t> cycles;
    std::vector<std::uint64_t> sum;
    for (const SimBackend backend : backends) {
        soc::RtlCoreComponent core("add_core", r.netlist, "ap_done", backend);
        EXPECT_EQ(core.sim().backendName(), simBackendName(backend));
        core.sim().setInput("ap_start", 1);
        core.sim().setInput("A", 19);
        core.sim().setInput("B", 23);
        sim::Engine engine;
        engine.add(core);
        cycles.push_back(engine.runUntilIdle(1000));
        sum.push_back(core.sim().output("return"));
        EXPECT_TRUE(core.idle());
        EXPECT_NE(core.debugState().find(simBackendName(backend)), std::string::npos);
    }
    EXPECT_EQ(sum[0], 42u);
    for (std::size_t i = 1; i < backends.size(); ++i) {
        EXPECT_EQ(sum[0], sum[i]) << simBackendName(backends[i]);
        EXPECT_EQ(cycles[0], cycles[i]) << simBackendName(backends[i]);
    }
}

TEST(CompiledIntrospection, DirtySkippingGoesQuiescent) {
    // A disabled counter settles: after the first few cycles the
    // compiled backend should evaluate zero ops per step.
    const Netlist netlist = makeCounter("ctr", 8);
    CompiledSim sim(netlist);
    sim.setInput("en", 0);
    for (int i = 0; i < 4; ++i) {
        sim.step();
    }
    const std::uint64_t settled = sim.opsEvaluated();
    for (int i = 0; i < 100; ++i) {
        sim.step();
    }
    EXPECT_EQ(sim.opsEvaluated(), settled);  // quiescent subgraph skipped
    EXPECT_GT(sim.levelCount(), 1u);
    EXPECT_EQ(sim.opCount(), netlist.topoOrder().size());
}

// ---------------------------------------------------------------------------
// Partitioned evaluation: any thread count must be byte-identical to the
// serial sweep — same VCD bytes, same opsEvaluated(), same final BRAMs.

TEST(ThreadSelect, EnvOverrideAndClamping) {
    const EnvGuard guard("SOCGEN_SIM_THREADS");
    EXPECT_EQ(resolveSimThreads(), 1u);           // unset -> serial
    EXPECT_EQ(resolveSimThreads(4), 4u);          // explicit request
    EXPECT_EQ(resolveSimThreads(1000), kMaxSimThreads);
    ::setenv("SOCGEN_SIM_THREADS", "3", 1);
    EXPECT_EQ(resolveSimThreads(), 3u);           // Auto -> env
    EXPECT_EQ(resolveSimThreads(8), 8u);          // explicit beats env
    // A malformed override fails loudly, naming the variable — a typo in
    // a CI matrix must not silently run the sweep serial.
    for (const char* bad : {"garbage", "4x", "0", "-2", ""}) {
        ::setenv("SOCGEN_SIM_THREADS", bad, 1);
        if (*bad == '\0') {
            EXPECT_EQ(resolveSimThreads(), 1u);  // empty means unset
            continue;
        }
        try {
            (void)resolveSimThreads();
            FAIL() << "accepted SOCGEN_SIM_THREADS='" << bad << "'";
        } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find("SOCGEN_SIM_THREADS"),
                      std::string::npos)
                << e.what();
        }
    }
    ::setenv("SOCGEN_SIM_THREADS", "2", 1);
    const Netlist netlist = makeCounter("ctr", 8);
    const CompiledSim sim(netlist);               // default config consults the env
    EXPECT_EQ(sim.threadCount(), 2u);
}

/// Runs `netlist` under `config` and returns (VCD bytes, opsEvaluated,
/// every BRAM's final contents) for comparison across thread counts.
struct ThreadRunResult {
    std::string vcd;
    std::uint64_t opsEvaluated = 0;
    std::vector<std::vector<std::uint64_t>> brams;
};

ThreadRunResult runWithConfig(const Netlist& netlist,
                              const std::vector<Stimulus>& stimulus,
                              const SimConfig& config) {
    CompiledSim sim(netlist, config);
    VcdTrace trace(netlist, sim);
    for (const Stimulus& cycle : stimulus) {
        for (const auto& [port, value] : cycle) {
            sim.setInput(port, value);
        }
        sim.step();
        sim.evaluate();
        trace.sample();
    }
    ThreadRunResult out;
    out.vcd = trace.render();
    out.opsEvaluated = sim.opsEvaluated();
    for (CellId id = 0; id < netlist.cells().size(); ++id) {
        if (netlist.cell(id).kind == CellKind::Bram) {
            out.brams.push_back(sim.memoryContents(id));
        }
    }
    return out;
}

class ThreadParity : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadParity, PartitionedRunIsByteIdenticalToSerial) {
    const EnvGuard guard("SOCGEN_SIM_THREADS");
    const unsigned threads = GetParam();
    for (const std::uint64_t seed : {7919ULL, 23757ULL, 39595ULL, 424242ULL}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        testing::NetlistGenOptions opt = testing::sweepOptions(seed);
        if (seed == 424242ULL) {
            opt.combCells = 600;  // big enough for multi-chunk bands
            opt.regs = 48;
            opt.chainDepth = 120;
        }
        const Netlist netlist = testing::randomNetlist(seed, opt);
        const auto stimulus = randomStimulus(netlist, seed, 120);

        SimConfig serial;
        serial.backend = SimBackend::Compiled;
        serial.threads = 1;
        const ThreadRunResult reference = runWithConfig(netlist, stimulus, serial);

        SimConfig parallel = serial;
        parallel.threads = threads;
        // Grain 1 forces the worker-pool path on every non-empty band, so
        // parity covers the partitioned code even for tiny bands.
        parallel.parallelGrainOps = 1;
        const ThreadRunResult run = runWithConfig(netlist, stimulus, parallel);

        EXPECT_EQ(run.vcd, reference.vcd) << "VCD bytes diverged at " << threads
                                          << " threads";
        EXPECT_EQ(run.opsEvaluated, reference.opsEvaluated)
            << "dirty-skipping work diverged at " << threads << " threads";
        EXPECT_EQ(run.brams, reference.brams);
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadParity, ::testing::Values(1u, 2u, 4u, 8u));

TEST(ThreadParity, ReportedThreadCountMatchesConfig) {
    const Netlist netlist = makeCounter("ctr", 8);
    SimConfig config;
    config.backend = SimBackend::Compiled;
    config.threads = 4;
    CompiledSim sim(netlist, config);
    EXPECT_EQ(sim.threadCount(), 4u);
    // The config-taking factory resolves the same way.
    const auto viaFactory = makeSimulator(netlist, config);
    EXPECT_EQ(viaFactory->backendName(), "compiled");
}

} // namespace
} // namespace socgen::rtl
