#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/stopwatch.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <tuple>

namespace socgen {
namespace {

TEST(Strings, FormatBasics) {
    EXPECT_EQ(format("x=%d y=%s", 3, "ab"), "x=3 y=ab");
    EXPECT_EQ(format("%05d", 42), "00042");
    EXPECT_EQ(format("%s", ""), "");
}

TEST(Strings, FormatLongOutput) {
    const std::string big(3000, 'q');
    EXPECT_EQ(format("%s!", big.c_str()).size(), 3001u);
}

TEST(Strings, SplitDropsEmptyPieces) {
    EXPECT_EQ(split("a,b,,c", ","), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split(",,", ","), std::vector<std::string>{});
    EXPECT_EQ(split("one two\tthree", " \t"),
              (std::vector<std::string>{"one", "two", "three"}));
}

TEST(Strings, TrimBothEnds) {
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("\t\n"), "");
    EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Strings, StartsEndsWith) {
    EXPECT_TRUE(startsWith("socgen", "soc"));
    EXPECT_FALSE(startsWith("so", "soc"));
    EXPECT_TRUE(endsWith("design.tcl", ".tcl"));
    EXPECT_FALSE(endsWith("tcl", "design.tcl"));
}

TEST(Strings, JoinWithSeparator) {
    EXPECT_EQ(join({"a", "b", "c"}, "::"), "a::b::c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Strings, IdentifierChecks) {
    EXPECT_TRUE(isIdentifier("abc_1"));
    EXPECT_TRUE(isIdentifier("_x"));
    EXPECT_FALSE(isIdentifier("1abc"));
    EXPECT_FALSE(isIdentifier(""));
    EXPECT_FALSE(isIdentifier("a-b"));
}

TEST(Strings, SanitizeIdentifier) {
    EXPECT_EQ(sanitizeIdentifier("my core!"), "my_core_");
    EXPECT_EQ(sanitizeIdentifier("9lives"), "x9lives");
    EXPECT_EQ(sanitizeIdentifier(""), "x");
    EXPECT_EQ(sanitizeIdentifier("ok_name"), "ok_name");
}

TEST(Strings, CountLines) {
    EXPECT_EQ(countLines(""), 0u);
    EXPECT_EQ(countLines("a"), 1u);
    EXPECT_EQ(countLines("a\n"), 1u);
    EXPECT_EQ(countLines("a\nb"), 2u);
    EXPECT_EQ(countLines("a\nb\n"), 2u);
}

TEST(Strings, CountNonSpaceChars) {
    EXPECT_EQ(countNonSpaceChars(" a b\tc\n"), 3u);
    EXPECT_EQ(countNonSpaceChars(""), 0u);
}

TEST(Strings, Fnv1aIsStableAndSpreads) {
    EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
    EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
    EXPECT_NE(fnv1a64(""), fnv1a64(std::string_view("\0", 1)));
}

TEST(Error, RequireThrowsWithMessage) {
    EXPECT_NO_THROW(require(true, "fine"));
    try {
        require(false, "broken invariant");
        FAIL() << "expected throw";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("broken invariant"), std::string::npos);
    }
}

TEST(Error, HierarchyPrefixes) {
    EXPECT_NE(std::string(DslError("x").what()).find("dsl:"), std::string::npos);
    EXPECT_NE(std::string(HlsError("x").what()).find("hls:"), std::string::npos);
    EXPECT_NE(std::string(SynthesisError("x").what()).find("synth:"), std::string::npos);
    EXPECT_NE(std::string(SimulationError("x").what()).find("sim:"), std::string::npos);
}

TEST(Log, CaptureCollectsAndRestores) {
    {
        LogCapture capture;
        Logger::global().info("hello capture");
        EXPECT_TRUE(capture.contains("hello capture"));
        EXPECT_FALSE(capture.contains("absent"));
        EXPECT_EQ(capture.lines().size(), 1u);
    }
    // After destruction the default sink is restored; nothing to assert
    // beyond not crashing.
    Logger::global().debug("after capture");
}

TEST(Log, LevelFiltering) {
    LogCapture capture(LogLevel::Warn);
    Logger::global().info("filtered out");
    Logger::global().warn("kept");
    EXPECT_FALSE(capture.contains("filtered out"));
    EXPECT_TRUE(capture.contains("kept"));
}

TEST(Timeline, AccumulatesAndQueries) {
    PhaseTimeline timeline;
    timeline.add("SCALA", 1.0, 6.0);
    timeline.add("HLS a", 2.0, 30.0);
    timeline.add("HLS b", 3.0, 40.0);
    timeline.add("SYNTH p", 4.0, 500.0);
    EXPECT_DOUBLE_EQ(timeline.totalHostMs(), 10.0);
    EXPECT_DOUBLE_EQ(timeline.totalToolSeconds(), 576.0);
    EXPECT_DOUBLE_EQ(timeline.toolSecondsFor("HLS"), 70.0);
    EXPECT_DOUBLE_EQ(timeline.toolSecondsFor("SCALA"), 6.0);
    EXPECT_DOUBLE_EQ(timeline.toolSecondsFor("nope"), 0.0);

    PhaseTimeline other;
    other.add("SW", 1.0, 2.0);
    timeline.append(other);
    EXPECT_EQ(timeline.phases().size(), 5u);
    timeline.clear();
    EXPECT_TRUE(timeline.phases().empty());
}

TEST(Stopwatch, MeasuresNonNegative) {
    Stopwatch watch;
    EXPECT_GE(watch.elapsedMs(), 0.0);
    watch.reset();
    EXPECT_GE(watch.elapsedMs(), 0.0);
}

TEST(TextFile, RoundTrip) {
    const std::string dir = testing::TempDir() + "/socgen_tf";
    const std::string path = dir + "/sub/file.txt";
    writeTextFile(path, "contents\nline2");
    EXPECT_EQ(readTextFile(path), "contents\nline2");
    writeBinaryFile(path, std::string("\0\x01\x02", 3));
    EXPECT_EQ(readTextFile(path).size(), 3u);
    std::filesystem::remove_all(dir);
}

TEST(TextFile, MissingFileThrows) {
    EXPECT_THROW((void)readTextFile("/nonexistent/socgen/file"), Error);
}

TEST(TextFile, UnwritablePathThrows) {
    EXPECT_THROW(writeTextFile("/proc/socgen_cannot_write/x", "data"), Error);
}

} // namespace
} // namespace socgen
