#include "socgen/common/error.hpp"
#include "socgen/rtl/netlist.hpp"
#include "socgen/rtl/primitives.hpp"

#include <gtest/gtest.h>

namespace socgen::rtl {
namespace {

TEST(Netlist, BuildAndInspect) {
    Netlist n("simple");
    const NetId a = n.addNet("a", 8);
    const NetId b = n.addNet("b", 8);
    const NetId sum = n.addNet("sum", 8);
    n.addPort("a", PortDir::In, 8, a);
    n.addPort("b", PortDir::In, 8, b);
    n.addCell("add0", CellKind::Add, 8, {a, b}, {sum});
    n.addPort("sum", PortDir::Out, 8, sum);

    EXPECT_EQ(n.name(), "simple");
    EXPECT_EQ(n.nets().size(), 3u);
    EXPECT_EQ(n.cells().size(), 1u);
    EXPECT_EQ(n.ports().size(), 3u);
    EXPECT_EQ(n.countKind(CellKind::Add), 1u);
    EXPECT_EQ(n.countKind(CellKind::Mul), 0u);
    EXPECT_TRUE(n.hasPort("sum"));
    EXPECT_FALSE(n.hasPort("nope"));
    EXPECT_EQ(n.port("sum").dir, PortDir::Out);
    EXPECT_EQ(n.net(sum).driver, 0u);
    EXPECT_NO_THROW(n.check());
}

TEST(Netlist, MissingPortThrows) {
    Netlist n("x");
    EXPECT_THROW((void)n.port("absent"), Error);
}

TEST(Netlist, MultipleDriversRejected) {
    Netlist n("bad");
    const NetId a = n.addNet("a", 4);
    const NetId out = n.addNet("out", 4);
    n.addPort("a", PortDir::In, 4, a);
    n.addCell("c1", CellKind::Not, 4, {a}, {out});
    EXPECT_THROW(n.addCell("c2", CellKind::Not, 4, {a}, {out}), Error);
}

TEST(Netlist, UndrivenNetFailsCheck) {
    Netlist n("bad");
    const NetId a = n.addNet("floating", 4);
    (void)a;
    EXPECT_THROW(n.check(), Error);
}

TEST(Netlist, InputPortDrivenByCellFailsCheck) {
    Netlist n("bad");
    const NetId a = n.addNet("a", 4);
    n.addPort("a", PortDir::In, 4, a);
    Netlist good("aux");
    (void)good;
    // Drive the input-port net from a constant cell: invalid.
    n.addCell("k", CellKind::Const, 4, {}, {a}, 1);
    EXPECT_THROW(n.check(), Error);
}

TEST(Netlist, WrongPinCountFailsCheck) {
    Netlist n("bad");
    const NetId a = n.addNet("a", 4);
    const NetId out = n.addNet("out", 4);
    n.addPort("a", PortDir::In, 4, a);
    n.addCell("add", CellKind::Add, 4, {a}, {out});  // Add needs 2 inputs
    EXPECT_THROW(n.check(), Error);
}

TEST(Netlist, ZeroWidthNetFailsCheck) {
    Netlist n("bad");
    const NetId a = n.addNet("a", 0);
    n.addPort("a", PortDir::In, 0, a);
    EXPECT_THROW(n.check(), Error);
}

TEST(Netlist, CombinationalCycleDetected) {
    Netlist n("cyclic");
    const NetId x = n.addNet("x", 1);
    const NetId y = n.addNet("y", 1);
    n.addCell("n1", CellKind::Not, 1, {y}, {x});
    n.addCell("n2", CellKind::Not, 1, {x}, {y});
    EXPECT_THROW((void)n.topoOrder(), Error);
}

TEST(Netlist, RegisterBreaksCycle) {
    // Counter: reg -> add -> reg is sequential, not a combinational cycle.
    const Netlist n = makeCounter("ctr", 8);
    EXPECT_NO_THROW(n.check());
    const auto order = n.topoOrder();
    // Only combinational cells appear in the order.
    for (const CellId id : order) {
        EXPECT_TRUE(isCombinational(n.cell(id).kind));
    }
}

TEST(Netlist, TopoOrderRespectsDependencies) {
    Netlist n("chain");
    const NetId a = n.addNet("a", 8);
    n.addPort("a", PortDir::In, 8, a);
    const NetId t1 = n.addNet("t1", 8);
    const NetId t2 = n.addNet("t2", 8);
    n.addCell("second", CellKind::Not, 8, {t1}, {t2});  // added first, depends on t1
    n.addCell("first", CellKind::Not, 8, {a}, {t1});
    const auto order = n.topoOrder();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(n.cell(order[0]).name, "first");
    EXPECT_EQ(n.cell(order[1]).name, "second");
}

TEST(PinSpecs, MatchCellSemantics) {
    EXPECT_EQ(pinSpec(CellKind::Const).inputs, 0);
    EXPECT_EQ(pinSpec(CellKind::Not).inputs, 1);
    EXPECT_EQ(pinSpec(CellKind::Add).inputs, 2);
    EXPECT_EQ(pinSpec(CellKind::Mux).inputs, 3);
    EXPECT_EQ(pinSpec(CellKind::Bram).inputs, 3);
    EXPECT_LT(pinSpec(CellKind::Reg).inputs, 0);  // variadic (d [, en])
}

TEST(CellKinds, NamesAndCombinationalFlag) {
    EXPECT_EQ(cellKindName(CellKind::Add), "ADD");
    EXPECT_EQ(cellKindName(CellKind::Bram), "BRAM");
    EXPECT_TRUE(isCombinational(CellKind::Mux));
    EXPECT_FALSE(isCombinational(CellKind::Reg));
    EXPECT_FALSE(isCombinational(CellKind::Bram));
    EXPECT_FALSE(isCombinational(CellKind::Fsm));
}

class PrimitiveWidths : public testing::TestWithParam<unsigned> {};

TEST_P(PrimitiveWidths, ReferenceCircuitsAreValid) {
    const unsigned width = GetParam();
    EXPECT_NO_THROW(makeCounter("c", width).check());
    EXPECT_NO_THROW(makeAdder("a", width).check());
    EXPECT_NO_THROW(makeMac("m", width).check());
}

INSTANTIATE_TEST_SUITE_P(Widths, PrimitiveWidths, testing::Values(1u, 4u, 8u, 16u, 32u, 64u));

TEST(NetlistBuilder, BuildsConnectedDatapath) {
    NetlistBuilder b("dp");
    const NetId x = b.inputPort("x", 16);
    const NetId k = b.constant(3, 16);
    const NetId prod = b.binary(CellKind::Mul, x, k, 16);
    const NetId q = b.reg(prod, kInvalid, 16);
    b.outputPort("y", q);
    const Netlist& n = b.netlist();
    EXPECT_NO_THROW(n.check());
    EXPECT_EQ(n.countKind(CellKind::Mul), 1u);
    EXPECT_EQ(n.countKind(CellKind::Reg), 1u);
    EXPECT_EQ(n.countKind(CellKind::Const), 1u);
}

} // namespace
} // namespace socgen::rtl
