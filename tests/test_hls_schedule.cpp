#include "socgen/apps/otsu.hpp"
#include "socgen/common/error.hpp"
#include "socgen/hls/binding.hpp"
#include "socgen/hls/dfg.hpp"
#include "socgen/hls/schedule.hpp"

#include <gtest/gtest.h>

namespace socgen::hls {
namespace {

Kernel histogramLike() {
    // loop: px = read(in); hist[px] = hist[px] + 1  — classic recurrence.
    KernelBuilder kb("hist");
    const PortId in = kb.streamIn("in", 8);
    const PortId out = kb.streamOut("out", 32);
    const ArrayId h = kb.array("h", 256, 32);
    const VarId i = kb.var("i", 32);
    const VarId px = kb.var("px", 8);
    kb.forLoop(i, kb.c(1000));
    kb.assign(px, kb.read(in));
    kb.arrayStore(h, kb.v(px), kb.add(kb.load(h, kb.v(px)), kb.c(1)));
    kb.endLoop();
    kb.forLoop(i, kb.c(256));
    kb.write(out, kb.load(h, kb.v(i)));
    kb.endLoop();
    return kb.build();
}

Kernel mulHeavy(int muls) {
    KernelBuilder kb("mulheavy");
    const PortId in = kb.streamIn("in", 32);
    const PortId out = kb.streamOut("out", 32);
    const VarId i = kb.var("i", 32);
    const VarId x = kb.var("x", 32);
    kb.forLoop(i, kb.c(64));
    kb.assign(x, kb.read(in));
    ExprId acc = kb.c(0);
    for (int m = 0; m < muls; ++m) {
        acc = kb.add(acc, kb.mul(kb.v(x), kb.c(m + 3)));
    }
    kb.write(out, acc);
    kb.endLoop();
    return kb.build();
}

TEST(LatencyModel, Defaults) {
    const LatencyModel lat;
    DfgOp add;
    add.kind = OpKind::Binary;
    add.bop = BinOp::Add;
    EXPECT_EQ(lat.of(add), 1);
    add.bop = BinOp::Mul;
    EXPECT_EQ(lat.of(add), 3);
    add.bop = BinOp::Div;
    EXPECT_EQ(lat.of(add), 18);
    DfgOp load;
    load.kind = OpKind::ArrayLoad;
    EXPECT_EQ(lat.of(load), 2);
    DfgOp loop;
    loop.kind = OpKind::LoopNest;
    loop.loopLatency = 77;
    EXPECT_EQ(lat.of(loop), 77);
}

TEST(FuClasses, Mapping) {
    DfgOp op;
    op.kind = OpKind::Binary;
    op.bop = BinOp::Mul;
    EXPECT_EQ(fuClassOf(op), FuClass::Mul);
    op.bop = BinOp::Mod;
    EXPECT_EQ(fuClassOf(op), FuClass::Div);
    op.bop = BinOp::Xor;
    EXPECT_EQ(fuClassOf(op), FuClass::Alu);
    op.kind = OpKind::StreamRead;
    EXPECT_EQ(fuClassOf(op), FuClass::Stream);
    op.kind = OpKind::ArrayStore;
    EXPECT_EQ(fuClassOf(op), FuClass::Mem);
}

TEST(Dfg, DependenciesAndHazards) {
    const Kernel k = histogramLike();
    const Stmt& loop = k.stmt(k.body()[0]);
    const Dfg dfg = buildDfg(k, loop.body, nullptr, nullptr);
    // read, load, add, store (Assign collapses into the read op).
    ASSERT_GE(dfg.size(), 4u);
    // The store must depend (directly or transitively) on the load.
    bool storeSeen = false;
    for (const auto& op : dfg.ops) {
        if (op.kind == OpKind::ArrayStore) {
            storeSeen = true;
            EXPECT_FALSE(op.deps.empty());
        }
    }
    EXPECT_TRUE(storeSeen);
}

TEST(Dfg, CriticalPathComputation) {
    const Kernel k = histogramLike();
    const Stmt& loop = k.stmt(k.body()[0]);
    const Dfg dfg = buildDfg(k, loop.body, nullptr, nullptr);
    std::vector<std::int64_t> unit(dfg.size(), 1);
    EXPECT_GE(dfg.criticalPath(unit), 3);  // read -> {load -> store} chain
}

TEST(Schedule, HistogramRecurrenceBoundsIi) {
    const Kernel k = histogramLike();
    const KernelSchedule s = scheduleKernel(k, Directives{});
    ASSERT_EQ(s.loops.size(), 2u);
    const LoopSchedule& histLoop = s.loops[0];
    EXPECT_TRUE(histLoop.pipelined);
    // load(2) + add(1) + store(1) loop-carried chain => II >= 4.
    EXPECT_GE(histLoop.ii, 4);
    EXPECT_EQ(histLoop.tripCount, 1000);
    EXPECT_TRUE(histLoop.tripExact);
    // The emit loop has no recurrence: II should be small.
    EXPECT_LE(s.loops[1].ii, 3);
    EXPECT_GT(s.totalLatencyCycles, 0);
}

TEST(Schedule, ResourceIiScalesWithMulPressure) {
    Directives d;
    d.maxMulUnits = 1;
    const Kernel k6 = mulHeavy(6);
    const KernelSchedule s1 = scheduleKernel(k6, d);
    ASSERT_EQ(s1.loops.size(), 1u);
    EXPECT_GE(s1.loops[0].ii, 6);  // 6 muls / 1 unit

    d.maxMulUnits = 3;
    const KernelSchedule s3 = scheduleKernel(k6, d);
    EXPECT_LE(s3.loops[0].ii, s1.loops[0].ii - 2);
}

TEST(Schedule, AsapIsNoLongerThanList) {
    const Kernel k = mulHeavy(8);
    Directives asap;
    asap.scheduler = SchedulerKind::Asap;
    Directives list;
    list.scheduler = SchedulerKind::List;
    list.maxMulUnits = 1;
    const KernelSchedule sAsap = scheduleKernel(k, asap);
    const KernelSchedule sList = scheduleKernel(k, list);
    ASSERT_EQ(sAsap.loops.size(), 1u);
    EXPECT_LE(sAsap.loops[0].body.length, sList.loops[0].body.length);
}

TEST(Schedule, TripCountHintsAndDefaults) {
    KernelBuilder kb("dyn");
    const PortId n = kb.scalarIn("n", 32);
    const PortId out = kb.streamOut("out", 32);
    const VarId i = kb.var("i", 32);
    const VarId j = kb.var("j", 32);
    kb.forLoop(i, kb.arg(n));
    kb.write(out, kb.v(i));
    kb.endLoop();
    kb.forLoop(j, kb.arg(n));
    kb.assign(j, kb.v(j));
    kb.endLoop();
    const Kernel k = kb.build();

    Directives d;
    d.tripCountHints["i"] = 5000;
    d.defaultTripCount = 77;
    const KernelSchedule s = scheduleKernel(k, d);
    ASSERT_EQ(s.loops.size(), 2u);
    EXPECT_EQ(s.loops[0].tripCount, 5000);
    EXPECT_FALSE(s.loops[0].tripExact);
    EXPECT_EQ(s.loops[1].tripCount, 77);
}

TEST(Schedule, NestedLoopBecomesMacroOp) {
    KernelBuilder kb("nest");
    const PortId out = kb.streamOut("out", 32);
    const VarId i = kb.var("i", 32);
    const VarId j = kb.var("j", 32);
    kb.forLoop(i, kb.c(10));
    kb.forLoop(j, kb.c(20));
    kb.write(out, kb.add(kb.v(i), kb.v(j)));
    kb.endLoop();
    kb.endLoop();
    const Kernel k = kb.build();
    const KernelSchedule s = scheduleKernel(k, Directives{});
    ASSERT_EQ(s.loops.size(), 2u);  // inner first
    const LoopSchedule& inner = s.loops[0];
    const LoopSchedule& outer = s.loops[1];
    EXPECT_TRUE(inner.pipelined);
    EXPECT_FALSE(outer.pipelined);  // contains a loop nest
    EXPECT_GE(outer.totalCycles, 10 * inner.totalCycles);
}

TEST(Schedule, PipeliningOffLengthensLoops) {
    Directives on;
    Directives off;
    off.pipelineLoops = false;
    const Kernel k = histogramLike();
    const auto sOn = scheduleKernel(k, on);
    const auto sOff = scheduleKernel(k, off);
    EXPECT_GT(sOff.loops[0].totalCycles, sOn.loops[0].totalCycles);
}

TEST(Schedule, ReportMentionsLoops) {
    const Kernel k = histogramLike();
    const KernelSchedule s = scheduleKernel(k, Directives{});
    const std::string report = s.report(k);
    EXPECT_NE(report.find("pipelined"), std::string::npos);
    EXPECT_NE(report.find("II="), std::string::npos);
    EXPECT_NE(report.find("hist"), std::string::npos);
}

TEST(Binding, SharedUnitsPackedByClass) {
    Directives d;
    d.maxMulUnits = 2;
    const Kernel k = mulHeavy(6);
    const KernelSchedule s = scheduleKernel(k, d);
    const KernelBinding b = bindKernel(s);
    EXPECT_GE(b.mulUnits, 1);
    EXPECT_LE(b.mulUnits, 2);
    EXPECT_EQ(b.divUnits, 0);
    ASSERT_EQ(b.loopBindings.size(), s.loops.size());
    // Every mul op got a unit assignment.
    const auto& loopBinding = b.loopBindings[0];
    for (OpId i = 0; i < s.loops[0].body.dfg.size(); ++i) {
        if (fuClassOf(s.loops[0].body.dfg.ops[i]) == FuClass::Mul) {
            EXPECT_GE(loopBinding.unitOf[i], 0);
            EXPECT_LT(loopBinding.unitOf[i], b.mulUnits);
        }
    }
}

TEST(Binding, OtsuKernelUsesOneDividerUnit) {
    const Kernel k = apps::makeOtsuKernel(4096);
    const KernelSchedule s = scheduleKernel(k, apps::otsuDirectives());
    const KernelBinding b = bindKernel(s);
    EXPECT_EQ(b.divUnits, 1);
    EXPECT_EQ(b.mulUnits, 1);
}

TEST(Directives, RenderContainsInterfaceAndAllocation) {
    Directives d;
    d.interfaces["inA"] = InterfaceProtocol::AxiStream;
    d.interfaces["ctrl"] = InterfaceProtocol::AxiLite;
    d.tripCountHints["i"] = 128;
    const std::string text = d.render("myKernel");
    EXPECT_NE(text.find("set_directive_interface -mode axis myKernel inA"),
              std::string::npos);
    EXPECT_NE(text.find("set_directive_interface -mode s_axilite myKernel ctrl"),
              std::string::npos);
    EXPECT_NE(text.find("set_directive_allocation"), std::string::npos);
    EXPECT_NE(text.find("loop_tripcount -avg 128"), std::string::npos);
    EXPECT_NE(text.find("create_clock"), std::string::npos);
}

} // namespace
} // namespace socgen::hls
