// Unit tests of the declarative stage-graph engine (CTest label:
// stage-graph): graph validation, deterministic topological ordering, the
// executor's scheduling/retry/absorb semantics, journal byte-parity
// across jobs settings, and real cross-stage parallelism.

#include "socgen/common/error.hpp"
#include "socgen/core/flow.hpp"
#include "socgen/core/journal.hpp"
#include "socgen/core/stage_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace socgen::core {
namespace {

Stage simpleStage(std::string name, std::vector<std::string> deps,
                  std::string digest = "") {
    Stage stage;
    stage.name = std::move(name);
    stage.deps = std::move(deps);
    stage.attempt = [](const StageContext&) -> std::any { return std::any{}; };
    stage.commit = [digest = std::move(digest)](std::any&&, const StageRun&) {
        StageOutput out;
        out.digest = digest;
        return out;
    };
    return stage;
}

/// Collects every published event kind, in order (the bus serializes
/// publication, so no locking is needed here).
struct RecordingSubscriber : FlowEventSubscriber {
    std::vector<FlowEvent> events;
    void onEvent(const FlowEvent& event) override { events.push_back(event); }
    [[nodiscard]] std::size_t count(FlowEventKind kind) const {
        std::size_t n = 0;
        for (const auto& e : events) {
            if (e.kind == kind) {
                ++n;
            }
        }
        return n;
    }
};

// ---------------------------------------------------------------------------
// Graph validation

TEST(StageGraph, RejectsDuplicateAndEmptyNames) {
    StageGraph graph;
    graph.add(simpleStage("a", {}));
    EXPECT_THROW(graph.add(simpleStage("a", {})), StageGraphError);
    EXPECT_THROW(graph.add(simpleStage("", {})), StageGraphError);
    EXPECT_TRUE(graph.has("a"));
    EXPECT_FALSE(graph.has("b"));
}

TEST(StageGraph, RejectsUnknownDependency) {
    StageGraph graph;
    graph.add(simpleStage("a", {"ghost"}));
    try {
        (void)graph.topologicalOrder();
        FAIL() << "expected StageGraphError";
    } catch (const StageGraphError& e) {
        EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
    }
}

TEST(StageGraph, RejectsDependencyCycle) {
    StageGraph graph;
    graph.add(simpleStage("a", {"c"}));
    graph.add(simpleStage("b", {"a"}));
    graph.add(simpleStage("c", {"b"}));
    try {
        (void)graph.topologicalOrder();
        FAIL() << "expected StageGraphError";
    } catch (const StageGraphError& e) {
        EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("a"), std::string::npos);
    }
}

TEST(StageGraph, TopologicalOrderIsInsertionStable) {
    // Diamond a -> {b, c} -> d, plus an independent e added last: the
    // order is a deterministic function of the graph (lowest insertion
    // index among ready stages), not of any scheduling.
    StageGraph graph;
    graph.add(simpleStage("a", {}));
    graph.add(simpleStage("b", {"a"}));
    graph.add(simpleStage("c", {"a"}));
    graph.add(simpleStage("d", {"b", "c"}));
    graph.add(simpleStage("e", {}));
    const std::vector<std::string> expected = {"a", "b", "c", "d", "e"};
    EXPECT_EQ(graph.topologicalNames(), expected);
    EXPECT_EQ(graph.topologicalNames(), expected);  // stable across calls
}

// ---------------------------------------------------------------------------
// Executor semantics

TEST(StageGraphExecutorTest, RunsEveryStageAndReportsOutputs) {
    StageGraph graph;
    std::atomic<int> order{0};
    int ranA = -1;
    int ranB = -1;
    Stage a = simpleStage("a", {}, "digest-a");
    a.attempt = [&](const StageContext&) -> std::any {
        ranA = order.fetch_add(1);
        return std::string("value-a");
    };
    Stage b = simpleStage("b", {"a"}, "digest-b");
    b.attempt = [&](const StageContext&) -> std::any {
        ranB = order.fetch_add(1);
        return std::any{};
    };
    graph.add(std::move(a));
    graph.add(std::move(b));

    StageGraphExecutor executor(ExecutorConfig{}, nullptr, nullptr);
    const auto executions = executor.execute(graph);
    ASSERT_EQ(executions.size(), 2u);
    EXPECT_TRUE(executions[0].ran);
    EXPECT_TRUE(executions[1].ran);
    EXPECT_LT(ranA, ranB);  // dependency respected
    EXPECT_EQ(executions[0].output.digest, "digest-a");
    EXPECT_EQ(executions[1].output.digest, "digest-b");
    EXPECT_EQ(executions[0].meta.attempts, 1);
    EXPECT_EQ(executor.stats().stageRetries, 0u);
    EXPECT_EQ(executor.stats().stageTimeouts, 0u);
}

TEST(StageGraphExecutorTest, FirstErrorPropagatesAndDependentsNeverRun) {
    StageGraph graph;
    graph.add(simpleStage("a", {}));
    Stage b = simpleStage("b", {"a"});
    b.attempt = [](const StageContext&) -> std::any {
        throw Error("stage b exploded");
    };
    graph.add(std::move(b));
    bool cRan = false;
    Stage c = simpleStage("c", {"b"});
    c.attempt = [&](const StageContext&) -> std::any {
        cRan = true;
        return std::any{};
    };
    graph.add(std::move(c));

    auto bus = std::make_shared<RecordingSubscriber>();
    FlowEventBus events;
    events.subscribe(bus);
    StageGraphExecutor executor(ExecutorConfig{}, &events, nullptr);
    try {
        (void)executor.execute(graph);
        FAIL() << "expected the stage error to propagate";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("stage b exploded"), std::string::npos);
    }
    EXPECT_FALSE(cRan);
    EXPECT_EQ(bus->count(FlowEventKind::StageFailed), 1u);
    ASSERT_FALSE(bus->events.empty());
    EXPECT_EQ(bus->events.back().kind, FlowEventKind::FlowEnd);
    EXPECT_EQ(bus->events.back().detail, "failed");
}

TEST(StageGraphExecutorTest, AbsorbedFailureDegradesButDependentsStillRun) {
    StageGraph graph;
    Stage flaky = simpleStage("flaky", {});
    flaky.attempt = [](const StageContext&) -> std::any {
        throw Error("not transient, not retried");
    };
    flaky.absorbFailure = [](const std::exception& e, const StageRun&) {
        return std::string("degraded: ") + e.what();
    };
    graph.add(std::move(flaky));
    bool downstreamRan = false;
    Stage downstream = simpleStage("downstream", {"flaky"});
    downstream.attempt = [&](const StageContext&) -> std::any {
        downstreamRan = true;
        return std::any{};
    };
    graph.add(std::move(downstream));

    auto bus = std::make_shared<RecordingSubscriber>();
    FlowEventBus events;
    events.subscribe(bus);
    StageGraphExecutor executor(ExecutorConfig{}, &events, nullptr);
    const auto executions = executor.execute(graph);
    EXPECT_TRUE(executions[0].absorbed);
    EXPECT_NE(executions[0].absorbedNote.find("degraded"), std::string::npos);
    EXPECT_TRUE(downstreamRan);
    EXPECT_EQ(bus->count(FlowEventKind::StageDegraded), 1u);
    EXPECT_EQ(bus->count(FlowEventKind::StageFailed), 0u);
}

TEST(StageGraphExecutorTest, TransientFailureRetriesWithEvents) {
    StageGraph graph;
    Stage flaky = simpleStage("flaky", {}, "d");
    flaky.attempt = [](const StageContext& context) -> std::any {
        if (context.attempt == 1) {
            throw HlsError("transient hiccup");
        }
        return std::any{};
    };
    graph.add(std::move(flaky));

    auto bus = std::make_shared<RecordingSubscriber>();
    FlowEventBus events;
    events.subscribe(bus);
    ExecutorConfig config;
    config.stagePolicy.backoffBaseMs = 0.1;
    StageGraphExecutor executor(config, &events, nullptr);
    const auto executions = executor.execute(graph);
    EXPECT_EQ(executions[0].meta.attempts, 2);
    EXPECT_EQ(executor.stats().stageRetries, 1u);
    EXPECT_EQ(bus->count(FlowEventKind::StageRetry), 1u);
    EXPECT_EQ(bus->count(FlowEventKind::StageCommit), 1u);
}

// ---------------------------------------------------------------------------
// Journal byte-parity and parallelism

std::string journalTextFor(unsigned jobs, const std::string& dir) {
    std::filesystem::remove_all(dir);
    FlowJournal journal = FlowJournal::open(dir + "/journal.jsonl");
    journal.reset("fingerprint", "test");
    StageGraph graph;
    graph.add(simpleStage("root", {}, "d-root"));
    graph.add(simpleStage("left", {"root"}, "d-left"));
    graph.add(simpleStage("right", {"root"}, "d-right"));
    graph.add(simpleStage("leaf", {"left", "right"}, "d-leaf"));
    // A sleep on one branch skews completion order away from topological
    // order under jobs>1; the journal must not notice.
    Stage slow = simpleStage("slow", {"root"}, "d-slow");
    slow.attempt = [](const StageContext&) -> std::any {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return std::any{};
    };
    graph.add(std::move(slow));

    ExecutorConfig config;
    config.jobs = jobs;
    config.journal = &journal;
    StageGraphExecutor executor(config, nullptr, nullptr);
    (void)executor.execute(graph);
    std::string text = FlowJournal::open(dir + "/journal.jsonl").renderText();
    std::filesystem::remove_all(dir);
    return text;
}

TEST(StageGraphExecutorTest, JournalIsByteIdenticalForAnyJobsSetting) {
    const std::string base = testing::TempDir() + "/socgen_stage_graph_journal_";
    const std::string serial = journalTextFor(1, base + "serial");
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, journalTextFor(4, base + "jobs4"));
    EXPECT_EQ(serial, journalTextFor(2, base + "jobs2"));
}

TEST(StageGraphExecutorTest, IndependentStagesOverlapWithJobs) {
    StageGraph graph;
    std::atomic<int> inFlight{0};
    std::atomic<int> peak{0};
    const auto sleeper = [&](const StageContext&) -> std::any {
        const int now = inFlight.fetch_add(1) + 1;
        int expected = peak.load();
        while (now > expected && !peak.compare_exchange_weak(expected, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        inFlight.fetch_sub(1);
        return std::any{};
    };
    for (const char* name : {"a", "b", "c"}) {
        Stage stage = simpleStage(name, {});
        stage.attempt = sleeper;
        graph.add(std::move(stage));
    }

    ExecutorConfig config;
    config.jobs = 3;
    StageGraphExecutor executor(config, nullptr, nullptr);
    const auto start = std::chrono::steady_clock::now();
    (void)executor.execute(graph);
    const double elapsedMs = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
    EXPECT_GE(peak.load(), 2);        // genuinely concurrent
    EXPECT_LT(elapsedMs, 3 * 60.0);   // faster than the serial sum
}

// ---------------------------------------------------------------------------
// Environment override

TEST(StageGraphExecutorTest, FlowJobsEnvironmentOverrideIsApplied) {
    const hls::KernelLibrary kernels;
    ASSERT_EQ(::setenv("SOCGEN_FLOW_JOBS", "4", 1), 0);
    const Flow overridden(FlowOptions{}, kernels);
    EXPECT_EQ(overridden.options().jobs, 4u);
    // A malformed override is a hard, named error — not a silent
    // fallback to serial that hides the typo.
    for (const char* bad : {"not-a-number", "4x", "0", "99999999999"}) {
        ASSERT_EQ(::setenv("SOCGEN_FLOW_JOBS", bad, 1), 0);
        try {
            const Flow rejected(FlowOptions{}, kernels);
            FAIL() << "accepted SOCGEN_FLOW_JOBS='" << bad << "'";
        } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find("SOCGEN_FLOW_JOBS"),
                      std::string::npos)
                << e.what();
        }
    }
    ASSERT_EQ(::unsetenv("SOCGEN_FLOW_JOBS"), 0);
    const Flow plain(FlowOptions{}, kernels);
    EXPECT_EQ(plain.options().jobs, 1u);
}

// ---------------------------------------------------------------------------
// StageSupervisor: backoff jitter and the retry wall-clock cap

TEST(StageSupervisorPolicy, BackoffJitterIsDeterministicAndDecorrelated) {
    StagePolicy policy;
    policy.backoffBaseMs = 8.0;
    policy.backoffFactor = 2.0;
    policy.jitterFraction = 0.25;

    // Same (seed, stage, attempt) -> bit-identical delay, every call.
    EXPECT_DOUBLE_EQ(StageSupervisor::backoffDelayMs(policy, "synth", 1),
                     StageSupervisor::backoffDelayMs(policy, "synth", 1));

    // Every delay stays inside the jitter envelope around the nominal
    // exponential schedule base * factor^(attempt-1).
    double nominal = policy.backoffBaseMs;
    for (int attempt = 1; attempt <= 5; ++attempt, nominal *= policy.backoffFactor) {
        const double delay = StageSupervisor::backoffDelayMs(policy, "synth", attempt);
        EXPECT_GE(delay, nominal * (1.0 - policy.jitterFraction));
        EXPECT_LE(delay, nominal * (1.0 + policy.jitterFraction));
    }

    // Decorrelation, the thundering-herd defence: two tenants (different
    // policy seeds) retrying the same stage, and one tenant retrying two
    // different stages, must not back off in lockstep.
    StagePolicy otherSeed = policy;
    otherSeed.seed = policy.seed + 1;
    bool seedsDiffer = false;
    bool stagesDiffer = false;
    for (int attempt = 1; attempt <= 5; ++attempt) {
        seedsDiffer |= StageSupervisor::backoffDelayMs(policy, "synth", attempt) !=
                       StageSupervisor::backoffDelayMs(otherSeed, "synth", attempt);
        stagesDiffer |= StageSupervisor::backoffDelayMs(policy, "synth", attempt) !=
                        StageSupervisor::backoffDelayMs(policy, "integrate", attempt);
    }
    EXPECT_TRUE(seedsDiffer);
    EXPECT_TRUE(stagesDiffer);

    // jitterFraction 0 degenerates to the exact exponential schedule.
    StagePolicy plain = policy;
    plain.jitterFraction = 0.0;
    EXPECT_DOUBLE_EQ(StageSupervisor::backoffDelayMs(plain, "synth", 1), 8.0);
    EXPECT_DOUBLE_EQ(StageSupervisor::backoffDelayMs(plain, "synth", 3), 32.0);
}

TEST(StageSupervisorPolicy, RetryWallClockCapBoundsTotalRetryTime) {
    StagePolicy policy;
    policy.maxAttempts = 1000;  // the attempt budget alone would retry ~forever
    policy.backoffBaseMs = 25.0;
    policy.backoffFactor = 1.0;
    policy.jitterFraction = 0.0;
    policy.maxRetryWallClockMs = 80.0;
    StageSupervisor supervisor(policy);
    StageRun run;
    int calls = 0;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(supervisor.run(
                     "always-flaky",
                     [&calls]() -> int {
                         ++calls;
                         throw HlsError("transient");
                     },
                     &run),
                 HlsError);
    const double elapsedMs = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
    EXPECT_GE(calls, 2);            // it did retry...
    EXPECT_LE(calls, 10);           // ...but nowhere near the attempt budget
    EXPECT_EQ(run.attempts, calls);
    // Roughly cap + one attempt + one backoff; far below what 1000
    // attempts x 25 ms would take. Generous bound for slow CI hosts.
    EXPECT_LT(elapsedMs, 2'000.0);
}

// ---------------------------------------------------------------------------
// External scheduler mode: the executor's tasks run wherever submit()
// puts them, dependency order still holds, and execute() returns only
// when every submitted task has drained.

TEST(StageGraphExecutorTest, ExternalSchedulerRunsAllStagesInOrder) {
    /// Minimal conforming scheduler: one worker thread, FIFO queue.
    class OneWorker : public StageScheduler {
    public:
        OneWorker() : thread_([this] { loop(); }) {}
        ~OneWorker() override {
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                done_ = true;
            }
            cv_.notify_all();
            thread_.join();
        }
        void submit(std::function<void()> task) override {
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                queue_.push_back(std::move(task));
            }
            cv_.notify_all();
        }

    private:
        void loop() {
            std::unique_lock<std::mutex> lock(mutex_);
            while (true) {
                cv_.wait(lock, [this] { return done_ || !queue_.empty(); });
                if (queue_.empty()) {
                    return;
                }
                std::function<void()> task = std::move(queue_.front());
                queue_.pop_front();
                lock.unlock();
                task();
                lock.lock();
            }
        }
        std::mutex mutex_;
        std::condition_variable cv_;
        std::deque<std::function<void()>> queue_;
        bool done_ = false;
        std::thread thread_;
    };

    OneWorker scheduler;
    std::vector<std::string> order;
    std::mutex orderMutex;
    StageGraph graph;
    for (const char* name : {"a", "b", "c"}) {
        Stage stage = simpleStage(name, name == std::string("a")
                                            ? std::vector<std::string>{}
                                            : std::vector<std::string>{"a"});
        stage.attempt = [&, name](const StageContext&) -> std::any {
            const std::lock_guard<std::mutex> lock(orderMutex);
            order.emplace_back(name);
            return std::any{};
        };
        graph.add(std::move(stage));
    }
    ExecutorConfig config;
    config.scheduler = &scheduler;
    config.jobs = 17;  // ignored: the scheduler owns concurrency
    StageGraphExecutor executor(config, nullptr, nullptr);
    const auto executions = executor.execute(graph);
    EXPECT_EQ(executions.size(), 3u);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "a");  // the dependency always runs first

    // Errors propagate identically in external mode.
    StageGraph failing;
    Stage bad = simpleStage("bad", {});
    bad.attempt = [](const StageContext&) -> std::any {
        throw DslError("broken input");
    };
    failing.add(std::move(bad));
    failing.add(simpleStage("never", {"bad"}));
    StageGraphExecutor failingExecutor(config, nullptr, nullptr);
    EXPECT_THROW((void)failingExecutor.execute(failing), DslError);
}

} // namespace
} // namespace socgen::core
