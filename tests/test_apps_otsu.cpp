#include "socgen/apps/otsu.hpp"
#include "socgen/apps/otsu_project.hpp"
#include "socgen/common/error.hpp"
#include "socgen/hls/verify.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace socgen::apps {
namespace {

TEST(GrayRef, LumaFormula) {
    EXPECT_EQ(grayFromPacked(0x000000), 0);
    EXPECT_EQ(grayFromPacked(0xFFFFFF), 255);
    EXPECT_EQ(grayFromPacked(0xFF0000), (255 * 77) >> 8);
    EXPECT_EQ(grayFromPacked(0x00FF00), (255 * 150) >> 8);
    EXPECT_EQ(grayFromPacked(0x0000FF), (255 * 29) >> 8);
}

TEST(HistogramRef, SumsToPixelCount) {
    const GrayImage img = makeSyntheticGrayScene(48, 48);
    const auto hist = histogramRef(img);
    const std::uint64_t total = std::accumulate(hist.begin(), hist.end(), 0ull);
    EXPECT_EQ(total, img.pixelCount());
}

TEST(OtsuRef, SeparatesBimodalDistribution) {
    // Two well-separated spikes: the threshold must land between them.
    std::array<std::uint32_t, 256> hist{};
    hist[40] = 600;
    hist[200] = 400;
    const std::uint32_t t = otsuThresholdRef(hist, 1000);
    EXPECT_GE(t, 40u);
    EXPECT_LT(t, 200u);
}

TEST(OtsuRef, UniformImageYieldsStableThreshold) {
    std::array<std::uint32_t, 256> hist{};
    hist[128] = 500;
    const std::uint32_t t = otsuThresholdRef(hist, 500);
    EXPECT_EQ(t, 0u);  // no between-class variance anywhere
}

TEST(OtsuRef, ThresholdActuallySeparatesTheSyntheticScene) {
    const GrayImage gray = makeSyntheticGrayScene(64, 64);
    const auto hist = histogramRef(gray);
    const std::uint32_t t = otsuThresholdRef(hist, gray.pixelCount());
    EXPECT_GE(t, 52u);   // at or above the background band
    EXPECT_LT(t, 185u);  // below the blob band
}

TEST(BinarizeRef, ProducesOnlyBlackAndWhite) {
    const GrayImage gray = makeSyntheticGrayScene(32, 32);
    const GrayImage bin = binarizeRef(gray, 100);
    for (std::uint8_t px : bin.pixels()) {
        EXPECT_TRUE(px == 0 || px == 255);
    }
}

TEST(OtsuFilterRef, EndToEndMatchesComposition) {
    const RgbImage scene = makeSyntheticScene(32, 32);
    const GrayImage gray = grayScaleRef(scene);
    const auto hist = histogramRef(gray);
    const std::uint32_t t = otsuThresholdRef(hist, gray.pixelCount());
    EXPECT_EQ(otsuFilterRef(scene), binarizeRef(gray, t));
}

TEST(Kernels, AllVerifyStructurally) {
    EXPECT_NO_THROW(hls::verify(makeGrayScaleKernel(64)));
    EXPECT_NO_THROW(hls::verify(makeHistogramKernel(64)));
    EXPECT_NO_THROW(hls::verify(makeOtsuKernel(64)));
    EXPECT_NO_THROW(hls::verify(makeBinarizationKernel(64)));
}

TEST(Kernels, PortNamesMatchThePaperListing) {
    const hls::Kernel gray = makeGrayScaleKernel(64);
    EXPECT_TRUE(gray.hasPort("imageIn"));
    EXPECT_TRUE(gray.hasPort("imageOutCH"));
    EXPECT_TRUE(gray.hasPort("imageOutSEG"));
    const hls::Kernel seg = makeBinarizationKernel(64);
    EXPECT_TRUE(seg.hasPort("grayScaleImage"));
    EXPECT_TRUE(seg.hasPort("otsuThreshold"));
    EXPECT_TRUE(seg.hasPort("segmentedGrayImage"));
    EXPECT_TRUE(makeHistogramKernel(64).hasPort("histogram"));
    EXPECT_TRUE(makeOtsuKernel(64).hasPort("probability"));
}

TEST(SwCycleModels, MonotoneInPixels) {
    EXPECT_GT(grayScaleSwCycles(2000), grayScaleSwCycles(1000));
    EXPECT_GT(histogramSwCycles(2000), histogramSwCycles(1000));
    EXPECT_GT(binarizationSwCycles(2000), binarizationSwCycles(1000));
    EXPECT_GT(imageIoSwCycles(2000), imageIoSwCycles(1000));
    // otsuMethod works on the histogram only: pixel-count independent.
    EXPECT_EQ(otsuSwCycles(2000), otsuSwCycles(1000));
}

TEST(Partitions, TableOneRows) {
    // Table I: which stage is in hardware per architecture.
    using core::Mapping;
    const auto p1 = otsuArchPartition(1);
    EXPECT_EQ(p1.of("computeHistogram"), Mapping::Hardware);
    EXPECT_EQ(p1.of("grayScale"), Mapping::Software);
    EXPECT_EQ(p1.of("halfProbability"), Mapping::Software);
    EXPECT_EQ(p1.of("segment"), Mapping::Software);

    const auto p2 = otsuArchPartition(2);
    EXPECT_EQ(p2.of("halfProbability"), Mapping::Hardware);
    EXPECT_EQ(p2.hardwareUnits().size(), 1u);

    const auto p3 = otsuArchPartition(3);
    EXPECT_EQ(p3.of("computeHistogram"), Mapping::Hardware);
    EXPECT_EQ(p3.of("halfProbability"), Mapping::Hardware);
    EXPECT_EQ(p3.hardwareUnits().size(), 2u);

    const auto p4 = otsuArchPartition(4);
    EXPECT_EQ(p4.hardwareUnits().size(), 4u);
    EXPECT_THROW((void)otsuArchPartition(0), Error);
    EXPECT_THROW((void)otsuArchPartition(5), Error);
}

TEST(Partitions, MaskRoundTrip) {
    for (unsigned mask = 0; mask < 16; ++mask) {
        const auto p = otsuMaskPartition(mask);
        unsigned rebuilt = 0;
        for (std::size_t i = 0; i < kOtsuStages.size(); ++i) {
            if (p.of(kOtsuStages[i]) == core::Mapping::Hardware) {
                rebuilt |= 1u << i;
            }
        }
        EXPECT_EQ(rebuilt, mask);
    }
}

TEST(KernelLibrary, ContainsAllStages) {
    const hls::KernelLibrary lib = makeOtsuKernelLibrary(256);
    for (const char* stage : kOtsuStages) {
        EXPECT_TRUE(lib.has(stage)) << stage;
    }
    EXPECT_EQ(lib.size(), 4u);
    const auto directives = otsuKernelDirectives();
    EXPECT_EQ(directives.size(), 4u);
    EXPECT_EQ(directives.at("halfProbability").maxDivUnits, 1);
}

class OtsuRefProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(OtsuRefProperty, ThresholdMaximisesBetweenClassVariance) {
    // Property: no other threshold achieves a strictly larger integer
    // between-class variance than the one otsuThresholdRef returns.
    const GrayImage gray = makeSyntheticGrayScene(24, 24, GetParam());
    const auto hist = histogramRef(gray);
    const std::uint64_t total = gray.pixelCount();
    const std::uint32_t chosen = otsuThresholdRef(hist, total);

    std::uint64_t sumAll = 0;
    for (std::uint64_t i = 0; i < 256; ++i) {
        sumAll += i * hist[i];
    }
    const auto varianceAt = [&](std::uint32_t t) -> std::uint64_t {
        std::uint64_t wB = 0;
        std::uint64_t sumB = 0;
        for (std::uint32_t i = 0; i <= t; ++i) {
            wB += hist[i];
            sumB += i * static_cast<std::uint64_t>(hist[i]);
        }
        const std::uint64_t wF = total - wB;
        if (wB == 0 || wF == 0) {
            return 0;
        }
        const std::uint64_t mB = sumB / wB;
        const std::uint64_t mF = (sumAll - sumB) / wF;
        const std::uint64_t d = mB > mF ? mB - mF : mF - mB;
        return wB * wF * d * d;
    };
    const std::uint64_t best = varianceAt(chosen);
    for (std::uint32_t t = 0; t < 256; ++t) {
        EXPECT_LE(varianceAt(t), best) << "threshold " << t << " beats " << chosen;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OtsuRefProperty, testing::Values(1u, 3u, 17u, 55u, 202u));

} // namespace
} // namespace socgen::apps
