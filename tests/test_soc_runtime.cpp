#include "socgen/apps/kernels.hpp"
#include "socgen/common/error.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/soc/system_sim.hpp"

#include <gtest/gtest.h>

namespace socgen::soc {
namespace {

TEST(Memory, WordReadWrite) {
    Memory mem;
    EXPECT_EQ(mem.readWord(123), 0u);
    mem.writeWord(123, 0xDEADBEEF);
    EXPECT_EQ(mem.readWord(123), 0xDEADBEEFu);
    EXPECT_EQ(mem.readCount(), 2u);
    EXPECT_EQ(mem.writeCount(), 1u);
}

TEST(Memory, BlockHelpers) {
    Memory mem;
    const std::vector<std::uint32_t> data{1, 2, 3, 4, 5};
    mem.writeBlock(1000, data);
    EXPECT_EQ(mem.readBlock(1000, 5), data);
    EXPECT_EQ(mem.readBlock(1002, 2), (std::vector<std::uint32_t>{3, 4}));
}

TEST(Memory, SparsePageAllocation) {
    Memory mem;
    mem.writeWord(0, 1);
    mem.writeWord(10'000'000, 2);  // far away: only two pages
    EXPECT_EQ(mem.pagesAllocated(), 2u);
    EXPECT_EQ(mem.readWord(10'000'000), 2u);
}

TEST(Dma, Mm2sTransfersWithTlast) {
    Memory mem;
    mem.writeBlock(100, std::vector<std::uint32_t>{10, 20, 30});
    DmaEngine dma("dma0", mem);
    axi::StreamChannel chan("c", 16, 32);
    const int route = dma.attachMm2s(chan);
    dma.writeRegister(dmareg::kMm2sAddr, 100);
    dma.writeRegister(dmareg::kMm2sRoute, static_cast<std::uint32_t>(route));
    dma.writeRegister(dmareg::kMm2sLength, 3);
    EXPECT_FALSE(dma.idle());
    EXPECT_EQ(dma.readRegister(dmareg::kMm2sStatus), 0u);
    while (!dma.idle()) {
        dma.tick();
    }
    EXPECT_EQ(dma.readRegister(dmareg::kMm2sStatus), dmareg::kStatusIdle);
    axi::StreamBeat beat;
    ASSERT_TRUE(chan.tryPop(beat));
    EXPECT_EQ(beat.data, 10u);
    EXPECT_FALSE(beat.last);
    ASSERT_TRUE(chan.tryPop(beat));
    ASSERT_TRUE(chan.tryPop(beat));
    EXPECT_EQ(beat.data, 30u);
    EXPECT_TRUE(beat.last);
    EXPECT_EQ(dma.wordsMoved(), 3u);
    EXPECT_EQ(dma.transfersCompleted(), 1u);
}

TEST(Dma, Mm2sRespectsBackpressure) {
    Memory mem;
    DmaEngine dma("dma0", mem);
    axi::StreamChannel chan("c", 2, 32);
    (void)dma.attachMm2s(chan);
    dma.writeRegister(dmareg::kMm2sAddr, 0);
    dma.writeRegister(dmareg::kMm2sLength, 10);
    for (int i = 0; i < 10; ++i) {
        dma.tick();
    }
    EXPECT_FALSE(dma.idle());  // stalled on the full channel
    EXPECT_EQ(chan.size(), 2u);
    axi::StreamBeat beat;
    while (!dma.idle()) {
        (void)chan.tryPop(beat);
        dma.tick();
    }
    EXPECT_EQ(dma.wordsMoved(), 10u);
}

TEST(Dma, S2mmDrainsToMemory) {
    Memory mem;
    DmaEngine dma("dma0", mem);
    axi::StreamChannel chan("c", 16, 32);
    (void)dma.attachS2mm(chan);
    for (std::uint32_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(chan.tryPush(100 + i));
    }
    dma.writeRegister(dmareg::kS2mmAddr, 5000);
    dma.writeRegister(dmareg::kS2mmRoute, 0);
    dma.writeRegister(dmareg::kS2mmLength, 4);
    while (!dma.idle()) {
        dma.tick();
    }
    EXPECT_EQ(mem.readBlock(5000, 4),
              (std::vector<std::uint32_t>{100, 101, 102, 103}));
}

TEST(Dma, HigherBandwidthMovesMorePerCycle) {
    Memory mem;
    mem.writeBlock(0, std::vector<std::uint32_t>(64, 7));
    DmaEngine fast("fast", mem, 4);
    axi::StreamChannel chan("c", 128, 32);
    (void)fast.attachMm2s(chan);
    fast.writeRegister(dmareg::kMm2sAddr, 0);
    fast.writeRegister(dmareg::kMm2sLength, 64);
    int cycles = 0;
    while (!fast.idle()) {
        fast.tick();
        ++cycles;
    }
    EXPECT_EQ(cycles, 16);  // 64 words at 4/cycle
}

TEST(Dma, ErrorsOnMisuse) {
    Memory mem;
    DmaEngine dma("dma0", mem);
    axi::StreamChannel chan("c", 4, 32);
    (void)dma.attachMm2s(chan);
    EXPECT_THROW(dma.writeRegister(dmareg::kMm2sRoute, 5), SimulationError);
    EXPECT_THROW((void)dma.readRegister(0xFF), SimulationError);
    EXPECT_THROW(dma.writeRegister(0xFF, 0), SimulationError);
    EXPECT_THROW(dma.writeRegister(dmareg::kS2mmLength, 4), SimulationError);  // no s2mm
    dma.writeRegister(dmareg::kMm2sLength, 2);
    EXPECT_THROW(dma.writeRegister(dmareg::kMm2sLength, 2), SimulationError);  // busy
}

TEST(ZynqPsModel, TasksAndPolling) {
    Memory mem;
    axi::LiteBus bus;
    GpInterconnect gp(bus);
    ZynqPs ps("ps", mem, gp);

    // A register file that reports "done" only after a few reads.
    class CountingSlave : public axi::LiteSlave {
    public:
        int reads = 0;
        std::uint32_t readRegister(std::uint64_t) override {
            return ++reads >= 3 ? 1u : 0u;
        }
        void writeRegister(std::uint64_t, std::uint32_t value) override { last = value; }
        std::uint32_t last = 0;
    } slave;
    bus.mapSlave("dev", axi::AddressRange{0x1000, 0x100}, slave);

    bool taskRan = false;
    ps.task("compute", 25, [&](Memory& m) {
        taskRan = true;
        m.writeWord(7, 99);
    });
    ps.writeReg(0x1004, 42);
    ps.pollEq(0x1000, 0x1, 0x1, 4);
    ps.delay(5);

    sim::Engine engine;
    engine.add(ps);
    engine.runUntilIdle();
    EXPECT_TRUE(taskRan);
    EXPECT_EQ(mem.readWord(7), 99u);
    EXPECT_EQ(slave.last, 42u);
    EXPECT_EQ(slave.reads, 3);
    EXPECT_GE(ps.taskCycles(), 25u);
    EXPECT_GT(ps.driverCycles(), 0u);
    EXPECT_EQ(ps.opsExecuted(), 4u);
    EXPECT_TRUE(ps.idle());
}

hls::Program compileKernelFor(const hls::Kernel& kernel) {
    return hls::compileKernel(kernel, hls::scheduleKernel(kernel, hls::Directives{}));
}

TEST(Accelerator, LiteControlLifecycle) {
    const hls::Kernel k = apps::makeAddKernel();
    const hls::Program p = compileKernelFor(k);
    AcceleratorCore core("ADD", p);
    EXPECT_TRUE(core.idle());
    EXPECT_EQ(core.readRegister(accreg::kCtrl) & accreg::kStatusIdle, accreg::kStatusIdle);
    core.writeRegister(accreg::argOffset(0), 30);  // A
    core.writeRegister(accreg::argOffset(1), 12);  // B
    core.writeRegister(accreg::kCtrl, accreg::kCtrlStart);
    EXPECT_FALSE(core.idle());
    int guard = 0;
    while (!core.done() && ++guard < 100) {
        core.tick();
    }
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.readRegister(accreg::kCtrl) & accreg::kStatusDone, accreg::kStatusDone);
    EXPECT_EQ(core.result("return"), 42u);
    // Result readable through the register file too (port index 2).
    EXPECT_EQ(core.readRegister(accreg::argOffset(2)), 42u);
}

TEST(Accelerator, StartWhileRunningThrows) {
    const hls::Kernel k = apps::makeGaussKernel(64);
    const hls::Program p = compileKernelFor(k);
    AcceleratorCore core("G", p);
    axi::StreamChannel in("in", 8, 8);
    axi::StreamChannel out("out", 8, 8);
    core.bindStream("in", in);
    core.bindStream("out", out);
    core.writeRegister(accreg::kCtrl, accreg::kCtrlStart);
    core.tick();
    EXPECT_THROW(core.writeRegister(accreg::kCtrl, accreg::kCtrlStart), SimulationError);
}

TEST(Accelerator, UnboundStreamThrows) {
    const hls::Kernel k = apps::makeGaussKernel(4);
    const hls::Program p = compileKernelFor(k);
    AcceleratorCore core("G", p);
    core.setAutoStart(true);
    EXPECT_THROW(
        {
            for (int i = 0; i < 10; ++i) {
                core.tick();
            }
        },
        SimulationError);
}

TEST(Accelerator, BadRegisterAccessThrows) {
    const hls::Kernel k = apps::makeAddKernel();
    const hls::Program p = compileKernelFor(k);
    AcceleratorCore core("ADD", p);
    EXPECT_THROW((void)core.readRegister(0x3), SimulationError);
    EXPECT_THROW(core.writeRegister(0x1000, 1), SimulationError);
    // Writing a ScalarOut register is rejected.
    EXPECT_THROW(core.writeRegister(accreg::argOffset(2), 1), SimulationError);
}

TEST(SystemSim, LoopbackPipelineEndToEnd) {
    // 'soc -> GAUSS -> EDGE -> 'soc, driven through the generated-driver
    // style API; validates the full DMA + accelerator + PS interplay.
    constexpr std::int64_t n = 64;
    hls::HlsEngine engine;
    hls::Directives d;
    const hls::HlsResult gauss = engine.synthesize(apps::makeGaussKernel(n), d);
    const hls::HlsResult edge = engine.synthesize(apps::makeEdgeKernel(n), d);

    BlockDesign design("loop", zedboard());
    design.addHlsCore("GAUSS", gauss.resources,
                      {CorePort{"in", hls::InterfaceProtocol::AxiStream, true, 8},
                       CorePort{"out", hls::InterfaceProtocol::AxiStream, false, 8}},
                      false);
    design.addHlsCore("EDGE", edge.resources,
                      {CorePort{"in", hls::InterfaceProtocol::AxiStream, true, 8},
                       CorePort{"out", hls::InterfaceProtocol::AxiStream, false, 8}},
                      false);
    design.connectStream(StreamEndpoint{StreamEndpoint::kSoc, ""},
                         StreamEndpoint{"GAUSS", "in"}, 8);
    design.connectStream(StreamEndpoint{"GAUSS", "out"}, StreamEndpoint{"EDGE", "in"}, 8);
    design.connectStream(StreamEndpoint{"EDGE", "out"},
                         StreamEndpoint{StreamEndpoint::kSoc, ""}, 8);
    design.finalise();

    std::map<std::string, hls::Program> programs{{"GAUSS", gauss.program},
                                                 {"EDGE", edge.program}};
    SystemSimulator sim(design, programs);

    std::vector<std::uint32_t> input(n);
    std::vector<std::uint8_t> input8(n);
    for (std::int64_t i = 0; i < n; ++i) {
        input[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>((i * 13) % 256);
        input8[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((i * 13) % 256);
    }
    sim.ps().task("stage", 10, [input](Memory& mem) { mem.writeBlock(0x100, input); });
    sim.psArmReadDma("axi_dma_0", 0, 0x800, n);
    sim.psWriteDma("axi_dma_0", 0, 0x100, n);
    sim.psWaitReadDma("axi_dma_0");
    const std::uint64_t cycles = sim.run();
    EXPECT_GT(cycles, static_cast<std::uint64_t>(n));

    const auto expected = apps::edgeRef(apps::gaussRef(input8));
    const auto actual = sim.memory().readBlock(0x800, static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i], expected[i]) << "at " << i;
    }
    EXPECT_FALSE(sim.report().empty());
    EXPECT_EQ(sim.channelCount(), 3u);
    EXPECT_EQ(sim.channel(1).beatsPushed(), static_cast<std::uint64_t>(n));
}

TEST(SystemSim, MissingProgramRejected) {
    BlockDesign design("nop", zedboard());
    design.addHlsCore("X", {}, {}, true);
    design.connectLite("X");
    design.finalise();
    std::map<std::string, hls::Program> programs;  // empty
    EXPECT_THROW(SystemSimulator(design, programs), SimulationError);
}

TEST(SystemSim, RequiresFinalisedDesign) {
    BlockDesign design("raw", zedboard());
    std::map<std::string, hls::Program> programs;
    EXPECT_THROW(SystemSimulator(design, programs), SimulationError);
}

TEST(Interconnect, ChargesHopLatency) {
    axi::LiteBus bus;
    GpInterconnect gp(bus);
    class Dummy : public axi::LiteSlave {
    public:
        std::uint32_t readRegister(std::uint64_t) override { return 0; }
        void writeRegister(std::uint64_t, std::uint32_t) override {}
    } slave;
    bus.mapSlave("d", axi::AddressRange{0, 0x10}, slave);
    (void)gp.read(0);
    gp.write(4, 1);
    EXPECT_EQ(gp.consumeAccessCycles(),
              2 * (axi::LiteBus::kAccessLatency + GpInterconnect::kHopLatency));
    EXPECT_EQ(gp.consumeAccessCycles(), 0u);
}

} // namespace
} // namespace socgen::soc
