#include "socgen/common/error.hpp"
#include "socgen/soc/bitstream.hpp"
#include "socgen/soc/synthesis.hpp"

#include <gtest/gtest.h>

namespace socgen::soc {
namespace {

BlockDesign tinyDesign() {
    BlockDesign design("bits", zedboard());
    design.addHlsCore("core0", {100, 100, 1, 0},
                      {CorePort{"in", hls::InterfaceProtocol::AxiStream, true, 32},
                       CorePort{"out", hls::InterfaceProtocol::AxiStream, false, 32}},
                      false);
    design.connectStream(StreamEndpoint{StreamEndpoint::kSoc, ""},
                         StreamEndpoint{"core0", "in"}, 32);
    design.connectStream(StreamEndpoint{"core0", "out"},
                         StreamEndpoint{StreamEndpoint::kSoc, ""}, 32);
    design.finalise();
    return design;
}

TEST(Crc32, KnownVectors) {
    // Standard IEEE CRC-32 check values.
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32(""), 0x00000000u);
    EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
    EXPECT_NE(crc32("abc"), crc32("abd"));
}

TEST(Bitstream, RoundTrip) {
    const BlockDesign design = tinyDesign();
    const SynthesisResult synth = SynthesisModel{}.run(design);
    const Bitstream bit = generateBitstream(design, synth);
    const std::string image = bit.serialize();
    const Bitstream parsed = Bitstream::parse(image);
    EXPECT_EQ(parsed.designName, "bits");
    EXPECT_EQ(parsed.part, design.device().part);
    EXPECT_EQ(parsed.configRecords.size(), design.instances().size() + 1);  // + timing
    EXPECT_EQ(parsed.serialize(), image);
}

TEST(Bitstream, RecordsDescribeInstances) {
    const BlockDesign design = tinyDesign();
    const SynthesisResult synth = SynthesisModel{}.run(design);
    const Bitstream bit = generateBitstream(design, synth);
    bool foundCore = false;
    bool foundTiming = false;
    for (const auto& record : bit.configRecords) {
        if (record.find("core0") != std::string::npos) {
            foundCore = true;
        }
        if (record.find("timing clk=") != std::string::npos) {
            foundTiming = true;
        }
    }
    EXPECT_TRUE(foundCore);
    EXPECT_TRUE(foundTiming);
}

TEST(Bitstream, CorruptionDetected) {
    const BlockDesign design = tinyDesign();
    const SynthesisResult synth = SynthesisModel{}.run(design);
    std::string image = generateBitstream(design, synth).serialize();
    image[image.size() / 2] ^= 0x01;  // flip a payload bit
    EXPECT_THROW((void)Bitstream::parse(image), Error);
}

TEST(Bitstream, CorruptionLocalizedToSection) {
    const BlockDesign design = tinyDesign();
    const SynthesisResult synth = SynthesisModel{}.run(design);
    const Bitstream bit = generateBitstream(design, synth);
    std::size_t timingIndex = bit.configRecords.size();
    for (std::size_t i = 0; i < bit.configRecords.size(); ++i) {
        if (bit.configRecords[i].find("timing clk=") != std::string::npos) {
            timingIndex = i;
        }
    }
    ASSERT_LT(timingIndex, bit.configRecords.size());

    std::string image = bit.serialize();
    const std::size_t pos = image.find("timing clk=");
    ASSERT_NE(pos, std::string::npos);
    image[pos] ^= 0x02;  // damage one byte of that record's payload
    try {
        (void)Bitstream::parse(image);
        FAIL() << "expected a CRC diagnosis";
    } catch (const BitstreamError& e) {
        ASSERT_EQ(e.badSections().size(), 1u);
        EXPECT_EQ(e.badSections()[0], timingIndex);
        const std::string what = e.what();
        EXPECT_NE(what.find("CRC mismatch in 1 section(s)"), std::string::npos);
        EXPECT_NE(what.find(std::to_string(timingIndex)), std::string::npos);
    }
}

TEST(Bitstream, HeaderOnlyCorruptionDistinguishedFromSectionDamage) {
    const BlockDesign design = tinyDesign();
    const SynthesisResult synth = SynthesisModel{}.run(design);
    std::string image = generateBitstream(design, synth).serialize();
    // Corrupt the design-name line: the payload CRC fails but every
    // section still verifies, so the diagnosis must say so.
    const std::size_t pos = image.find("\nbits\n");
    ASSERT_NE(pos, std::string::npos);
    image[pos + 1] ^= 0x02;
    try {
        (void)Bitstream::parse(image);
        FAIL() << "expected a CRC diagnosis";
    } catch (const BitstreamError& e) {
        EXPECT_TRUE(e.badSections().empty());
        EXPECT_NE(std::string(e.what()).find("all sections verify"),
                  std::string::npos);
    }
}

TEST(Bitstream, MalformedCrcHeaderRejected) {
    EXPECT_THROW((void)Bitstream::parse("SOCGENBIT2\nnothexatall\npayload\n"), Error);
}

TEST(Bitstream, BadMagicRejected) {
    EXPECT_THROW((void)Bitstream::parse("NOTABITSTREAM\n0\n"), Error);
    EXPECT_THROW((void)Bitstream::parse(""), Error);
}

TEST(Bitstream, TruncationDetected) {
    const BlockDesign design = tinyDesign();
    const SynthesisResult synth = SynthesisModel{}.run(design);
    const std::string image = generateBitstream(design, synth).serialize();
    EXPECT_THROW((void)Bitstream::parse(image.substr(0, image.size() / 2)), Error);
}

TEST(Bitstream, RequiresFinalisedDesign) {
    BlockDesign design("raw", zedboard());
    SynthesisResult synth;
    EXPECT_THROW((void)generateBitstream(design, synth), SynthesisError);
}

} // namespace
} // namespace socgen::soc
