#include "socgen/apps/kernels.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/textfile.hpp"
#include "socgen/core/flow.hpp"
#include "socgen/core/report.hpp"
#include "socgen/core/parser.hpp"
#include "socgen/core/project.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

namespace socgen::core {
namespace {

hls::KernelLibrary exampleKernels() {
    hls::KernelLibrary lib;
    lib.add(apps::makeAddKernel());
    lib.add(apps::makeMulKernel());
    lib.add(apps::makeGaussKernel(64));
    lib.add(apps::makeEdgeKernel(64));
    return lib;
}

TaskGraph quickstartGraph() {
    constexpr const char* dsl = R"(
object q extends App {
  tg nodes;
    tg node "MUL" i "A" i "B" i "return" end;
    tg node "GAUSS" is "in" is "out" end;
    tg node "EDGE" is "in" is "out" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("GAUSS","in") end;
    tg link ("GAUSS","out") to ("EDGE","in") end;
    tg link ("EDGE","out") to 'soc end;
    tg connect "MUL";
  tg end_edges;
}
)";
    return parseDsl(dsl).graph;
}

TEST(Flow, ProducesAllArtifacts) {
    const hls::KernelLibrary kernels = exampleKernels();
    Flow flow(FlowOptions{}, kernels);
    const FlowResult result = flow.run("proj", quickstartGraph());
    EXPECT_EQ(result.projectName, "proj");
    EXPECT_EQ(result.hlsResults.size(), 3u);
    EXPECT_EQ(result.programs.size(), 3u);
    EXPECT_FALSE(result.dslText.empty());
    EXPECT_FALSE(result.tclText.empty());
    EXPECT_FALSE(result.deviceTree.empty());
    EXPECT_EQ(result.driverFiles.size(), 2u);
    EXPECT_FALSE(result.bootImage.partitions.empty());
    EXPECT_TRUE(result.design.finalised());
    EXPECT_GT(result.synthesis.total.lut, 0);
}

TEST(Flow, TimelineHasAllPhases) {
    const hls::KernelLibrary kernels = exampleKernels();
    Flow flow(FlowOptions{}, kernels);
    const FlowResult result = flow.run("proj", quickstartGraph());
    const PhaseTimeline& t = result.timeline;
    EXPECT_GT(t.toolSecondsFor("SCALA"), 0.0);
    EXPECT_GT(t.toolSecondsFor("HLS"), 0.0);
    EXPECT_GT(t.toolSecondsFor("PROJECT"), 0.0);
    EXPECT_GT(t.toolSecondsFor("SYNTH"), 0.0);
    EXPECT_GT(t.toolSecondsFor("SW"), 0.0);
    // The paper reports ~6 s to compile the Scala task graph and ~50 s to
    // generate the Vivado project; our deterministic model stays in that
    // neighbourhood.
    EXPECT_NEAR(t.toolSecondsFor("SCALA"), 6.0, 2.0);
    EXPECT_NEAR(t.toolSecondsFor("PROJECT"), 50.0, 20.0);
}

TEST(Flow, CacheSkipsRepeatedHls) {
    const hls::KernelLibrary kernels = exampleKernels();
    auto cache = std::make_shared<HlsCache>();
    Flow flowA(FlowOptions{}, kernels, cache);
    const FlowResult first = flowA.run("a", quickstartGraph());
    EXPECT_GT(first.timeline.toolSecondsFor("HLS"), 0.0);
    EXPECT_EQ(cache->size(), 3u);

    Flow flowB(FlowOptions{}, kernels, cache);
    const FlowResult second = flowB.run("b", quickstartGraph());
    // All three nodes hit the cache: no HLS tool time charged (the paper
    // generates each core once across its four architectures).
    EXPECT_DOUBLE_EQ(second.timeline.toolSecondsFor("HLS"), 0.0);
    EXPECT_EQ(second.hlsResults.at("GAUSS").resources,
              first.hlsResults.at("GAUSS").resources);
}

TEST(Flow, ParallelJobsMatchSerialResults) {
    const hls::KernelLibrary kernels = exampleKernels();
    FlowOptions serial;
    serial.jobs = 1;
    FlowOptions parallel;
    parallel.jobs = 4;
    const FlowResult a = Flow(serial, kernels).run("p", quickstartGraph());
    const FlowResult b = Flow(parallel, kernels).run("p", quickstartGraph());
    EXPECT_EQ(a.tclText, b.tclText);
    EXPECT_EQ(a.synthesis.total, b.synthesis.total);
    for (const auto& [name, result] : a.hlsResults) {
        EXPECT_EQ(result.vhdl, b.hlsResults.at(name).vhdl) << name;
    }
}

TEST(Flow, MissingKernelReported) {
    hls::KernelLibrary onlyAdd;
    onlyAdd.add(apps::makeAddKernel());
    Flow flow(FlowOptions{}, onlyAdd);
    try {
        (void)flow.run("p", quickstartGraph());
        FAIL() << "expected missing-kernel error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("no kernel source"), std::string::npos);
    }
}

TEST(Flow, InterfaceMismatchReported) {
    // Graph declares MUL's A as a stream; the kernel exposes a scalar.
    constexpr const char* dsl = R"(
object q extends App {
  tg nodes; tg node "MUL" is "A" end; tg end_nodes;
  tg edges; tg link ("MUL","A") to 'soc end; tg end_edges;
}
)";
    const hls::KernelLibrary kernels = exampleKernels();
    Flow flow(FlowOptions{}, kernels);
    EXPECT_THROW((void)flow.run("p", parseDsl(dsl).graph), DslError);
}

TEST(Flow, LinkDirectionMismatchReported) {
    // GAUSS/in is a stream input but used as a link source.
    constexpr const char* dsl = R"(
object q extends App {
  tg nodes; tg node "GAUSS" is "in" is "out" end; tg end_nodes;
  tg edges;
    tg link ("GAUSS","in") to 'soc end;
    tg link 'soc to ("GAUSS","out") end;
  tg end_edges;
}
)";
    const hls::KernelLibrary kernels = exampleKernels();
    Flow flow(FlowOptions{}, kernels);
    EXPECT_THROW((void)flow.run("p", parseDsl(dsl).graph), Error);
}

TEST(Flow, SynthesisCanBeSkipped) {
    const hls::KernelLibrary kernels = exampleKernels();
    FlowOptions options;
    options.runSynthesis = false;
    const FlowResult result = Flow(options, kernels).run("p", quickstartGraph());
    EXPECT_EQ(result.synthesis.total, hls::ResourceEstimate{});
    EXPECT_TRUE(result.bitstream.configRecords.empty());
    EXPECT_DOUBLE_EQ(result.timeline.toolSecondsFor("SYNTH"), 0.0);
    EXPECT_FALSE(result.tclText.empty());  // integration still ran
}

TEST(Flow, WritesArtifactsToOutputDir) {
    namespace fs = std::filesystem;
    const std::string dir = testing::TempDir() + "/socgen_flow_out";
    fs::remove_all(dir);
    const hls::KernelLibrary kernels = exampleKernels();
    FlowOptions options;
    options.outputDir = dir;
    (void)Flow(options, kernels).run("proj", quickstartGraph());
    EXPECT_TRUE(fs::exists(dir + "/proj/proj.tg"));
    EXPECT_TRUE(fs::exists(dir + "/proj/proj.tcl"));
    EXPECT_TRUE(fs::exists(dir + "/proj/proj.bit"));
    EXPECT_TRUE(fs::exists(dir + "/proj/hls/GAUSS.vhd"));
    EXPECT_TRUE(fs::exists(dir + "/proj/hls/GAUSS_directives.tcl"));
    EXPECT_TRUE(fs::exists(dir + "/proj/devicetree.dts"));
    EXPECT_TRUE(fs::exists(dir + "/proj/sw/proj_api.h"));
    EXPECT_TRUE(fs::exists(dir + "/proj/boot.bin"));
    EXPECT_TRUE(fs::exists(dir + "/proj/design.dot"));
    EXPECT_TRUE(fs::exists(dir + "/proj/utilisation.txt"));
    fs::remove_all(dir);
}

TEST(Flow, MarkdownReportCoversEverything) {
    const hls::KernelLibrary kernels = exampleKernels();
    const FlowResult result = Flow(FlowOptions{}, kernels).run("rep", quickstartGraph());
    const std::string report = renderFlowReport(result);
    EXPECT_NE(report.find("# Flow report — rep"), std::string::npos);
    EXPECT_NE(report.find("## Hardware cores"), std::string::npos);
    EXPECT_NE(report.find("| GAUSS |"), std::string::npos);
    EXPECT_NE(report.find("## Synthesis"), std::string::npos);
    EXPECT_NE(report.find("## Generation timeline"), std::string::npos);
    EXPECT_NE(report.find("SCALA"), std::string::npos);
    EXPECT_NE(report.find(".bit` — bitstream"), std::string::npos);
    EXPECT_NE(report.find("hls/GAUSS.vhd"), std::string::npos);
}

TEST(Flow, ReportWrittenWithArtifacts) {
    namespace fs = std::filesystem;
    const std::string dir = testing::TempDir() + "/socgen_report_out";
    fs::remove_all(dir);
    const hls::KernelLibrary kernels = exampleKernels();
    FlowOptions options;
    options.outputDir = dir;
    (void)Flow(options, kernels).run("rep", quickstartGraph());
    EXPECT_TRUE(fs::exists(dir + "/rep/REPORT.md"));
    EXPECT_TRUE(fs::exists(dir + "/rep/hls/GAUSS.v"));  // Verilog alongside VHDL
    fs::remove_all(dir);
}

TEST(Flow, DslFileRoundTrip) {
    const std::string path = testing::TempDir() + "/roundtrip.tg";
    const hls::KernelLibrary kernels = exampleKernels();
    const FlowResult first = Flow(FlowOptions{}, kernels).run("q", quickstartGraph());
    writeTextFile(path, first.dslText);
    const FlowResult second = runDslFile(path, kernels);
    EXPECT_TRUE(first.graph == second.graph);
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Environment override hardening

TEST(CoreFlow, MalformedFlowJobsOverrideIsAHardNamedError) {
    const hls::KernelLibrary kernels = exampleKernels();
    ASSERT_EQ(::setenv("SOCGEN_FLOW_JOBS", "two", 1), 0);
    try {
        const Flow flow(FlowOptions{}, kernels);
        FAIL() << "malformed SOCGEN_FLOW_JOBS was accepted";
    } catch (const Error& e) {
        // The diagnostic names the variable and echoes the bad value, so
        // the one line to fix in a CI config is obvious.
        EXPECT_NE(std::string(e.what()).find("SOCGEN_FLOW_JOBS"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("two"), std::string::npos) << e.what();
    }
    ASSERT_EQ(::unsetenv("SOCGEN_FLOW_JOBS"), 0);
}

} // namespace
} // namespace socgen::core
