#include "socgen/common/error.hpp"
#include "socgen/dse/explorer.hpp"

#include <gtest/gtest.h>

namespace socgen::dse {
namespace {

/// Toy cost model: each of 3 units costs 100 LUT and saves cycles;
/// mask 5 is infeasible.
DsePoint toyEvaluate(unsigned mask) {
    if (mask == 5) {
        throw Error("does not fit");
    }
    DsePoint p;
    p.label = "mask" + std::to_string(mask);
    p.resources.lut = 100 * __builtin_popcount(mask);
    p.cycles = 1000 - 120 * static_cast<std::uint64_t>(__builtin_popcount(mask));
    return p;
}

TEST(Explorer, EnumeratesAllMasks) {
    const auto points = exploreExhaustive(3, toyEvaluate);
    ASSERT_EQ(points.size(), 8u);
    for (unsigned mask = 0; mask < 8; ++mask) {
        EXPECT_EQ(points[mask].mask, mask);
    }
}

TEST(Explorer, ExceptionsBecomeInfeasiblePoints) {
    const auto points = exploreExhaustive(3, toyEvaluate);
    EXPECT_FALSE(points[5].feasible);
    EXPECT_NE(points[5].infeasibleReason.find("does not fit"), std::string::npos);
    EXPECT_TRUE(points[4].feasible);
}

TEST(Explorer, TooManyUnitsRejected) {
    EXPECT_THROW((void)exploreExhaustive(24, toyEvaluate), Error);
}

TEST(Pareto, KeepsOnlyNonDominated) {
    std::vector<DsePoint> points(4);
    points[0].mask = 0;
    points[0].resources.lut = 100;
    points[0].cycles = 100;
    points[1].mask = 1;  // dominated by 0
    points[1].resources.lut = 200;
    points[1].cycles = 200;
    points[2].mask = 2;  // trade-off vs 0
    points[2].resources.lut = 50;
    points[2].cycles = 400;
    points[3].mask = 3;  // infeasible
    points[3].feasible = false;
    const auto front = paretoFront(points);
    ASSERT_EQ(front.size(), 2u);
    EXPECT_EQ(front[0].mask, 2u);  // sorted by LUT
    EXPECT_EQ(front[1].mask, 0u);
}

TEST(Pareto, MonotoneChainCollapsesToBest) {
    // With a strictly better point for every added unit, only the full
    // mask and the cheapest mask survive... here cost and cycles trade
    // monotonically, so ALL masks of distinct popcount are Pareto.
    const auto points = exploreExhaustive(3, toyEvaluate);
    const auto front = paretoFront(points);
    // All feasible points are mutually non-dominated here (equal-cost
    // masks of the same popcount both survive): 1 + 3 + 2 + 1.
    EXPECT_EQ(front.size(), 7u);
    EXPECT_EQ(front.front().resources.lut, 0);
    EXPECT_EQ(front.back().cycles, 1000u - 360u);
}

TEST(Pareto, EqualPointsBothSurvive) {
    std::vector<DsePoint> points(2);
    points[0].mask = 0;
    points[0].resources.lut = 10;
    points[0].cycles = 10;
    points[1].mask = 1;
    points[1].resources.lut = 10;
    points[1].cycles = 10;
    EXPECT_EQ(paretoFront(points).size(), 2u);
}

TEST(RenderTable, ShowsSpeedupAndParetoMarks) {
    const auto points = exploreExhaustive(3, toyEvaluate);
    const std::string table = renderTable(points);
    EXPECT_NE(table.find("mask"), std::string::npos);
    EXPECT_NE(table.find("speedup"), std::string::npos);
    EXPECT_NE(table.find("infeasible: "), std::string::npos);
    EXPECT_NE(table.find("1.00x"), std::string::npos);  // the all-SW row
    EXPECT_NE(table.find("*"), std::string::npos);      // pareto marks
}

} // namespace
} // namespace socgen::dse
