#include "socgen/apps/kernels.hpp"
#include "socgen/common/error.hpp"
#include "socgen/core/parser.hpp"
#include "socgen/dse/explorer.hpp"

#include <gtest/gtest.h>

namespace socgen::dse {
namespace {

/// Toy cost model: each of 3 units costs 100 LUT and saves cycles;
/// mask 5 is infeasible.
DsePoint toyEvaluate(unsigned mask) {
    if (mask == 5) {
        throw Error("does not fit");
    }
    DsePoint p;
    p.label = "mask" + std::to_string(mask);
    p.resources.lut = 100 * __builtin_popcount(mask);
    p.cycles = 1000 - 120 * static_cast<std::uint64_t>(__builtin_popcount(mask));
    return p;
}

TEST(Explorer, EnumeratesAllMasks) {
    const auto points = exploreExhaustive(3, toyEvaluate);
    ASSERT_EQ(points.size(), 8u);
    for (unsigned mask = 0; mask < 8; ++mask) {
        EXPECT_EQ(points[mask].mask, mask);
    }
}

TEST(Explorer, ExceptionsBecomeInfeasiblePoints) {
    const auto points = exploreExhaustive(3, toyEvaluate);
    EXPECT_FALSE(points[5].feasible);
    EXPECT_NE(points[5].infeasibleReason.find("does not fit"), std::string::npos);
    EXPECT_TRUE(points[4].feasible);
}

TEST(Explorer, TooManyUnitsRejected) {
    EXPECT_THROW((void)exploreExhaustive(24, toyEvaluate), Error);
}

TEST(Pareto, KeepsOnlyNonDominated) {
    std::vector<DsePoint> points(4);
    points[0].mask = 0;
    points[0].resources.lut = 100;
    points[0].cycles = 100;
    points[1].mask = 1;  // dominated by 0
    points[1].resources.lut = 200;
    points[1].cycles = 200;
    points[2].mask = 2;  // trade-off vs 0
    points[2].resources.lut = 50;
    points[2].cycles = 400;
    points[3].mask = 3;  // infeasible
    points[3].feasible = false;
    const auto front = paretoFront(points);
    ASSERT_EQ(front.size(), 2u);
    EXPECT_EQ(front[0].mask, 2u);  // sorted by LUT
    EXPECT_EQ(front[1].mask, 0u);
}

TEST(Pareto, MonotoneChainCollapsesToBest) {
    // With a strictly better point for every added unit, only the full
    // mask and the cheapest mask survive... here cost and cycles trade
    // monotonically, so ALL masks of distinct popcount are Pareto.
    const auto points = exploreExhaustive(3, toyEvaluate);
    const auto front = paretoFront(points);
    // All feasible points are mutually non-dominated here (equal-cost
    // masks of the same popcount both survive): 1 + 3 + 2 + 1.
    EXPECT_EQ(front.size(), 7u);
    EXPECT_EQ(front.front().resources.lut, 0);
    EXPECT_EQ(front.back().cycles, 1000u - 360u);
}

TEST(Pareto, EqualPointsBothSurvive) {
    std::vector<DsePoint> points(2);
    points[0].mask = 0;
    points[0].resources.lut = 10;
    points[0].cycles = 10;
    points[1].mask = 1;
    points[1].resources.lut = 10;
    points[1].cycles = 10;
    EXPECT_EQ(paretoFront(points).size(), 2u);
}

// ---------------------------------------------------------------------------
// Directive-space exploration on the stage-graph flow engine: variants
// share one HlsCache, so each sweep step re-synthesizes exactly the
// kernels whose directives changed.

core::TaskGraph dseGraph() {
    constexpr const char* dsl = R"(
object q extends App {
  tg nodes;
    tg node "MUL" i "A" i "B" i "return" end;
    tg node "GAUSS" is "in" is "out" end;
    tg node "EDGE" is "in" is "out" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("GAUSS","in") end;
    tg link ("GAUSS","out") to ("EDGE","in") end;
    tg link ("EDGE","out") to 'soc end;
    tg connect "MUL";
  tg end_edges;
}
)";
    return core::parseDsl(dsl).graph;
}

TEST(Explorer, SweepResynthesizesOnlyInvalidatedKernels) {
    hls::KernelLibrary kernels;
    kernels.add(apps::makeMulKernel());
    kernels.add(apps::makeGaussKernel(64));
    kernels.add(apps::makeEdgeKernel(64));

    DirectiveVariant base;
    base.name = "base";
    DirectiveVariant unrolled;
    unrolled.name = "unroll4";
    unrolled.kernelDirectives["GAUSS"].unrollFactors["i"] = 4;
    DirectiveVariant repeat = base;
    repeat.name = "repeat";

    Explorer explorer(core::FlowOptions{}, kernels);
    const auto outcomes = explorer.sweep("dse", dseGraph(), {base, unrolled, repeat});
    ASSERT_EQ(outcomes.size(), 3u);

    // Cold start: every kernel is synthesized by the engine.
    EXPECT_EQ(outcomes[0].engineRuns, 3u);
    EXPECT_EQ(outcomes[0].cacheHits, 0u);

    // Only GAUSS's directives changed: exactly one re-synthesis, the
    // other two kernels come from the shared cache.
    EXPECT_EQ(outcomes[1].engineRuns, 1u);
    EXPECT_EQ(outcomes[1].cacheHits, 2u);

    // A repeated variant is free: zero engine runs, zero tool time for
    // the HLS phase (both GAUSS entries coexist under their own keys).
    EXPECT_EQ(outcomes[2].engineRuns, 0u);
    EXPECT_EQ(outcomes[2].cacheHits, 3u);
    EXPECT_EQ(explorer.cache()->size(), 4u);

    // Reuse never crosses directive boundaries: the unrolled GAUSS is a
    // different artifact than the base one.
    EXPECT_NE(outcomes[1].result.hlsResults.at("GAUSS").directiveText,
              outcomes[0].result.hlsResults.at("GAUSS").directiveText);
    EXPECT_EQ(outcomes[2].result.hlsResults.at("GAUSS").vhdl,
              outcomes[0].result.hlsResults.at("GAUSS").vhdl);
    EXPECT_LT(outcomes[2].toolSeconds, outcomes[0].toolSeconds);
}

TEST(RenderTable, ShowsSpeedupAndParetoMarks) {
    const auto points = exploreExhaustive(3, toyEvaluate);
    const std::string table = renderTable(points);
    EXPECT_NE(table.find("mask"), std::string::npos);
    EXPECT_NE(table.find("speedup"), std::string::npos);
    EXPECT_NE(table.find("infeasible: "), std::string::npos);
    EXPECT_NE(table.find("1.00x"), std::string::npos);  // the all-SW row
    EXPECT_NE(table.find("*"), std::string::npos);      // pareto marks
}

} // namespace
} // namespace socgen::dse
