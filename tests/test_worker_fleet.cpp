// Worker-fleet tests (CTest labels: resilience;worker-fleet): the wire
// frame codec, the kernel/directives AST codecs they carry, and the
// crash-isolated fleet itself — spawn, bit-identical remote synthesis,
// kill -9 recovery with re-dispatch, graceful degradation when no
// worker can spawn, and the lease-epoch fence against zombie commits.

#include "socgen/apps/kernels.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/core/artifact_store.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/hls/serialize.hpp"
#include "socgen/svc/wire.hpp"
#include "socgen/svc/worker_fleet.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include <unistd.h>

namespace socgen::svc {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Wire codec

/// Feeds `bytes` into a FrameReader one byte at a time — the worst
/// pipe-fragmentation case — and returns all completed frames.
std::vector<wire::Frame> feedByteByByte(const std::string& bytes) {
    wire::FrameReader reader;
    std::vector<wire::Frame> frames;
    for (const char c : bytes) {
        reader.feed(std::string_view(&c, 1));
        while (auto frame = reader.next()) {
            frames.push_back(std::move(*frame));
        }
    }
    return frames;
}

TEST(Wire, FramesSurviveArbitraryFragmentation) {
    wire::RequestFrame request;
    request.requestId = 42;
    request.leaseEpoch = 7;
    request.key = "00ff00ff";
    request.kernel = "kernel-blob";
    request.directives = "directive-blob";
    request.delayMsBeforeResult = 17;
    request.crashBeforeResult = true;
    wire::HeartbeatFrame beat;
    beat.requestsServed = 3;
    beat.inFlightRequestId = 42;

    const std::string stream =
        wire::encodeFrame(wire::FrameType::Heartbeat, wire::encodeHeartbeat(beat)) +
        wire::encodeFrame(wire::FrameType::Request, wire::encodeRequest(request));
    const std::vector<wire::Frame> frames = feedByteByByte(stream);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, wire::FrameType::Heartbeat);
    EXPECT_EQ(frames[1].type, wire::FrameType::Request);

    const wire::HeartbeatFrame beat2 = wire::decodeHeartbeat(frames[0].payload);
    EXPECT_EQ(beat2.requestsServed, 3u);
    EXPECT_EQ(beat2.inFlightRequestId, 42u);
    const wire::RequestFrame request2 = wire::decodeRequest(frames[1].payload);
    EXPECT_EQ(request2.requestId, 42u);
    EXPECT_EQ(request2.leaseEpoch, 7u);
    EXPECT_EQ(request2.key, "00ff00ff");
    EXPECT_EQ(request2.kernel, "kernel-blob");
    EXPECT_EQ(request2.directives, "directive-blob");
    EXPECT_EQ(request2.delayMsBeforeResult, 17u);
    EXPECT_TRUE(request2.crashBeforeResult);
}

TEST(Wire, AllTypedPayloadsRoundtrip) {
    wire::HelloFrame hello;
    hello.pid = 1234;
    const wire::HelloFrame hello2 = wire::decodeHello(wire::encodeHello(hello));
    EXPECT_EQ(hello2.protocolVersion, wire::kProtocolVersion);
    EXPECT_EQ(hello2.pid, 1234u);

    wire::ResultFrame result;
    result.requestId = 9;
    result.leaseEpoch = 2;
    result.result = std::string("binary\0blob", 11);
    const wire::ResultFrame result2 = wire::decodeResult(wire::encodeResult(result));
    EXPECT_EQ(result2.requestId, 9u);
    EXPECT_EQ(result2.leaseEpoch, 2u);
    EXPECT_EQ(result2.result, result.result);

    wire::ErrorFrame error;
    error.requestId = 5;
    error.leaseEpoch = 1;
    error.hlsError = true;
    error.message = "hls: no schedule";
    const wire::ErrorFrame error2 = wire::decodeError(wire::encodeError(error));
    EXPECT_EQ(error2.requestId, 5u);
    EXPECT_TRUE(error2.hlsError);
    EXPECT_EQ(error2.message, "hls: no schedule");
}

TEST(Wire, ImplausibleLengthPrefixThrows) {
    wire::FrameReader reader;
    reader.feed(std::string(5, '\xff'));
    EXPECT_THROW((void)reader.next(), WireError);
}

TEST(Wire, UnknownFrameTypeThrows) {
    // length = 1, type = 99.
    std::string bytes;
    bytes.push_back(1);
    bytes.push_back(0);
    bytes.push_back(0);
    bytes.push_back(0);
    bytes.push_back(99);
    wire::FrameReader reader;
    reader.feed(bytes);
    EXPECT_THROW((void)reader.next(), WireError);
}

TEST(Wire, TruncatedPayloadDecodeThrows) {
    const std::string good = wire::encodeRequest(wire::RequestFrame{});
    EXPECT_THROW((void)wire::decodeRequest(good.substr(0, good.size() / 2)), WireError);
}

// ---------------------------------------------------------------------------
// Kernel / directives AST codecs (what Request frames carry)

TEST(AstCodec, KernelRoundtripsThroughBytes) {
    const hls::Kernel kernel = apps::makeGaussKernel(64);
    const std::string bytes = hls::encodeKernel(kernel);
    const hls::Kernel back = hls::decodeKernel(bytes);
    // Bit-identical re-encoding is the strongest cheap equality witness.
    EXPECT_EQ(hls::encodeKernel(back), bytes);
    // And the decoded kernel synthesizes to the identical netlist.
    hls::Directives directives;
    const hls::HlsEngine engine;
    EXPECT_EQ(hls::encodeHlsResult(engine.synthesize(kernel, directives)),
              hls::encodeHlsResult(engine.synthesize(back, directives)));
}

TEST(AstCodec, DirectivesRoundtripThroughBytes) {
    hls::Directives directives;
    directives.clockNs = 7.5;
    directives.pipelineLoops = false;
    directives.maxMulUnits = 3;
    directives.tripCountHints["i"] = 64;
    directives.unrollFactors["j"] = 4;
    const std::string bytes = hls::encodeDirectives(directives);
    const hls::Directives back = hls::decodeDirectives(bytes);
    EXPECT_EQ(hls::encodeDirectives(back), bytes);
    EXPECT_EQ(back.clockNs, 7.5);
    EXPECT_FALSE(back.pipelineLoops);
    EXPECT_EQ(back.maxMulUnits, 3);
    EXPECT_EQ(back.tripCountHints.at("i"), 64);
    EXPECT_EQ(back.unrollFactors.at("j"), 4);
}

TEST(AstCodec, CorruptKernelBytesThrowCodecError) {
    std::string bytes = hls::encodeKernel(apps::makeMulKernel());
    bytes.resize(bytes.size() / 2);
    EXPECT_THROW((void)hls::decodeKernel(bytes), CodecError);
}

// ---------------------------------------------------------------------------
// The fleet

struct FleetFixture {
    std::string root;
    std::shared_ptr<core::ArtifactStore> store;
    hls::Kernel kernel = apps::makeMulKernel();
    hls::Directives directives;
    std::string key;

    FleetFixture() {
        static int serial = 0;
        root = (fs::temp_directory_path() /
                ("socgen_fleet_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(serial++)))
                   .string();
        fs::remove_all(root);
        store = std::make_shared<core::ArtifactStore>(root);
        key = core::ArtifactStore::deriveKey(kernel, directives, soc::zedboard(),
                                             "socgen-hls-1");
    }
    ~FleetFixture() { fs::remove_all(root); }
};

TEST(WorkerFleet, RemoteSynthesisIsBitIdenticalToLocal) {
    FleetFixture fx;
    WorkerFleetConfig config;
    config.workers = 1;
    WorkerFleet fleet(config, fx.store);
    ASSERT_TRUE(fleet.available());

    const core::RemoteSynthesis remote =
        fleet.synthesize(fx.kernel, fx.directives, fx.key);
    const hls::HlsResult local = hls::HlsEngine().synthesize(fx.kernel, fx.directives);
    EXPECT_EQ(hls::encodeHlsResult(remote.result), hls::encodeHlsResult(local));
    EXPECT_EQ(remote.leaseEpoch, 1u);
    EXPECT_EQ(fx.store->currentLease(fx.key), 1u);

    const WorkerFleetStats stats = fleet.stats();
    EXPECT_EQ(stats.requestsCompleted, 1u);
    EXPECT_EQ(stats.workerDeaths, 0u);
}

TEST(WorkerFleet, CrashAtStageBoundaryRespawnsAndRedispatches) {
    FleetFixture fx;
    WorkerFleetConfig config;
    config.workers = 1;
    // The worker _exit(137)s after synthesizing, before replying — the
    // exact attempt/commit boundary a kill -9 storm hits.
    config.crashWorkerBeforeResultForTest = true;
    WorkerFleet fleet(config, fx.store);

    const core::RemoteSynthesis remote =
        fleet.synthesize(fx.kernel, fx.directives, fx.key);
    const hls::HlsResult local = hls::HlsEngine().synthesize(fx.kernel, fx.directives);
    EXPECT_EQ(hls::encodeHlsResult(remote.result), hls::encodeHlsResult(local));
    // The winning commit carries the re-dispatch's (newer) lease.
    EXPECT_EQ(remote.leaseEpoch, 2u);

    const WorkerFleetStats stats = fleet.stats();
    EXPECT_GE(stats.workerDeaths, 1u);
    EXPECT_GE(stats.respawns, 1u);
    EXPECT_GE(stats.redispatches, 1u);
    EXPECT_EQ(stats.requestsCompleted, 1u);
    EXPECT_GE(stats.recoveries, 1u);
    EXPECT_GT(stats.meanRecoverMs(), 0.0);
}

TEST(WorkerFleet, KillRandomWorkerRecovers) {
    FleetFixture fx;
    WorkerFleetConfig config;
    config.workers = 2;
    WorkerFleet fleet(config, fx.store);

    // Wait for at least one worker to come up, then murder it while idle.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (fleet.workerPids().empty() &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_FALSE(fleet.workerPids().empty());
    ASSERT_TRUE(fleet.killRandomWorker(1234).has_value());

    // The fleet still serves — through the survivor or the respawn.
    const core::RemoteSynthesis remote =
        fleet.synthesize(fx.kernel, fx.directives, fx.key);
    EXPECT_EQ(hls::encodeHlsResult(remote.result),
              hls::encodeHlsResult(hls::HlsEngine().synthesize(fx.kernel, fx.directives)));
    EXPECT_GE(fleet.stats().kills, 1u);
}

TEST(WorkerFleet, UnspawnableWorkersDegradeToUnavailable) {
    FleetFixture fx;
    WorkerFleetConfig config;
    config.workers = 1;
    config.workerPath = "/no/such/socgen-worker";
    config.respawnBackoffBaseMs = 1;
    WorkerFleet fleet(config, fx.store);

    // Whether the request races the slot's death or not, the outcome is
    // the structured unavailability the flow degrades on — never a hang.
    EXPECT_THROW((void)fleet.synthesize(fx.kernel, fx.directives, fx.key),
                 WorkerUnavailableError);
    EXPECT_FALSE(fleet.available());
    EXPECT_GE(fleet.stats().spawnFailures, 1u);
}

TEST(WorkerFleet, PausedWorkerLateCommitIsFencedNotApplied) {
    // The lease-fencing satellite: a worker paused past the dispatch
    // deadline resumes after the attempt was re-dispatched. Its late
    // result must be dropped (stale epoch) and the re-dispatch's result
    // committed — and a late *store* commit under the old lease must be
    // rejected by storeFenced.
    FleetFixture fx;
    WorkerFleetConfig config;
    config.workers = 1;
    config.requestDelayMsForTest = 600;  // first dispatch replies late...
    config.requestDeadlineMs = 200;      // ...well past the deadline
    config.killOnDeadline = false;       // leave the zombie alive
    config.maxRedispatch = 5;
    WorkerFleet fleet(config, fx.store);

    LogCapture capture;
    const core::RemoteSynthesis remote =
        fleet.synthesize(fx.kernel, fx.directives, fx.key);
    EXPECT_EQ(hls::encodeHlsResult(remote.result),
              hls::encodeHlsResult(hls::HlsEngine().synthesize(fx.kernel, fx.directives)));
    // The winner is a later dispatch, not the paused original.
    EXPECT_GT(remote.leaseEpoch, 1u);
    EXPECT_EQ(remote.leaseEpoch, fx.store->currentLease(fx.key));

    const WorkerFleetStats stats = fleet.stats();
    EXPECT_GE(stats.deadlineTimeouts, 1u);
    EXPECT_GE(stats.staleResultsDropped, 1u);
    EXPECT_EQ(stats.kills, 0u);  // the worker was never killed, only fenced
    EXPECT_TRUE(capture.contains("stale"));

    // Belt and braces: replaying the zombie's commit against the store
    // is rejected and logged, not applied.
    fx.store->storeFenced(fx.key, remote.result, remote.leaseEpoch);
    EXPECT_THROW(fx.store->storeFenced(fx.key, remote.result, 1), StaleLeaseError);
    EXPECT_EQ(fx.store->staleCommitsRejected(), 1u);
    EXPECT_TRUE(fx.store->load(fx.key).has_value());
}

TEST(WorkerFleet, ConcurrentDispatchesAllComplete) {
    FleetFixture fx;
    WorkerFleetConfig config;
    config.workers = 2;
    WorkerFleet fleet(config, fx.store);

    constexpr int kThreads = 6;
    std::vector<std::thread> threads;
    std::vector<std::string> encoded(kThreads);
    const std::vector<hls::Kernel> kernels = {apps::makeMulKernel(),
                                              apps::makeGaussKernel(64),
                                              apps::makeEdgeKernel(64)};
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            const hls::Kernel& kernel = kernels[static_cast<std::size_t>(i) % kernels.size()];
            const std::string key = core::ArtifactStore::deriveKey(
                kernel, fx.directives, soc::zedboard(), "socgen-hls-1");
            const core::RemoteSynthesis remote =
                fleet.synthesize(kernel, fx.directives, key);
            encoded[static_cast<std::size_t>(i)] = hls::encodeHlsResult(remote.result);
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    const hls::HlsEngine engine;
    for (int i = 0; i < kThreads; ++i) {
        const hls::Kernel& kernel = kernels[static_cast<std::size_t>(i) % kernels.size()];
        EXPECT_EQ(encoded[static_cast<std::size_t>(i)],
                  hls::encodeHlsResult(engine.synthesize(kernel, fx.directives)));
    }
    EXPECT_EQ(fleet.stats().requestsCompleted, static_cast<std::size_t>(kThreads));
}

} // namespace
} // namespace socgen::svc
