#include "socgen/common/error.hpp"
#include "socgen/sim/engine.hpp"

#include <gtest/gtest.h>

namespace socgen::sim {
namespace {

/// Component that works for `budget` cycles then goes idle.
class Worker : public Component {
public:
    Worker(std::string name, int budget) : name_(std::move(name)), remaining_(budget) {}

    const std::string& name() const override { return name_; }
    bool tick() override {
        if (remaining_ > 0) {
            --remaining_;
            return true;
        }
        return false;
    }
    bool idle() const override { return remaining_ == 0; }

private:
    std::string name_;
    int remaining_;
};

/// Component that is never idle and never progresses (deadlock model).
class Stuck : public Component {
public:
    const std::string& name() const override { return name_; }
    bool tick() override { return false; }
    bool idle() const override { return false; }

private:
    std::string name_ = "stuck";
};

TEST(Engine, RunsUntilAllIdle) {
    Engine engine;
    Worker a("a", 5);
    Worker b("b", 9);
    engine.add(a);
    engine.add(b);
    const std::uint64_t cycles = engine.runUntilIdle();
    EXPECT_EQ(cycles, 9u);  // the longest worker's busy cycles
    EXPECT_EQ(engine.now(), cycles);
}

TEST(Engine, DeadlockDetectedWithComponentNames) {
    Engine engine;
    Stuck stuck;
    engine.add(stuck);
    try {
        engine.runUntilIdle(1000, 50);
        FAIL() << "expected deadlock";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("stuck"), std::string::npos);
    }
}

TEST(Engine, MaxCyclesExceededThrows) {
    Engine engine;
    Worker w("w", 1000);
    engine.add(w);
    EXPECT_THROW(engine.runUntilIdle(10), Error);
}

TEST(Engine, ProbesRunEveryCycle) {
    Engine engine;
    Worker w("w", 3);
    engine.add(w);
    int probes = 0;
    engine.addProbe([&] { ++probes; });
    const std::uint64_t cycles = engine.runUntilIdle();
    EXPECT_EQ(static_cast<std::uint64_t>(probes), cycles);
}

TEST(Engine, FixedRunIgnoresIdle) {
    Engine engine;
    Worker w("w", 2);
    engine.add(w);
    engine.run(20);
    EXPECT_EQ(engine.now(), 20u);
}

TEST(Engine, EmptyEngineQuiescesImmediately) {
    Engine engine;
    EXPECT_EQ(engine.runUntilIdle(), 1u);
}

} // namespace
} // namespace socgen::sim
