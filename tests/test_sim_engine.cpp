#include "socgen/common/error.hpp"
#include "socgen/sim/engine.hpp"

#include <gtest/gtest.h>

namespace socgen::sim {
namespace {

/// Component that works for `budget` cycles then goes idle.
class Worker : public Component {
public:
    Worker(std::string name, int budget) : name_(std::move(name)), remaining_(budget) {}

    const std::string& name() const override { return name_; }
    bool tick() override {
        if (remaining_ > 0) {
            --remaining_;
            return true;
        }
        return false;
    }
    bool idle() const override { return remaining_ == 0; }

private:
    std::string name_;
    int remaining_;
};

/// Component that is never idle and never progresses (deadlock model).
class Stuck : public Component {
public:
    const std::string& name() const override { return name_; }
    bool tick() override { return false; }
    bool idle() const override { return false; }
    std::string debugState() const override { return "wedged waiting on nothing"; }

private:
    std::string name_ = "stuck";
};

TEST(Engine, RunsUntilAllIdle) {
    Engine engine;
    Worker a("a", 5);
    Worker b("b", 9);
    engine.add(a);
    engine.add(b);
    const std::uint64_t cycles = engine.runUntilIdle();
    EXPECT_EQ(cycles, 9u);  // the longest worker's busy cycles
    EXPECT_EQ(engine.now(), cycles);
}

TEST(Engine, DeadlockDetectedWithComponentNames) {
    Engine engine;
    Stuck stuck;
    engine.add(stuck);
    try {
        engine.runUntilIdle(1000, 50);
        FAIL() << "expected deadlock";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("stuck"), std::string::npos);
    }
}

TEST(Engine, DeadlockErrorCarriesStructuredReport) {
    Engine engine;
    Worker done("worker", 3);  // makes progress, then goes idle
    Stuck stuck;
    engine.add(done);
    engine.add(stuck);
    engine.addChannelWatch([] {
        DeadlockReport::ChannelState state;
        state.name = "x -> y";
        state.occupancy = 0;
        state.capacity = 8;
        state.empty = true;
        return state;
    });
    try {
        engine.runUntilIdle(10'000, 40);
        FAIL() << "expected deadlock";
    } catch (const DeadlockError& e) {
        const DeadlockReport& report = e.report();
        EXPECT_EQ(report.stallCycles, 40u);
        EXPECT_GE(report.cycle, 40u);
        // Only the stuck component counts as blocked; the idle worker does
        // not, but its last-progress cycle is still recorded.
        EXPECT_EQ(report.blockedComponents(), std::vector<std::string>{"stuck"});
        ASSERT_EQ(report.components.size(), 2u);
        EXPECT_EQ(report.components[0].name, "worker");
        EXPECT_TRUE(report.components[0].idle);
        EXPECT_EQ(report.components[0].lastProgressCycle, 2u);  // ticks at 0,1,2
        EXPECT_FALSE(report.components[1].idle);
        EXPECT_EQ(report.components[1].detail, "wedged waiting on nothing");
        ASSERT_EQ(report.channels.size(), 1u);
        EXPECT_EQ(report.channels[0].name, "x -> y");
        // what() is the rendered report: names, progress cycles, channels.
        const std::string what = e.what();
        EXPECT_NE(what.find("deadlock"), std::string::npos);
        EXPECT_NE(what.find("stuck"), std::string::npos);
        EXPECT_NE(what.find("wedged waiting on nothing"), std::string::npos);
        EXPECT_NE(what.find("x -> y"), std::string::npos);
        EXPECT_NE(what.find("EMPTY"), std::string::npos);
        // what() is the rendered report behind the subsystem prefix.
        EXPECT_NE(what.find(report.render()), std::string::npos);
    }
}

TEST(Engine, SnapshotCapturesCurrentState) {
    Engine engine;
    Worker w("w", 5);
    engine.add(w);
    engine.run(2);
    const DeadlockReport report = engine.snapshot();
    EXPECT_EQ(report.cycle, 2u);
    ASSERT_EQ(report.components.size(), 1u);
    EXPECT_EQ(report.components[0].name, "w");
    EXPECT_EQ(report.components[0].lastProgressCycle, 1u);  // ticks at 0,1
}

TEST(Engine, MaxCyclesExceededThrows) {
    Engine engine;
    Worker w("w", 1000);
    engine.add(w);
    EXPECT_THROW(engine.runUntilIdle(10), Error);
}

TEST(Engine, ProbesRunEveryCycle) {
    Engine engine;
    Worker w("w", 3);
    engine.add(w);
    int probes = 0;
    engine.addProbe([&] { ++probes; });
    const std::uint64_t cycles = engine.runUntilIdle();
    EXPECT_EQ(static_cast<std::uint64_t>(probes), cycles);
}

TEST(Engine, FixedRunIgnoresIdle) {
    Engine engine;
    Worker w("w", 2);
    engine.add(w);
    engine.run(20);
    EXPECT_EQ(engine.now(), 20u);
}

TEST(Engine, EmptyEngineQuiescesImmediately) {
    Engine engine;
    EXPECT_EQ(engine.runUntilIdle(), 1u);
}

} // namespace
} // namespace socgen::sim
