#include "socgen/common/error.hpp"
#include "socgen/hls/ir.hpp"
#include "socgen/hls/network.hpp"
#include "socgen/hls/verify.hpp"

#include <gtest/gtest.h>

namespace socgen::hls {
namespace {

Kernel tinyStreamKernel() {
    KernelBuilder kb("tiny");
    const PortId in = kb.streamIn("in", 8);
    const PortId out = kb.streamOut("out", 8);
    const VarId i = kb.var("i", 32);
    kb.forLoop(i, kb.c(16));
    kb.write(out, kb.add(kb.read(in), kb.c(1)));
    kb.endLoop();
    return kb.build();
}

TEST(KernelBuilder, SignatureAndBody) {
    const Kernel k = tinyStreamKernel();
    EXPECT_EQ(k.name(), "tiny");
    ASSERT_EQ(k.ports().size(), 2u);
    EXPECT_EQ(k.ports()[0].kind, PortKind::StreamIn);
    EXPECT_EQ(k.ports()[1].kind, PortKind::StreamOut);
    EXPECT_EQ(k.vars().size(), 1u);
    EXPECT_EQ(k.body().size(), 1u);  // the for loop
    EXPECT_EQ(k.stmt(k.body()[0]).kind, StmtKind::For);
    EXPECT_EQ(k.statementCount(), 2u);  // loop + write
    EXPECT_NO_THROW(verify(k));
}

TEST(KernelBuilder, PortLookup) {
    const Kernel k = tinyStreamKernel();
    EXPECT_TRUE(k.hasPort("in"));
    EXPECT_FALSE(k.hasPort("nope"));
    EXPECT_EQ(k.port(k.portId("out")).name, "out");
    EXPECT_THROW((void)k.portId("nope"), HlsError);
}

TEST(KernelBuilder, UnclosedScopeRejectedAtBuild) {
    KernelBuilder kb("bad");
    const VarId i = kb.var("i", 32);
    kb.forLoop(i, kb.c(4));
    EXPECT_THROW((void)kb.build(), HlsError);
}

TEST(KernelBuilder, EndLoopWithoutForThrows) {
    KernelBuilder kb("bad");
    EXPECT_THROW(kb.endLoop(), HlsError);
}

TEST(KernelBuilder, ElseWithoutIfThrows) {
    KernelBuilder kb("bad");
    EXPECT_THROW(kb.elseBegin(), HlsError);
    const VarId i = kb.var("i", 32);
    kb.forLoop(i, kb.c(4));
    EXPECT_THROW(kb.elseBegin(), HlsError);  // top of stack is a For
    kb.endLoop();
}

TEST(KernelBuilder, EndIfWithoutIfThrows) {
    KernelBuilder kb("bad");
    EXPECT_THROW(kb.endIf(), HlsError);
}

TEST(KernelBuilder, DoubleElseThrows) {
    KernelBuilder kb("bad");
    const VarId v = kb.var("v", 32);
    kb.ifBegin(kb.c(1));
    kb.elseBegin();
    EXPECT_THROW(kb.elseBegin(), HlsError);
    kb.assign(v, kb.c(0));
    kb.endIf();
}

TEST(KernelBuilder, BuildTwiceThrows) {
    KernelBuilder kb("k");
    const VarId v = kb.var("v", 32);
    kb.assign(v, kb.c(1));
    (void)kb.build();
    EXPECT_THROW((void)kb.build(), HlsError);
}

TEST(KernelBuilder, ArgRequiresScalarIn) {
    KernelBuilder kb("k");
    const PortId in = kb.streamIn("s", 8);
    EXPECT_THROW((void)kb.arg(in), HlsError);
}

TEST(KernelBuilder, ReadRequiresStreamIn) {
    KernelBuilder kb("k");
    const PortId a = kb.scalarIn("a", 32);
    EXPECT_THROW((void)kb.read(a), HlsError);
}

TEST(KernelBuilder, WriteRequiresStreamOut) {
    KernelBuilder kb("k");
    const PortId in = kb.streamIn("s", 8);
    EXPECT_THROW(kb.write(in, kb.c(1)), HlsError);
}

TEST(KernelBuilder, SetResultRequiresScalarOut) {
    KernelBuilder kb("k");
    const PortId a = kb.scalarIn("a", 32);
    EXPECT_THROW(kb.setResult(a, kb.c(1)), HlsError);
}

TEST(KernelBuilder, ZeroDepthArrayRejected) {
    KernelBuilder kb("k");
    EXPECT_THROW((void)kb.array("arr", 0, 32), HlsError);
}

TEST(KernelBuilder, IfElseStructure) {
    KernelBuilder kb("cond");
    const PortId a = kb.scalarIn("a", 32);
    const PortId r = kb.scalarOut("r", 32);
    const VarId v = kb.var("v", 32);
    kb.ifBegin(kb.gt(kb.arg(a), kb.c(10)));
    kb.assign(v, kb.c(1));
    kb.elseBegin();
    kb.assign(v, kb.c(2));
    kb.endIf();
    kb.setResult(r, kb.v(v));
    const Kernel k = kb.build();
    const Stmt& ifStmt = k.stmt(k.body()[0]);
    EXPECT_EQ(ifStmt.kind, StmtKind::If);
    EXPECT_EQ(ifStmt.body.size(), 1u);
    EXPECT_EQ(ifStmt.elseBody.size(), 1u);
    EXPECT_NO_THROW(verify(k));
}

TEST(Verify, DetectsDuplicatePortNames) {
    KernelBuilder kb("dup");
    (void)kb.streamIn("p", 8);
    (void)kb.streamOut("p", 8);
    const Kernel k = kb.build();
    EXPECT_THROW(verify(k), HlsError);
}

TEST(Verify, DetectsBadPortWidth) {
    KernelBuilder kb("w");
    (void)kb.scalarIn("a", 0);
    EXPECT_THROW(verify(kb.build()), HlsError);
}

TEST(PortKinds, Names) {
    EXPECT_EQ(portKindName(PortKind::ScalarIn), "scalar-in");
    EXPECT_EQ(portKindName(PortKind::StreamOut), "stream-out");
    EXPECT_TRUE(isStreamPort(PortKind::StreamIn));
    EXPECT_FALSE(isStreamPort(PortKind::ScalarOut));
}

TEST(KernelLibrary, AddLookupDuplicate) {
    KernelLibrary lib;
    lib.add(tinyStreamKernel());
    EXPECT_TRUE(lib.has("tiny"));
    EXPECT_FALSE(lib.has("other"));
    EXPECT_EQ(lib.get("tiny").name(), "tiny");
    EXPECT_EQ(lib.size(), 1u);
    EXPECT_THROW(lib.add(tinyStreamKernel()), HlsError);
    EXPECT_THROW((void)lib.get("other"), HlsError);
}

TEST(BinOps, Names) {
    EXPECT_EQ(binOpName(BinOp::Add), "add");
    EXPECT_EQ(binOpName(BinOp::Max), "max");
    EXPECT_EQ(binOpName(BinOp::Shr), "shr");
}

} // namespace
} // namespace socgen::hls
