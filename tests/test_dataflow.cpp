// Process-network node model (CTest label: dataflow): static network
// verification and deadlock detection, the runtime cosim watchdog with
// stalled-channel forensics, codec round-trips with a torn-payload
// sweep, per-process incremental synthesis through the flow's stage
// graph (edit one process, pay for one process), per-process DSE
// directive axes, the dataflow wrapper at gate level on both RTL
// backends, and network nodes hosted by the multi-tenant flow service.

#include "socgen/apps/dataflow.hpp"
#include "socgen/apps/image.hpp"
#include "socgen/apps/kernels.hpp"
#include "socgen/apps/otsu.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/hash.hpp"
#include "socgen/core/flow.hpp"
#include "socgen/core/parser.hpp"
#include "socgen/dse/explorer.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/hls/interpreter.hpp"
#include "socgen/hls/network.hpp"
#include "socgen/hls/serialize.hpp"
#include "socgen/rtl/primitives.hpp"
#include "socgen/rtl/sim_backend.hpp"
#include "socgen/svc/flow_service.hpp"
#include "netlist_gen.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace socgen {
namespace {

using hls::Kernel;
using hls::NetworkChannel;
using hls::ProcessNetwork;

// ---------------------------------------------------------------------------
// Shared fixtures

/// Vector-backed KernelIo: per-port input queues, per-port output logs,
/// ports addressed by index into the program's port table.
class VectorIo final : public hls::KernelIo {
public:
    std::map<hls::PortId, std::deque<std::uint64_t>> inputs;
    std::map<hls::PortId, std::vector<std::uint64_t>> outputs;
    std::map<hls::PortId, std::uint64_t> scalars;

    std::uint64_t argValue(hls::PortId port) override { return scalars[port]; }
    void setResult(hls::PortId port, std::uint64_t value) override {
        scalars[port] = value;
    }
    bool streamRead(hls::PortId port, std::uint64_t& value) override {
        auto& q = inputs[port];
        if (q.empty()) {
            return false;
        }
        value = q.front();
        q.pop_front();
        return true;
    }
    bool streamWrite(hls::PortId port, std::uint64_t value) override {
        outputs[port].push_back(value);
        return true;
    }
};

hls::PortId portIndex(const hls::Program& program, const std::string& name) {
    for (std::size_t i = 0; i < program.ports.size(); ++i) {
        if (program.ports[i].name == name) {
            return static_cast<hls::PortId>(i);
        }
    }
    throw Error("no port " + name);
}

/// A simple sink/source stream kernel used to build ad-hoc topologies.
Kernel passThroughKernel(std::string name, std::int64_t count, unsigned width = 32) {
    hls::KernelBuilder kb(std::move(name));
    const hls::PortId in = kb.streamIn("din", width);
    const hls::PortId out = kb.streamOut("dout", width);
    const hls::VarId i = kb.var("i", 32);
    kb.forLoop(i, kb.c(count));
    kb.write(out, kb.read(in));
    kb.endLoop();
    return kb.build();
}

/// Two pass-through processes in a feedback loop: a → b → a. With no
/// initial tokens anywhere the loop is a static deadlock.
ProcessNetwork feedbackLoop(std::uint32_t tokensOnBack, std::uint32_t backDepth = 4) {
    ProcessNetwork net("loop");
    net.addProcess("a", passThroughKernel("a", 8));
    net.addProcess("b", passThroughKernel("b", 8));
    net.connect(NetworkChannel{"fwd", "a", "dout", "b", "din", 32, 4, 0});
    net.connect(NetworkChannel{"back", "b", "dout", "a", "din", 32, backDepth,
                               tokensOnBack});
    return net;
}

// ---------------------------------------------------------------------------
// Trivial networks: the legacy single-kernel node is the one-process
// network, byte for byte.

TEST(TrivialNetwork, WrapsKernelWithIdentitySignature) {
    const ProcessNetwork net = ProcessNetwork::fromKernel(apps::makeAddKernel());
    EXPECT_TRUE(net.trivial());
    ASSERT_EQ(net.processes().size(), 1u);
    EXPECT_TRUE(net.channels().empty());
    EXPECT_NO_THROW(net.verify());
    const auto external = net.externalPorts();
    const auto kernelPorts = net.processes().front().kernel.ports();
    ASSERT_EQ(external.size(), kernelPorts.size());
    for (std::size_t i = 0; i < external.size(); ++i) {
        EXPECT_EQ(external[i].name, kernelPorts[i].name);
        EXPECT_EQ(external[i].kind, kernelPorts[i].kind);
        EXPECT_EQ(external[i].width, kernelPorts[i].width);
    }
}

TEST(TrivialNetwork, AssemblyReturnsProcessResultUnchanged) {
    const hls::HlsEngine engine;
    const Kernel kernel = apps::makeAddKernel();
    const hls::HlsResult direct = engine.synthesize(kernel, hls::Directives{});
    const hls::HlsResult viaNet =
        engine.synthesize(ProcessNetwork::fromKernel(kernel));
    EXPECT_EQ(direct.vhdl, viaNet.vhdl);
    EXPECT_EQ(direct.verilog, viaNet.verilog);
    EXPECT_EQ(hls::encodeHlsResult(direct), hls::encodeHlsResult(viaNet));
}

TEST(KernelLibrary, NetworkAndLegacyAccessors) {
    hls::KernelLibrary lib;
    lib.add(apps::makeAddKernel());
    lib.add(apps::makeStreamTriadNetwork(16));
    EXPECT_TRUE(lib.has("ADD"));
    EXPECT_TRUE(lib.has("streamTriad"));
    EXPECT_NO_THROW((void)lib.get("ADD"));
    EXPECT_TRUE(lib.network("ADD").trivial());
    EXPECT_FALSE(lib.network("streamTriad").trivial());
    // The legacy accessor refuses to flatten a real network.
    EXPECT_THROW((void)lib.get("streamTriad"), HlsError);
}

// ---------------------------------------------------------------------------
// Static verification: dangling / multiply-used ports, scalar channels,
// width mismatches, and the token-free-cycle deadlock check.

TEST(NetworkVerify, AcceptsTheExampleNetworks) {
    EXPECT_NO_THROW(apps::makeStreamTriadNetwork(64).verify());
    EXPECT_NO_THROW(apps::makeStreamPipelineNetwork(64).verify());
    EXPECT_NO_THROW(apps::makeOtsuDataflowNetwork(64, 64).verify());
}

TEST(NetworkVerify, DanglingPortRejected) {
    ProcessNetwork net("n");
    net.addProcess("p", passThroughKernel("p", 8));
    net.exportPort("din", "p", "din");
    // p.dout is neither on a channel nor exported.
    try {
        net.verify();
        FAIL() << "expected HlsError";
    } catch (const HlsError& e) {
        EXPECT_NE(std::string(e.what()).find("dangling"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("p.dout"), std::string::npos);
    }
}

TEST(NetworkVerify, MultiplyUsedPortRejected) {
    ProcessNetwork net = apps::makeStreamTriadNetwork(16);
    // "filter.dout" already feeds the "cooked" channel; exporting it too
    // would fan the stream out to two consumers.
    net.exportPort("tap", "filter", "dout");
    try {
        net.verify();
        FAIL() << "expected HlsError";
    } catch (const HlsError& e) {
        EXPECT_NE(std::string(e.what()).find("filter.dout"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("exactly once"), std::string::npos);
    }
}

TEST(NetworkVerify, ScalarPortCannotSitOnChannel) {
    ProcessNetwork net("n");
    net.addProcess("src", passThroughKernel("src", 8));
    {
        hls::KernelBuilder kb("snk");
        const hls::PortId a = kb.scalarIn("a", 32);
        const hls::PortId r = kb.scalarOut("r", 32);
        kb.setResult(r, kb.arg(a));
        net.addProcess("snk", kb.build());
    }
    net.exportPort("din", "src", "din");
    net.exportPort("r", "snk", "r");
    net.connect(NetworkChannel{"c", "src", "dout", "snk", "a", 32, 2, 0});
    try {
        net.verify();
        FAIL() << "expected HlsError";
    } catch (const HlsError& e) {
        EXPECT_NE(std::string(e.what()).find("not a stream input"), std::string::npos);
    }
}

TEST(NetworkVerify, ChannelWidthMustMatchPorts) {
    ProcessNetwork net("n");
    net.addProcess("a", passThroughKernel("a", 8, 32));
    net.addProcess("b", passThroughKernel("b", 8, 16));
    net.exportPort("din", "a", "din");
    net.exportPort("dout", "b", "dout");
    net.connect(NetworkChannel{"c", "a", "dout", "b", "din", 32, 2, 0});
    EXPECT_THROW(net.verify(), HlsError);
}

TEST(NetworkVerify, TokenFreeCycleIsStaticDeadlock) {
    const ProcessNetwork net = feedbackLoop(/*tokensOnBack=*/0);
    try {
        net.verify();
        FAIL() << "expected ChannelDeadlockError";
    } catch (const ChannelDeadlockError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("deadlock"), std::string::npos);
        // The report names the channels and processes on the cycle.
        ASSERT_EQ(e.channels().size(), 2u);
        EXPECT_NE(what.find("fwd"), std::string::npos);
        EXPECT_NE(what.find("back"), std::string::npos);
        ASSERT_EQ(e.processes().size(), 2u);
    }
}

TEST(NetworkVerify, InitialTokenBreaksTheCycle) {
    EXPECT_NO_THROW(feedbackLoop(/*tokensOnBack=*/1).verify());
}

TEST(NetworkVerify, InitialTokensBeyondDepthRejected) {
    try {
        feedbackLoop(/*tokensOnBack=*/5, /*backDepth=*/4).verify();
        FAIL() << "expected ChannelDeadlockError";
    } catch (const ChannelDeadlockError& e) {
        EXPECT_NE(std::string(e.what()).find("insufficient channel depth"),
                  std::string::npos);
        ASSERT_EQ(e.channels().size(), 1u);
        EXPECT_EQ(e.channels()[0], "back");
    }
}

// ---------------------------------------------------------------------------
// Network execution on the kernel VM: functional equivalence and the
// runtime deadlock watchdog.

TEST(NetworkVm, TriadChecksumMatchesReference) {
    constexpr std::int64_t kSamples = 500;
    const hls::HlsResult r =
        hls::HlsEngine{}.synthesize(apps::makeStreamTriadNetwork(kSamples));
    VectorIo io;
    hls::KernelVm vm(r.program, io);
    EXPECT_TRUE(vm.isNetwork());
    EXPECT_EQ(vm.processCount(), 3u);
    vm.start();
    while (!vm.finished()) {
        vm.tick();
        ASSERT_LT(vm.cycles(), 1'000'000u) << "triad network livelocked";
    }
    EXPECT_EQ(io.scalars[portIndex(r.program, "checksum")],
              apps::streamTriadChecksumRef(kSamples));
}

TEST(NetworkVm, PipelineBitIdenticalToFusedKernel) {
    constexpr std::int64_t kSamples = 96;
    const hls::HlsEngine engine;
    const hls::HlsResult fused =
        engine.synthesize(apps::makeFusedTriStageKernel(kSamples), hls::Directives{});
    const hls::HlsResult piped =
        engine.synthesize(apps::makeStreamPipelineNetwork(kSamples));

    std::vector<std::uint32_t> input;
    for (std::int64_t i = 0; i < kSamples; ++i) {
        input.push_back(static_cast<std::uint32_t>(0x9e3779b9u * (i + 1)));
    }
    const std::vector<std::uint32_t> expected = apps::triStageRef(input);

    std::vector<std::vector<std::uint64_t>> got;
    std::vector<std::uint64_t> cyclesTaken;
    for (const hls::HlsResult* r : {&fused, &piped}) {
        VectorIo io;
        auto& q = io.inputs[portIndex(r->program, "din")];
        for (const std::uint32_t v : input) {
            q.push_back(v);
        }
        hls::KernelVm vm(r->program, io);
        vm.start();
        while (!vm.finished()) {
            vm.tick();
            ASSERT_LT(vm.cycles(), 10'000'000u);
        }
        got.push_back(io.outputs[portIndex(r->program, "dout")]);
        cyclesTaken.push_back(vm.cycles());
    }
    ASSERT_EQ(got[0].size(), expected.size());
    ASSERT_EQ(got[1].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[0][i], expected[i]) << "fused sample " << i;
        EXPECT_EQ(got[1][i], expected[i]) << "piped sample " << i;
    }
    // The overlapped schedule must actually overlap: strictly fewer
    // cycles than the stage-at-a-time kernel (the 1.5x acceptance bar
    // lives in bench_dataflow; here we only pin the direction).
    EXPECT_LT(cyclesTaken[1], cyclesTaken[0]);
}

TEST(NetworkVm, OtsuDataflowMatchesSoftwareReference) {
    apps::RgbImage scene(16, 12);
    for (unsigned y = 0; y < 12; ++y) {
        for (unsigned x = 0; x < 16; ++x) {
            const bool fg = ((x / 4) + (y / 3)) % 2 == 0;
            scene.set(x, y, fg ? 210 : 25, fg ? 190 : 35, fg ? 150 : 45);
        }
    }
    const std::int64_t pixels = static_cast<std::int64_t>(scene.pixelCount());
    const hls::HlsResult r = hls::HlsEngine{}.synthesize(
        apps::makeOtsuDataflowNetwork(pixels, static_cast<std::uint32_t>(pixels)),
        apps::otsuDataflowDirectives());
    VectorIo io;
    auto& q = io.inputs[portIndex(r.program, "imageIn")];
    for (const std::uint32_t px : scene.packedPixels()) {
        q.push_back(px);
    }
    hls::KernelVm vm(r.program, io);
    vm.start();
    while (!vm.finished()) {
        vm.tick();
        ASSERT_LT(vm.cycles(), 50'000'000u);
    }
    const apps::GrayImage reference = apps::otsuFilterRef(scene);
    const auto& out = io.outputs[portIndex(r.program, "segmentedGrayImage")];
    ASSERT_EQ(out.size(), reference.pixelCount());
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], reference.pixels()[i]) << "pixel " << i;
    }
}

/// The cosim watchdog: the Otsu bypass channel must buffer the whole
/// image (the threshold only exists after the histogram pass), so an
/// under-provisioned depth is a guaranteed runtime deadlock. The VM must
/// diagnose it immediately — naming the stuck channel and embedding the
/// per-channel/per-process forensics — instead of spinning forever.
TEST(NetworkVm, RuntimeDeadlockNamesTheStarvedChannel) {
    apps::RgbImage scene(16, 12);
    for (unsigned y = 0; y < 12; ++y) {
        for (unsigned x = 0; x < 16; ++x) {
            scene.set(x, y, (x * 16) & 0xFF, (y * 20) & 0xFF, 128);
        }
    }
    const std::int64_t pixels = static_cast<std::int64_t>(scene.pixelCount());
    // Depth 4 << 192 pixels: grayScale jams on the bypass long before
    // the histogram finishes, and the whole network wedges.
    const hls::HlsResult r = hls::HlsEngine{}.synthesize(
        apps::makeOtsuDataflowNetwork(pixels, 4), apps::otsuDataflowDirectives());
    VectorIo io;
    auto& q = io.inputs[portIndex(r.program, "imageIn")];
    for (const std::uint32_t px : scene.packedPixels()) {
        q.push_back(px);
    }
    hls::KernelVm vm(r.program, io);
    vm.start();
    try {
        for (int cycle = 0; cycle < 10'000'000 && !vm.finished(); ++cycle) {
            vm.tick();
        }
        FAIL() << "expected ChannelDeadlockError";
    } catch (const ChannelDeadlockError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("grayToSeg"), std::string::npos) << what;
        EXPECT_NE(what.find("stall state"), std::string::npos) << what;
        EXPECT_NE(what.find("blocked on channel"), std::string::npos) << what;
        ASSERT_FALSE(e.channels().empty());
        ASSERT_FALSE(e.processes().empty());
    }
}

TEST(NetworkVm, StallReportShowsChannelOccupancy) {
    const hls::HlsResult r =
        hls::HlsEngine{}.synthesize(apps::makeStreamPipelineNetwork(32));
    VectorIo io;  // no input: stage0 blocks on the external din port
    hls::KernelVm vm(r.program, io);
    vm.start();
    for (int cycle = 0; cycle < 20; ++cycle) {
        vm.tick();  // must NOT throw: an externally blocked process can
                    // always be unblocked by more stimulus
    }
    EXPECT_TRUE(vm.running());
    const std::string report = vm.networkStallReport();
    EXPECT_NE(report.find("channel"), std::string::npos);
    EXPECT_NE(report.find("s01"), std::string::npos);
    EXPECT_NE(report.find("blocked on external port 'din'"), std::string::npos)
        << report;
}

// ---------------------------------------------------------------------------
// Serialization: round-trips, fingerprints, and the torn-payload sweep.

/// Deterministic pseudo-random pipeline topologies (no feedback, so
/// verify() always passes): 2..5 stages, mixed widths and depths, a few
/// initial tokens sprinkled in.
ProcessNetwork randomPipeline(std::uint64_t seed) {
    testing::SplitMix64 rng(seed ^ 0xdf0d9e1a2b3c4d5eULL);
    const std::size_t stages = 2 + rng.below(4);
    ProcessNetwork net("fuzz" + std::to_string(seed));
    for (std::size_t s = 0; s < stages; ++s) {
        net.addProcess("p" + std::to_string(s),
                       apps::makeStreamStageKernel("p" + std::to_string(s),
                                                   8 + static_cast<std::int64_t>(rng.below(56)),
                                                   static_cast<std::int64_t>(rng.below(100))));
    }
    for (std::size_t s = 0; s + 1 < stages; ++s) {
        const std::uint32_t depth = 1 + static_cast<std::uint32_t>(rng.below(15));
        net.connect(NetworkChannel{"c" + std::to_string(s), "p" + std::to_string(s),
                                   "dout", "p" + std::to_string(s + 1), "din", 32, depth,
                                   static_cast<std::uint32_t>(rng.below(depth + 1))});
    }
    net.exportPort("din", "p0", "din");
    net.exportPort("dout", "p" + std::to_string(stages - 1), "dout");
    return net;
}

TEST(NetworkCodec, RoundTripFuzz) {
    for (std::uint64_t seed = 0; seed < 24; ++seed) {
        const ProcessNetwork net = randomPipeline(seed);
        const std::string bytes = hls::encodeProcessNetwork(net);
        const ProcessNetwork back = hls::decodeProcessNetwork(bytes);
        // Re-encoding the decode must be byte-identical, and the content
        // fingerprint must survive the trip.
        EXPECT_EQ(hls::encodeProcessNetwork(back), bytes) << "seed " << seed;
        const Digest128 a = hls::fingerprintNetwork(net);
        const Digest128 b = hls::fingerprintNetwork(back);
        EXPECT_EQ(a.hi, b.hi);
        EXPECT_EQ(a.lo, b.lo);
    }
}

TEST(NetworkCodec, OtsuNetworkRoundTrips) {
    const ProcessNetwork net = apps::makeOtsuDataflowNetwork(4096, 4096);
    const std::string bytes = hls::encodeProcessNetwork(net);
    const ProcessNetwork back = hls::decodeProcessNetwork(bytes);
    EXPECT_EQ(back.name(), "otsuDataflow");
    ASSERT_EQ(back.processes().size(), 4u);
    EXPECT_EQ(back.processes()[0].name, "grayScale");
    ASSERT_EQ(back.channels().size(), 4u);
    EXPECT_EQ(back.channels()[3].depth, 4096u);
    EXPECT_EQ(hls::encodeProcessNetwork(back), bytes);
}

/// Torn payloads: every proper prefix of a valid encoding must be
/// rejected with a typed error — never a crash, never a silently
/// half-decoded network (mirrors the flow-journal truncation sweep).
TEST(NetworkCodec, TruncationSweepEveryByteOffset) {
    const std::string bytes =
        hls::encodeProcessNetwork(apps::makeStreamTriadNetwork(32));
    ASSERT_GT(bytes.size(), 64u);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        EXPECT_THROW((void)hls::decodeProcessNetwork(std::string_view(bytes).substr(0, cut)),
                     CodecError)
            << "prefix of " << cut << " bytes decoded";
    }
    // Trailing garbage is framing damage too (expectEnd).
    EXPECT_THROW((void)hls::decodeProcessNetwork(bytes + '\0'), CodecError);
}

/// Bit-rot sweep: flipping one byte at every offset must either still
/// decode to a structurally valid network or throw a typed error; any
/// other exception (or a crash) fails the test. This is the wire
/// protocol's guarantee to the worker fleet: malformed networks are
/// rejected with named errors, not propagated.
TEST(NetworkCodec, CorruptionSweepNeverCrashes) {
    const std::string bytes =
        hls::encodeProcessNetwork(apps::makeStreamTriadNetwork(8));
    std::size_t rejected = 0;
    for (std::size_t at = 0; at < bytes.size(); ++at) {
        std::string mutated = bytes;
        mutated[at] = static_cast<char>(mutated[at] ^ 0x40);
        try {
            const ProcessNetwork net = hls::decodeProcessNetwork(mutated);
            EXPECT_NO_THROW(net.verify());  // decode already verified
        } catch (const CodecError&) {
            ++rejected;
        } catch (const ChannelDeadlockError&) {
            ++rejected;
        } catch (const HlsError&) {
            ++rejected;
        }
    }
    // A healthy share of single-byte flips hits framing or semantic
    // checks; many flips land in string payloads (names survive as
    // different-but-valid identifiers) and decode fine, which is
    // acceptable — the guarantee is "typed rejection or valid network",
    // not a rejection rate.
    EXPECT_GT(rejected, bytes.size() / 4);
}

TEST(NetworkCodec, DecodeRefusesStructurallyBrokenNetworks) {
    // encode() does not verify, so a builder bug (or hostile peer) can
    // put a dangling-port network on the wire — decode must refuse it.
    ProcessNetwork broken("broken");
    broken.addProcess("p", passThroughKernel("p", 8));
    broken.exportPort("din", "p", "din");  // p.dout left dangling
    const std::string bytes = hls::encodeProcessNetwork(broken);
    try {
        (void)hls::decodeProcessNetwork(bytes);
        FAIL() << "expected HlsError";
    } catch (const HlsError& e) {
        EXPECT_NE(std::string(e.what()).find("dangling"), std::string::npos);
    }
}

TEST(NetworkCodec, FingerprintSeparatesTopologyFromContent) {
    const ProcessNetwork a = apps::makeStreamPipelineNetwork(64);
    ProcessNetwork b = apps::makeStreamPipelineNetwork(64);
    const Digest128 fa = hls::fingerprintNetwork(a);
    const Digest128 fb = hls::fingerprintNetwork(b);
    EXPECT_EQ(fa.hi, fb.hi);
    EXPECT_EQ(fa.lo, fb.lo);
    // A depth change alone must change the fingerprint (it changes the
    // generated FIFO), even though every kernel is identical.
    ProcessNetwork c("triStagePipe");
    for (const auto& p : a.processes()) {
        c.addProcess(p.name, p.kernel);
    }
    c.connect(NetworkChannel{"s01", "stage0", "dout", "stage1", "din", 32, 16, 0});
    c.connect(NetworkChannel{"s12", "stage1", "dout", "stage2", "din", 32, 8, 0});
    c.exportPort("din", "stage0", "din");
    c.exportPort("dout", "stage2", "dout");
    const Digest128 fc = hls::fingerprintNetwork(c);
    EXPECT_TRUE(fc.hi != fa.hi || fc.lo != fa.lo);
}

// ---------------------------------------------------------------------------
// Flow integration: a network node through the full stage graph.

core::TaskGraph pipelineGraph() {
    constexpr const char* dsl = R"(
object dataflow extends App {
  tg nodes;
    tg node "triStagePipe" is "din" is "dout" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("triStagePipe","din") end;
    tg link ("triStagePipe","dout") to 'soc end;
  tg end_edges;
}
)";
    return core::parseDsl(dsl).graph;
}

hls::KernelLibrary pipelineKernels(std::int64_t samples = 64) {
    hls::KernelLibrary lib;
    lib.add(apps::makeStreamPipelineNetwork(samples));
    return lib;
}

TEST(NetworkFlow, StageGraphSynthesizesEveryProcess) {
    const hls::KernelLibrary kernels = pipelineKernels();
    core::Flow flow(core::FlowOptions{}, kernels);
    const core::FlowResult result = flow.run("dataflow_basic", pipelineGraph());

    ASSERT_EQ(result.hlsResults.count("triStagePipe"), 1u);
    EXPECT_TRUE(result.programs.at("triStagePipe").isNetwork());
    const core::FlowDiagnostics& diag = result.diagnostics;
    ASSERT_EQ(diag.nodes.size(), 1u);
    const auto& node = diag.nodes[0];
    EXPECT_FALSE(node.degraded);
    ASSERT_EQ(node.processes.size(), 3u);
    EXPECT_EQ(node.processes[0].process, "stage0");
    EXPECT_EQ(node.processes[1].process, "stage1");
    EXPECT_EQ(node.processes[2].process, "stage2");
    for (const auto& p : node.processes) {
        EXPECT_FALSE(p.degraded);
        EXPECT_EQ(p.attempts, 1u);
        EXPECT_FALSE(p.artifactKey.empty());
    }
    EXPECT_EQ(diag.processEngineRuns(), 3u);
    EXPECT_EQ(diag.processCacheHits(), 0u);
    // Per-process stages are first-class rows of the stage table, and
    // the render shows the per-process sub-lines.
    bool sawProcessStage = false;
    for (const auto& stage : diag.stages) {
        sawProcessStage |= stage.stage == "hls:triStagePipe/stage1";
    }
    EXPECT_TRUE(sawProcessStage);
    EXPECT_NE(diag.render().find("triStagePipe/stage1"), std::string::npos);
}

/// Satellite (f): editing ONE process re-synthesizes exactly that
/// process — the same 3/1/0 contract test_dse pins for whole kernels,
/// here at process granularity through the shared HlsCache.
TEST(NetworkFlow, EditingOneProcessResynthesizesOnlyIt) {
    const auto cache = std::make_shared<core::HlsCache>();
    core::FlowOptions options;
    options.runSynthesis = false;
    options.generateSoftware = false;

    // Cold: all three processes hit the engine.
    const hls::KernelLibrary v1 = pipelineKernels();
    const core::FlowResult r1 =
        core::Flow(options, v1, cache).run("edit_one_a", pipelineGraph());
    EXPECT_EQ(r1.diagnostics.processEngineRuns(), 3u);
    EXPECT_EQ(r1.diagnostics.processCacheHits(), 0u);

    // Same network again: fully cached, zero engine runs.
    const core::FlowResult r2 =
        core::Flow(options, v1, cache).run("edit_one_b", pipelineGraph());
    EXPECT_EQ(r2.diagnostics.processEngineRuns(), 0u);
    EXPECT_EQ(r2.diagnostics.processCacheHits(), 3u);

    // "Edit" stage1 (different addend => different kernel fingerprint):
    // exactly one process re-synthesizes, the neighbours stay cached.
    hls::KernelLibrary v2;
    {
        ProcessNetwork net("triStagePipe");
        net.addProcess("stage0", apps::makeStreamStageKernel("stage0", 64, 1));
        net.addProcess("stage1", apps::makeStreamStageKernel("stage1", 64, 7));
        net.addProcess("stage2", apps::makeStreamStageKernel("stage2", 64, 9));
        net.connect(NetworkChannel{"s01", "stage0", "dout", "stage1", "din", 32, 8, 0});
        net.connect(NetworkChannel{"s12", "stage1", "dout", "stage2", "din", 32, 8, 0});
        net.exportPort("din", "stage0", "din");
        net.exportPort("dout", "stage2", "dout");
        v2.add(std::move(net));
    }
    const core::FlowResult r3 =
        core::Flow(options, v2, cache).run("edit_one_c", pipelineGraph());
    EXPECT_EQ(r3.diagnostics.processEngineRuns(), 1u);
    EXPECT_EQ(r3.diagnostics.processCacheHits(), 2u);
    ASSERT_EQ(r3.diagnostics.nodes.size(), 1u);
    EXPECT_TRUE(r3.diagnostics.nodes[0].processes[0].cacheHit);
    EXPECT_FALSE(r3.diagnostics.nodes[0].processes[1].cacheHit);
    EXPECT_TRUE(r3.diagnostics.nodes[0].processes[2].cacheHit);
}

TEST(NetworkFlow, ScalarNetworkNodeOverAxiLite) {
    constexpr const char* dsl = R"(
object triad extends App {
  tg nodes;
    tg node "streamTriad" i "checksum" end;
  tg end_nodes;
  tg edges;
    tg connect "streamTriad";
  tg end_edges;
}
)";
    hls::KernelLibrary lib;
    lib.add(apps::makeStreamTriadNetwork(64));
    core::Flow flow(core::FlowOptions{}, lib);
    const core::FlowResult result =
        flow.run("dataflow_triad", core::parseDsl(dsl).graph);
    EXPECT_FALSE(result.diagnostics.anyDegraded());
    EXPECT_EQ(result.diagnostics.processEngineRuns(), 3u);
}

TEST(NetworkFlow, StaticDeadlockAbortsInsteadOfDegrading) {
    constexpr const char* dsl = R"(
object loop extends App {
  tg nodes;
    tg node "loop" is "x" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("loop","x") end;
  tg end_edges;
}
)";
    hls::KernelLibrary lib;
    lib.add(feedbackLoop(/*tokensOnBack=*/0));
    core::Flow flow(core::FlowOptions{}, lib);
    // A deadlocked topology is a design error like a DSL mismatch: the
    // flow must refuse to run it, not degrade the node to software.
    EXPECT_THROW((void)flow.run("dataflow_loop", core::parseDsl(dsl).graph),
                 ChannelDeadlockError);
}

TEST(NetworkFlow, InterfaceMismatchStillNamedPerPort) {
    constexpr const char* dsl = R"(
object bad extends App {
  tg nodes;
    tg node "triStagePipe" is "din" is "nope" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("triStagePipe","din") end;
    tg link ("triStagePipe","nope") to 'soc end;
  tg end_edges;
}
)";
    const hls::KernelLibrary kernels = pipelineKernels();
    core::Flow flow(core::FlowOptions{}, kernels);
    try {
        (void)flow.run("dataflow_badport", core::parseDsl(dsl).graph);
        FAIL() << "expected DslError";
    } catch (const DslError& e) {
        EXPECT_NE(std::string(e.what()).find("no port 'nope'"), std::string::npos);
    }
}

TEST(NetworkFlow, JobsParityBitIdentical) {
    std::vector<std::string> digests;
    std::vector<std::string> renders;
    for (const unsigned jobs : {1u, 4u}) {
        core::FlowOptions options;
        options.jobs = jobs;
        const hls::KernelLibrary kernels = pipelineKernels();
        core::Flow flow(options, kernels);
        const core::FlowResult result =
            flow.run("dataflow_jobs", pipelineGraph());
        digests.push_back(digest128(result.bitstream.serialize()).hex());
        renders.push_back(result.diagnostics.render());
    }
    EXPECT_EQ(digests[0], digests[1]);
    EXPECT_EQ(renders[0], renders[1]);
}

/// Fault injection by node name must take the whole network down: every
/// process attempt fails, and with the Degrade policy the node (not the
/// flow) reports the failure, per-process records included.
TEST(NetworkFlow, InjectedFailureDegradesWholeNode) {
    core::FlowOptions options;
    options.runSynthesis = false;
    options.generateSoftware = false;
    options.injectHlsFailures.insert("triStagePipe");
    const hls::KernelLibrary kernels = pipelineKernels();
    core::Flow flow(options, kernels);
    const core::FlowResult result =
        flow.run("dataflow_inject", pipelineGraph());
    ASSERT_EQ(result.diagnostics.nodes.size(), 1u);
    const auto& node = result.diagnostics.nodes[0];
    EXPECT_TRUE(node.degraded);
    ASSERT_EQ(node.processes.size(), 3u);
    for (const auto& p : node.processes) {
        EXPECT_TRUE(p.degraded) << p.process;
        EXPECT_FALSE(p.error.empty());
    }
    EXPECT_EQ(result.hlsResults.count("triStagePipe"), 0u);
}

// ---------------------------------------------------------------------------
// DSE: per-process directive axes ("node/process" keys).

TEST(NetworkDse, PerProcessDirectiveAxis) {
    const hls::KernelLibrary kernels = pipelineKernels();

    dse::DirectiveVariant base;
    base.name = "base";
    dse::DirectiveVariant perProcess;
    perProcess.name = "unroll-stage1";
    perProcess.kernelDirectives["triStagePipe/stage1"].unrollFactors["i"] = 4;

    core::FlowOptions options;
    options.runSynthesis = false;
    options.generateSoftware = false;
    dse::Explorer explorer(options, kernels);
    const auto outcomes =
        explorer.sweep("dataflow_dse", pipelineGraph(), {base, perProcess});
    ASSERT_EQ(outcomes.size(), 2u);

    EXPECT_EQ(outcomes[0].result.diagnostics.processEngineRuns(), 3u);
    // Scoping the directive to one process invalidates exactly that
    // process's artifact key: one engine run, two cache hits.
    EXPECT_EQ(outcomes[1].result.diagnostics.processEngineRuns(), 1u);
    EXPECT_EQ(outcomes[1].result.diagnostics.processCacheHits(), 2u);
    // And the variant's netlists genuinely differ for the re-synthesized
    // node result.
    EXPECT_NE(outcomes[0].result.hlsResults.at("triStagePipe").vhdl,
              outcomes[1].result.hlsResults.at("triStagePipe").vhdl);
}

// ---------------------------------------------------------------------------
// Gate level: the FIFO primitive and the assembled dataflow wrapper on
// both RTL backends, plus a batched-cosim sweep over the wrapper.

/// Streams `values` through a netlist with in_/out_ AXI-Stream faces
/// (the FIFO primitive), returning what came out the read face.
std::vector<std::uint64_t> pumpFifo(rtl::Simulator& sim,
                                    const std::vector<std::uint64_t>& values,
                                    std::size_t expectOut, bool throttleReader) {
    std::vector<std::uint64_t> out;
    std::size_t fed = 0;
    for (int cycle = 0; cycle < 4096 && out.size() < expectOut; ++cycle) {
        const bool readerReady = !throttleReader || cycle % 3 == 0;
        sim.setInput("in_tvalid", fed < values.size() ? 1 : 0);
        sim.setInput("in_tdata", fed < values.size() ? values[fed] : 0);
        sim.setInput("out_tready", readerReady ? 1 : 0);
        sim.evaluate();
        const bool pushed = fed < values.size() && sim.output("in_tready") != 0;
        const bool popped = readerReady && sim.output("out_tvalid") != 0;
        const std::uint64_t popData = sim.output("out_tdata");
        sim.step();
        if (pushed) {
            ++fed;
        }
        if (popped) {
            out.push_back(popData);
        }
    }
    return out;
}

TEST(FifoPrimitive, FirstInFirstOutOnBothBackends) {
    const rtl::Netlist fifo = rtl::makeFifo("f", 16, 4);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 40; ++i) {
        values.push_back(static_cast<std::uint64_t>((i * 7919) & 0xFFFF));
    }
    for (const rtl::SimBackend backend :
         {rtl::SimBackend::EventDriven, rtl::SimBackend::Compiled}) {
        const auto sim = rtl::makeSimulator(fifo, backend);
        const auto out = pumpFifo(*sim, values, values.size(), /*throttleReader=*/true);
        ASSERT_EQ(out.size(), values.size()) << sim->backendName();
        EXPECT_EQ(out, values) << sim->backendName();
    }
}

TEST(FifoPrimitive, InitialTokensReadAsQueuedZeros) {
    const rtl::Netlist fifo = rtl::makeFifo("f", 8, 4, 2);
    const auto sim = rtl::makeSimulator(fifo, rtl::SimBackend::EventDriven);
    const std::vector<std::uint64_t> values{0xA5, 0x3C};
    const auto out = pumpFifo(*sim, values, values.size() + 2, false);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 0u);
    EXPECT_EQ(out[1], 0u);
    EXPECT_EQ(out[2], 0xA5u);
    EXPECT_EQ(out[3], 0x3Cu);
}

TEST(FifoPrimitive, BackpressuresWhenFull) {
    const rtl::Netlist fifo = rtl::makeFifo("f", 8, 2);
    const auto sim = rtl::makeSimulator(fifo, rtl::SimBackend::EventDriven);
    sim->setInput("in_tvalid", 1);
    sim->setInput("in_tdata", 1);
    sim->setInput("out_tready", 0);
    int accepted = 0;
    for (int cycle = 0; cycle < 16; ++cycle) {
        sim->evaluate();
        if (sim->output("in_tready") != 0) {
            ++accepted;
        }
        sim->step();
    }
    EXPECT_EQ(accepted, 2);  // exactly `depth` pushes, then tready drops
}

/// Runs the assembled wrapper netlist end to end at gate level: drive
/// the external AXI-Stream handshakes cycle-accurately and collect the
/// output stream until ap_done.
struct WrapperRun {
    std::vector<std::uint64_t> out;
    bool done = false;
    int doneCycle = -1;
};

WrapperRun cosimWrapper(const rtl::Netlist& netlist, rtl::SimBackend backend,
                        const std::vector<std::uint32_t>& input) {
    const auto simPtr = rtl::makeSimulator(netlist, backend);
    rtl::Simulator& sim = *simPtr;
    WrapperRun run;
    std::size_t fed = 0;
    sim.setInput("ap_start", 1);
    for (int cycle = 0; cycle < 10'000; ++cycle) {
        sim.setInput("din_tvalid", fed < input.size() ? 1 : 0);
        sim.setInput("din_tdata", fed < input.size() ? input[fed] : 0);
        sim.setInput("dout_tready", 1);
        sim.evaluate();
        const bool pushed = fed < input.size() && sim.output("din_tready") != 0;
        const bool popped = sim.output("dout_tvalid") != 0;
        const std::uint64_t popData = sim.output("dout_tdata");
        const bool done = sim.output("ap_done") != 0;
        sim.step();
        if (pushed) {
            ++fed;
        }
        if (popped) {
            run.out.push_back(popData);
        }
        if (done) {
            run.done = true;
            run.doneCycle = cycle;
            break;
        }
    }
    return run;
}

/// Gate-level arithmetic on a single process core: the external stream
/// feeds the core directly, so the one beat its saturating-schedule FSM
/// consumes is the testbench's first sample and the emitted beat must
/// be the stage transform of it, on both backends.
TEST(NetworkRtl, SingleCoreComputesTheBeatItConsumes) {
    const hls::HlsResult core = hls::HlsEngine{}.synthesize(
        hls::ProcessNetwork::fromKernel(apps::makeStreamStageKernel("s", 8, 5)));
    const std::vector<std::uint32_t> input{41, 7, 9};
    for (const rtl::SimBackend backend :
         {rtl::SimBackend::EventDriven, rtl::SimBackend::Compiled}) {
        const WrapperRun run = cosimWrapper(core.netlist, backend, input);
        ASSERT_TRUE(run.done) << "backend " << rtl::simBackendName(backend);
        ASSERT_EQ(run.out.size(), 1u) << "backend " << rtl::simBackendName(backend);
        EXPECT_EQ(run.out.front(), (41u + 5u) * 3u)
            << "backend " << rtl::simBackendName(backend);
    }
}

/// End-to-end wrapper cosim. The control FSM in generated cores is the
/// repo-wide saturating-schedule placeholder (it walks the schedule
/// once on a fixed cycle count; it neither re-iterates loop trip counts
/// nor stalls on FIFO state), so the wrapper's gate-level contract is
/// structural: exactly one beat emerges from the chain of three cores
/// and two FIFOs, every core saturates, the AND-tree raises ap_done,
/// and the whole run is byte-identical across backends. Multi-beat
/// functional behaviour (full streams, overlap, bit-identity with the
/// fused kernel) is pinned by the NetworkVm suite above; cycle-level
/// backend equivalence by WrapperBackendsAgreeUnderRandomStimulus.
TEST(NetworkRtl, WrapperCosimFlowsOneBeatThroughEveryCore) {
    const hls::HlsResult piped =
        hls::HlsEngine{}.synthesize(apps::makeStreamPipelineNetwork(24));
    // The wrapper exposes the single-kernel port conventions, so the SoC
    // integration layer can host it blindly.
    EXPECT_TRUE(piped.netlist.hasPort("ap_start"));
    EXPECT_TRUE(piped.netlist.hasPort("ap_done"));
    EXPECT_TRUE(piped.netlist.hasPort("din_tdata"));
    EXPECT_TRUE(piped.netlist.hasPort("dout_tvalid"));

    std::vector<std::uint32_t> input;
    for (std::int64_t i = 0; i < 24; ++i) {
        input.push_back(static_cast<std::uint32_t>(i * 11 + 3));
    }
    WrapperRun first;
    for (const rtl::SimBackend backend :
         {rtl::SimBackend::EventDriven, rtl::SimBackend::Compiled}) {
        const WrapperRun run = cosimWrapper(piped.netlist, backend, input);
        ASSERT_TRUE(run.done) << "backend " << rtl::simBackendName(backend);
        EXPECT_EQ(run.out.size(), 1u) << "backend " << rtl::simBackendName(backend);
        if (backend == rtl::SimBackend::EventDriven) {
            first = run;
        } else {
            EXPECT_EQ(run.out, first.out);
            EXPECT_EQ(run.doneCycle, first.doneCycle);
        }
    }
}

/// Backend lockstep under adversarial (non-protocol) stimulus: random
/// handshake wiggling must produce identical outputs cycle for cycle on
/// the event-driven and compiled engines — the FIFO primitive and the
/// wrapper glue lower identically on both.
TEST(NetworkRtl, WrapperBackendsAgreeUnderRandomStimulus) {
    const hls::HlsResult piped =
        hls::HlsEngine{}.synthesize(apps::makeStreamPipelineNetwork(16));
    const auto ev = rtl::makeSimulator(piped.netlist, rtl::SimBackend::EventDriven);
    const auto cp = rtl::makeSimulator(piped.netlist, rtl::SimBackend::Compiled);
    testing::SplitMix64 rng(0xdf01);
    for (int cycle = 0; cycle < 400; ++cycle) {
        for (const auto& port : piped.netlist.ports()) {
            if (port.dir != rtl::PortDir::In) {
                continue;
            }
            const std::uint64_t value = port.name == "ap_start"
                                            ? 1
                                            : rng.below(port.name.ends_with("_tdata")
                                                            ? 0x100000000ULL
                                                            : 2ULL);
            ev->setInput(port.name, value);
            cp->setInput(port.name, value);
        }
        ev->step();
        cp->step();
        ev->evaluate();
        cp->evaluate();
        for (const auto& port : piped.netlist.ports()) {
            if (port.dir == rtl::PortDir::Out) {
                ASSERT_EQ(ev->output(port.name), cp->output(port.name))
                    << port.name << " diverged at cycle " << cycle;
            }
        }
    }
}

TEST(NetworkRtl, BatchCosimSweepsWrapperLanes) {
    const hls::HlsResult piped =
        hls::HlsEngine{}.synthesize(apps::makeStreamPipelineNetwork(8));
    std::vector<dse::CosimScenario> scenarios;
    for (int lane = 0; lane < 4; ++lane) {
        dse::CosimScenario s;
        s.name = "lane" + std::to_string(lane);
        s.inputs["ap_start"] = 1;
        s.inputs["din_tvalid"] = 1;
        s.inputs["din_tdata"] = static_cast<std::uint64_t>(10 * lane + 1);
        s.inputs["dout_tready"] = 1;
        scenarios.push_back(std::move(s));
    }
    const auto lanes =
        dse::batchCosim(piped.netlist, scenarios, "ap_done", 4096);
    ASSERT_EQ(lanes.size(), scenarios.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        EXPECT_FALSE(lanes[i].faulted) << lanes[i].faultMessage;
        EXPECT_TRUE(lanes[i].done) << lanes[i].scenario;
        // Identical netlist + schedule on every lane: data differs but
        // the control walk is lockstep, so all lanes finish together.
        // (Output values are sampled at the finish moment, after
        // dout_tvalid has dropped, so lane data is checked by the
        // scalar cosim test above rather than here.)
        EXPECT_EQ(lanes[i].doneCycle, lanes[0].doneCycle) << lanes[i].scenario;
    }
    // Deterministic across invocations (batch parity is pinned by the
    // diff-sim suite; this pins the wrapper's use of it).
    const auto again =
        dse::batchCosim(piped.netlist, scenarios, "ap_done", 4096);
    ASSERT_EQ(again.size(), lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        EXPECT_EQ(again[i].doneCycle, lanes[i].doneCycle);
        EXPECT_EQ(again[i].outputs, lanes[i].outputs);
    }
}

// ---------------------------------------------------------------------------
// Flow service: network nodes across tenants on the shared pool (the CI
// job re-runs this suite with SOCGEN_SVC_WORKERS=2 so the same flows
// also cross the worker-fleet wire protocol).

TEST(NetworkService, TenantsShareProcessGranularSynthesis) {
    const std::string root = ::testing::TempDir() + "/socgen_dataflow_svc";
    std::filesystem::remove_all(root);
    svc::ServiceConfig config;
    config.rootDir = root;
    config.stageWorkers = 4;
    config.flowRunners = 2;

    const hls::KernelLibrary kernels = pipelineKernels();
    // Reference digest from a standalone run of the same project.
    const core::FlowResult reference =
        core::Flow(core::FlowOptions{}, kernels).run("svc_net", pipelineGraph());
    const std::string referenceDigest =
        digest128(reference.bitstream.serialize()).hex();

    svc::FlowService service(config, kernels);
    std::vector<svc::FlowHandle> handles;
    for (int t = 0; t < 2; ++t) {
        svc::FlowRequest request;
        request.tenant = "tenant" + std::to_string(t);
        request.project = "svc_net";
        request.graph = pipelineGraph();
        handles.push_back(service.submit(request));
    }
    std::size_t engineRuns = 0;
    for (const svc::FlowHandle& handle : handles) {
        const svc::RequestOutcome outcome = handle.wait();
        ASSERT_EQ(outcome.state, svc::RequestState::Completed) << outcome.error;
        EXPECT_EQ(outcome.bitstreamDigest, referenceDigest);
        EXPECT_FALSE(outcome.diagnostics.anyDegraded());
        engineRuns += outcome.diagnostics.processEngineRuns();
    }
    // Three unique processes service-wide: the second tenant reuses the
    // first tenant's per-process artifacts (warm or in-flight).
    EXPECT_EQ(engineRuns, 3u);
    std::filesystem::remove_all(root);
}

} // namespace
} // namespace socgen
