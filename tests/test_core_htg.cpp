#include "socgen/apps/otsu_project.hpp"
#include "socgen/common/error.hpp"
#include "socgen/core/htg.hpp"
#include "socgen/core/parser.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace socgen::core {
namespace {

TaskGraph pipelineGraph() {
    TaskGraph tg;
    tg.addNode(TgNode{"A",
                      {TgPort{"in", hls::InterfaceProtocol::AxiStream},
                       TgPort{"out", hls::InterfaceProtocol::AxiStream}}});
    tg.addNode(TgNode{"B",
                      {TgPort{"in", hls::InterfaceProtocol::AxiStream},
                       TgPort{"out", hls::InterfaceProtocol::AxiStream}}});
    tg.addNode(TgNode{"C", {TgPort{"x", hls::InterfaceProtocol::AxiLite}}});
    tg.addLink(TgLink{TgEndpoint::socEnd(), TgEndpoint::of("A", "in")});
    tg.addLink(TgLink{TgEndpoint::of("A", "out"), TgEndpoint::of("B", "in")});
    tg.addLink(TgLink{TgEndpoint::of("B", "out"), TgEndpoint::socEnd()});
    tg.addConnect(TgConnect{"C"});
    return tg;
}

TEST(TaskGraph, ValidGraphPasses) {
    EXPECT_NO_THROW(pipelineGraph().validate());
}

TEST(TaskGraph, DuplicateNodeRejected) {
    TaskGraph tg;
    tg.addNode(TgNode{"A", {}});
    EXPECT_THROW(tg.addNode(TgNode{"A", {}}), DslError);
}

TEST(TaskGraph, LinkToUnknownNodeRejected) {
    TaskGraph tg = pipelineGraph();
    tg.addLink(TgLink{TgEndpoint::of("GHOST", "p"), TgEndpoint::socEnd()});
    EXPECT_THROW(tg.validate(), DslError);
}

TEST(TaskGraph, LinkToLitePortRejected) {
    TaskGraph tg = pipelineGraph();
    tg.addLink(TgLink{TgEndpoint::of("C", "x"), TgEndpoint::socEnd()});
    EXPECT_THROW(tg.validate(), DslError);
}

TEST(TaskGraph, ConnectWithoutLitePortRejected) {
    TaskGraph tg = pipelineGraph();
    tg.addConnect(TgConnect{"A"});  // A has only stream ports
    EXPECT_THROW(tg.validate(), DslError);
}

TEST(TaskGraph, DoubleUsedStreamPortRejected) {
    TaskGraph tg = pipelineGraph();
    tg.addLink(TgLink{TgEndpoint::of("A", "out"), TgEndpoint::socEnd()});
    EXPECT_THROW(tg.validate(), DslError);
}

TEST(TaskGraph, UnlinkedStreamPortRejected) {
    TaskGraph tg;
    tg.addNode(TgNode{"A",
                      {TgPort{"in", hls::InterfaceProtocol::AxiStream},
                       TgPort{"out", hls::InterfaceProtocol::AxiStream}}});
    tg.addLink(TgLink{TgEndpoint::socEnd(), TgEndpoint::of("A", "in")});
    EXPECT_THROW(tg.validate(), DslError);
}

TEST(TaskGraph, SocToSocLinkRejected) {
    TaskGraph tg;
    tg.addNode(TgNode{"A", {TgPort{"x", hls::InterfaceProtocol::AxiLite}}});
    tg.addLink(TgLink{TgEndpoint::socEnd(), TgEndpoint::socEnd()});
    EXPECT_THROW(tg.validate(), DslError);
}

TEST(TaskGraph, RenderParsesBackIdentically) {
    const TaskGraph tg = pipelineGraph();
    const std::string dsl = tg.renderDsl("roundtrip");
    const ParsedDsl parsed = parseDsl(dsl);
    EXPECT_EQ(parsed.projectName, "roundtrip");
    EXPECT_TRUE(parsed.graph == tg);
}

TEST(TaskGraph, RenderUsesPaperSyntax) {
    const std::string dsl = pipelineGraph().renderDsl("p");
    EXPECT_NE(dsl.find("object p extends App {"), std::string::npos);
    EXPECT_NE(dsl.find("tg nodes;"), std::string::npos);
    EXPECT_NE(dsl.find("tg node \"A\" is \"in\" is \"out\" end;"), std::string::npos);
    EXPECT_NE(dsl.find("tg node \"C\" i \"x\" end;"), std::string::npos);
    EXPECT_NE(dsl.find("tg link 'soc to (\"A\",\"in\") end;"), std::string::npos);
    EXPECT_NE(dsl.find("tg connect \"C\";"), std::string::npos);
    EXPECT_NE(dsl.find("tg end_edges;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HTG

TEST(Htg, OtsuHtgStructure) {
    const Htg htg = apps::makeOtsuHtg();
    EXPECT_EQ(htg.topNodes().size(), 3u);  // readImage, phase, writeImage
    EXPECT_EQ(htg.phases().size(), 1u);
    EXPECT_EQ(htg.phases()[0].actors.size(), 4u);
    EXPECT_EQ(htg.topEdges().size(), 2u);
    EXPECT_EQ(htg.topNode("otsuPhase").kind, HtgNodeKind::Phase);
    EXPECT_EQ(htg.topNode("readImage").kind, HtgNodeKind::Task);
    const auto units = htg.partitionableUnits();
    EXPECT_EQ(units.size(), 4u);
    EXPECT_NE(std::find(units.begin(), units.end(), "segment"), units.end());
}

TEST(Htg, ValidationCatchesBadEdges) {
    Htg htg;
    htg.addTask("a");
    htg.addEdge("a", "ghost");
    EXPECT_THROW(htg.validate(), DslError);
}

TEST(Htg, ValidationCatchesDuplicateNames) {
    Htg htg;
    htg.addTask("a");
    htg.addTask("a");
    EXPECT_THROW(htg.validate(), DslError);
}

TEST(Htg, ValidationCatchesBadPhasePorts) {
    Htg htg;
    HtgPhase phase;
    phase.name = "p";
    phase.actors.push_back(HtgActor{"x", {{"in", 8}}, {{"out", 8}}});
    phase.actors.push_back(HtgActor{"y", {{"in", 8}}, {{"out", 8}}});
    phase.edges.push_back(HtgDataflowEdge{"x", "WRONG", "y", "in"});
    htg.addPhase(std::move(phase));
    EXPECT_THROW(htg.validate(), DslError);
}

TEST(Htg, DotRenderingShowsPhases) {
    const std::string dot = apps::makeOtsuHtg().toDot();
    EXPECT_NE(dot.find("cluster_otsuPhase"), std::string::npos);
    EXPECT_NE(dot.find("\"readImage\""), std::string::npos);
    EXPECT_NE(dot.find("\"grayScale\" -> \"computeHistogram\""), std::string::npos);
}

TEST(Partition, DefaultsToSoftware) {
    HtgPartition p;
    p.mapping["x"] = Mapping::Hardware;
    EXPECT_EQ(p.of("x"), Mapping::Hardware);
    EXPECT_EQ(p.of("unknown"), Mapping::Software);
    EXPECT_EQ(p.hardwareUnits(), std::vector<std::string>{"x"});
}

// ---------------------------------------------------------------------------
// Lowering (the core of Section III)

TEST(Lowering, Arch1HistogramOnly) {
    const TaskGraph tg =
        lowerToTaskGraph(apps::makeOtsuHtg(), apps::otsuArchPartition(1));
    ASSERT_EQ(tg.nodes().size(), 1u);
    EXPECT_EQ(tg.nodes()[0].name, "computeHistogram");
    ASSERT_EQ(tg.links().size(), 2u);
    EXPECT_TRUE(tg.links()[0].from.soc);   // 'soc -> hist.grayScaleImage
    EXPECT_TRUE(tg.links()[1].to.soc);     // hist.histogram -> 'soc
    EXPECT_TRUE(tg.connects().empty());
}

TEST(Lowering, Arch3DirectLinkBetweenHwActors) {
    const TaskGraph tg =
        lowerToTaskGraph(apps::makeOtsuHtg(), apps::otsuArchPartition(3));
    EXPECT_EQ(tg.nodes().size(), 2u);
    bool directFound = false;
    for (const auto& link : tg.links()) {
        if (!link.from.soc && !link.to.soc) {
            directFound = true;
            EXPECT_EQ(link.from.node, "computeHistogram");
            EXPECT_EQ(link.to.node, "halfProbability");
        }
    }
    EXPECT_TRUE(directFound);
}

TEST(Lowering, Arch4MatchesExecutableTopology) {
    const TaskGraph tg =
        lowerToTaskGraph(apps::makeOtsuHtg(), apps::otsuArchPartition(4));
    EXPECT_EQ(tg.nodes().size(), 4u);
    // 3 intra-phase HW->HW links + 4 'soc boundary links (imageIn,
    // imageOutSEG, segment.grayScaleImage, segmentedGrayImage).
    EXPECT_EQ(tg.links().size(), 7u);
    int socLinks = 0;
    for (const auto& link : tg.links()) {
        socLinks += (link.from.soc || link.to.soc) ? 1 : 0;
    }
    EXPECT_EQ(socLinks, 4);
    EXPECT_NO_THROW(tg.validate());
}

TEST(Lowering, HardwareTaskGetsConnect) {
    Htg htg;
    htg.addTask("ACC", true,
                {TgPort{"A", hls::InterfaceProtocol::AxiLite},
                 TgPort{"return", hls::InterfaceProtocol::AxiLite}});
    HtgPartition p;
    p.mapping["ACC"] = Mapping::Hardware;
    const TaskGraph tg = lowerToTaskGraph(htg, p);
    ASSERT_EQ(tg.nodes().size(), 1u);
    ASSERT_EQ(tg.connects().size(), 1u);
    EXPECT_EQ(tg.connects()[0].node, "ACC");
    EXPECT_TRUE(tg.links().empty());
}

TEST(Lowering, AllSoftwareProducesEmptyGraph) {
    const TaskGraph tg =
        lowerToTaskGraph(apps::makeOtsuHtg(), apps::otsuMaskPartition(0));
    EXPECT_TRUE(tg.nodes().empty());
    EXPECT_TRUE(tg.links().empty());
}

class LoweringMaskSweep : public testing::TestWithParam<unsigned> {};

TEST_P(LoweringMaskSweep, EveryPartitionLowersToValidGraph) {
    const unsigned mask = GetParam();
    const TaskGraph tg =
        lowerToTaskGraph(apps::makeOtsuHtg(), apps::otsuMaskPartition(mask));
    EXPECT_NO_THROW(tg.validate());
    EXPECT_EQ(tg.nodes().size(), static_cast<std::size_t>(__builtin_popcount(mask)));
}

INSTANTIATE_TEST_SUITE_P(AllMasks, LoweringMaskSweep, testing::Range(0u, 16u));

} // namespace
} // namespace socgen::core
