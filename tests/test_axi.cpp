#include "socgen/axi/lite.hpp"
#include "socgen/axi/monitor.hpp"
#include "socgen/axi/stream.hpp"
#include "socgen/common/error.hpp"

#include <gtest/gtest.h>

namespace socgen::axi {
namespace {

TEST(Stream, PushPopFifoOrder) {
    StreamChannel chan("c", 4, 32);
    EXPECT_TRUE(chan.empty());
    EXPECT_TRUE(chan.tryPush(1));
    EXPECT_TRUE(chan.tryPush(2, true));
    EXPECT_EQ(chan.size(), 2u);
    StreamBeat beat;
    ASSERT_TRUE(chan.tryPop(beat));
    EXPECT_EQ(beat.data, 1u);
    EXPECT_FALSE(beat.last);
    ASSERT_TRUE(chan.tryPop(beat));
    EXPECT_EQ(beat.data, 2u);
    EXPECT_TRUE(beat.last);
    EXPECT_FALSE(chan.tryPop(beat));
}

TEST(Stream, BackpressureWhenFull) {
    StreamChannel chan("c", 2, 32);
    EXPECT_TRUE(chan.tryPush(1));
    EXPECT_TRUE(chan.tryPush(2));
    EXPECT_TRUE(chan.full());
    EXPECT_FALSE(chan.tryPush(3));
    EXPECT_EQ(chan.pushStalls(), 1u);
    StreamBeat beat;
    ASSERT_TRUE(chan.tryPop(beat));
    EXPECT_TRUE(chan.tryPush(3));
}

TEST(Stream, MasksDataToWidth) {
    StreamChannel chan("c", 4, 8);
    EXPECT_TRUE(chan.tryPush(0x1FF));
    StreamBeat beat;
    ASSERT_TRUE(chan.tryPop(beat));
    EXPECT_EQ(beat.data, 0xFFu);
}

TEST(Stream, StatsAndHighWater) {
    StreamChannel chan("c", 8, 32);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(chan.tryPush(static_cast<std::uint64_t>(i)));
    }
    StreamBeat beat;
    (void)chan.tryPop(beat);
    (void)chan.tryPop(beat);
    EXPECT_EQ(chan.beatsPushed(), 5u);
    EXPECT_EQ(chan.beatsPopped(), 2u);
    EXPECT_EQ(chan.highWater(), 5u);
    StreamBeat dummy;
    StreamChannel empty("e", 2, 32);
    EXPECT_FALSE(empty.tryPop(dummy));
    EXPECT_EQ(empty.popStalls(), 1u);
}

TEST(Stream, ResetClearsEverything) {
    StreamChannel chan("c", 4, 32);
    (void)chan.tryPush(9);
    chan.reset();
    EXPECT_TRUE(chan.empty());
    EXPECT_EQ(chan.beatsPushed(), 0u);
    EXPECT_EQ(chan.highWater(), 0u);
}

TEST(Stream, FrontThrowsWhenEmpty) {
    StreamChannel chan("c", 4, 32);
    EXPECT_THROW((void)chan.front(), Error);
    (void)chan.tryPush(5);
    EXPECT_EQ(chan.front().data, 5u);
}

TEST(Stream, ZeroCapacityRejected) {
    EXPECT_THROW(StreamChannel("bad", 0, 32), Error);
}

TEST(Monitor, ConservationHolds) {
    StreamChannel chan("c", 4, 32);
    StreamMonitor monitor(chan);
    (void)chan.tryPush(1);
    monitor.sample();
    StreamBeat beat;
    (void)chan.tryPop(beat);
    monitor.sample();
    EXPECT_NO_THROW(monitor.check());
    EXPECT_EQ(monitor.samples(), 2u);
    EXPECT_DOUBLE_EQ(monitor.averageOccupancy(), 0.5);
}

TEST(Monitor, BeatLossDetected) {
    StreamChannel chan("c", 4, 32);
    StreamMonitor monitor(chan);
    (void)chan.tryPush(1);
    (void)chan.tryPush(2);
    monitor.sample();
    // A dropped beat breaks pushed == popped + in-flight conservation.
    ASSERT_TRUE(chan.dropFront());
    try {
        monitor.check();
        FAIL() << "expected a conservation violation";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("lost beats"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("c"), std::string::npos);
    }
}

TEST(Monitor, CapacityViolationDetected) {
    StreamChannel chan("c", 2, 32);
    StreamMonitor monitor(chan);
    // forcePush ignores ready/valid: a broken master overruns the FIFO.
    for (int i = 0; i < 4; ++i) {
        chan.forcePush(StreamBeat{static_cast<std::uint64_t>(i), false});
    }
    monitor.sample();
    try {
        monitor.check();
        FAIL() << "expected a capacity violation";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("exceeded capacity"), std::string::npos);
    }
}

TEST(Monitor, TlastViolationDetected) {
    StreamChannel chan("frames", 16, 32);
    StreamMonitor monitor(chan);
    monitor.setMaxFrameBeats(4);
    // A well-framed burst passes.
    for (int i = 0; i < 3; ++i) {
        (void)chan.tryPush(static_cast<std::uint64_t>(i), i == 2);
    }
    monitor.sample();
    EXPECT_NO_THROW(monitor.check());
    EXPECT_EQ(chan.framesCompleted(), 1u);
    // A master that never asserts TLAST starves frame-gated consumers.
    for (int i = 0; i < 6; ++i) {
        (void)chan.tryPush(static_cast<std::uint64_t>(i), false);
        StreamBeat beat;
        (void)chan.tryPop(beat);
        monitor.sample();
    }
    try {
        monitor.check();
        FAIL() << "expected a TLAST violation";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("TLAST violation"), std::string::npos);
        EXPECT_NE(what.find("without end-of-frame"), std::string::npos);
        EXPECT_NE(what.find("frames"), std::string::npos);
    }
}

TEST(Stream, BlockedDirectionsRefuseHandshake) {
    StreamChannel chan("c", 4, 32);
    (void)chan.tryPush(1);
    chan.setPushBlocked(true);
    chan.setPopBlocked(true);
    EXPECT_FALSE(chan.tryPush(2));
    StreamBeat beat;
    EXPECT_FALSE(chan.tryPop(beat));
    // Refused handshakes count as stalls (TVALID && !TREADY and vice versa).
    EXPECT_GE(chan.pushStalls(), 1u);
    EXPECT_GE(chan.popStalls(), 1u);
    chan.setPushBlocked(false);
    chan.setPopBlocked(false);
    EXPECT_TRUE(chan.tryPush(2));
    EXPECT_TRUE(chan.tryPop(beat));
    EXPECT_EQ(beat.data, 1u);
}

class LiteRegisterFile : public LiteSlave {
public:
    std::uint32_t regs[16] = {};
    std::uint32_t readRegister(std::uint64_t offset) override {
        return regs[offset / 4];
    }
    void writeRegister(std::uint64_t offset, std::uint32_t value) override {
        regs[offset / 4] = value;
    }
};

TEST(Lite, MapReadWrite) {
    LiteBus bus;
    LiteRegisterFile slave;
    bus.mapSlave("dev0", AddressRange{0x40000000, 0x100}, slave);
    bus.write(0x40000008, 77);
    EXPECT_EQ(slave.regs[2], 77u);
    EXPECT_EQ(bus.read(0x40000008), 77u);
    EXPECT_EQ(bus.transactionCount(), 2u);
    EXPECT_EQ(bus.busCycles(), 2 * LiteBus::kAccessLatency);
    EXPECT_EQ(bus.slaveAt(0x40000008), "dev0");
    EXPECT_EQ(bus.slaveAt(0x50000000), "<unmapped>");
}

TEST(Lite, UnmappedAccessThrows) {
    LiteBus bus;
    EXPECT_THROW((void)bus.read(0x1000), Error);
    EXPECT_THROW(bus.write(0x1000, 1), Error);
}

TEST(Lite, OverlappingRangesRejected) {
    LiteBus bus;
    LiteRegisterFile a;
    LiteRegisterFile b;
    bus.mapSlave("a", AddressRange{0x1000, 0x100}, a);
    EXPECT_THROW(bus.mapSlave("b", AddressRange{0x10F0, 0x100}, b), Error);
    EXPECT_NO_THROW(bus.mapSlave("b", AddressRange{0x1100, 0x100}, b));
}

TEST(Lite, EmptyRangeRejected) {
    LiteBus bus;
    LiteRegisterFile a;
    EXPECT_THROW(bus.mapSlave("a", AddressRange{0x1000, 0}, a), Error);
}

TEST(AddressRange, ContainsAndOverlaps) {
    const AddressRange r{0x100, 0x10};
    EXPECT_TRUE(r.contains(0x100));
    EXPECT_TRUE(r.contains(0x10F));
    EXPECT_FALSE(r.contains(0x110));
    EXPECT_TRUE(r.overlaps(AddressRange{0x10F, 4}));
    EXPECT_FALSE(r.overlaps(AddressRange{0x110, 4}));
}

} // namespace
} // namespace socgen::axi
