// Cross-cutting system tests: interrupt-driven case-study runs, report
// contents, per-link Tcl, VCD traces of generated RTL, and artifact
// integrity through the boot chain.

#include "socgen/apps/kernels.hpp"
#include "socgen/apps/otsu_project.hpp"
#include "socgen/rtl/vcd.hpp"
#include "socgen/socgen.hpp"

#include <gtest/gtest.h>

namespace socgen {
namespace {

TEST(SystemExtras, OtsuArch4RunsUnderInterruptDrivers) {
    constexpr unsigned kSide = 32;
    constexpr std::int64_t kPixels = kSide * kSide;
    const apps::RgbImage scene = apps::makeSyntheticScene(kSide, kSide);
    const apps::GrayImage reference = apps::otsuFilterRef(scene);
    const core::Htg htg = apps::makeOtsuHtg();
    const hls::KernelLibrary kernels = apps::makeOtsuKernelLibrary(kPixels);
    core::Flow flow(apps::otsuFlowOptions(), kernels, std::make_shared<core::HlsCache>());
    const core::FlowResult result =
        flow.run("irqarch", core::lowerToTaskGraph(htg, apps::otsuArchPartition(4)));

    soc::SystemOptions options;
    options.useInterrupts = true;
    apps::OtsuSystemRunner runner(result, apps::otsuArchPartition(4), options);
    const auto run = runner.run(scene);
    EXPECT_TRUE(run.output == reference);
    EXPECT_NE(run.report.find("irq wakeups"), std::string::npos);
}

TEST(SystemExtras, ReportListsEveryComponent) {
    hls::KernelLibrary kernels;
    kernels.add(apps::makeGaussKernel(64));
    const core::FlowResult result = core::runDslText(R"(
object rep extends App {
  tg nodes; tg node "GAUSS" is "in" is "out" end; tg end_nodes;
  tg edges;
    tg link 'soc to ("GAUSS","in") end;
    tg link ("GAUSS","out") to 'soc end;
  tg end_edges;
}
)",
                                                     kernels);
    soc::SystemSimulator sim(result.design, result.programs);
    sim.psArmReadDma("axi_dma_0", 0, 0x8000, 64);
    sim.ps().task("stage", 4, [](soc::Memory& mem) {
        for (int i = 0; i < 64; ++i) {
            mem.writeWord(0x100 + static_cast<std::uint64_t>(i), 7);
        }
    });
    sim.psWriteDma("axi_dma_0", 0, 0x100, 64);
    sim.psWaitReadDma("axi_dma_0");
    (void)sim.run();
    const std::string report = sim.report();
    EXPECT_NE(report.find("cycles:"), std::string::npos);
    EXPECT_NE(report.find("PS:"), std::string::npos);
    EXPECT_NE(report.find("axi_dma_0:"), std::string::npos);
    EXPECT_NE(report.find("GAUSS:"), std::string::npos);
    EXPECT_NE(report.find("stream"), std::string::npos);
    EXPECT_NE(report.find("high-water"), std::string::npos);
}

TEST(SystemExtras, PerLinkTclInstantiatesEveryDma) {
    hls::KernelLibrary kernels;
    kernels.add(apps::makeGaussKernel(64));
    core::FlowOptions options;
    options.dmaPolicy = soc::DmaPolicy::DmaPerLink;
    const core::FlowResult result = core::runDslText(R"(
object plk extends App {
  tg nodes; tg node "GAUSS" is "in" is "out" end; tg end_nodes;
  tg edges;
    tg link 'soc to ("GAUSS","in") end;
    tg link ("GAUSS","out") to 'soc end;
  tg end_edges;
}
)",
                                                     kernels, options);
    EXPECT_NE(result.tclText.find("axi_dma_0"), std::string::npos);
    EXPECT_NE(result.tclText.find("axi_dma_1"), std::string::npos);
    // Device tree exposes both DMA nodes.
    EXPECT_NE(result.deviceTree.find("axi_dma_0: dma@"), std::string::npos);
    EXPECT_NE(result.deviceTree.find("axi_dma_1: dma@"), std::string::npos);
    // Drivers expose per-DMA readDMA/writeDMA pairs.
    const std::string& header = result.driverFiles[0].content;
    EXPECT_NE(header.find("axi_dma_0_writeDMA"), std::string::npos);
    EXPECT_NE(header.find("axi_dma_1_readDMA"), std::string::npos);
}

TEST(SystemExtras, VcdTraceOfGeneratedAddCore) {
    // Trace the generated ADD accelerator at gate level from ap_start to
    // ap_done and check the waveform contains the handshake.
    const hls::HlsResult r = hls::HlsEngine{}.synthesize(apps::makeAddKernel(), {});
    const auto simPtr = rtl::makeSimulator(r.netlist);
    rtl::Simulator& sim = *simPtr;
    rtl::VcdTrace trace(r.netlist, sim);
    sim.setInput("ap_start", 1);
    sim.setInput("A", 19);
    sim.setInput("B", 23);
    for (int cycle = 0; cycle < 16; ++cycle) {
        sim.step();
        sim.evaluate();
        trace.sample();
        if (sim.output("ap_done") != 0) {
            break;
        }
    }
    EXPECT_EQ(sim.output("return"), 42u);
    const std::string vcd = trace.render();
    EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);   // ap_start/ap_done
    EXPECT_NE(vcd.find("$var wire 32"), std::string::npos);  // A/B/return
    EXPECT_NE(vcd.find("ap_done"), std::string::npos);
    EXPECT_GT(trace.sampleCount(), 2u);
}

TEST(SystemExtras, BootImageCarriesLoadableBitstream) {
    hls::KernelLibrary kernels;
    kernels.add(apps::makeAddKernel());
    const core::FlowResult result = core::runDslText(R"(
object bootcheck extends App {
  tg nodes; tg node "ADD" i "A" i "B" i "return" end; tg end_nodes;
  tg edges; tg connect "ADD"; tg end_edges;
}
)",
                                                     kernels);
    // Serialize the boot image, parse it back, extract the bitstream, and
    // verify the design it encodes.
    const sw::BootImage parsed = sw::BootImage::parse(result.bootImage.serialize());
    const sw::BootPartition* bit = parsed.find("bootcheck.bit");
    ASSERT_NE(bit, nullptr);
    const soc::Bitstream bitstream = soc::Bitstream::parse(bit->content);
    EXPECT_EQ(bitstream.designName, "bootcheck");
    EXPECT_EQ(bitstream.part, soc::zedboard().part);
    bool hasAddRecord = false;
    for (const auto& record : bitstream.configRecords) {
        hasAddRecord = hasAddRecord || record.find("ADD") != std::string::npos;
    }
    EXPECT_TRUE(hasAddRecord);
}

TEST(SystemExtras, MultiRouteSharedDmaServesThreeChannels) {
    // One DMA, three MM2S routes: transfers are serialized per engine but
    // each route reaches its own channel.
    soc::Memory mem;
    for (std::uint32_t i = 0; i < 30; ++i) {
        mem.writeWord(i, 100 + i);
    }
    soc::DmaEngine dma("dma", mem);
    axi::StreamChannel c0("c0", 32, 32);
    axi::StreamChannel c1("c1", 32, 32);
    axi::StreamChannel c2("c2", 32, 32);
    (void)dma.attachMm2s(c0);
    (void)dma.attachMm2s(c1);
    (void)dma.attachMm2s(c2);
    for (int route = 0; route < 3; ++route) {
        dma.writeRegister(soc::dmareg::kMm2sAddr, static_cast<std::uint32_t>(route * 10));
        dma.writeRegister(soc::dmareg::kMm2sRoute, static_cast<std::uint32_t>(route));
        dma.writeRegister(soc::dmareg::kMm2sLength, 10);
        while (!dma.idle()) {
            dma.tick();
        }
    }
    axi::StreamBeat beat;
    ASSERT_TRUE(c0.tryPop(beat));
    EXPECT_EQ(beat.data, 100u);
    ASSERT_TRUE(c1.tryPop(beat));
    EXPECT_EQ(beat.data, 110u);
    ASSERT_TRUE(c2.tryPop(beat));
    EXPECT_EQ(beat.data, 120u);
    EXPECT_EQ(dma.transfersCompleted(), 3u);
    EXPECT_EQ(dma.wordsMoved(), 30u);
}

TEST(SystemExtras, ChannelHighWaterReflectsBackpressure) {
    // A slow consumer (EDGE with II>=1 fed at DMA speed) leaves a visible
    // high-water mark on the input channel but never overflows capacity.
    hls::KernelLibrary kernels;
    kernels.add(apps::makeEdgeKernel(256));
    const core::FlowResult result = core::runDslText(R"(
object bp extends App {
  tg nodes; tg node "EDGE" is "in" is "out" end; tg end_nodes;
  tg edges;
    tg link 'soc to ("EDGE","in") end;
    tg link ("EDGE","out") to 'soc end;
  tg end_edges;
}
)",
                                                     kernels);
    soc::SystemOptions options;
    options.channelCapacity = 8;
    soc::SystemSimulator sim(result.design, result.programs, options);
    sim.ps().task("stage", 4, [](soc::Memory& mem) {
        for (int i = 0; i < 256; ++i) {
            mem.writeWord(0x100 + static_cast<std::uint64_t>(i),
                          static_cast<std::uint32_t>(i * 3));
        }
    });
    sim.psArmReadDma("axi_dma_0", 0, 0x8000, 256);
    sim.psWriteDma("axi_dma_0", 0, 0x100, 256);
    sim.psWaitReadDma("axi_dma_0");
    (void)sim.run();
    EXPECT_LE(sim.channel(0).highWater(), 8u);
    EXPECT_GE(sim.channel(0).highWater(), 1u);
    EXPECT_EQ(sim.channel(0).beatsPushed(), 256u);
}

} // namespace
} // namespace socgen
