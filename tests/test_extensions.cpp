// Tests for the extension features beyond the paper's core flow: the 2D
// Sobel streaming filter, the greedy DSE heuristic, and interrupt-driven
// completion in the generated drivers.

#include "socgen/apps/kernels.hpp"
#include "socgen/apps/otsu_project.hpp"
#include "socgen/common/error.hpp"
#include "socgen/dse/explorer.hpp"
#include "socgen/hls/verify.hpp"
#include "socgen/socgen.hpp"

#include <gtest/gtest.h>

namespace socgen {
namespace {

// ---------------------------------------------------------------------------
// SOBEL

TEST(Sobel, KernelVerifiesAndSynthesizes) {
    const hls::Kernel k = apps::makeSobelKernel(32, 24);
    EXPECT_NO_THROW(hls::verify(k));
    const hls::HlsResult r = hls::HlsEngine{}.synthesize(k, {});
    // Two 32-entry 8-bit line buffers are tiny: LUTRAM, no BRAM18.
    EXPECT_EQ(r.netlist.countKind(rtl::CellKind::Bram), 2u);
    EXPECT_GT(r.resources.lut, 0);
    EXPECT_EQ(r.resources.dsp, 0);  // shifts, adds, compares only
}

TEST(Sobel, WideLineBuffersUseBram) {
    const hls::HlsResult r = hls::HlsEngine{}.synthesize(apps::makeSobelKernel(4096, 4), {});
    EXPECT_GE(r.resources.bram18, 2);  // 4096x8 bits per line buffer
}

class SobelSizes : public testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(SobelSizes, VmMatchesReference) {
    const auto [w, h] = GetParam();
    const apps::GrayImage img = apps::makeSyntheticGrayScene(w, h, 7);
    const apps::GrayImage expected = apps::sobelRef(img);

    const hls::Kernel k = apps::makeSobelKernel(w, h);
    const hls::Program p = hls::compileKernel(k, hls::scheduleKernel(k, {}));

    class Io : public hls::KernelIo {
    public:
        std::vector<std::uint8_t> input;
        std::vector<std::uint8_t> output;
        std::size_t pos = 0;
        std::uint64_t argValue(hls::PortId) override { return 0; }
        void setResult(hls::PortId, std::uint64_t) override {}
        bool streamRead(hls::PortId, std::uint64_t& v) override {
            if (pos >= input.size()) {
                return false;
            }
            v = input[pos++];
            return true;
        }
        bool streamWrite(hls::PortId, std::uint64_t v) override {
            output.push_back(static_cast<std::uint8_t>(v));
            return true;
        }
    } io;
    io.input = img.pixels();
    hls::KernelVm vm(p, io);
    vm.start();
    std::uint64_t guard = 0;
    while (vm.running() && ++guard < 50'000'000) {
        vm.tick();
    }
    ASSERT_TRUE(vm.finished());
    ASSERT_EQ(io.output.size(), expected.pixels().size());
    for (std::size_t i = 0; i < io.output.size(); ++i) {
        ASSERT_EQ(io.output[i], expected.pixels()[i]) << "pixel " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SobelSizes,
                         testing::Values(std::make_pair(8u, 8u), std::make_pair(16u, 8u),
                                         std::make_pair(33u, 17u),
                                         std::make_pair(64u, 64u)));

TEST(Sobel, BordersAreZero) {
    const apps::GrayImage img = apps::makeSyntheticGrayScene(16, 16);
    const apps::GrayImage out = apps::sobelRef(img);
    for (unsigned x = 0; x < 16; ++x) {
        EXPECT_EQ(out.at(x, 0), 0);
        EXPECT_EQ(out.at(x, 1), 0);
    }
    for (unsigned y = 0; y < 16; ++y) {
        EXPECT_EQ(out.at(0, y), 0);
        EXPECT_EQ(out.at(1, y), 0);
    }
}

TEST(Sobel, DetectsAStepEdge) {
    apps::GrayImage img(16, 16, 10);
    for (unsigned y = 0; y < 16; ++y) {
        for (unsigned x = 8; x < 16; ++x) {
            img.set(x, y, 200);
        }
    }
    const apps::GrayImage out = apps::sobelRef(img);
    // Strong response near the vertical edge, none in flat regions.
    EXPECT_GT(out.at(8, 8), 100);
    EXPECT_EQ(out.at(5, 8), 0);
    EXPECT_EQ(out.at(13, 8), 0);
}

// ---------------------------------------------------------------------------
// Greedy DSE

dse::DsePoint toyPoint(unsigned mask) {
    // Additive model: each unit costs LUT and saves cycles; unit 2 is the
    // big win. Mask 0b1010 made infeasible to exercise avoidance.
    if (mask == 0b1010) {
        throw Error("does not fit");
    }
    dse::DsePoint p;
    p.label = "m" + std::to_string(mask);
    static constexpr std::array<std::uint64_t, 4> kSave{50, 70, 400, 30};
    p.resources.lut = 1000 * __builtin_popcount(mask);
    std::uint64_t cycles = 1000;
    for (unsigned u = 0; u < 4; ++u) {
        if ((mask & (1u << u)) != 0) {
            cycles -= kSave[u];
        }
    }
    p.cycles = cycles;
    return p;
}

TEST(GreedyDse, ClimbsToTheFullMask) {
    const dse::GreedyResult r = dse::exploreGreedy(4, toyPoint);
    EXPECT_EQ(r.best.mask, 0b1111u);
    EXPECT_EQ(r.best.cycles, 1000u - 550u);
    // First accepted flip is the biggest saver (unit 2).
    ASSERT_GE(r.trajectory.size(), 2u);
    EXPECT_EQ(r.trajectory[0], 0u);
    EXPECT_EQ(r.trajectory[1], 0b0100u);
    // Far fewer evaluations than exhaustive would need in general:
    // 1 + 4 + 3 + 2 + 1 + final round of 0 improvements.
    EXPECT_LE(r.evaluated.size(), 12u);
}

TEST(GreedyDse, StopsWhenNothingImproves) {
    const auto flat = [](unsigned mask) {
        dse::DsePoint p;
        p.cycles = 100;  // hardware never helps
        p.resources.lut = static_cast<std::int64_t>(mask);
        return p;
    };
    const dse::GreedyResult r = dse::exploreGreedy(3, flat);
    EXPECT_EQ(r.best.mask, 0u);
    EXPECT_EQ(r.trajectory.size(), 1u);
}

TEST(GreedyDse, InfeasibleStartRejected) {
    const auto broken = [](unsigned) -> dse::DsePoint { throw Error("nope"); };
    EXPECT_THROW((void)dse::exploreGreedy(2, broken), Error);
}

TEST(GreedyDse, MatchesExhaustiveOnTheOtsuPipeline) {
    // On the real case study the cycle savings are monotone in adding
    // hardware, so greedy must find the global optimum with fewer
    // evaluations.
    constexpr std::int64_t kPixels = 48 * 48;
    const apps::RgbImage scene = apps::makeSyntheticScene(48, 48);
    const core::Htg htg = apps::makeOtsuHtg();
    const hls::KernelLibrary kernels = apps::makeOtsuKernelLibrary(kPixels);
    auto cache = std::make_shared<core::HlsCache>();

    const auto evaluate = [&](unsigned mask) {
        dse::DsePoint point;
        point.partition = apps::otsuMaskPartition(mask);
        core::FlowOptions options = apps::otsuFlowOptions();
        options.dmaPolicy = soc::DmaPolicy::DmaPerLink;
        core::Flow flow(options, kernels, cache);
        const core::FlowResult result = flow.run(
            format("greedy_%u", mask), core::lowerToTaskGraph(htg, point.partition));
        point.resources = result.synthesis.total;
        apps::OtsuSystemRunner runner(result, point.partition);
        point.cycles = runner.run(scene).cycles;
        return point;
    };

    const dse::GreedyResult greedy = dse::exploreGreedy(4, evaluate);
    const auto exhaustive = dse::exploreExhaustive(4, evaluate);
    std::uint64_t bestCycles = ~0ull;
    for (const auto& p : exhaustive) {
        bestCycles = std::min(bestCycles, p.cycles);
    }
    EXPECT_EQ(greedy.best.cycles, bestCycles);
    EXPECT_LT(greedy.evaluated.size(), exhaustive.size());
}

// ---------------------------------------------------------------------------
// Interrupt-driven completion

TEST(Irq, LineLatchesUntilAcknowledged) {
    soc::IrqLine line("test");
    EXPECT_FALSE(line.pending());
    EXPECT_FALSE(line.acknowledge());
    line.raise();
    line.raise();
    EXPECT_TRUE(line.pending());
    EXPECT_EQ(line.raiseCount(), 2u);
    EXPECT_TRUE(line.acknowledge());
    EXPECT_FALSE(line.pending());
}

struct IrqFixture {
    core::FlowResult result;
    std::vector<std::uint32_t> input;

    IrqFixture() {
        hls::KernelLibrary kernels;
        kernels.add(apps::makeGaussKernel(512));
        constexpr const char* dsl = R"(
object irqdemo extends App {
  tg nodes; tg node "GAUSS" is "in" is "out" end; tg end_nodes;
  tg edges;
    tg link 'soc to ("GAUSS","in") end;
    tg link ("GAUSS","out") to 'soc end;
  tg end_edges;
}
)";
        result = core::runDslText(dsl, kernels);
        input.resize(512);
        for (std::size_t i = 0; i < input.size(); ++i) {
            input[i] = static_cast<std::uint32_t>((i * 31) % 256);
        }
    }

    std::pair<std::uint64_t, std::uint64_t> run(bool interrupts) {
        soc::SystemOptions options;
        options.useInterrupts = interrupts;
        soc::SystemSimulator sim(result.design, result.programs, options);
        const std::vector<std::uint32_t> data = input;
        sim.ps().task("stage", 10, [data](soc::Memory& mem) {
            mem.writeBlock(0x100, data);
        });
        sim.psArmReadDma("axi_dma_0", 0, 0x8000, 512);
        sim.psWriteDma("axi_dma_0", 0, 0x100, 512);
        sim.psWaitReadDma("axi_dma_0");
        (void)sim.run();
        return {sim.ps().driverCycles(), sim.ps().irqWakeups()};
    }
};

TEST(Irq, InterruptDriverAvoidsBusPolling) {
    IrqFixture fixture;
    const auto [pollingBus, pollingWakeups] = fixture.run(false);
    const auto [irqBus, irqWakeups] = fixture.run(true);
    EXPECT_EQ(pollingWakeups, 0u);
    EXPECT_EQ(irqWakeups, 2u);  // MM2S completion + S2MM completion
    // Polling burns bus cycles proportional to the wait; interrupts only
    // pay the initial register writes.
    EXPECT_LT(irqBus, pollingBus / 2);
}

TEST(Irq, ResultsIdenticalUnderBothDrivers) {
    IrqFixture fixture;
    soc::SystemOptions polling;
    soc::SystemOptions irq;
    irq.useInterrupts = true;
    std::array<std::vector<std::uint32_t>, 2> outputs;
    int index = 0;
    for (const auto& options : {polling, irq}) {
        soc::SystemSimulator sim(fixture.result.design, fixture.result.programs, options);
        const std::vector<std::uint32_t> data = fixture.input;
        sim.ps().task("stage", 10, [data](soc::Memory& mem) {
            mem.writeBlock(0x100, data);
        });
        sim.psArmReadDma("axi_dma_0", 0, 0x8000, 512);
        sim.psWriteDma("axi_dma_0", 0, 0x100, 512);
        sim.psWaitReadDma("axi_dma_0");
        (void)sim.run();
        outputs[static_cast<std::size_t>(index++)] = sim.memory().readBlock(0x8000, 512);
    }
    EXPECT_EQ(outputs[0], outputs[1]);
}

TEST(Irq, CoreDoneInterrupt) {
    hls::KernelLibrary kernels;
    kernels.add(apps::makeAddKernel());
    constexpr const char* dsl = R"(
object addirq extends App {
  tg nodes; tg node "ADD" i "A" i "B" i "return" end; tg end_nodes;
  tg edges; tg connect "ADD"; tg end_edges;
}
)";
    const core::FlowResult result = core::runDslText(dsl, kernels);
    soc::SystemOptions options;
    options.useInterrupts = true;
    soc::SystemSimulator sim(result.design, result.programs, options);
    sim.psSetCoreArg("ADD", "A", 40);
    sim.psSetCoreArg("ADD", "B", 2);
    sim.psStartCore("ADD");
    sim.psWaitCore("ADD");
    (void)sim.run();
    EXPECT_EQ(sim.core("ADD").result("return"), 42u);
    EXPECT_EQ(sim.ps().irqWakeups(), 1u);
}

} // namespace
} // namespace socgen
