// Fault-tolerant multi-tenant flow service (CTest labels: resilience,
// flow-service): admission control with priority shedding, per-tenant
// quotas and circuit breakers, weighted-fair stage scheduling on one
// shared pool, cross-tenant HLS dedupe (warm and in-flight), and
// service-level crash-restart recovery — every admitted flow either
// completes bit-identically to a standalone run or terminates with a
// structured outcome, and a new service instance on the same root
// resumes every pending flow with zero re-synthesis of committed work.

#include "socgen/apps/kernels.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/hash.hpp"
#include "socgen/common/textfile.hpp"
#include "socgen/core/journal.hpp"
#include "socgen/core/parser.hpp"
#include "socgen/svc/flow_service.hpp"
#include "socgen/svc/service_fault.hpp"
#include "socgen/svc/stage_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace socgen::svc {
namespace {

const hls::KernelLibrary& exampleKernels() {
    static const hls::KernelLibrary lib = [] {
        hls::KernelLibrary out;
        out.add(apps::makeAddKernel());
        out.add(apps::makeMulKernel());
        out.add(apps::makeGaussKernel(64));
        out.add(apps::makeEdgeKernel(64));
        return out;
    }();
    return lib;
}

core::TaskGraph quickstartGraph() {
    constexpr const char* dsl = R"(
object q extends App {
  tg nodes;
    tg node "MUL" i "A" i "B" i "return" end;
    tg node "GAUSS" is "in" is "out" end;
    tg node "EDGE" is "in" is "out" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("GAUSS","in") end;
    tg link ("GAUSS","out") to ("EDGE","in") end;
    tg link ("EDGE","out") to 'soc end;
    tg connect "MUL";
  tg end_edges;
}
)";
    return core::parseDsl(dsl).graph;
}

const std::vector<std::string>& graphKernels() {
    static const std::vector<std::string> kernels = {"MUL", "GAUSS", "EDGE"};
    return kernels;
}

const std::vector<std::string>& graphStages() {
    static const std::vector<std::string> stages = {
        "scala",      "hls:MUL", "hls:GAUSS", "hls:EDGE", "integrate",
        "devicetree", "drivers", "synth",     "boot",     "artifacts"};
    return stages;
}

std::string freshDir(const std::string& name) {
    const std::string dir = testing::TempDir() + "/socgen_svc_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/// The bitstream digest a standalone (serviceless) flow produces for
/// `project` — the bit-identity reference for every service outcome.
const std::string& referenceDigest(const std::string& project) {
    static std::map<std::string, std::string> memo;
    static auto cache = std::make_shared<core::HlsCache>();
    const auto it = memo.find(project);
    if (it != memo.end()) {
        return it->second;
    }
    const core::FlowResult result =
        core::Flow(core::FlowOptions{}, exampleKernels(), cache)
            .run(project, quickstartGraph());
    return memo[project] = digest128(result.bitstream.serialize()).hex();
}

ServiceConfig baseConfig(const std::string& root) {
    ServiceConfig config;
    config.rootDir = root;
    config.stageWorkers = 4;
    config.flowRunners = 3;
    return config;
}

FlowRequest makeRequest(const std::string& tenant, const std::string& project) {
    FlowRequest request;
    request.tenant = tenant;
    request.project = project;
    request.graph = quickstartGraph();
    return request;
}

// ---------------------------------------------------------------------------
// Baseline: many tenants, concurrent flows, every outcome bit-identical
// to a standalone run, all on one shared stage pool.

TEST(FlowService, MultiTenantFlowsCompleteBitIdentical) {
    const std::string root = freshDir("multi");
    FlowService service(baseConfig(root), exampleKernels());
    std::vector<FlowHandle> handles;
    for (int t = 0; t < 4; ++t) {
        const std::string tenant = "tenant" + std::to_string(t);
        handles.push_back(service.submit(makeRequest(tenant, "proj" + std::to_string(t))));
    }
    for (const FlowHandle& handle : handles) {
        const RequestOutcome outcome = handle.wait();
        EXPECT_EQ(outcome.state, RequestState::Completed) << outcome.error;
        EXPECT_EQ(outcome.bitstreamDigest, referenceDigest(handle.project()))
            << handle.project();
        EXPECT_FALSE(outcome.diagnostics.anyDegraded());
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 4u);
    EXPECT_EQ(stats.admitted, 4u);
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_GT(service.poolStats().tasksExecuted, 0u);
    std::filesystem::remove_all(root);
}

// ---------------------------------------------------------------------------
// Cross-tenant dedupe: two tenants submitting identical kernels pay for
// each unique synthesis exactly once, service-wide — whether the second
// requester arrives after the first persisted (warm hit) or while the
// first is mid-synthesis (in-flight dedupe via the SynthGate). The
// invariant holds for every interleaving: total engine runs == unique
// kernel count.

TEST(FlowService, IdenticalKernelsSynthesizedOnceAcrossTenants) {
    const std::string root = freshDir("dedupe");
    FlowService service(baseConfig(root), exampleKernels());
    std::vector<FlowHandle> handles;
    for (int t = 0; t < 2; ++t) {
        for (int p = 0; p < 2; ++p) {
            handles.push_back(service.submit(makeRequest(
                "tenant" + std::to_string(t), "proj_t" + std::to_string(t) +
                                                  "_p" + std::to_string(p))));
        }
    }
    std::size_t engineRuns = 0;
    std::size_t reused = 0;
    for (const FlowHandle& handle : handles) {
        const RequestOutcome outcome = handle.wait();
        ASSERT_EQ(outcome.state, RequestState::Completed) << outcome.error;
        EXPECT_EQ(outcome.bitstreamDigest, referenceDigest(handle.project()));
        engineRuns += outcome.diagnostics.engineRuns();
        reused += outcome.diagnostics.cacheHits() + outcome.diagnostics.storeHits();
    }
    // 4 flows × 3 nodes = 12 HLS stages, 3 unique kernels: exactly 3
    // engine runs no matter how the flows interleave.
    EXPECT_EQ(engineRuns, graphKernels().size());
    EXPECT_EQ(reused, 12u - graphKernels().size());
    std::filesystem::remove_all(root);
}

// ---------------------------------------------------------------------------
// Admission control: the service-wide queue bound sheds the
// lowest-priority queued flow for a higher-priority submission and
// rejects the rest — structured outcomes, bounded memory, never a hang.

TEST(FlowService, OverloadShedsLowestPriorityAndRejectsRest) {
    const std::string root = freshDir("shed");
    ServiceConfig config = baseConfig(root);
    config.flowRunners = 1;
    config.maxQueuedFlows = 2;
    FlowService service(config, exampleKernels());
    TenantConfig low;
    low.priority = 0;
    TenantConfig high;
    high.priority = 5;
    service.configureTenant("low", low);
    service.configureTenant("high", high);

    // Occupy the single runner long enough for the queue to fill: the
    // blocker's integrate stage hangs ~400 ms.
    FlowRequest blocker = makeRequest("low", "blocker");
    blocker.faults.hangStage("integrate", 400);
    const FlowHandle blocked = service.submit(blocker);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    const FlowHandle q1 = service.submit(makeRequest("low", "q1"));
    const FlowHandle q2 = service.submit(makeRequest("low", "q2"));
    EXPECT_FALSE(q1.isTerminal());

    // Queue full: the high-priority flow sheds the oldest low-priority
    // queued flow (q1) and takes its slot.
    const FlowHandle vip = service.submit(makeRequest("high", "vip"));
    const RequestOutcome shedOutcome = q1.wait();
    EXPECT_EQ(shedOutcome.state, RequestState::Rejected);
    EXPECT_EQ(shedOutcome.rejectReason, RejectReason::Shed);
    EXPECT_FALSE(shedOutcome.error.empty());

    // Queue full again, and nothing ranks below "low": structured
    // Overloaded rejection for the incomer.
    const FlowHandle q3 = service.submit(makeRequest("low", "q3"));
    const RequestOutcome q3Outcome = q3.wait();
    EXPECT_EQ(q3Outcome.state, RequestState::Rejected);
    EXPECT_EQ(q3Outcome.rejectReason, RejectReason::Overloaded);

    EXPECT_EQ(blocked.wait().state, RequestState::Completed);
    EXPECT_EQ(vip.wait().state, RequestState::Completed);
    EXPECT_EQ(vip.wait().bitstreamDigest, referenceDigest("vip"));
    EXPECT_EQ(q2.wait().state, RequestState::Completed);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.rejectedOverloaded, 1u);
    EXPECT_EQ(stats.completed, 3u);

    // A shed flow's ledger entry is closed: a restart must not
    // resurrect a request the service rejected.
    service.drain();
    EXPECT_TRUE(fileExists(root + "/requests/low__q1.done"));
    std::filesystem::remove_all(root);
}

TEST(FlowService, TenantQueueDepthIsBounded) {
    const std::string root = freshDir("depth");
    ServiceConfig config = baseConfig(root);
    config.flowRunners = 1;
    FlowService service(config, exampleKernels());
    TenantConfig narrow;
    narrow.maxQueueDepth = 1;
    service.configureTenant("narrow", narrow);

    FlowRequest blocker = makeRequest("narrow", "first");
    blocker.faults.hangStage("integrate", 300);
    const FlowHandle first = service.submit(blocker);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const FlowHandle second = service.submit(makeRequest("narrow", "second"));
    const RequestOutcome outcome = second.wait();
    EXPECT_EQ(outcome.state, RequestState::Rejected);
    EXPECT_EQ(outcome.rejectReason, RejectReason::TenantQueueFull);

    // Another tenant is not affected by narrow's full queue.
    const FlowHandle other = service.submit(makeRequest("roomy", "third"));
    EXPECT_EQ(other.wait().state, RequestState::Completed);
    EXPECT_EQ(first.wait().state, RequestState::Completed);
    EXPECT_EQ(service.stats().rejectedTenantFull, 1u);
    std::filesystem::remove_all(root);
}

// ---------------------------------------------------------------------------
// Circuit breaker: a tenant whose flows keep faulting is quarantined
// (structured CircuitOpen rejections, no work wasted), then probed back
// in — one trial flow whose success closes the breaker.

TEST(FlowService, CircuitBreakerQuarantinesThenProbesBackIn) {
    const std::string root = freshDir("breaker");
    ServiceConfig config = baseConfig(root);
    config.breakerFaultThreshold = 2;
    config.breakerCooldownRejects = 2;
    FlowService service(config, exampleKernels());

    // A graph referencing a kernel nobody registered fails with a
    // structured DslError — the reproducible "broken tenant".
    const auto badRequest = [](const std::string& project) {
        constexpr const char* dsl = R"(
object bad extends App {
  tg nodes;
    tg node "NOPE" i "A" end;
  tg end_nodes;
  tg edges;
    tg connect "NOPE";
  tg end_edges;
}
)";
        FlowRequest request;
        request.tenant = "flaky";
        request.project = project;
        request.graph = core::parseDsl(dsl).graph;
        return request;
    };

    EXPECT_EQ(service.submit(badRequest("bad1")).wait().state, RequestState::Failed);
    EXPECT_EQ(service.submit(badRequest("bad2")).wait().state, RequestState::Failed);
    // Two consecutive faults tripped the breaker: quarantined.
    const RequestOutcome rejected = service.submit(badRequest("bad3")).wait();
    EXPECT_EQ(rejected.state, RequestState::Rejected);
    EXPECT_EQ(rejected.rejectReason, RejectReason::CircuitOpen);

    // The submission that completes the cooldown (the second strike
    // against the open breaker) flips it half-open and is admitted as
    // the probe. A healthy probe closes the breaker.
    const RequestOutcome probe = service.submit(makeRequest("flaky", "probe")).wait();
    EXPECT_EQ(probe.state, RequestState::Completed) << probe.error;
    const RequestOutcome after = service.submit(makeRequest("flaky", "after")).wait();
    EXPECT_EQ(after.state, RequestState::Completed);

    // Re-trip, then let a still-faulty probe through: the breaker
    // re-opens and the quarantine resumes.
    EXPECT_EQ(service.submit(badRequest("bad5")).wait().state, RequestState::Failed);
    EXPECT_EQ(service.submit(badRequest("bad6")).wait().state, RequestState::Failed);
    EXPECT_EQ(service.submit(badRequest("bad7")).wait().rejectReason,
              RejectReason::CircuitOpen);
    const RequestOutcome failedProbe = service.submit(badRequest("bad8")).wait();
    EXPECT_EQ(failedProbe.state, RequestState::Failed);
    EXPECT_EQ(service.submit(makeRequest("flaky", "again")).wait().rejectReason,
              RejectReason::CircuitOpen);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.breakerTrips, 3u);   // bad2, bad6, the failed probe
    EXPECT_EQ(stats.rejectedBreaker, 3u);
    EXPECT_EQ(stats.failed, 5u);
    std::filesystem::remove_all(root);
}

// ---------------------------------------------------------------------------
// Deadline isolation: a hung stage only costs its own flow (one
// abandoned attempt and a retry); concurrent tenants complete untouched.

TEST(FlowService, DeadlineAbandonsHungStageWithoutCollateral) {
    const std::string root = freshDir("deadline");
    FlowService service(baseConfig(root), exampleKernels());

    FlowRequest hung = makeRequest("sleepy", "hung");
    hung.faults.hangStage("hls:GAUSS", 1'000);
    hung.stageDeadlineMs = 150.0;  // per-request deadline knob
    const FlowHandle hungHandle = service.submit(hung);
    const FlowHandle cleanHandle = service.submit(makeRequest("busy", "clean"));

    const RequestOutcome clean = cleanHandle.wait();
    EXPECT_EQ(clean.state, RequestState::Completed) << clean.error;
    EXPECT_EQ(clean.diagnostics.stageTimeouts, 0u);

    const RequestOutcome recovered = hungHandle.wait();
    EXPECT_EQ(recovered.state, RequestState::Completed) << recovered.error;
    EXPECT_GE(recovered.diagnostics.stageTimeouts, 1u);
    EXPECT_EQ(recovered.bitstreamDigest, referenceDigest("hung"));
    std::filesystem::remove_all(root);
}

// ---------------------------------------------------------------------------
// Crash-restart recovery: flows killed mid-run (simulated kill -9)
// leave pending ledger entries; a new service instance on the same root
// resumes every one of them bit-identically with zero re-synthesis of
// journal-committed HLS work.

TEST(FlowService, RestartRecoversPendingFlowsWithZeroResynthesis) {
    const std::string root = freshDir("restart");
    std::vector<std::string> crashedProjects;
    {
        FlowService service(baseConfig(root), exampleKernels());
        std::vector<FlowHandle> handles;
        for (int t = 0; t < 3; ++t) {
            // Crash after all HLS stages committed (integrate begins
            // only once every hls:* stage committed), so recovery must
            // show zero engine runs.
            FlowRequest request = makeRequest("tenant" + std::to_string(t),
                                              "crash" + std::to_string(t));
            request.faults.crashFlow("integrate", t % 2 == 0 ? 0 : 1);
            handles.push_back(service.submit(request));
        }
        const FlowHandle healthy = service.submit(makeRequest("tenant0", "healthy"));
        for (const FlowHandle& handle : handles) {
            const RequestOutcome outcome = handle.wait();
            EXPECT_EQ(outcome.state, RequestState::Crashed);
            EXPECT_FALSE(outcome.error.empty());
            crashedProjects.push_back(handle.project());
        }
        EXPECT_EQ(healthy.wait().state, RequestState::Completed);
        EXPECT_EQ(service.stats().crashed, 3u);
        // Pending entries for the crashed flows, closed for the healthy.
        for (const std::string& project : crashedProjects) {
            EXPECT_FALSE(fileExists(root + "/requests/" +
                                    ("tenant" + project.substr(5)) + "__" + project +
                                    ".done"));
        }
        EXPECT_TRUE(fileExists(root + "/requests/tenant0__healthy.done"));
    }

    FlowService restarted(baseConfig(root), exampleKernels());
    std::vector<FlowHandle> recovered = restarted.recoverPending();
    ASSERT_EQ(recovered.size(), crashedProjects.size());
    for (const FlowHandle& handle : recovered) {
        const RequestOutcome outcome = handle.wait();
        ASSERT_EQ(outcome.state, RequestState::Completed) << outcome.error;
        EXPECT_EQ(outcome.bitstreamDigest, referenceDigest(handle.project()));
        // Zero re-synthesis: every node of every recovered flow is
        // served from the store (the crash happened past every HLS
        // commit), confirmed by the journal.
        EXPECT_EQ(outcome.diagnostics.engineRuns(), 0u) << handle.project();
        for (const auto& node : outcome.diagnostics.nodes) {
            EXPECT_TRUE(node.storeHit || node.cacheHit) << node.node;
            EXPECT_EQ(node.attempts, 0u) << node.node;
            EXPECT_DOUBLE_EQ(node.toolSeconds, 0.0) << node.node;
        }
        EXPECT_EQ(outcome.diagnostics.digestMismatches, 0u);
    }
    EXPECT_EQ(restarted.stats().recovered, crashedProjects.size());
    // Recovery closed the ledger: a second recovery pass finds nothing.
    EXPECT_TRUE(restarted.recoverPending().empty());
    std::filesystem::remove_all(root);
}

// ---------------------------------------------------------------------------
// The chaos sweep (the ISSUE's acceptance gate): 8 tenants × every
// service fault kind × 8 seeds. Every admitted flow either completes
// bit-identically or terminates with a structured outcome; a service
// restart then recovers every pending flow bit-identically, with zero
// re-synthesis of journal-committed HLS stages.

TEST(FlowService, ChaosSweepEveryFaultKindEverySeed) {
    const std::vector<ServiceFaultKind>& kinds = allServiceFaultKinds();
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const std::string root = freshDir("chaos_s" + std::to_string(seed));
        const ServiceFaultPlan chaos{seed};
        std::vector<FlowHandle> handles;
        std::vector<std::string> pendingAfterCrash;  // "<tenant>|<project>"
        // Kernels whose shared store object an ArtifactCorrupt tenant
        // flipped this seed: their recovery may legitimately include one
        // healing re-synthesis, so the strict zero-resynthesis assertion
        // exempts them.
        std::set<std::string> corruptedKernels;
        {
            ServiceConfig config = baseConfig(root);
            config.flowRunners = 4;
            config.maxQueuedFlows = 16;
            FlowService service(config, exampleKernels());
            for (int t = 0; t < 8; ++t) {
                const std::string tenant = "t" + std::to_string(t);
                const std::string project =
                    "p" + std::to_string(t) + "_s" + std::to_string(seed);
                const ServiceFaultKind kind =
                    kinds[(static_cast<std::size_t>(t) + seed) % kinds.size()];
                FlowRequest request = makeRequest(tenant, project);
                request.faults = chaos.planFor(tenant, project, kind, graphStages(),
                                               graphKernels(), /*hangMs=*/400);
                if (kind == ServiceFaultKind::ArtifactCorrupt) {
                    corruptedKernels.insert(graphKernels()[static_cast<std::size_t>(
                        chaos.mix(tenant, project) % graphKernels().size())]);
                }
                if (kind == ServiceFaultKind::StageHang) {
                    request.stageDeadlineMs = 120.0;
                }
                handles.push_back(service.submit(request));
                if (kind == ServiceFaultKind::QueueStorm) {
                    // Burst: more submissions than the tenant's queue
                    // depth; overflow must come back as structured
                    // rejections, never block or crash the service.
                    TenantConfig tight;
                    tight.maxQueueDepth = 2;
                    service.configureTenant(tenant, tight);
                    const std::size_t burst = 3 + chaos.mix(tenant, project) % 3;
                    for (std::size_t b = 0; b < burst; ++b) {
                        handles.push_back(service.submit(makeRequest(
                            tenant, project + "_storm" + std::to_string(b))));
                    }
                }
            }
            service.drain();
            for (const FlowHandle& handle : handles) {
                ASSERT_TRUE(handle.isTerminal());
                const RequestOutcome outcome = handle.wait();
                switch (outcome.state) {
                case RequestState::Completed:
                    EXPECT_EQ(outcome.bitstreamDigest, referenceDigest(handle.project()))
                        << "seed " << seed << " " << handle.project();
                    break;
                case RequestState::Rejected:
                    EXPECT_NE(outcome.rejectReason, RejectReason::None);
                    EXPECT_FALSE(outcome.error.empty());
                    break;
                case RequestState::Crashed:
                    EXPECT_FALSE(outcome.error.empty());
                    pendingAfterCrash.push_back(handle.tenant() + "|" + handle.project());
                    break;
                case RequestState::Failed:
                    EXPECT_FALSE(outcome.error.empty());
                    break;
                default:
                    FAIL() << "non-terminal outcome in drained service";
                }
            }
            ASSERT_FALSE(pendingAfterCrash.empty());  // crash kinds always fire
        }

        // What did each crashed flow durably commit before dying?
        std::map<std::string, std::vector<std::string>> committedOf;
        for (const std::string& key : pendingAfterCrash) {
            const std::string tenant = key.substr(0, key.find('|'));
            const std::string project = key.substr(key.find('|') + 1);
            const core::FlowJournal journal = core::FlowJournal::open(
                root + "/tenants/" + tenant + "/.socgen/journal/" + project + ".jsonl");
            committedOf[key] = journal.committedStages();
        }

        // Kill + restart: the new instance must resume every pending
        // flow bit-identically with zero re-synthesis of committed work.
        FlowService restarted(baseConfig(root), exampleKernels());
        const std::vector<FlowHandle> recovered = restarted.recoverPending();
        ASSERT_EQ(recovered.size(), pendingAfterCrash.size()) << "seed " << seed;
        for (const FlowHandle& handle : recovered) {
            const RequestOutcome outcome = handle.wait();
            ASSERT_EQ(outcome.state, RequestState::Completed)
                << "seed " << seed << ": " << outcome.error;
            EXPECT_EQ(outcome.bitstreamDigest, referenceDigest(handle.project()));
            EXPECT_EQ(outcome.diagnostics.digestMismatches, 0u);
            const auto& committed =
                committedOf.at(handle.tenant() + "|" + handle.project());
            for (const std::string& stage : committed) {
                if (stage.rfind("hls:", 0) != 0) {
                    continue;
                }
                const std::string nodeName = stage.substr(4);
                if (corruptedKernels.count(nodeName) > 0) {
                    continue;  // may need one healing re-synthesis
                }
                for (const auto& node : outcome.diagnostics.nodes) {
                    if (node.node != nodeName) {
                        continue;
                    }
                    EXPECT_EQ(node.attempts, 0u)
                        << "seed " << seed << ": " << stage << " re-synthesized";
                    EXPECT_DOUBLE_EQ(node.toolSeconds, 0.0) << stage;
                    EXPECT_TRUE(node.storeHit || node.cacheHit) << stage;
                }
            }
        }
        std::filesystem::remove_all(root);
    }
}

// ---------------------------------------------------------------------------
// The worker-fleet kill storm (the ISSUE's second acceptance gate):
// flows execute HLS on out-of-process workers while a seeded killer
// SIGKILLs random workers at random moments — including the guaranteed
// pre-submission kill of an idle worker. Every flow must complete
// bit-identically to the in-process reference; a warm restart on the
// same root must then serve every committed node from the store with
// zero re-synthesis; and no stale-epoch commit may ever be applied.

TEST(FlowService, WorkerKillStormCompletesBitIdenticalWithZeroResynthesis) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const std::string root = freshDir("storm_s" + std::to_string(seed));
        {
            ServiceConfig config = baseConfig(root);
            config.workers = 2;
            // Odd seeds additionally crash every first dispatch exactly at
            // the attempt/commit stage boundary (the worst-case instant).
            config.fleetConfig.crashWorkerBeforeResultForTest = seed % 2 == 1;
            FlowService service(config, exampleKernels());
            ASSERT_NE(service.fleet(), nullptr);

            // Wait for a worker, then kill one while idle: guarantees at
            // least one death per seed regardless of killer-thread timing.
            const auto deadline =
                std::chrono::steady_clock::now() + std::chrono::seconds(30);
            while (service.fleet()->workerPids().empty() &&
                   std::chrono::steady_clock::now() < deadline) {
                std::this_thread::sleep_for(std::chrono::milliseconds(10));
            }
            ASSERT_TRUE(service.fleet()->killRandomWorker(seed).has_value());

            std::atomic<bool> stop{false};
            std::thread killer([&] {
                std::uint64_t s = seed;
                while (!stop.load()) {
                    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20 + s % 60));
                    (void)service.fleet()->killRandomWorker(s);
                }
            });

            std::vector<FlowHandle> handles;
            for (int t = 0; t < 8; ++t) {
                handles.push_back(
                    service.submit(makeRequest("t" + std::to_string(t),
                                               "storm" + std::to_string(t) + "_s" +
                                                   std::to_string(seed))));
            }
            service.drain();
            stop.store(true);
            killer.join();

            for (const FlowHandle& handle : handles) {
                const RequestOutcome outcome = handle.wait();
                ASSERT_EQ(outcome.state, RequestState::Completed)
                    << "seed " << seed << ": " << outcome.error;
                EXPECT_EQ(outcome.bitstreamDigest, referenceDigest(handle.project()))
                    << "seed " << seed << " " << handle.project();
            }
            const WorkerFleetStats fleetStats = service.fleet()->stats();
            EXPECT_GE(fleetStats.kills, 1u) << "seed " << seed;
            // No corrupt object may appear, and the store's fence is the
            // final word on stale commits: whatever was rejected, what
            // landed on disk produced the reference bitstreams above.
            EXPECT_EQ(service.store().quarantinedObjects(), 0u);
        }

        // Warm restart with workers still enabled: every HLS node is
        // served from the committed store — zero re-synthesis after the
        // storm, byte-for-byte the same bitstreams.
        {
            ServiceConfig config = baseConfig(root);
            config.workers = 2;
            FlowService service(config, exampleKernels());
            EXPECT_EQ(service.scrubQuarantined(), 0u) << "seed " << seed;
            std::vector<FlowHandle> handles;
            for (int t = 0; t < 8; ++t) {
                handles.push_back(
                    service.submit(makeRequest("t" + std::to_string(t),
                                               "warm" + std::to_string(t) + "_s" +
                                                   std::to_string(seed))));
            }
            service.drain();
            for (const FlowHandle& handle : handles) {
                const RequestOutcome outcome = handle.wait();
                ASSERT_EQ(outcome.state, RequestState::Completed)
                    << "seed " << seed << ": " << outcome.error;
                EXPECT_EQ(outcome.bitstreamDigest, referenceDigest(handle.project()));
                for (const auto& node : outcome.diagnostics.nodes) {
                    EXPECT_EQ(node.attempts, 0u)
                        << "seed " << seed << ": " << node.node
                        << " re-synthesized after the storm";
                    EXPECT_TRUE(node.storeHit || node.cacheHit) << node.node;
                }
            }
        }
        std::filesystem::remove_all(root);
    }
}

// ---------------------------------------------------------------------------
// Self-healing store, exercised through the service: an object corrupted
// on disk between service generations is quarantined — by the startup
// scrub or by the read path — and transparently re-synthesized, with the
// flow completing bit-identically either way.

TEST(FlowService, CorruptedObjectIsQuarantinedByStartupScrub) {
    const std::string root = freshDir("scrubheal");
    {
        FlowService service(baseConfig(root), exampleKernels());
        const RequestOutcome outcome =
            service.submit(makeRequest("t0", "seedrun")).wait();
        ASSERT_EQ(outcome.state, RequestState::Completed);
    }
    std::size_t objects = 0;
    {
        const core::ArtifactStore store(root + "/store");
        objects = store.objectCount();
        ASSERT_GE(objects, 3u);
        store.corruptObject(store.keys().front());
    }
    FlowService healed(baseConfig(root), exampleKernels());
    EXPECT_EQ(healed.scrubQuarantined(), 1u);
    EXPECT_EQ(healed.store().objectCount(), objects - 1);
    const RequestOutcome outcome = healed.submit(makeRequest("t1", "healrun")).wait();
    ASSERT_EQ(outcome.state, RequestState::Completed);
    EXPECT_EQ(outcome.bitstreamDigest, referenceDigest("healrun"));
    // The quarantined key was re-synthesized and re-committed.
    EXPECT_EQ(healed.store().objectCount(), objects);
}

TEST(FlowService, CorruptedObjectIsQuarantinedOnReadPath) {
    const std::string root = freshDir("readheal");
    {
        FlowService service(baseConfig(root), exampleKernels());
        const RequestOutcome outcome =
            service.submit(makeRequest("t0", "seedrun")).wait();
        ASSERT_EQ(outcome.state, RequestState::Completed);
    }
    std::size_t objects = 0;
    {
        const core::ArtifactStore store(root + "/store");
        objects = store.objectCount();
        store.corruptObject(store.keys().front());
    }
    ServiceConfig config = baseConfig(root);
    config.scrubOnOpen = false;  // force the read path to find the corpse
    FlowService service(config, exampleKernels());
    EXPECT_EQ(service.scrubQuarantined(), 0u);
    const RequestOutcome outcome = service.submit(makeRequest("t1", "healrun")).wait();
    ASSERT_EQ(outcome.state, RequestState::Completed);
    EXPECT_EQ(outcome.bitstreamDigest, referenceDigest("healrun"));
    EXPECT_EQ(service.store().quarantinedObjects(), 1u);
    ASSERT_EQ(service.store().quarantineRecords().size(), 1u);
    EXPECT_FALSE(service.store().quarantineRecords()[0].reason.empty());
    EXPECT_EQ(service.store().objectCount(), objects);
}

// ---------------------------------------------------------------------------
// The shared stage pool's weighted fair queueing, tested directly: with
// one worker and pre-filled queues, dispatch counts are proportional to
// weights in every prefix, and the in-flight cap is never exceeded.

TEST(FlowService, StagePoolDispatchesByWeightDeterministically) {
    SharedStagePool pool(1);
    pool.configureTenant("heavy", /*weight=*/2, /*maxInFlightStages=*/1);
    pool.configureTenant("light", /*weight=*/1, /*maxInFlightStages=*/1);
    const auto heavy = pool.schedulerFor("heavy");
    const auto light = pool.schedulerFor("light");

    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    std::vector<std::string> order;
    std::size_t done = 0;

    // Plug the single worker so both queues fill before dispatch starts.
    const auto plug = pool.schedulerFor("plug");
    plug->submit([&] {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return release; });
        ++done;
        cv.notify_all();
    });
    const auto record = [&](const char* name) {
        return [&, name] {
            const std::lock_guard<std::mutex> lock(mutex);
            order.push_back(name);
            ++done;
            cv.notify_all();
        };
    };
    for (int i = 0; i < 6; ++i) {
        heavy->submit(record("heavy"));
    }
    for (int i = 0; i < 3; ++i) {
        light->submit(record("light"));
    }
    {
        const std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return done == 10; });
    }
    ASSERT_EQ(order.size(), 9u);
    // Weight 2 vs 1: in every prefix, heavy never lags light and never
    // leads by more than its fair 2:1 share allows.
    int heavySeen = 0;
    int lightSeen = 0;
    for (const std::string& name : order) {
        if (name == "heavy") {
            ++heavySeen;
        } else {
            ++lightSeen;
        }
        EXPECT_LE(lightSeen, heavySeen / 2 + 1) << "light overserved";
        EXPECT_LE(heavySeen, 2 * lightSeen + 2) << "heavy overserved";
    }
    EXPECT_EQ(heavySeen, 6);
    EXPECT_EQ(lightSeen, 3);
    EXPECT_EQ(pool.stats().tasksExecuted, 10u);
}

// ---------------------------------------------------------------------------
// Seed determinism of the chaos assignment itself: the same (seed,
// tenant, project, kind) always renders the same plan; different seeds
// pick different victims somewhere in the sweep.

TEST(FlowService, ServiceFaultPlansAreSeedDeterministic) {
    const ServiceFaultPlan a{7};
    const ServiceFaultPlan b{7};
    const ServiceFaultPlan c{8};
    bool anyDifference = false;
    for (const ServiceFaultKind kind : allServiceFaultKinds()) {
        for (int t = 0; t < 4; ++t) {
            const std::string tenant = "t" + std::to_string(t);
            const sim::FaultPlan planA =
                a.planFor(tenant, "p", kind, graphStages(), graphKernels());
            const sim::FaultPlan planB =
                b.planFor(tenant, "p", kind, graphStages(), graphKernels());
            const sim::FaultPlan planC =
                c.planFor(tenant, "p", kind, graphStages(), graphKernels());
            EXPECT_EQ(planA.render(), planB.render()) << toString(kind);
            if (planA.render() != planC.render()) {
                anyDifference = true;
            }
        }
    }
    EXPECT_TRUE(anyDifference);
}

} // namespace
} // namespace socgen::svc
