#include "socgen/apps/kernels.hpp"
#include "socgen/apps/otsu.hpp"
#include "socgen/common/error.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/hls/interpreter.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <map>

namespace socgen::hls {
namespace {

/// Vector-backed test harness for running kernels without a SoC.
class VectorIo : public KernelIo {
public:
    std::map<PortId, std::uint64_t> args;
    std::map<PortId, std::uint64_t> results;
    std::map<PortId, std::deque<std::uint64_t>> inputs;
    std::map<PortId, std::vector<std::uint64_t>> outputs;
    std::size_t outputCapacity = SIZE_MAX;

    std::uint64_t argValue(PortId port) override { return args[port]; }
    void setResult(PortId port, std::uint64_t value) override { results[port] = value; }
    bool streamRead(PortId port, std::uint64_t& value) override {
        auto& queue = inputs[port];
        if (queue.empty()) {
            return false;
        }
        value = queue.front();
        queue.pop_front();
        return true;
    }
    bool streamWrite(PortId port, std::uint64_t value) override {
        auto& sink = outputs[port];
        if (sink.size() >= outputCapacity) {
            return false;
        }
        sink.push_back(value);
        return true;
    }
};

struct RunResult {
    std::uint64_t cycles = 0;
    std::uint64_t stalls = 0;
};

RunResult runToCompletion(const Program& program, VectorIo& io,
                          std::uint64_t maxCycles = 10'000'000) {
    KernelVm vm(program, io);
    vm.start();
    std::uint64_t guard = 0;
    while (vm.running()) {
        vm.tick();
        if (++guard > maxCycles) {
            throw SimulationError("kernel did not finish");
        }
    }
    return RunResult{vm.cycles(), vm.stallCycles()};
}

Program compile(const Kernel& kernel, Directives d = {}) {
    return compileKernel(kernel, scheduleKernel(kernel, d));
}

TEST(Vm, AddKernelComputesSum) {
    const Kernel k = apps::makeAddKernel();
    const Program p = compile(k);
    VectorIo io;
    io.args[k.portId("A")] = 19;
    io.args[k.portId("B")] = 23;
    runToCompletion(p, io);
    EXPECT_EQ(io.results[k.portId("return")], 42u);
}

TEST(Vm, MulKernelMasksToWidth) {
    const Kernel k = apps::makeMulKernel();
    const Program p = compile(k);
    VectorIo io;
    io.args[k.portId("A")] = 0x80000000ull;
    io.args[k.portId("B")] = 2;
    runToCompletion(p, io);
    EXPECT_EQ(io.results[k.portId("return")], 0u);  // 33rd bit truncated
}

TEST(Vm, GaussMatchesReference) {
    std::vector<std::uint8_t> input;
    for (int i = 0; i < 200; ++i) {
        input.push_back(static_cast<std::uint8_t>((i * 37 + 11) % 256));
    }
    const Kernel k = apps::makeGaussKernel(static_cast<std::int64_t>(input.size()));
    const Program p = compile(k);
    VectorIo io;
    for (auto v : input) {
        io.inputs[k.portId("in")].push_back(v);
    }
    runToCompletion(p, io);
    const auto expected = apps::gaussRef(input);
    const auto& actual = io.outputs[k.portId("out")];
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i], expected[i]) << "at " << i;
    }
}

TEST(Vm, EdgeMatchesReference) {
    std::vector<std::uint8_t> input{0, 10, 250, 250, 3, 77, 76, 255, 0};
    const Kernel k = apps::makeEdgeKernel(static_cast<std::int64_t>(input.size()));
    const Program p = compile(k);
    VectorIo io;
    for (auto v : input) {
        io.inputs[k.portId("in")].push_back(v);
    }
    runToCompletion(p, io);
    const auto expected = apps::edgeRef(input);
    const auto& actual = io.outputs[k.portId("out")];
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i], expected[i]) << "at " << i;
    }
}

TEST(Vm, HistogramMatchesReference) {
    apps::GrayImage img(16, 16);
    for (unsigned i = 0; i < img.pixelCount(); ++i) {
        img.pixels()[i] = static_cast<std::uint8_t>((i * i) % 251);
    }
    const auto expected = apps::histogramRef(img);
    const Kernel k = apps::makeHistogramKernel(static_cast<std::int64_t>(img.pixelCount()));
    const Program p = compile(k);
    VectorIo io;
    for (auto v : img.pixels()) {
        io.inputs[k.portId("grayScaleImage")].push_back(v);
    }
    runToCompletion(p, io);
    const auto& actual = io.outputs[k.portId("histogram")];
    ASSERT_EQ(actual.size(), 256u);
    for (std::size_t i = 0; i < 256; ++i) {
        EXPECT_EQ(actual[i], expected[i]) << "bin " << i;
    }
}

class OtsuVmVectors : public testing::TestWithParam<std::uint64_t> {};

TEST_P(OtsuVmVectors, ThresholdMatchesReference) {
    const apps::GrayImage img = apps::makeSyntheticGrayScene(32, 32, GetParam());
    const auto hist = apps::histogramRef(img);
    const std::uint32_t expected = apps::otsuThresholdRef(hist, img.pixelCount());

    const Kernel k = apps::makeOtsuKernel(static_cast<std::int64_t>(img.pixelCount()));
    const Program p = compile(k, apps::otsuDirectives());
    VectorIo io;
    for (auto v : hist) {
        io.inputs[k.portId("histogram")].push_back(v);
    }
    runToCompletion(p, io);
    const auto& actual = io.outputs[k.portId("probability")];
    ASSERT_EQ(actual.size(), 1u);
    EXPECT_EQ(actual[0], expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OtsuVmVectors, testing::Values(1u, 7u, 42u, 99u, 1234u));

TEST(Vm, BinarizationReadsThresholdFirst) {
    const Kernel k = apps::makeBinarizationKernel(6);
    const Program p = compile(k);
    VectorIo io;
    io.inputs[k.portId("otsuThreshold")].push_back(100);
    for (std::uint64_t v : {5ull, 100ull, 101ull, 255ull, 0ull, 200ull}) {
        io.inputs[k.portId("grayScaleImage")].push_back(v);
    }
    runToCompletion(p, io);
    const auto& out = io.outputs[k.portId("segmentedGrayImage")];
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 0, 255, 255, 0, 255}));
}

TEST(Vm, StallsWhenInputMissing) {
    const Kernel k = apps::makeEdgeKernel(4);
    const Program p = compile(k);
    VectorIo io;  // no input data at all
    KernelVm vm(p, io);
    vm.start();
    for (int i = 0; i < 50; ++i) {
        vm.tick();
    }
    EXPECT_TRUE(vm.running());
    EXPECT_GT(vm.stallCycles(), 0u);
    // Provide the data; the kernel finishes.
    for (std::uint64_t v : {1ull, 2ull, 3ull, 4ull}) {
        io.inputs[k.portId("in")].push_back(v);
    }
    std::uint64_t guard = 0;
    while (vm.running() && ++guard < 10000) {
        vm.tick();
    }
    EXPECT_TRUE(vm.finished());
    EXPECT_EQ(io.outputs[k.portId("out")].size(), 4u);
}

TEST(Vm, BackpressureOnFullOutput) {
    const Kernel k = apps::makeEdgeKernel(8);
    const Program p = compile(k);
    VectorIo io;
    io.outputCapacity = 2;
    for (int i = 0; i < 8; ++i) {
        io.inputs[k.portId("in")].push_back(static_cast<std::uint64_t>(i));
    }
    KernelVm vm(p, io);
    vm.start();
    for (int i = 0; i < 200; ++i) {
        vm.tick();
    }
    EXPECT_TRUE(vm.running());  // blocked on the full output
    EXPECT_EQ(io.outputs[k.portId("out")].size(), 2u);
    io.outputCapacity = SIZE_MAX;
    std::uint64_t guard = 0;
    while (vm.running() && ++guard < 10000) {
        vm.tick();
    }
    EXPECT_EQ(io.outputs[k.portId("out")].size(), 8u);
}

TEST(Vm, CycleCountTracksScheduleIi) {
    // The gauss loop is paced by its scheduled II: total cycles must be at
    // least trip * II and not wildly more (inputs are all available).
    const std::int64_t n = 500;
    const Kernel k = apps::makeGaussKernel(n);
    const KernelSchedule s = scheduleKernel(k, Directives{});
    const Program p = compileKernel(k, s);
    VectorIo io;
    for (std::int64_t i = 0; i < n; ++i) {
        io.inputs[k.portId("in")].push_back(7);
    }
    const RunResult r = runToCompletion(p, io);
    ASSERT_EQ(s.loops.size(), 1u);
    const std::int64_t ii = s.loops[0].ii;
    EXPECT_GE(r.cycles, static_cast<std::uint64_t>(n * ii));
    EXPECT_LE(r.cycles, static_cast<std::uint64_t>(n * ii + s.loops[0].body.length + 16));
}

TEST(Vm, ArraysPersistAcrossInvocations) {
    // BRAM contents survive ap_start (hardware behaviour): the histogram
    // kernel clears its table explicitly, so two runs agree.
    const Kernel k = apps::makeHistogramKernel(8);
    const Program p = compile(k);
    VectorIo io;
    KernelVm vm(p, io);
    for (int run = 0; run < 2; ++run) {
        io.outputs.clear();
        for (int i = 0; i < 8; ++i) {
            io.inputs[k.portId("grayScaleImage")].push_back(3);
        }
        vm.start();
        std::uint64_t guard = 0;
        while (vm.running() && ++guard < 100000) {
            vm.tick();
        }
        EXPECT_EQ(io.outputs[k.portId("histogram")][3], 8u) << "run " << run;
    }
}

TEST(Vm, OutOfBoundsArrayAccessThrows) {
    KernelBuilder kb("oob");
    const PortId out = kb.streamOut("out", 32);
    const ArrayId arr = kb.array("arr", 4, 32);
    kb.write(out, kb.load(arr, kb.c(9)));
    const Kernel k = kb.build();
    const Program p = compile(k);
    VectorIo io;
    KernelVm vm(p, io);
    vm.start();
    EXPECT_THROW(
        {
            for (int i = 0; i < 10 && vm.running(); ++i) {
                vm.tick();
            }
        },
        SimulationError);
}

TEST(Bytecode, DisassembleMentionsStructure) {
    const Kernel k = apps::makeGaussKernel(32);
    const Program p = compile(k);
    const std::string text = p.disassemble();
    EXPECT_NE(text.find("srd"), std::string::npos);
    EXPECT_NE(text.find("swr"), std::string::npos);
    EXPECT_NE(text.find("cost"), std::string::npos);
    EXPECT_NE(text.find("jmp"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(Bytecode, RegisterCountCoversVarsAndTemps) {
    const Kernel k = apps::makeOtsuKernel(64);
    const Program p = compile(k, apps::otsuDirectives());
    EXPECT_GE(p.registerCount, static_cast<std::uint32_t>(k.vars().size()));
    EXPECT_EQ(p.varWidth.size(), k.vars().size());
    EXPECT_EQ(p.arrays.size(), k.arrays().size());
    EXPECT_EQ(p.ports.size(), k.ports().size());
}

} // namespace
} // namespace socgen::hls
