#include "socgen/apps/kernels.hpp"
#include "socgen/apps/otsu.hpp"
#include "socgen/common/error.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/hls/interpreter.hpp"
#include "socgen/hls/unroll.hpp"
#include "socgen/hls/verify.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <map>

namespace socgen::hls {
namespace {

class VecIo : public KernelIo {
public:
    std::map<PortId, std::uint64_t> args;
    std::map<PortId, std::uint64_t> results;
    std::map<PortId, std::deque<std::uint64_t>> inputs;
    std::map<PortId, std::vector<std::uint64_t>> outputs;

    std::uint64_t argValue(PortId port) override { return args[port]; }
    void setResult(PortId port, std::uint64_t value) override { results[port] = value; }
    bool streamRead(PortId port, std::uint64_t& value) override {
        auto& q = inputs[port];
        if (q.empty()) {
            return false;
        }
        value = q.front();
        q.pop_front();
        return true;
    }
    bool streamWrite(PortId port, std::uint64_t value) override {
        outputs[port].push_back(value);
        return true;
    }
};

void runKernel(const Kernel& kernel, VecIo& io) {
    Directives d;
    const Program p = compileKernel(kernel, scheduleKernel(kernel, d));
    KernelVm vm(p, io);
    vm.start();
    std::uint64_t guard = 0;
    while (vm.running() && ++guard < 10'000'000) {
        vm.tick();
    }
    ASSERT_TRUE(vm.finished());
}

/// out[i] = i * 3 over `n` values.
Kernel rampKernel(std::int64_t n) {
    KernelBuilder kb("ramp");
    const PortId out = kb.streamOut("out", 32);
    const VarId i = kb.var("i", 32);
    kb.forLoop(i, kb.c(n));
    kb.write(out, kb.mul(kb.v(i), kb.c(3)));
    kb.endLoop();
    return kb.build();
}

class UnrollFactors : public testing::TestWithParam<std::pair<int, std::int64_t>> {};

TEST_P(UnrollFactors, SemanticsPreserved) {
    const auto [factor, trip] = GetParam();
    const Kernel original = rampKernel(trip);
    UnrollStats stats;
    const Kernel unrolled = unrollLoops(original, {{"i", factor}}, &stats);
    EXPECT_NO_THROW(verify(unrolled));
    if (factor > 1) {
        EXPECT_EQ(stats.loopsUnrolled, 1u);
        EXPECT_EQ(stats.epilogueIterations,
                  static_cast<std::size_t>(trip % factor));
    }
    VecIo a;
    VecIo b;
    runKernel(original, a);
    runKernel(unrolled, b);
    EXPECT_EQ(a.outputs[0], b.outputs[0]);
    ASSERT_EQ(b.outputs[0].size(), static_cast<std::size_t>(trip));
    EXPECT_EQ(b.outputs[0][trip - 1], static_cast<std::uint64_t>((trip - 1) * 3));
}

INSTANTIATE_TEST_SUITE_P(Cases, UnrollFactors,
                         testing::Values(std::make_pair(1, 16ll), std::make_pair(2, 16ll),
                                         std::make_pair(4, 16ll), std::make_pair(4, 18ll),
                                         std::make_pair(8, 5ll),   // full epilogue
                                         std::make_pair(3, 17ll)));

TEST(Unroll, DynamicBoundLoopLeftAlone) {
    KernelBuilder kb("dyn");
    const PortId n = kb.scalarIn("n", 32);
    const PortId out = kb.streamOut("out", 32);
    const VarId i = kb.var("i", 32);
    kb.forLoop(i, kb.arg(n));
    kb.write(out, kb.v(i));
    kb.endLoop();
    UnrollStats stats;
    const Kernel u = unrollLoops(kb.build(), {{"i", 4}}, &stats);
    EXPECT_EQ(stats.loopsUnrolled, 0u);
    VecIo io;
    io.args[0] = 5;
    runKernel(u, io);
    EXPECT_EQ(io.outputs[1].size(), 5u);
}

TEST(Unroll, StatefulLoopStaysCorrect) {
    // Accumulator carried across replicated bodies: sum of 0..n-1.
    constexpr std::int64_t n = 22;
    KernelBuilder kb("acc");
    const PortId r = kb.scalarOut("r", 32);
    const VarId i = kb.var("i", 32);
    const VarId acc = kb.var("acc", 32);
    kb.assign(acc, kb.c(0));
    kb.forLoop(i, kb.c(n));
    kb.assign(acc, kb.add(kb.v(acc), kb.v(i)));
    kb.endLoop();
    kb.setResult(r, kb.v(acc));
    const Kernel u = unrollLoops(kb.build(), {{"i", 4}});
    VecIo io;
    runKernel(u, io);
    EXPECT_EQ(io.results[0], static_cast<std::uint64_t>(n * (n - 1) / 2));
}

TEST(Unroll, GaussUnrolledMatchesReference) {
    // Cross-iteration register state (p1/p2) must survive unrolling.
    std::vector<std::uint8_t> input;
    for (int i = 0; i < 100; ++i) {
        input.push_back(static_cast<std::uint8_t>((i * 41 + 3) % 256));
    }
    const Kernel gauss = apps::makeGaussKernel(static_cast<std::int64_t>(input.size()));
    const Kernel u = unrollLoops(gauss, {{"i", 4}});
    VecIo io;
    for (auto v : input) {
        io.inputs[0].push_back(v);
    }
    runKernel(u, io);
    const auto expected = apps::gaussRef(input);
    ASSERT_EQ(io.outputs[1].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(io.outputs[1][i], expected[i]) << i;
    }
}

TEST(Unroll, ReducesCyclesForRecurrenceFreeLoops) {
    // Independent per-iteration work (no loop-carried value): unrolling
    // exposes ILP and the scheduler keeps II at 1 across k elements.
    constexpr std::int64_t n = 1024;
    KernelBuilder kb("poly");
    const PortId r = kb.scalarOut("r", 32);
    const VarId i = kb.var("i", 32);
    kb.forLoop(i, kb.c(n));
    kb.setResult(r, kb.bin(BinOp::Xor, kb.add(kb.mul(kb.v(i), kb.c(3)), kb.c(7)),
                           kb.shr(kb.v(i), kb.c(2))));
    kb.endLoop();
    const Kernel base = kb.build();

    Directives d;
    d.enableOptimizer = false;
    d.maxMulUnits = 4;  // enough DSP multipliers for the replicated work
    const KernelSchedule plain = scheduleKernel(base, d);
    const KernelSchedule unrolled = scheduleKernel(unrollLoops(base, {{"i", 4}}), d);
    ASSERT_EQ(plain.loops.size(), 1u);
    ASSERT_EQ(unrolled.loops.size(), 1u);
    EXPECT_LT(unrolled.loops[0].totalCycles * 2, plain.loops[0].totalCycles);
}

TEST(Unroll, ScalarReductionGainsNothing) {
    // acc += f(i) carries a dependence through every replicated body: the
    // recurrence II grows with the factor and throughput stays flat —
    // exactly what real HLS reports without reassociation.
    constexpr std::int64_t n = 1024;
    KernelBuilder kb("acc");
    const PortId r = kb.scalarOut("r", 32);
    const VarId i = kb.var("i", 32);
    const VarId acc = kb.var("acc", 32);
    kb.forLoop(i, kb.c(n));
    kb.assign(acc, kb.add(kb.v(acc), kb.bin(BinOp::Xor, kb.v(i), kb.c(0x55))));
    kb.endLoop();
    kb.setResult(r, kb.v(acc));
    const Kernel base = kb.build();

    Directives d;
    d.enableOptimizer = false;
    const KernelSchedule plain = scheduleKernel(base, d);
    const KernelSchedule unrolled = scheduleKernel(unrollLoops(base, {{"i", 4}}), d);
    const double gain = static_cast<double>(plain.loops[0].totalCycles) /
                        static_cast<double>(unrolled.loops[0].totalCycles);
    EXPECT_LT(gain, 1.3);
}

TEST(Unroll, EngineDirectiveIntegration) {
    Directives d;
    d.unrollFactors["i"] = 2;
    const HlsResult r = HlsEngine{}.synthesize(rampKernel(64), d);
    EXPECT_NE(r.reportText.find("unroll: 1 loops unrolled"), std::string::npos);
    EXPECT_NE(r.directiveText.find("set_directive_unroll -factor 2"), std::string::npos);
    // The unrolled datapath is larger than the rolled one.
    const HlsResult rolled = HlsEngine{}.synthesize(rampKernel(64), Directives{});
    EXPECT_GT(r.resources.lut, rolled.resources.lut);
}

TEST(Unroll, HistogramUnrollIsSafeButNotFaster) {
    // The histogram update has a loop-carried memory recurrence: unroll
    // replicates accesses to the same BRAM, so the scheduler must not
    // promise a speedup — but semantics stay intact.
    const Kernel hist = apps::makeHistogramKernel(64);
    const Kernel u = unrollLoops(hist, {{"i", 2}});
    VecIo a;
    VecIo b;
    for (int i = 0; i < 64; ++i) {
        a.inputs[0].push_back(static_cast<std::uint64_t>(i % 7));
        b.inputs[0].push_back(static_cast<std::uint64_t>(i % 7));
    }
    runKernel(hist, a);
    runKernel(u, b);
    EXPECT_EQ(a.outputs[1], b.outputs[1]);
}

} // namespace
} // namespace socgen::hls
