#include "socgen/common/error.hpp"
#include "socgen/rtl/primitives.hpp"
#include "socgen/rtl/sim_backend.hpp"
#include "socgen/rtl/vcd.hpp"
#include "socgen/rtl/verilog.hpp"

#include <gtest/gtest.h>

namespace socgen::rtl {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
    return haystack.find(needle) != std::string::npos;
}

TEST(Verilog, AdderModuleStructure) {
    const std::string v = VerilogEmitter{}.emit(makeAdder("my_adder", 16));
    EXPECT_TRUE(contains(v, "module my_adder ("));
    EXPECT_TRUE(contains(v, "input wire clk"));
    EXPECT_TRUE(contains(v, "input wire rst"));
    EXPECT_TRUE(contains(v, "input wire [15:0] a"));
    EXPECT_TRUE(contains(v, "output wire [15:0] sum"));
    EXPECT_TRUE(contains(v, "endmodule"));
    EXPECT_TRUE(contains(v, " + "));
}

TEST(Verilog, SingleBitPortsHaveNoRange) {
    NetlistBuilder b("bit");
    const NetId x = b.inputPort("x", 1);
    b.outputPort("y", b.unary(CellKind::Not, x, 1));
    const std::string v = VerilogEmitter{}.emit(b.netlist());
    EXPECT_TRUE(contains(v, "input wire x"));
    EXPECT_FALSE(contains(v, "input wire [0:0]"));
    EXPECT_TRUE(contains(v, "~"));
}

TEST(Verilog, SequentialCellsUseAlwaysBlocks) {
    const std::string v = VerilogEmitter{}.emit(makeCounter("ctr", 8));
    EXPECT_TRUE(contains(v, "always @(posedge clk)"));
    EXPECT_TRUE(contains(v, "if (rst)"));
    EXPECT_TRUE(contains(v, "<="));
}

TEST(Verilog, BramDeclaresMemoryArray) {
    NetlistBuilder b("memmod");
    const NetId addr = b.inputPort("addr", 8);
    const NetId wdata = b.inputPort("wdata", 16);
    const NetId we = b.inputPort("we", 1);
    b.outputPort("rdata", b.bram(addr, wdata, we, 16, 128, "tbl"));
    const std::string v = VerilogEmitter{}.emit(b.netlist());
    EXPECT_TRUE(contains(v, "_mem [0:127];"));
}

TEST(Verilog, MuxEmitsTernary) {
    NetlistBuilder b("muxmod");
    const NetId sel = b.inputPort("sel", 1);
    const NetId a = b.inputPort("a", 8);
    const NetId c = b.inputPort("b", 8);
    b.outputPort("y", b.mux(sel, a, c, 8));
    const std::string v = VerilogEmitter{}.emit(b.netlist());
    EXPECT_TRUE(contains(v, "?"));
    EXPECT_TRUE(contains(v, ":"));
}

TEST(Verilog, DeterministicAndRejectsInvalid) {
    const Netlist n = makeMac("mac", 16);
    EXPECT_EQ(VerilogEmitter{}.emit(n), VerilogEmitter{}.emit(n));
    Netlist bad("bad");
    (void)bad.addNet("floating", 4);
    EXPECT_THROW((void)VerilogEmitter{}.emit(bad), Error);
}

// ---------------------------------------------------------------------------
// VCD traces

TEST(Vcd, HeaderDeclaresAllPorts) {
    const Netlist n = makeCounter("ctr", 8);
    const auto simPtr = makeSimulator(n);
    Simulator& sim = *simPtr;
    VcdTrace trace(n, sim);
    sim.setInput("en", 1);
    sim.evaluate();
    trace.sample();
    const std::string vcd = trace.render();
    EXPECT_TRUE(contains(vcd, "$timescale"));
    EXPECT_TRUE(contains(vcd, "$scope module ctr $end"));
    EXPECT_TRUE(contains(vcd, "$var wire 1 "));
    EXPECT_TRUE(contains(vcd, "$var wire 8 "));
    EXPECT_TRUE(contains(vcd, "$enddefinitions $end"));
}

TEST(Vcd, RecordsValueChangesOnly) {
    const Netlist n = makeCounter("ctr", 8);
    const auto simPtr = makeSimulator(n);
    Simulator& sim = *simPtr;
    VcdTrace trace(n, sim);
    sim.setInput("en", 0);
    for (int i = 0; i < 5; ++i) {
        sim.step();
        sim.evaluate();
        trace.sample();  // nothing changes after the first sample
    }
    const std::string quiet = trace.render();
    // Exactly one timestamp section with changes (#0) plus the closing
    // timestamp.
    EXPECT_TRUE(contains(quiet, "#0"));
    EXPECT_FALSE(contains(quiet, "#1\n"));
    EXPECT_EQ(trace.sampleCount(), 5u);
}

TEST(Vcd, CountingProducesPerCycleChanges) {
    const Netlist n = makeCounter("ctr", 8);
    const auto simPtr = makeSimulator(n);
    Simulator& sim = *simPtr;
    VcdTrace trace(n, sim);
    sim.setInput("en", 1);
    for (int i = 0; i < 4; ++i) {
        sim.step();
        sim.evaluate();
        trace.sample();
    }
    const std::string vcd = trace.render();
    EXPECT_TRUE(contains(vcd, "#0"));
    EXPECT_TRUE(contains(vcd, "#1"));
    EXPECT_TRUE(contains(vcd, "#3"));
    EXPECT_TRUE(contains(vcd, "b000"));  // multi-bit values in binary form
}

TEST(Vcd, ExtraNetsAreTraced) {
    NetlistBuilder b("extra");
    const NetId x = b.inputPort("x", 4);
    const NetId doubled = b.binary(CellKind::Add, x, x, 4);   // internal net
    const NetId plusOne = b.binary(CellKind::Add, doubled, b.constant(1, 4), 4);
    b.outputPort("y", plusOne);
    const Netlist& n = b.netlist();
    const auto simPtr = makeSimulator(n);
    Simulator& sim = *simPtr;
    VcdTrace trace(n, sim, {doubled});
    sim.setInput("x", 3);
    sim.evaluate();
    trace.sample();
    EXPECT_TRUE(contains(trace.render(), "ADD"));  // the internal net's name
    EXPECT_EQ(sim.output("y"), 7u);
}

} // namespace
} // namespace socgen::rtl
