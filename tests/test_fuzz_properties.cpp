// Property-based tests over randomly generated inputs:
//  1. random kernels: the VM output is invariant under optimize() and
//     unrollLoops() — the transforms preserve semantics by construction;
//  2. random task graphs: renderDsl() followed by parseDsl() is the
//     identity;
//  3. random stream pipelines: a generated multi-core system computes the
//     composition of its stages' software references;
//  4. random netlists: every corpus shape (wide buses, paired BRAM ports,
//     deep chains) is accepted by the emitters, simulators and tracer.

#include "netlist_gen.hpp"
#include "socgen/apps/kernels.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/hash.hpp"
#include "socgen/core/journal.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/hls/interpreter.hpp"
#include "socgen/hls/optimize.hpp"
#include "socgen/hls/unroll.hpp"
#include "socgen/hls/verify.hpp"
#include "socgen/rtl/compiled_sim.hpp"
#include "socgen/rtl/sim_backend.hpp"
#include "socgen/rtl/vcd.hpp"
#include "socgen/rtl/verilog.hpp"
#include "socgen/rtl/vhdl.hpp"
#include "socgen/socgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <filesystem>
#include <map>

namespace socgen {
namespace {

/// xorshift64* PRNG for reproducible fuzzing.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(seed * 2654435761u + 1) {}
    std::uint64_t next() {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545F4914F6CDD1DULL;
    }
    std::uint64_t below(std::uint64_t n) { return next() % n; }

private:
    std::uint64_t state_;
};

class FuzzIo : public hls::KernelIo {
public:
    std::map<hls::PortId, std::uint64_t> args;
    std::map<hls::PortId, std::uint64_t> results;
    std::map<hls::PortId, std::deque<std::uint64_t>> inputs;
    std::map<hls::PortId, std::vector<std::uint64_t>> outputs;

    std::uint64_t argValue(hls::PortId port) override { return args[port]; }
    void setResult(hls::PortId port, std::uint64_t value) override {
        results[port] = value;
    }
    bool streamRead(hls::PortId port, std::uint64_t& value) override {
        auto& q = inputs[port];
        if (q.empty()) {
            return false;
        }
        value = q.front();
        q.pop_front();
        return true;
    }
    bool streamWrite(hls::PortId port, std::uint64_t value) override {
        outputs[port].push_back(value);
        return true;
    }
};

/// Builds a random kernel: scalar args, local vars, one constant-trip
/// loop with a random straight-line body of assignments and stream
/// writes, and a final scalar result.
hls::Kernel randomKernel(std::uint64_t seed) {
    using namespace hls;
    Rng rng(seed);
    KernelBuilder kb("fuzz" + std::to_string(seed));
    const PortId argA = kb.scalarIn("argA", 32);
    const PortId argB = kb.scalarIn("argB", 16);
    const PortId out = kb.streamOut("out", 32);
    const PortId res = kb.scalarOut("res", 32);

    std::vector<VarId> vars;
    const std::size_t varCount = 2 + rng.below(4);
    for (std::size_t v = 0; v < varCount; ++v) {
        vars.push_back(kb.var("v" + std::to_string(v),
                              static_cast<unsigned>(8 + 8 * rng.below(4))));
    }
    const VarId i = kb.var("i", 32);

    // Random expression over available values; bounded depth.
    const std::function<ExprId(int)> randomExpr = [&](int depth) -> ExprId {
        if (depth <= 0 || rng.below(3) == 0) {
            switch (rng.below(4)) {
            case 0: return kb.c(static_cast<std::int64_t>(rng.below(1000)));
            case 1: return kb.v(vars[rng.below(vars.size())]);
            case 2: return kb.arg(rng.below(2) == 0 ? argA : argB);
            default: return kb.v(i);
            }
        }
        static constexpr std::array<BinOp, 12> kOps{
            BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And, BinOp::Or,
            BinOp::Xor, BinOp::Shr, BinOp::Min, BinOp::Max, BinOp::Lt,
            BinOp::Div, BinOp::Mod};
        const BinOp op = kOps[rng.below(kOps.size())];
        ExprId lhs = randomExpr(depth - 1);
        ExprId rhs = randomExpr(depth - 1);
        if (op == BinOp::Shr) {
            rhs = kb.bin(BinOp::And, rhs, kb.c(15));  // keep shifts sane
        }
        if (op == BinOp::Div || op == BinOp::Mod) {
            rhs = kb.bin(BinOp::Max, rhs, kb.c(1));  // no division by zero
        }
        if (rng.below(5) == 0) {
            return kb.select(kb.gt(lhs, rhs), lhs, rhs);
        }
        return kb.bin(op, lhs, rhs);
    };

    // Preamble assignments.
    for (std::size_t s = 0; s < 1 + rng.below(3); ++s) {
        kb.assign(vars[rng.below(vars.size())], randomExpr(2));
    }
    // The loop.
    const std::int64_t trip = 3 + static_cast<std::int64_t>(rng.below(14));
    kb.forLoop(i, kb.c(trip));
    for (std::size_t s = 0; s < 2 + rng.below(4); ++s) {
        if (rng.below(3) == 0) {
            kb.write(out, randomExpr(2));
        } else {
            kb.assign(vars[rng.below(vars.size())], randomExpr(3));
        }
    }
    kb.write(out, kb.v(vars[rng.below(vars.size())]));
    kb.endLoop();
    kb.setResult(res, randomExpr(3));
    return kb.build();
}

struct RunOutput {
    std::vector<std::uint64_t> stream;
    std::uint64_t result = 0;
};

RunOutput runFuzz(const hls::Kernel& kernel, std::uint64_t argA, std::uint64_t argB) {
    hls::Directives d;
    d.enableOptimizer = false;
    const hls::Program p =
        hls::compileKernel(kernel, hls::scheduleKernel(kernel, d));
    FuzzIo io;
    io.args[kernel.portId("argA")] = argA;
    io.args[kernel.portId("argB")] = argB;
    hls::KernelVm vm(p, io);
    vm.start();
    std::uint64_t guard = 0;
    while (vm.running()) {
        vm.tick();
        if (++guard > 5'000'000) {
            throw SimulationError("fuzz kernel hung");
        }
    }
    return RunOutput{io.outputs[kernel.portId("out")],
                     io.results[kernel.portId("res")]};
}

class KernelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelFuzz, OptimizerPreservesSemantics) {
    const hls::Kernel original = randomKernel(GetParam());
    ASSERT_NO_THROW(hls::verify(original));
    const hls::Kernel optimised = hls::optimize(original);
    ASSERT_NO_THROW(hls::verify(optimised));
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> argSets{
        {0, 0}, {5, 9}, {0xFFFFFFFF, 1}, {12345, 54321}};
    for (const auto& [a, b] : argSets) {
        const RunOutput x = runFuzz(original, a, b);
        const RunOutput y = runFuzz(optimised, a, b);
        ASSERT_EQ(x.stream, y.stream) << "seed " << GetParam() << " args " << a;
        ASSERT_EQ(x.result, y.result) << "seed " << GetParam();
    }
}

TEST_P(KernelFuzz, UnrollPreservesSemantics) {
    const hls::Kernel original = randomKernel(GetParam());
    for (const int factor : {2, 3, 4}) {
        const hls::Kernel unrolled = hls::unrollLoops(original, {{"i", factor}});
        ASSERT_NO_THROW(hls::verify(unrolled));
        const RunOutput x = runFuzz(original, 77, 11);
        const RunOutput y = runFuzz(unrolled, 77, 11);
        ASSERT_EQ(x.stream, y.stream) << "seed " << GetParam() << " factor " << factor;
        ASSERT_EQ(x.result, y.result);
    }
}

TEST_P(KernelFuzz, FullHlsPipelineAccepts) {
    // Schedule, bind, lower to RTL, emit HDL — no crashes, valid netlists.
    const hls::HlsResult r =
        hls::HlsEngine{}.synthesize(randomKernel(GetParam()), hls::Directives{});
    EXPECT_FALSE(r.vhdl.empty());
    EXPECT_FALSE(r.verilog.empty());
    EXPECT_GT(r.resources.lut, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Task-graph render/parse roundtrip

core::TaskGraph randomGraph(std::uint64_t seed) {
    Rng rng(seed);
    core::TaskGraph tg;
    const std::size_t chainLength = 1 + rng.below(5);
    // A stream chain soc -> n0 -> n1 -> ... -> soc.
    for (std::size_t n = 0; n < chainLength; ++n) {
        core::TgNode node;
        node.name = "N" + std::to_string(n);
        node.ports.push_back(core::TgPort{"in", hls::InterfaceProtocol::AxiStream});
        node.ports.push_back(core::TgPort{"out", hls::InterfaceProtocol::AxiStream});
        tg.addNode(std::move(node));
    }
    tg.addLink(core::TgLink{core::TgEndpoint::socEnd(), core::TgEndpoint::of("N0", "in")});
    for (std::size_t n = 0; n + 1 < chainLength; ++n) {
        tg.addLink(core::TgLink{core::TgEndpoint::of("N" + std::to_string(n), "out"),
                                core::TgEndpoint::of("N" + std::to_string(n + 1), "in")});
    }
    tg.addLink(core::TgLink{
        core::TgEndpoint::of("N" + std::to_string(chainLength - 1), "out"),
        core::TgEndpoint::socEnd()});
    // A few AXI-Lite nodes.
    const std::size_t liteCount = rng.below(4);
    for (std::size_t n = 0; n < liteCount; ++n) {
        core::TgNode node;
        node.name = "L" + std::to_string(n);
        const std::size_t portCount = 1 + rng.below(4);
        for (std::size_t p = 0; p < portCount; ++p) {
            node.ports.push_back(core::TgPort{"p" + std::to_string(p),
                                              hls::InterfaceProtocol::AxiLite});
        }
        tg.addNode(std::move(node));
        tg.addConnect(core::TgConnect{"L" + std::to_string(n)});
    }
    tg.validate();
    return tg;
}

class GraphFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphFuzz, RenderParseRoundTrip) {
    const core::TaskGraph tg = randomGraph(GetParam());
    const core::ParsedDsl parsed = core::parseDsl(tg.renderDsl("fuzz"));
    EXPECT_TRUE(parsed.graph == tg) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzz, ::testing::Range<std::uint64_t>(1, 26));

// ---------------------------------------------------------------------------
// Random GAUSS/EDGE pipelines end to end

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, RandomFilterChainsMatchComposedReferences) {
    Rng rng(GetParam());
    constexpr std::int64_t n = 96;
    const std::size_t stages = 1 + rng.below(4);

    // Random sequence of GAUSS/EDGE stages.
    std::vector<bool> isGauss;
    hls::KernelLibrary kernels;
    core::TaskGraph tg;
    std::vector<std::string> names;
    for (std::size_t s = 0; s < stages; ++s) {
        const bool gauss = rng.below(2) == 0;
        isGauss.push_back(gauss);
        const std::string name = (gauss ? "G" : "E") + std::to_string(s);
        names.push_back(name);
        // KernelLibrary keys by kernel name; rebuild the GAUSS/EDGE body
        // under this node's unique name.
        hls::KernelBuilder kb(name);
        const hls::PortId in = kb.streamIn("in", 8);
        const hls::PortId out = kb.streamOut("out", 8);
        const hls::VarId i = kb.var("i", 32);
        const hls::VarId cur = kb.var("cur", 8);
        const hls::VarId p1 = kb.var("p1", 8);
        const hls::VarId p2 = kb.var("p2", 8);
        kb.assign(p1, kb.c(0));
        kb.assign(p2, kb.c(0));
        kb.forLoop(i, kb.c(n));
        kb.assign(cur, kb.read(in));
        if (gauss) {
            kb.write(out, kb.shr(kb.add(kb.add(kb.v(p2), kb.shl(kb.v(p1), kb.c(1))),
                                        kb.v(cur)),
                                 kb.c(2)));
            kb.assign(p2, kb.v(p1));
            kb.assign(p1, kb.v(cur));
        } else {
            kb.write(out, kb.select(kb.gt(kb.v(cur), kb.v(p1)),
                                    kb.sub(kb.v(cur), kb.v(p1)),
                                    kb.sub(kb.v(p1), kb.v(cur))));
            kb.assign(p1, kb.v(cur));
        }
        kb.endLoop();
        kernels.add(kb.build());
        tg.addNode(core::TgNode{name,
                                {core::TgPort{"in", hls::InterfaceProtocol::AxiStream},
                                 core::TgPort{"out", hls::InterfaceProtocol::AxiStream}}});
    }
    tg.addLink(core::TgLink{core::TgEndpoint::socEnd(),
                            core::TgEndpoint::of(names.front(), "in")});
    for (std::size_t s = 0; s + 1 < stages; ++s) {
        tg.addLink(core::TgLink{core::TgEndpoint::of(names[s], "out"),
                                core::TgEndpoint::of(names[s + 1], "in")});
    }
    tg.addLink(core::TgLink{core::TgEndpoint::of(names.back(), "out"),
                            core::TgEndpoint::socEnd()});

    core::Flow flow(core::FlowOptions{}, kernels);
    const core::FlowResult result = flow.run("fuzzchain", tg);

    // Input and composed reference.
    std::vector<std::uint8_t> data(n);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>(rng.below(256));
    }
    std::vector<std::uint8_t> expected = data;
    for (std::size_t s = 0; s < stages; ++s) {
        expected = isGauss[s] ? apps::gaussRef(expected) : apps::edgeRef(expected);
    }

    soc::SystemSimulator sim(result.design, result.programs);
    std::vector<std::uint32_t> words(data.begin(), data.end());
    sim.ps().task("stage", 10, [words](soc::Memory& mem) {
        mem.writeBlock(0x100, words);
    });
    sim.psArmReadDma("axi_dma_0", 0, 0x8000, n);
    sim.psWriteDma("axi_dma_0", 0, 0x100, n);
    sim.psWaitReadDma("axi_dma_0");
    (void)sim.run();
    const auto actual = sim.memory().readBlock(0x8000, n);
    for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(actual[i], expected[i])
            << "seed " << GetParam() << " stage-count " << stages << " at " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// 4. Random netlists: the grown fuzz corpus (wide >64-bit buses, paired
//    BRAM ports with write collisions, deep serial combinational chains)
//    produces structurally sound netlists that every consumer accepts —
//    both HDL emitters, both simulation engines, and the VCD tracer.
// ---------------------------------------------------------------------------

class NetlistShapeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistShapeFuzz, CorpusShapesArePresentAndAllConsumersAcceptThem) {
    const std::uint64_t seed = GetParam();
    const auto opt = socgen::testing::sweepOptions(seed);
    const rtl::Netlist netlist = socgen::testing::randomNetlist(seed, opt);

    // The advertised shapes actually appear on their scheduled seeds.
    if (opt.wideBuses > 0) {
        bool sawWide = false;
        for (const auto& net : netlist.nets()) {
            EXPECT_LE(net.width, 128u) << "seed " << seed;
            sawWide = sawWide || net.width > 64;
        }
        EXPECT_TRUE(sawWide) << "seed " << seed << " scheduled wide buses";
    }
    if (opt.bramPairs > 0) {
        // Each pair is two Bram cells sharing address and write-data nets
        // (independent enables), so same-address collisions are reachable.
        unsigned brams = 0;
        bool sawSharedInputs = false;
        std::map<rtl::NetId, unsigned> addrUses;
        for (const auto& cell : netlist.cells()) {
            if (cell.kind != rtl::CellKind::Bram) {
                continue;
            }
            ++brams;
            if (++addrUses[cell.inputs.front()] > 1) {
                sawSharedInputs = true;
            }
        }
        EXPECT_GE(brams, opt.bramPairs * 2 + opt.brams) << "seed " << seed;
        EXPECT_TRUE(sawSharedInputs) << "seed " << seed << " scheduled BRAM pairs";
    }
    if (opt.chainDepth > 0) {
        // The chain is serial, so levelization depth must grow with it.
        rtl::CompiledSim sim(netlist);
        EXPECT_GE(sim.levelCount(), static_cast<std::size_t>(opt.chainDepth))
            << "seed " << seed;
    }

    // Both HDL emitters render the netlist, including >64-bit ranges.
    const std::string vhdl = rtl::VhdlEmitter{}.emit(netlist);
    const std::string verilog = rtl::VerilogEmitter{}.emit(netlist);
    EXPECT_NE(vhdl.find("entity"), std::string::npos) << "seed " << seed;
    EXPECT_NE(verilog.find("module"), std::string::npos) << "seed " << seed;

    // Both engines simulate it, and the VCD tracer renders wide values.
    auto sim = rtl::makeSimulator(netlist);
    rtl::VcdTrace trace(netlist, *sim);
    Rng rng(seed ^ 0x5e115e11u);
    for (unsigned cycle = 0; cycle < 8; ++cycle) {
        for (const auto& port : netlist.ports()) {
            if (port.dir == rtl::PortDir::In) {
                sim->setInput(port.name, rng.next());
            }
        }
        sim->step();
        sim->evaluate();
        trace.sample();
    }
    EXPECT_NE(trace.render().find("$enddefinitions"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistShapeFuzz,
                         ::testing::ValuesIn(socgen::testing::diffSimSeeds()));

// ---------------------------------------------------------------------------
// 5. FlowJournal torn-tail compaction, exhaustively: truncate a valid
//    journal at EVERY byte offset — every crash point a real writer
//    could leave behind. Opening must always succeed (or raise a
//    structured socgen::Error, never anything else), recover exactly the
//    longest prefix of complete records, compact idempotently, and keep
//    accepting appends.

TEST(JournalTornTailFuzz, EveryTruncationOffsetRecoversTheValidPrefix) {
    const std::string dir = ::testing::TempDir() + "/socgen_fuzz_journal";
    std::filesystem::remove_all(dir);
    const std::string path = dir + "/journal.jsonl";
    {
        core::FlowJournal journal = core::FlowJournal::open(path);
        journal.reset("fingerprint-abc", "fuzz seed journal");
        for (const char* stage : {"scala", "hls:GAUSS", "hls:EDGE", "integrate",
                                  "synth", "artifacts"}) {
            journal.begin(stage);
            journal.commit(stage, digest128(std::string_view(stage)).hex());
        }
        journal.noteEvent("flow", "done");
    }
    const std::string full = readTextFile(path);
    ASSERT_GT(full.size(), 100u);

    for (std::size_t cut = 0; cut <= full.size(); ++cut) {
        const std::string truncated = full.substr(0, cut);
        // Complete lines in the truncated image — what recovery must keep.
        const std::size_t completeLines =
            static_cast<std::size_t>(std::count(truncated.begin(), truncated.end(), '\n'));
        writeTextFile(path, truncated);
        try {
            core::FlowJournal reopened = core::FlowJournal::open(path);
            EXPECT_EQ(reopened.records().size(), completeLines) << "cut=" << cut;
            // Compaction is idempotent: the file now holds exactly the
            // recovered records, and a second open sees the same thing.
            EXPECT_EQ(readTextFile(path), reopened.renderText()) << "cut=" << cut;
            EXPECT_EQ(core::FlowJournal::open(path).records().size(), completeLines);
            // The journal still accepts appends after recovery.
            reopened.commit("extra", "deadbeefdeadbeefdeadbeefdeadbeef");
            EXPECT_TRUE(core::FlowJournal::open(path).isCommitted("extra"))
                << "cut=" << cut;
        } catch (const Error& e) {
            // A structured error is an acceptable outcome for a mangled
            // file; silent corruption or a non-socgen exception is not.
            EXPECT_FALSE(std::string(e.what()).empty());
        }
    }
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace socgen
