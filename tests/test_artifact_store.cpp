// Sharded, self-healing artifact store tests (CTest labels:
// resilience;worker-fleet): digest-prefix shard layout, flat-store
// migration, read-path quarantine of corrupt objects, the scrub pass,
// and the lease-epoch commit fence that keeps zombie workers from
// clobbering retried attempts.

#include "socgen/apps/kernels.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/textfile.hpp"
#include "socgen/core/artifact_store.hpp"
#include "socgen/hls/engine.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include <unistd.h>

namespace socgen::core {
namespace {

namespace fs = std::filesystem;

struct StoreFixture {
    std::string root;
    hls::Kernel kernel = apps::makeMulKernel();
    hls::Directives directives;
    hls::HlsResult result;

    StoreFixture() {
        static int serial = 0;
        root = (fs::temp_directory_path() /
                ("socgen_store_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(serial++)))
                   .string();
        fs::remove_all(root);
        result = hls::HlsEngine().synthesize(kernel, directives);
    }
    ~StoreFixture() { fs::remove_all(root); }

    [[nodiscard]] std::string keyFor(const std::string& toolVersion) const {
        return ArtifactStore::deriveKey(kernel, directives, soc::zedboard(), toolVersion);
    }
};

TEST(ArtifactStoreShards, ObjectsLandInDigestPrefixDirectories) {
    StoreFixture fx;
    ArtifactStore store(fx.root);
    const std::string key = fx.keyFor("v1");
    store.store(key, fx.result);

    const fs::path expected = fs::path(fx.root) / "objects" /
                              key.substr(0, ArtifactStore::kShardPrefixLen) /
                              (key + ".art");
    EXPECT_TRUE(fs::is_regular_file(expected));
    EXPECT_TRUE(store.contains(key));
    EXPECT_EQ(store.objectCount(), 1u);
    ASSERT_TRUE(store.load(key).has_value());
}

TEST(ArtifactStoreShards, FlatLegacyObjectsMigrateOnOpen) {
    StoreFixture fx;
    const std::string key = fx.keyFor("v1");
    std::string encoded;
    {
        ArtifactStore store(fx.root);
        store.store(key, fx.result);
        encoded = readTextFile(fs::path(fx.root).string() + "/objects/" +
                               key.substr(0, ArtifactStore::kShardPrefixLen) + "/" + key +
                               ".art");
    }
    // Rebuild the pre-sharding layout: the object flat in objects/.
    fs::remove_all(fs::path(fx.root) / "objects");
    fs::create_directories(fs::path(fx.root) / "objects");
    writeFileAtomic(fs::path(fx.root).string() + "/objects/" + key + ".art", encoded);

    ArtifactStore reopened(fx.root);
    EXPECT_EQ(reopened.migratedObjects(), 1u);
    EXPECT_TRUE(fs::is_regular_file(fs::path(fx.root) / "objects" /
                                    key.substr(0, ArtifactStore::kShardPrefixLen) /
                                    (key + ".art")));
    EXPECT_FALSE(fs::exists(fs::path(fx.root) / "objects" / (key + ".art")));
    EXPECT_TRUE(reopened.load(key).has_value());
}

TEST(ArtifactStoreShards, ReclaimsTempFilesInsideShardDirectories) {
    StoreFixture fx;
    {
        ArtifactStore store(fx.root);
        store.store(fx.keyFor("v1"), fx.result);
    }
    writeFileAtomic(fx.root + "/objects/0123.art.tmp1", "torn");
    writeFileAtomic(fx.root + "/objects/ab/4567.art.tmp42", "torn");
    ArtifactStore reopened(fx.root);
    EXPECT_EQ(reopened.reclaimedTempFiles(), 2u);
    EXPECT_FALSE(fs::exists(fx.root + "/objects/0123.art.tmp1"));
    EXPECT_FALSE(fs::exists(fx.root + "/objects/ab/4567.art.tmp42"));
}

TEST(ArtifactStoreQuarantine, CorruptObjectIsQuarantinedOnLoad) {
    StoreFixture fx;
    ArtifactStore store(fx.root);
    const std::string key = fx.keyFor("v1");
    store.store(key, fx.result);
    store.corruptObject(key);

    ArtifactStore::LoadDiag diag;
    EXPECT_EQ(store.load(key, &diag), std::nullopt);
    EXPECT_FALSE(diag.whyMiss.empty());
    EXPECT_TRUE(diag.quarantined);
    EXPECT_TRUE(fs::is_regular_file(diag.quarantinePath));
    // The corpse left the object tree: the key now reads as a plain miss
    // and the caller re-synthesizes.
    EXPECT_FALSE(store.contains(key));
    EXPECT_EQ(store.quarantinedObjects(), 1u);
    ASSERT_EQ(store.quarantineRecords().size(), 1u);
    EXPECT_EQ(store.quarantineRecords()[0].key, key);

    // Re-synthesis heals transparently.
    store.store(key, fx.result);
    EXPECT_TRUE(store.load(key).has_value());
}

TEST(ArtifactStoreQuarantine, LoadOrThrowNamesTheFailure) {
    StoreFixture fx;
    ArtifactStore store(fx.root);
    const std::string key = fx.keyFor("v1");
    EXPECT_THROW((void)store.loadOrThrow(key), ArtifactError);

    store.store(key, fx.result);
    EXPECT_NO_THROW((void)store.loadOrThrow(key));

    store.corruptObject(key);
    // Corruption is a *named* error, never silently propagated downstream.
    EXPECT_THROW((void)store.loadOrThrow(key), ArtifactCorruptError);
    EXPECT_EQ(store.quarantinedObjects(), 1u);
}

TEST(ArtifactStoreQuarantine, ScrubWalksAllShardsAndHeals) {
    StoreFixture fx;
    ArtifactStore store(fx.root);
    const std::string k1 = fx.keyFor("v1");
    const std::string k2 = fx.keyFor("v2");
    const std::string k3 = fx.keyFor("v3");
    store.store(k1, fx.result);
    store.store(k2, fx.result);
    store.store(k3, fx.result);
    store.corruptObject(k2);

    const ArtifactStore::ScrubReport report = store.scrub();
    EXPECT_EQ(report.scanned, 3u);
    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_EQ(report.quarantined[0].first, k2);
    EXPECT_EQ(store.objectCount(), 2u);
    EXPECT_TRUE(store.load(k1).has_value());
    EXPECT_TRUE(store.load(k3).has_value());

    // A second scrub over the healed store finds nothing.
    const ArtifactStore::ScrubReport again = store.scrub();
    EXPECT_EQ(again.scanned, 2u);
    EXPECT_TRUE(again.quarantined.empty());
}

TEST(ArtifactStoreLeases, EpochsAreMonotonicPerKey) {
    StoreFixture fx;
    ArtifactStore store(fx.root);
    const std::string a = fx.keyFor("v1");
    const std::string b = fx.keyFor("v2");
    EXPECT_EQ(store.currentLease(a), 0u);
    EXPECT_EQ(store.acquireLease(a), 1u);
    EXPECT_EQ(store.acquireLease(a), 2u);
    EXPECT_EQ(store.acquireLease(b), 1u);  // independent per key
    EXPECT_EQ(store.currentLease(a), 2u);
}

TEST(ArtifactStoreLeases, StaleEpochCommitIsRejectedAndLogged) {
    StoreFixture fx;
    ArtifactStore store(fx.root);
    const std::string key = fx.keyFor("v1");

    // Dispatch 1 takes epoch 1; the worker is presumed dead and the
    // attempt re-dispatched under epoch 2, which commits.
    const std::uint64_t zombieEpoch = store.acquireLease(key);
    const std::uint64_t retryEpoch = store.acquireLease(key);
    store.storeFenced(key, fx.result, retryEpoch);
    ASSERT_TRUE(store.load(key).has_value());

    // The zombie resurrects and tries its late commit: rejected without
    // touching the object.
    EXPECT_THROW(store.storeFenced(key, fx.result, zombieEpoch), StaleLeaseError);
    EXPECT_EQ(store.staleCommitsRejected(), 1u);
    EXPECT_TRUE(store.load(key).has_value());

    // The current epoch may commit again (idempotent winner).
    EXPECT_NO_THROW(store.storeFenced(key, fx.result, retryEpoch));
}

} // namespace
} // namespace socgen::core
