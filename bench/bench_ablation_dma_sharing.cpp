// Section VII ablation: the paper argues its single shared DMA beats
// Xilinx SDSoC's one-DMA-per-parameter policy ("SDSoC instantiates a DMA
// component for each of them [N vector parameters]. This solution
// generally leads to unnecessarily increase the resource requirements").
// We build every case-study architecture under both policies and compare
// PL resources and end-to-end execution.

#include "otsu_bench_common.hpp"

#include <cstdio>

using namespace socgen;

int main() {
    Logger::global().setLevel(LogLevel::Error);
    benchsupport::CaseStudy cs;

    std::printf("DMA policy ablation — shared DMA (paper) vs DMA-per-link (SDSoC)\n\n");
    std::printf("%-6s %-9s %7s %8s %8s %7s %5s %12s\n", "arch", "policy", "DMAs", "LUT",
                "FF", "RAMB18", "DSP", "cycles");

    bool shapeOk = true;
    for (int arch = 1; arch <= 4; ++arch) {
        hls::ResourceEstimate sharedRes;
        hls::ResourceEstimate perLinkRes;
        for (const soc::DmaPolicy policy :
             {soc::DmaPolicy::SharedDma, soc::DmaPolicy::DmaPerLink}) {
            const core::FlowResult result = cs.buildArch(arch, policy);
            apps::OtsuSystemRunner runner(result, apps::otsuArchPartition(arch));
            const auto run = runner.run(cs.scene);
            const auto& r = result.synthesis.total;
            std::printf("Arch%-2d %-9s %7zu %8lld %8lld %7lld %5lld %12llu\n", arch,
                        policy == soc::DmaPolicy::SharedDma ? "shared" : "per-link",
                        result.design.dmaInstances().size(),
                        static_cast<long long>(r.lut), static_cast<long long>(r.ff),
                        static_cast<long long>(r.bram18), static_cast<long long>(r.dsp),
                        static_cast<unsigned long long>(run.cycles));
            if (policy == soc::DmaPolicy::SharedDma) {
                sharedRes = r;
            } else {
                perLinkRes = r;
            }
        }
        // The paper's claim: per-parameter DMAs inflate resources.
        shapeOk = shapeOk && perLinkRes.lut >= sharedRes.lut &&
                  perLinkRes.bram18 >= sharedRes.bram18;
    }
    std::printf("\nshape: per-link policy never cheaper in LUT/BRAM (paper's SDSoC "
                "critique): %s\n",
                shapeOk ? "HOLDS" : "VIOLATED");
    return shapeOk ? 0 : 1;
}
