// Figure 9 of the paper: "Time breakdown of the different actions needed
// to generate the four architectures of the case study". The paper
// reports ~42 minutes of vendor-tool time in total, dominated by the
// per-architecture synthesis runs, plus one HLS run per function (cores
// are generated once — Arch4 first) and ~6 s of Scala compilation.
//
// Our substituted tool models charge deterministic simulated tool-seconds
// per phase; the real host milliseconds of this reproduction are printed
// alongside.

#include "otsu_bench_common.hpp"

#include <cstdio>

using namespace socgen;

int main() {
    Logger::global().setLevel(LogLevel::Error);
    benchsupport::CaseStudy cs;

    PhaseTimeline combined;
    double totalHostMs = 0.0;
    // Paper order: Arch4 first so HLS happens once per function.
    const std::array<int, 4> order{4, 1, 2, 3};
    std::vector<std::pair<int, PhaseTimeline>> perArch;
    for (int arch : order) {
        const core::FlowResult result = cs.buildArch(arch);
        combined.append(result.timeline);
        totalHostMs += result.timeline.totalHostMs();
        perArch.emplace_back(arch, result.timeline);
    }

    std::printf("Figure 9 — generation-time breakdown (simulated tool-seconds)\n\n");
    std::printf("%-28s %14s %12s\n", "phase", "tool-seconds", "host-ms");
    for (const auto& [arch, timeline] : perArch) {
        for (const auto& phase : timeline.phases()) {
            std::printf("Arch%d %-22s %14.1f %12.3f\n", arch, phase.name.c_str(),
                        phase.toolSeconds, phase.hostMs);
        }
    }

    std::printf("\naggregate series (the Figure 9 bars):\n");
    const double scala = combined.toolSecondsFor("SCALA");
    const double hls = combined.toolSecondsFor("HLS");
    const double project = combined.toolSecondsFor("PROJECT");
    const double synth = combined.toolSecondsFor("SYNTH");
    const double sw = combined.toolSecondsFor("SW");
    const double total = combined.totalToolSeconds();
    std::printf("  %-22s %10.1f s  (paper: ~6 s per description)\n", "SCALA compile",
                scala);
    std::printf("  %-22s %10.1f s  (once per function)\n", "HLS core generation", hls);
    std::printf("  %-22s %10.1f s  (paper: ~50 s per architecture)\n",
                "Vivado project gen", project);
    std::printf("  %-22s %10.1f s  (synth+impl+bitstream per arch)\n",
                "synthesis to bitstream", synth);
    std::printf("  %-22s %10.1f s\n", "software generation", sw);
    std::printf("  %-22s %10.1f s = %.1f minutes  (paper: 42 minutes total)\n", "TOTAL",
                total, total / 60.0);
    std::printf("\nreal host time for the whole reproduction: %.1f ms\n", totalHostMs);

    const bool shapeOk = synth > project && synth > hls && total > 30 * 60 &&
                         total < 55 * 60;
    std::printf("shape: synthesis dominates every other phase, total within "
                "[30, 55] min (paper: 42): %s\n",
                shapeOk ? "HOLDS" : "VIOLATED");
    return shapeOk ? 0 : 1;
}
