// Table I of the paper: "Summary of the automatic generated
// implementation for the case study" — which application function is
// implemented as a hardware core in each architecture. Regenerated from
// the partition definitions and cross-checked against the lowered task
// graphs (the hardware node sets the flow actually builds).

#include "otsu_bench_common.hpp"

#include <cstdio>

using namespace socgen;

int main() {
    Logger::global().setLevel(LogLevel::Error);
    benchsupport::CaseStudy cs;

    // Paper stage labels -> our node names.
    const std::array<std::pair<const char*, const char*>, 4> columns{{
        {"grayScale", "grayScale"},
        {"histogram", "computeHistogram"},
        {"otsuMethod", "halfProbability"},
        {"binarization", "segment"},
    }};

    std::printf("Table I — summary of the automatically generated implementations\n");
    std::printf("%-10s", "Solution");
    for (const auto& [label, node] : columns) {
        std::printf(" %-14s", label);
    }
    std::printf("\n");
    for (int arch = 1; arch <= 4; ++arch) {
        const core::HtgPartition partition = apps::otsuArchPartition(arch);
        const core::TaskGraph graph = core::lowerToTaskGraph(cs.htg, partition);
        std::printf("Arch%-6d", arch);
        for (const auto& [label, node] : columns) {
            const bool hw = partition.of(node) == core::Mapping::Hardware;
            // Cross-check: the lowered graph contains the node iff HW.
            if (hw != graph.hasNode(node)) {
                std::printf("\nINTERNAL MISMATCH for %s\n", node);
                return 1;
            }
            std::printf(" %-14s", hw ? "x" : "");
        }
        std::printf("\n");
    }
    std::printf("\npaper Table I rows: Arch1={histogram}, Arch2={otsuMethod}, "
                "Arch3={histogram,otsuMethod}, Arch4={all} — reproduced above.\n");
    return 0;
}
