// HLS loop-unrolling ablation: estimated loop cycles and core resources
// vs unroll factor on two contrasting kernels — a compute-bound
// accumulation (unrolling helps until the scalar recurrence saturates)
// and the stream-bound grayScale kernel (the single AXI-Stream port
// bounds throughput regardless of factor). The classic area/throughput
// trade the UNROLL directive exposes.

#include "socgen/apps/otsu.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/hls/unroll.hpp"
#include "socgen/socgen.hpp"

#include <cstdio>

using namespace socgen;

namespace {

/// Recurrence-free per-element work: unrolling exposes ILP directly.
hls::Kernel polyKernel(std::int64_t n) {
    using namespace hls;
    KernelBuilder kb("poly");
    const PortId r = kb.scalarOut("r", 32);
    const VarId i = kb.var("i", 32);
    kb.forLoop(i, kb.c(n));
    kb.setResult(r, kb.bin(BinOp::Xor, kb.add(kb.mul(kb.v(i), kb.c(3)), kb.c(7)),
                           kb.shr(kb.v(i), kb.c(2))));
    kb.endLoop();
    return kb.build();
}

/// Scalar reduction: the loop-carried accumulator defeats unrolling.
hls::Kernel reduceKernel(std::int64_t n) {
    using namespace hls;
    KernelBuilder kb("reduce");
    const PortId r = kb.scalarOut("r", 32);
    const VarId i = kb.var("i", 32);
    const VarId acc = kb.var("acc", 32);
    kb.forLoop(i, kb.c(n));
    kb.assign(acc, kb.add(kb.v(acc), kb.bin(BinOp::Xor, kb.v(i), kb.c(0xA5))));
    kb.endLoop();
    kb.setResult(r, kb.v(acc));
    return kb.build();
}

std::int64_t loopCycles(const hls::HlsResult& r) {
    std::int64_t total = 0;
    for (const auto& loop : r.schedule.loops) {
        total += loop.totalCycles;
    }
    return total;
}

} // namespace

int main() {
    Logger::global().setLevel(LogLevel::Error);
    constexpr std::int64_t kN = 4096;

    std::printf("Loop-unrolling ablation (n = %lld)\n\n", static_cast<long long>(kN));
    std::printf("%-12s %7s %12s %10s %8s %8s\n", "kernel", "factor", "loop-cycles",
                "vs x1", "LUT", "FF");

    bool shapeOk = true;
    std::int64_t polyBase = 0;
    std::int64_t reduceBase = 0;
    std::int64_t grayBase = 0;
    for (const int factor : {1, 2, 4, 8}) {
        hls::Directives d;
        d.enableOptimizer = false;
        d.maxMulUnits = 8;  // a DSP-rich configuration so ILP can be used
        if (factor > 1) {
            d.unrollFactors["i"] = factor;
        }
        const hls::HlsResult r = hls::HlsEngine{}.synthesize(polyKernel(kN), d);
        const std::int64_t cycles = loopCycles(r);
        if (factor == 1) {
            polyBase = cycles;
        }
        std::printf("%-12s %7d %12lld %9.2fx %8lld %8lld\n", "poly", factor,
                    static_cast<long long>(cycles),
                    static_cast<double>(polyBase) / static_cast<double>(cycles),
                    static_cast<long long>(r.resources.lut),
                    static_cast<long long>(r.resources.ff));
        if (factor == 8) {
            shapeOk = shapeOk && cycles * 2 < polyBase;
        }
    }
    std::printf("\n");
    for (const int factor : {1, 2, 4, 8}) {
        hls::Directives d;
        d.enableOptimizer = false;
        if (factor > 1) {
            d.unrollFactors["i"] = factor;
        }
        const hls::HlsResult r = hls::HlsEngine{}.synthesize(reduceKernel(kN), d);
        const std::int64_t cycles = loopCycles(r);
        if (factor == 1) {
            reduceBase = cycles;
        }
        std::printf("%-12s %7d %12lld %9.2fx %8lld %8lld\n", "reduce", factor,
                    static_cast<long long>(cycles),
                    static_cast<double>(reduceBase) / static_cast<double>(cycles),
                    static_cast<long long>(r.resources.lut),
                    static_cast<long long>(r.resources.ff));
        if (factor == 8) {
            // Recurrence-bound: throughput flat within 30%.
            shapeOk = shapeOk && cycles * 10 > reduceBase * 7;
        }
    }
    std::printf("\n");
    for (const int factor : {1, 2, 4}) {
        hls::Directives d = apps::grayScaleDirectives();
        if (factor > 1) {
            d.unrollFactors["i"] = factor;
        }
        const hls::HlsResult r =
            hls::HlsEngine{}.synthesize(apps::makeGrayScaleKernel(kN), d);
        const std::int64_t cycles = loopCycles(r);
        if (factor == 1) {
            grayBase = cycles;
        }
        std::printf("%-12s %7d %12lld %9.2fx %8lld %8lld\n", "grayScale", factor,
                    static_cast<long long>(cycles),
                    static_cast<double>(grayBase) / static_cast<double>(cycles),
                    static_cast<long long>(r.resources.lut),
                    static_cast<long long>(r.resources.ff));
        // Stream-bound: at most marginal gains, growing area.
        if (factor == 4) {
            shapeOk = shapeOk && cycles > grayBase / 2;
        }
    }

    std::printf("\nshape: recurrence-free poly gains >2x at factor 8; scalar reduce "
                "and stream-bound grayScale stay flat (area grows): %s\n",
                shapeOk ? "HOLDS" : "VIOLATED");
    return shapeOk ? 0 : 1;
}
