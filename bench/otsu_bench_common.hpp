#pragma once

// Shared fixture for the case-study benches: builds the paper's four
// architectures (Table I) at the case-study image size with a shared HLS
// cache, exactly as Section VI does ("we first generated Arch4").

#include "socgen/apps/otsu_project.hpp"
#include "socgen/socgen.hpp"

#include <memory>
#include <vector>

namespace socgen::benchsupport {

inline constexpr unsigned kImageWidth = 128;
inline constexpr unsigned kImageHeight = 128;
inline constexpr std::int64_t kPixels =
    static_cast<std::int64_t>(kImageWidth) * kImageHeight;

struct CaseStudy {
    core::Htg htg = apps::makeOtsuHtg();
    hls::KernelLibrary kernels = apps::makeOtsuKernelLibrary(kPixels);
    std::shared_ptr<core::HlsCache> cache = std::make_shared<core::HlsCache>();
    apps::RgbImage scene = apps::makeSyntheticScene(kImageWidth, kImageHeight);

    core::FlowResult buildArch(int arch,
                               soc::DmaPolicy policy = soc::DmaPolicy::SharedDma) {
        core::FlowOptions options = apps::otsuFlowOptions();
        options.dmaPolicy = policy;
        core::Flow flow(options, kernels, cache);
        return flow.run(format("Arch%d", arch),
                        core::lowerToTaskGraph(htg, apps::otsuArchPartition(arch)));
    }

    /// Arch4 first (fills the cache), then 1..3 — the paper's order.
    std::vector<core::FlowResult> buildAll() {
        std::vector<core::FlowResult> results;
        results.push_back(buildArch(4));
        for (int arch = 1; arch <= 3; ++arch) {
            results.push_back(buildArch(arch));
        }
        // Reorder to Arch1..Arch4 for reporting.
        std::rotate(results.begin(), results.begin() + 1, results.end());
        return results;
    }
};

} // namespace socgen::benchsupport
