// Driver-ablation bench: the paper's generated drivers busy-wait on
// status registers (readDMA/writeDMA poll until idle). This bench
// compares that against interrupt-driven completion (F2P IRQ lines) on
// the Otsu Arch4 system: total cycles, PS bus traffic while waiting, and
// wakeup counts, across transfer sizes.

#include "otsu_bench_common.hpp"

#include <cstdio>

using namespace socgen;

int main() {
    Logger::global().setLevel(LogLevel::Error);

    std::printf("Driver completion ablation — polling vs interrupts (Otsu Arch4)\n\n");
    std::printf("%-8s %-10s %12s %14s %12s %9s\n", "image", "driver", "cycles",
                "driver-bus-cy", "ps-busy", "wakeups");

    bool shapeOk = true;
    for (unsigned side : {32u, 64u, 128u}) {
        const std::int64_t pixels = static_cast<std::int64_t>(side) * side;
        const core::Htg htg = apps::makeOtsuHtg();
        const hls::KernelLibrary kernels = apps::makeOtsuKernelLibrary(pixels);
        core::Flow flow(apps::otsuFlowOptions(), kernels,
                        std::make_shared<core::HlsCache>());
        const core::FlowResult result =
            flow.run("irqbench", core::lowerToTaskGraph(htg, apps::otsuArchPartition(4)));
        const apps::RgbImage scene = apps::makeSyntheticScene(side, side);
        const apps::GrayImage reference = apps::otsuFilterRef(scene);

        std::uint64_t pollingBus = 0;
        std::uint64_t irqBus = 0;
        for (const bool interrupts : {false, true}) {
            soc::SystemOptions options;
            options.useInterrupts = interrupts;
            apps::OtsuSystemRunner runner(result, apps::otsuArchPartition(4), options);
            // The runner builds its own simulator; rerun to collect the
            // PS statistics through the report.
            const auto run = runner.run(scene);
            if (!(run.output == reference)) {
                std::printf("OUTPUT MISMATCH\n");
                return 1;
            }
            // Parse "driver" cycles out of the report line "PS: ...".
            std::uint64_t driverBus = 0;
            std::uint64_t psBusy = 0;
            std::uint64_t wakeups = 0;
            std::sscanf(run.report.c_str() + run.report.find("PS: "),
                        "PS: %llu busy cycles (%*llu task, %llu driver, %llu irq",
                        reinterpret_cast<unsigned long long*>(&psBusy),
                        reinterpret_cast<unsigned long long*>(&driverBus),
                        reinterpret_cast<unsigned long long*>(&wakeups));
            std::printf("%3ux%-4u %-10s %12llu %14llu %12llu %9llu\n", side, side,
                        interrupts ? "irq" : "polling",
                        static_cast<unsigned long long>(run.cycles),
                        static_cast<unsigned long long>(driverBus),
                        static_cast<unsigned long long>(psBusy),
                        static_cast<unsigned long long>(wakeups));
            (interrupts ? irqBus : pollingBus) = driverBus;
        }
        shapeOk = shapeOk && irqBus * 2 < pollingBus;
    }
    std::printf("\nshape: interrupt driver uses <50%% of the polling driver's bus "
                "cycles at every size: %s\n",
                shapeOk ? "HOLDS" : "VIOLATED");
    return shapeOk ? 0 : 1;
}
