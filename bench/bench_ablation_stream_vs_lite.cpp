// Section II-B motivation: "The AXI-Lite protocol ... is well suited for
// small chunks of data or single data transfers ... The AXI-Stream
// protocol, instead, supports a continuous stream of data, thus reducing
// the transfer overhead". This bench measures, on the runtime models,
// the cycles needed to move a payload of N words from the PS to the PL
// and back via (a) memory-mapped AXI-Lite register writes/reads and
// (b) a DMA-driven AXI-Stream loopback, and reports the crossover.

#include "socgen/axi/lite.hpp"
#include "socgen/axi/stream.hpp"
#include "socgen/sim/engine.hpp"
#include "socgen/soc/dma.hpp"
#include "socgen/soc/interconnect.hpp"
#include "socgen/soc/zynq_ps.hpp"
#include "socgen/socgen.hpp"

#include <cstdio>

using namespace socgen;

namespace {

/// PL-side scratch register file reachable over AXI-Lite.
class ScratchSlave : public axi::LiteSlave {
public:
    std::vector<std::uint32_t> regs = std::vector<std::uint32_t>(8192, 0);
    std::uint32_t readRegister(std::uint64_t offset) override { return regs[offset / 4]; }
    void writeRegister(std::uint64_t offset, std::uint32_t value) override {
        regs[offset / 4] = value;
    }
};

/// Round-trip of `words` via AXI-Lite: write each word, read each back.
std::uint64_t liteCycles(std::uint64_t words) {
    soc::Memory mem;
    axi::LiteBus bus;
    soc::GpInterconnect gp(bus);
    ScratchSlave slave;
    bus.mapSlave("scratch", axi::AddressRange{0x43C00000, 0x10000}, slave);
    soc::ZynqPs ps("ps", mem, gp);
    for (std::uint64_t i = 0; i < words; ++i) {
        ps.writeReg(0x43C00000 + 4 * i, static_cast<std::uint32_t>(i));
    }
    // Readback modelled as polls that match immediately.
    for (std::uint64_t i = 0; i < words; ++i) {
        ps.pollEq(0x43C00000 + 4 * i, 0xFFFFFFFF, static_cast<std::uint32_t>(i), 1);
    }
    sim::Engine engine;
    engine.add(ps);
    return engine.runUntilIdle();
}

/// Round-trip of `words` via DMA AXI-Stream loopback (MM2S -> channel ->
/// S2MM), driven by the generated-driver call sequence.
std::uint64_t streamCycles(std::uint64_t words) {
    soc::Memory mem;
    for (std::uint64_t i = 0; i < words; ++i) {
        mem.writeWord(0x100 + i, static_cast<std::uint32_t>(i));
    }
    axi::LiteBus bus;
    soc::GpInterconnect gp(bus);
    soc::DmaEngine dma("axi_dma_0", mem);
    axi::StreamChannel loop("loopback", 64, 32);
    (void)dma.attachMm2s(loop);
    (void)dma.attachS2mm(loop);
    bus.mapSlave("axi_dma_0", axi::AddressRange{0x40400000, 0x10000}, dma);
    soc::ZynqPs ps("ps", mem, gp);
    // arm S2MM, start MM2S, wait both (readDMA/writeDMA semantics).
    ps.writeReg(0x40400000 + soc::dmareg::kS2mmAddr, 0x8000);
    ps.writeReg(0x40400000 + soc::dmareg::kS2mmRoute, 0);
    ps.writeReg(0x40400000 + soc::dmareg::kS2mmLength,
                static_cast<std::uint32_t>(words));
    ps.writeReg(0x40400000 + soc::dmareg::kMm2sAddr, 0x100);
    ps.writeReg(0x40400000 + soc::dmareg::kMm2sRoute, 0);
    ps.writeReg(0x40400000 + soc::dmareg::kMm2sLength,
                static_cast<std::uint32_t>(words));
    ps.pollEq(0x40400000 + soc::dmareg::kMm2sStatus, soc::dmareg::kStatusIdle,
              soc::dmareg::kStatusIdle);
    ps.pollEq(0x40400000 + soc::dmareg::kS2mmStatus, soc::dmareg::kStatusIdle,
              soc::dmareg::kStatusIdle);
    sim::Engine engine;
    engine.add(ps);
    engine.add(dma);
    return engine.runUntilIdle();
}

} // namespace

int main() {
    Logger::global().setLevel(LogLevel::Error);
    std::printf("AXI-Lite vs AXI-Stream transfer cost (PS<->PL round trip)\n\n");
    std::printf("%8s %14s %14s %14s %s\n", "words", "lite-cycles", "stream-cycles",
                "lite/stream", "cheaper");

    std::uint64_t crossover = 0;
    for (std::uint64_t words : {1ull, 2ull, 4ull, 8ull, 16ull, 32ull, 64ull, 128ull,
                                256ull, 1024ull, 4096ull}) {
        const std::uint64_t lite = liteCycles(words);
        const std::uint64_t stream = streamCycles(words);
        std::printf("%8llu %14llu %14llu %13.2fx %s\n",
                    static_cast<unsigned long long>(words),
                    static_cast<unsigned long long>(lite),
                    static_cast<unsigned long long>(stream),
                    static_cast<double>(lite) / static_cast<double>(stream),
                    lite < stream ? "AXI-Lite" : "AXI-Stream");
        if (crossover == 0 && stream < lite) {
            crossover = words;
        }
    }
    std::printf("\ncrossover: AXI-Stream wins from ~%llu words; single transfers "
                "belong on AXI-Lite (Section II-B's protocol guidance)\n",
                static_cast<unsigned long long>(crossover));
    const bool shapeOk = crossover > 1 && crossover <= 64 &&
                         liteCycles(4096) > 4 * streamCycles(4096);
    std::printf("shape: small payloads favour AXI-Lite, large payloads favour "
                "AXI-Stream by >4x: %s\n",
                shapeOk ? "HOLDS" : "VIOLATED");
    return shapeOk ? 0 : 1;
}
