// Design-space exploration bench (the paper's declared future work,
// Section II-C): exhaustive sweep of all 16 HW/SW partitions of the Otsu
// pipeline. Every generated architecture is synthesized (resource model)
// and executed on the simulated board (cycles), each output verified
// against the software reference; the Pareto front is reported.

#include "socgen/apps/otsu_project.hpp"
#include "socgen/dse/explorer.hpp"
#include "socgen/socgen.hpp"

#include <cstdio>

using namespace socgen;

int main() {
    Logger::global().setLevel(LogLevel::Error);
    constexpr unsigned kW = 96;
    constexpr unsigned kH = 96;
    constexpr std::int64_t kPixels = static_cast<std::int64_t>(kW) * kH;

    const apps::RgbImage scene = apps::makeSyntheticScene(kW, kH);
    const apps::GrayImage reference = apps::otsuFilterRef(scene);
    const core::Htg htg = apps::makeOtsuHtg();
    const hls::KernelLibrary kernels = apps::makeOtsuKernelLibrary(kPixels);
    auto cache = std::make_shared<core::HlsCache>();

    const auto evaluate = [&](unsigned mask) {
        dse::DsePoint point;
        point.partition = apps::otsuMaskPartition(mask);
        std::string label = "HW{";
        for (std::size_t i = 0; i < apps::kOtsuStages.size(); ++i) {
            if ((mask & (1u << i)) != 0) {
                if (label.size() > 3) {
                    label += ",";
                }
                label += apps::kOtsuStages[i];
            }
        }
        point.label = label + "}";
        core::FlowOptions options = apps::otsuFlowOptions();
        options.dmaPolicy = soc::DmaPolicy::DmaPerLink;
        core::Flow flow(options, kernels, cache);
        const core::FlowResult result = flow.run(
            format("dse_%u", mask), core::lowerToTaskGraph(htg, point.partition));
        point.resources = result.synthesis.total;
        apps::OtsuSystemRunner runner(result, point.partition);
        const auto run = runner.run(scene);
        if (!(run.output == reference)) {
            throw Error("output mismatch vs software reference");
        }
        point.cycles = run.cycles;
        return point;
    };

    const auto points = dse::exploreExhaustive(4, evaluate);
    std::printf("DSE over the Otsu pipeline (%ux%u image, per-link DMA)\n\n%s\n", kW, kH,
                dse::renderTable(points).c_str());

    const auto front = dse::paretoFront(points);
    std::printf("Pareto front (LUT vs cycles):\n");
    for (const auto& p : front) {
        std::printf("  %-38s LUT=%-7lld cycles=%llu\n", p.label.c_str(),
                    static_cast<long long>(p.resources.lut),
                    static_cast<unsigned long long>(p.cycles));
    }

    // Greedy hill climbing (the heuristic class the paper defers to DSE
    // tools for) against the exhaustive ground truth.
    const dse::GreedyResult greedy = dse::exploreGreedy(4, evaluate);
    std::uint64_t bestCycles = ~0ull;
    for (const auto& p : points) {
        if (p.feasible) {
            bestCycles = std::min(bestCycles, p.cycles);
        }
    }
    std::printf("\ngreedy heuristic: %zu evaluations (exhaustive: %zu), trajectory:",
                greedy.evaluated.size(), points.size());
    for (unsigned mask : greedy.trajectory) {
        std::printf(" %u", mask);
    }
    std::printf("\n  best found: mask %u at %llu cycles (global optimum: %llu — %s)\n",
                greedy.best.mask, static_cast<unsigned long long>(greedy.best.cycles),
                static_cast<unsigned long long>(bestCycles),
                greedy.best.cycles == bestCycles ? "MATCHED" : "missed");

    // Shape: the all-software and all-hardware points are both on the
    // front, and full hardware is the fastest overall.
    bool hasSw = false;
    bool hasHw = false;
    std::uint64_t minCycles = ~0ull;
    unsigned fastest = 0;
    for (const auto& p : points) {
        if (p.feasible && p.cycles < minCycles) {
            minCycles = p.cycles;
            fastest = p.mask;
        }
    }
    for (const auto& p : front) {
        hasSw = hasSw || p.mask == 0;
        hasHw = hasHw || p.mask == 15;
    }
    const bool shapeOk = hasSw && hasHw && fastest == 15 &&
                         greedy.best.cycles == bestCycles;
    std::printf("\nshape: mask0 and mask15 Pareto-optimal, full-HW fastest, greedy "
                "finds the optimum: %s\n",
                shapeOk ? "HOLDS" : "VIOLATED");
    return shapeOk ? 0 : 1;
}
