// Incremental-rebuild benchmark for the journaled flow: builds the Otsu
// Arch4 case study cold (empty artifact store), then rebuilds the same
// project warm (every HLS core served from the store) and after a
// single-kernel directive change (only that core re-synthesized). The
// interesting number is the simulated tool-seconds avoided — with real
// vendor tools each avoided HLS run is minutes, not milliseconds.

#include "otsu_bench_common.hpp"

#include <cstdio>
#include <filesystem>

using namespace socgen;

namespace {

struct RunStats {
    double toolSeconds = 0.0;
    double hostMs = 0.0;
    std::size_t engineRuns = 0;
    std::size_t storeHits = 0;
};

RunStats runOnce(benchsupport::CaseStudy& cs, const std::string& outputDir,
                 int unrollSegment) {
    core::FlowOptions options = apps::otsuFlowOptions();
    options.outputDir = outputDir;
    if (unrollSegment > 1) {
        options.kernelDirectives["segment"].unrollFactors["i"] = unrollSegment;
    }
    // A fresh Flow and no shared in-memory cache: reuse must come from the
    // persistent store, as it would for a new tool process after a crash.
    core::Flow flow(options, cs.kernels);
    const core::FlowResult result = flow.run(
        "Arch4", core::lowerToTaskGraph(cs.htg, apps::otsuArchPartition(4)));
    RunStats stats;
    stats.toolSeconds = result.timeline.totalToolSeconds();
    stats.hostMs = result.timeline.totalHostMs();
    stats.engineRuns = result.diagnostics.engineRuns();
    stats.storeHits = result.diagnostics.storeHits();
    return stats;
}

} // namespace

int main() {
    Logger::global().setLevel(LogLevel::Error);
    benchsupport::CaseStudy cs;
    const std::string dir =
        (std::filesystem::temp_directory_path() / "socgen_bench_incremental").string();
    std::filesystem::remove_all(dir);

    const RunStats cold = runOnce(cs, dir, 1);
    const RunStats warm = runOnce(cs, dir, 1);
    const RunStats touched = runOnce(cs, dir, 4);  // one kernel's directives change
    const RunStats touchedWarm = runOnce(cs, dir, 4);
    std::filesystem::remove_all(dir);

    std::printf("Incremental rebuild via the journaled artifact store (Otsu Arch4)\n\n");
    std::printf("%-34s %14s %10s %10s %12s\n", "run", "tool-seconds", "HLS runs",
                "store hits", "host-ms");
    const auto row = [](const char* name, const RunStats& s) {
        std::printf("%-34s %14.1f %10zu %10zu %12.3f\n", name, s.toolSeconds,
                    s.engineRuns, s.storeHits, s.hostMs);
    };
    row("cold (empty store)", cold);
    row("warm (same inputs)", warm);
    row("one kernel's directives changed", touched);
    row("warm again (both variants stored)", touchedWarm);

    std::printf("\nwarm rebuild avoids %.1f simulated tool-seconds (%.1f%% of cold)\n",
                cold.toolSeconds - warm.toolSeconds,
                100.0 * (cold.toolSeconds - warm.toolSeconds) / cold.toolSeconds);
    std::printf("a single-kernel change re-runs %zu of %zu HLS cores\n",
                touched.engineRuns, cold.engineRuns);
    return 0;
}
