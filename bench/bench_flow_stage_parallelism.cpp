// Cross-stage parallelism benchmark for the stage-graph flow engine:
// builds the Otsu Arch4 pipeline (grayScale → gaussianBlur → sobel →
// segment, all four stages in hardware) serially (jobs=1) and with the
// DAG-parallel worker pool (jobs=4), comparing end-to-end wall-clock.
//
// What the real flow waits on is the external vendor tools: a Vivado HLS
// or synthesis run is minutes of *blocked* wall-clock (a subprocess), not
// host CPU — so DAG scheduling wins by overlapping those waits, even on a
// single host core. The bench models that with
// FlowOptions::toolLatencyMsPerToolSecond: every stage attempt blocks in
// proportion to its simulated tool-seconds. Both runs do identical work
// (fresh HLS cache each) and sleep for identical totals; the delta is
// pure scheduling.
//
// Two comparisons are reported: the full flow (where the single serial
// synthesis stage bounds the gain — Amdahl in action; the parallel run
// still wins by overlapping the four per-node HLS stages with each other
// and device-tree/driver generation with synthesis) and the front-end
// flow (synthesis off, the edit-compile loop of the paper's DSE story),
// where the HLS fan-out dominates.
//
// The full-flow runs emit chrome://tracing / Perfetto JSON timelines
// (one span per stage, worker id as tid) into bench_artifacts/.

#include "socgen/socgen.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

using namespace socgen;

namespace {

/// One deepened pipeline stage: a stream-through kernel whose loop body
/// is a long dependent arithmetic chain. `stmts` controls the simulated
/// tool time (12 + 1.4 s per statement, mirroring real HLS runtimes that
/// grow with kernel size).
hls::Kernel deepKernel(const std::string& name, int stmts) {
    using namespace hls;
    KernelBuilder kb(name);
    const PortId in = kb.streamIn("in", 8);
    const PortId out = kb.streamOut("out", 8);
    const VarId i = kb.var("i", 32);
    const VarId acc = kb.var("acc", 32);
    kb.forLoop(i, kb.c(4096));
    kb.assign(acc, kb.read(in));
    for (int s = 0; s < stmts; ++s) {
        kb.assign(acc,
                  kb.bin(BinOp::Xor, kb.add(kb.mul(kb.v(acc), kb.c(3 + s)), kb.c(7)),
                         kb.shr(kb.v(acc), kb.c(1 + (s % 5)))));
    }
    kb.write(out, kb.v(acc));
    kb.endLoop();
    return kb.build();
}

/// The Arch4 task graph: every Otsu stage mapped to hardware, chained
/// PS → grayScale → gaussianBlur → sobel → segment → PS.
core::TaskGraph arch4Graph() {
    constexpr const char* dsl = R"(
object arch4 extends App {
  tg nodes;
    tg node "grayScale" is "in" is "out" end;
    tg node "gaussianBlur" is "in" is "out" end;
    tg node "sobel" is "in" is "out" end;
    tg node "segment" is "in" is "out" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("grayScale","in") end;
    tg link ("grayScale","out") to ("gaussianBlur","in") end;
    tg link ("gaussianBlur","out") to ("sobel","in") end;
    tg link ("sobel","out") to ("segment","in") end;
    tg link ("segment","out") to 'soc end;
  tg end_edges;
}
)";
    return core::parseDsl(dsl).graph;
}

struct RunStats {
    double hostMs = 0.0;
    double toolSeconds = 0.0;
    std::size_t stages = 0;
};

RunStats runOnce(const hls::KernelLibrary& kernels, unsigned jobs, bool synthesis,
                 const std::string& trace) {
    core::FlowOptions options;
    options.jobs = jobs;
    options.runSynthesis = synthesis;
    options.traceOutPath = trace;
    // Every simulated tool-second costs this much blocked wall-clock —
    // the stand-in for waiting on the vendor-tool subprocess.
    options.toolLatencyMsPerToolSecond = 0.25;
    // The deepened bodies overflow the Zedboard's fabric; model a large
    // part so synthesis accepts the design (resource pressure is not what
    // this bench measures).
    options.device.lut = 1'500'000;
    options.device.ff = 3'000'000;
    options.device.bram18 = 4'000;
    options.device.dsp = 10'000;
    // A fresh in-memory cache per run: every HLS core is synthesized, so
    // both runs do identical work and the delta is pure scheduling.
    core::Flow flow(options, kernels, std::make_shared<core::HlsCache>());
    const auto start = std::chrono::steady_clock::now();
    const core::FlowResult result = flow.run(format("Arch4_jobs%u", jobs), arch4Graph());
    RunStats stats;
    stats.hostMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    stats.toolSeconds = result.timeline.totalToolSeconds();
    stats.stages = result.diagnostics.stages.size();
    return stats;
}

void report(const char* title, const RunStats& serial, const RunStats& parallel) {
    std::printf("%s (%zu stages)\n", title, serial.stages);
    std::printf("  %-24s %12s %14s\n", "run", "host-ms", "tool-seconds");
    std::printf("  %-24s %12.1f %14.1f\n", "serial (jobs=1)", serial.hostMs,
                serial.toolSeconds);
    std::printf("  %-24s %12.1f %14.1f\n", "DAG-parallel (jobs=4)", parallel.hostMs,
                parallel.toolSeconds);
    std::printf("  wall-clock speedup: %.2fx\n\n", serial.hostMs / parallel.hostMs);
}

} // namespace

int main() {
    Logger::global().setLevel(LogLevel::Error);
    hls::KernelLibrary kernels;
    kernels.add(deepKernel("grayScale", 80));
    kernels.add(deepKernel("gaussianBlur", 100));
    kernels.add(deepKernel("sobel", 90));
    kernels.add(deepKernel("segment", 70));

    // Warm-up pass so first-touch costs (allocator, lazy tables) don't
    // land on the serial measurement.
    (void)runOnce(kernels, 1, false, "");

    std::printf("Cross-stage parallelism on the Otsu Arch4 flow graph\n");
    std::printf("(identical work per run: fresh HLS cache, simulated tool latency "
                "0.25 ms per tool-second)\n\n");

    const RunStats fullSerial =
        runOnce(kernels, 1, true, "bench_artifacts/flow_stage_trace_serial.json");
    const RunStats fullParallel =
        runOnce(kernels, 4, true, "bench_artifacts/flow_stage_trace_jobs4.json");
    report("full flow (HLS + integrate + synth + software)", fullSerial, fullParallel);

    const RunStats frontSerial = runOnce(kernels, 1, false, "");
    const RunStats frontParallel = runOnce(kernels, 4, false, "");
    report("front-end flow (synthesis off, the DSE inner loop)", frontSerial,
           frontParallel);

    std::printf("the serial synthesis stage bounds the full-flow gain (Amdahl); the\n"
                "graph reorders work, it does not skip any: tool-seconds match per "
                "pair\n");
    std::printf("wrote bench_artifacts/flow_stage_trace_{serial,jobs4}.json "
                "(open in chrome://tracing or ui.perfetto.dev)\n");
    return 0;
}
