// Infrastructure performance (google-benchmark): how fast the substrates
// themselves run on the host — stream channels, the netlist simulator,
// the kernel VM, the DSL parser, the HLS engine, and a full flow +
// system simulation. These numbers bound how large an experiment the
// reproduction can sweep.

#include "netlist_gen.hpp"
#include "socgen/apps/kernels.hpp"
#include "socgen/apps/otsu_project.hpp"
#include "socgen/rtl/codegen_emit.hpp"
#include "socgen/rtl/codegen_sim.hpp"
#include "socgen/rtl/netlist_sim.hpp"
#include "socgen/rtl/primitives.hpp"
#include "socgen/rtl/sim_backend.hpp"
#include "socgen/rtl/sim_batch.hpp"
#include "socgen/socgen.hpp"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>

using namespace socgen;

namespace {

/// Benchmarks taking a backend argument register with ->Arg(0) (event),
/// ->Arg(1) (compiled) and ->Arg(2) (codegen) so one binary reports all
/// three side by side. Codegen rows degrade (with the usual fallback
/// warning) when the host has no compiler; the emitted label names the
/// backend that actually ran.
rtl::SimBackend benchBackend(std::int64_t arg) {
    switch (arg) {
    case 0: return rtl::SimBackend::EventDriven;
    case 2: return rtl::SimBackend::Codegen;
    default: return rtl::SimBackend::Compiled;
    }
}

/// The shared random design for the backend comparison: the same seed
/// and shape the differential suite's LargeNetlistAgrees case locks to
/// cycle-identical behaviour across backends.
rtl::Netlist benchRandomNetlist() {
    socgen::testing::NetlistGenOptions opt;
    opt.combCells = 600;
    opt.regs = 48;
    opt.brams = 6;
    opt.fsms = 3;
    opt.inputPorts = 8;
    return socgen::testing::randomNetlist(424242, opt);
}

void BM_StreamChannelPushPop(benchmark::State& state) {
    axi::StreamChannel chan("bench", 1024, 32);
    axi::StreamBeat beat;
    for (auto _ : state) {
        benchmark::DoNotOptimize(chan.tryPush(42));
        benchmark::DoNotOptimize(chan.tryPop(beat));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamChannelPushPop);

void BM_NetlistSimCounterStep(benchmark::State& state) {
    const rtl::Netlist netlist = rtl::makeCounter("ctr", 32);
    rtl::NetlistSimulator sim(netlist);
    sim.setInput("en", 1);
    for (auto _ : state) {
        sim.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetlistSimCounterStep);

void BM_SimBackendCounterStep(benchmark::State& state) {
    const rtl::Netlist netlist = rtl::makeCounter("ctr", 32);
    const auto sim = rtl::makeSimulator(netlist, benchBackend(state.range(0)));
    sim->setInput("en", 1);
    for (auto _ : state) {
        sim->step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetLabel(std::string(sim->backendName()));
}
BENCHMARK(BM_SimBackendCounterStep)->Arg(0)->Arg(1)->Arg(2);

void BM_SimBackendRandomActive(benchmark::State& state) {
    // Every input port changes every cycle: the worst case for dirty
    // tracking, so the gap here is the levelized program versus the
    // per-cell interpreter alone.
    const rtl::Netlist netlist = benchRandomNetlist();
    const auto sim = rtl::makeSimulator(netlist, benchBackend(state.range(0)));
    socgen::testing::SplitMix64 rng(7);
    for (auto _ : state) {
        for (unsigned i = 0; i < 8; ++i) {
            sim->setInput("in" + std::to_string(i), rng.next());
        }
        sim->step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetLabel(std::string(sim->backendName()));
}
BENCHMARK(BM_SimBackendRandomActive)->Arg(0)->Arg(1)->Arg(2);

void BM_SimBackendRandomQuiescent(benchmark::State& state) {
    // Inputs held constant: only the sequential feedback region stays
    // active, so the compiled backend's dirty-region skipping shows its
    // full win over the re-evaluate-everything interpreter.
    const rtl::Netlist netlist = benchRandomNetlist();
    const auto sim = rtl::makeSimulator(netlist, benchBackend(state.range(0)));
    socgen::testing::SplitMix64 rng(7);
    for (unsigned i = 0; i < 8; ++i) {
        sim->setInput("in" + std::to_string(i), rng.next());
    }
    for (auto _ : state) {
        sim->step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetLabel(std::string(sim->backendName()));
}
BENCHMARK(BM_SimBackendRandomQuiescent)->Arg(0)->Arg(1)->Arg(2);

void BM_SimBackendHlsHistogramCore(benchmark::State& state) {
    // A generated accelerator under steady streaming stimulus — the
    // cosim shape the HLS VM equivalence tests and RtlCoreComponent run.
    const hls::HlsResult r =
        hls::HlsEngine{}.synthesize(apps::makeHistogramKernel(16384), {});
    const auto sim = rtl::makeSimulator(r.netlist, benchBackend(state.range(0)));
    sim->setInput("ap_start", 1);
    for (const auto& port : r.netlist.ports()) {
        if (port.dir != rtl::PortDir::In) {
            continue;
        }
        if (port.name.ends_with("_tvalid") || port.name.ends_with("_tready")) {
            sim->setInput(port.name, 1);
        } else if (port.name.ends_with("_tdata")) {
            sim->setInput(port.name, 0x5a);
        }
    }
    for (auto _ : state) {
        sim->step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetLabel(std::string(sim->backendName()));
}
BENCHMARK(BM_SimBackendHlsHistogramCore)->Arg(0)->Arg(1)->Arg(2);

// ---------------------------------------------------------------------------
// Codegen setup cost: what a flow pays *before* the fast steady state.
// Cold = emit + host-compiler invocation + dlopen (first-ever run);
// warm = shared-object store hit + dlopen (every later process). The
// `recompiles` counter on the warm row is the acceptance gate: it must
// stay 0, i.e. warm flows never invoke the compiler.
// ---------------------------------------------------------------------------

void BM_CodegenSetupCold(benchmark::State& state) {
    if (!rtl::codegenToolchainAvailable()) {
        state.SkipWithError("no host compiler");
        return;
    }
    const std::string cacheDir =
        (std::filesystem::temp_directory_path() / "socgen-bench-codegen-cold").string();
    ::setenv("SOCGEN_CODEGEN_CACHE_DIR", cacheDir.c_str(), 1);
    const rtl::Netlist netlist = benchRandomNetlist();
    for (auto _ : state) {
        std::filesystem::remove_all(cacheDir);
        rtl::codegenTestReset();
        const rtl::CodegenSim sim(netlist);
        benchmark::DoNotOptimize(sim.cycleCount());
    }
    state.counters["recompiles_per_iter"] =
        static_cast<double>(rtl::codegenStats().compiles);
    std::filesystem::remove_all(cacheDir);
    ::unsetenv("SOCGEN_CODEGEN_CACHE_DIR");
}
BENCHMARK(BM_CodegenSetupCold)->Unit(benchmark::kMillisecond);

void BM_CodegenSetupWarm(benchmark::State& state) {
    if (!rtl::codegenToolchainAvailable()) {
        state.SkipWithError("no host compiler");
        return;
    }
    const std::string cacheDir =
        (std::filesystem::temp_directory_path() / "socgen-bench-codegen-warm").string();
    ::setenv("SOCGEN_CODEGEN_CACHE_DIR", cacheDir.c_str(), 1);
    const rtl::Netlist netlist = benchRandomNetlist();
    std::filesystem::remove_all(cacheDir);
    rtl::codegenTestReset();
    { const rtl::CodegenSim prime(netlist); }  // populate the store
    std::uint64_t recompiles = 0;
    for (auto _ : state) {
        rtl::codegenTestReset();  // drop the in-process registry: store path
        const rtl::CodegenSim sim(netlist);
        recompiles += rtl::codegenStats().compiles;
        benchmark::DoNotOptimize(sim.cycleCount());
    }
    state.counters["recompiles"] = static_cast<double>(recompiles);
    std::filesystem::remove_all(cacheDir);
    ::unsetenv("SOCGEN_CODEGEN_CACHE_DIR");
}
BENCHMARK(BM_CodegenSetupWarm)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Partitioned and batched evaluation matrix. Items are *lane-cycles*
// (iterations × lanes), so every row below reports per-lane throughput
// directly comparable to the scalar rows above; the scalar single-thread
// baseline is BM_SimBackendRandomActive/1. The acceptance bar for this
// matrix: BM_SimBatchRandomActive threads=4 × 64 lanes sustains at least
// 3x the per-lane rate of that baseline.
// ---------------------------------------------------------------------------

rtl::SimConfig benchConfig(std::int64_t threads, std::int64_t lanes) {
    rtl::SimConfig config;
    config.backend = rtl::SimBackend::Compiled;
    config.threads = static_cast<unsigned>(threads);
    config.batchLanes = static_cast<unsigned>(lanes);
    return config;
}

void BM_SimThreadsRandomActive(benchmark::State& state) {
    // Scalar partitioned evaluation: level bands split across a worker
    // pool. One argument: thread count.
    const rtl::Netlist netlist = benchRandomNetlist();
    const auto sim = rtl::makeSimulator(netlist, benchConfig(state.range(0), 0));
    socgen::testing::SplitMix64 rng(7);
    std::vector<std::string> ports;
    for (unsigned i = 0; i < 8; ++i) {
        ports.push_back("in" + std::to_string(i));
    }
    for (auto _ : state) {
        for (const auto& port : ports) {
            sim->setInput(port, rng.next());
        }
        sim->step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetLabel(format("threads=%lld", static_cast<long long>(state.range(0))));
}
BENCHMARK(BM_SimThreadsRandomActive)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SimBatchCounterStep(benchmark::State& state) {
    // Tiny design: measures the per-lane floor of batch dispatch.
    const rtl::Netlist netlist = rtl::makeCounter("ctr", 32);
    const auto batch = rtl::makeSimBatch(netlist, benchConfig(1, state.range(0)));
    batch->setInputAll("en", 1);
    for (auto _ : state) {
        batch->step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            batch->laneCount());
    state.SetLabel(format("lanes=%u", batch->laneCount()));
}
BENCHMARK(BM_SimBatchCounterStep)->Arg(1)->Arg(64);

void BM_SimBatchRandomActive(benchmark::State& state) {
    // Arguments: {threads, lanes}. Every lane gets fresh random inputs
    // every cycle — the op sweep re-evaluates everything, so the win is
    // pure dispatch amortisation (and band partitioning at threads > 1).
    const rtl::Netlist netlist = benchRandomNetlist();
    const auto batch =
        rtl::makeSimBatch(netlist, benchConfig(state.range(0), state.range(1)));
    socgen::testing::SplitMix64 rng(7);
    std::vector<std::string> ports;
    for (unsigned i = 0; i < 8; ++i) {
        ports.push_back("in" + std::to_string(i));
    }
    for (auto _ : state) {
        for (unsigned lane = 0; lane < batch->laneCount(); ++lane) {
            for (const auto& port : ports) {
                batch->setInput(port, lane, rng.next());
            }
        }
        batch->step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            batch->laneCount());
    state.SetLabel(format("threads=%lld lanes=%u",
                          static_cast<long long>(state.range(0)), batch->laneCount()));
}
BENCHMARK(BM_SimBatchRandomActive)
    ->Args({1, 1})
    ->Args({1, 16})
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({4, 64});

void BM_SimBatchRandomQuiescent(benchmark::State& state) {
    // Inputs held constant: batch-wide dirty skipping must preserve the
    // scalar engine's quiescent win while covering 64 lanes.
    const rtl::Netlist netlist = benchRandomNetlist();
    const auto batch =
        rtl::makeSimBatch(netlist, benchConfig(state.range(0), state.range(1)));
    socgen::testing::SplitMix64 rng(7);
    for (unsigned i = 0; i < 8; ++i) {
        batch->setInputAll("in" + std::to_string(i), rng.next());
    }
    for (auto _ : state) {
        batch->step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            batch->laneCount());
    state.SetLabel(format("threads=%lld lanes=%u",
                          static_cast<long long>(state.range(0)), batch->laneCount()));
}
BENCHMARK(BM_SimBatchRandomQuiescent)->Args({1, 64})->Args({4, 64});

void BM_SimBatchHlsHistogramCore(benchmark::State& state) {
    // The generated-accelerator cosim shape, batched: one stimulus
    // sweep's worth of lanes over the HISTOGRAM core.
    const hls::HlsResult r =
        hls::HlsEngine{}.synthesize(apps::makeHistogramKernel(16384), {});
    const auto batch =
        rtl::makeSimBatch(r.netlist, benchConfig(state.range(0), state.range(1)));
    batch->setInputAll("ap_start", 1);
    for (const auto& port : r.netlist.ports()) {
        if (port.dir != rtl::PortDir::In) {
            continue;
        }
        if (port.name.ends_with("_tvalid") || port.name.ends_with("_tready")) {
            batch->setInputAll(port.name, 1);
        } else if (port.name.ends_with("_tdata")) {
            for (unsigned lane = 0; lane < batch->laneCount(); ++lane) {
                batch->setInput(port.name, lane, 0x20 + lane);
            }
        }
    }
    for (auto _ : state) {
        batch->step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            batch->laneCount());
    state.SetLabel(format("threads=%lld lanes=%u",
                          static_cast<long long>(state.range(0)), batch->laneCount()));
}
BENCHMARK(BM_SimBatchHlsHistogramCore)->Args({1, 64})->Args({4, 64});

void BM_KernelVmGaussCycle(benchmark::State& state) {
    const hls::Kernel kernel = apps::makeGaussKernel(1 << 20);
    const hls::KernelSchedule schedule = hls::scheduleKernel(kernel, {});
    const hls::Program program = hls::compileKernel(kernel, schedule);

    class NullIo : public hls::KernelIo {
    public:
        std::uint64_t argValue(hls::PortId) override { return 0; }
        void setResult(hls::PortId, std::uint64_t) override {}
        bool streamRead(hls::PortId, std::uint64_t& v) override {
            v = 7;
            return true;
        }
        bool streamWrite(hls::PortId, std::uint64_t) override { return true; }
    } io;
    hls::KernelVm vm(program, io);
    vm.start();
    for (auto _ : state) {
        if (!vm.running()) {
            vm.start();
        }
        vm.tick();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetLabel("simulated accelerator cycles/s");
}
BENCHMARK(BM_KernelVmGaussCycle);

void BM_DslParse(benchmark::State& state) {
    core::TaskGraph graph;
    for (int i = 0; i < 16; ++i) {
        core::TgNode node;
        node.name = format("core%d", i);
        node.ports.push_back(core::TgPort{"in", hls::InterfaceProtocol::AxiStream});
        node.ports.push_back(core::TgPort{"out", hls::InterfaceProtocol::AxiStream});
        graph.addNode(std::move(node));
        graph.addLink(core::TgLink{core::TgEndpoint::socEnd(),
                                   core::TgEndpoint::of(format("core%d", i), "in")});
        graph.addLink(core::TgLink{core::TgEndpoint::of(format("core%d", i), "out"),
                                   core::TgEndpoint::socEnd()});
    }
    const std::string source = graph.renderDsl("wide");
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::parseDsl(source));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * source.size()));
}
BENCHMARK(BM_DslParse);

void BM_HlsSynthesizeHistogram(benchmark::State& state) {
    const hls::Kernel kernel = apps::makeHistogramKernel(16384);
    for (auto _ : state) {
        benchmark::DoNotOptimize(hls::HlsEngine{}.synthesize(kernel, {}));
    }
}
BENCHMARK(BM_HlsSynthesizeHistogram);

void BM_FullFlowQuickstart(benchmark::State& state) {
    hls::KernelLibrary kernels;
    kernels.add(apps::makeGaussKernel(1024));
    kernels.add(apps::makeEdgeKernel(1024));
    const char* dsl = R"(
object q extends App {
  tg nodes;
    tg node "GAUSS" is "in" is "out" end;
    tg node "EDGE" is "in" is "out" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("GAUSS","in") end;
    tg link ("GAUSS","out") to ("EDGE","in") end;
    tg link ("EDGE","out") to 'soc end;
  tg end_edges;
}
)";
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::runDslText(dsl, kernels));
    }
    state.SetLabel("DSL -> bitstream+drivers, no cache");
}
BENCHMARK(BM_FullFlowQuickstart);

void BM_SystemSimOtsuArch4(benchmark::State& state) {
    const std::int64_t side = state.range(0);
    const std::int64_t pixels = side * side;
    const core::Htg htg = apps::makeOtsuHtg();
    const hls::KernelLibrary kernels = apps::makeOtsuKernelLibrary(pixels);
    core::Flow flow(apps::otsuFlowOptions(), kernels, std::make_shared<core::HlsCache>());
    const core::FlowResult result =
        flow.run("bench", core::lowerToTaskGraph(htg, apps::otsuArchPartition(4)));
    const apps::RgbImage scene =
        apps::makeSyntheticScene(static_cast<unsigned>(side), static_cast<unsigned>(side));
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        apps::OtsuSystemRunner runner(result, apps::otsuArchPartition(4));
        cycles = runner.run(scene).cycles;
        benchmark::DoNotOptimize(cycles);
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles) * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SystemSimOtsuArch4)->Arg(32)->Arg(64)->Arg(128);

} // namespace

int main(int argc, char** argv) {
    Logger::global().setLevel(LogLevel::Error);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
