// Figure 7 of the paper: "Example of the application of the Otsu filter"
// — original image vs filtered (binary) image. The paper used a
// photograph; we use the deterministic synthetic bimodal scene and run
// the full generated Arch4 system on the simulated board, verifying the
// hardware-produced image is bit-identical to the software reference.

#include "otsu_bench_common.hpp"

#include <cstdio>

using namespace socgen;

namespace {

/// Coarse ASCII rendering so the figure is visible in the bench log.
void renderAscii(const apps::GrayImage& img, const char* title) {
    std::printf("%s (%ux%u, downsampled):\n", title, img.width(), img.height());
    const unsigned step = img.height() / 24 == 0 ? 1 : img.height() / 24;
    for (unsigned y = 0; y < img.height(); y += step) {
        for (unsigned x = 0; x < img.width(); x += step / 2 + 1) {
            const std::uint8_t v = img.at(x, y);
            std::putchar(v > 192 ? '#' : v > 128 ? '+' : v > 64 ? '.' : ' ');
        }
        std::putchar('\n');
    }
}

} // namespace

int main() {
    Logger::global().setLevel(LogLevel::Error);
    benchsupport::CaseStudy cs;

    const apps::GrayImage original = apps::grayScaleRef(cs.scene);
    const apps::GrayImage reference = apps::otsuFilterRef(cs.scene);

    const core::FlowResult arch4 = cs.buildArch(4);
    apps::OtsuSystemRunner runner(arch4, apps::otsuArchPartition(4));
    const auto run = runner.run(cs.scene);

    std::printf("Figure 7 — Otsu filter input/output (synthetic scene)\n\n");
    renderAscii(original, "(a) original grayscale image");
    std::printf("\n");
    renderAscii(run.output, "(b) filtered image (generated Arch4 hardware)");

    const bool match = run.output == reference;
    const auto hist = apps::histogramRef(original);
    std::printf("\nOtsu threshold: %u; hardware output %s software reference; "
                "%llu simulated cycles (%.2f ms at 100 MHz)\n",
                apps::otsuThresholdRef(hist, original.pixelCount()),
                match ? "MATCHES" : "DIFFERS FROM",
                static_cast<unsigned long long>(run.cycles),
                static_cast<double>(run.cycles) / 100000.0);

    apps::writePgm("bench_artifacts/fig7_original.pgm", original);
    apps::writePgm("bench_artifacts/fig7_filtered.pgm", run.output);
    apps::writePpm("bench_artifacts/fig7_input.ppm", cs.scene);
    std::printf("wrote bench_artifacts/fig7_{input.ppm,original.pgm,filtered.pgm}\n");
    return match ? 0 : 1;
}
