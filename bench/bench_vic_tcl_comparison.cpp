// Section VI-C of the paper: the generated Tcl script is about 4x the
// lines and 4-10x the non-whitespace characters of the Scala task-graph
// description the designer actually writes. Regenerated for the four
// case-study architectures plus the running example.

#include "otsu_bench_common.hpp"

#include "socgen/apps/kernels.hpp"

#include <cstdio>

using namespace socgen;

int main() {
    Logger::global().setLevel(LogLevel::Error);

    std::printf("Section VI-C — DSL vs generated Tcl size comparison\n\n");
    std::printf("%-12s %9s %9s %9s %9s %11s %11s\n", "project", "dsl-lines", "tcl-lines",
                "dsl-chars", "tcl-chars", "line-ratio", "char-ratio");

    double minLineRatio = 1e9;
    double maxLineRatio = 0.0;
    double minCharRatio = 1e9;
    double maxCharRatio = 0.0;
    const auto report = [&](const core::FlowResult& result) {
        const core::DslTclComparison cmp = core::compareDslToTcl(result);
        std::printf("%-12s %9zu %9zu %9zu %9zu %10.1fx %10.1fx\n",
                    result.projectName.c_str(), cmp.dslLines, cmp.tclLines, cmp.dslChars,
                    cmp.tclChars, cmp.lineRatio(), cmp.charRatio());
        minLineRatio = std::min(minLineRatio, cmp.lineRatio());
        maxLineRatio = std::max(maxLineRatio, cmp.lineRatio());
        minCharRatio = std::min(minCharRatio, cmp.charRatio());
        maxCharRatio = std::max(maxCharRatio, cmp.charRatio());
    };

    benchsupport::CaseStudy cs;
    for (const auto& result : cs.buildAll()) {
        report(result);
    }

    // The running example (Figure 4) as a fifth data point.
    hls::KernelLibrary kernels;
    kernels.add(apps::makeAddKernel());
    kernels.add(apps::makeMulKernel());
    kernels.add(apps::makeGaussKernel(1024));
    kernels.add(apps::makeEdgeKernel(1024));
    core::SocProject project("quickstart", kernels);
    project.tg_nodes();
    project.tg_node("MUL").i("A").i("B").i("return").end();
    project.tg_node("ADD").i("A").i("B").i("return").end();
    project.tg_node("GAUSS").is("in").is("out").end();
    project.tg_node("EDGE").is("in").is("out").end();
    project.tg_end_nodes();
    project.tg_edges();
    project.tg_link(core::SocProject::soc())
        .to(core::SocProject::port("GAUSS", "in"))
        .end();
    project.tg_link(core::SocProject::port("GAUSS", "out"))
        .to(core::SocProject::port("EDGE", "in"))
        .end();
    project.tg_link(core::SocProject::port("EDGE", "out"))
        .to(core::SocProject::soc())
        .end();
    project.tg_connect("MUL");
    project.tg_connect("ADD");
    project.tg_end_edges();
    report(project.result());

    std::printf("\npaper: Tcl has ~4x the lines and 4-10x the characters of the DSL\n");
    std::printf("measured: line ratios in [%.1f, %.1f], char ratios in [%.1f, %.1f]\n",
                minLineRatio, maxLineRatio, minCharRatio, maxCharRatio);
    const bool shapeOk = minLineRatio > 2.0 && maxLineRatio < 8.0 && minCharRatio > 4.0 &&
                         maxCharRatio < 12.0;
    std::printf("shape: ratios inside the paper's band (allowing slack): %s\n",
                shapeOk ? "HOLDS" : "VIOLATED");
    return shapeOk ? 0 : 1;
}
