// Dataflow pipelining: stream throughput of a 3-stage process network
// versus the equivalent sequential single-kernel node, plus the Otsu
// filter restructured as a 4-process dataflow network. Cycle counts come
// from the kernel VM (the same cycle-stepped model system simulation
// uses), so the speedup is the schedule-level overlap the dataflow
// wrapper buys, not a host-timing artifact.
//
// Acceptance bar: the pipelined network must sustain >= 1.5x the stream
// throughput of the sequential node, with bit-identical outputs. The
// summary is committed to bench_artifacts/dataflow_pipeline.txt.

#include "socgen/apps/dataflow.hpp"
#include "socgen/apps/image.hpp"
#include "socgen/apps/otsu.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/hls/interpreter.hpp"

#include <cstdarg>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

using namespace socgen;

namespace {

std::string gOut;  // accumulated report (stdout + committed artifact)

void emit(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    char buffer[512];
    std::vsnprintf(buffer, sizeof(buffer), fmt, args);
    va_end(args);
    std::fputs(buffer, stdout);
    gOut += buffer;
}

/// Vector-backed KernelIo: per-port input queues, per-port output logs.
/// Ports are addressed by their index in the program's port table (the
/// external signature, for a network program).
class VectorIo final : public hls::KernelIo {
public:
    std::map<hls::PortId, std::deque<std::uint64_t>> inputs;
    std::map<hls::PortId, std::vector<std::uint64_t>> outputs;
    std::map<hls::PortId, std::uint64_t> scalars;

    std::uint64_t argValue(hls::PortId port) override { return scalars[port]; }
    void setResult(hls::PortId port, std::uint64_t value) override {
        scalars[port] = value;
    }
    bool streamRead(hls::PortId port, std::uint64_t& value) override {
        auto& q = inputs[port];
        if (q.empty()) {
            return false;
        }
        value = q.front();
        q.pop_front();
        return true;
    }
    bool streamWrite(hls::PortId port, std::uint64_t value) override {
        outputs[port].push_back(value);
        return true;
    }
};

hls::PortId portIndex(const hls::Program& program, const std::string& name) {
    for (std::size_t i = 0; i < program.ports.size(); ++i) {
        if (program.ports[i].name == name) {
            return static_cast<hls::PortId>(i);
        }
    }
    throw std::runtime_error("no port " + name);
}

struct RunStats {
    std::uint64_t cycles = 0;
    std::uint64_t stalls = 0;
    std::vector<std::uint64_t> output;
};

RunStats runToCompletion(const hls::Program& program, VectorIo& io,
                         const std::string& outPort, std::uint64_t maxCycles) {
    hls::KernelVm vm(program, io);
    vm.start();
    while (!vm.finished()) {
        vm.tick();
        if (vm.cycles() > maxCycles) {
            throw std::runtime_error("VM exceeded cycle budget — livelock?");
        }
    }
    RunStats stats;
    stats.cycles = vm.cycles();
    stats.stalls = vm.stallCycles();
    stats.output = io.outputs[portIndex(program, outPort)];
    return stats;
}

} // namespace

int main() {
    constexpr std::int64_t kSamples = 2048;
    const hls::HlsEngine engine;

    // ---- tri-stage: sequential node vs pipelined network -------------------
    const hls::HlsResult fused =
        engine.synthesize(apps::makeFusedTriStageKernel(kSamples), hls::Directives{});
    const hls::ProcessNetwork pipeline = apps::makeStreamPipelineNetwork(kSamples);
    const hls::HlsResult piped = engine.synthesize(pipeline);

    std::vector<std::uint32_t> input;
    input.reserve(kSamples);
    for (std::int64_t i = 0; i < kSamples; ++i) {
        input.push_back(static_cast<std::uint32_t>(i * 2654435761ULL));
    }
    const std::vector<std::uint32_t> expected = apps::triStageRef(input);

    const auto feed = [&input](const hls::Program& program, VectorIo& io) {
        auto& q = io.inputs[portIndex(program, "din")];
        for (const std::uint32_t v : input) {
            q.push_back(v);
        }
    };

    VectorIo fusedIo;
    feed(fused.program, fusedIo);
    const RunStats fusedRun =
        runToCompletion(fused.program, fusedIo, "dout", 100'000'000ULL);

    VectorIo pipeIo;
    feed(piped.program, pipeIo);
    const RunStats pipeRun =
        runToCompletion(piped.program, pipeIo, "dout", 100'000'000ULL);

    for (const RunStats* run : {&fusedRun, &pipeRun}) {
        if (run->output.size() != expected.size()) {
            std::fprintf(stderr, "FAIL: output length %zu != %zu\n",
                         run->output.size(), expected.size());
            return 1;
        }
        for (std::size_t i = 0; i < expected.size(); ++i) {
            if (run->output[i] != expected[i]) {
                std::fprintf(stderr, "FAIL: output[%zu] mismatch\n", i);
                return 1;
            }
        }
    }

    const double fusedThroughput =
        static_cast<double>(kSamples) / static_cast<double>(fusedRun.cycles);
    const double pipeThroughput =
        static_cast<double>(kSamples) / static_cast<double>(pipeRun.cycles);
    const double speedup = fusedThroughput > 0.0 ? pipeThroughput / fusedThroughput : 0.0;

    emit("dataflow pipelining: %lld-sample stream through 3 transform stages\n",
         static_cast<long long>(kSamples));
    emit("  %-34s %10llu cycles  (%.4f samples/cycle)\n", "sequential node (fused kernel)",
         static_cast<unsigned long long>(fusedRun.cycles), fusedThroughput);
    emit("  %-34s %10llu cycles  (%.4f samples/cycle, %llu stall cycles)\n",
         "pipelined network (3 processes)",
         static_cast<unsigned long long>(pipeRun.cycles), pipeThroughput,
         static_cast<unsigned long long>(pipeRun.stalls));
    emit("  %-34s %10.2fx  (acceptance bar: >= 1.50x)\n", "stream throughput speedup",
         speedup);
    emit("  outputs bit-identical to software reference: yes (%zu samples)\n\n",
         expected.size());

    // ---- Otsu as a dataflow network ----------------------------------------
    const unsigned kW = 24;
    const unsigned kH = 18;
    apps::RgbImage scene(kW, kH);
    for (unsigned y = 0; y < kH; ++y) {
        for (unsigned x = 0; x < kW; ++x) {
            const bool fg = ((x / 4) + (y / 3)) % 2 == 0;
            scene.set(x, y, fg ? 200 : 30, fg ? 180 : 40, fg ? 160 : 50);
        }
    }
    const std::int64_t pixels = static_cast<std::int64_t>(scene.pixelCount());
    const hls::ProcessNetwork otsuNet = apps::makeOtsuDataflowNetwork(
        pixels, static_cast<std::uint32_t>(pixels));
    const hls::HlsResult otsu =
        engine.synthesize(otsuNet, apps::otsuDataflowDirectives());

    VectorIo otsuIo;
    {
        auto& q = otsuIo.inputs[portIndex(otsu.program, "imageIn")];
        for (const std::uint32_t px : scene.packedPixels()) {
            q.push_back(px);
        }
    }
    const RunStats otsuRun =
        runToCompletion(otsu.program, otsuIo, "segmentedGrayImage", 100'000'000ULL);

    const apps::GrayImage reference = apps::otsuFilterRef(scene);
    if (otsuRun.output.size() != reference.pixelCount()) {
        std::fprintf(stderr, "FAIL: otsu output length %zu != %zu\n",
                     otsuRun.output.size(), reference.pixelCount());
        return 1;
    }
    for (std::size_t i = 0; i < otsuRun.output.size(); ++i) {
        if (otsuRun.output[i] != reference.pixels()[i]) {
            std::fprintf(stderr, "FAIL: otsu pixel %zu mismatch\n", i);
            return 1;
        }
    }

    emit("otsu filter as a 4-process dataflow network (%ux%u image)\n", kW, kH);
    emit("  %-34s %10llu cycles end to end\n", "network (overlapped stages)",
         static_cast<unsigned long long>(otsuRun.cycles));
    emit("  %-34s %10zu processes, %zu channels\n", "topology",
         otsuNet.processes().size(), otsuNet.channels().size());
    emit("  outputs bit-identical to otsuFilterRef: yes (%zu pixels)\n",
         reference.pixelCount());

    std::filesystem::create_directories("bench_artifacts");
    writeFileAtomic("bench_artifacts/dataflow_pipeline.txt", gOut);
    emit("\nwrote bench_artifacts/dataflow_pipeline.txt\n");

    if (speedup < 1.5) {
        std::fprintf(stderr, "FAIL: pipelined speedup %.2fx < 1.50x acceptance bar\n",
                     speedup);
        return 1;
    }
    return 0;
}
