// HLS design-choice ablation (DESIGN.md): scheduler variants on the four
// case-study kernels — unconstrained ASAP vs resource-constrained list
// scheduling, and pipelining on/off. Reports per-kernel estimated
// latency, II of the hottest loop, and core resources.

#include "socgen/apps/otsu.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/socgen.hpp"

#include <cstdio>

using namespace socgen;

namespace {

struct Variant {
    const char* name;
    hls::SchedulerKind scheduler;
    bool pipeline;
};

constexpr std::array<Variant, 3> kVariants{{
    {"list+pipe", hls::SchedulerKind::List, true},
    {"asap+pipe", hls::SchedulerKind::Asap, true},
    {"list-nopipe", hls::SchedulerKind::List, false},
}};

std::int64_t loopCycleSum(const hls::KernelSchedule& s) {
    std::int64_t total = 0;
    for (const auto& loop : s.loops) {
        total += loop.totalCycles;
    }
    return total;
}

} // namespace

int main() {
    Logger::global().setLevel(LogLevel::Error);
    constexpr std::int64_t kPixels = 128 * 128;

    const std::array<std::pair<hls::Kernel, hls::Directives>, 4> kernels{{
        {apps::makeGrayScaleKernel(kPixels), apps::grayScaleDirectives()},
        {apps::makeHistogramKernel(kPixels), apps::histogramDirectives()},
        {apps::makeOtsuKernel(kPixels), apps::otsuDirectives()},
        {apps::makeBinarizationKernel(kPixels), apps::binarizationDirectives()},
    }};

    std::printf("HLS scheduling ablation (image %lldpx)\n\n",
                static_cast<long long>(kPixels));
    std::printf("%-18s %-12s %12s %6s %8s %8s %5s\n", "kernel", "variant", "loop-cycles",
                "maxII", "LUT", "FF", "DSP");

    bool shapeOk = true;
    for (const auto& [kernel, baseDirectives] : kernels) {
        std::int64_t pipelinedCycles = 0;
        std::int64_t unpipelinedCycles = 0;
        for (const Variant& v : kVariants) {
            hls::Directives d = baseDirectives;
            d.scheduler = v.scheduler;
            d.pipelineLoops = v.pipeline;
            const hls::HlsResult r = hls::HlsEngine{}.synthesize(kernel, d);
            std::int64_t maxIi = 0;
            for (const auto& loop : r.schedule.loops) {
                maxIi = std::max(maxIi, loop.ii);
            }
            const std::int64_t cycles = loopCycleSum(r.schedule);
            std::printf("%-18s %-12s %12lld %6lld %8lld %8lld %5lld\n",
                        kernel.name().c_str(), v.name, static_cast<long long>(cycles),
                        static_cast<long long>(maxIi),
                        static_cast<long long>(r.resources.lut),
                        static_cast<long long>(r.resources.ff),
                        static_cast<long long>(r.resources.dsp));
            if (std::string(v.name) == "list+pipe") {
                pipelinedCycles = cycles;
            }
            if (std::string(v.name) == "list-nopipe") {
                unpipelinedCycles = cycles;
            }
        }
        shapeOk = shapeOk && pipelinedCycles < unpipelinedCycles;
    }
    std::printf("\nshape: pipelining always reduces estimated loop cycles: %s\n",
                shapeOk ? "HOLDS" : "VIOLATED");
    return shapeOk ? 0 : 1;
}
