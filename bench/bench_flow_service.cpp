// Load generator for the multi-tenant flow service: hundreds of queued
// flows across many tenants with a cold/warm kernel mix, all sharing
// one stage pool, one artifact store and one HLS cache. Reports the
// four service metrics the robustness work targets:
//
//   - throughput          admitted flows completed per second
//   - p50 / p99 latency   submit → terminal, per flow
//   - dedupe hit rate     HLS stages served without an engine run
//                         (warm cache, store, or in-flight dedupe)
//   - shed count          flows evicted by priority admission control
//
// Five phases: (1) a mixed 6-tenant cold/warm soak, (2) the ISSUE's
// acceptance workload — two tenants submitting identical kernels, where
// the dedupe hit rate must exceed 50% — (3) an overload storm against a
// deliberately tiny queue, where shedding (not memory growth or
// blocking) absorbs the excess, (4) the same cold workload run twice,
// in-process vs. a 2-worker out-of-process fleet, to price the IPC hop
// (throughput + p99), and (5) a 20-kill storm against the fleet: a
// killer thread SIGKILLs random workers while flows drain, and the
// phase reports mean time-to-recover (death detected → replacement
// worker's Hello) plus the re-dispatch / stale-fence counters. The run
// summary is also written to bench_artifacts/flow_service_load.txt.

#include "socgen/apps/kernels.hpp"
#include "socgen/socgen.hpp"
#include "socgen/svc/flow_service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace socgen;

namespace {

std::string gOut;  // accumulated report (stdout + committed artifact)

void emit(const char* fmt, ...) {
    char line[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(line, sizeof line, fmt, args);
    va_end(args);
    std::fputs(line, stdout);
    gOut += line;
}

/// A small unique stream-through kernel per tenant — the "cold" work
/// nobody else's submissions can dedupe.
hls::Kernel uniqueKernel(const std::string& name, int stmts) {
    using namespace hls;
    KernelBuilder kb(name);
    const PortId in = kb.streamIn("in", 8);
    const PortId out = kb.streamOut("out", 8);
    const VarId i = kb.var("i", 32);
    const VarId acc = kb.var("acc", 32);
    kb.forLoop(i, kb.c(256));
    kb.assign(acc, kb.read(in));
    for (int s = 0; s < stmts; ++s) {
        kb.assign(acc, kb.add(kb.mul(kb.v(acc), kb.c(3 + s)), kb.c(7)));
    }
    kb.write(out, kb.v(acc));
    kb.endLoop();
    return kb.build();
}

/// The shared three-kernel pipeline every tenant also submits — the
/// "warm" work the service dedupes across tenants.
core::TaskGraph sharedGraph() {
    constexpr const char* dsl = R"(
object shared extends App {
  tg nodes;
    tg node "MUL" i "A" i "B" i "return" end;
    tg node "GAUSS" is "in" is "out" end;
    tg node "EDGE" is "in" is "out" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("GAUSS","in") end;
    tg link ("GAUSS","out") to ("EDGE","in") end;
    tg link ("EDGE","out") to 'soc end;
    tg connect "MUL";
  tg end_edges;
}
)";
    return core::parseDsl(dsl).graph;
}

core::TaskGraph soloGraph(const std::string& kernel) {
    const std::string dsl = R"(
object solo extends App {
  tg nodes;
    tg node ")" + kernel + R"(" is "in" is "out" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to (")" + kernel + R"(","in") end;
    tg link (")" + kernel + R"(","out") to 'soc end;
  tg end_edges;
}
)";
    return core::parseDsl(dsl).graph;
}

struct PhaseStats {
    double wallSeconds = 0.0;
    std::size_t completed = 0;
    std::size_t hlsStages = 0;
    std::size_t engineRuns = 0;
    std::vector<double> latenciesMs;

    [[nodiscard]] double throughput() const {
        return wallSeconds > 0 ? static_cast<double>(completed) / wallSeconds : 0.0;
    }
    [[nodiscard]] double dedupeRate() const {
        return hlsStages > 0 ? 1.0 - static_cast<double>(engineRuns) /
                                         static_cast<double>(hlsStages)
                             : 0.0;
    }
    [[nodiscard]] double percentile(double p) {
        if (latenciesMs.empty()) {
            return 0.0;
        }
        std::sort(latenciesMs.begin(), latenciesMs.end());
        const auto rank = static_cast<std::size_t>(
            p * static_cast<double>(latenciesMs.size() - 1) + 0.5);
        return latenciesMs[std::min(rank, latenciesMs.size() - 1)];
    }
};

PhaseStats drainAndCollect(svc::FlowService& service,
                           const std::vector<svc::FlowHandle>& handles,
                           std::chrono::steady_clock::time_point start) {
    service.drain();
    PhaseStats stats;
    stats.wallSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    for (const svc::FlowHandle& handle : handles) {
        const svc::RequestOutcome outcome = handle.wait();
        if (outcome.state != svc::RequestState::Completed) {
            continue;
        }
        ++stats.completed;
        stats.latenciesMs.push_back(outcome.waitMs + outcome.runMs);
        stats.hlsStages += outcome.diagnostics.nodes.size();
        stats.engineRuns += outcome.diagnostics.engineRuns();
    }
    return stats;
}

void report(const char* title, PhaseStats& stats, const svc::ServiceStats& svcStats) {
    emit("%s\n", title);
    emit("  %-28s %10.1f flows/s\n", "throughput", stats.throughput());
    emit("  %-28s %10.2f ms\n", "latency p50", stats.percentile(0.50));
    emit("  %-28s %10.2f ms\n", "latency p99", stats.percentile(0.99));
    emit("  %-28s %9.1f%%  (%zu of %zu HLS stages reused)\n", "dedupe hit rate",
         100.0 * stats.dedupeRate(), stats.hlsStages - stats.engineRuns,
         stats.hlsStages);
    emit("  %-28s %10zu\n", "shed count", svcStats.shed);
    emit("  %-28s %10zu completed, %zu rejected, %zu failed\n\n", "outcomes",
         svcStats.completed, svcStats.shed + svcStats.rejectedOverloaded +
                                 svcStats.rejectedTenantFull + svcStats.rejectedBreaker,
         svcStats.failed);
}

std::string freshRoot(const std::string& name) {
    const std::string dir =
        (std::filesystem::temp_directory_path() / ("socgen_bench_svc_" + name))
            .string();
    std::filesystem::remove_all(dir);
    return dir;
}

} // namespace

int main() {
    Logger::global().setLevel(LogLevel::Error);
    // The bench controls worker counts per phase; a stray service-wide
    // override would make the in-process baseline silently out-of-process.
    ::unsetenv("SOCGEN_SVC_WORKERS");

    hls::KernelLibrary kernels;
    kernels.add(apps::makeAddKernel());
    kernels.add(apps::makeMulKernel());
    kernels.add(apps::makeGaussKernel(64));
    kernels.add(apps::makeEdgeKernel(64));
    for (int t = 0; t < 6; ++t) {
        kernels.add(uniqueKernel("COLD" + std::to_string(t), 4 + t));
    }
    for (int t = 0; t < 4; ++t) {
        for (int r = 0; r < 16; ++r) {
            kernels.add(uniqueKernel(
                "IPC" + std::to_string(t) + "_" + std::to_string(r), 3 + (t + r) % 5));
        }
    }
    for (int k = 0; k < 3; ++k) {
        for (int r = 0; r < 20; ++r) {
            kernels.add(uniqueKernel(
                "STORM" + std::to_string(k) + "_" + std::to_string(r), 8));
        }
    }

    emit("Multi-tenant flow service load generator\n");
    emit("(shared stage pool, shared artifact store, WFQ across tenants)\n\n");

    // Phase 1: mixed soak — 6 tenants × 40 flows, ~1 cold submission in
    // 8, the rest the shared warm pipeline.
    {
        svc::ServiceConfig config;
        config.rootDir = freshRoot("soak");
        config.stageWorkers = 4;
        config.flowRunners = 4;
        config.maxQueuedFlows = 512;
        svc::FlowService service(config, kernels);
        for (int t = 0; t < 6; ++t) {
            svc::TenantConfig tenant;
            tenant.weight = 1 + static_cast<unsigned>(t % 3);
            tenant.maxQueueDepth = 512;  // the soak measures throughput, not quotas
            service.configureTenant("tenant" + std::to_string(t), tenant);
        }
        const auto start = std::chrono::steady_clock::now();
        std::vector<svc::FlowHandle> handles;
        for (int round = 0; round < 40; ++round) {
            for (int t = 0; t < 6; ++t) {
                svc::FlowRequest request;
                request.tenant = "tenant" + std::to_string(t);
                request.project =
                    "p" + std::to_string(t) + "_" + std::to_string(round);
                request.graph = (round % 8 == 7)
                                    ? soloGraph("COLD" + std::to_string(t))
                                    : sharedGraph();
                handles.push_back(service.submit(std::move(request)));
            }
        }
        PhaseStats stats = drainAndCollect(service, handles, start);
        report("phase 1: mixed soak (6 tenants x 40 flows, cold/warm mix)", stats,
               service.stats());
        std::filesystem::remove_all(config.rootDir);
    }

    // Phase 2: the acceptance workload — two tenants, identical kernels.
    // Every HLS stage beyond the first synthesis of each kernel must be
    // served warm (cache/store) or deduped in flight: > 50% hit rate.
    double acceptanceRate = 0.0;
    {
        svc::ServiceConfig config;
        config.rootDir = freshRoot("warm");
        config.stageWorkers = 4;
        config.flowRunners = 4;
        config.maxQueuedFlows = 256;
        svc::FlowService service(config, kernels);
        for (int t = 0; t < 2; ++t) {
            svc::TenantConfig tenant;
            tenant.maxQueueDepth = 256;
            service.configureTenant("tenant" + std::to_string(t), tenant);
        }
        const auto start = std::chrono::steady_clock::now();
        std::vector<svc::FlowHandle> handles;
        for (int round = 0; round < 30; ++round) {
            for (int t = 0; t < 2; ++t) {
                svc::FlowRequest request;
                request.tenant = "tenant" + std::to_string(t);
                request.project =
                    "w" + std::to_string(t) + "_" + std::to_string(round);
                request.graph = sharedGraph();
                handles.push_back(service.submit(std::move(request)));
            }
        }
        PhaseStats stats = drainAndCollect(service, handles, start);
        emit("  in-flight dedupe waits: %zu\n", service.synthDedupeWaits());
        report("phase 2: 2-tenant identical-kernel workload (warm dedupe)", stats,
               service.stats());
        acceptanceRate = stats.dedupeRate();
        std::filesystem::remove_all(config.rootDir);
    }

    // Phase 3: overload storm — 120 submissions against one runner and
    // an 8-deep queue, priorities 0..2. Admission control must shed and
    // reject (bounded memory), never block the submitters.
    {
        svc::ServiceConfig config;
        config.rootDir = freshRoot("storm");
        config.stageWorkers = 2;
        config.flowRunners = 1;
        config.maxQueuedFlows = 8;
        config.flowDefaults.toolLatencyMsPerToolSecond = 0.05;
        svc::FlowService service(config, kernels);
        for (int t = 0; t < 6; ++t) {
            svc::TenantConfig tenant;
            tenant.priority = t % 3;
            tenant.maxQueueDepth = 64;
            service.configureTenant("tenant" + std::to_string(t), tenant);
        }
        const auto start = std::chrono::steady_clock::now();
        std::vector<svc::FlowHandle> handles;
        for (int round = 0; round < 20; ++round) {
            for (int t = 0; t < 6; ++t) {
                svc::FlowRequest request;
                request.tenant = "tenant" + std::to_string(t);
                request.project =
                    "s" + std::to_string(t) + "_" + std::to_string(round);
                request.graph = sharedGraph();
                handles.push_back(service.submit(std::move(request)));
            }
        }
        PhaseStats stats = drainAndCollect(service, handles, start);
        report("phase 3: overload storm (120 flows, 1 runner, 8-deep queue)", stats,
               service.stats());
        std::filesystem::remove_all(config.rootDir);
    }

    // Phase 4: the IPC hop, priced. The same 64-flow all-cold workload
    // (every HLS stage is a real engine run — nothing to dedupe) runs
    // twice against fresh roots: once in-process, once through a
    // 2-worker out-of-process fleet. The delta is pure wire cost:
    // AST encode + pipe round-trip + result decode per synthesis.
    {
        struct ColdRun {
            PhaseStats stats;
            svc::WorkerFleetStats fleet;
            bool usedFleet = false;
        };
        auto runCold = [&kernels](unsigned workers) {
            ColdRun run;
            svc::ServiceConfig config;
            config.rootDir = freshRoot(workers > 0 ? "ipc_fleet" : "ipc_local");
            config.stageWorkers = 4;
            config.flowRunners = 4;
            config.maxQueuedFlows = 256;
            config.workers = workers;
            svc::FlowService service(config, kernels);
            for (int t = 0; t < 4; ++t) {
                svc::TenantConfig tenant;
                tenant.maxQueueDepth = 256;
                service.configureTenant("tenant" + std::to_string(t), tenant);
            }
            const auto start = std::chrono::steady_clock::now();
            std::vector<svc::FlowHandle> handles;
            for (int round = 0; round < 16; ++round) {
                for (int t = 0; t < 4; ++t) {
                    svc::FlowRequest request;
                    request.tenant = "tenant" + std::to_string(t);
                    request.project =
                        "i" + std::to_string(t) + "_" + std::to_string(round);
                    request.graph = soloGraph("IPC" + std::to_string(t) + "_" +
                                              std::to_string(round));
                    handles.push_back(service.submit(std::move(request)));
                }
            }
            run.stats = drainAndCollect(service, handles, start);
            if (service.fleet() != nullptr) {
                run.fleet = service.fleet()->stats();
                run.usedFleet = run.fleet.requestsCompleted > 0;
            }
            std::filesystem::remove_all(config.rootDir);
            return run;
        };
        ColdRun local = runCold(0);
        ColdRun fleet = runCold(2);
        emit("phase 4: out-of-process worker fleet vs in-process (64 cold flows)\n");
        emit("  %-28s %10.1f flows/s   p50 %8.2f ms   p99 %8.2f ms\n",
             "in-process", local.stats.throughput(), local.stats.percentile(0.50),
             local.stats.percentile(0.99));
        emit("  %-28s %10.1f flows/s   p50 %8.2f ms   p99 %8.2f ms\n",
             "2-worker fleet", fleet.stats.throughput(), fleet.stats.percentile(0.50),
             fleet.stats.percentile(0.99));
        if (fleet.usedFleet) {
            emit("  %-28s %10zu syntheses over the wire, %zu spawns\n",
                 "fleet traffic", fleet.fleet.requestsCompleted, fleet.fleet.spawns);
        } else {
            emit("  %-28s fleet unavailable — worker run fell back in-process\n",
                 "fleet traffic");
        }
        emit("\n");
    }

    // Phase 5: 20-kill storm. Six tenants drain a cold+warm mix through
    // a 2-worker fleet while a killer thread SIGKILLs a random live
    // worker every ~25 ms, 20 times. Every flow must still complete
    // (supervisors respawn + re-dispatch); the phase reports the mean
    // time-to-recover and the fence/re-dispatch counters.
    {
        svc::ServiceConfig config;
        config.rootDir = freshRoot("killstorm");
        config.stageWorkers = 4;
        config.flowRunners = 4;
        config.maxQueuedFlows = 512;
        config.workers = 2;
        svc::FlowService service(config, kernels);
        for (int t = 0; t < 6; ++t) {
            svc::TenantConfig tenant;
            tenant.maxQueueDepth = 512;
            service.configureTenant("tenant" + std::to_string(t), tenant);
        }
        const auto start = std::chrono::steady_clock::now();
        std::vector<svc::FlowHandle> handles;
        for (int round = 0; round < 20; ++round) {
            for (int t = 0; t < 6; ++t) {
                svc::FlowRequest request;
                request.tenant = "tenant" + std::to_string(t);
                request.project =
                    "k" + std::to_string(t) + "_" + std::to_string(round);
                request.graph = (t < 3)
                                    ? soloGraph("STORM" + std::to_string(t) + "_" +
                                                std::to_string(round))
                                    : sharedGraph();
                handles.push_back(service.submit(std::move(request)));
            }
        }
        std::atomic<bool> drained{false};
        std::size_t killsIssued = 0;
        std::thread killer([&service, &drained, &killsIssued] {
            svc::WorkerFleet* fleet = service.fleet();
            if (fleet == nullptr) {
                return;
            }
            for (int i = 0; i < 200 && fleet->workerPids().empty(); ++i) {
                std::this_thread::sleep_for(std::chrono::milliseconds(10));
            }
            std::uint64_t seed = 0x5eedULL;
            while (killsIssued < 20 && !drained.load()) {
                if (fleet->killRandomWorker(seed++).has_value()) {
                    ++killsIssued;
                }
                std::this_thread::sleep_for(std::chrono::milliseconds(25));
            }
        });
        PhaseStats stats = drainAndCollect(service, handles, start);
        drained.store(true);
        killer.join();
        svc::WorkerFleetStats fleetStats;
        if (service.fleet() != nullptr) {
            fleetStats = service.fleet()->stats();
        }
        emit("phase 5: 20-kill storm against the 2-worker fleet (120 flows)\n");
        emit("  %-28s %10zu of %zu flows\n", "completed", stats.completed,
             handles.size());
        emit("  %-28s %10zu issued, %zu deaths observed, %zu respawns\n",
             "kill -9", killsIssued, fleetStats.workerDeaths, fleetStats.respawns);
        emit("  %-28s %10.1f ms over %zu recoveries\n", "mean time-to-recover",
             fleetStats.meanRecoverMs(), fleetStats.recoveries);
        emit("  %-28s %10zu re-dispatched, %zu stale results fenced\n",
             "lost attempts", fleetStats.redispatches, fleetStats.staleResultsDropped);
        emit("  %-28s %10zu over the wire, %zu failed over to in-process\n\n",
             "syntheses", fleetStats.requestsCompleted, fleetStats.requestsFailed);
        report("phase 5 service totals", stats, service.stats());
        std::filesystem::remove_all(config.rootDir);
    }

    std::filesystem::create_directories("bench_artifacts");
    writeFileAtomic("bench_artifacts/flow_service_load.txt", gOut);
    emit("wrote bench_artifacts/flow_service_load.txt\n");

    if (acceptanceRate <= 0.5) {
        std::fprintf(stderr,
                     "FAIL: warm dedupe hit rate %.1f%% <= 50%% acceptance bar\n",
                     100.0 * acceptanceRate);
        return 1;
    }
    return 0;
}
