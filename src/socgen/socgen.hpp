#pragma once

/// socgen — umbrella header for the public API.
///
/// socgen is a C++ reproduction of "Scala-Based Domain-Specific Language
/// for Creating Accelerator-Based SoCs" (Durelli et al., 2016): a DSL for
/// describing accelerator-based SoC task graphs whose execution drives a
/// complete (simulated) tool flow — HLS per node, system integration,
/// synthesis/bitstream, software generation — plus a cycle-based system
/// simulator standing in for the Zedboard.

#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/stopwatch.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"

#include "socgen/hls/directives.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/hls/interpreter.hpp"
#include "socgen/hls/ir.hpp"

#include "socgen/core/dsl.hpp"
#include "socgen/core/flow.hpp"
#include "socgen/core/htg.hpp"
#include "socgen/core/parser.hpp"
#include "socgen/core/project.hpp"

#include "socgen/soc/bitstream.hpp"
#include "socgen/soc/block_design.hpp"
#include "socgen/soc/synthesis.hpp"
#include "socgen/soc/system_sim.hpp"
#include "socgen/soc/tcl.hpp"

#include "socgen/sw/boot.hpp"
#include "socgen/sw/devicetree.hpp"
#include "socgen/sw/drivers.hpp"
