#include "socgen/sim/fault.hpp"

#include "socgen/sim/engine.hpp"

#include <algorithm>
#include <sstream>

namespace socgen::sim {
namespace {

/// splitmix64: tiny, high-quality, and stable across platforms — the
/// whole point is that a seed replays the exact same fault schedule.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    std::uint64_t below(std::uint64_t bound) {
        return bound == 0 ? 0 : next() % bound;
    }

private:
    std::uint64_t state_;
};

} // namespace

bool FaultPlan::isFlowLevel(FaultKind kind) {
    switch (kind) {
    case FaultKind::BitstreamCorrupt:
    case FaultKind::HlsFailure:
    case FaultKind::FlowCrash:
    case FaultKind::ArtifactCorrupt:
    case FaultKind::StageHang:
        return true;
    default:
        return false;
    }
}

const char* toString(FaultKind kind) {
    switch (kind) {
    case FaultKind::StreamStall: return "stream-stall";
    case FaultKind::StreamResume: return "stream-resume";
    case FaultKind::IrqDrop: return "irq-drop";
    case FaultKind::IrqDelay: return "irq-delay";
    case FaultKind::DdrBitFlip: return "ddr-bit-flip";
    case FaultKind::DmaCorruptMm2s: return "dma-corrupt-mm2s";
    case FaultKind::DmaCorruptS2mm: return "dma-corrupt-s2mm";
    case FaultKind::DmaStall: return "dma-stall";
    case FaultKind::BitstreamCorrupt: return "bitstream-corrupt";
    case FaultKind::HlsFailure: return "hls-failure";
    case FaultKind::FlowCrash: return "flow-crash";
    case FaultKind::ArtifactCorrupt: return "artifact-corrupt";
    case FaultKind::StageHang: return "stage-hang";
    }
    return "unknown";
}

std::string FaultEvent::render() const {
    std::ostringstream os;
    os << toString(kind) << " @" << cycle;
    if (!target.empty()) {
        os << " target=" << target;
    }
    os << " a=" << a << " b=" << b;
    return os.str();
}

FaultPlan FaultPlan::randomPlan(std::uint64_t seed, const Space& space) {
    FaultPlan plan(seed);
    SplitMix64 rng(seed);

    // Collect the kinds this space can actually express.
    std::vector<FaultKind> kinds;
    if (!space.channels.empty()) {
        kinds.push_back(FaultKind::StreamStall);
    }
    if (!space.irqLines.empty()) {
        kinds.push_back(FaultKind::IrqDrop);
    }
    if (space.ddrWords > 0) {
        kinds.push_back(FaultKind::DdrBitFlip);
    }
    if (!space.dmas.empty()) {
        kinds.push_back(FaultKind::DmaCorruptMm2s);
        kinds.push_back(FaultKind::DmaCorruptS2mm);
        kinds.push_back(FaultKind::DmaStall);
    }
    if (kinds.empty()) {
        return plan;
    }

    for (std::size_t i = 0; i < space.eventCount; ++i) {
        const FaultKind kind = kinds[rng.below(kinds.size())];
        const std::uint64_t cycle = 1 + rng.below(space.maxCycle);
        switch (kind) {
        case FaultKind::StreamStall:
            plan.stallStream(cycle, space.channels[rng.below(space.channels.size())],
                             1 + rng.below(256));
            break;
        case FaultKind::IrqDrop:
            plan.dropIrq(cycle, space.irqLines[rng.below(space.irqLines.size())]);
            break;
        case FaultKind::DdrBitFlip:
            plan.flipDdrBit(cycle, rng.below(space.ddrWords),
                            static_cast<unsigned>(rng.below(32)));
            break;
        case FaultKind::DmaCorruptMm2s:
            plan.corruptMm2s(cycle, space.dmas[rng.below(space.dmas.size())],
                             1 + rng.below(0xFFFFFFFFULL), 1 + rng.below(4));
            break;
        case FaultKind::DmaCorruptS2mm:
            plan.corruptS2mm(cycle, space.dmas[rng.below(space.dmas.size())],
                             1 + rng.below(0xFFFFFFFFULL), 1 + rng.below(4));
            break;
        case FaultKind::DmaStall:
            plan.stallDma(cycle, space.dmas[rng.below(space.dmas.size())],
                          1 + rng.below(512));
            break;
        default:
            break;
        }
    }
    return plan;
}

FaultPlan& FaultPlan::stallStream(std::uint64_t cycle, std::string channel,
                                  std::uint64_t cycles) {
    return add({FaultKind::StreamStall, cycle, std::move(channel), cycles, 0});
}

FaultPlan& FaultPlan::dropIrq(std::uint64_t cycle, std::string line, std::uint64_t edges) {
    return add({FaultKind::IrqDrop, cycle, std::move(line), edges, 0});
}

FaultPlan& FaultPlan::delayIrq(std::uint64_t cycle, std::string line, std::uint64_t cycles) {
    return add({FaultKind::IrqDelay, cycle, std::move(line), cycles, 0});
}

FaultPlan& FaultPlan::flipDdrBit(std::uint64_t cycle, std::uint64_t wordAddr, unsigned bit) {
    return add({FaultKind::DdrBitFlip, cycle, {}, wordAddr, bit});
}

FaultPlan& FaultPlan::corruptMm2s(std::uint64_t cycle, std::string dma,
                                  std::uint64_t xorMask, std::uint64_t words) {
    return add({FaultKind::DmaCorruptMm2s, cycle, std::move(dma), xorMask, words});
}

FaultPlan& FaultPlan::corruptS2mm(std::uint64_t cycle, std::string dma,
                                  std::uint64_t xorMask, std::uint64_t words) {
    return add({FaultKind::DmaCorruptS2mm, cycle, std::move(dma), xorMask, words});
}

FaultPlan& FaultPlan::stallDma(std::uint64_t cycle, std::string dma, std::uint64_t cycles) {
    return add({FaultKind::DmaStall, cycle, std::move(dma), cycles, 0});
}

FaultPlan& FaultPlan::corruptBitstream(std::size_t section, unsigned bit) {
    return add({FaultKind::BitstreamCorrupt, 0, {}, section, bit});
}

FaultPlan& FaultPlan::failHls(std::string kernel) {
    return add({FaultKind::HlsFailure, 0, std::move(kernel), 0, 0});
}

FaultPlan& FaultPlan::crashFlow(std::string stage, std::uint64_t phase) {
    return add({FaultKind::FlowCrash, 0, std::move(stage), phase, 0});
}

FaultPlan& FaultPlan::corruptArtifact(std::string kernel) {
    return add({FaultKind::ArtifactCorrupt, 0, std::move(kernel), 0, 0});
}

FaultPlan& FaultPlan::hangStage(std::string stage, std::uint64_t milliseconds) {
    return add({FaultKind::StageHang, 0, std::move(stage), milliseconds, 0});
}

FaultPlan& FaultPlan::add(FaultEvent event) {
    events_.push_back(std::move(event));
    return *this;
}

std::vector<FaultEvent> FaultPlan::eventsOfKind(FaultKind kind) const {
    std::vector<FaultEvent> out;
    for (const auto& e : events_) {
        if (e.kind == kind) {
            out.push_back(e);
        }
    }
    return out;
}

std::string FaultPlan::render() const {
    std::ostringstream os;
    os << "fault plan (seed " << seed_ << ", " << events_.size() << " events)";
    for (const auto& e : events_) {
        os << "\n  " << e.render();
    }
    return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan) {
    setPlan(std::move(plan));
}

void FaultInjector::setPlan(FaultPlan plan) {
    plan_ = std::move(plan);
    cursor_ = 0;
    // Cycle-level events fire in cycle order regardless of plan order.
    pending_.clear();
    for (const auto& e : plan_.events()) {
        if (!FaultPlan::isFlowLevel(e.kind)) {
            pending_.push_back(e);
        }
    }
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const FaultEvent& lhs, const FaultEvent& rhs) {
                         return lhs.cycle < rhs.cycle;
                     });
}

void FaultInjector::onFault(FaultKind kind, Handler handler) {
    handlers_[kind] = std::move(handler);
}

void FaultInjector::attach(Engine& engine) {
    engine_ = &engine;
    engine.addProbe([this] { pump(engine_->now()); });
}

void FaultInjector::schedule(FaultEvent event) {
    // Insert keeping cycle order beyond the cursor.
    auto it = std::upper_bound(pending_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                               pending_.end(), event,
                               [](const FaultEvent& lhs, const FaultEvent& rhs) {
                                   return lhs.cycle < rhs.cycle;
                               });
    pending_.insert(it, std::move(event));
}

void FaultInjector::pump(std::uint64_t cycle) {
    while (cursor_ < pending_.size() && pending_[cursor_].cycle <= cycle) {
        const FaultEvent event = pending_[cursor_];
        ++cursor_;
        auto it = handlers_.find(event.kind);
        if (it == handlers_.end() || !it->second) {
            unhandled_.push_back(event);
            continue;
        }
        it->second(event);
        fired_.push_back(event);
    }
}

std::string FaultInjector::log() const {
    std::ostringstream os;
    os << "fired " << fired_.size() << " fault(s)";
    for (const auto& e : fired_) {
        os << "\n  " << e.render();
    }
    if (!unhandled_.empty()) {
        os << "\nunhandled " << unhandled_.size() << " fault(s)";
        for (const auto& e : unhandled_) {
            os << "\n  " << e.render();
        }
    }
    return os.str();
}

} // namespace socgen::sim
