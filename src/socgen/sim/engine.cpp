#include "socgen/sim/engine.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

namespace socgen::sim {

void Engine::add(Component& component) {
    components_.push_back(&component);
}

void Engine::addProbe(std::function<void()> probe) {
    probes_.push_back(std::move(probe));
}

void Engine::stepOnce(bool& anyProgress, bool& allIdle) {
    anyProgress = false;
    allIdle = true;
    for (Component* c : components_) {
        if (c->tick()) {
            anyProgress = true;
        }
    }
    for (Component* c : components_) {
        if (!c->idle()) {
            allIdle = false;
            break;
        }
    }
    for (const auto& probe : probes_) {
        probe();
    }
    ++now_;
}

std::uint64_t Engine::runUntilIdle(std::uint64_t maxCycles, std::uint64_t stallLimit) {
    const std::uint64_t start = now_;
    std::uint64_t stalledFor = 0;
    while (now_ - start < maxCycles) {
        bool anyProgress = false;
        bool allIdle = true;
        stepOnce(anyProgress, allIdle);
        if (allIdle) {
            return now_ - start;
        }
        stalledFor = anyProgress ? 0 : stalledFor + 1;
        if (stalledFor >= stallLimit) {
            std::string stuck;
            for (Component* c : components_) {
                if (!c->idle()) {
                    if (!stuck.empty()) {
                        stuck += ", ";
                    }
                    stuck += c->name();
                }
            }
            throw SimulationError(format(
                "deadlock: no progress for %llu cycles; busy components: %s",
                static_cast<unsigned long long>(stallLimit), stuck.c_str()));
        }
    }
    throw SimulationError(format("simulation exceeded %llu cycles without quiescing",
                                 static_cast<unsigned long long>(maxCycles)));
}

void Engine::run(std::uint64_t cycles) {
    for (std::uint64_t i = 0; i < cycles; ++i) {
        bool anyProgress = false;
        bool allIdle = true;
        stepOnce(anyProgress, allIdle);
    }
}

} // namespace socgen::sim
