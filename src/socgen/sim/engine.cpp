#include "socgen/sim/engine.hpp"

#include <sstream>
#include <utility>

namespace socgen::sim {

std::vector<std::string> DeadlockReport::blockedComponents() const {
    std::vector<std::string> names;
    for (const auto& c : components) {
        if (!c.idle) {
            names.push_back(c.name);
        }
    }
    return names;
}

std::string DeadlockReport::render() const {
    std::ostringstream os;
    os << "deadlock: no progress for " << stallCycles << " cycles at cycle " << cycle
       << "; blocked components:";
    bool any = false;
    for (const auto& c : components) {
        if (c.idle) {
            continue;
        }
        any = true;
        os << "\n  - " << c.name << " (last progress at cycle " << c.lastProgressCycle << ")";
        if (!c.detail.empty()) {
            os << ": " << c.detail;
        }
    }
    if (!any) {
        os << " none";
    }
    if (!channels.empty()) {
        os << "\nchannel state:";
        for (const auto& ch : channels) {
            os << "\n  - " << ch.name << ": " << ch.occupancy << "/" << ch.capacity << " words";
            if (ch.full) {
                os << " [FULL]";
            } else if (ch.empty) {
                os << " [EMPTY]";
            }
            os << ", push stalls " << ch.pushStalls << ", pop stalls " << ch.popStalls;
        }
    }
    return os.str();
}

DeadlockError::DeadlockError(DeadlockReport report)
    : SimulationError(report.render()), report_(std::move(report)) {}

void Engine::add(Component& component) {
    components_.push_back(&component);
    lastProgress_.push_back(now_);
}

void Engine::addProbe(std::function<void()> probe) {
    probes_.push_back(std::move(probe));
}

void Engine::addChannelWatch(std::function<DeadlockReport::ChannelState()> watch) {
    channelWatches_.push_back(std::move(watch));
}

void Engine::stepOnce(bool& anyProgress, bool& allIdle) {
    anyProgress = false;
    allIdle = true;
    for (std::size_t i = 0; i < components_.size(); ++i) {
        if (components_[i]->tick()) {
            anyProgress = true;
            lastProgress_[i] = now_;
        }
    }
    for (Component* c : components_) {
        if (!c->idle()) {
            allIdle = false;
            break;
        }
    }
    for (const auto& probe : probes_) {
        probe();
    }
    ++now_;
}

DeadlockReport Engine::snapshot(std::uint64_t stallCycles) const {
    DeadlockReport report;
    report.cycle = now_;
    report.stallCycles = stallCycles;
    report.components.reserve(components_.size());
    for (std::size_t i = 0; i < components_.size(); ++i) {
        DeadlockReport::ComponentState state;
        state.name = components_[i]->name();
        state.idle = components_[i]->idle();
        state.lastProgressCycle = lastProgress_[i];
        state.detail = components_[i]->debugState();
        report.components.push_back(std::move(state));
    }
    report.channels.reserve(channelWatches_.size());
    for (const auto& watch : channelWatches_) {
        report.channels.push_back(watch());
    }
    return report;
}

std::uint64_t Engine::runUntilIdle(std::uint64_t maxCycles, std::uint64_t stallLimit) {
    const std::uint64_t start = now_;
    std::uint64_t stalledFor = 0;
    while (now_ - start < maxCycles) {
        bool anyProgress = false;
        bool allIdle = true;
        stepOnce(anyProgress, allIdle);
        if (allIdle) {
            return now_ - start;
        }
        stalledFor = anyProgress ? 0 : stalledFor + 1;
        if (stalledFor >= stallLimit) {
            throw DeadlockError(snapshot(stalledFor));
        }
    }
    throw SimulationError("simulation exceeded " + std::to_string(maxCycles) +
                          " cycles without quiescing");
}

void Engine::run(std::uint64_t cycles) {
    for (std::uint64_t i = 0; i < cycles; ++i) {
        bool anyProgress = false;
        bool allIdle = true;
        stepOnce(anyProgress, allIdle);
    }
}

} // namespace socgen::sim
