#pragma once

#include "socgen/common/error.hpp"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace socgen::sim {

/// A clocked component of the simulated SoC. Each cycle the engine calls
/// tick() once on every component in registration order (components must
/// therefore tolerate same-cycle ordering; channels decouple them).
class Component {
public:
    virtual ~Component() = default;

    [[nodiscard]] virtual const std::string& name() const = 0;

    /// Advances one clock cycle. Returns true if the component did useful
    /// work this cycle (used for deadlock/quiescence detection).
    virtual bool tick() = 0;

    /// True when the component has nothing left to do.
    [[nodiscard]] virtual bool idle() const = 0;

    /// One-line description of the component's internal state, used for
    /// deadlock forensics ("polling 0x43c00004", "MM2S 512 words left").
    [[nodiscard]] virtual std::string debugState() const { return {}; }
};

/// Snapshot of a wedged simulation: which components stopped making
/// progress when, and what every watched channel looked like at the
/// moment of the stall. Produced by Engine::runUntilIdle and carried by
/// DeadlockError so callers (and humans) can diagnose instead of guess.
struct DeadlockReport {
    struct ComponentState {
        std::string name;
        bool idle = false;
        std::uint64_t lastProgressCycle = 0;  ///< last cycle tick() returned true
        std::string detail;                   ///< Component::debugState()
    };
    struct ChannelState {
        std::string name;
        std::size_t occupancy = 0;
        std::size_t capacity = 0;
        std::uint64_t pushStalls = 0;  ///< producer held off (TVALID && !TREADY)
        std::uint64_t popStalls = 0;   ///< consumer starved (TREADY && !TVALID)
        bool full = false;
        bool empty = false;
    };

    std::uint64_t cycle = 0;       ///< cycle at which the stall was declared
    std::uint64_t stallCycles = 0; ///< consecutive cycles without progress
    std::vector<ComponentState> components;
    std::vector<ChannelState> channels;

    /// Names of the non-idle (blocked) components.
    [[nodiscard]] std::vector<std::string> blockedComponents() const;

    /// Multi-line human-readable rendering (also the DeadlockError text).
    [[nodiscard]] std::string render() const;
};

/// SimulationError specialisation that carries the full structured
/// report; what() is the rendered report text.
class DeadlockError : public SimulationError {
public:
    explicit DeadlockError(DeadlockReport report);
    [[nodiscard]] const DeadlockReport& report() const { return report_; }

private:
    DeadlockReport report_;
};

/// Cycle-based simulation engine for a generated SoC: single clock
/// domain (the Zynq PL fabric clock), deterministic ordering.
class Engine {
public:
    /// Registers a component (not owned). Order defines tick order.
    void add(Component& component);

    /// Optional per-cycle probe (e.g. protocol monitors, fault injectors).
    void addProbe(std::function<void()> probe);

    /// Registers a channel snapshot source included in deadlock reports.
    void addChannelWatch(std::function<DeadlockReport::ChannelState()> watch);

    /// Runs until every component is idle, or `maxCycles` elapse.
    /// Throws DeadlockError (with a full DeadlockReport) when no component
    /// makes progress for `stallLimit` consecutive cycles while not all
    /// are idle; throws SimulationError on the cycle-budget overrun.
    /// Returns the number of cycles simulated.
    std::uint64_t runUntilIdle(std::uint64_t maxCycles = 100'000'000,
                               std::uint64_t stallLimit = 100'000);

    /// Runs exactly `cycles` cycles (no idle/deadlock checks).
    void run(std::uint64_t cycles);

    [[nodiscard]] std::uint64_t now() const { return now_; }

    /// Builds the forensic snapshot at the current cycle (also used by
    /// runUntilIdle when declaring a deadlock).
    [[nodiscard]] DeadlockReport snapshot(std::uint64_t stallCycles = 0) const;

private:
    void stepOnce(bool& anyProgress, bool& allIdle);

    std::vector<Component*> components_;
    std::vector<std::uint64_t> lastProgress_;
    std::vector<std::function<void()>> probes_;
    std::vector<std::function<DeadlockReport::ChannelState()>> channelWatches_;
    std::uint64_t now_ = 0;
};

} // namespace socgen::sim
