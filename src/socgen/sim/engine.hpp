#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace socgen::sim {

/// A clocked component of the simulated SoC. Each cycle the engine calls
/// tick() once on every component in registration order (components must
/// therefore tolerate same-cycle ordering; channels decouple them).
class Component {
public:
    virtual ~Component() = default;

    [[nodiscard]] virtual const std::string& name() const = 0;

    /// Advances one clock cycle. Returns true if the component did useful
    /// work this cycle (used for deadlock/quiescence detection).
    virtual bool tick() = 0;

    /// True when the component has nothing left to do.
    [[nodiscard]] virtual bool idle() const = 0;
};

/// Cycle-based simulation engine for a generated SoC: single clock
/// domain (the Zynq PL fabric clock), deterministic ordering.
class Engine {
public:
    /// Registers a component (not owned). Order defines tick order.
    void add(Component& component);

    /// Optional per-cycle probe (e.g. protocol monitors).
    void addProbe(std::function<void()> probe);

    /// Runs until every component is idle, or `maxCycles` elapse.
    /// Throws SimulationError on deadlock: no component made progress for
    /// `stallLimit` consecutive cycles while not all are idle.
    /// Returns the number of cycles simulated.
    std::uint64_t runUntilIdle(std::uint64_t maxCycles = 100'000'000,
                               std::uint64_t stallLimit = 100'000);

    /// Runs exactly `cycles` cycles (no idle/deadlock checks).
    void run(std::uint64_t cycles);

    [[nodiscard]] std::uint64_t now() const { return now_; }

private:
    void stepOnce(bool& anyProgress, bool& allIdle);

    std::vector<Component*> components_;
    std::vector<std::function<void()>> probes_;
    std::uint64_t now_ = 0;
};

} // namespace socgen::sim
