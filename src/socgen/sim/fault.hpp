#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace socgen::sim {

class Engine;

/// Kinds of faults the injector knows how to schedule. Cycle-level kinds
/// are fired by the injector's engine probe; flow-level kinds
/// (BitstreamCorrupt, HlsFailure) are consumed by the harness before the
/// simulation starts (via FaultPlan::eventsOfKind) because they strike
/// tool phases, not clocked hardware.
enum class FaultKind {
    StreamStall,      ///< block channel `target` push+pop for `a` cycles
    StreamResume,     ///< internal: unblock channel `target`
    IrqDrop,          ///< swallow the next `a` raise() edges on line `target`
    IrqDelay,         ///< delay the next raise() on line `target` by `a` cycles
    DdrBitFlip,       ///< flip bit `b` of DDR word address `a`
    DmaCorruptMm2s,   ///< XOR the next `b` MM2S reads of dma `target` with `a`
    DmaCorruptS2mm,   ///< XOR the next `b` S2MM writes of dma `target` with `a`
    DmaStall,         ///< freeze dma `target` descriptors for `a` cycles
    BitstreamCorrupt, ///< flip bit `b` of section `a` of the bitstream payload
    HlsFailure,       ///< fail HLS for kernel `target` (flow-level)
    FlowCrash,        ///< kill the flow at stage `target`; `a`: 0 = at stage
                      ///< begin (after the begin journal record), 1 = pre-commit
                      ///< (work done, commit record not yet written)
    ArtifactCorrupt,  ///< corrupt the stored artifact of kernel `target` after
                      ///< it is written (flow-level; next load must detect it)
    StageHang,        ///< stage `target` hangs for `a` host-milliseconds on its
                      ///< first execution (one-shot; exercises the deadline)
};

[[nodiscard]] const char* toString(FaultKind kind);

/// One scheduled fault. `cycle` is the simulation cycle at which the
/// injector fires it (ignored for flow-level kinds). `target` names the
/// victim (channel, IRQ line, DMA instance, kernel); `a`/`b` are
/// kind-specific operands documented on FaultKind.
struct FaultEvent {
    FaultKind kind = FaultKind::StreamStall;
    std::uint64_t cycle = 0;
    std::string target;
    std::uint64_t a = 0;
    std::uint64_t b = 0;

    [[nodiscard]] std::string render() const;
};

/// A deterministic, ordered schedule of fault events. Plans built from
/// the same seed (randomPlan) or the same builder calls are identical,
/// so a failing sweep iteration can be replayed exactly.
class FaultPlan {
public:
    FaultPlan() = default;
    explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

    /// Names the resources a random plan may target.
    struct Space {
        std::vector<std::string> channels;
        std::vector<std::string> irqLines;
        std::vector<std::string> dmas;
        std::vector<std::string> kernels;
        std::uint64_t maxCycle = 10'000;
        std::uint64_t ddrWords = 0; ///< 0 disables DdrBitFlip events
        std::size_t eventCount = 4;
    };

    /// Builds a seed-deterministic plan over `space` (splitmix64 PRNG).
    [[nodiscard]] static FaultPlan randomPlan(std::uint64_t seed, const Space& space);

    FaultPlan& stallStream(std::uint64_t cycle, std::string channel, std::uint64_t cycles);
    FaultPlan& dropIrq(std::uint64_t cycle, std::string line, std::uint64_t edges = 1);
    FaultPlan& delayIrq(std::uint64_t cycle, std::string line, std::uint64_t cycles);
    FaultPlan& flipDdrBit(std::uint64_t cycle, std::uint64_t wordAddr, unsigned bit);
    FaultPlan& corruptMm2s(std::uint64_t cycle, std::string dma, std::uint64_t xorMask,
                           std::uint64_t words = 1);
    FaultPlan& corruptS2mm(std::uint64_t cycle, std::string dma, std::uint64_t xorMask,
                           std::uint64_t words = 1);
    FaultPlan& stallDma(std::uint64_t cycle, std::string dma, std::uint64_t cycles);
    FaultPlan& corruptBitstream(std::size_t section, unsigned bit);
    FaultPlan& failHls(std::string kernel);
    /// `phase`: 0 = crash at stage begin, 1 = crash pre-commit.
    FaultPlan& crashFlow(std::string stage, std::uint64_t phase = 0);
    FaultPlan& corruptArtifact(std::string kernel);
    FaultPlan& hangStage(std::string stage, std::uint64_t milliseconds);

    /// True for kinds consumed by the tool flow rather than the cycle
    /// simulator (they strike tool phases, not clocked hardware).
    [[nodiscard]] static bool isFlowLevel(FaultKind kind);

    FaultPlan& add(FaultEvent event);

    [[nodiscard]] std::uint64_t seed() const { return seed_; }
    [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
    [[nodiscard]] std::vector<FaultEvent> eventsOfKind(FaultKind kind) const;
    [[nodiscard]] bool empty() const { return events_.empty(); }

    /// Stable textual form; two plans are equal iff their renders match.
    [[nodiscard]] std::string render() const;

private:
    std::uint64_t seed_ = 0;
    std::vector<FaultEvent> events_;
};

/// Executes a FaultPlan against a running Engine. The injector itself is
/// substrate-agnostic: it knows nothing of AXI channels or DMAs. The SoC
/// layer registers a handler per FaultKind (SystemSimulator::armFaults)
/// and the injector dispatches due events from an engine probe, keeping
/// sim free of upward dependencies.
class FaultInjector {
public:
    using Handler = std::function<void(const FaultEvent&)>;

    explicit FaultInjector(FaultPlan plan = {});

    void setPlan(FaultPlan plan);
    [[nodiscard]] const FaultPlan& plan() const { return plan_; }

    /// Registers the callback that applies events of `kind`.
    void onFault(FaultKind kind, Handler handler);

    /// Hooks the injector into the engine's probe list. Call once.
    void attach(Engine& engine);

    /// Adds an event mid-run (used for scheduled StreamResume).
    void schedule(FaultEvent event);

    /// Events fired so far, in firing order.
    [[nodiscard]] const std::vector<FaultEvent>& fired() const { return fired_; }

    /// Events whose kind had no registered handler when due.
    [[nodiscard]] const std::vector<FaultEvent>& unhandled() const { return unhandled_; }

    /// Human-readable injection log.
    [[nodiscard]] std::string log() const;

private:
    void pump(std::uint64_t cycle);

    FaultPlan plan_;
    std::size_t cursor_ = 0;
    std::map<FaultKind, Handler> handlers_;
    std::vector<FaultEvent> pending_; ///< events scheduled mid-run
    std::vector<FaultEvent> fired_;
    std::vector<FaultEvent> unhandled_;
    Engine* engine_ = nullptr;
};

} // namespace socgen::sim
