#pragma once

#include "socgen/core/flow.hpp"
#include "socgen/core/htg.hpp"
#include "socgen/hls/resources.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace socgen::dse {

/// One directive configuration of a DSE sweep: per-kernel HLS directives
/// layered over the explorer's base options. Kernels not named keep the
/// base directives.
struct DirectiveVariant {
    std::string name;  ///< project-name suffix ("base", "unroll4", ...)
    std::map<std::string, hls::Directives> kernelDirectives;
};

/// What one evaluated variant cost: the full flow result plus the reuse
/// counters that show how much work the shared cache/store saved.
struct VariantOutcome {
    std::string name;
    core::FlowResult result;
    std::size_t engineRuns = 0;   ///< kernels actually synthesized this run
    std::size_t cacheHits = 0;    ///< kernels served from the shared cache
    std::size_t storeHits = 0;    ///< kernels served from the artifact store
    double toolSeconds = 0.0;     ///< simulated tool time of the whole flow
};

/// Directive-space explorer built on the stage-graph flow engine: every
/// variant runs through core::Flow (and therefore the StageGraphExecutor),
/// and all variants share one HlsCache and — when `outputDir` is set —
/// one content-addressed ArtifactStore. Because artifact keys digest
/// (kernel, directives, device, tool version), evaluating a variant
/// re-synthesizes exactly the kernels whose directives changed; everything
/// else is a cache or store hit with zero tool time.
class Explorer {
public:
    Explorer(core::FlowOptions base, const hls::KernelLibrary& kernels,
             std::shared_ptr<core::HlsCache> cache = nullptr);

    /// Runs the flow for one variant (project name `<project>_<variant>`).
    [[nodiscard]] VariantOutcome evaluate(const std::string& project,
                                          const core::TaskGraph& graph,
                                          const DirectiveVariant& variant);

    /// Evaluates every variant in order against the shared cache/store.
    [[nodiscard]] std::vector<VariantOutcome> sweep(
        const std::string& project, const core::TaskGraph& graph,
        const std::vector<DirectiveVariant>& variants);

    /// The cache shared by every evaluated variant.
    [[nodiscard]] const std::shared_ptr<core::HlsCache>& cache() const { return cache_; }

private:
    core::FlowOptions base_;
    const hls::KernelLibrary& kernels_;
    std::shared_ptr<core::HlsCache> cache_;
};

/// One evaluated design point of the HW/SW-partitioning space. The paper
/// leaves DSE integration as future work (Section II-C); this module
/// implements the exhaustive explorer the case study calls for: every
/// subset of the partitionable units, evaluated for PL resources and
/// simulated end-to-end execution time.
struct DsePoint {
    unsigned mask = 0;              ///< bit i = unit i mapped to hardware
    std::string label;              ///< e.g. "HW{histogram,otsuMethod}"
    core::HtgPartition partition;
    hls::ResourceEstimate resources;
    std::uint64_t cycles = 0;       ///< simulated execution cycles
    bool feasible = true;           ///< fits the device / runnable
    std::string infeasibleReason;
};

/// Evaluator callback: builds/synthesizes/simulates the architecture for
/// one mask. Expected to set everything except `mask`.
using DseEvaluator = std::function<DsePoint(unsigned mask)>;

/// Exhaustively evaluates all 2^unitCount partitions (unitCount <= 20).
/// Evaluator exceptions mark the point infeasible instead of aborting the
/// sweep.
[[nodiscard]] std::vector<DsePoint> exploreExhaustive(unsigned unitCount,
                                                      const DseEvaluator& evaluate);

/// Pareto-optimal subset under (minimise LUT, minimise cycles) among
/// feasible points; returned sorted by LUT ascending.
[[nodiscard]] std::vector<DsePoint> paretoFront(const std::vector<DsePoint>& points);

/// Result of a heuristic exploration: the accepted trajectory plus every
/// point that was evaluated along the way.
struct GreedyResult {
    std::vector<DsePoint> evaluated;   ///< all evaluations, in order
    std::vector<unsigned> trajectory;  ///< accepted masks, starting at 0
    DsePoint best;                     ///< final accepted point
};

/// Greedy hill climbing over the partition lattice (the class of
/// heuristic DSE the paper defers to [6], [8], [12]): start all-software,
/// repeatedly move the single unit to hardware that most reduces cycles
/// while remaining feasible; stop when no flip improves. Evaluates
/// O(units^2) points instead of 2^units.
[[nodiscard]] GreedyResult exploreGreedy(unsigned unitCount,
                                         const DseEvaluator& evaluate);

/// Formats a sweep as a fixed-width table (mask, label, LUT/FF/BRAM/DSP,
/// cycles, speedup vs the all-software point, Pareto membership).
[[nodiscard]] std::string renderTable(const std::vector<DsePoint>& points);

/// One stimulus scenario of a batched gate-level co-simulation sweep:
/// input ports held at fixed values while the core runs to completion.
struct CosimScenario {
    std::string name;
    std::map<std::string, std::uint64_t> inputs;
};

/// What one scenario lane produced. `outputs` holds every output port of
/// the netlist at the moment the lane finished (done seen, fault, or the
/// cycle budget ran out).
struct CosimLaneResult {
    std::string scenario;
    bool done = false;
    std::uint64_t doneCycle = 0;   ///< cycleCount() when done first read non-zero
    std::map<std::string, std::uint64_t> outputs;
    bool faulted = false;
    std::uint64_t faultCycle = 0;
    std::string faultMessage;
};

/// Runs up to rtl::kMaxSimLanes stimulus scenarios against one candidate
/// netlist in a single batched simulation (rtl::makeSimBatch): the DSE
/// evaluator's cycle measurements for all scenarios of a design point
/// cost one compiled sweep instead of one full simulation per scenario.
/// Every lane's observable behaviour is identical to a scalar run of the
/// same scenario (the batch-parity differential suite pins this), so
/// the measured done-cycles can be compared across candidates evaluated
/// at different lane counts. `donePort` empty runs every lane for
/// exactly `maxCycles`; a lane whose scenario trips a simulation fault
/// (e.g. BRAM overrun) reports it instead of aborting the sweep.
[[nodiscard]] std::vector<CosimLaneResult> batchCosim(const rtl::Netlist& netlist,
                                                      const std::vector<CosimScenario>& scenarios,
                                                      std::string_view donePort,
                                                      std::uint64_t maxCycles,
                                                      const rtl::SimConfig& config = {});

} // namespace socgen::dse
