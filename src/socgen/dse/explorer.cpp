#include "socgen/dse/explorer.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/rtl/sim_batch.hpp"

#include <algorithm>
#include <sstream>

namespace socgen::dse {

Explorer::Explorer(core::FlowOptions base, const hls::KernelLibrary& kernels,
                   std::shared_ptr<core::HlsCache> cache)
    : base_(std::move(base)), kernels_(kernels),
      cache_(cache != nullptr ? std::move(cache)
                              : std::make_shared<core::HlsCache>()) {}

VariantOutcome Explorer::evaluate(const std::string& project,
                                  const core::TaskGraph& graph,
                                  const DirectiveVariant& variant) {
    core::FlowOptions options = base_;
    for (const auto& [kernel, directives] : variant.kernelDirectives) {
        options.kernelDirectives[kernel] = directives;
    }
    core::Flow flow(std::move(options), kernels_, cache_);
    VariantOutcome outcome;
    outcome.name = variant.name;
    outcome.result =
        flow.run(variant.name.empty() ? project : project + "_" + variant.name, graph);
    outcome.engineRuns = outcome.result.diagnostics.engineRuns();
    outcome.cacheHits = outcome.result.diagnostics.cacheHits();
    outcome.storeHits = outcome.result.diagnostics.storeHits();
    outcome.toolSeconds = outcome.result.timeline.totalToolSeconds();
    return outcome;
}

std::vector<VariantOutcome> Explorer::sweep(const std::string& project,
                                            const core::TaskGraph& graph,
                                            const std::vector<DirectiveVariant>& variants) {
    std::vector<VariantOutcome> outcomes;
    outcomes.reserve(variants.size());
    for (const auto& variant : variants) {
        outcomes.push_back(evaluate(project, graph, variant));
        const VariantOutcome& last = outcomes.back();
        Logger::global().info(
            format("dse: variant %s: %zu synthesized, %zu cache hit(s), %zu store "
                   "hit(s), %.1f tool-s",
                   last.name.c_str(), last.engineRuns, last.cacheHits, last.storeHits,
                   last.toolSeconds));
    }
    return outcomes;
}

std::vector<DsePoint> exploreExhaustive(unsigned unitCount, const DseEvaluator& evaluate) {
    if (unitCount > 20) {
        throw Error("exhaustive DSE limited to 20 units (2^20 points)");
    }
    std::vector<DsePoint> points;
    const unsigned total = 1u << unitCount;
    points.reserve(total);
    for (unsigned mask = 0; mask < total; ++mask) {
        DsePoint point;
        try {
            point = evaluate(mask);
        } catch (const std::exception& e) {
            point.feasible = false;
            point.infeasibleReason = e.what();
            Logger::global().info(format("dse: mask %u infeasible: %s", mask, e.what()));
        }
        point.mask = mask;
        points.push_back(std::move(point));
    }
    return points;
}

GreedyResult exploreGreedy(unsigned unitCount, const DseEvaluator& evaluate) {
    if (unitCount > 20) {
        throw Error("greedy DSE limited to 20 units");
    }
    GreedyResult result;
    const auto evaluateMask = [&](unsigned mask) {
        DsePoint point;
        try {
            point = evaluate(mask);
        } catch (const std::exception& e) {
            point.feasible = false;
            point.infeasibleReason = e.what();
        }
        point.mask = mask;
        result.evaluated.push_back(point);
        return point;
    };

    DsePoint current = evaluateMask(0);
    if (!current.feasible) {
        throw Error("greedy DSE: the all-software point is infeasible");
    }
    result.trajectory.push_back(0);
    bool improved = true;
    while (improved) {
        improved = false;
        DsePoint bestNeighbour;
        bool haveNeighbour = false;
        for (unsigned unit = 0; unit < unitCount; ++unit) {
            const unsigned candidate = current.mask | (1u << unit);
            if (candidate == current.mask) {
                continue;  // already in hardware
            }
            const DsePoint point = evaluateMask(candidate);
            if (point.feasible && point.cycles < current.cycles &&
                (!haveNeighbour || point.cycles < bestNeighbour.cycles)) {
                bestNeighbour = point;
                haveNeighbour = true;
            }
        }
        if (haveNeighbour) {
            current = bestNeighbour;
            result.trajectory.push_back(current.mask);
            improved = true;
        }
    }
    result.best = current;
    Logger::global().info(format("dse: greedy converged at mask %u after %zu evaluations",
                                 current.mask, result.evaluated.size()));
    return result;
}

std::vector<DsePoint> paretoFront(const std::vector<DsePoint>& points) {
    std::vector<DsePoint> feasible;
    for (const auto& p : points) {
        if (p.feasible) {
            feasible.push_back(p);
        }
    }
    std::vector<DsePoint> front;
    for (const auto& candidate : feasible) {
        const bool dominated = std::any_of(
            feasible.begin(), feasible.end(), [&](const DsePoint& other) {
                const bool noWorse = other.resources.lut <= candidate.resources.lut &&
                                     other.cycles <= candidate.cycles;
                const bool better = other.resources.lut < candidate.resources.lut ||
                                    other.cycles < candidate.cycles;
                return noWorse && better;
            });
        if (!dominated) {
            front.push_back(candidate);
        }
    }
    std::sort(front.begin(), front.end(), [](const DsePoint& a, const DsePoint& b) {
        return a.resources.lut < b.resources.lut;
    });
    return front;
}

std::string renderTable(const std::vector<DsePoint>& points) {
    const auto pareto = paretoFront(points);
    const auto isPareto = [&](unsigned mask) {
        return std::any_of(pareto.begin(), pareto.end(),
                           [&](const DsePoint& p) { return p.mask == mask; });
    };
    std::uint64_t swCycles = 0;
    for (const auto& p : points) {
        if (p.mask == 0 && p.feasible) {
            swCycles = p.cycles;
        }
    }
    std::ostringstream out;
    out << format("%-6s %-34s %8s %8s %7s %5s %12s %8s %s\n", "mask", "partition", "LUT",
                  "FF", "RAMB18", "DSP", "cycles", "speedup", "pareto");
    for (const auto& p : points) {
        if (!p.feasible) {
            out << format("%-6u %-34s %s\n", p.mask, p.label.c_str(),
                          ("infeasible: " + p.infeasibleReason).c_str());
            continue;
        }
        const double speedup =
            p.cycles == 0 ? 0.0
                          : static_cast<double>(swCycles) / static_cast<double>(p.cycles);
        out << format("%-6u %-34s %8lld %8lld %7lld %5lld %12llu %7.2fx %s\n", p.mask,
                      p.label.c_str(), static_cast<long long>(p.resources.lut),
                      static_cast<long long>(p.resources.ff),
                      static_cast<long long>(p.resources.bram18),
                      static_cast<long long>(p.resources.dsp),
                      static_cast<unsigned long long>(p.cycles), speedup,
                      isPareto(p.mask) ? "*" : "");
    }
    return out.str();
}

std::vector<CosimLaneResult> batchCosim(const rtl::Netlist& netlist,
                                        const std::vector<CosimScenario>& scenarios,
                                        std::string_view donePort, std::uint64_t maxCycles,
                                        const rtl::SimConfig& config) {
    require(!scenarios.empty(), "batchCosim needs at least one scenario");
    require(scenarios.size() <= rtl::kMaxSimLanes, "too many co-simulation scenarios");
    rtl::SimConfig batchConfig = config;
    batchConfig.batchLanes = static_cast<unsigned>(scenarios.size());
    const auto batch = rtl::makeSimBatch(netlist, batchConfig);

    std::vector<CosimLaneResult> results(scenarios.size());
    for (unsigned lane = 0; lane < scenarios.size(); ++lane) {
        results[lane].scenario = scenarios[lane].name;
        for (const auto& [port, value] : scenarios[lane].inputs) {
            batch->setInput(port, lane, value);
        }
    }

    // Step until every lane saw done (or faulted) or the budget runs out.
    // An empty done port means "run the full budget" for every lane.
    std::uint64_t pending = scenarios.size();
    for (std::uint64_t cycle = 0; cycle < maxCycles && pending > 0; ++cycle) {
        batch->step();
        batch->evaluate();
        for (unsigned lane = 0; lane < scenarios.size(); ++lane) {
            CosimLaneResult& r = results[lane];
            if (r.done || r.faulted) {
                continue;
            }
            if (batch->laneFaulted(lane)) {
                r.faulted = true;
                r.faultCycle = batch->laneFaultCycle(lane);
                r.faultMessage = batch->laneFaultMessage(lane);
                --pending;
            } else if (!donePort.empty() && batch->output(donePort, lane) != 0) {
                r.done = true;
                r.doneCycle = batch->cycleCount();
                --pending;
            }
        }
    }

    for (unsigned lane = 0; lane < scenarios.size(); ++lane) {
        for (const rtl::Port& port : netlist.ports()) {
            if (port.dir == rtl::PortDir::Out) {
                results[lane].outputs[port.name] = batch->output(port.name, lane);
            }
        }
    }
    return results;
}

} // namespace socgen::dse
