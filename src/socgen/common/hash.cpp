#include "socgen/common/hash.hpp"

#include "socgen/common/strings.hpp"

#include <cstring>

namespace socgen {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
} // namespace

std::string Digest128::hex() const {
    return format("%016llx%016llx", static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
}

HashStream& HashStream::update(std::string_view data) {
    for (const char c : data) {
        const auto byte = static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        lo_ = (lo_ ^ byte) * kFnvPrime;
        // The high lane sees the byte rotated so the lanes diverge even
        // on identical input streams.
        hi_ = (hi_ ^ ((byte << 1) | (byte >> 7))) * kFnvPrime;
    }
    return *this;
}

HashStream& HashStream::field(std::string_view data) {
    field(static_cast<std::uint64_t>(data.size()));
    return update(data);
}

HashStream& HashStream::field(std::uint64_t value) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) {
        bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    }
    return update(std::string_view(bytes, sizeof bytes));
}

HashStream& HashStream::field(std::int64_t value) {
    return field(static_cast<std::uint64_t>(value));
}

HashStream& HashStream::field(double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof value);
    std::memcpy(&bits, &value, sizeof bits);
    return field(bits);
}

Digest128 digest128(std::string_view data) {
    return HashStream{}.update(data).digest();
}

} // namespace socgen
