#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace socgen {

/// Wall-clock stopwatch for host-side measurements.
class Stopwatch {
public:
    Stopwatch() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    [[nodiscard]] double elapsedMs() const {
        return std::chrono::duration<double, std::milli>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// One timed phase of the flow (Figure 9 of the paper reports a per-phase
/// breakdown: Scala compilation, per-core HLS, architecture generation).
/// We record both real host milliseconds and deterministic simulated
/// tool-seconds charged by the substituted tool models, so the Fig. 9
/// series is reproducible run to run.
struct PhaseTiming {
    std::string name;          ///< e.g. "SCALA", "HLS histogram", "ARCH Arch1"
    double hostMs = 0.0;       ///< measured wall time of our implementation
    double toolSeconds = 0.0;  ///< deterministic simulated vendor-tool time
};

/// Accumulates phase timings during a flow run.
class PhaseTimeline {
public:
    void add(std::string name, double hostMs, double toolSeconds);

    [[nodiscard]] const std::vector<PhaseTiming>& phases() const { return phases_; }
    [[nodiscard]] double totalHostMs() const;
    [[nodiscard]] double totalToolSeconds() const;

    /// Sums toolSeconds over phases whose name starts with `prefix`.
    [[nodiscard]] double toolSecondsFor(const std::string& prefix) const;

    void append(const PhaseTimeline& other);
    void clear() { phases_.clear(); }

private:
    std::vector<PhaseTiming> phases_;
};

} // namespace socgen
