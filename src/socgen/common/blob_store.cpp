#include "socgen/common/blob_store.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/hash.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"

#include <algorithm>
#include <filesystem>

namespace socgen {
namespace {

/// Reclaims `*.tmp*` write-then-rename leftovers in one directory.
std::size_t reclaimTempsIn(const std::filesystem::path& dir) {
    std::size_t reclaimed = 0;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file()) {
            continue;
        }
        if (entry.path().filename().string().find(".tmp") != std::string::npos) {
            std::error_code removeEc;
            if (std::filesystem::remove(entry.path(), removeEc)) {
                ++reclaimed;
            }
        }
    }
    return reclaimed;
}

} // namespace

BlobStore::BlobStore(std::string rootDir, std::string magic)
    : root_(std::move(rootDir)), magic_(std::move(magic)) {
    // Reclaim write-then-rename leftovers: a writer that died between
    // writing its temporary and renaming it over the object leaves a
    // `<key>.art.tmp<serial>` sibling that no reader ever consults.
    // Collecting at open keeps the object directories bounded across
    // crash loops; a temporary belonging to a *live* writer of another
    // store instance could in principle be swept too, in which case that
    // writer's rename fails with an Error and the supervisor retries the
    // store — detected, never silent.
    namespace fs = std::filesystem;
    const fs::path objects = fs::path(root_) / "objects";
    reclaimedTempFiles_ += reclaimTempsIn(objects);
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(objects, ec)) {
        if (entry.is_directory()) {
            reclaimedTempFiles_ += reclaimTempsIn(entry.path());
        }
    }
    // Shard migration: move flat pre-sharding objects (`objects/<key>.art`)
    // into their digest-prefix directories. Rename is atomic within one
    // filesystem, so a crash mid-migration leaves each object in exactly
    // one of the two places and the next open finishes the job.
    for (const auto& entry : fs::directory_iterator(objects, ec)) {
        if (!entry.is_regular_file() || entry.path().extension() != ".art") {
            continue;
        }
        const std::string key = entry.path().stem().string();
        if (key.size() <= kShardPrefixLen) {
            continue;
        }
        const std::string sharded = objectPath(key);
        std::error_code mkEc;
        fs::create_directories(fs::path(sharded).parent_path(), mkEc);
        std::error_code mvEc;
        fs::rename(entry.path(), sharded, mvEc);
        if (!mvEc) {
            ++migratedObjects_;
        }
    }
    if (migratedObjects_ > 0) {
        Logger::global().info(format("store: migrated %zu flat objects into shards",
                                     migratedObjects_));
    }
}

std::string BlobStore::objectPath(const std::string& key) const {
    // Sharded layout: the key is a uniform digest, so its first hex
    // characters spread objects evenly across up to 256 directories.
    return root_ + "/objects/" + key.substr(0, kShardPrefixLen) + "/" + key + ".art";
}

std::string BlobStore::quarantinePath(const std::string& key) const {
    return root_ + "/quarantine/" + key + ".art";
}

void BlobStore::quarantineObject(const std::string& key, const std::string& reason,
                                 LoadDiag* diag) const {
    namespace fs = std::filesystem;
    const std::string from = objectPath(key);
    const std::string to = quarantinePath(key);
    std::error_code mkEc;
    fs::create_directories(fs::path(to).parent_path(), mkEc);
    std::error_code mvEc;
    fs::rename(from, to, mvEc);
    const bool moved = !mvEc;
    if (moved) {
        Logger::global().warn(format("store: quarantined corrupt object %s (%s)",
                                     key.c_str(), reason.c_str()));
    } else {
        // Concurrent loader already moved it; the record below still
        // captures that this instance saw the corruption.
        Logger::global().warn(format("store: corrupt object %s (%s); already "
                                     "quarantined",
                                     key.c_str(), reason.c_str()));
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        quarantineLog_.push_back(QuarantineRecord{key, reason, to});
    }
    if (diag != nullptr) {
        diag->quarantined = true;
        diag->quarantinePath = to;
    }
}

std::optional<std::string> BlobStore::load(const std::string& key, LoadDiag* diag) const {
    if (diag != nullptr) {
        *diag = LoadDiag{};
    }
    const std::string path = objectPath(key);
    if (!fileExists(path)) {
        return std::nullopt;
    }
    // A validation failure quarantines the object and reports a miss, so
    // the caller regenerates — never silently loads corruption.
    const auto corrupt = [&](const std::string& reason) -> std::optional<std::string> {
        if (diag != nullptr) {
            diag->whyMiss = reason;
        }
        quarantineObject(key, reason, diag);
        return std::nullopt;
    };
    std::string image;
    try {
        image = readTextFile(path);
    } catch (const Error& e) {
        // Unreadable is not provably corrupt (could be a permissions or
        // transient IO problem): report the miss but leave the object.
        if (diag != nullptr) {
            diag->whyMiss = e.what();
        }
        return std::nullopt;
    }
    // Header: magic '\n' digest-hex '\n' key '\n' payload.
    const std::size_t magicEnd = image.find('\n');
    if (magicEnd == std::string::npos || image.substr(0, magicEnd) != magic_) {
        return corrupt("bad magic (not a socgen artifact)");
    }
    const std::size_t digestEnd = image.find('\n', magicEnd + 1);
    if (digestEnd == std::string::npos) {
        return corrupt("truncated header (no digest line)");
    }
    const std::size_t keyEnd = image.find('\n', digestEnd + 1);
    if (keyEnd == std::string::npos) {
        return corrupt("truncated header (no key line)");
    }
    const std::string storedDigest = image.substr(magicEnd + 1, digestEnd - magicEnd - 1);
    const std::string storedKey = image.substr(digestEnd + 1, keyEnd - digestEnd - 1);
    if (storedKey != key) {
        return corrupt(format("object key mismatch: header says %s", storedKey.c_str()));
    }
    const std::string_view payload = std::string_view(image).substr(keyEnd + 1);
    const std::string actualDigest = digest128(payload).hex();
    if (actualDigest != storedDigest) {
        return corrupt(format("payload digest mismatch (stored %s, actual %s) — corrupt "
                              "artifact, rebuilding",
                              storedDigest.c_str(), actualDigest.c_str()));
    }
    return std::string(payload);
}

void BlobStore::store(const std::string& key, std::string_view payload) const {
    std::string image;
    image.reserve(payload.size() + 64);
    image += magic_;
    image += '\n';
    image += digest128(payload).hex();
    image += '\n';
    image += key;
    image += '\n';
    image += payload;
    writeFileAtomic(objectPath(key), image);
}

bool BlobStore::contains(const std::string& key) const {
    return fileExists(objectPath(key));
}

std::size_t BlobStore::objectCount() const {
    return keys().size();
}

std::vector<std::string> BlobStore::keys() const {
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    const fs::path dir = fs::path(root_) / "objects";
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".art") {
            // Flat stragglers (open migrates them, but stay robust).
            out.push_back(entry.path().stem().string());
            continue;
        }
        if (!entry.is_directory()) {
            continue;
        }
        std::error_code shardEc;
        for (const auto& object : fs::directory_iterator(entry.path(), shardEc)) {
            if (object.is_regular_file() && object.path().extension() == ".art") {
                out.push_back(object.path().stem().string());
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

BlobStore::ScrubReport BlobStore::scrub() const {
    ScrubReport report;
    for (const std::string& key : keys()) {
        ++report.scanned;
        LoadDiag diag;
        (void)load(key, &diag);
        if (diag.quarantined) {
            report.quarantined.emplace_back(key, diag.whyMiss);
        }
    }
    if (!report.quarantined.empty()) {
        Logger::global().warn(format("store: scrub quarantined %zu of %zu objects",
                                     report.quarantined.size(), report.scanned));
    }
    return report;
}

std::size_t BlobStore::quarantinedObjects() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return quarantineLog_.size();
}

std::vector<BlobStore::QuarantineRecord> BlobStore::quarantineRecords() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return quarantineLog_;
}

void BlobStore::corruptObject(const std::string& key) const {
    const std::string path = objectPath(key);
    if (!fileExists(path)) {
        throw Error("cannot corrupt missing object " + key);
    }
    std::string image = readTextFile(path);
    // Flip a bit in the middle of the payload (past the header lines) so
    // the framing survives but the digest check must fail.
    const std::size_t pos = image.size() - 1 - image.size() / 4;
    image[pos] = static_cast<char>(image[pos] ^ 0x40);
    writeFileAtomic(path, image);
}

void BlobStore::removeObject(const std::string& key) const {
    std::error_code ec;
    std::filesystem::remove(objectPath(key), ec);
}

} // namespace socgen
