#include "socgen/common/subprocess.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace socgen {
namespace {

void closeFd(int& fd) noexcept {
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/// SIGPIPE would kill the whole service when a worker dies mid-write;
/// ignoring it turns that into an EPIPE return the fleet handles.
void ignoreSigpipeOnce() {
    static std::once_flag once;
    std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

} // namespace

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
    return spawn(argv, SpawnOptions{});
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv,
                             const SpawnOptions& options) {
    if (argv.empty()) {
        throw SubprocessError("empty argv");
    }
    ignoreSigpipeOnce();

    int inPipe[2];   // parent writes -> child stdin
    int outPipe[2];  // child stdout -> parent reads
    int execPipe[2]; // CLOEXEC status channel: exec failure errno
    if (::pipe(inPipe) != 0) {
        throw SubprocessError(format("pipe: %s", std::strerror(errno)));
    }
    if (::pipe(outPipe) != 0) {
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        throw SubprocessError(format("pipe: %s", std::strerror(errno)));
    }
    if (::pipe(execPipe) != 0) {
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        throw SubprocessError(format("pipe: %s", std::strerror(errno)));
    }
    ::fcntl(execPipe[1], F_SETFD, FD_CLOEXEC);

    const pid_t child = ::fork();
    if (child < 0) {
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        ::close(execPipe[0]);
        ::close(execPipe[1]);
        throw SubprocessError(format("fork: %s", std::strerror(errno)));
    }
    if (child == 0) {
        // Child. Only async-signal-safe calls between fork and exec.
        ::dup2(inPipe[0], STDIN_FILENO);
        ::dup2(outPipe[1], STDOUT_FILENO);
        if (options.mergeStderrIntoStdout) {
            ::dup2(outPipe[1], STDERR_FILENO);
        }
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        ::close(execPipe[0]);
        std::vector<char*> args;
        args.reserve(argv.size() + 1);
        for (const std::string& a : argv) {
            args.push_back(const_cast<char*>(a.c_str()));
        }
        args.push_back(nullptr);
        ::execvp(args[0], args.data());
        // exec failed: ship errno through the CLOEXEC pipe and die.
        const int err = errno;
        ssize_t ignored = ::write(execPipe[1], &err, sizeof err);
        (void)ignored;
        ::_exit(127);
    }

    // Parent.
    ::close(inPipe[0]);
    ::close(outPipe[1]);
    ::close(execPipe[1]);

    // A successful exec closes the CLOEXEC write end: read() returns 0.
    int execErrno = 0;
    const ssize_t n = ::read(execPipe[0], &execErrno, sizeof execErrno);
    ::close(execPipe[0]);
    if (n > 0) {
        ::close(inPipe[1]);
        ::close(outPipe[0]);
        int status = 0;
        (void)::waitpid(child, &status, 0);
        throw SubprocessError(format("exec %s: %s", argv[0].c_str(),
                                     std::strerror(execErrno)));
    }

    Subprocess p;
    p.pid_ = child;
    p.stdinFd_ = inPipe[1];
    p.stdoutFd_ = outPipe[0];
    return p;
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), stdinFd_(other.stdinFd_), stdoutFd_(other.stdoutFd_),
      reaped_(other.reaped_), status_(other.status_) {
    other.pid_ = -1;
    other.stdinFd_ = -1;
    other.stdoutFd_ = -1;
    other.reaped_ = true;
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
    if (this != &other) {
        reset();
        pid_ = other.pid_;
        stdinFd_ = other.stdinFd_;
        stdoutFd_ = other.stdoutFd_;
        reaped_ = other.reaped_;
        status_ = other.status_;
        other.pid_ = -1;
        other.stdinFd_ = -1;
        other.stdoutFd_ = -1;
        other.reaped_ = true;
    }
    return *this;
}

Subprocess::~Subprocess() { reset(); }

void Subprocess::reset() noexcept {
    closeFd(stdinFd_);
    closeFd(stdoutFd_);
    if (pid_ > 0 && !reaped_) {
        ::kill(pid_, SIGKILL);
        (void)::waitpid(pid_, &status_, 0);
        reaped_ = true;
    }
    pid_ = -1;
}

bool Subprocess::writeAll(std::string_view data) {
    if (stdinFd_ < 0) {
        return false;
    }
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(stdinFd_, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            if (errno == EPIPE) {
                return false;  // child is gone
            }
            throw SubprocessError(format("write to pid %d: %s",
                                         static_cast<int>(pid_),
                                         std::strerror(errno)));
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<std::string> Subprocess::readAvailable(int timeoutMs) {
    if (stdoutFd_ < 0) {
        return std::nullopt;
    }
    struct pollfd pfd;
    pfd.fd = stdoutFd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc;
    do {
        rc = ::poll(&pfd, 1, timeoutMs);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        throw SubprocessError(format("poll pid %d: %s", static_cast<int>(pid_),
                                     std::strerror(errno)));
    }
    if (rc == 0) {
        return std::string();  // timeout: nothing available yet
    }
    char buf[65536];
    ssize_t n;
    do {
        n = ::read(stdoutFd_, buf, sizeof buf);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
        throw SubprocessError(format("read pid %d: %s", static_cast<int>(pid_),
                                     std::strerror(errno)));
    }
    if (n == 0) {
        return std::nullopt;  // EOF: child closed its stdout
    }
    return std::string(buf, static_cast<std::size_t>(n));
}

void Subprocess::kill(int signo) {
    if (pid_ > 0 && !reaped_) {
        ::kill(pid_, signo);
    }
}

bool Subprocess::running() {
    if (pid_ <= 0 || reaped_) {
        return false;
    }
    int status = 0;
    const pid_t r = ::waitpid(pid_, &status, WNOHANG);
    if (r == pid_) {
        status_ = status;
        reaped_ = true;
        return false;
    }
    return true;
}

int Subprocess::wait() {
    if (pid_ > 0 && !reaped_) {
        pid_t r;
        do {
            r = ::waitpid(pid_, &status_, 0);
        } while (r < 0 && errno == EINTR);
        reaped_ = true;
    }
    return status_;
}

void Subprocess::closeStdin() { closeFd(stdinFd_); }

std::optional<int> waitStatusExited(int status) {
    if (WIFEXITED(status)) {
        return WEXITSTATUS(status);
    }
    return std::nullopt;
}

std::optional<int> waitStatusSignal(int status) {
    if (WIFSIGNALED(status)) {
        return WTERMSIG(status);
    }
    return std::nullopt;
}

} // namespace socgen
