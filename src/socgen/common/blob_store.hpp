#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace socgen {

/// Persistent, content-addressed store of raw byte payloads: the generic
/// machinery shared by core::ArtifactStore (HLS results) and the
/// rtl::CodegenSim shared-object cache. The typed stores own their keys
/// and payload codecs; this layer owns everything about bytes-on-disk.
///
/// Layout and durability contract (identical to the historical
/// ArtifactStore, which now delegates here):
///  - objects are sharded git-style across digest-prefix directories
///    (`objects/<first-2-hex>/<key>.art`, up to 256 shards); opening a
///    store migrates flat legacy objects into their shards and reclaims
///    orphaned write-then-rename temporaries;
///  - writes are atomic (temp file + rename), so a crash mid-store
///    leaves either no object or a complete object, never a torn one;
///  - every object embeds a digest of its payload, verified on load; a
///    corrupted object is *quarantined* (moved to `quarantine/<key>.art`,
///    recorded as a QuarantineRecord) and reported as a miss, so the
///    caller transparently regenerates — corruption is never silently
///    loaded and never silently discarded.
///
/// The magic line is per-store ("SOCGENART1" for HLS artifacts,
/// "SOCGENSO1" for compiled simulator objects) so an object renamed into
/// the wrong store fails validation instead of decoding garbage.
class BlobStore {
public:
    /// Opens (and lazily creates) a store rooted at `rootDir`, reclaiming
    /// temporaries and migrating flat legacy objects into their shards.
    BlobStore(std::string rootDir, std::string magic);

    /// Validation diagnostics for one load.
    struct LoadDiag {
        std::string whyMiss;        ///< "" for a plain miss, else the reason
        bool quarantined = false;   ///< the object was moved to quarantine/
        std::string quarantinePath; ///< where it went (forensics)
    };

    /// Loads and validates the payload under `key`. Returns nullopt on
    /// miss or on any validation failure (bad magic, key mismatch,
    /// digest mismatch); a validation failure also quarantines the
    /// object. When `diag` is non-null it receives the reason and the
    /// quarantine outcome.
    [[nodiscard]] std::optional<std::string> load(const std::string& key,
                                                  LoadDiag* diag = nullptr) const;

    /// Atomically stores `payload` under `key`, overwriting any previous
    /// object (including a corrupt one). Throws socgen::Error on IO
    /// failure.
    void store(const std::string& key, std::string_view payload) const;

    /// Moves the object under `key` into quarantine and records it. For
    /// caller-level validation failures (the payload loaded byte-exact
    /// but does not decode), so the typed stores share one quarantine
    /// pipeline with the digest check.
    void quarantineObject(const std::string& key, const std::string& reason,
                          LoadDiag* diag = nullptr) const;

    [[nodiscard]] bool contains(const std::string& key) const;

    /// Number of objects currently on disk.
    [[nodiscard]] std::size_t objectCount() const;

    /// Keys of all objects on disk, sorted.
    [[nodiscard]] std::vector<std::string> keys() const;

    /// Walks every shard and validates every object; corrupt objects are
    /// quarantined. Self-healing pass for embedders to run at startup.
    struct ScrubReport {
        std::size_t scanned = 0;
        /// (key, reason) for every object quarantined by this pass.
        std::vector<std::pair<std::string, std::string>> quarantined;
    };
    [[nodiscard]] ScrubReport scrub() const;

    /// One quarantined object (this store instance's lifetime).
    struct QuarantineRecord {
        std::string key;
        std::string reason;
        std::string quarantinePath;
    };
    [[nodiscard]] std::size_t quarantinedObjects() const;
    [[nodiscard]] std::vector<QuarantineRecord> quarantineRecords() const;

    /// Test/fault-injection hook: flips one payload byte of the stored
    /// object so the next load fails digest validation. Throws
    /// socgen::Error if the object does not exist.
    void corruptObject(const std::string& key) const;

    /// Removes the object under `key` if present.
    void removeObject(const std::string& key) const;

    /// Orphaned temporaries reclaimed when this store was opened.
    [[nodiscard]] std::size_t reclaimedTempFiles() const { return reclaimedTempFiles_; }

    /// Flat legacy objects moved into shard directories at open.
    [[nodiscard]] std::size_t migratedObjects() const { return migratedObjects_; }

    [[nodiscard]] const std::string& root() const { return root_; }

    /// Digest-prefix length of the shard layout (hex characters).
    static constexpr std::size_t kShardPrefixLen = 2;

private:
    [[nodiscard]] std::string objectPath(const std::string& key) const;
    [[nodiscard]] std::string quarantinePath(const std::string& key) const;

    std::string root_;
    std::string magic_;
    std::size_t reclaimedTempFiles_ = 0;
    std::size_t migratedObjects_ = 0;

    mutable std::mutex mutex_;
    mutable std::vector<QuarantineRecord> quarantineLog_;
};

} // namespace socgen
