#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace socgen {

/// One spawned child process with pipe-connected stdin/stdout — the
/// primitive under the worker fleet. fork/exec only (no shell, no
/// `system()`): the argv is executed verbatim, stderr is inherited so a
/// worker's diagnostics land in the parent's stderr.
///
/// Lifecycle contract:
///  - spawn() throws SubprocessError when the executable cannot be
///    exec'd (reported through a CLOEXEC status pipe, so "no such
///    binary" is a clean throw in the parent, not a dead child);
///  - the destructor never leaks a zombie: a still-running child is
///    SIGKILLed and reaped;
///  - writes never raise SIGPIPE (disposition set to ignore on first
///    spawn); a write to a dead child returns false instead.
class Subprocess {
public:
    struct SpawnOptions {
        /// Route the child's stderr into its stdout pipe instead of
        /// inheriting the parent's. For tool invocations (compilers,
        /// probes) whose diagnostics the caller wants to capture and
        /// attach to a thrown error rather than spill to the terminal.
        bool mergeStderrIntoStdout = false;
    };

    /// Forks and execs `argv` (argv[0] is the executable path). The
    /// child's stdin/stdout are pipes owned by this object; its stderr
    /// is inherited (or merged into stdout, see SpawnOptions).
    [[nodiscard]] static Subprocess spawn(const std::vector<std::string>& argv);
    [[nodiscard]] static Subprocess spawn(const std::vector<std::string>& argv,
                                          const SpawnOptions& options);

    Subprocess(Subprocess&& other) noexcept;
    Subprocess& operator=(Subprocess&& other) noexcept;
    Subprocess(const Subprocess&) = delete;
    Subprocess& operator=(const Subprocess&) = delete;
    ~Subprocess();

    [[nodiscard]] pid_t pid() const { return pid_; }

    /// Writes all of `data` to the child's stdin. Returns false if the
    /// child is gone (EPIPE) — the caller treats that as a dead worker,
    /// not an error. Throws SubprocessError on any other IO failure.
    bool writeAll(std::string_view data);

    /// Waits up to `timeoutMs` for the child's stdout to become
    /// readable, then reads whatever is available (up to 64 KiB).
    /// Returns: bytes (possibly empty on timeout); nullopt on EOF — the
    /// child closed its end (exited or was killed). timeoutMs 0 polls.
    [[nodiscard]] std::optional<std::string> readAvailable(int timeoutMs);

    /// Sends `signo` (e.g. SIGKILL) to the child. No-op once reaped.
    void kill(int signo);

    /// Non-blocking liveness probe; reaps the child if it has exited.
    [[nodiscard]] bool running();

    /// Blocks until the child exits and reaps it; returns the raw
    /// waitpid status (see waitStatusExited/waitStatusSignal). Returns
    /// the cached status if already reaped.
    int wait();

    /// Closes the child's stdin pipe (EOF to the child) without waiting.
    void closeStdin();

private:
    Subprocess() = default;
    void reset() noexcept;

    pid_t pid_ = -1;
    int stdinFd_ = -1;
    int stdoutFd_ = -1;
    bool reaped_ = false;
    int status_ = 0;
};

/// Decodes a waitpid status: exit code if the child exited normally.
[[nodiscard]] std::optional<int> waitStatusExited(int status);

/// Decodes a waitpid status: signal number if the child was killed.
[[nodiscard]] std::optional<int> waitStatusSignal(int status);

} // namespace socgen
