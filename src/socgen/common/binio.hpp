#pragma once

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace socgen {

/// Flat little-endian byte stream primitives, shared by every binary
/// codec in the tree: the HlsResult artifact encoding (hls/serialize)
/// and the worker wire protocol (svc/wire). The reader bounds-checks
/// every access and throws CodecError, so a truncated or bit-flipped
/// payload is always a clean, typed failure — never undefined behaviour.

class BinWriter {
public:
    void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) {
            out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
        }
    }

    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
        }
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void f64(double v) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void str(std::string_view s) {
        u64(s.size());
        out_.append(s);
    }

    template <typename T, typename Fn>
    void vec(const std::vector<T>& items, Fn&& putItem) {
        u64(items.size());
        for (const T& item : items) {
            putItem(item);
        }
    }

    [[nodiscard]] std::string take() { return std::move(out_); }

private:
    std::string out_;
};

class BinReader {
public:
    explicit BinReader(std::string_view bytes) : bytes_(bytes) {}

    std::uint8_t u8() { return static_cast<std::uint8_t>(raw(1)[0]); }

    std::uint32_t u32() {
        const char* p = raw(4);
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i) {
            v = (v << 8) | static_cast<unsigned char>(p[i]);
        }
        return v;
    }

    std::uint64_t u64() {
        const char* p = raw(8);
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i) {
            v = (v << 8) | static_cast<unsigned char>(p[i]);
        }
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double f64() {
        const std::uint64_t bits = u64();
        double v = 0;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string str() {
        const std::uint64_t n = size();
        return std::string(raw(n), n);
    }

    /// Element count with a sanity cap: each element needs >= 1 byte, so a
    /// count beyond the remaining bytes is certain corruption.
    std::uint64_t size() {
        const std::uint64_t n = u64();
        if (n > bytes_.size() - pos_) {
            throw CodecError(format("implausible element count %llu at offset %zu",
                                    static_cast<unsigned long long>(n), pos_));
        }
        return n;
    }

    template <typename T, typename Fn>
    std::vector<T> vec(Fn&& getItem) {
        const std::uint64_t n = size();
        std::vector<T> items;
        items.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            items.push_back(getItem());
        }
        return items;
    }

    void expectEnd() const {
        if (pos_ != bytes_.size()) {
            throw CodecError(format("%zu trailing bytes after decoded payload",
                                    bytes_.size() - pos_));
        }
    }

    [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

private:
    const char* raw(std::uint64_t n) {
        if (n > bytes_.size() - pos_) {
            throw CodecError(format("truncated payload: need %llu bytes at offset %zu, "
                                    "have %zu",
                                    static_cast<unsigned long long>(n), pos_,
                                    bytes_.size() - pos_));
        }
        const char* p = bytes_.data() + pos_;
        pos_ += n;
        return p;
    }

    std::string_view bytes_;
    std::size_t pos_ = 0;
};

} // namespace socgen
