#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace socgen {

/// Base class for all tool-flow failures (bad DSL input, HLS errors,
/// over-capacity synthesis, malformed files, ...). Carries a plain
/// human-readable message; sub-phases prefix their own context.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// Raised by the DSL front ends (embedded builder and textual parser) on
/// malformed task-graph descriptions.
class DslError : public Error {
public:
    explicit DslError(const std::string& message) : Error("dsl: " + message) {}
};

/// Raised by the HLS engine (unschedulable kernel, unknown port, ...).
class HlsError : public Error {
public:
    explicit HlsError(const std::string& message) : Error("hls: " + message) {}
};

/// Raised by system integration / synthesis (unroutable link, device
/// over capacity, ...).
class SynthesisError : public Error {
public:
    explicit SynthesisError(const std::string& message) : Error("synth: " + message) {}
};

/// Raised by the cycle simulator (deadlock, protocol violation, ...).
class SimulationError : public Error {
public:
    explicit SimulationError(const std::string& message) : Error("sim: " + message) {}
};

/// Internal invariant check that throws instead of aborting so tests can
/// assert on failures. Use for conditions that indicate a socgen bug.
void require(bool condition, std::string_view what);

} // namespace socgen
