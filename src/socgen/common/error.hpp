#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace socgen {

/// Base class for all tool-flow failures (bad DSL input, HLS errors,
/// over-capacity synthesis, malformed files, ...). Carries a plain
/// human-readable message; sub-phases prefix their own context.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// Raised by the DSL front ends (embedded builder and textual parser) on
/// malformed task-graph descriptions.
class DslError : public Error {
public:
    explicit DslError(const std::string& message) : Error("dsl: " + message) {}
};

/// Raised by the HLS engine (unschedulable kernel, unknown port, ...).
class HlsError : public Error {
public:
    explicit HlsError(const std::string& message) : Error("hls: " + message) {}
};

/// Raised by system integration / synthesis (unroutable link, device
/// over capacity, ...).
class SynthesisError : public Error {
public:
    explicit SynthesisError(const std::string& message) : Error("synth: " + message) {}
};

/// Raised by the cycle simulator (deadlock, protocol violation, ...).
class SimulationError : public Error {
public:
    explicit SimulationError(const std::string& message) : Error("sim: " + message) {}
};

/// Raised when a runtime watchdog expires (IRQ that never arrives,
/// register poll that never satisfies its condition). Distinguishable
/// from a generic SimulationError so harnesses can treat "hung but
/// diagnosed" differently from protocol violations.
class WatchdogError : public SimulationError {
public:
    explicit WatchdogError(const std::string& message)
        : SimulationError("watchdog: " + message) {}
};

/// Raised when a bitstream fails verification on load; carries the
/// indices of the sections whose CRCs failed.
class BitstreamError : public Error {
public:
    BitstreamError(const std::string& message, std::vector<std::size_t> badSections)
        : Error("bitstream: " + message), badSections_(std::move(badSections)) {}

    [[nodiscard]] const std::vector<std::size_t>& badSections() const {
        return badSections_;
    }

private:
    std::vector<std::size_t> badSections_;
};

/// Raised by the persistent artifact store: unreadable object files,
/// payload digest mismatches, truncated encodings. Treated as transient
/// by the stage supervisor — a corrupt artifact is rebuilt, not fatal.
class ArtifactError : public Error {
public:
    explicit ArtifactError(const std::string& message) : Error("artifact: " + message) {}
};

/// Raised by the stage-graph engine on a malformed flow graph: duplicate
/// stage names, dependencies on unknown stages, or dependency cycles.
/// Always a socgen (or embedding) bug, never transient — the graph shape
/// is fixed before execution starts, so it is neither retried nor
/// degraded.
class StageGraphError : public Error {
public:
    explicit StageGraphError(const std::string& message)
        : Error("stage-graph: " + message) {}
};

/// Raised when a supervised flow stage exceeds its deadline. Transient:
/// the supervisor retries the stage (the hang may have been a stuck
/// tool invocation).
class StageTimeoutError : public Error {
public:
    explicit StageTimeoutError(const std::string& message)
        : Error("stage-timeout: " + message) {}
};

/// Simulated process death, thrown by an injected FlowCrash fault at a
/// journal record boundary. Never retried and never degraded: it models
/// `kill -9`, so it must unwind the whole flow, leaving only the journal
/// and the artifact store behind for the next run to resume from.
class FlowCrashError : public Error {
public:
    explicit FlowCrashError(const std::string& message) : Error("crash: " + message) {}
};

/// Internal invariant check that throws instead of aborting so tests can
/// assert on failures. Use for conditions that indicate a socgen bug.
void require(bool condition, std::string_view what);

} // namespace socgen
