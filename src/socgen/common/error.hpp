#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace socgen {

/// Base class for all tool-flow failures (bad DSL input, HLS errors,
/// over-capacity synthesis, malformed files, ...). Carries a plain
/// human-readable message; sub-phases prefix their own context.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// Raised by the DSL front ends (embedded builder and textual parser) on
/// malformed task-graph descriptions.
class DslError : public Error {
public:
    explicit DslError(const std::string& message) : Error("dsl: " + message) {}
};

/// Raised by the HLS engine (unschedulable kernel, unknown port, ...).
class HlsError : public Error {
public:
    explicit HlsError(const std::string& message) : Error("hls: " + message) {}
};

/// Raised by system integration / synthesis (unroutable link, device
/// over capacity, ...).
class SynthesisError : public Error {
public:
    explicit SynthesisError(const std::string& message) : Error("synth: " + message) {}
};

/// Raised by the cycle simulator (deadlock, protocol violation, ...).
class SimulationError : public Error {
public:
    explicit SimulationError(const std::string& message) : Error("sim: " + message) {}
};

/// Raised when a runtime watchdog expires (IRQ that never arrives,
/// register poll that never satisfies its condition). Distinguishable
/// from a generic SimulationError so harnesses can treat "hung but
/// diagnosed" differently from protocol violations.
class WatchdogError : public SimulationError {
public:
    explicit WatchdogError(const std::string& message)
        : SimulationError("watchdog: " + message) {}
};

/// Raised when a bitstream fails verification on load; carries the
/// indices of the sections whose CRCs failed.
class BitstreamError : public Error {
public:
    BitstreamError(const std::string& message, std::vector<std::size_t> badSections)
        : Error("bitstream: " + message), badSections_(std::move(badSections)) {}

    [[nodiscard]] const std::vector<std::size_t>& badSections() const {
        return badSections_;
    }

private:
    std::vector<std::size_t> badSections_;
};

/// Internal invariant check that throws instead of aborting so tests can
/// assert on failures. Use for conditions that indicate a socgen bug.
void require(bool condition, std::string_view what);

} // namespace socgen
