#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace socgen {

/// Base class for all tool-flow failures (bad DSL input, HLS errors,
/// over-capacity synthesis, malformed files, ...). Carries a plain
/// human-readable message; sub-phases prefix their own context.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// Raised by the DSL front ends (embedded builder and textual parser) on
/// malformed task-graph descriptions.
class DslError : public Error {
public:
    explicit DslError(const std::string& message) : Error("dsl: " + message) {}
};

/// Raised by the HLS engine (unschedulable kernel, unknown port, ...).
class HlsError : public Error {
public:
    explicit HlsError(const std::string& message) : Error("hls: " + message) {}
};

/// Raised when a process network provably deadlocks on its FIFO
/// channels — statically (a channel cycle with no initial tokens, or
/// initial tokens exceeding a channel's depth) or at simulation time
/// (every live process blocked on an internal channel, which no external
/// stimulus can ever unblock). Carries the channels and processes
/// involved so harnesses can point at the under-provisioned FIFO rather
/// than a generic "hung" diagnosis. Derives from Error (not HlsError):
/// a deadlocked network is a design bug, never degradable to software.
class ChannelDeadlockError : public Error {
public:
    ChannelDeadlockError(const std::string& message, std::vector<std::string> channels,
                         std::vector<std::string> processes)
        : Error("deadlock: " + message), channels_(std::move(channels)),
          processes_(std::move(processes)) {}

    /// Channel names on the offending cycle (static check) or blocked on
    /// (runtime watchdog).
    [[nodiscard]] const std::vector<std::string>& channels() const { return channels_; }

    /// Processes on the offending cycle / blocked at detection time.
    [[nodiscard]] const std::vector<std::string>& processes() const { return processes_; }

private:
    std::vector<std::string> channels_;
    std::vector<std::string> processes_;
};

/// Raised by system integration / synthesis (unroutable link, device
/// over capacity, ...).
class SynthesisError : public Error {
public:
    explicit SynthesisError(const std::string& message) : Error("synth: " + message) {}
};

/// Raised by the cycle simulator (deadlock, protocol violation, ...).
class SimulationError : public Error {
public:
    explicit SimulationError(const std::string& message) : Error("sim: " + message) {}
};

/// Raised when a runtime watchdog expires (IRQ that never arrives,
/// register poll that never satisfies its condition). Distinguishable
/// from a generic SimulationError so harnesses can treat "hung but
/// diagnosed" differently from protocol violations.
class WatchdogError : public SimulationError {
public:
    explicit WatchdogError(const std::string& message)
        : SimulationError("watchdog: " + message) {}
};

/// Raised when a bitstream fails verification on load; carries the
/// indices of the sections whose CRCs failed.
class BitstreamError : public Error {
public:
    BitstreamError(const std::string& message, std::vector<std::size_t> badSections)
        : Error("bitstream: " + message), badSections_(std::move(badSections)) {}

    [[nodiscard]] const std::vector<std::size_t>& badSections() const {
        return badSections_;
    }

private:
    std::vector<std::size_t> badSections_;
};

/// Raised by the flat binary codec primitives (BinReader) on a malformed
/// byte stream: truncation, implausible element counts, trailing bytes.
/// Callers that persist encodings (the artifact store) or transport them
/// (the worker wire protocol) wrap it in their own error type.
class CodecError : public Error {
public:
    explicit CodecError(const std::string& message) : Error("codec: " + message) {}
};

/// Raised by the persistent artifact store: unreadable object files,
/// payload digest mismatches, truncated encodings. Treated as transient
/// by the stage supervisor — a corrupt artifact is rebuilt, not fatal.
class ArtifactError : public Error {
public:
    explicit ArtifactError(const std::string& message) : Error("artifact: " + message) {}
};

/// Named corruption error for a store object that exists but fails
/// validation (bad magic, digest mismatch, undecodable payload). Raised
/// by ArtifactStore::loadOrThrow / verifyObject so embedders can
/// distinguish "corrupt on disk — quarantined" from a plain miss instead
/// of inferring it from a reason string.
class ArtifactCorruptError : public ArtifactError {
public:
    explicit ArtifactCorruptError(const std::string& message)
        : ArtifactError("corrupt: " + message) {}
};

/// Raised by ArtifactStore::storeFenced when a commit carries a lease
/// epoch older than the key's current lease — a zombie worker (killed,
/// re-dispatched elsewhere, then resurrected) trying to apply a result
/// that has been superseded. The commit is rejected, never applied.
class StaleLeaseError : public ArtifactError {
public:
    explicit StaleLeaseError(const std::string& message)
        : ArtifactError("stale-lease: " + message) {}
};

/// Raised by common::Subprocess on spawn/IO/wait failures (fork failed,
/// exec failed, pipe error).
class SubprocessError : public Error {
public:
    explicit SubprocessError(const std::string& message)
        : Error("subprocess: " + message) {}
};

/// Raised by the svc::wire frame codec on malformed frames: bad frame
/// type, oversized length prefix, payload that fails to decode.
class WireError : public Error {
public:
    explicit WireError(const std::string& message) : Error("wire: " + message) {}
};

/// Raised by the worker fleet for failures of the fleet itself (as
/// opposed to structured HLS errors a worker reports, which surface as
/// HlsError exactly like an in-process failure).
class WorkerError : public Error {
public:
    explicit WorkerError(const std::string& message) : Error("worker: " + message) {}
};

/// Raised when no worker can serve a dispatch (spawn failures exhausted
/// the respawn budget, or the fleet is shutting down). The flow catches
/// this and falls back to in-process synthesis — graceful degradation,
/// never a failed tenant flow.
class WorkerUnavailableError : public WorkerError {
public:
    explicit WorkerUnavailableError(const std::string& message)
        : WorkerError("unavailable: " + message) {}
};

/// Raised by the stage-graph engine on a malformed flow graph: duplicate
/// stage names, dependencies on unknown stages, or dependency cycles.
/// Always a socgen (or embedding) bug, never transient — the graph shape
/// is fixed before execution starts, so it is neither retried nor
/// degraded.
class StageGraphError : public Error {
public:
    explicit StageGraphError(const std::string& message)
        : Error("stage-graph: " + message) {}
};

/// Raised when a supervised flow stage exceeds its deadline. Transient:
/// the supervisor retries the stage (the hang may have been a stuck
/// tool invocation).
class StageTimeoutError : public Error {
public:
    explicit StageTimeoutError(const std::string& message)
        : Error("stage-timeout: " + message) {}
};

/// Simulated process death, thrown by an injected FlowCrash fault at a
/// journal record boundary. Never retried and never degraded: it models
/// `kill -9`, so it must unwind the whole flow, leaving only the journal
/// and the artifact store behind for the next run to resume from.
class FlowCrashError : public Error {
public:
    explicit FlowCrashError(const std::string& message) : Error("crash: " + message) {}
};

/// Internal invariant check that throws instead of aborting so tests can
/// assert on failures. Use for conditions that indicate a socgen bug.
void require(bool condition, std::string_view what);

} // namespace socgen
