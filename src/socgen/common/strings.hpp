#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace socgen {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits on any character in `separators`, dropping empty pieces.
std::vector<std::string> split(std::string_view text, std::string_view separators);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` starts with / ends with the given prefix/suffix.
bool startsWith(std::string_view text, std::string_view prefix);
bool endsWith(std::string_view text, std::string_view suffix);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view separator);

/// Lower-cases ASCII.
std::string toLower(std::string_view text);

/// A valid identifier for generated HDL/Tcl/C: [A-Za-z_][A-Za-z0-9_]*.
bool isIdentifier(std::string_view text);

/// Replaces every character that is not [A-Za-z0-9_] with '_', prefixing
/// 'x' if the result would start with a digit. Used when deriving HDL
/// entity names and /dev node names from user-visible node names.
std::string sanitizeIdentifier(std::string_view text);

/// Counts '\n'-separated lines (a trailing fragment without newline counts).
std::size_t countLines(std::string_view text);

/// Counts characters excluding ASCII whitespace — the metric used by the
/// paper's Section VI-C Tcl-vs-DSL comparison.
std::size_t countNonSpaceChars(std::string_view text);

/// FNV-1a 64-bit hash; used for deterministic pseudo-randomness in the
/// synthesis model and for bitstream content digests.
std::uint64_t fnv1a64(std::string_view data);

} // namespace socgen
