#include "socgen/common/error.hpp"

namespace socgen {

void require(bool condition, std::string_view what) {
    if (!condition) {
        throw Error("internal invariant violated: " + std::string(what));
    }
}

} // namespace socgen
