#pragma once

#include <optional>
#include <string>

namespace socgen {

/// Reads a positive-integer environment override. Returns nullopt when
/// the variable is unset or empty; throws socgen::Error with a
/// diagnostic naming the variable and the offending text when the value
/// is not a positive decimal integer ("0", "abc", "4x", "-2", ...).
/// A malformed override used to be silently ignored, which meant a typo
/// like SOCGEN_FLOW_JOBS=fourr ran the flow serially without a word.
[[nodiscard]] std::optional<unsigned> envUnsigned(const char* name);

/// Like envUnsigned but zero is a legal value: knobs where 0 means
/// "disabled" (SOCGEN_SVC_WORKERS=0 turns the worker fleet off) rather
/// than a typo.
[[nodiscard]] std::optional<unsigned> envUnsignedOrZero(const char* name);

/// Reads a string-valued environment override verbatim. Returns nullopt
/// when unset or empty (an empty value means "no override" everywhere).
[[nodiscard]] std::optional<std::string> envString(const char* name);

} // namespace socgen
