#include "socgen/common/env.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <cstdlib>

namespace socgen {

std::optional<unsigned> envUnsigned(const char* name) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') {
        return std::nullopt;
    }
    unsigned long value = 0;
    bool any = false;
    for (const char* p = raw; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9') {
            throw Error(format("env %s: invalid value '%s' (expected a positive "
                               "decimal integer)",
                               name, raw));
        }
        value = value * 10 + static_cast<unsigned long>(*p - '0');
        if (value > 1'000'000) {
            throw Error(format("env %s: value '%s' is out of range", name, raw));
        }
        any = true;
    }
    if (!any || value == 0) {
        throw Error(format("env %s: invalid value '%s' (expected a positive "
                           "decimal integer)",
                           name, raw));
    }
    return static_cast<unsigned>(value);
}

std::optional<unsigned> envUnsignedOrZero(const char* name) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') {
        return std::nullopt;
    }
    unsigned long value = 0;
    for (const char* p = raw; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9') {
            throw Error(format("env %s: invalid value '%s' (expected a decimal "
                               "integer)",
                               name, raw));
        }
        value = value * 10 + static_cast<unsigned long>(*p - '0');
        if (value > 1'000'000) {
            throw Error(format("env %s: value '%s' is out of range", name, raw));
        }
    }
    return static_cast<unsigned>(value);
}

std::optional<std::string> envString(const char* name) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') {
        return std::nullopt;
    }
    return std::string(raw);
}

} // namespace socgen
