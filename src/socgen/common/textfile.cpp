#include "socgen/common/textfile.hpp"

#include "socgen/common/error.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace socgen {

std::string readTextFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw Error("cannot open file for reading: " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

namespace {

void writeFileImpl(const std::string& path, std::string_view content, std::ios::openmode mode) {
    const std::filesystem::path fsPath(path);
    if (fsPath.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(fsPath.parent_path(), ec);
        if (ec) {
            throw Error("cannot create directory " + fsPath.parent_path().string() + ": " +
                        ec.message());
        }
    }
    std::ofstream out(path, mode);
    if (!out) {
        throw Error("cannot open file for writing: " + path);
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!out) {
        throw Error("write failed: " + path);
    }
}

} // namespace

void writeTextFile(const std::string& path, std::string_view content) {
    writeFileImpl(path, content, std::ios::out | std::ios::trunc);
}

void writeBinaryFile(const std::string& path, std::string_view content) {
    writeFileImpl(path, content, std::ios::out | std::ios::trunc | std::ios::binary);
}

} // namespace socgen
