#include "socgen/common/textfile.hpp"

#include "socgen/common/error.hpp"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace socgen {

std::string readTextFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw Error("cannot open file for reading: " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

namespace {

void writeFileImpl(const std::string& path, std::string_view content, std::ios::openmode mode) {
    const std::filesystem::path fsPath(path);
    if (fsPath.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(fsPath.parent_path(), ec);
        if (ec) {
            throw Error("cannot create directory " + fsPath.parent_path().string() + ": " +
                        ec.message());
        }
    }
    std::ofstream out(path, mode);
    if (!out) {
        throw Error("cannot open file for writing: " + path);
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!out) {
        throw Error("write failed: " + path);
    }
}

} // namespace

void writeTextFile(const std::string& path, std::string_view content) {
    writeFileImpl(path, content, std::ios::out | std::ios::trunc);
}

void writeBinaryFile(const std::string& path, std::string_view content) {
    writeFileImpl(path, content, std::ios::out | std::ios::trunc | std::ios::binary);
}

void writeFileAtomic(const std::string& path, std::string_view content) {
    // The temporary must live on the same filesystem as the target for
    // rename() to be atomic, so it is a sibling, not a /tmp file. The
    // name carries a process-wide counter so two threads writing the
    // same target concurrently (e.g. two flows storing the same-digest
    // artifact) each rename their own complete temporary instead of
    // racing on one; a crash can still leak a temporary, which the
    // artifact store reclaims on open (see ArtifactStore).
    static std::atomic<std::uint64_t> tempSerial{0};
    const std::string temp =
        path + ".tmp" + std::to_string(tempSerial.fetch_add(1, std::memory_order_relaxed));
    writeFileImpl(temp, content, std::ios::out | std::ios::trunc | std::ios::binary);
    std::error_code ec;
    std::filesystem::rename(temp, path, ec);
    if (ec) {
        std::filesystem::remove(temp);
        throw Error("atomic rename failed for " + path + ": " + ec.message());
    }
}

void appendLineDurable(const std::string& path, std::string_view line) {
    const std::filesystem::path fsPath(path);
    if (fsPath.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(fsPath.parent_path(), ec);
        if (ec) {
            throw Error("cannot create directory " + fsPath.parent_path().string() + ": " +
                        ec.message());
        }
    }
    std::ofstream out(path, std::ios::out | std::ios::app | std::ios::binary);
    if (!out) {
        throw Error("cannot open file for append: " + path);
    }
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
    out.put('\n');
    out.flush();
    if (!out) {
        throw Error("append failed: " + path);
    }
}

bool fileExists(const std::string& path) {
    std::error_code ec;
    return std::filesystem::is_regular_file(path, ec);
}

} // namespace socgen
