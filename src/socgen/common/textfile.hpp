#pragma once

#include <string>
#include <string_view>

namespace socgen {

/// Reads a whole text file; throws socgen::Error on failure.
std::string readTextFile(const std::string& path);

/// Writes a whole text file (creating parent directories); throws on failure.
void writeTextFile(const std::string& path, std::string_view content);

/// Writes binary content; throws on failure.
void writeBinaryFile(const std::string& path, std::string_view content);

/// Crash-safe whole-file write: the content is written to a temporary
/// sibling and renamed over `path`, so readers never observe a partial
/// file — either the old content or the new content, atomically.
void writeFileAtomic(const std::string& path, std::string_view content);

/// Appends one line (content + '\n') to `path`, creating parent
/// directories and the file as needed, and flushes before returning so
/// the line survives a crash of the caller. Used for journal records.
void appendLineDurable(const std::string& path, std::string_view line);

/// True if a regular file exists at `path`.
[[nodiscard]] bool fileExists(const std::string& path);

} // namespace socgen
