#pragma once

#include <string>
#include <string_view>

namespace socgen {

/// Reads a whole text file; throws socgen::Error on failure.
std::string readTextFile(const std::string& path);

/// Writes a whole text file (creating parent directories); throws on failure.
void writeTextFile(const std::string& path, std::string_view content);

/// Writes binary content; throws on failure.
void writeBinaryFile(const std::string& path, std::string_view content);

} // namespace socgen
