#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace socgen {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

/// Minimal logging facade. The flow narrates its steps (mirroring the
/// paper's tool, which prints the Vivado/Vivado-HLS steps it coordinates);
/// tests install a capturing sink to assert on the step sequence.
class Logger {
public:
    using Sink = std::function<void(LogLevel, std::string_view)>;

    /// Process-wide logger used by the tool flow.
    static Logger& global();

    void setLevel(LogLevel level) { level_ = level; }
    [[nodiscard]] LogLevel level() const { return level_; }

    /// Replaces the output sink (default: stderr). Returns the old sink so
    /// tests can restore it.
    Sink exchangeSink(Sink sink);

    void log(LogLevel level, std::string_view message) const;

    void debug(std::string_view m) const { log(LogLevel::Debug, m); }
    void info(std::string_view m) const { log(LogLevel::Info, m); }
    void warn(std::string_view m) const { log(LogLevel::Warn, m); }
    void error(std::string_view m) const { log(LogLevel::Error, m); }

private:
    LogLevel level_ = LogLevel::Warn;
    Sink sink_;
};

/// RAII helper: capture all log lines at >= level into a vector for the
/// lifetime of the object, restoring the previous sink on destruction.
class LogCapture {
public:
    explicit LogCapture(LogLevel level = LogLevel::Debug);
    ~LogCapture();

    LogCapture(const LogCapture&) = delete;
    LogCapture& operator=(const LogCapture&) = delete;

    [[nodiscard]] const std::vector<std::string>& lines() const { return lines_; }
    [[nodiscard]] bool contains(std::string_view needle) const;

private:
    std::vector<std::string> lines_;
    Logger::Sink previous_;
    LogLevel previousLevel_;
};

} // namespace socgen
