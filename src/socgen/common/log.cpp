#include "socgen/common/log.hpp"

#include <cstdio>
#include <utility>

namespace socgen {

namespace {

const char* levelName(LogLevel level) {
    switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Silent: return "silent";
    }
    return "?";
}

} // namespace

Logger& Logger::global() {
    static Logger instance;
    return instance;
}

Logger::Sink Logger::exchangeSink(Sink sink) {
    std::swap(sink_, sink);
    return sink;
}

void Logger::log(LogLevel level, std::string_view message) const {
    if (static_cast<int>(level) < static_cast<int>(level_)) {
        return;
    }
    if (sink_) {
        sink_(level, message);
        return;
    }
    std::fprintf(stderr, "[socgen %s] %.*s\n", levelName(level),
                 static_cast<int>(message.size()), message.data());
}

LogCapture::LogCapture(LogLevel level) {
    auto& logger = Logger::global();
    previousLevel_ = logger.level();
    logger.setLevel(level);
    previous_ = logger.exchangeSink(
        [this](LogLevel, std::string_view message) { lines_.emplace_back(message); });
}

LogCapture::~LogCapture() {
    auto& logger = Logger::global();
    logger.exchangeSink(std::move(previous_));
    logger.setLevel(previousLevel_);
}

bool LogCapture::contains(std::string_view needle) const {
    for (const auto& line : lines_) {
        if (line.find(needle) != std::string::npos) {
            return true;
        }
    }
    return false;
}

} // namespace socgen
