#include "socgen/common/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace socgen {

std::string format(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    std::va_list argsCopy;
    va_copy(argsCopy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, argsCopy);
    }
    va_end(argsCopy);
    return out;
}

std::vector<std::string> split(std::string_view text, std::string_view separators) {
    std::vector<std::string> pieces;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || separators.find(text[i]) != std::string_view::npos) {
            if (i > start) {
                pieces.emplace_back(text.substr(start, i - start));
            }
            start = i + 1;
        }
    }
    return pieces;
}

std::string_view trim(std::string_view text) {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool startsWith(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view text, std::string_view suffix) {
    return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& pieces, std::string_view separator) {
    std::string out;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (i != 0) {
            out.append(separator);
        }
        out.append(pieces[i]);
    }
    return out;
}

std::string toLower(std::string_view text) {
    std::string out(text);
    for (char& c : out) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

bool isIdentifier(std::string_view text) {
    if (text.empty()) {
        return false;
    }
    const auto alpha = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    };
    const auto alnum = [&](char c) { return alpha(c) || (c >= '0' && c <= '9'); };
    if (!alpha(text.front())) {
        return false;
    }
    for (char c : text.substr(1)) {
        if (!alnum(c)) {
            return false;
        }
    }
    return true;
}

std::string sanitizeIdentifier(std::string_view text) {
    std::string out;
    out.reserve(text.size() + 1);
    for (char c : text) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
        out.insert(out.begin(), 'x');
    }
    return out;
}

std::size_t countLines(std::string_view text) {
    if (text.empty()) {
        return 0;
    }
    std::size_t lines = 0;
    for (char c : text) {
        if (c == '\n') {
            ++lines;
        }
    }
    if (text.back() != '\n') {
        ++lines;
    }
    return lines;
}

std::size_t countNonSpaceChars(std::string_view text) {
    std::size_t count = 0;
    for (char c : text) {
        if (std::isspace(static_cast<unsigned char>(c)) == 0) {
            ++count;
        }
    }
    return count;
}

std::uint64_t fnv1a64(std::string_view data) {
    std::uint64_t hash = 1469598103934665603ULL;
    for (char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ULL;
    }
    return hash;
}

} // namespace socgen
