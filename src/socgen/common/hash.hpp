#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace socgen {

/// 128-bit content digest used to key and validate persistent artifacts.
/// Built from two independent FNV-1a 64-bit lanes; not cryptographic, but
/// collision-resistant enough for content addressing in a single store
/// (the store additionally verifies the full payload on load).
struct Digest128 {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    friend bool operator==(const Digest128&, const Digest128&) = default;

    /// 32 lower-case hex characters, hi lane first.
    [[nodiscard]] std::string hex() const;
};

/// Streaming two-lane FNV-1a hasher. Feed any number of chunks; the
/// digest depends only on the concatenated byte sequence.
class HashStream {
public:
    HashStream& update(std::string_view data);

    /// Length-prefixed update: hashes the size then the bytes, so
    /// ("ab","c") and ("a","bc") produce different digests when fields
    /// are hashed one after another.
    HashStream& field(std::string_view data);
    HashStream& field(std::uint64_t value);
    HashStream& field(std::int64_t value);
    HashStream& field(double value);

    [[nodiscard]] Digest128 digest() const { return {hi_, lo_}; }

private:
    // Standard FNV-1a offset basis for the low lane; an arbitrary odd
    // basis for the high lane so the lanes decorrelate.
    std::uint64_t lo_ = 0xcbf29ce484222325ULL;
    std::uint64_t hi_ = 0x9ae16a3b2f90404fULL;
};

/// One-shot digest of a byte string.
[[nodiscard]] Digest128 digest128(std::string_view data);

} // namespace socgen
