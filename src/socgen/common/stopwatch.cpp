#include "socgen/common/stopwatch.hpp"

#include "socgen/common/strings.hpp"

namespace socgen {

void PhaseTimeline::add(std::string name, double hostMs, double toolSeconds) {
    phases_.push_back(PhaseTiming{std::move(name), hostMs, toolSeconds});
}

double PhaseTimeline::totalHostMs() const {
    double total = 0.0;
    for (const auto& p : phases_) {
        total += p.hostMs;
    }
    return total;
}

double PhaseTimeline::totalToolSeconds() const {
    double total = 0.0;
    for (const auto& p : phases_) {
        total += p.toolSeconds;
    }
    return total;
}

double PhaseTimeline::toolSecondsFor(const std::string& prefix) const {
    double total = 0.0;
    for (const auto& p : phases_) {
        if (startsWith(p.name, prefix)) {
            total += p.toolSeconds;
        }
    }
    return total;
}

void PhaseTimeline::append(const PhaseTimeline& other) {
    phases_.insert(phases_.end(), other.phases().begin(), other.phases().end());
}

} // namespace socgen
