#include "socgen/hls/interpreter.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <algorithm>

namespace socgen::hls {

namespace {

std::uint64_t maskTo(unsigned width, std::uint64_t value) {
    if (width >= 64) {
        return value;
    }
    return value & ((1ULL << width) - 1ULL);
}

} // namespace

KernelVm::KernelVm(const Program& program, KernelIo& io)
    : program_(program), io_(io), regs_(program.registerCount, 0) {
    arrays_.reserve(program.arrays.size());
    for (const auto& spec : program.arrays) {
        arrays_.emplace_back(spec.depth, 0);
    }
}

void KernelVm::start() {
    std::fill(regs_.begin(), regs_.end(), 0);
    // Arrays keep their contents across invocations (BRAM is persistent),
    // matching hardware behaviour.
    pc_ = 0;
    waitCycles_ = 0;
    running_ = true;
    started_ = true;
}

const std::vector<std::uint64_t>& KernelVm::array(ArrayId id) const {
    require(id < arrays_.size(), "array id out of range");
    return arrays_[id];
}

std::uint64_t KernelVm::applyBin(BinOp op, std::uint64_t a, std::uint64_t b) {
    switch (op) {
    case BinOp::Add: return a + b;
    case BinOp::Sub: return a - b;
    case BinOp::Mul: return a * b;
    case BinOp::Div: return b == 0 ? ~0ULL : a / b;
    case BinOp::Mod: return b == 0 ? a : a % b;
    case BinOp::And: return a & b;
    case BinOp::Or: return a | b;
    case BinOp::Xor: return a ^ b;
    case BinOp::Shl: return b >= 64 ? 0 : a << b;
    case BinOp::Shr: return b >= 64 ? 0 : a >> b;
    case BinOp::Eq: return a == b ? 1 : 0;
    case BinOp::Ne: return a != b ? 1 : 0;
    case BinOp::Lt: return a < b ? 1 : 0;
    case BinOp::Le: return a <= b ? 1 : 0;
    case BinOp::Gt: return a > b ? 1 : 0;
    case BinOp::Ge: return a >= b ? 1 : 0;
    case BinOp::Min: return std::min(a, b);
    case BinOp::Max: return std::max(a, b);
    }
    return 0;
}

std::uint64_t KernelVm::maskVar(std::uint32_t reg, std::uint64_t value) const {
    if (reg < program_.varWidth.size()) {
        return maskTo(program_.varWidth[reg], value);
    }
    return value;
}

bool KernelVm::tick() {
    if (!running_) {
        return false;
    }
    ++cycles_;
    if (waitCycles_ > 0) {
        --waitCycles_;
        return true;
    }
    // Execute zero-cost instructions until this cycle is accounted for.
    // The cap catches compiler bugs (a loop without a Cost back-edge).
    constexpr std::uint64_t kMaxInstrPerCycle = 1u << 20;
    for (std::uint64_t steps = 0; steps < kMaxInstrPerCycle; ++steps) {
        const Instr& instr = program_.instrs[pc_];
        switch (instr.op) {
        case Opcode::LoadConst:
            regs_[instr.dst] = maskVar(instr.dst, static_cast<std::uint64_t>(instr.imm));
            break;
        case Opcode::Move:
            regs_[instr.dst] = maskVar(instr.dst, regs_[instr.a]);
            break;
        case Opcode::LoadArg:
            regs_[instr.dst] = maskVar(instr.dst, io_.argValue(instr.port));
            break;
        case Opcode::Bin:
            regs_[instr.dst] =
                maskVar(instr.dst, applyBin(instr.bop, regs_[instr.a], regs_[instr.b]));
            break;
        case Opcode::Un:
            regs_[instr.dst] = maskVar(
                instr.dst, instr.uop == UnOp::Not ? ~regs_[instr.a] : 0 - regs_[instr.a]);
            break;
        case Opcode::Select:
            regs_[instr.dst] =
                maskVar(instr.dst, regs_[instr.a] != 0 ? regs_[instr.b] : regs_[instr.c]);
            break;
        case Opcode::ArrayLoad: {
            const auto& mem = arrays_[instr.array];
            const auto idx = static_cast<std::size_t>(regs_[instr.a]);
            if (idx >= mem.size()) {
                throw SimulationError(format("kernel %s: array %u read out of bounds "
                                             "(%zu >= %zu)",
                                             program_.kernelName.c_str(), instr.array, idx,
                                             mem.size()));
            }
            regs_[instr.dst] = mem[idx];
            break;
        }
        case Opcode::ArrayStore: {
            auto& mem = arrays_[instr.array];
            const auto idx = static_cast<std::size_t>(regs_[instr.a]);
            if (idx >= mem.size()) {
                throw SimulationError(format("kernel %s: array %u write out of bounds "
                                             "(%zu >= %zu)",
                                             program_.kernelName.c_str(), instr.array, idx,
                                             mem.size()));
            }
            mem[idx] = maskTo(program_.arrays[instr.array].width, regs_[instr.b]);
            break;
        }
        case Opcode::StreamRead: {
            std::uint64_t value = 0;
            if (!io_.streamRead(instr.port, value)) {
                ++stalls_;
                return false;  // stall this cycle; retry same pc next tick
            }
            regs_[instr.dst] = value;
            break;
        }
        case Opcode::StreamWrite: {
            const std::uint64_t value =
                maskTo(program_.ports[instr.port].width, regs_[instr.a]);
            if (!io_.streamWrite(instr.port, value)) {
                ++stalls_;
                return false;
            }
            break;
        }
        case Opcode::SetResult:
            io_.setResult(instr.port,
                          maskTo(program_.ports[instr.port].width, regs_[instr.a]));
            break;
        case Opcode::Jump:
            pc_ = instr.target;
            ++executed_;
            continue;
        case Opcode::JumpIfZero:
            pc_ = regs_[instr.a] == 0 ? instr.target : pc_ + 1;
            ++executed_;
            continue;
        case Opcode::Cost:
            waitCycles_ = instr.imm - 1;  // this tick counts as the first cycle
            ++pc_;
            ++executed_;
            return true;
        case Opcode::Halt:
            running_ = false;
            return true;
        }
        ++executed_;
        ++pc_;
    }
    throw SimulationError(format("kernel %s: executed %llu instructions without "
                                 "consuming a cycle (missing Cost?)",
                                 program_.kernelName.c_str(),
                                 static_cast<unsigned long long>(kMaxInstrPerCycle)));
}

} // namespace socgen::hls
