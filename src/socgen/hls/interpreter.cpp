#include "socgen/hls/interpreter.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <algorithm>

namespace socgen::hls {

namespace {

std::uint64_t maskTo(unsigned width, std::uint64_t value) {
    if (width >= 64) {
        return value;
    }
    return value & ((1ULL << width) - 1ULL);
}

} // namespace

/// Per-process KernelIo adapter: routes each port of one child program
/// either to an internal channel FIFO or out to the network's host IO,
/// and remembers which channel (if any) the last failed stream access
/// blocked on — the signal the deadlock detector aggregates.
class KernelVm::ProcessIo : public KernelIo {
public:
    struct Route {
        enum class Kind { Unbound, External, ChannelIn, ChannelOut };
        Kind kind = Kind::Unbound;
        PortId external = kNoId;      ///< network-level port (Kind::External)
        std::uint32_t channel = 0;    ///< channel index (Kind::Channel*)
    };

    ProcessIo(KernelVm& parent, std::uint32_t processIndex)
        : parent_(parent), processIndex_(processIndex) {
        const Program& child = parent.program_.processPrograms[processIndex];
        routes_.resize(child.ports.size());
        for (std::uint32_t c = 0; c < parent.program_.channels.size(); ++c) {
            const ProgramChannel& ch = parent.program_.channels[c];
            if (ch.fromProcess == processIndex_) {
                route(ch.fromPort).kind = Route::Kind::ChannelOut;
                route(ch.fromPort).channel = c;
            }
            if (ch.toProcess == processIndex_) {
                route(ch.toPort).kind = Route::Kind::ChannelIn;
                route(ch.toPort).channel = c;
            }
        }
        for (const ProgramBinding& b : parent.program_.bindings) {
            if (b.process == processIndex_) {
                route(b.processPort).kind = Route::Kind::External;
                route(b.processPort).external = b.networkPort;
            }
        }
    }

    std::uint64_t argValue(PortId port) override {
        return parent_.io_.argValue(externalPort(port));
    }

    void setResult(PortId port, std::uint64_t value) override {
        parent_.io_.setResult(externalPort(port), value);
    }

    bool streamRead(PortId port, std::uint64_t& value) override {
        const Route& r = route(port);
        if (r.kind == Route::Kind::ChannelIn) {
            ChannelState& ch = parent_.channelState_[r.channel];
            if (ch.fifo.empty()) {
                blockedChannel_ = static_cast<int>(r.channel);
                return false;
            }
            value = ch.fifo.front();
            ch.fifo.pop_front();
            ++ch.pops;
            return true;
        }
        if (!parent_.io_.streamRead(externalPort(port), value)) {
            blockedExternal_ = route(port).external;
            return false;
        }
        return true;
    }

    bool streamWrite(PortId port, std::uint64_t value) override {
        const Route& r = route(port);
        if (r.kind == Route::Kind::ChannelOut) {
            const ProgramChannel& spec = parent_.program_.channels[r.channel];
            ChannelState& ch = parent_.channelState_[r.channel];
            if (ch.fifo.size() >= spec.depth) {
                blockedChannel_ = static_cast<int>(r.channel);
                return false;
            }
            ch.fifo.push_back(maskTo(spec.width, value));
            ++ch.pushes;
            return true;
        }
        if (!parent_.io_.streamWrite(externalPort(port), value)) {
            blockedExternal_ = route(port).external;
            return false;
        }
        return true;
    }

    void clearBlocked() {
        blockedChannel_ = -1;
        blockedExternal_ = kNoId;
    }
    [[nodiscard]] bool blockedOnChannel() const { return blockedChannel_ >= 0; }
    [[nodiscard]] int blockedChannel() const { return blockedChannel_; }
    [[nodiscard]] PortId blockedExternal() const { return blockedExternal_; }

private:
    Route& route(PortId port) {
        require(port < routes_.size(), "network process port out of range");
        return routes_[port];
    }

    PortId externalPort(PortId port) {
        const Route& r = route(port);
        if (r.kind != Route::Kind::External) {
            throw SimulationError(format(
                "network %s: process port %u of process %u is not externally bound",
                parent_.program_.kernelName.c_str(), port, processIndex_));
        }
        return r.external;
    }

    KernelVm& parent_;
    std::uint32_t processIndex_;
    std::vector<Route> routes_;
    int blockedChannel_ = -1;          ///< channel of the last failed access
    PortId blockedExternal_ = kNoId;   ///< external port of the last failed access
};

KernelVm::KernelVm(const Program& program, KernelIo& io)
    : program_(program), io_(io), regs_(program.registerCount, 0) {
    arrays_.reserve(program.arrays.size());
    for (const auto& spec : program.arrays) {
        arrays_.emplace_back(spec.depth, 0);
    }
    if (program_.isNetwork()) {
        require(program_.processNames.size() == program_.processPrograms.size(),
                "network program: process name/program tables disagree");
        for (const ProgramChannel& ch : program_.channels) {
            require(ch.fromProcess < program_.processPrograms.size() &&
                        ch.toProcess < program_.processPrograms.size(),
                    "network program: channel process index out of range");
            require(ch.depth >= 1, "network program: channel depth must be >= 1");
        }
        for (const ProgramBinding& b : program_.bindings) {
            require(b.process < program_.processPrograms.size(),
                    "network program: binding process index out of range");
            require(b.networkPort < program_.ports.size(),
                    "network program: binding network port out of range");
        }
        channelState_.resize(program_.channels.size());
        processIo_.reserve(program_.processPrograms.size());
        processes_.reserve(program_.processPrograms.size());
        for (std::uint32_t i = 0; i < program_.processPrograms.size(); ++i) {
            processIo_.push_back(std::make_unique<ProcessIo>(*this, i));
            processes_.push_back(
                std::make_unique<KernelVm>(program_.processPrograms[i], *processIo_[i]));
        }
    }
}

KernelVm::~KernelVm() = default;

void KernelVm::start() {
    if (isNetwork()) {
        startNetwork();
        return;
    }
    std::fill(regs_.begin(), regs_.end(), 0);
    // Arrays keep their contents across invocations (BRAM is persistent),
    // matching hardware behaviour.
    pc_ = 0;
    waitCycles_ = 0;
    running_ = true;
    started_ = true;
}

void KernelVm::startNetwork() {
    for (std::uint32_t c = 0; c < channelState_.size(); ++c) {
        ChannelState& ch = channelState_[c];
        ch.fifo.clear();
        // Initial tokens are zero-valued, matching the reset state of the
        // RTL FIFO's register slots.
        ch.fifo.assign(program_.channels[c].initialTokens, 0);
    }
    for (auto& vm : processes_) {
        vm->start();
    }
    running_ = true;
    started_ = true;
}

const KernelVm& KernelVm::process(std::size_t index) const {
    require(isNetwork(), "process(): not a network program");
    require(index < processes_.size(), "process index out of range");
    return *processes_[index];
}

const std::vector<std::uint64_t>& KernelVm::array(ArrayId id) const {
    require(id < arrays_.size(), "array id out of range");
    return arrays_[id];
}

std::uint64_t KernelVm::applyBin(BinOp op, std::uint64_t a, std::uint64_t b) {
    switch (op) {
    case BinOp::Add: return a + b;
    case BinOp::Sub: return a - b;
    case BinOp::Mul: return a * b;
    case BinOp::Div: return b == 0 ? ~0ULL : a / b;
    case BinOp::Mod: return b == 0 ? a : a % b;
    case BinOp::And: return a & b;
    case BinOp::Or: return a | b;
    case BinOp::Xor: return a ^ b;
    case BinOp::Shl: return b >= 64 ? 0 : a << b;
    case BinOp::Shr: return b >= 64 ? 0 : a >> b;
    case BinOp::Eq: return a == b ? 1 : 0;
    case BinOp::Ne: return a != b ? 1 : 0;
    case BinOp::Lt: return a < b ? 1 : 0;
    case BinOp::Le: return a <= b ? 1 : 0;
    case BinOp::Gt: return a > b ? 1 : 0;
    case BinOp::Ge: return a >= b ? 1 : 0;
    case BinOp::Min: return std::min(a, b);
    case BinOp::Max: return std::max(a, b);
    }
    return 0;
}

std::uint64_t KernelVm::maskVar(std::uint32_t reg, std::uint64_t value) const {
    if (reg < program_.varWidth.size()) {
        return maskTo(program_.varWidth[reg], value);
    }
    return value;
}

bool KernelVm::tick() {
    if (!running_) {
        return false;
    }
    if (isNetwork()) {
        return tickNetwork();
    }
    ++cycles_;
    if (waitCycles_ > 0) {
        --waitCycles_;
        return true;
    }
    // Execute zero-cost instructions until this cycle is accounted for.
    // The cap catches compiler bugs (a loop without a Cost back-edge).
    constexpr std::uint64_t kMaxInstrPerCycle = 1u << 20;
    for (std::uint64_t steps = 0; steps < kMaxInstrPerCycle; ++steps) {
        const Instr& instr = program_.instrs[pc_];
        switch (instr.op) {
        case Opcode::LoadConst:
            regs_[instr.dst] = maskVar(instr.dst, static_cast<std::uint64_t>(instr.imm));
            break;
        case Opcode::Move:
            regs_[instr.dst] = maskVar(instr.dst, regs_[instr.a]);
            break;
        case Opcode::LoadArg:
            regs_[instr.dst] = maskVar(instr.dst, io_.argValue(instr.port));
            break;
        case Opcode::Bin:
            regs_[instr.dst] =
                maskVar(instr.dst, applyBin(instr.bop, regs_[instr.a], regs_[instr.b]));
            break;
        case Opcode::Un:
            regs_[instr.dst] = maskVar(
                instr.dst, instr.uop == UnOp::Not ? ~regs_[instr.a] : 0 - regs_[instr.a]);
            break;
        case Opcode::Select:
            regs_[instr.dst] =
                maskVar(instr.dst, regs_[instr.a] != 0 ? regs_[instr.b] : regs_[instr.c]);
            break;
        case Opcode::ArrayLoad: {
            const auto& mem = arrays_[instr.array];
            const auto idx = static_cast<std::size_t>(regs_[instr.a]);
            if (idx >= mem.size()) {
                throw SimulationError(format("kernel %s: array %u read out of bounds "
                                             "(%zu >= %zu)",
                                             program_.kernelName.c_str(), instr.array, idx,
                                             mem.size()));
            }
            regs_[instr.dst] = mem[idx];
            break;
        }
        case Opcode::ArrayStore: {
            auto& mem = arrays_[instr.array];
            const auto idx = static_cast<std::size_t>(regs_[instr.a]);
            if (idx >= mem.size()) {
                throw SimulationError(format("kernel %s: array %u write out of bounds "
                                             "(%zu >= %zu)",
                                             program_.kernelName.c_str(), instr.array, idx,
                                             mem.size()));
            }
            mem[idx] = maskTo(program_.arrays[instr.array].width, regs_[instr.b]);
            break;
        }
        case Opcode::StreamRead: {
            std::uint64_t value = 0;
            if (!io_.streamRead(instr.port, value)) {
                ++stalls_;
                return false;  // stall this cycle; retry same pc next tick
            }
            regs_[instr.dst] = value;
            break;
        }
        case Opcode::StreamWrite: {
            const std::uint64_t value =
                maskTo(program_.ports[instr.port].width, regs_[instr.a]);
            if (!io_.streamWrite(instr.port, value)) {
                ++stalls_;
                return false;
            }
            break;
        }
        case Opcode::SetResult:
            io_.setResult(instr.port,
                          maskTo(program_.ports[instr.port].width, regs_[instr.a]));
            break;
        case Opcode::Jump:
            pc_ = instr.target;
            ++executed_;
            continue;
        case Opcode::JumpIfZero:
            pc_ = regs_[instr.a] == 0 ? instr.target : pc_ + 1;
            ++executed_;
            continue;
        case Opcode::Cost:
            waitCycles_ = instr.imm - 1;  // this tick counts as the first cycle
            ++pc_;
            ++executed_;
            return true;
        case Opcode::Halt:
            running_ = false;
            return true;
        }
        ++executed_;
        ++pc_;
    }
    throw SimulationError(format("kernel %s: executed %llu instructions without "
                                 "consuming a cycle (missing Cost?)",
                                 program_.kernelName.c_str(),
                                 static_cast<unsigned long long>(kMaxInstrPerCycle)));
}

bool KernelVm::tickNetwork() {
    ++cycles_;
    bool progressed = false;
    for (std::size_t i = 0; i < processes_.size(); ++i) {
        KernelVm& vm = *processes_[i];
        if (!vm.running()) {
            continue;
        }
        processIo_[i]->clearBlocked();
        if (vm.tick()) {
            progressed = true;
        }
    }
    std::uint64_t executedTotal = 0;
    bool anyRunning = false;
    for (const auto& vm : processes_) {
        executedTotal += vm->instructionsExecuted();
        anyRunning = anyRunning || vm->running();
    }
    executed_ = executedTotal;
    if (!anyRunning) {
        running_ = false;
        return true;
    }
    if (progressed) {
        return true;
    }
    ++stalls_;
    // Every live process spent the cycle stalled. If each of them is
    // blocked on an *internal* channel, the network can never move again:
    // internal FIFOs only change when a process moves, and external
    // stimulus only reaches externally blocked processes. Fail now with
    // forensics instead of hanging until a host watchdog fires.
    bool allInternal = true;
    for (std::size_t i = 0; i < processes_.size(); ++i) {
        if (processes_[i]->running() && !processIo_[i]->blockedOnChannel()) {
            allInternal = false;
            break;
        }
    }
    if (allInternal) {
        std::vector<std::string> channels;
        std::vector<std::string> blockedProcesses;
        for (std::size_t i = 0; i < processes_.size(); ++i) {
            if (!processes_[i]->running()) {
                continue;
            }
            blockedProcesses.push_back(program_.processNames[i]);
            const int ch = processIo_[i]->blockedChannel();
            const std::string& name =
                program_.channels[static_cast<std::size_t>(ch)].name;
            if (std::find(channels.begin(), channels.end(), name) == channels.end()) {
                channels.push_back(name);
            }
        }
        throw ChannelDeadlockError(
            format("network %s: every live process is blocked on an internal channel "
                   "at cycle %llu — no external stimulus can unblock it\n%s",
                   program_.kernelName.c_str(),
                   static_cast<unsigned long long>(cycles_),
                   networkStallReport().c_str()),
            channels, blockedProcesses);
    }
    return false;
}

std::string KernelVm::networkStallReport() const {
    require(isNetwork(), "networkStallReport(): not a network program");
    std::string report = format("network %s stall state:", program_.kernelName.c_str());
    for (std::size_t c = 0; c < channelState_.size(); ++c) {
        const ProgramChannel& spec = program_.channels[c];
        const ChannelState& ch = channelState_[c];
        report += format("\n  channel %-16s %zu/%u full, %llu pushed, %llu popped (%s.%s "
                         "-> %s.%s)",
                         spec.name.c_str(), ch.fifo.size(), spec.depth,
                         static_cast<unsigned long long>(ch.pushes),
                         static_cast<unsigned long long>(ch.pops),
                         program_.processNames[spec.fromProcess].c_str(),
                         program_.processPrograms[spec.fromProcess]
                             .ports[spec.fromPort]
                             .name.c_str(),
                         program_.processNames[spec.toProcess].c_str(),
                         program_.processPrograms[spec.toProcess]
                             .ports[spec.toPort]
                             .name.c_str());
    }
    for (std::size_t i = 0; i < processes_.size(); ++i) {
        const KernelVm& vm = *processes_[i];
        std::string state;
        if (vm.finished()) {
            state = "finished";
        } else if (!vm.running()) {
            state = "idle";
        } else if (processIo_[i]->blockedOnChannel()) {
            const auto ch = static_cast<std::size_t>(processIo_[i]->blockedChannel());
            state = "blocked on channel '" + program_.channels[ch].name + "'";
        } else if (processIo_[i]->blockedExternal() != kNoId) {
            state = "blocked on external port '" +
                    program_.ports[processIo_[i]->blockedExternal()].name + "'";
        } else {
            state = "running";
        }
        report += format("\n  process %-16s %s (%llu cycles, %llu stalled)",
                         program_.processNames[i].c_str(), state.c_str(),
                         static_cast<unsigned long long>(vm.cycles()),
                         static_cast<unsigned long long>(vm.stallCycles()));
    }
    return report;
}

} // namespace socgen::hls
