#pragma once

#include "socgen/hls/ir.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace socgen::hls {

/// One schedulable operation extracted from a statement block.
enum class OpKind {
    Binary,
    Unary,
    Select,
    Move,       ///< register transfer for `var = <const|var|arg>` assigns
    ArrayLoad,
    ArrayStore,
    StreamRead,
    StreamWrite,
    SetResult,
    LoopNest,  ///< an inner For treated as a macro-op with fixed latency
};

using OpId = std::uint32_t;

struct DfgOp {
    OpKind kind = OpKind::Binary;
    BinOp bop = BinOp::Add;
    UnOp uop = UnOp::Not;
    unsigned width = 32;
    ArrayId array = kNoId;  ///< ArrayLoad/ArrayStore
    PortId port = kNoId;    ///< stream ops / SetResult
    StmtId loop = kNoId;    ///< LoopNest: the inner For statement
    std::int64_t loopLatency = 0;  ///< LoopNest total cycles

    std::vector<OpId> deps;        ///< must complete before this op starts
    std::vector<VarId> varReads;   ///< block-external vars feeding this op
    VarId assignsVar = kNoId;      ///< variable this op's result defines
    ExprId expr = kNoId;           ///< originating expression (codegen link)
    ExprId indexExpr = kNoId;      ///< ArrayLoad/ArrayStore address expression
    ExprId valueExpr = kNoId;      ///< store/write/result/move value expression
};

/// The data-flow graph of one straight-line block (loop body or a
/// top-level segment). If statements are if-converted: both branches'
/// operations appear, joined by Select semantics for timing purposes.
struct Dfg {
    std::vector<DfgOp> ops;

    [[nodiscard]] std::size_t size() const { return ops.size(); }

    /// Longest dependency path length in cycles under `latencyOf`.
    [[nodiscard]] std::int64_t criticalPath(
        const std::vector<std::int64_t>& latencyOf) const;
};

/// Callback giving the total latency of an inner loop (already scheduled
/// bottom-up by the caller).
using LoopLatencyFn = std::int64_t (*)(void* ctx, StmtId loop);

/// Builds the DFG for `block`. Inner For statements become LoopNest
/// macro-ops whose latency is obtained via `loopLatency(ctx, stmt)`.
/// Ordering edges are added between: stream reads on the same port,
/// stream writes on the same port, stores to the same array, and
/// store→load / load→store pairs on the same array (memory hazards).
Dfg buildDfg(const Kernel& kernel, std::span<const StmtId> block,
             LoopLatencyFn loopLatency, void* ctx);

} // namespace socgen::hls
