#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace socgen::hls {

/// Interface protocol assigned to a kernel port by the DSL: in the paper,
/// keyword `i` maps a port to AXI-Lite, `is` to AXI-Stream, and the tool
/// "adds the proper specifications for the interface under analysis to
/// the directives file" (Section IV-B step 3).
enum class InterfaceProtocol { AxiLite, AxiStream };

enum class SchedulerKind {
    Asap,  ///< unconstrained as-soon-as-possible (no resource limits)
    List,  ///< resource-constrained list scheduling (default)
};

/// Per-kernel synthesis directives. Mirrors the directive file our tool
/// writes for Vivado HLS in the paper's flow.
struct Directives {
    double clockNs = 10.0;  ///< target clock period (Zynq PL default 100 MHz)

    SchedulerKind scheduler = SchedulerKind::List;
    bool pipelineLoops = true;  ///< pipeline innermost loops (II minimisation)
    bool enableOptimizer = true;  ///< IR constant folding / DCE front end

    // Resource constraints for the list scheduler / binder.
    int maxMulUnits = 2;   ///< DSP-mapped multipliers available to one kernel
    int maxDivUnits = 1;   ///< iterative dividers
    int memPortsPerArray = 1;  ///< BRAM ports usable per cycle per array

    /// Expected trip count per loop, keyed by induction-variable name
    /// (equivalent of Vivado HLS's LOOP_TRIPCOUNT directive). Loops with a
    /// constant bound do not need a hint.
    std::map<std::string, std::int64_t> tripCountHints;
    std::int64_t defaultTripCount = 256;

    /// Loop unroll factors, keyed by induction-variable name (the HLS
    /// UNROLL directive). Applied to constant-bound loops only.
    std::map<std::string, int> unrollFactors;

    /// Interface protocol per port name, injected by the DSL `i`/`is`
    /// keywords. Ports not listed default to the protocol implied by
    /// their IR kind (scalar -> AXI-Lite, stream -> AXI-Stream).
    std::map<std::string, InterfaceProtocol> interfaces;

    /// Renders the directive file text (Tcl-like, as written for Vivado
    /// HLS by the paper's tool).
    [[nodiscard]] std::string render(const std::string& kernelName) const;
};

} // namespace socgen::hls
