#include "socgen/hls/optimize.hpp"

#include "socgen/common/error.hpp"

#include <optional>
#include <set>

namespace socgen::hls {

namespace {

class Optimizer {
public:
    Optimizer(const Kernel& kernel, OptStats* stats) : in_(kernel), stats_(stats) {}

    Kernel run() {
        collectReadVars();
        KernelBuilder kb(in_.name());
        // Recreate the signature/locals in order so ids stay stable.
        for (const auto& p : in_.ports()) {
            switch (p.kind) {
            case PortKind::ScalarIn: (void)kb.scalarIn(p.name, p.width); break;
            case PortKind::ScalarOut: (void)kb.scalarOut(p.name, p.width); break;
            case PortKind::StreamIn: (void)kb.streamIn(p.name, p.width); break;
            case PortKind::StreamOut: (void)kb.streamOut(p.name, p.width); break;
            }
        }
        for (const auto& v : in_.vars()) {
            (void)kb.var(v.name, v.width);
        }
        for (const auto& a : in_.arrays()) {
            (void)kb.array(a.name, a.depth, a.width);
        }
        kb_ = &kb;
        emitBlock(in_.body());
        return kb.build();
    }

private:
    void bump(std::size_t OptStats::* field) {
        if (stats_ != nullptr) {
            ++(stats_->*field);
        }
    }

    void collectReadsIn(ExprId id) {
        const Expr& e = in_.expr(id);
        switch (e.kind) {
        case ExprKind::Var: readVars_.insert(e.var); break;
        case ExprKind::ArrayLoad: collectReadsIn(e.a); break;
        case ExprKind::Unary: collectReadsIn(e.a); break;
        case ExprKind::Binary:
            collectReadsIn(e.a);
            collectReadsIn(e.b);
            break;
        case ExprKind::Select:
            collectReadsIn(e.a);
            collectReadsIn(e.b);
            collectReadsIn(e.c);
            break;
        default: break;
        }
    }

    void collectReadsInBlock(const std::vector<StmtId>& block) {
        for (StmtId id : block) {
            const Stmt& s = in_.stmt(id);
            switch (s.kind) {
            case StmtKind::Assign:
            case StmtKind::StreamWrite:
            case StmtKind::SetResult:
                collectReadsIn(s.value);
                break;
            case StmtKind::ArrayStore:
                collectReadsIn(s.index);
                collectReadsIn(s.value);
                break;
            case StmtKind::For:
                collectReadsIn(s.value);
                // The induction variable is not counted as "read" here:
                // loop control is implicit, and body reads of it surface
                // as Var expressions anyway.
                collectReadsInBlock(s.body);
                break;
            case StmtKind::If:
                collectReadsIn(s.value);
                collectReadsInBlock(s.body);
                collectReadsInBlock(s.elseBody);
                break;
            }
        }
    }

    void collectReadVars() { collectReadsInBlock(in_.body()); }

    [[nodiscard]] bool hasStreamRead(ExprId id) const {
        const Expr& e = in_.expr(id);
        switch (e.kind) {
        case ExprKind::StreamRead: return true;
        case ExprKind::ArrayLoad: return hasStreamRead(e.a);
        case ExprKind::Unary: return hasStreamRead(e.a);
        case ExprKind::Binary: return hasStreamRead(e.a) || hasStreamRead(e.b);
        case ExprKind::Select:
            return hasStreamRead(e.a) || hasStreamRead(e.b) || hasStreamRead(e.c);
        default: return false;
        }
    }

    /// Rewritten expression: either a known constant or a new ExprId.
    struct Value {
        std::optional<std::int64_t> constant;
        ExprId expr = kNoId;

        [[nodiscard]] bool isConst(std::int64_t v) const {
            return constant.has_value() && *constant == v;
        }
    };

    Value makeConst(std::int64_t v) { return Value{v, kNoId}; }

    ExprId materialize(const Value& v) {
        return v.constant.has_value() ? kb_->c(*v.constant) : v.expr;
    }

    static std::optional<std::int64_t> foldBinary(BinOp op, std::int64_t a,
                                                  std::int64_t b) {
        const auto ua = static_cast<std::uint64_t>(a);
        const auto ub = static_cast<std::uint64_t>(b);
        switch (op) {
        case BinOp::Add: return static_cast<std::int64_t>(ua + ub);
        case BinOp::Sub: return static_cast<std::int64_t>(ua - ub);
        case BinOp::Mul: return static_cast<std::int64_t>(ua * ub);
        case BinOp::Div: return ub == 0 ? std::nullopt
                                        : std::optional<std::int64_t>(
                                              static_cast<std::int64_t>(ua / ub));
        case BinOp::Mod: return ub == 0 ? std::nullopt
                                        : std::optional<std::int64_t>(
                                              static_cast<std::int64_t>(ua % ub));
        case BinOp::And: return static_cast<std::int64_t>(ua & ub);
        case BinOp::Or: return static_cast<std::int64_t>(ua | ub);
        case BinOp::Xor: return static_cast<std::int64_t>(ua ^ ub);
        case BinOp::Shl: return ub >= 64 ? 0 : static_cast<std::int64_t>(ua << ub);
        case BinOp::Shr: return ub >= 64 ? 0 : static_cast<std::int64_t>(ua >> ub);
        case BinOp::Eq: return ua == ub ? 1 : 0;
        case BinOp::Ne: return ua != ub ? 1 : 0;
        case BinOp::Lt: return ua < ub ? 1 : 0;
        case BinOp::Le: return ua <= ub ? 1 : 0;
        case BinOp::Gt: return ua > ub ? 1 : 0;
        case BinOp::Ge: return ua >= ub ? 1 : 0;
        case BinOp::Min: return static_cast<std::int64_t>(std::min(ua, ub));
        case BinOp::Max: return static_cast<std::int64_t>(std::max(ua, ub));
        }
        return std::nullopt;
    }

    Value rewriteExpr(ExprId id) {
        const Expr& e = in_.expr(id);
        switch (e.kind) {
        case ExprKind::Const:
            return makeConst(e.value);
        case ExprKind::Var:
            return Value{std::nullopt, kb_->v(e.var)};
        case ExprKind::Arg:
            return Value{std::nullopt, kb_->arg(e.port)};
        case ExprKind::StreamRead:
            return Value{std::nullopt, kb_->read(e.port)};
        case ExprKind::ArrayLoad: {
            const Value index = rewriteExpr(e.a);
            return Value{std::nullopt, kb_->load(e.array, materialize(index))};
        }
        case ExprKind::Unary: {
            const Value a = rewriteExpr(e.a);
            if (a.constant) {
                bump(&OptStats::foldedConstants);
                return makeConst(e.uop == UnOp::Not
                                     ? static_cast<std::int64_t>(
                                           ~static_cast<std::uint64_t>(*a.constant))
                                     : -*a.constant);
            }
            return Value{std::nullopt, kb_->un(e.uop, a.expr)};
        }
        case ExprKind::Binary: {
            const Value a = rewriteExpr(e.a);
            const Value b = rewriteExpr(e.b);
            if (a.constant && b.constant) {
                if (const auto folded = foldBinary(e.bop, *a.constant, *b.constant)) {
                    bump(&OptStats::foldedConstants);
                    return makeConst(*folded);
                }
            }
            // Algebraic identities (side-effect-free by construction:
            // the surviving operand is returned unchanged).
            const auto identity = [&](const Value& kept) {
                bump(&OptStats::simplifiedAlgebra);
                return kept;
            };
            const auto powerOfTwo = [](std::int64_t v) {
                return v > 1 && (v & (v - 1)) == 0;
            };
            const auto log2Of = [](std::int64_t v) {
                int bits = 0;
                while ((std::int64_t{1} << bits) < v) {
                    ++bits;
                }
                return std::int64_t{bits};
            };
            switch (e.bop) {
            case BinOp::Add:
                if (a.isConst(0)) return identity(b);
                if (b.isConst(0)) return identity(a);
                break;
            case BinOp::Sub:
            case BinOp::Shl:
            case BinOp::Shr:
            case BinOp::Xor:
            case BinOp::Or:
                if (b.isConst(0)) return identity(a);
                break;
            case BinOp::Mul:
                if (a.isConst(1)) return identity(b);
                if (b.isConst(1)) return identity(a);
                if ((a.isConst(0) && !hasStreamRead(e.b)) ||
                    (b.isConst(0) && !hasStreamRead(e.a))) {
                    bump(&OptStats::simplifiedAlgebra);
                    return makeConst(0);
                }
                // x * 2^k -> x << k (frees a DSP slice).
                if (b.constant && powerOfTwo(*b.constant)) {
                    bump(&OptStats::strengthReduced);
                    return Value{std::nullopt,
                                 kb_->shl(materialize(a), kb_->c(log2Of(*b.constant)))};
                }
                if (a.constant && powerOfTwo(*a.constant)) {
                    bump(&OptStats::strengthReduced);
                    return Value{std::nullopt,
                                 kb_->shl(materialize(b), kb_->c(log2Of(*a.constant)))};
                }
                break;
            case BinOp::And:
                if ((a.isConst(0) && !hasStreamRead(e.b)) ||
                    (b.isConst(0) && !hasStreamRead(e.a))) {
                    bump(&OptStats::simplifiedAlgebra);
                    return makeConst(0);
                }
                break;
            case BinOp::Div:
                if (b.isConst(1)) return identity(a);
                // x / 2^k -> x >> k (kills the iterative divider).
                if (b.constant && powerOfTwo(*b.constant)) {
                    bump(&OptStats::strengthReduced);
                    return Value{std::nullopt,
                                 kb_->shr(materialize(a), kb_->c(log2Of(*b.constant)))};
                }
                break;
            case BinOp::Mod:
                if (b.isConst(1)) {
                    bump(&OptStats::simplifiedAlgebra);
                    return makeConst(0);
                }
                // x % 2^k -> x & (2^k - 1).
                if (b.constant && powerOfTwo(*b.constant)) {
                    bump(&OptStats::strengthReduced);
                    return Value{std::nullopt,
                                 kb_->bin(BinOp::And, materialize(a),
                                          kb_->c(*b.constant - 1))};
                }
                break;
            default:
                break;
            }
            return Value{std::nullopt, kb_->bin(e.bop, materialize(a), materialize(b))};
        }
        case ExprKind::Select: {
            const Value cond = rewriteExpr(e.a);
            if (cond.constant && !hasStreamRead(e.b) && !hasStreamRead(e.c)) {
                bump(&OptStats::simplifiedAlgebra);
                return rewriteExpr(*cond.constant != 0 ? e.b : e.c);
            }
            const Value t = rewriteExpr(e.b);
            const Value f = rewriteExpr(e.c);
            return Value{std::nullopt,
                         kb_->select(materialize(cond), materialize(t), materialize(f))};
        }
        }
        throw HlsError("unreachable expression kind in optimizer");
    }

    /// Returns true when the statement was emitted (false = eliminated).
    bool emitStmt(StmtId id) {
        const Stmt& s = in_.stmt(id);
        switch (s.kind) {
        case StmtKind::Assign: {
            if (readVars_.find(s.var) == readVars_.end() && !hasStreamRead(s.value)) {
                bump(&OptStats::removedStatements);
                return false;  // value never observed, no side effects
            }
            const Value value = rewriteExpr(s.value);
            kb_->assign(s.var, materialize(value));
            return true;
        }
        case StmtKind::ArrayStore: {
            const Value index = rewriteExpr(s.index);
            const Value value = rewriteExpr(s.value);
            kb_->arrayStore(s.array, materialize(index), materialize(value));
            return true;
        }
        case StmtKind::StreamWrite: {
            kb_->write(s.port, materialize(rewriteExpr(s.value)));
            return true;
        }
        case StmtKind::SetResult: {
            kb_->setResult(s.port, materialize(rewriteExpr(s.value)));
            return true;
        }
        case StmtKind::For: {
            // Empty, side-effect-free loops disappear entirely.
            if (s.body.empty() && !hasStreamRead(s.value) &&
                readVars_.find(s.var) == readVars_.end()) {
                bump(&OptStats::removedStatements);
                return false;
            }
            const Value bound = rewriteExpr(s.value);
            kb_->forLoop(s.var, materialize(bound));
            const bool any = emitBlock(s.body);
            kb_->endLoop();
            (void)any;
            return true;
        }
        case StmtKind::If: {
            const Value cond = rewriteExpr(s.value);
            if (cond.constant) {
                bump(&OptStats::simplifiedAlgebra);
                return emitBlock(*cond.constant != 0 ? s.body : s.elseBody);
            }
            if (s.body.empty() && s.elseBody.empty() && !hasStreamRead(s.value)) {
                bump(&OptStats::removedStatements);
                return false;
            }
            kb_->ifBegin(materialize(cond));
            emitBlock(s.body);
            if (!s.elseBody.empty()) {
                kb_->elseBegin();
                emitBlock(s.elseBody);
            }
            kb_->endIf();
            return true;
        }
        }
        throw HlsError("unreachable statement kind in optimizer");
    }

    bool emitBlock(const std::vector<StmtId>& block) {
        bool any = false;
        for (StmtId id : block) {
            any = emitStmt(id) || any;
        }
        return any;
    }

    const Kernel& in_;
    OptStats* stats_;
    KernelBuilder* kb_ = nullptr;
    std::set<VarId> readVars_;
};

} // namespace

Kernel optimize(const Kernel& kernel, OptStats* stats) {
    return Optimizer(kernel, stats).run();
}

} // namespace socgen::hls
