#pragma once

#include "socgen/hls/ir.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace socgen::hls {

/// One named process of a network: an ordinary hls::Kernel instantiated
/// under a process name (the same kernel may be instantiated more than
/// once under different names).
struct Process {
    std::string name;
    Kernel kernel;
};

/// A typed bounded-depth FIFO channel between two processes. `fromPort`
/// must be a StreamOut of `fromProcess`, `toPort` a StreamIn of
/// `toProcess`, and both must agree with `width`. `initialTokens`
/// pre-loads the FIFO with that many zero-valued tokens at start (the
/// classic KPN device that makes feedback cycles well-defined); a
/// channel cycle with no initial tokens anywhere is a static deadlock.
struct NetworkChannel {
    std::string name;
    std::string fromProcess;
    std::string fromPort;
    std::string toProcess;
    std::string toPort;
    unsigned width = 32;
    std::uint32_t depth = 2;
    std::uint32_t initialTokens = 0;
};

/// Exposes one process port at the network boundary under `networkPort`.
/// Every process port not connected to a channel must be exported
/// exactly once; the exported ports form the network's signature (what
/// the DSL node, the SoC wrapper, and the software drivers see).
struct NetworkBinding {
    std::string networkPort;
    std::string process;
    std::string processPort;
};

/// A process network: the node model. Named processes (each an
/// hls::Kernel) connected by typed FIFO channels, with the unconnected
/// ports exported as the network signature. A single-kernel node is the
/// trivial one-process network (`fromKernel`), so every legacy app flows
/// through this model unchanged.
class ProcessNetwork {
public:
    explicit ProcessNetwork(std::string name) : name_(std::move(name)) {}

    /// Wraps one kernel as the trivial network: one process named after
    /// the kernel, no channels, every port exported under its own name.
    [[nodiscard]] static ProcessNetwork fromKernel(Kernel kernel);

    void addProcess(std::string name, Kernel kernel);
    void connect(NetworkChannel channel);
    void exportPort(std::string networkPort, std::string process, std::string processPort);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::vector<Process>& processes() const { return processes_; }
    [[nodiscard]] const std::vector<NetworkChannel>& channels() const { return channels_; }
    [[nodiscard]] const std::vector<NetworkBinding>& bindings() const { return bindings_; }

    /// True for the one-process, zero-channel wrap of a single kernel —
    /// the legacy node shape, which keeps the legacy flow path.
    [[nodiscard]] bool trivial() const {
        return processes_.size() == 1 && channels_.empty();
    }

    [[nodiscard]] bool hasProcess(std::string_view name) const;
    /// Index into processes(); throws HlsError if absent.
    [[nodiscard]] std::size_t processIndex(std::string_view name) const;
    [[nodiscard]] const Process& process(std::string_view name) const;

    /// The network signature: one KernelPort per binding, in binding
    /// order, named by the binding's networkPort with the kind/width of
    /// the underlying process port. Throws HlsError on unknown
    /// process/port references.
    [[nodiscard]] std::vector<KernelPort> externalPorts() const;

    /// Structural validation: unique names, channel endpoints exist with
    /// the right kinds and widths, every process port used exactly once
    /// (channel endpoint or export — dangling and multiply-driven ports
    /// are errors), scalar ports exported, channel depths sane. Then the
    /// static deadlock check: a channel cycle carrying no initial token
    /// anywhere, or initialTokens > depth on any channel, throws
    /// ChannelDeadlockError naming the channels and processes involved.
    void verify() const;

private:
    std::string name_;
    std::vector<Process> processes_;
    std::vector<NetworkChannel> channels_;
    std::vector<NetworkBinding> bindings_;
};

/// A named collection of nodes — the "synthesizable C/C++ files" the
/// user supplies next to the DSL description (paper Section IV-A).
/// Every entry is a ProcessNetwork; adding a plain Kernel wraps it as
/// the trivial one-process network, so single-kernel apps and dataflow
/// networks live in the same namespace and flow through the same paths.
class KernelLibrary {
public:
    /// Adds `kernel` as the trivial network named after it.
    void add(Kernel kernel);
    void add(ProcessNetwork network);

    [[nodiscard]] bool has(std::string_view name) const;

    /// Legacy single-kernel accessor: the sole process of a trivial
    /// network. Throws HlsError for unknown names and for multi-process
    /// networks (use network() there).
    [[nodiscard]] const Kernel& get(std::string_view name) const;

    [[nodiscard]] const ProcessNetwork& network(std::string_view name) const;

    [[nodiscard]] std::size_t size() const { return networks_.size(); }

private:
    std::vector<ProcessNetwork> networks_;
};

} // namespace socgen::hls
