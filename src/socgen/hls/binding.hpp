#pragma once

#include "socgen/hls/schedule.hpp"

#include <map>
#include <vector>

namespace socgen::hls {

/// Unit assignment for one scheduled block: ops of the shared classes
/// (Mul, Div) are packed onto the fewest units compatible with the
/// schedule (left-edge algorithm); Alu ops stay spatial (one LUT cluster
/// each); Mem/Stream ops use their array/port.
struct BlockBinding {
    /// Per-op unit index within its class (-1 for classes without shared
    /// units: Alu/Loop).
    std::vector<int> unitOf;
    int mulUnits = 0;
    int divUnits = 0;
};

BlockBinding bindBlock(const BlockSchedule& block, const LatencyModel& latency);

/// Whole-kernel functional-unit allocation: shared units are reused
/// across loops (a kernel runs one loop at a time), so the kernel needs
/// max-per-block units of each shared class.
struct KernelBinding {
    std::vector<BlockBinding> loopBindings;  ///< parallel to KernelSchedule::loops
    BlockBinding topBinding;
    int mulUnits = 0;
    int divUnits = 0;
};

KernelBinding bindKernel(const KernelSchedule& schedule, const LatencyModel& latency = {});

} // namespace socgen::hls
