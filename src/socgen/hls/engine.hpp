#pragma once

#include "socgen/hls/binding.hpp"
#include "socgen/hls/bytecode.hpp"
#include "socgen/hls/directives.hpp"
#include "socgen/hls/ir.hpp"
#include "socgen/hls/resources.hpp"
#include "socgen/hls/schedule.hpp"
#include "socgen/rtl/netlist.hpp"

#include <string>

namespace socgen::hls {

/// Everything one HLS run produces for a kernel — the equivalent of a
/// Vivado HLS solution directory.
struct HlsResult {
    std::string kernelName;
    KernelSchedule schedule;
    KernelBinding binding;
    rtl::Netlist netlist;
    std::string vhdl;            ///< emitted RTL text (VHDL)
    std::string verilog;         ///< emitted RTL text (Verilog)
    std::string directiveText;   ///< the directives file the DSL assembled
    std::string reportText;      ///< schedule/resource report
    ResourceEstimate resources;  ///< core resources incl. interface logic
    Program program;             ///< executable model for system simulation
    double toolSeconds = 0.0;    ///< deterministic simulated Vivado HLS time

    HlsResult() : netlist("uninitialised") {}
};

/// The HLS engine facade: verify -> schedule -> bind -> codegen -> price.
/// This is the component the DSL's `end` keyword invokes per node (paper
/// Section IV-B step 4: "the tool invokes the synthesis of the hardware
/// core through Vivado HLS").
class HlsEngine {
public:
    explicit HlsEngine(CostModel costModel = {}, LatencyModel latencyModel = {})
        : cost_(costModel), latency_(latencyModel) {}

    [[nodiscard]] HlsResult synthesize(const Kernel& kernel,
                                       const Directives& directives) const;

private:
    CostModel cost_;
    LatencyModel latency_;
};

} // namespace socgen::hls
