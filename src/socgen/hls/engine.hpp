#pragma once

#include "socgen/hls/binding.hpp"
#include "socgen/hls/bytecode.hpp"
#include "socgen/hls/directives.hpp"
#include "socgen/hls/ir.hpp"
#include "socgen/hls/network.hpp"
#include "socgen/hls/resources.hpp"
#include "socgen/hls/schedule.hpp"
#include "socgen/rtl/netlist.hpp"

#include <map>
#include <string>
#include <vector>

namespace socgen::hls {

/// Everything one HLS run produces for a kernel — the equivalent of a
/// Vivado HLS solution directory.
struct HlsResult {
    std::string kernelName;
    KernelSchedule schedule;
    KernelBinding binding;
    rtl::Netlist netlist;
    std::string vhdl;            ///< emitted RTL text (VHDL)
    std::string verilog;         ///< emitted RTL text (Verilog)
    std::string directiveText;   ///< the directives file the DSL assembled
    std::string reportText;      ///< schedule/resource report
    ResourceEstimate resources;  ///< core resources incl. interface logic
    Program program;             ///< executable model for system simulation
    double toolSeconds = 0.0;    ///< deterministic simulated Vivado HLS time

    HlsResult() : netlist("uninitialised") {}
};

/// The HLS engine facade: verify -> schedule -> bind -> codegen -> price.
/// This is the component the DSL's `end` keyword invokes per node (paper
/// Section IV-B step 4: "the tool invokes the synthesis of the hardware
/// core through Vivado HLS").
class HlsEngine {
public:
    explicit HlsEngine(CostModel costModel = {}, LatencyModel latencyModel = {})
        : cost_(costModel), latency_(latencyModel) {}

    [[nodiscard]] HlsResult synthesize(const Kernel& kernel,
                                       const Directives& directives) const;

    /// Assembles a network-level HlsResult from already synthesized
    /// per-process results (`processResults` parallel to
    /// `network.processes()`): a dataflow wrapper netlist instantiating
    /// every process netlist plus one rtl::makeFifo per channel with the
    /// handshake glue between them, emitted HDL for the wrapper, a fused
    /// network Program for system simulation, and summed resources. The
    /// assembly is cheap and deterministic — per-process synthesis is
    /// where the tool time goes, which is why the flow caches processes
    /// individually and re-assembles on every run. For a trivial network
    /// this returns the sole process result unchanged (the legacy path).
    [[nodiscard]] HlsResult assembleNetwork(
        const ProcessNetwork& network,
        const std::vector<const HlsResult*>& processResults) const;

    /// Convenience: synthesizes every process (directives looked up by
    /// process name, falling back to `defaults`) and assembles.
    [[nodiscard]] HlsResult synthesize(
        const ProcessNetwork& network,
        const std::map<std::string, Directives>& processDirectives = {},
        const Directives& defaults = {}) const;

private:
    CostModel cost_;
    LatencyModel latency_;
};

} // namespace socgen::hls
