#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace socgen::hls {

/// The kernel intermediate representation consumed by the HLS engine.
///
/// In the paper, each hardware node comes with "a synthesizable C/C++
/// description compliant with Vivado HLS". We do not parse C; instead a
/// kernel is constructed with KernelBuilder as a small structured program
/// (scalars, arrays, counted loops, ifs, stream reads/writes). The same
/// IR is (a) scheduled/bound/lowered to RTL by the engine and (b)
/// executed by the bytecode interpreter inside the SoC simulator, so a
/// generated system computes real results with schedule-derived timing.

using ExprId = std::uint32_t;
using StmtId = std::uint32_t;
using VarId = std::uint32_t;
using ArrayId = std::uint32_t;
using PortId = std::uint32_t;
inline constexpr std::uint32_t kNoId = 0xffffffffU;

/// How a kernel port is exposed to the system (paper Section III: `i` =
/// AXI-Lite memory-mapped, `is` = AXI-Stream).
enum class PortKind {
    ScalarIn,   ///< AXI-Lite write-register argument
    ScalarOut,  ///< AXI-Lite read-register result ("return" in Listing 2)
    StreamIn,   ///< AXI-Stream slave
    StreamOut,  ///< AXI-Stream master
};

[[nodiscard]] std::string_view portKindName(PortKind kind);
[[nodiscard]] bool isStreamPort(PortKind kind);

struct KernelPort {
    std::string name;
    PortKind kind = PortKind::ScalarIn;
    unsigned width = 32;
};

struct KernelVar {
    std::string name;
    unsigned width = 32;
};

struct KernelArray {
    std::string name;
    std::size_t depth = 0;
    unsigned width = 32;
};

enum class BinOp {
    Add, Sub, Mul, Div, Mod,
    And, Or, Xor, Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,
    Min, Max,
};
enum class UnOp { Not, Neg };

[[nodiscard]] std::string_view binOpName(BinOp op);

enum class ExprKind {
    Const,       ///< value
    Var,         ///< var
    Arg,         ///< port (ScalarIn)
    ArrayLoad,   ///< array, a = index
    StreamRead,  ///< port (StreamIn); side-effecting, at most one per statement
    Unary,       ///< uop, a
    Binary,      ///< bop, a, b
    Select,      ///< a = cond, b = when-nonzero, c = when-zero
};

struct Expr {
    ExprKind kind = ExprKind::Const;
    std::int64_t value = 0;   ///< Const
    BinOp bop = BinOp::Add;
    UnOp uop = UnOp::Not;
    VarId var = kNoId;
    PortId port = kNoId;
    ArrayId array = kNoId;
    ExprId a = kNoId;
    ExprId b = kNoId;
    ExprId c = kNoId;
};

enum class StmtKind {
    Assign,       ///< var = expr
    ArrayStore,   ///< array[index] = value
    StreamWrite,  ///< port <- value
    SetResult,    ///< ScalarOut port <- value
    For,          ///< for (var = 0; var < bound; ++var) body
    If,           ///< if (cond) then else
};

struct Stmt {
    StmtKind kind = StmtKind::Assign;
    VarId var = kNoId;
    PortId port = kNoId;
    ArrayId array = kNoId;
    ExprId index = kNoId;   ///< ArrayStore index
    ExprId value = kNoId;   ///< Assign/ArrayStore/StreamWrite/SetResult value; For bound; If cond
    std::vector<StmtId> body;      ///< For body / If then-branch
    std::vector<StmtId> elseBody;  ///< If else-branch
};

class Kernel;

/// Wire-transport decoder (defined in serialize.cpp); a friend of Kernel
/// because it reconstitutes the IR vectors directly instead of replaying
/// builder calls.
[[nodiscard]] Kernel decodeKernel(std::string_view bytes);

/// A complete kernel: signature (ports), locals, and a structured body.
/// Construct via KernelBuilder; validate with hls::verify().
class Kernel {
public:
    explicit Kernel(std::string name) : name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const { return name_; }

    [[nodiscard]] const std::vector<KernelPort>& ports() const { return ports_; }
    [[nodiscard]] const std::vector<KernelVar>& vars() const { return vars_; }
    [[nodiscard]] const std::vector<KernelArray>& arrays() const { return arrays_; }
    [[nodiscard]] const std::vector<Expr>& exprs() const { return exprs_; }
    [[nodiscard]] const std::vector<Stmt>& stmts() const { return stmts_; }
    [[nodiscard]] const std::vector<StmtId>& body() const { return body_; }

    [[nodiscard]] const KernelPort& port(PortId id) const;
    [[nodiscard]] const Expr& expr(ExprId id) const;
    [[nodiscard]] const Stmt& stmt(StmtId id) const;

    /// Port lookup by name; throws HlsError if absent.
    [[nodiscard]] PortId portId(std::string_view name) const;
    [[nodiscard]] bool hasPort(std::string_view name) const;

    /// Total statement count including nested bodies (proxy for kernel
    /// complexity; feeds the deterministic tool-time model).
    [[nodiscard]] std::size_t statementCount() const;

private:
    friend class KernelBuilder;
    friend Kernel decodeKernel(std::string_view bytes);

    std::string name_;
    std::vector<KernelPort> ports_;
    std::vector<KernelVar> vars_;
    std::vector<KernelArray> arrays_;
    std::vector<Expr> exprs_;
    std::vector<Stmt> stmts_;
    std::vector<StmtId> body_;
};

/// Fluent builder for Kernel bodies. Loops/ifs are built with explicit
/// scope helpers:
///
///   KernelBuilder kb("histogram");
///   auto px  = kb.streamIn("grayScaleImage", 8);
///   auto out = kb.streamOut("histogram", 32);
///   auto n   = kb.scalarIn("npixels", 32);
///   auto h   = kb.array("hist", 256, 32);
///   auto i   = kb.var("i", 32);
///   kb.forLoop(i, kb.arg(n));
///     kb.arrayStore(h, kb.read(px), ...);
///   kb.endLoop();
class KernelBuilder {
public:
    explicit KernelBuilder(std::string name) : kernel_(std::move(name)) {}

    // -- signature ---------------------------------------------------------
    PortId scalarIn(std::string name, unsigned width = 32);
    PortId scalarOut(std::string name, unsigned width = 32);
    PortId streamIn(std::string name, unsigned width = 32);
    PortId streamOut(std::string name, unsigned width = 32);
    VarId var(std::string name, unsigned width = 32);
    ArrayId array(std::string name, std::size_t depth, unsigned width = 32);

    // -- expressions -------------------------------------------------------
    ExprId c(std::int64_t value);                       ///< constant
    ExprId v(VarId var);                                ///< variable read
    ExprId arg(PortId port);                            ///< scalar argument
    ExprId load(ArrayId array, ExprId index);
    ExprId read(PortId streamInPort);                   ///< blocking stream read
    ExprId un(UnOp op, ExprId a);
    ExprId bin(BinOp op, ExprId a, ExprId b);
    ExprId select(ExprId cond, ExprId whenNonZero, ExprId whenZero);

    ExprId add(ExprId a, ExprId b) { return bin(BinOp::Add, a, b); }
    ExprId sub(ExprId a, ExprId b) { return bin(BinOp::Sub, a, b); }
    ExprId mul(ExprId a, ExprId b) { return bin(BinOp::Mul, a, b); }
    ExprId div(ExprId a, ExprId b) { return bin(BinOp::Div, a, b); }
    ExprId mod(ExprId a, ExprId b) { return bin(BinOp::Mod, a, b); }
    ExprId shr(ExprId a, ExprId b) { return bin(BinOp::Shr, a, b); }
    ExprId shl(ExprId a, ExprId b) { return bin(BinOp::Shl, a, b); }
    ExprId lt(ExprId a, ExprId b) { return bin(BinOp::Lt, a, b); }
    ExprId le(ExprId a, ExprId b) { return bin(BinOp::Le, a, b); }
    ExprId gt(ExprId a, ExprId b) { return bin(BinOp::Gt, a, b); }
    ExprId ge(ExprId a, ExprId b) { return bin(BinOp::Ge, a, b); }
    ExprId eq(ExprId a, ExprId b) { return bin(BinOp::Eq, a, b); }
    ExprId ne(ExprId a, ExprId b) { return bin(BinOp::Ne, a, b); }

    // -- statements (appended to the innermost open scope) ------------------
    void assign(VarId var, ExprId value);
    void arrayStore(ArrayId array, ExprId index, ExprId value);
    void write(PortId streamOutPort, ExprId value);
    void setResult(PortId scalarOutPort, ExprId value);

    void forLoop(VarId inductionVar, ExprId bound);
    void endLoop();
    void ifBegin(ExprId cond);
    void elseBegin();
    void endIf();

    /// Finalizes and validates the kernel; the builder must not be reused.
    [[nodiscard]] Kernel build();

private:
    ExprId addExpr(Expr expr);
    StmtId addStmt(Stmt stmt);
    std::vector<StmtId>& currentBlock();

    struct Scope {
        StmtId stmt;
        bool inElse = false;
    };

    Kernel kernel_;
    std::vector<Scope> scopes_;
    bool built_ = false;
};

} // namespace socgen::hls
