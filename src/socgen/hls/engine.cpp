#include "socgen/hls/engine.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/hls/codegen.hpp"
#include "socgen/hls/optimize.hpp"
#include "socgen/hls/unroll.hpp"
#include "socgen/hls/verify.hpp"
#include "socgen/rtl/compose.hpp"
#include "socgen/rtl/primitives.hpp"
#include "socgen/rtl/verilog.hpp"
#include "socgen/rtl/vhdl.hpp"

#include <sstream>

namespace socgen::hls {

HlsResult HlsEngine::synthesize(const Kernel& kernel, const Directives& directives) const {
    Logger::global().info("hls: synthesizing kernel " + kernel.name());
    verify(kernel);

    // Front-end optimisation (constant folding, algebraic identities,
    // dead-code elimination) before scheduling, as a real HLS tool does.
    OptStats optStats;
    UnrollStats unrollStats;
    Kernel transformed(kernel.name());
    const Kernel* source = &kernel;
    if (!directives.unrollFactors.empty()) {
        transformed = unrollLoops(*source, directives.unrollFactors, &unrollStats);
        source = &transformed;
    }
    if (directives.enableOptimizer) {
        transformed = optimize(*source, &optStats);
        source = &transformed;
    }
    const Kernel& k = *source;
    verify(k);

    HlsResult result;
    result.kernelName = k.name();
    result.schedule = scheduleKernel(k, directives, latency_);
    result.binding = bindKernel(result.schedule, latency_);
    result.netlist = generateRtl(k, result.schedule, result.binding);
    result.vhdl = rtl::VhdlEmitter{}.emit(result.netlist);
    result.verilog = rtl::VerilogEmitter{}.emit(result.netlist);
    result.directiveText = directives.render(k.name());
    result.program = compileKernel(k, result.schedule);

    // Core resources: datapath/control netlist plus interface logic for
    // each port, plus fixed wrapper overhead.
    result.resources = cost_.priceNetlist(result.netlist);
    for (const auto& port : kernel.ports()) {
        if (isStreamPort(port.kind)) {
            result.resources += cost_.axiStreamPortCost(port.width);
        } else {
            result.resources += cost_.axiLitePortCost(port.width);
        }
    }
    result.resources += cost_.coreOverhead();

    std::ostringstream report;
    report << result.schedule.report(k);
    if (!directives.unrollFactors.empty()) {
        report << format("unroll: %zu loops unrolled, %zu copies, %zu epilogue iters\n",
                         unrollStats.loopsUnrolled, unrollStats.copiesEmitted,
                         unrollStats.epilogueIterations);
    }
    if (directives.enableOptimizer) {
        report << format(
            "optimizer: %zu folded, %zu simplified, %zu strength-reduced, "
            "%zu removed\n",
            optStats.foldedConstants, optStats.simplifiedAlgebra,
            optStats.strengthReduced, optStats.removedStatements);
    }
    report << format("functional units: %d mul, %d div\n", result.binding.mulUnits,
                     result.binding.divUnits);
    report << format("netlist: %zu cells, %zu nets\n", result.netlist.cells().size(),
                     result.netlist.nets().size());
    report << "resources (incl. interfaces): " << result.resources.str() << '\n';
    result.reportText = report.str();

    // Deterministic simulated Vivado HLS runtime: parsing + per-statement
    // scheduling effort + per-cell RTL elaboration.
    result.toolSeconds = 12.0 + 1.4 * static_cast<double>(k.statementCount()) +
                         0.035 * static_cast<double>(result.netlist.cells().size());

    Logger::global().info(format("hls: %s done (%.1f tool-seconds, %s)",
                                 k.name().c_str(), result.toolSeconds,
                                 result.resources.str().c_str()));
    return result;
}

namespace {

/// Port id of `name` in a compiled program's signature table.
PortId programPortId(const Program& program, const std::string& name) {
    for (PortId id = 0; id < program.ports.size(); ++id) {
        if (program.ports[id].name == name) {
            return id;
        }
    }
    throw HlsError("network assembly: process program '" + program.kernelName +
                   "' has no port '" + name + "'");
}

} // namespace

HlsResult HlsEngine::assembleNetwork(
    const ProcessNetwork& network,
    const std::vector<const HlsResult*>& processResults) const {
    network.verify();
    require(processResults.size() == network.processes().size(),
            "network assembly: one result per process required");
    for (const HlsResult* r : processResults) {
        require(r != nullptr, "network assembly: null process result");
    }

    // The trivial network is the legacy single-kernel node: its process
    // result IS the node result, byte for byte.
    if (network.trivial()) {
        return *processResults[0];
    }

    const auto& processes = network.processes();
    const auto& channels = network.channels();

    // --- dataflow wrapper netlist -----------------------------------------
    // Conventions match the per-kernel code generator exactly (ap_start /
    // ap_done, <port>_tdata/_tvalid/_tready triplets), so the SoC wrapper
    // hosts a network core without knowing it is one.
    rtl::Netlist wrapper(sanitizeIdentifier(network.name()));
    const rtl::NetId apStart = wrapper.addNet("ap_start", 1);
    wrapper.addPort("ap_start", rtl::PortDir::In, 1, apStart);

    // One FIFO instance per channel; flattened first so its face nets
    // exist for the process bindings below.
    hls::ResourceEstimate fifoResources;
    std::vector<std::map<std::string, rtl::NetId>> fifoNets;
    fifoNets.reserve(channels.size());
    for (const NetworkChannel& c : channels) {
        const rtl::Netlist fifo =
            rtl::makeFifo("fifo_" + sanitizeIdentifier(c.name), c.width, c.depth,
                          c.initialTokens);
        fifoResources += cost_.priceNetlist(fifo);
        fifoNets.push_back(
            flattenInto(wrapper, fifo, "fifo_" + sanitizeIdentifier(c.name) + "_"));
    }

    // Flatten each process netlist, wiring its channel-side stream ports
    // onto the FIFO faces and fanning ap_start out to every process.
    std::vector<std::map<std::string, rtl::NetId>> processNets;
    processNets.reserve(processes.size());
    for (std::size_t i = 0; i < processes.size(); ++i) {
        const Process& p = processes[i];
        std::map<std::string, rtl::NetId> bind;
        bind["ap_start"] = apStart;
        for (std::size_t c = 0; c < channels.size(); ++c) {
            const NetworkChannel& ch = channels[c];
            if (ch.fromProcess == p.name) {
                const std::string base = sanitizeIdentifier(ch.fromPort);
                bind[base + "_tdata"] = fifoNets[c].at("in_tdata");
                bind[base + "_tvalid"] = fifoNets[c].at("in_tvalid");
                bind[base + "_tready"] = fifoNets[c].at("in_tready");
            }
            if (ch.toProcess == p.name) {
                const std::string base = sanitizeIdentifier(ch.toPort);
                bind[base + "_tdata"] = fifoNets[c].at("out_tdata");
                bind[base + "_tvalid"] = fifoNets[c].at("out_tvalid");
                bind[base + "_tready"] = fifoNets[c].at("out_tready");
            }
        }
        processNets.push_back(flattenInto(wrapper, processResults[i]->netlist,
                                          sanitizeIdentifier(p.name) + "_", bind));
    }

    // External ports, in binding order, under their network-level names.
    for (const NetworkBinding& b : network.bindings()) {
        const std::size_t pi = network.processIndex(b.process);
        const Process& p = processes[pi];
        const KernelPort& port = p.kernel.port(p.kernel.portId(b.processPort));
        const std::string inner = sanitizeIdentifier(b.processPort);
        const std::string outer = sanitizeIdentifier(b.networkPort);
        const auto net = [&](const std::string& suffix) {
            return processNets[pi].at(inner + suffix);
        };
        switch (port.kind) {
        case PortKind::StreamIn:
            wrapper.addPort(outer + "_tdata", rtl::PortDir::In, port.width, net("_tdata"));
            wrapper.addPort(outer + "_tvalid", rtl::PortDir::In, 1, net("_tvalid"));
            wrapper.addPort(outer + "_tready", rtl::PortDir::Out, 1, net("_tready"));
            break;
        case PortKind::StreamOut:
            wrapper.addPort(outer + "_tready", rtl::PortDir::In, 1, net("_tready"));
            wrapper.addPort(outer + "_tdata", rtl::PortDir::Out, port.width, net("_tdata"));
            wrapper.addPort(outer + "_tvalid", rtl::PortDir::Out, 1, net("_tvalid"));
            break;
        case PortKind::ScalarIn:
            wrapper.addPort(outer, rtl::PortDir::In, port.width, processNets[pi].at(inner));
            break;
        case PortKind::ScalarOut:
            wrapper.addPort(outer, rtl::PortDir::Out, port.width, processNets[pi].at(inner));
            break;
        }
    }

    // ap_done = AND of every process's done.
    rtl::NetId done = processNets[0].at("ap_done");
    for (std::size_t i = 1; i < processes.size(); ++i) {
        const rtl::NetId next = wrapper.addNet(format("done_and_%zu", i), 1);
        wrapper.addCell(format("done_and_%zu", i), rtl::CellKind::And, 1,
                        {done, processNets[i].at("ap_done")}, {next});
        done = next;
    }
    wrapper.addPort("ap_done", rtl::PortDir::Out, 1, done);
    wrapper.check();

    // --- fused executable model -------------------------------------------
    Program program;
    program.kernelName = network.name();
    program.ports = network.externalPorts();
    program.instrs.push_back(Instr{});  // lone Halt; network mode never runs it
    for (std::size_t i = 0; i < processes.size(); ++i) {
        program.processNames.push_back(processes[i].name);
        program.processPrograms.push_back(processResults[i]->program);
    }
    for (const NetworkChannel& c : channels) {
        ProgramChannel pc;
        pc.name = c.name;
        pc.fromProcess = static_cast<std::uint32_t>(network.processIndex(c.fromProcess));
        pc.fromPort = programPortId(program.processPrograms[pc.fromProcess], c.fromPort);
        pc.toProcess = static_cast<std::uint32_t>(network.processIndex(c.toProcess));
        pc.toPort = programPortId(program.processPrograms[pc.toProcess], c.toPort);
        pc.width = c.width;
        pc.depth = c.depth;
        pc.initialTokens = c.initialTokens;
        program.channels.push_back(std::move(pc));
    }
    for (PortId ext = 0; ext < network.bindings().size(); ++ext) {
        const NetworkBinding& b = network.bindings()[ext];
        ProgramBinding pb;
        pb.networkPort = ext;
        pb.process = static_cast<std::uint32_t>(network.processIndex(b.process));
        pb.processPort = programPortId(program.processPrograms[pb.process], b.processPort);
        program.bindings.push_back(pb);
    }

    // --- result ------------------------------------------------------------
    HlsResult result;
    result.kernelName = network.name();
    result.netlist = std::move(wrapper);
    result.vhdl = rtl::VhdlEmitter{}.emit(result.netlist);
    result.verilog = rtl::VerilogEmitter{}.emit(result.netlist);
    result.program = std::move(program);
    for (const HlsResult* r : processResults) {
        result.resources += r->resources;
    }
    result.resources += fifoResources;

    std::ostringstream report;
    report << format("process network %s: %zu processes, %zu channels\n",
                     network.name().c_str(), processes.size(), channels.size());
    for (std::size_t i = 0; i < processes.size(); ++i) {
        report << format("  process %-16s kernel %-18s %.1f tool-s, %s\n",
                         processes[i].name.c_str(),
                         processes[i].kernel.name().c_str(),
                         processResults[i]->toolSeconds,
                         processResults[i]->resources.str().c_str());
    }
    for (const NetworkChannel& c : channels) {
        report << format("  channel %-16s %s.%s -> %s.%s (%u bits, depth %u)\n",
                         c.name.c_str(), c.fromProcess.c_str(), c.fromPort.c_str(),
                         c.toProcess.c_str(), c.toPort.c_str(), c.width, c.depth);
    }
    report << format("dataflow wrapper: %zu cells, %zu nets\n",
                     result.netlist.cells().size(), result.netlist.nets().size());
    report << "resources (incl. FIFOs): " << result.resources.str() << '\n';
    result.reportText = report.str();

    std::ostringstream directiveText;
    for (std::size_t i = 0; i < processes.size(); ++i) {
        directiveText << "## process " << processes[i].name << '\n'
                      << processResults[i]->directiveText;
    }
    result.directiveText = directiveText.str();

    // Network assembly is pure structural glue — deterministic and cheap
    // next to per-process synthesis (which is what gets cached).
    result.toolSeconds = 2.0 + 0.6 * static_cast<double>(processes.size()) +
                         0.2 * static_cast<double>(channels.size()) +
                         0.01 * static_cast<double>(result.netlist.cells().size());
    return result;
}

HlsResult HlsEngine::synthesize(const ProcessNetwork& network,
                                const std::map<std::string, Directives>& processDirectives,
                                const Directives& defaults) const {
    network.verify();
    std::vector<HlsResult> results;
    results.reserve(network.processes().size());
    for (const Process& p : network.processes()) {
        const auto it = processDirectives.find(p.name);
        results.push_back(
            synthesize(p.kernel, it != processDirectives.end() ? it->second : defaults));
    }
    std::vector<const HlsResult*> ptrs;
    ptrs.reserve(results.size());
    for (const HlsResult& r : results) {
        ptrs.push_back(&r);
    }
    return assembleNetwork(network, ptrs);
}

} // namespace socgen::hls
