#include "socgen/hls/engine.hpp"

#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/hls/codegen.hpp"
#include "socgen/hls/optimize.hpp"
#include "socgen/hls/unroll.hpp"
#include "socgen/hls/verify.hpp"
#include "socgen/rtl/verilog.hpp"
#include "socgen/rtl/vhdl.hpp"

#include <sstream>

namespace socgen::hls {

HlsResult HlsEngine::synthesize(const Kernel& kernel, const Directives& directives) const {
    Logger::global().info("hls: synthesizing kernel " + kernel.name());
    verify(kernel);

    // Front-end optimisation (constant folding, algebraic identities,
    // dead-code elimination) before scheduling, as a real HLS tool does.
    OptStats optStats;
    UnrollStats unrollStats;
    Kernel transformed(kernel.name());
    const Kernel* source = &kernel;
    if (!directives.unrollFactors.empty()) {
        transformed = unrollLoops(*source, directives.unrollFactors, &unrollStats);
        source = &transformed;
    }
    if (directives.enableOptimizer) {
        transformed = optimize(*source, &optStats);
        source = &transformed;
    }
    const Kernel& k = *source;
    verify(k);

    HlsResult result;
    result.kernelName = k.name();
    result.schedule = scheduleKernel(k, directives, latency_);
    result.binding = bindKernel(result.schedule, latency_);
    result.netlist = generateRtl(k, result.schedule, result.binding);
    result.vhdl = rtl::VhdlEmitter{}.emit(result.netlist);
    result.verilog = rtl::VerilogEmitter{}.emit(result.netlist);
    result.directiveText = directives.render(k.name());
    result.program = compileKernel(k, result.schedule);

    // Core resources: datapath/control netlist plus interface logic for
    // each port, plus fixed wrapper overhead.
    result.resources = cost_.priceNetlist(result.netlist);
    for (const auto& port : kernel.ports()) {
        if (isStreamPort(port.kind)) {
            result.resources += cost_.axiStreamPortCost(port.width);
        } else {
            result.resources += cost_.axiLitePortCost(port.width);
        }
    }
    result.resources += cost_.coreOverhead();

    std::ostringstream report;
    report << result.schedule.report(k);
    if (!directives.unrollFactors.empty()) {
        report << format("unroll: %zu loops unrolled, %zu copies, %zu epilogue iters\n",
                         unrollStats.loopsUnrolled, unrollStats.copiesEmitted,
                         unrollStats.epilogueIterations);
    }
    if (directives.enableOptimizer) {
        report << format(
            "optimizer: %zu folded, %zu simplified, %zu strength-reduced, "
            "%zu removed\n",
            optStats.foldedConstants, optStats.simplifiedAlgebra,
            optStats.strengthReduced, optStats.removedStatements);
    }
    report << format("functional units: %d mul, %d div\n", result.binding.mulUnits,
                     result.binding.divUnits);
    report << format("netlist: %zu cells, %zu nets\n", result.netlist.cells().size(),
                     result.netlist.nets().size());
    report << "resources (incl. interfaces): " << result.resources.str() << '\n';
    result.reportText = report.str();

    // Deterministic simulated Vivado HLS runtime: parsing + per-statement
    // scheduling effort + per-cell RTL elaboration.
    result.toolSeconds = 12.0 + 1.4 * static_cast<double>(k.statementCount()) +
                         0.035 * static_cast<double>(result.netlist.cells().size());

    Logger::global().info(format("hls: %s done (%.1f tool-seconds, %s)",
                                 k.name().c_str(), result.toolSeconds,
                                 result.resources.str().c_str()));
    return result;
}

} // namespace socgen::hls
