#include "socgen/hls/dfg.hpp"

#include "socgen/common/error.hpp"

#include <algorithm>
#include <map>
#include <optional>

namespace socgen::hls {

namespace {

unsigned bitsFor(std::int64_t value) {
    if (value < 0) {
        return 32;
    }
    unsigned bits = 1;
    while ((value >> bits) != 0 && bits < 63) {
        ++bits;
    }
    return bits;
}

/// Builds ops for one block, tracking intra-block def-use through
/// variables, value widths, and memory/stream ordering hazards.
class DfgBuilder {
public:
    DfgBuilder(const Kernel& kernel, LoopLatencyFn loopLatency, void* ctx)
        : k_(kernel), loopLatency_(loopLatency), ctx_(ctx) {}

    Dfg run(std::span<const StmtId> block) {
        for (StmtId id : block) {
            visitStmt(id);
        }
        return std::move(dfg_);
    }

private:
    struct ValueRef {
        std::optional<OpId> op;          ///< producing op, if any
        std::vector<VarId> externalVars; ///< block-external var reads involved
        unsigned width = 32;
    };

    OpId addOp(DfgOp op) {
        dfg_.ops.push_back(std::move(op));
        return static_cast<OpId>(dfg_.ops.size() - 1);
    }

    static void addDep(DfgOp& op, const ValueRef& value) {
        if (value.op) {
            if (std::find(op.deps.begin(), op.deps.end(), *value.op) == op.deps.end()) {
                op.deps.push_back(*value.op);
            }
        }
        for (VarId v : value.externalVars) {
            if (std::find(op.varReads.begin(), op.varReads.end(), v) == op.varReads.end()) {
                op.varReads.push_back(v);
            }
        }
    }

    void addOrderDep(DfgOp& op, std::optional<OpId> previous) {
        if (previous &&
            std::find(op.deps.begin(), op.deps.end(), *previous) == op.deps.end()) {
            op.deps.push_back(*previous);
        }
    }

    ValueRef visitExpr(ExprId id) {
        const Expr& e = k_.expr(id);
        switch (e.kind) {
        case ExprKind::Const: {
            ValueRef ref;
            ref.width = bitsFor(e.value);
            return ref;
        }
        case ExprKind::Arg: {
            ValueRef ref;
            ref.width = k_.port(e.port).width;
            return ref;  // scalar args are stable register outputs
        }
        case ExprKind::Var: {
            const auto it = varDef_.find(e.var);
            if (it != varDef_.end()) {
                return it->second;
            }
            ValueRef ref;
            ref.externalVars.push_back(e.var);
            ref.width = k_.vars()[e.var].width;
            return ref;
        }
        case ExprKind::ArrayLoad: {
            const ValueRef index = visitExpr(e.a);
            DfgOp op;
            op.kind = OpKind::ArrayLoad;
            op.array = e.array;
            op.width = k_.arrays()[e.array].width;
            op.expr = id;
            op.indexExpr = e.a;
            addDep(op, index);
            addOrderDep(op, lastStore_[e.array]);  // store -> load hazard
            const unsigned width = op.width;
            const OpId opId = addOp(std::move(op));
            lastLoad_[e.array] = opId;
            return ValueRef{opId, {}, width};
        }
        case ExprKind::StreamRead: {
            DfgOp op;
            op.kind = OpKind::StreamRead;
            op.port = e.port;
            op.width = k_.port(e.port).width;
            op.expr = id;
            addOrderDep(op, lastStreamOp_[e.port]);  // reads stay in order
            const unsigned width = op.width;
            const OpId opId = addOp(std::move(op));
            lastStreamOp_[e.port] = opId;
            return ValueRef{opId, {}, width};
        }
        case ExprKind::Unary: {
            const ValueRef a = visitExpr(e.a);
            DfgOp op;
            op.kind = OpKind::Unary;
            op.uop = e.uop;
            op.width = a.width;
            op.expr = id;
            addDep(op, a);
            const unsigned width = op.width;
            return ValueRef{addOp(std::move(op)), {}, width};
        }
        case ExprKind::Binary: {
            const ValueRef a = visitExpr(e.a);
            const ValueRef b = visitExpr(e.b);
            DfgOp op;
            op.kind = OpKind::Binary;
            op.bop = e.bop;
            op.width = std::max(a.width, b.width);
            op.expr = id;
            addDep(op, a);
            addDep(op, b);
            const unsigned width = op.width;
            return ValueRef{addOp(std::move(op)), {}, width};
        }
        case ExprKind::Select: {
            const ValueRef cond = visitExpr(e.a);
            const ValueRef t = visitExpr(e.b);
            const ValueRef f = visitExpr(e.c);
            DfgOp op;
            op.kind = OpKind::Select;
            op.width = std::max(t.width, f.width);
            op.expr = id;
            addDep(op, cond);
            addDep(op, t);
            addDep(op, f);
            const unsigned width = op.width;
            return ValueRef{addOp(std::move(op)), {}, width};
        }
        }
        throw HlsError("unreachable expression kind");
    }

    void visitStmt(StmtId id) {
        const Stmt& s = k_.stmt(id);
        switch (s.kind) {
        case StmtKind::Assign: {
            ValueRef value = visitExpr(s.value);
            if (value.op) {
                dfg_.ops[*value.op].assignsVar = s.var;
            } else {
                // Bare register transfer (var = const/var/arg): still an op
                // so binding/codegen see the write and recurrences resolve.
                DfgOp op;
                op.kind = OpKind::Move;
                op.width = k_.vars()[s.var].width;
                op.assignsVar = s.var;
                op.valueExpr = s.value;
                addDep(op, value);
                value.op = addOp(std::move(op));
                value.externalVars.clear();
            }
            value.width = k_.vars()[s.var].width;
            varDef_[s.var] = std::move(value);
            break;
        }
        case StmtKind::ArrayStore: {
            const ValueRef index = visitExpr(s.index);
            const ValueRef value = visitExpr(s.value);
            DfgOp op;
            op.kind = OpKind::ArrayStore;
            op.array = s.array;
            op.width = k_.arrays()[s.array].width;
            op.indexExpr = s.index;
            op.valueExpr = s.value;
            addDep(op, index);
            addDep(op, value);
            addOrderDep(op, lastStore_[s.array]);  // stores stay ordered
            addOrderDep(op, lastLoad_[s.array]);   // load -> store antidep
            lastStore_[s.array] = addOp(std::move(op));
            break;
        }
        case StmtKind::StreamWrite: {
            const ValueRef value = visitExpr(s.value);
            DfgOp op;
            op.kind = OpKind::StreamWrite;
            op.port = s.port;
            op.width = k_.port(s.port).width;
            op.valueExpr = s.value;
            addDep(op, value);
            addOrderDep(op, lastStreamOp_[s.port]);
            lastStreamOp_[s.port] = addOp(std::move(op));
            break;
        }
        case StmtKind::SetResult: {
            const ValueRef value = visitExpr(s.value);
            DfgOp op;
            op.kind = OpKind::SetResult;
            op.port = s.port;
            op.width = k_.port(s.port).width;
            op.valueExpr = s.value;
            addDep(op, value);
            addOp(std::move(op));
            break;
        }
        case StmtKind::For: {
            DfgOp op;
            op.kind = OpKind::LoopNest;
            op.loop = id;
            op.loopLatency = loopLatency_ != nullptr ? loopLatency_(ctx_, id) : 1;
            addDep(op, visitExpr(s.value));  // bound expression
            // A loop nest acts as a full barrier against memory and
            // stream reordering.
            const OpId opId = addOp(std::move(op));
            for (auto& [array, last] : lastStore_) {
                (void)array;
                addOrderDep(dfg_.ops[opId], last);
                last = opId;
            }
            for (auto& [array, last] : lastLoad_) {
                (void)array;
                addOrderDep(dfg_.ops[opId], last);
                last = opId;
            }
            for (auto& [port, last] : lastStreamOp_) {
                (void)port;
                addOrderDep(dfg_.ops[opId], last);
                last = opId;
            }
            // Loop bodies may redefine variables; conservatively forget
            // intra-block definitions the loop could overwrite.
            varDef_.clear();
            break;
        }
        case StmtKind::If: {
            const ValueRef cond = visitExpr(s.value);
            // If-conversion: both branches contribute ops; their sinks
            // additionally depend on the condition.
            const auto visitBranch = [&](const std::vector<StmtId>& branch) {
                for (StmtId inner : branch) {
                    const std::size_t firstNew = dfg_.ops.size();
                    visitStmt(inner);
                    for (std::size_t i = firstNew; i < dfg_.ops.size(); ++i) {
                        addDep(dfg_.ops[i], cond);
                    }
                }
            };
            visitBranch(s.body);
            visitBranch(s.elseBody);
            break;
        }
        }
    }

    const Kernel& k_;
    LoopLatencyFn loopLatency_;
    void* ctx_;
    Dfg dfg_;
    std::map<VarId, ValueRef> varDef_;
    std::map<ArrayId, std::optional<OpId>> lastLoad_;
    std::map<ArrayId, std::optional<OpId>> lastStore_;
    std::map<PortId, std::optional<OpId>> lastStreamOp_;
};

} // namespace

std::int64_t Dfg::criticalPath(const std::vector<std::int64_t>& latencyOf) const {
    require(latencyOf.size() == ops.size(), "latency table size mismatch");
    std::vector<std::int64_t> finish(ops.size(), 0);
    std::int64_t longest = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        std::int64_t start = 0;
        for (OpId dep : ops[i].deps) {
            start = std::max(start, finish[dep]);
        }
        finish[i] = start + latencyOf[i];
        longest = std::max(longest, finish[i]);
    }
    return longest;
}

Dfg buildDfg(const Kernel& kernel, std::span<const StmtId> block,
             LoopLatencyFn loopLatency, void* ctx) {
    return DfgBuilder(kernel, loopLatency, ctx).run(block);
}

} // namespace socgen::hls
