#include "socgen/hls/ir.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <algorithm>

namespace socgen::hls {

std::string_view portKindName(PortKind kind) {
    switch (kind) {
    case PortKind::ScalarIn: return "scalar-in";
    case PortKind::ScalarOut: return "scalar-out";
    case PortKind::StreamIn: return "stream-in";
    case PortKind::StreamOut: return "stream-out";
    }
    return "?";
}

bool isStreamPort(PortKind kind) {
    return kind == PortKind::StreamIn || kind == PortKind::StreamOut;
}

std::string_view binOpName(BinOp op) {
    switch (op) {
    case BinOp::Add: return "add";
    case BinOp::Sub: return "sub";
    case BinOp::Mul: return "mul";
    case BinOp::Div: return "div";
    case BinOp::Mod: return "mod";
    case BinOp::And: return "and";
    case BinOp::Or: return "or";
    case BinOp::Xor: return "xor";
    case BinOp::Shl: return "shl";
    case BinOp::Shr: return "shr";
    case BinOp::Eq: return "eq";
    case BinOp::Ne: return "ne";
    case BinOp::Lt: return "lt";
    case BinOp::Le: return "le";
    case BinOp::Gt: return "gt";
    case BinOp::Ge: return "ge";
    case BinOp::Min: return "min";
    case BinOp::Max: return "max";
    }
    return "?";
}

const KernelPort& Kernel::port(PortId id) const {
    require(id < ports_.size(), "port id out of range");
    return ports_[id];
}

const Expr& Kernel::expr(ExprId id) const {
    require(id < exprs_.size(), "expr id out of range");
    return exprs_[id];
}

const Stmt& Kernel::stmt(StmtId id) const {
    require(id < stmts_.size(), "stmt id out of range");
    return stmts_[id];
}

PortId Kernel::portId(std::string_view name) const {
    for (PortId i = 0; i < ports_.size(); ++i) {
        if (ports_[i].name == name) {
            return i;
        }
    }
    throw HlsError(format("kernel %s has no port '%s'", name_.c_str(),
                          std::string(name).c_str()));
}

bool Kernel::hasPort(std::string_view name) const {
    return std::any_of(ports_.begin(), ports_.end(),
                       [&](const KernelPort& p) { return p.name == name; });
}

std::size_t Kernel::statementCount() const {
    return stmts_.size();
}

// ---------------------------------------------------------------------------
// KernelBuilder

ExprId KernelBuilder::addExpr(Expr expr) {
    kernel_.exprs_.push_back(expr);
    return static_cast<ExprId>(kernel_.exprs_.size() - 1);
}

StmtId KernelBuilder::addStmt(Stmt stmt) {
    kernel_.stmts_.push_back(std::move(stmt));
    const auto id = static_cast<StmtId>(kernel_.stmts_.size() - 1);
    currentBlock().push_back(id);
    return id;
}

std::vector<StmtId>& KernelBuilder::currentBlock() {
    if (scopes_.empty()) {
        return kernel_.body_;
    }
    const Scope& top = scopes_.back();
    Stmt& s = kernel_.stmts_[top.stmt];
    return top.inElse ? s.elseBody : s.body;
}

PortId KernelBuilder::scalarIn(std::string name, unsigned width) {
    kernel_.ports_.push_back(KernelPort{std::move(name), PortKind::ScalarIn, width});
    return static_cast<PortId>(kernel_.ports_.size() - 1);
}

PortId KernelBuilder::scalarOut(std::string name, unsigned width) {
    kernel_.ports_.push_back(KernelPort{std::move(name), PortKind::ScalarOut, width});
    return static_cast<PortId>(kernel_.ports_.size() - 1);
}

PortId KernelBuilder::streamIn(std::string name, unsigned width) {
    kernel_.ports_.push_back(KernelPort{std::move(name), PortKind::StreamIn, width});
    return static_cast<PortId>(kernel_.ports_.size() - 1);
}

PortId KernelBuilder::streamOut(std::string name, unsigned width) {
    kernel_.ports_.push_back(KernelPort{std::move(name), PortKind::StreamOut, width});
    return static_cast<PortId>(kernel_.ports_.size() - 1);
}

VarId KernelBuilder::var(std::string name, unsigned width) {
    kernel_.vars_.push_back(KernelVar{std::move(name), width});
    return static_cast<VarId>(kernel_.vars_.size() - 1);
}

ArrayId KernelBuilder::array(std::string name, std::size_t depth, unsigned width) {
    if (depth == 0) {
        throw HlsError("array depth must be positive");
    }
    kernel_.arrays_.push_back(KernelArray{std::move(name), depth, width});
    return static_cast<ArrayId>(kernel_.arrays_.size() - 1);
}

ExprId KernelBuilder::c(std::int64_t value) {
    Expr e;
    e.kind = ExprKind::Const;
    e.value = value;
    return addExpr(e);
}

ExprId KernelBuilder::v(VarId var) {
    require(var < kernel_.vars_.size(), "var id out of range");
    Expr e;
    e.kind = ExprKind::Var;
    e.var = var;
    return addExpr(e);
}

ExprId KernelBuilder::arg(PortId port) {
    require(port < kernel_.ports_.size(), "port id out of range");
    if (kernel_.ports_[port].kind != PortKind::ScalarIn) {
        throw HlsError("arg() requires a scalar-in port");
    }
    Expr e;
    e.kind = ExprKind::Arg;
    e.port = port;
    return addExpr(e);
}

ExprId KernelBuilder::load(ArrayId array, ExprId index) {
    require(array < kernel_.arrays_.size(), "array id out of range");
    Expr e;
    e.kind = ExprKind::ArrayLoad;
    e.array = array;
    e.a = index;
    return addExpr(e);
}

ExprId KernelBuilder::read(PortId streamInPort) {
    require(streamInPort < kernel_.ports_.size(), "port id out of range");
    if (kernel_.ports_[streamInPort].kind != PortKind::StreamIn) {
        throw HlsError("read() requires a stream-in port");
    }
    Expr e;
    e.kind = ExprKind::StreamRead;
    e.port = streamInPort;
    return addExpr(e);
}

ExprId KernelBuilder::un(UnOp op, ExprId a) {
    Expr e;
    e.kind = ExprKind::Unary;
    e.uop = op;
    e.a = a;
    return addExpr(e);
}

ExprId KernelBuilder::bin(BinOp op, ExprId a, ExprId b) {
    Expr e;
    e.kind = ExprKind::Binary;
    e.bop = op;
    e.a = a;
    e.b = b;
    return addExpr(e);
}

ExprId KernelBuilder::select(ExprId cond, ExprId whenNonZero, ExprId whenZero) {
    Expr e;
    e.kind = ExprKind::Select;
    e.a = cond;
    e.b = whenNonZero;
    e.c = whenZero;
    return addExpr(e);
}

void KernelBuilder::assign(VarId var, ExprId value) {
    Stmt s;
    s.kind = StmtKind::Assign;
    s.var = var;
    s.value = value;
    addStmt(std::move(s));
}

void KernelBuilder::arrayStore(ArrayId array, ExprId index, ExprId value) {
    Stmt s;
    s.kind = StmtKind::ArrayStore;
    s.array = array;
    s.index = index;
    s.value = value;
    addStmt(std::move(s));
}

void KernelBuilder::write(PortId streamOutPort, ExprId value) {
    if (kernel_.ports_[streamOutPort].kind != PortKind::StreamOut) {
        throw HlsError("write() requires a stream-out port");
    }
    Stmt s;
    s.kind = StmtKind::StreamWrite;
    s.port = streamOutPort;
    s.value = value;
    addStmt(std::move(s));
}

void KernelBuilder::setResult(PortId scalarOutPort, ExprId value) {
    if (kernel_.ports_[scalarOutPort].kind != PortKind::ScalarOut) {
        throw HlsError("setResult() requires a scalar-out port");
    }
    Stmt s;
    s.kind = StmtKind::SetResult;
    s.port = scalarOutPort;
    s.value = value;
    addStmt(std::move(s));
}

void KernelBuilder::forLoop(VarId inductionVar, ExprId bound) {
    Stmt s;
    s.kind = StmtKind::For;
    s.var = inductionVar;
    s.value = bound;
    const StmtId id = addStmt(std::move(s));
    scopes_.push_back(Scope{id, false});
}

void KernelBuilder::endLoop() {
    if (scopes_.empty() || kernel_.stmts_[scopes_.back().stmt].kind != StmtKind::For) {
        throw HlsError("endLoop() without matching forLoop()");
    }
    scopes_.pop_back();
}

void KernelBuilder::ifBegin(ExprId cond) {
    Stmt s;
    s.kind = StmtKind::If;
    s.value = cond;
    const StmtId id = addStmt(std::move(s));
    scopes_.push_back(Scope{id, false});
}

void KernelBuilder::elseBegin() {
    if (scopes_.empty() || kernel_.stmts_[scopes_.back().stmt].kind != StmtKind::If ||
        scopes_.back().inElse) {
        throw HlsError("elseBegin() without matching ifBegin()");
    }
    scopes_.back().inElse = true;
}

void KernelBuilder::endIf() {
    if (scopes_.empty() || kernel_.stmts_[scopes_.back().stmt].kind != StmtKind::If) {
        throw HlsError("endIf() without matching ifBegin()");
    }
    scopes_.pop_back();
}

Kernel KernelBuilder::build() {
    if (built_) {
        throw HlsError("KernelBuilder::build() called twice");
    }
    if (!scopes_.empty()) {
        throw HlsError(format("kernel %s: %zu unclosed scope(s) at build()",
                              kernel_.name().c_str(), scopes_.size()));
    }
    built_ = true;
    return std::move(kernel_);
}

} // namespace socgen::hls
