#pragma once

#include "socgen/rtl/netlist.hpp"

#include <cstdint>
#include <string>

namespace socgen::hls {

/// Zynq-7020-style resource vector (the columns of the paper's Table II).
struct ResourceEstimate {
    std::int64_t lut = 0;
    std::int64_t ff = 0;
    std::int64_t bram18 = 0;  ///< RAMB18 blocks
    std::int64_t dsp = 0;     ///< DSP48 slices

    ResourceEstimate& operator+=(const ResourceEstimate& other);
    friend ResourceEstimate operator+(ResourceEstimate a, const ResourceEstimate& b) {
        a += b;
        return a;
    }
    friend bool operator==(const ResourceEstimate&, const ResourceEstimate&) = default;

    [[nodiscard]] std::string str() const;
};

/// Per-cell-kind pricing calibrated so the Otsu case study lands in the
/// neighbourhood of the paper's Table II (shape, not exact numbers).
struct CostModel {
    /// Resources of one primitive cell.
    [[nodiscard]] ResourceEstimate priceCell(const rtl::Cell& cell) const;

    /// Sum over all cells of a netlist.
    [[nodiscard]] ResourceEstimate priceNetlist(const rtl::Netlist& netlist) const;

    /// Wrapper overhead of the HLS interface logic for one port.
    [[nodiscard]] ResourceEstimate axiLitePortCost(unsigned width) const;
    [[nodiscard]] ResourceEstimate axiStreamPortCost(unsigned width) const;

    /// Fixed per-accelerator control overhead (start/done, reset tree).
    [[nodiscard]] ResourceEstimate coreOverhead() const;
};

/// DSP48 slices needed for a w x w multiplier.
[[nodiscard]] std::int64_t dspForMul(unsigned width);

/// RAMB18 blocks for a depth x width memory (0 if it fits in LUTRAM).
[[nodiscard]] std::int64_t bram18For(std::int64_t depth, unsigned width);

} // namespace socgen::hls
