#include "socgen/hls/bytecode.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <algorithm>
#include <sstream>

namespace socgen::hls {

namespace {

class Compiler {
public:
    Compiler(const Kernel& kernel, const KernelSchedule& schedule)
        : k_(kernel), sched_(schedule) {}

    Program run() {
        Program p;
        p.kernelName = k_.name();
        p.varWidth.reserve(k_.vars().size());
        for (const auto& v : k_.vars()) {
            p.varWidth.push_back(v.width);
        }
        for (const auto& a : k_.arrays()) {
            p.arrays.push_back(ArraySpec{a.depth, a.width});
        }
        p.ports = k_.ports();

        program_ = &p;
        nextTemp_ = static_cast<std::uint32_t>(k_.vars().size());
        highWater_ = nextTemp_;
        compileBlock(k_.body(), /*insideLoop=*/false);
        emit(Instr{.op = Opcode::Halt});
        p.registerCount = highWater_;
        return p;
    }

private:
    std::uint32_t emit(Instr instr) {
        program_->instrs.push_back(instr);
        return static_cast<std::uint32_t>(program_->instrs.size() - 1);
    }

    void patchTarget(std::uint32_t at, std::uint32_t target) {
        program_->instrs[at].target = target;
    }

    [[nodiscard]] std::uint32_t here() const {
        return static_cast<std::uint32_t>(program_->instrs.size());
    }

    std::uint32_t allocTemp() {
        const std::uint32_t r = nextTemp_++;
        highWater_ = std::max(highWater_, nextTemp_);
        return r;
    }

    /// Evaluates an expression into a register (variables map directly to
    /// their slot; everything else goes through temporaries).
    std::uint32_t compileExpr(ExprId id) {
        const Expr& e = k_.expr(id);
        switch (e.kind) {
        case ExprKind::Const: {
            const std::uint32_t r = allocTemp();
            emit(Instr{.op = Opcode::LoadConst, .dst = r, .imm = e.value});
            return r;
        }
        case ExprKind::Var:
            return e.var;  // variable slots are the low register indices
        case ExprKind::Arg: {
            const std::uint32_t r = allocTemp();
            emit(Instr{.op = Opcode::LoadArg, .dst = r, .port = e.port});
            return r;
        }
        case ExprKind::ArrayLoad: {
            const std::uint32_t idx = compileExpr(e.a);
            const std::uint32_t r = allocTemp();
            emit(Instr{.op = Opcode::ArrayLoad, .dst = r, .a = idx, .array = e.array});
            return r;
        }
        case ExprKind::StreamRead: {
            const std::uint32_t r = allocTemp();
            emit(Instr{.op = Opcode::StreamRead, .dst = r, .port = e.port});
            return r;
        }
        case ExprKind::Unary: {
            const std::uint32_t a = compileExpr(e.a);
            const std::uint32_t r = allocTemp();
            emit(Instr{.op = Opcode::Un, .uop = e.uop, .dst = r, .a = a});
            return r;
        }
        case ExprKind::Binary: {
            const std::uint32_t a = compileExpr(e.a);
            const std::uint32_t b = compileExpr(e.b);
            const std::uint32_t r = allocTemp();
            emit(Instr{.op = Opcode::Bin, .bop = e.bop, .dst = r, .a = a, .b = b});
            return r;
        }
        case ExprKind::Select: {
            const std::uint32_t cond = compileExpr(e.a);
            const std::uint32_t t = compileExpr(e.b);
            const std::uint32_t f = compileExpr(e.c);
            const std::uint32_t r = allocTemp();
            emit(Instr{.op = Opcode::Select, .dst = r, .a = cond, .b = t, .c = f});
            return r;
        }
        }
        throw HlsError("unreachable expression kind in bytecode compiler");
    }

    void compileBlock(const std::vector<StmtId>& block, bool insideLoop) {
        for (StmtId id : block) {
            compileStmt(id, insideLoop);
        }
    }

    void compileStmt(StmtId id, bool insideLoop) {
        const std::uint32_t tempMark = nextTemp_;
        const Stmt& s = k_.stmt(id);
        switch (s.kind) {
        case StmtKind::Assign: {
            const std::uint32_t value = compileExpr(s.value);
            emit(Instr{.op = Opcode::Move, .dst = s.var, .a = value});
            break;
        }
        case StmtKind::ArrayStore: {
            const std::uint32_t idx = compileExpr(s.index);
            const std::uint32_t value = compileExpr(s.value);
            emit(Instr{.op = Opcode::ArrayStore, .a = idx, .b = value, .array = s.array});
            break;
        }
        case StmtKind::StreamWrite: {
            const std::uint32_t value = compileExpr(s.value);
            emit(Instr{.op = Opcode::StreamWrite, .a = value, .port = s.port});
            break;
        }
        case StmtKind::SetResult: {
            const std::uint32_t value = compileExpr(s.value);
            emit(Instr{.op = Opcode::SetResult, .a = value, .port = s.port});
            break;
        }
        case StmtKind::For: {
            compileFor(id, s);
            break;
        }
        case StmtKind::If: {
            const std::uint32_t cond = compileExpr(s.value);
            const std::uint32_t skipThen =
                emit(Instr{.op = Opcode::JumpIfZero, .a = cond});
            compileBlock(s.body, insideLoop);
            if (s.elseBody.empty()) {
                patchTarget(skipThen, here());
            } else {
                const std::uint32_t skipElse = emit(Instr{.op = Opcode::Jump});
                patchTarget(skipThen, here());
                compileBlock(s.elseBody, insideLoop);
                patchTarget(skipElse, here());
            }
            break;
        }
        }
        // Straight-line top-level statements cost one control step each;
        // loop bodies are paced by the II cost at the back-edge instead.
        if (!insideLoop && s.kind != StmtKind::For && s.kind != StmtKind::If) {
            emit(Instr{.op = Opcode::Cost, .imm = 1});
        }
        nextTemp_ = tempMark;  // temporaries are statement-scoped
    }

    void compileFor(StmtId id, const Stmt& s) {
        const LoopSchedule* loop = sched_.loopFor(id);
        std::int64_t entryCost = 0;
        std::int64_t iterationCost = 1;
        if (loop != nullptr) {
            if (loop->pipelined) {
                entryCost = std::max<std::int64_t>(loop->body.length - loop->ii, 0);
                iterationCost = loop->ii;
            } else {
                iterationCost = std::max<std::int64_t>(loop->body.length, 1) + 1;
            }
        }

        // var <- 0; bound <- eval
        emit(Instr{.op = Opcode::LoadConst, .dst = s.var, .imm = 0});
        const std::uint32_t bound = compileExpr(s.value);
        if (entryCost > 0) {
            emit(Instr{.op = Opcode::Cost, .imm = entryCost});
        }
        const std::uint32_t loopTop = here();
        const std::uint32_t cmp = allocTemp();
        emit(Instr{.op = Opcode::Bin, .bop = BinOp::Lt, .dst = cmp, .a = s.var, .b = bound});
        const std::uint32_t exitJump = emit(Instr{.op = Opcode::JumpIfZero, .a = cmp});
        compileBlock(s.body, /*insideLoop=*/true);
        if (iterationCost > 0) {
            emit(Instr{.op = Opcode::Cost, .imm = iterationCost});
        }
        const std::uint32_t one = allocTemp();
        emit(Instr{.op = Opcode::LoadConst, .dst = one, .imm = 1});
        emit(Instr{.op = Opcode::Bin, .bop = BinOp::Add, .dst = s.var, .a = s.var, .b = one});
        emit(Instr{.op = Opcode::Jump, .target = loopTop});
        patchTarget(exitJump, here());
    }

    const Kernel& k_;
    const KernelSchedule& sched_;
    Program* program_ = nullptr;
    std::uint32_t nextTemp_ = 0;
    std::uint32_t highWater_ = 0;
};

const char* opcodeName(Opcode op) {
    switch (op) {
    case Opcode::LoadConst: return "ldc";
    case Opcode::Move: return "mov";
    case Opcode::LoadArg: return "ldarg";
    case Opcode::Bin: return "bin";
    case Opcode::Un: return "un";
    case Opcode::Select: return "sel";
    case Opcode::ArrayLoad: return "ald";
    case Opcode::ArrayStore: return "ast";
    case Opcode::StreamRead: return "srd";
    case Opcode::StreamWrite: return "swr";
    case Opcode::SetResult: return "sres";
    case Opcode::Jump: return "jmp";
    case Opcode::JumpIfZero: return "jz";
    case Opcode::Cost: return "cost";
    case Opcode::Halt: return "halt";
    }
    return "?";
}

} // namespace

std::string Program::disassemble() const {
    std::ostringstream out;
    out << "; program " << kernelName << ", " << registerCount << " registers\n";
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const Instr& instr = instrs[i];
        out << format("%4zu: %-5s", i, opcodeName(instr.op));
        switch (instr.op) {
        case Opcode::LoadConst:
            out << format(" r%u <- %lld", instr.dst, static_cast<long long>(instr.imm));
            break;
        case Opcode::Move:
            out << format(" r%u <- r%u", instr.dst, instr.a);
            break;
        case Opcode::LoadArg:
            out << format(" r%u <- arg[%s]", instr.dst, ports[instr.port].name.c_str());
            break;
        case Opcode::Bin:
            out << format(" r%u <- r%u %s r%u", instr.dst, instr.a,
                          std::string(binOpName(instr.bop)).c_str(), instr.b);
            break;
        case Opcode::Un:
            out << format(" r%u <- op r%u", instr.dst, instr.a);
            break;
        case Opcode::Select:
            out << format(" r%u <- r%u ? r%u : r%u", instr.dst, instr.a, instr.b, instr.c);
            break;
        case Opcode::ArrayLoad:
            out << format(" r%u <- arr%u[r%u]", instr.dst, instr.array, instr.a);
            break;
        case Opcode::ArrayStore:
            out << format(" arr%u[r%u] <- r%u", instr.array, instr.a, instr.b);
            break;
        case Opcode::StreamRead:
            out << format(" r%u <- stream[%s]", instr.dst, ports[instr.port].name.c_str());
            break;
        case Opcode::StreamWrite:
            out << format(" stream[%s] <- r%u", ports[instr.port].name.c_str(), instr.a);
            break;
        case Opcode::SetResult:
            out << format(" result[%s] <- r%u", ports[instr.port].name.c_str(), instr.a);
            break;
        case Opcode::Jump:
            out << format(" -> %u", instr.target);
            break;
        case Opcode::JumpIfZero:
            out << format(" r%u == 0 -> %u", instr.a, instr.target);
            break;
        case Opcode::Cost:
            out << format(" %lld cycles", static_cast<long long>(instr.imm));
            break;
        case Opcode::Halt:
            break;
        }
        out << '\n';
    }
    return out.str();
}

Program compileKernel(const Kernel& kernel, const KernelSchedule& schedule) {
    return Compiler(kernel, schedule).run();
}

} // namespace socgen::hls
