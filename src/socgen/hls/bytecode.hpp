#pragma once

#include "socgen/hls/ir.hpp"
#include "socgen/hls/schedule.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace socgen::hls {

/// Flat bytecode compiled from a kernel's structured IR. The SoC
/// simulator executes this program cycle by cycle: `Cost` instructions
/// charge the cycles derived from the HLS schedule (pipeline depth at
/// loop entry, II per iteration), and stream reads/writes block on the
/// attached AXI-Stream channels, so timing emerges from both the static
/// schedule and dynamic back-pressure — like the generated hardware.
enum class Opcode {
    LoadConst,   ///< dst <- imm
    Move,        ///< dst <- a
    LoadArg,     ///< dst <- scalar argument register `port`
    Bin,         ///< dst <- a (bop) b
    Un,          ///< dst <- (uop) a
    Select,      ///< dst <- a != 0 ? b : c
    ArrayLoad,   ///< dst <- array[a]
    ArrayStore,  ///< array[a] <- b
    StreamRead,  ///< dst <- blocking read from stream `port`
    StreamWrite, ///< blocking write of a to stream `port`
    SetResult,   ///< scalar result register `port` <- a
    Jump,        ///< pc <- target
    JumpIfZero,  ///< if a == 0: pc <- target
    Cost,        ///< consume `imm` cycles
    Halt,
};

struct Instr {
    Opcode op = Opcode::Halt;
    BinOp bop = BinOp::Add;
    UnOp uop = UnOp::Not;
    std::uint32_t dst = 0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;
    std::int64_t imm = 0;
    PortId port = kNoId;
    ArrayId array = kNoId;
    std::uint32_t target = 0;  ///< jump destination
};

struct ArraySpec {
    std::size_t depth = 0;
    unsigned width = 32;
};

/// FIFO channel of a compiled process network: indices into the parent
/// Program's `processPrograms` plus port ids into each child's `ports`.
struct ProgramChannel {
    std::string name;
    std::uint32_t fromProcess = 0;
    PortId fromPort = kNoId;  ///< StreamOut of processPrograms[fromProcess]
    std::uint32_t toProcess = 0;
    PortId toPort = kNoId;    ///< StreamIn of processPrograms[toProcess]
    unsigned width = 32;
    std::uint32_t depth = 2;
    std::uint32_t initialTokens = 0;
};

/// Maps one external port of a network Program (an index into its
/// `ports`) onto the process port that actually services it.
struct ProgramBinding {
    PortId networkPort = kNoId;
    std::uint32_t process = 0;
    PortId processPort = kNoId;
};

/// Compiled program plus the metadata the VM needs. A network node
/// compiles to a Program whose own instruction stream is empty and whose
/// `processPrograms` carry one compiled Program per process; the VM runs
/// them concurrently, routing `channels` through bounded FIFOs and
/// `bindings` out to the host I/O. `ports` always holds the externally
/// visible signature either way, so the SoC wrapper and driver
/// generators consume network and single-kernel programs identically.
struct Program {
    std::string kernelName;
    std::vector<Instr> instrs;
    std::uint32_t registerCount = 0;          ///< total register slots
    std::vector<unsigned> varWidth;           ///< per kernel variable (slot i)
    std::vector<ArraySpec> arrays;
    std::vector<KernelPort> ports;            ///< copy of the kernel signature

    // Process-network payload (empty for single-kernel programs).
    std::vector<std::string> processNames;    ///< parallel to processPrograms
    std::vector<Program> processPrograms;
    std::vector<ProgramChannel> channels;
    std::vector<ProgramBinding> bindings;

    [[nodiscard]] bool isNetwork() const { return !processPrograms.empty(); }

    [[nodiscard]] std::string disassemble() const;
};

/// Compiles `kernel` using `schedule` for cycle costs. Loops charge
/// `body.length - ii` once at entry (pipeline fill) and `ii` per
/// iteration when pipelined, `body.length + 1` per iteration otherwise;
/// top-level statements outside loops charge one cycle each.
Program compileKernel(const Kernel& kernel, const KernelSchedule& schedule);

} // namespace socgen::hls
