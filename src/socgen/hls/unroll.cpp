#include "socgen/hls/unroll.hpp"

#include "socgen/common/error.hpp"

#include <optional>

namespace socgen::hls {

namespace {

class Unroller {
public:
    Unroller(const Kernel& kernel, const std::map<std::string, int>& factors,
             UnrollStats* stats)
        : in_(kernel), factors_(factors), stats_(stats) {}

    Kernel run() {
        KernelBuilder kb(in_.name());
        for (const auto& p : in_.ports()) {
            switch (p.kind) {
            case PortKind::ScalarIn: (void)kb.scalarIn(p.name, p.width); break;
            case PortKind::ScalarOut: (void)kb.scalarOut(p.name, p.width); break;
            case PortKind::StreamIn: (void)kb.streamIn(p.name, p.width); break;
            case PortKind::StreamOut: (void)kb.streamOut(p.name, p.width); break;
            }
        }
        for (const auto& v : in_.vars()) {
            (void)kb.var(v.name, v.width);
        }
        for (const auto& a : in_.arrays()) {
            (void)kb.array(a.name, a.depth, a.width);
        }
        kb_ = &kb;
        emitBlock(in_.body());
        return kb.build();
    }

private:
    void bump(std::size_t UnrollStats::* field, std::size_t by = 1) {
        if (stats_ != nullptr) {
            (stats_->*field) += by;
        }
    }

    /// Copies an expression, replacing reads of `substVar_` (when set)
    /// with `substExpr_` (an expression already built in the new kernel).
    ExprId copyExpr(ExprId id) {
        const Expr& e = in_.expr(id);
        switch (e.kind) {
        case ExprKind::Const: return kb_->c(e.value);
        case ExprKind::Var:
            if (substVar_ && *substVar_ == e.var) {
                return substExpr_;
            }
            return kb_->v(e.var);
        case ExprKind::Arg: return kb_->arg(e.port);
        case ExprKind::StreamRead: return kb_->read(e.port);
        case ExprKind::ArrayLoad: return kb_->load(e.array, copyExpr(e.a));
        case ExprKind::Unary: return kb_->un(e.uop, copyExpr(e.a));
        case ExprKind::Binary: return kb_->bin(e.bop, copyExpr(e.a), copyExpr(e.b));
        case ExprKind::Select:
            return kb_->select(copyExpr(e.a), copyExpr(e.b), copyExpr(e.c));
        }
        throw HlsError("unreachable expression kind in unroller");
    }

    void copyStmt(StmtId id) {
        const Stmt& s = in_.stmt(id);
        switch (s.kind) {
        case StmtKind::Assign:
            kb_->assign(s.var, copyExpr(s.value));
            break;
        case StmtKind::ArrayStore:
            kb_->arrayStore(s.array, copyExpr(s.index), copyExpr(s.value));
            break;
        case StmtKind::StreamWrite:
            kb_->write(s.port, copyExpr(s.value));
            break;
        case StmtKind::SetResult:
            kb_->setResult(s.port, copyExpr(s.value));
            break;
        case StmtKind::For:
            emitFor(s);
            break;
        case StmtKind::If: {
            kb_->ifBegin(copyExpr(s.value));
            for (StmtId inner : s.body) {
                copyStmt(inner);
            }
            if (!s.elseBody.empty()) {
                kb_->elseBegin();
                for (StmtId inner : s.elseBody) {
                    copyStmt(inner);
                }
            }
            kb_->endIf();
            break;
        }
        }
    }

    void emitFor(const Stmt& s) {
        const std::string& varName = in_.vars()[s.var].name;
        const auto it = factors_.find(varName);
        const Expr& bound = in_.expr(s.value);
        const int factor = it != factors_.end() ? it->second : 1;

        if (factor <= 1 || bound.kind != ExprKind::Const || bound.value <= 0) {
            // Plain copy (substitution must not leak into an inner loop
            // that redefines a different induction variable; substVar_
            // remains whatever the enclosing context set).
            kb_->forLoop(s.var, copyExpr(s.value));
            for (StmtId inner : s.body) {
                copyStmt(inner);
            }
            kb_->endLoop();
            return;
        }

        bump(&UnrollStats::loopsUnrolled);
        const std::int64_t trip = bound.value;
        const std::int64_t mainTrips = trip / factor;
        const std::int64_t remainder = trip % factor;

        const auto savedVar = substVar_;
        const ExprId savedExpr = savedVarExpr();

        // The replicated index lives in a dedicated temporary so every
        // reference inside a body copy reads one register instead of
        // recomputing v*k+j (which would multiply DSP pressure).
        const VarId indexTemp =
            kb_->var(varName + "_u", in_.vars()[s.var].width);
        const bool powerOfTwo = (factor & (factor - 1)) == 0;
        int log2Factor = 0;
        while ((1 << log2Factor) < factor) {
            ++log2Factor;
        }

        if (mainTrips > 0) {
            // for (v = 0; v < trip/k; ++v) { body[v*k+0]; ...; body[v*k+k-1]; }
            kb_->forLoop(s.var, kb_->c(mainTrips));
            for (int j = 0; j < factor; ++j) {
                const ExprId scaled =
                    powerOfTwo ? kb_->shl(kb_->v(s.var), kb_->c(log2Factor))
                               : kb_->mul(kb_->v(s.var), kb_->c(factor));
                kb_->assign(indexTemp, kb_->add(scaled, kb_->c(j)));
                substVar_ = s.var;
                substExpr_ = kb_->v(indexTemp);
                for (StmtId inner : s.body) {
                    copyStmt(inner);
                }
                bump(&UnrollStats::copiesEmitted);
            }
            substVar_ = savedVar;
            substExpr_ = savedExpr;
            kb_->endLoop();
        }
        // Epilogue: the remaining trip % k iterations with constant indices.
        for (std::int64_t j = 0; j < remainder; ++j) {
            kb_->assign(indexTemp, kb_->c(mainTrips * factor + j));
            substVar_ = s.var;
            substExpr_ = kb_->v(indexTemp);
            for (StmtId inner : s.body) {
                copyStmt(inner);
            }
            bump(&UnrollStats::epilogueIterations);
        }
        substVar_ = savedVar;
        substExpr_ = savedExpr;
        // The rolled loop leaves the induction variable equal to the trip
        // count; restore that observable final value (code after the loop
        // may read it).
        kb_->assign(s.var, kb_->c(trip));
    }

    [[nodiscard]] ExprId savedVarExpr() const { return substExpr_; }

    void emitBlock(const std::vector<StmtId>& block) {
        for (StmtId id : block) {
            copyStmt(id);
        }
    }

    const Kernel& in_;
    const std::map<std::string, int>& factors_;
    UnrollStats* stats_;
    KernelBuilder* kb_ = nullptr;
    std::optional<VarId> substVar_;
    ExprId substExpr_ = kNoId;
};

} // namespace

Kernel unrollLoops(const Kernel& kernel, const std::map<std::string, int>& factors,
                   UnrollStats* stats) {
    return Unroller(kernel, factors, stats).run();
}

} // namespace socgen::hls
