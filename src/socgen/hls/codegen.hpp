#pragma once

#include "socgen/hls/binding.hpp"
#include "socgen/hls/ir.hpp"
#include "socgen/hls/schedule.hpp"
#include "socgen/rtl/netlist.hpp"

namespace socgen::hls {

/// Lowers a scheduled, bound kernel to a structural FSM + datapath
/// netlist:
///  - one FSM cell whose states are the dense control steps of all blocks;
///  - spatial LUT-fabric cells for Alu ops;
///  - shared Mul/Div units with state-selected input mux cascades
///    (the binding decides how many units exist);
///  - one BRAM per kernel array with address/data/write-enable cascades;
///  - registers for op results, kernel variables, and scalar outputs;
///  - AXI-style port sets: scalar in/out, and tdata/tvalid/tready triples
///    for each stream port, plus ap_start/ap_done control.
///
/// The generated netlist is structurally valid (Netlist::check passes)
/// and, for straight-line scalar kernels, functionally equivalent to the
/// IR interpreter (verified by tests). Stream/loop kernels are executed
/// by the bytecode interpreter in system simulation; their netlists are
/// used for VHDL emission and resource pricing.
rtl::Netlist generateRtl(const Kernel& kernel, const KernelSchedule& schedule,
                         const KernelBinding& binding);

} // namespace socgen::hls
