#pragma once

#include "socgen/hls/bytecode.hpp"

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace socgen::hls {

/// Bridge between the kernel VM and the surrounding system: the SoC
/// accelerator wrapper implements this against real AXI channels; tests
/// implement it against vectors.
class KernelIo {
public:
    virtual ~KernelIo() = default;

    /// Value of a scalar-in argument register (set by the GPP via AXI-Lite).
    [[nodiscard]] virtual std::uint64_t argValue(PortId port) = 0;

    /// Publishes a scalar-out result register.
    virtual void setResult(PortId port, std::uint64_t value) = 0;

    /// Non-blocking stream read; returns false when no data is available
    /// this cycle (the VM stalls).
    virtual bool streamRead(PortId port, std::uint64_t& value) = 0;

    /// Non-blocking stream write; returns false when the channel is full.
    virtual bool streamWrite(PortId port, std::uint64_t value) = 0;
};

/// Cycle-stepped virtual machine executing a compiled kernel Program.
/// One tick() is one clock cycle of the accelerator: zero-latency
/// instructions execute back-to-back until a Cost instruction charges
/// schedule-derived cycles or a stream access has to stall.
///
/// A network Program (Program::isNetwork()) runs in network mode: one
/// child VM per process, all ticked every cycle, with internal channel
/// ports routed through bounded in-memory FIFOs and externally bound
/// ports forwarded to the host KernelIo — so the SoC accelerator wrapper
/// hosts a whole dataflow network exactly like a single kernel. A cycle
/// in which every live process is blocked on an *internal* channel is a
/// provable deadlock (no external stimulus can ever unblock it); the VM
/// throws ChannelDeadlockError with per-channel forensics immediately
/// instead of spinning until a watchdog guesses.
class KernelVm {
public:
    KernelVm(const Program& program, KernelIo& io);
    ~KernelVm();

    /// Restarts execution from the beginning (ap_start).
    void start();

    [[nodiscard]] bool running() const { return running_; }
    [[nodiscard]] bool finished() const { return !running_ && started_; }

    /// Advances one clock cycle. Returns true if the kernel made forward
    /// progress (it did not spend the whole cycle stalled on a stream).
    bool tick();

    // -- statistics ----------------------------------------------------------
    [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
    [[nodiscard]] std::uint64_t stallCycles() const { return stalls_; }
    [[nodiscard]] std::uint64_t instructionsExecuted() const { return executed_; }

    /// Direct array access for tests / result extraction.
    [[nodiscard]] const std::vector<std::uint64_t>& array(ArrayId id) const;

    // -- network mode --------------------------------------------------------
    [[nodiscard]] bool isNetwork() const { return program_.isNetwork(); }
    [[nodiscard]] std::size_t processCount() const { return processes_.size(); }
    /// Child VM of one process (network mode only; throws otherwise).
    [[nodiscard]] const KernelVm& process(std::size_t index) const;

    /// Channel/process forensics: per-channel occupancy, depth and
    /// traffic counters plus per-process state and the port each stalled
    /// process is blocked on. Embedded in ChannelDeadlockError messages
    /// and queryable by cosim watchdogs for stall reports.
    [[nodiscard]] std::string networkStallReport() const;

private:
    class ProcessIo;

    struct ChannelState {
        std::deque<std::uint64_t> fifo;
        std::uint64_t pushes = 0;
        std::uint64_t pops = 0;
    };

    [[nodiscard]] static std::uint64_t applyBin(BinOp op, std::uint64_t a, std::uint64_t b);
    [[nodiscard]] std::uint64_t maskVar(std::uint32_t reg, std::uint64_t value) const;
    void startNetwork();
    bool tickNetwork();

    const Program& program_;
    KernelIo& io_;
    std::vector<std::uint64_t> regs_;
    std::vector<std::vector<std::uint64_t>> arrays_;
    std::uint32_t pc_ = 0;
    std::int64_t waitCycles_ = 0;
    bool running_ = false;
    bool started_ = false;
    std::uint64_t cycles_ = 0;
    std::uint64_t stalls_ = 0;
    std::uint64_t executed_ = 0;

    // Network mode (empty for plain kernels).
    std::vector<ChannelState> channelState_;
    std::vector<std::unique_ptr<ProcessIo>> processIo_;
    std::vector<std::unique_ptr<KernelVm>> processes_;
};

} // namespace socgen::hls
