#include "socgen/hls/resources.hpp"

#include "socgen/common/strings.hpp"

namespace socgen::hls {

ResourceEstimate& ResourceEstimate::operator+=(const ResourceEstimate& other) {
    lut += other.lut;
    ff += other.ff;
    bram18 += other.bram18;
    dsp += other.dsp;
    return *this;
}

std::string ResourceEstimate::str() const {
    return format("LUT=%lld FF=%lld RAMB18=%lld DSP=%lld", static_cast<long long>(lut),
                  static_cast<long long>(ff), static_cast<long long>(bram18),
                  static_cast<long long>(dsp));
}

std::int64_t dspForMul(unsigned width) {
    if (width <= 18) {
        return 1;
    }
    if (width <= 25) {
        return 2;
    }
    if (width <= 35) {
        return 2;  // 25x18 + correction logic absorbed into fabric
    }
    return 4;
}

std::int64_t bram18For(std::int64_t depth, unsigned width) {
    const std::int64_t bits = depth * width;
    if (bits <= 1024) {
        return 0;  // distributed LUTRAM
    }
    const std::int64_t perBlock = 18 * 1024;
    return (bits + perBlock - 1) / perBlock;
}

ResourceEstimate CostModel::priceCell(const rtl::Cell& cell) const {
    using rtl::CellKind;
    const std::int64_t w = cell.width;
    ResourceEstimate r;
    switch (cell.kind) {
    case CellKind::Const:
        break;  // constants propagate into LUT init
    case CellKind::Not:
        r.lut = (w + 1) / 2;
        break;
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Xor:
        r.lut = (w + 1) / 2;
        break;
    case CellKind::Add:
    case CellKind::Sub:
        r.lut = w;
        break;
    case CellKind::Mul:
        r.dsp = dspForMul(cell.width);
        r.lut = 12;  // pipeline glue
        r.ff = 2 * w;
        break;
    case CellKind::Div:
    case CellKind::Mod:
        r.lut = 34 * w;  // iterative restoring divider
        r.ff = 45 * w;
        break;
    case CellKind::Shl:
    case CellKind::Shr:
        r.lut = 2 * w;  // barrel shifter
        break;
    case CellKind::Eq:
    case CellKind::Ne:
    case CellKind::Lt:
    case CellKind::Le:
    case CellKind::Gt:
    case CellKind::Ge:
        r.lut = (w + 1) / 2 + 1;
        break;
    case CellKind::Mux:
        r.lut = (w + 1) / 2;
        break;
    case CellKind::Reg:
        r.ff = w;
        r.lut = cell.inputs.size() > 1 ? (w + 3) / 4 : 0;  // clock-enable gating
        break;
    case CellKind::Bram:
        r.bram18 = bram18For(cell.param, cell.width);
        r.lut = r.bram18 == 0 ? (cell.param * w) / 32 + 4 : 6;
        break;
    case CellKind::Fsm: {
        const std::int64_t states = cell.param;
        r.lut = 3 * states + 24;
        r.ff = states / 2 + 16;
        break;
    }
    }
    return r;
}

ResourceEstimate CostModel::priceNetlist(const rtl::Netlist& netlist) const {
    ResourceEstimate total;
    for (const auto& cell : netlist.cells()) {
        total += priceCell(cell);
    }
    return total;
}

ResourceEstimate CostModel::axiLitePortCost(unsigned width) const {
    // Address decode + one read/write register pair per port.
    return ResourceEstimate{18 + width / 2, 2 * width, 0, 0};
}

ResourceEstimate CostModel::axiStreamPortCost(unsigned width) const {
    // Skid buffer (two data registers) + handshake.
    return ResourceEstimate{12 + width / 2, 2 * width + 4, 0, 0};
}

ResourceEstimate CostModel::coreOverhead() const {
    // ap_start/ap_done control, reset synchronisers, status register.
    return ResourceEstimate{96, 128, 0, 0};
}

} // namespace socgen::hls
