#include "socgen/hls/network.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace socgen::hls {

namespace {

[[noreturn]] void fail(const std::string& network, const std::string& what) {
    throw HlsError("network '" + network + "': " + what);
}

} // namespace

ProcessNetwork ProcessNetwork::fromKernel(Kernel kernel) {
    ProcessNetwork net(kernel.name());
    const std::string processName = kernel.name();
    const std::vector<KernelPort> ports = kernel.ports();
    net.addProcess(processName, std::move(kernel));
    for (const KernelPort& port : ports) {
        net.exportPort(port.name, processName, port.name);
    }
    return net;
}

void ProcessNetwork::addProcess(std::string name, Kernel kernel) {
    if (hasProcess(name)) {
        fail(name_, "duplicate process '" + name + "'");
    }
    processes_.push_back(Process{std::move(name), std::move(kernel)});
}

void ProcessNetwork::connect(NetworkChannel channel) {
    channels_.push_back(std::move(channel));
}

void ProcessNetwork::exportPort(std::string networkPort, std::string process,
                                std::string processPort) {
    bindings_.push_back(
        NetworkBinding{std::move(networkPort), std::move(process), std::move(processPort)});
}

bool ProcessNetwork::hasProcess(std::string_view name) const {
    return std::any_of(processes_.begin(), processes_.end(),
                       [&](const Process& p) { return p.name == name; });
}

std::size_t ProcessNetwork::processIndex(std::string_view name) const {
    for (std::size_t i = 0; i < processes_.size(); ++i) {
        if (processes_[i].name == name) {
            return i;
        }
    }
    fail(name_, "unknown process '" + std::string(name) + "'");
}

const Process& ProcessNetwork::process(std::string_view name) const {
    return processes_[processIndex(name)];
}

std::vector<KernelPort> ProcessNetwork::externalPorts() const {
    std::vector<KernelPort> ports;
    ports.reserve(bindings_.size());
    for (const NetworkBinding& b : bindings_) {
        const Process& p = process(b.process);
        if (!p.kernel.hasPort(b.processPort)) {
            fail(name_, "export '" + b.networkPort + "': process '" + b.process +
                            "' has no port '" + b.processPort + "'");
        }
        KernelPort port = p.kernel.port(p.kernel.portId(b.processPort));
        port.name = b.networkPort;
        ports.push_back(std::move(port));
    }
    return ports;
}

void ProcessNetwork::verify() const {
    if (name_.empty()) {
        throw HlsError("network has an empty name");
    }
    if (processes_.empty()) {
        fail(name_, "has no processes");
    }

    // Process names are unique by construction (addProcess checks), but a
    // decoded network may have bypassed that — re-check.
    {
        std::set<std::string> seen;
        for (const Process& p : processes_) {
            if (p.name.empty()) {
                fail(name_, "has a process with an empty name");
            }
            if (!seen.insert(p.name).second) {
                fail(name_, "duplicate process '" + p.name + "'");
            }
        }
    }

    // Per-(process, port) usage counts: every stream port must be used
    // exactly once (one channel endpoint or one export); every scalar
    // port must be exported exactly once.
    std::map<std::pair<std::string, std::string>, int> uses;

    std::set<std::string> channelNames;
    for (const NetworkChannel& c : channels_) {
        if (c.name.empty()) {
            fail(name_, "has a channel with an empty name");
        }
        if (!channelNames.insert(c.name).second) {
            fail(name_, "duplicate channel '" + c.name + "'");
        }
        if (c.depth < 1) {
            fail(name_, "channel '" + c.name + "' has zero depth");
        }
        const Process& from = process(c.fromProcess);
        const Process& to = process(c.toProcess);
        if (!from.kernel.hasPort(c.fromPort)) {
            fail(name_, "channel '" + c.name + "': process '" + c.fromProcess +
                            "' has no port '" + c.fromPort + "'");
        }
        if (!to.kernel.hasPort(c.toPort)) {
            fail(name_, "channel '" + c.name + "': process '" + c.toProcess +
                            "' has no port '" + c.toPort + "'");
        }
        const KernelPort& src = from.kernel.port(from.kernel.portId(c.fromPort));
        const KernelPort& dst = to.kernel.port(to.kernel.portId(c.toPort));
        if (src.kind != PortKind::StreamOut) {
            fail(name_, "channel '" + c.name + "': source port '" + c.fromProcess + "." +
                            c.fromPort + "' is not a stream output");
        }
        if (dst.kind != PortKind::StreamIn) {
            fail(name_, "channel '" + c.name + "': sink port '" + c.toProcess + "." +
                            c.toPort + "' is not a stream input");
        }
        if (src.width != c.width || dst.width != c.width) {
            fail(name_, "channel '" + c.name + "': width " + std::to_string(c.width) +
                            " does not match ports (" + std::to_string(src.width) + " -> " +
                            std::to_string(dst.width) + ")");
        }
        ++uses[{c.fromProcess, c.fromPort}];
        ++uses[{c.toProcess, c.toPort}];
        if (c.initialTokens > c.depth) {
            throw ChannelDeadlockError(
                "network '" + name_ + "': channel '" + c.name + "' holds " +
                    std::to_string(c.initialTokens) + " initial token(s) but is only " +
                    std::to_string(c.depth) + " deep — insufficient channel depth",
                {c.name}, {c.fromProcess, c.toProcess});
        }
    }

    std::set<std::string> externalNames;
    for (const NetworkBinding& b : bindings_) {
        if (b.networkPort.empty()) {
            fail(name_, "has an export with an empty network-port name");
        }
        if (!externalNames.insert(b.networkPort).second) {
            fail(name_, "duplicate external port '" + b.networkPort + "'");
        }
        const Process& p = process(b.process);
        if (!p.kernel.hasPort(b.processPort)) {
            fail(name_, "export '" + b.networkPort + "': process '" + b.process +
                            "' has no port '" + b.processPort + "'");
        }
        ++uses[{b.process, b.processPort}];
    }

    for (const Process& p : processes_) {
        for (const KernelPort& port : p.kernel.ports()) {
            const int count = uses[{p.name, port.name}];
            if (count == 0) {
                fail(name_, "port '" + p.name + "." + port.name +
                                "' is dangling (not on a channel and not exported)");
            }
            if (count > 1) {
                fail(name_, "port '" + p.name + "." + port.name +
                                "' is used " + std::to_string(count) +
                                " times (channels and exports must each claim a port "
                                "exactly once)");
            }
            if (!isStreamPort(port.kind) && count == 1) {
                // Scalar ports cannot sit on channels; the exactly-once
                // use must be an export.
                const bool exported = std::any_of(
                    bindings_.begin(), bindings_.end(), [&](const NetworkBinding& b) {
                        return b.process == p.name && b.processPort == port.name;
                    });
                if (!exported) {
                    fail(name_, "scalar port '" + p.name + "." + port.name +
                                    "' cannot be a channel endpoint");
                }
            }
        }
    }

    // Static deadlock check: in the process graph restricted to channels
    // with no initial tokens, any cycle is a provable deadlock — every
    // process on it waits for a token that can only be produced after
    // its own output is consumed. A channel with >= 1 initial token
    // breaks the wait cycle, so those edges are excluded.
    std::map<std::string, std::vector<const NetworkChannel*>> tokenFreeOut;
    for (const NetworkChannel& c : channels_) {
        if (c.initialTokens == 0) {
            tokenFreeOut[c.fromProcess].push_back(&c);
        }
    }
    // Iterative DFS with an explicit edge path so the offending cycle
    // can be reported channel by channel.
    std::map<std::string, int> color;  // 0 = white, 1 = on stack, 2 = done
    for (const Process& root : processes_) {
        if (color[root.name] != 0) {
            continue;
        }
        struct Frame {
            std::string node;
            std::size_t next = 0;
            const NetworkChannel* via = nullptr;  // edge that entered `node`
        };
        std::vector<Frame> stack;
        stack.push_back(Frame{root.name});
        color[root.name] = 1;
        while (!stack.empty()) {
            Frame& frame = stack.back();
            auto& out = tokenFreeOut[frame.node];
            if (frame.next < out.size()) {
                const NetworkChannel* edge = out[frame.next++];
                const std::string& target = edge->toProcess;
                if (color[target] == 1) {
                    // Back edge: unwind the stack to recover the cycle.
                    std::vector<std::string> cycleChannels{edge->name};
                    std::vector<std::string> cycleProcesses{target};
                    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
                        if (it->node == target) {
                            break;
                        }
                        cycleProcesses.push_back(it->node);
                        if (it->via != nullptr) {
                            cycleChannels.push_back(it->via->name);
                        }
                    }
                    std::reverse(cycleChannels.begin(), cycleChannels.end());
                    std::reverse(cycleProcesses.begin(), cycleProcesses.end());
                    throw ChannelDeadlockError(
                        "network '" + name_ + "': channel cycle {" +
                            join(cycleChannels, ", ") +
                            "} has no initial tokens — every process on it waits "
                            "forever (add initialTokens to one channel or break the "
                            "cycle)",
                        cycleChannels, cycleProcesses);
                }
                if (color[target] == 0) {
                    color[target] = 1;
                    stack.push_back(Frame{target, 0, edge});
                }
            } else {
                color[frame.node] = 2;
                stack.pop_back();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// KernelLibrary

void KernelLibrary::add(Kernel kernel) {
    add(ProcessNetwork::fromKernel(std::move(kernel)));
}

void KernelLibrary::add(ProcessNetwork network) {
    if (has(network.name())) {
        throw HlsError("duplicate kernel: " + network.name());
    }
    networks_.push_back(std::move(network));
}

bool KernelLibrary::has(std::string_view name) const {
    return std::any_of(networks_.begin(), networks_.end(),
                       [&](const ProcessNetwork& n) { return n.name() == name; });
}

const Kernel& KernelLibrary::get(std::string_view name) const {
    const ProcessNetwork& net = network(name);
    if (!net.trivial()) {
        throw HlsError("'" + std::string(name) +
                       "' is a process network, not a single kernel; use network()");
    }
    return net.processes().front().kernel;
}

const ProcessNetwork& KernelLibrary::network(std::string_view name) const {
    for (const auto& n : networks_) {
        if (n.name() == name) {
            return n;
        }
    }
    throw HlsError("no kernel named '" + std::string(name) + "' in library");
}

} // namespace socgen::hls
