#pragma once

#include "socgen/hls/ir.hpp"

#include <map>
#include <string>

namespace socgen::hls {

struct UnrollStats {
    std::size_t loopsUnrolled = 0;
    std::size_t copiesEmitted = 0;   ///< total replicated bodies
    std::size_t epilogueIterations = 0;
};

/// Loop unrolling (the HLS UNROLL directive): for each loop whose
/// induction variable name appears in `factors` with factor k > 1 and
/// whose bound is a compile-time constant, the body is replicated k
/// times per iteration with the induction variable substituted by
/// `base + j`; a scalar epilogue covers trip % k. Loops with dynamic
/// bounds are left untouched. Unrolling exposes instruction-level
/// parallelism to the scheduler at the cost of datapath area — the
/// classic HLS throughput/area trade (see bench_ablation_unrolling).
[[nodiscard]] Kernel unrollLoops(const Kernel& kernel,
                                 const std::map<std::string, int>& factors,
                                 UnrollStats* stats = nullptr);

} // namespace socgen::hls
