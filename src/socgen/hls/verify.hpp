#pragma once

#include "socgen/hls/ir.hpp"

namespace socgen::hls {

/// Structural validation of a kernel: all ids in range, unique port
/// names, every scalar-out assigned at most once per path is NOT required,
/// but each referenced expression must exist and expression trees must be
/// acyclic (guaranteed by construction order, verified defensively).
/// Throws HlsError on the first violation.
void verify(const Kernel& kernel);

} // namespace socgen::hls
