#pragma once

#include "socgen/hls/ir.hpp"

namespace socgen::hls {

/// Statistics of one optimizer run.
struct OptStats {
    std::size_t foldedConstants = 0;    ///< expressions replaced by constants
    std::size_t simplifiedAlgebra = 0;  ///< x+0, x*1, x*0, x<<0, ... rewrites
    std::size_t strengthReduced = 0;    ///< mul/div/mod by 2^k -> shl/shr/and
    std::size_t removedStatements = 0;  ///< dead assigns / empty ifs & loops
};

/// High-level-synthesis front-end optimizer: rebuilds the kernel with
///  - constant folding over expression trees,
///  - algebraic identities (x+0, x-0, x*1, x*0, x&0, x|0, x<<0, x>>0,
///    select on a constant condition),
///  - strength reduction: multiply/divide/modulo by a power of two become
///    shifts and masks (saving DSP slices and divider latency),
///  - dead-code elimination: assignments to variables never read anywhere
///    in the kernel (when the value has no stream side effects), empty
///    ifs, and empty side-effect-free loops.
/// Semantics are preserved exactly (verified by tests that compare VM
/// outputs before/after on random inputs).
[[nodiscard]] Kernel optimize(const Kernel& kernel, OptStats* stats = nullptr);

} // namespace socgen::hls
