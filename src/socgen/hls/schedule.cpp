#include "socgen/hls/schedule.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <tuple>
#include <sstream>

namespace socgen::hls {

FuClass fuClassOf(const DfgOp& op) {
    switch (op.kind) {
    case OpKind::Binary:
        switch (op.bop) {
        case BinOp::Mul: return FuClass::Mul;
        case BinOp::Div:
        case BinOp::Mod: return FuClass::Div;
        default: return FuClass::Alu;
        }
    case OpKind::Unary:
    case OpKind::Select:
    case OpKind::Move:
    case OpKind::SetResult:
        return FuClass::Alu;
    case OpKind::ArrayLoad:
    case OpKind::ArrayStore:
        return FuClass::Mem;
    case OpKind::StreamRead:
    case OpKind::StreamWrite:
        return FuClass::Stream;
    case OpKind::LoopNest:
        return FuClass::Loop;
    }
    return FuClass::Alu;
}

std::int64_t LatencyModel::of(const DfgOp& op) const {
    switch (op.kind) {
    case OpKind::Binary:
        switch (op.bop) {
        case BinOp::Mul: return mulLatency;
        case BinOp::Div:
        case BinOp::Mod: return divLatency;
        default: return aluLatency;
        }
    case OpKind::Unary:
    case OpKind::Select:
    case OpKind::Move:
    case OpKind::SetResult:
        return aluLatency;
    case OpKind::ArrayLoad: return loadLatency;
    case OpKind::ArrayStore: return storeLatency;
    case OpKind::StreamRead:
    case OpKind::StreamWrite:
        return streamLatency;
    case OpKind::LoopNest:
        return std::max<std::int64_t>(op.loopLatency, 1);
    }
    return aluLatency;
}

namespace {

/// Key identifying a concrete shared resource pool within a block.
struct ResourcePool {
    FuClass cls;
    std::uint32_t instance;  ///< array id for Mem, port id for Stream, else 0

    bool operator<(const ResourcePool& other) const {
        return std::tie(cls, instance) < std::tie(other.cls, other.instance);
    }
};

int poolCapacity(const ResourcePool& pool, const Directives& d) {
    switch (pool.cls) {
    case FuClass::Mul: return d.maxMulUnits;
    case FuClass::Div: return d.maxDivUnits;
    case FuClass::Mem: return d.memPortsPerArray;
    case FuClass::Stream: return 1;
    default: return -1;  // unlimited
    }
}

std::optional<ResourcePool> poolOf(const DfgOp& op) {
    const FuClass cls = fuClassOf(op);
    switch (cls) {
    case FuClass::Mul: return ResourcePool{cls, 0};
    case FuClass::Div: return ResourcePool{cls, 0};
    case FuClass::Mem: return ResourcePool{cls, op.array};
    case FuClass::Stream: return ResourcePool{cls, op.port};
    default: return std::nullopt;
    }
}

/// Cycles a unit in this pool stays busy per started op. Pipelined DSP
/// multipliers accept one op per cycle; the iterative divider blocks for
/// its full latency; memory/stream ports are busy one cycle per access.
std::int64_t poolBusyCycles(const ResourcePool& pool, const LatencyModel& lat) {
    return pool.cls == FuClass::Div ? lat.divLatency : 1;
}

class BlockScheduler {
public:
    BlockScheduler(const Directives& d, const LatencyModel& lat) : d_(d), lat_(lat) {}

    BlockSchedule run(Dfg dfg) const {
        BlockSchedule out;
        out.startCycle.assign(dfg.size(), 0);

        // Priority: longest path from op to any sink (critical-path first).
        std::vector<std::int64_t> priority(dfg.size(), 0);
        for (std::size_t i = dfg.size(); i-- > 0;) {
            priority[i] = lat_.of(dfg.ops[i]);
        }
        for (std::size_t i = dfg.size(); i-- > 0;) {
            for (OpId dep : dfg.ops[i].deps) {
                priority[dep] =
                    std::max(priority[dep], priority[i] + lat_.of(dfg.ops[dep]));
            }
        }

        const bool constrained = d_.scheduler == SchedulerKind::List;
        std::map<ResourcePool, std::vector<std::int64_t>> unitFreeAt;

        // Ops are stored in topological order (deps have smaller ids), so a
        // single forward pass with per-op earliest-start works for both
        // ASAP and resource-constrained modes. For the constrained mode we
        // greedily place ops in priority order among those whose deps are
        // already placed — here simply in index order with unit lookahead,
        // which matches list scheduling on a topologically sorted graph.
        std::vector<std::size_t> order(dfg.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
            order[i] = i;
        }
        std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            // Respect topology first (an op can never precede its deps in
            // placement because deps have smaller indices and earliest
            // start accounts for them), then prefer critical ops.
            return priority[a] > priority[b];
        });

        // Earliest start from dependencies; recompute as ops get placed.
        std::vector<bool> placed(dfg.size(), false);
        std::vector<std::size_t> pending = order;
        std::int64_t length = 0;
        while (!pending.empty()) {
            bool progressed = false;
            for (auto it = pending.begin(); it != pending.end();) {
                const std::size_t i = *it;
                const DfgOp& op = dfg.ops[i];
                bool ready = true;
                std::int64_t earliest = 0;
                for (OpId dep : op.deps) {
                    if (!placed[dep]) {
                        ready = false;
                        break;
                    }
                    earliest = std::max(earliest,
                                        out.startCycle[dep] + lat_.of(dfg.ops[dep]));
                }
                if (!ready) {
                    ++it;
                    continue;
                }
                std::int64_t start = earliest;
                if (constrained) {
                    if (const auto pool = poolOf(op)) {
                        auto& units = unitFreeAt[*pool];
                        if (units.empty()) {
                            const int capacity = poolCapacity(*pool, d_);
                            require(capacity > 0, "resource pool with zero capacity");
                            units.assign(static_cast<std::size_t>(capacity), 0);
                        }
                        // Pick the unit that allows the earliest start.
                        auto best = std::min_element(units.begin(), units.end());
                        start = std::max(start, *best);
                        *best = start + poolBusyCycles(*pool, lat_);
                    }
                }
                out.startCycle[i] = start;
                placed[i] = true;
                length = std::max(length, start + lat_.of(op));
                it = pending.erase(it);
                progressed = true;
            }
            if (!progressed) {
                throw HlsError("scheduler made no progress (dependency cycle?)");
            }
        }
        out.length = length;
        out.dfg = std::move(dfg);
        return out;
    }

private:
    const Directives& d_;
    const LatencyModel& lat_;
};

/// Resource-constrained component of the initiation interval.
std::int64_t resourceIi(const Dfg& dfg, const Directives& d) {
    std::map<ResourcePool, std::int64_t> uses;
    for (const auto& op : dfg.ops) {
        if (const auto pool = poolOf(op)) {
            ++uses[*pool];
        }
    }
    std::int64_t ii = 1;
    for (const auto& [pool, count] : uses) {
        const int capacity = poolCapacity(pool, d);
        if (capacity > 0) {
            const std::int64_t perUnit = pool.cls == FuClass::Div ? 1 : 1;
            (void)perUnit;
            ii = std::max(ii, (count + capacity - 1) / capacity);
        }
    }
    return ii;
}

/// Recurrence-constrained component of the initiation interval:
/// (a) intra-loop array store feeding a next-iteration load of the same
///     array (e.g. the histogram update), and
/// (b) scalar accumulation (op reads a block-external var that some op in
///     the block assigns).
std::int64_t recurrenceIi(const Dfg& dfg, const LatencyModel& lat) {
    // finishFrom[i][?]: longest path metric computed per source set; we
    // just need, for each "source" op, the longest latency path to each
    // "sink" op. Sizes are small (tens of ops), so O(n^2) relaxations are
    // fine.
    const std::size_t n = dfg.size();
    std::int64_t ii = 1;

    const auto longestPath = [&](OpId from, OpId to) -> std::int64_t {
        // Longest latency path from `from` (inclusive) to `to` (inclusive);
        // -1 if unreachable. Ids are topologically ordered.
        if (from > to) {
            return -1;
        }
        std::vector<std::int64_t> dist(n, -1);
        dist[from] = lat.of(dfg.ops[from]);
        for (std::size_t i = from + 1; i <= to; ++i) {
            for (OpId dep : dfg.ops[i].deps) {
                if (dist[dep] >= 0) {
                    dist[i] = std::max(dist[i], dist[dep] + lat.of(dfg.ops[i]));
                }
            }
        }
        return dist[to];
    };

    for (OpId store = 0; store < n; ++store) {
        if (dfg.ops[store].kind != OpKind::ArrayStore) {
            continue;
        }
        for (OpId loadOp = 0; loadOp < n; ++loadOp) {
            const auto& l = dfg.ops[loadOp];
            if (l.kind == OpKind::ArrayLoad && l.array == dfg.ops[store].array) {
                const std::int64_t path = longestPath(loadOp, store);
                if (path > 0) {
                    ii = std::max(ii, path);
                }
            }
        }
    }

    for (OpId def = 0; def < n; ++def) {
        const VarId v = dfg.ops[def].assignsVar;
        if (v == kNoId) {
            continue;
        }
        for (OpId use = 0; use < n; ++use) {
            const auto& reads = dfg.ops[use].varReads;
            if (std::find(reads.begin(), reads.end(), v) != reads.end()) {
                const std::int64_t path = longestPath(use, def);
                if (path > 0) {
                    ii = std::max(ii, path);
                }
            }
        }
    }
    return ii;
}

struct LoopWalker {
    const Kernel& kernel;
    const Directives& directives;
    const LatencyModel& latency;
    std::vector<LoopSchedule> loops;

    static std::int64_t loopLatencyCb(void* ctx, StmtId stmt) {
        auto* self = static_cast<LoopWalker*>(ctx);
        for (const auto& l : self->loops) {
            if (l.stmt == stmt) {
                return l.totalCycles;
            }
        }
        throw HlsError("inner loop scheduled out of order");
    }

    std::int64_t tripCountOf(const Stmt& s) const {
        const Expr& bound = kernel.expr(s.value);
        if (bound.kind == ExprKind::Const) {
            return std::max<std::int64_t>(bound.value, 0);
        }
        const std::string& var = kernel.vars()[s.var].name;
        const auto it = directives.tripCountHints.find(var);
        return it != directives.tripCountHints.end() ? it->second
                                                     : directives.defaultTripCount;
    }

    void walkBlock(const std::vector<StmtId>& block) {
        for (StmtId id : block) {
            const Stmt& s = kernel.stmt(id);
            if (s.kind == StmtKind::For) {
                walkBlock(s.body);  // innermost first
                scheduleLoop(id, s);
            } else if (s.kind == StmtKind::If) {
                walkBlock(s.body);
                walkBlock(s.elseBody);
            }
        }
    }

    void scheduleLoop(StmtId id, const Stmt& s) {
        LoopSchedule ls;
        ls.stmt = id;
        ls.inductionVar = kernel.vars()[s.var].name;
        const Expr& bound = kernel.expr(s.value);
        ls.tripExact = bound.kind == ExprKind::Const;
        ls.tripCount = tripCountOf(s);

        Dfg dfg = buildDfg(kernel, s.body, &LoopWalker::loopLatencyCb, this);
        const bool hasInnerLoop =
            std::any_of(dfg.ops.begin(), dfg.ops.end(),
                        [](const DfgOp& op) { return op.kind == OpKind::LoopNest; });

        ls.body = BlockScheduler(directives, latency).run(std::move(dfg));

        // The loop induction increment/compare adds a cycle of control
        // unless the body already spans multiple cycles.
        const std::int64_t bodyLatency = std::max<std::int64_t>(ls.body.length, 1);

        if (directives.pipelineLoops && !hasInnerLoop) {
            ls.pipelined = true;
            ls.ii = std::max(resourceIi(ls.body.dfg, directives),
                             recurrenceIi(ls.body.dfg, latency));
            ls.totalCycles =
                ls.tripCount > 0 ? bodyLatency + (ls.tripCount - 1) * ls.ii : 0;
        } else {
            ls.pipelined = false;
            ls.ii = bodyLatency;
            ls.totalCycles = ls.tripCount * (bodyLatency + 1);
        }
        loops.push_back(std::move(ls));
    }
};

} // namespace

const LoopSchedule* KernelSchedule::loopFor(StmtId stmt) const {
    for (const auto& l : loops) {
        if (l.stmt == stmt) {
            return &l;
        }
    }
    return nullptr;
}

std::string KernelSchedule::report(const Kernel& kernel) const {
    std::ostringstream out;
    out << "== HLS schedule report: " << kernel.name() << " ==\n";
    out << format("total estimated latency: %lld cycles\n",
                  static_cast<long long>(totalLatencyCycles));
    for (const auto& l : loops) {
        out << format(
            "loop %-12s trip=%lld%s depth=%lld %s II=%lld total=%lld cycles\n",
            l.inductionVar.c_str(), static_cast<long long>(l.tripCount),
            l.tripExact ? "" : " (est)", static_cast<long long>(l.body.length),
            l.pipelined ? "pipelined" : "sequential", static_cast<long long>(l.ii),
            static_cast<long long>(l.totalCycles));
    }
    out << format("top-level block: %zu ops, %lld cycles\n", top.dfg.size(),
                  static_cast<long long>(top.length));
    return out.str();
}

KernelSchedule scheduleKernel(const Kernel& kernel, const Directives& directives,
                              const LatencyModel& latency) {
    KernelSchedule out;
    LoopWalker walker{kernel, directives, latency, {}};
    walker.walkBlock(kernel.body());

    Dfg topDfg = buildDfg(kernel, kernel.body(), &LoopWalker::loopLatencyCb, &walker);
    out.top = BlockScheduler(directives, latency).run(std::move(topDfg));
    out.loops = std::move(walker.loops);
    out.totalLatencyCycles = std::max<std::int64_t>(out.top.length, 1);
    return out;
}

} // namespace socgen::hls
