#pragma once

#include "socgen/hls/dfg.hpp"
#include "socgen/hls/directives.hpp"
#include "socgen/hls/ir.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace socgen::hls {

/// Functional-unit class used for resource-constrained scheduling and
/// binding. Alu ops are considered abundant (LUT fabric); Mul maps to
/// DSP slices, Div to an iterative divider, Mem to a BRAM port, Stream
/// to the port's single handshake interface.
enum class FuClass { Alu, Mul, Div, Mem, Stream, Loop };

[[nodiscard]] FuClass fuClassOf(const DfgOp& op);

/// Default operation latencies in cycles at the 100 MHz Zynq PL clock.
struct LatencyModel {
    std::int64_t aluLatency = 1;
    std::int64_t mulLatency = 3;     ///< pipelined DSP48 multiplier
    std::int64_t divLatency = 18;    ///< iterative divider (width/2 + control)
    std::int64_t loadLatency = 2;    ///< synchronous BRAM read
    std::int64_t storeLatency = 1;
    std::int64_t streamLatency = 1;  ///< one handshake beat

    [[nodiscard]] std::int64_t of(const DfgOp& op) const;
};

/// Schedule of one straight-line block (loop body or top-level segment).
struct BlockSchedule {
    Dfg dfg;
    std::vector<std::int64_t> startCycle;  ///< per op
    std::int64_t length = 0;               ///< cycles until all ops finish

    [[nodiscard]] std::int64_t finishOf(OpId op, const LatencyModel& lat) const {
        return startCycle[op] + lat.of(dfg.ops[op]);
    }
};

/// Schedule and pipelining result of one For loop.
struct LoopSchedule {
    StmtId stmt = kNoId;
    std::string inductionVar;
    std::int64_t tripCount = 0;   ///< exact or estimated
    bool tripExact = false;
    BlockSchedule body;
    bool pipelined = false;
    std::int64_t ii = 1;          ///< initiation interval when pipelined
    std::int64_t totalCycles = 0; ///< estimated cycles for the whole loop
};

/// Complete schedule of a kernel: all loops (post-order, innermost first)
/// plus the top-level block where inner loops appear as macro-ops.
struct KernelSchedule {
    std::vector<LoopSchedule> loops;
    BlockSchedule top;
    std::int64_t totalLatencyCycles = 0;

    [[nodiscard]] const LoopSchedule* loopFor(StmtId stmt) const;

    /// Human-readable schedule report (per-loop II/depth/trip/latency),
    /// the analogue of a Vivado HLS synthesis report.
    [[nodiscard]] std::string report(const Kernel& kernel) const;
};

/// Schedules `kernel` under `directives`:
///  - SchedulerKind::Asap ignores resource limits;
///  - SchedulerKind::List enforces maxMulUnits / maxDivUnits /
///    memPortsPerArray / one access per stream port per cycle.
/// Pipelined loops get II = max(resource II, recurrence II).
/// Throws HlsError on kernels it cannot schedule.
KernelSchedule scheduleKernel(const Kernel& kernel, const Directives& directives,
                              const LatencyModel& latency = {});

} // namespace socgen::hls
