#include "socgen/hls/codegen.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <algorithm>
#include <map>
#include <optional>

namespace socgen::hls {

namespace {

using rtl::CellKind;
using rtl::NetId;

CellKind cellKindFor(BinOp op) {
    switch (op) {
    case BinOp::Add: return CellKind::Add;
    case BinOp::Sub: return CellKind::Sub;
    case BinOp::Mul: return CellKind::Mul;
    case BinOp::Div: return CellKind::Div;
    case BinOp::Mod: return CellKind::Mod;
    case BinOp::And: return CellKind::And;
    case BinOp::Or: return CellKind::Or;
    case BinOp::Xor: return CellKind::Xor;
    case BinOp::Shl: return CellKind::Shl;
    case BinOp::Shr: return CellKind::Shr;
    case BinOp::Eq: return CellKind::Eq;
    case BinOp::Ne: return CellKind::Ne;
    case BinOp::Lt: return CellKind::Lt;
    case BinOp::Le: return CellKind::Le;
    case BinOp::Gt: return CellKind::Gt;
    case BinOp::Ge: return CellKind::Ge;
    case BinOp::Min:
    case BinOp::Max:
        return CellKind::Mux;  // composed from Lt + Mux by the generator
    }
    return CellKind::Add;
}

class RtlGenerator {
public:
    RtlGenerator(const Kernel& kernel, const KernelSchedule& schedule,
                 const KernelBinding& binding)
        : k_(kernel), sched_(schedule), bind_(binding),
          netlist_(sanitizeIdentifier(kernel.name())) {}

    rtl::Netlist run() {
        makePorts();
        makeStateMachineNets();
        makeVarNets();
        makeUnitNets();
        makeArrayNets();

        // Process every scheduled block with a dense control-step offset.
        std::int64_t offset = 1;  // state 0 = idle/waiting for ap_start
        for (std::size_t li = 0; li < sched_.loops.size(); ++li) {
            offset = processBlock(sched_.loops[li].body, bind_.loopBindings[li], offset);
        }
        offset = processBlock(sched_.top, bind_.topBinding, offset);
        totalSteps_ = offset;

        finishUnits();
        finishArrays();
        finishVars();
        finishStreams();
        finishScalarOuts();
        finishControl();
        netlist_.check();
        return std::move(netlist_);
    }

private:
    struct StreamPortNets {
        NetId tdata = rtl::kInvalid;
        NetId tvalid = rtl::kInvalid;
        NetId tready = rtl::kInvalid;
        bool isInput = false;
        unsigned width = 32;
        // For outputs: accumulated (selectNet, valueNet) writes.
        std::vector<std::pair<NetId, NetId>> writes;
        // For inputs: read-select nets (drive tready).
        std::vector<NetId> readSelects;
    };

    struct ArrayNets {
        NetId rdata = rtl::kInvalid;
        unsigned width = 32;
        std::int64_t depth = 0;
        std::vector<std::pair<NetId, NetId>> addr;    ///< (sel, index)
        std::vector<std::pair<NetId, NetId>> wdata;   ///< (sel, value)
        std::vector<NetId> writeSelects;
    };

    struct SharedUnit {
        CellKind kind = CellKind::Mul;
        NetId out = rtl::kInvalid;
        unsigned width = 1;
        std::vector<std::pair<NetId, NetId>> inA;  ///< (sel, operand)
        std::vector<std::pair<NetId, NetId>> inB;
    };

    struct VarNets {
        NetId q = rtl::kInvalid;
        unsigned width = 32;
        std::vector<std::pair<NetId, NetId>> assigns;  ///< (sel, value)
        bool isInduction = false;
    };

    // ---- setup ------------------------------------------------------------

    void makePorts() {
        apStart_ = netlist_.addNet("ap_start", 1);
        netlist_.addPort("ap_start", rtl::PortDir::In, 1, apStart_);
        for (PortId pid = 0; pid < k_.ports().size(); ++pid) {
            const KernelPort& p = k_.port(pid);
            const std::string base = sanitizeIdentifier(p.name);
            switch (p.kind) {
            case PortKind::ScalarIn: {
                const NetId net = netlist_.addNet(base, p.width);
                netlist_.addPort(base, rtl::PortDir::In, p.width, net);
                scalarIn_[pid] = net;
                break;
            }
            case PortKind::ScalarOut: {
                scalarOutWidth_[pid] = p.width;
                break;  // net created when the result register is built
            }
            case PortKind::StreamIn:
            case PortKind::StreamOut: {
                StreamPortNets nets;
                nets.isInput = p.kind == PortKind::StreamIn;
                nets.width = p.width;
                if (nets.isInput) {
                    nets.tdata = netlist_.addNet(base + "_tdata", p.width);
                    netlist_.addPort(base + "_tdata", rtl::PortDir::In, p.width, nets.tdata);
                    nets.tvalid = netlist_.addNet(base + "_tvalid", 1);
                    netlist_.addPort(base + "_tvalid", rtl::PortDir::In, 1, nets.tvalid);
                } else {
                    nets.tready = netlist_.addNet(base + "_tready", 1);
                    netlist_.addPort(base + "_tready", rtl::PortDir::In, 1, nets.tready);
                }
                streams_[pid] = nets;
                break;
            }
            }
        }
    }

    void makeStateMachineNets() {
        state_ = netlist_.addNet("fsm_state", 16);
    }

    void makeVarNets() {
        for (VarId v = 0; v < k_.vars().size(); ++v) {
            VarNets nets;
            nets.width = k_.vars()[v].width;
            nets.q = netlist_.addNet("var_" + sanitizeIdentifier(k_.vars()[v].name),
                                     nets.width);
            vars_[v] = nets;
        }
        // Mark loop induction variables (driven by a counter).
        for (const auto& loop : sched_.loops) {
            for (VarId v = 0; v < k_.vars().size(); ++v) {
                if (k_.vars()[v].name == loop.inductionVar) {
                    vars_[v].isInduction = true;
                }
            }
        }
    }

    void makeUnitNets() {
        for (int u = 0; u < bind_.mulUnits; ++u) {
            SharedUnit unit;
            unit.kind = CellKind::Mul;
            unit.out = netlist_.addNet(format("mul_unit%d_out", u), 32);
            mulUnits_.push_back(unit);
        }
        for (int u = 0; u < bind_.divUnits; ++u) {
            SharedUnit unit;
            unit.kind = CellKind::Div;
            unit.out = netlist_.addNet(format("div_unit%d_out", u), 32);
            divUnits_.push_back(unit);
        }
    }

    void makeArrayNets() {
        for (ArrayId a = 0; a < k_.arrays().size(); ++a) {
            ArrayNets nets;
            nets.width = k_.arrays()[a].width;
            nets.depth = static_cast<std::int64_t>(k_.arrays()[a].depth);
            nets.rdata = netlist_.addNet(
                "mem_" + sanitizeIdentifier(k_.arrays()[a].name) + "_rdata", nets.width);
            arrays_[a] = nets;
        }
    }

    // ---- helpers ------------------------------------------------------------

    NetId constant(std::int64_t value, unsigned width) {
        const auto key = std::make_pair(value, width);
        const auto it = constCache_.find(key);
        if (it != constCache_.end()) {
            return it->second;
        }
        const NetId net = netlist_.addNet(format("k%lld_w%u", static_cast<long long>(value),
                                                 width),
                                          width);
        netlist_.addCell(format("const_%zu", netlist_.cells().size()), CellKind::Const,
                         width, {}, {net}, value);
        constCache_[key] = net;
        return net;
    }

    NetId eqState(std::int64_t step) {
        const auto it = eqCache_.find(step);
        if (it != eqCache_.end()) {
            return it->second;
        }
        const NetId out = netlist_.addNet(format("st_eq_%lld", static_cast<long long>(step)),
                                          1);
        netlist_.addCell(format("st_eq_c%lld", static_cast<long long>(step)), CellKind::Eq,
                         16, {state_, constant(step, 16)}, {out});
        eqCache_[step] = out;
        return out;
    }

    NetId binaryCell(CellKind kind, NetId a, NetId b, unsigned width,
                     std::string_view base) {
        const NetId out = netlist_.addNet(format("%.*s_out%zu", static_cast<int>(base.size()),
                                                 base.data(), netlist_.nets().size()),
                                          width);
        netlist_.addCell(format("%.*s_c%zu", static_cast<int>(base.size()), base.data(),
                                netlist_.cells().size()),
                         kind, width, {a, b}, {out});
        return out;
    }

    NetId muxCell(NetId sel, NetId whenZero, NetId whenNonZero, unsigned width) {
        const NetId out = netlist_.addNet(format("mux_out%zu", netlist_.nets().size()),
                                          width);
        netlist_.addCell(format("mux_c%zu", netlist_.cells().size()), CellKind::Mux, width,
                         {sel, whenZero, whenNonZero}, {out});
        return out;
    }

    NetId regCell(NetId d, NetId en, unsigned width, std::string_view base) {
        const NetId out = netlist_.addNet(format("%.*s_q%zu", static_cast<int>(base.size()),
                                                 base.data(), netlist_.nets().size()),
                                          width);
        std::vector<NetId> inputs{d};
        if (en != rtl::kInvalid) {
            inputs.push_back(en);
        }
        netlist_.addCell(format("%.*s_r%zu", static_cast<int>(base.size()), base.data(),
                                netlist_.cells().size()),
                         CellKind::Reg, width, std::move(inputs), {out});
        return out;
    }

    /// Folds (sel, value) pairs into a priority mux cascade, defaulting to 0.
    NetId cascade(const std::vector<std::pair<NetId, NetId>>& entries, unsigned width) {
        NetId current = constant(0, width);
        for (const auto& [sel, value] : entries) {
            current = muxCell(sel, current, value, width);
        }
        return current;
    }

    /// Folds select nets into an OR tree (0 if empty).
    NetId orTree(const std::vector<NetId>& nets) {
        if (nets.empty()) {
            return constant(0, 1);
        }
        NetId current = nets.front();
        for (std::size_t i = 1; i < nets.size(); ++i) {
            current = binaryCell(CellKind::Or, current, nets[i], 1, "or");
        }
        return current;
    }

    // ---- per-block processing ----------------------------------------------

    std::int64_t processBlock(const BlockSchedule& block, const BlockBinding& binding,
                              std::int64_t offset) {
        // Dense control steps: unique start cycles in ascending order.
        std::vector<std::int64_t> cycles = block.startCycle;
        std::sort(cycles.begin(), cycles.end());
        cycles.erase(std::unique(cycles.begin(), cycles.end()), cycles.end());
        std::map<std::int64_t, std::int64_t> stepOfCycle;
        for (std::size_t i = 0; i < cycles.size(); ++i) {
            stepOfCycle[cycles[i]] = offset + static_cast<std::int64_t>(i);
        }

        exprNet_.clear();
        std::vector<NetId> valueNet(block.dfg.size(), rtl::kInvalid);

        for (OpId i = 0; i < block.dfg.size(); ++i) {
            const DfgOp& op = block.dfg.ops[i];
            const std::int64_t step = stepOfCycle.at(block.startCycle[i]);
            const NetId sel = op.kind == OpKind::LoopNest ? rtl::kInvalid : eqState(step);
            valueNet[i] = emitOp(block, binding, i, op, sel, valueNet);
            if (op.expr != kNoId) {
                exprNet_[op.expr] = valueNet[i];
            }
            // Value-producing ops whose result defines a variable feed the
            // variable's register (Move records its own entry in emitOp).
            if (op.assignsVar != kNoId && op.kind != OpKind::Move &&
                valueNet[i] != rtl::kInvalid) {
                vars_.at(op.assignsVar).assigns.emplace_back(sel, valueNet[i]);
            }
        }
        return offset + static_cast<std::int64_t>(cycles.size()) + 1;
    }

    NetId netOfExpr(ExprId id) {
        const auto it = exprNet_.find(id);
        if (it != exprNet_.end()) {
            return it->second;
        }
        const Expr& e = k_.expr(id);
        switch (e.kind) {
        case ExprKind::Const:
            return constant(e.value, std::max(1u, widthOfConst(e.value)));
        case ExprKind::Var:
            return vars_.at(e.var).q;
        case ExprKind::Arg:
            return scalarIn_.at(e.port);
        default:
            throw HlsError(format("kernel %s: expression %u has no generated net",
                                  k_.name().c_str(), id));
        }
    }

    static unsigned widthOfConst(std::int64_t value) {
        if (value < 0) {
            return 32;
        }
        unsigned bits = 1;
        while ((value >> bits) != 0 && bits < 63) {
            ++bits;
        }
        return bits;
    }

    NetId emitOp(const BlockSchedule& block, const BlockBinding& binding, OpId i,
                 const DfgOp& op, NetId sel, const std::vector<NetId>& valueNet) {
        (void)block;
        switch (op.kind) {
        case OpKind::Binary: {
            const Expr& e = k_.expr(op.expr);
            const NetId a = netOfExpr(e.a);
            const NetId b = netOfExpr(e.b);
            const FuClass cls = fuClassOf(op);
            if (cls == FuClass::Mul || cls == FuClass::Div) {
                auto& pool = cls == FuClass::Mul ? mulUnits_ : divUnits_;
                require(binding.unitOf[i] >= 0, "shared op without unit");
                SharedUnit& unit = pool[static_cast<std::size_t>(binding.unitOf[i])];
                unit.width = std::max(unit.width, op.width);
                if (cls == FuClass::Div && op.bop == BinOp::Mod) {
                    unit.kind = CellKind::Mod;  // divider exposes remainder too
                }
                unit.inA.emplace_back(sel, a);
                unit.inB.emplace_back(sel, b);
                return regCell(unit.out, sel, op.width, "fu_res");
            }
            if (op.bop == BinOp::Min || op.bop == BinOp::Max) {
                const NetId cmp = binaryCell(
                    op.bop == BinOp::Min ? CellKind::Lt : CellKind::Gt, a, b, op.width,
                    "cmp");
                return muxCell(cmp, b, a, op.width);
            }
            return binaryCell(cellKindFor(op.bop), a, b, op.width, "alu");
        }
        case OpKind::Unary: {
            const Expr& e = k_.expr(op.expr);
            const NetId a = netOfExpr(e.a);
            if (op.uop == UnOp::Neg) {
                return binaryCell(CellKind::Sub, constant(0, op.width), a, op.width, "neg");
            }
            const NetId out = netlist_.addNet(format("not_out%zu", netlist_.nets().size()),
                                              op.width);
            netlist_.addCell(format("not_c%zu", netlist_.cells().size()), CellKind::Not,
                             op.width, {a}, {out});
            return out;
        }
        case OpKind::Select: {
            const Expr& e = k_.expr(op.expr);
            return muxCell(netOfExpr(e.a), netOfExpr(e.c), netOfExpr(e.b), op.width);
        }
        case OpKind::Move: {
            const NetId value = netOfExpr(op.valueExpr);
            vars_.at(op.assignsVar).assigns.emplace_back(sel, value);
            return value;
        }
        case OpKind::ArrayLoad: {
            ArrayNets& mem = arrays_.at(op.array);
            mem.addr.emplace_back(sel, netOfExpr(op.indexExpr));
            return regCell(mem.rdata, sel, op.width, "ld_res");
        }
        case OpKind::ArrayStore: {
            ArrayNets& mem = arrays_.at(op.array);
            mem.addr.emplace_back(sel, netOfExpr(op.indexExpr));
            mem.wdata.emplace_back(sel, netOfExpr(op.valueExpr));
            mem.writeSelects.push_back(sel);
            return rtl::kInvalid;
        }
        case OpKind::StreamRead: {
            StreamPortNets& port = streams_.at(op.port);
            port.readSelects.push_back(sel);
            return regCell(port.tdata, sel, op.width, "rd_res");
        }
        case OpKind::StreamWrite: {
            StreamPortNets& port = streams_.at(op.port);
            port.writes.emplace_back(sel, netOfExpr(op.valueExpr));
            return rtl::kInvalid;
        }
        case OpKind::SetResult: {
            scalarOutWrites_[op.port].emplace_back(sel, netOfExpr(op.valueExpr));
            return rtl::kInvalid;
        }
        case OpKind::LoopNest:
            return rtl::kInvalid;
        }
        (void)valueNet;
        throw HlsError("unreachable op kind in codegen");
    }

    // ---- finalisation --------------------------------------------------------

    void finishUnits() {
        int index = 0;
        for (auto* pool : {&mulUnits_, &divUnits_}) {
            for (SharedUnit& unit : *pool) {
                // Update the pre-created output net's width.
                const NetId a = cascade(unit.inA, unit.width);
                const NetId b = cascade(unit.inB, unit.width);
                netlist_.addCell(format("fu_%d", index++), unit.kind, unit.width, {a, b},
                                 {unit.out});
            }
        }
    }

    void finishArrays() {
        for (auto& [id, mem] : arrays_) {
            const unsigned addrWidth = 16;
            const NetId addr = cascade(mem.addr, addrWidth);
            const NetId wdata = cascade(mem.wdata, mem.width);
            const NetId we = orTree(mem.writeSelects);
            netlist_.addCell("mem_" + sanitizeIdentifier(k_.arrays()[id].name),
                             CellKind::Bram, mem.width, {addr, wdata, we}, {mem.rdata},
                             mem.depth);
        }
    }

    void finishVars() {
        for (auto& [id, var] : vars_) {
            if (var.isInduction && var.assigns.empty()) {
                // Induction counter: q + 1, always enabled.
                const NetId next =
                    binaryCell(CellKind::Add, var.q, constant(1, var.width), var.width,
                               "ind");
                netlist_.addCell("ind_" + sanitizeIdentifier(k_.vars()[id].name),
                                 CellKind::Reg, var.width, {next}, {var.q});
                continue;
            }
            std::vector<NetId> selects;
            selects.reserve(var.assigns.size());
            for (const auto& [sel, value] : var.assigns) {
                selects.push_back(sel);
            }
            const NetId d = var.assigns.empty() ? var.q : cascade(var.assigns, var.width);
            const NetId en = var.assigns.empty() ? constant(0, 1) : orTree(selects);
            netlist_.addCell("var_" + sanitizeIdentifier(k_.vars()[id].name) + "_reg",
                             CellKind::Reg, var.width, {d, en}, {var.q});
        }
    }

    void finishStreams() {
        for (auto& [id, port] : streams_) {
            const std::string base = sanitizeIdentifier(k_.port(id).name);
            if (port.isInput) {
                const NetId tready = orTree(port.readSelects);
                netlist_.addPort(base + "_tready", rtl::PortDir::Out, 1, tready);
            } else {
                const NetId tdata = cascade(port.writes, port.width);
                std::vector<NetId> selects;
                for (const auto& [sel, value] : port.writes) {
                    selects.push_back(sel);
                }
                const NetId tvalid = orTree(selects);
                netlist_.addPort(base + "_tdata", rtl::PortDir::Out, port.width, tdata);
                netlist_.addPort(base + "_tvalid", rtl::PortDir::Out, 1, tvalid);
            }
        }
    }

    void finishScalarOuts() {
        for (const auto& [pid, width] : scalarOutWidth_) {
            const auto it = scalarOutWrites_.find(pid);
            const std::string base = sanitizeIdentifier(k_.port(pid).name);
            std::vector<std::pair<NetId, NetId>> writes =
                it != scalarOutWrites_.end() ? it->second
                                             : std::vector<std::pair<NetId, NetId>>{};
            std::vector<NetId> selects;
            for (const auto& [sel, value] : writes) {
                selects.push_back(sel);
            }
            const NetId d = cascade(writes, width);
            const NetId en = orTree(selects);
            const NetId q = regCell(d, en, width, base);
            netlist_.addPort(base, rtl::PortDir::Out, width, q);
        }
    }

    void finishControl() {
        // FSM status inputs: ap_start plus every stream handshake input.
        std::vector<NetId> status{apStart_};
        for (const auto& [id, port] : streams_) {
            if (port.isInput) {
                status.push_back(port.tvalid);
            } else {
                status.push_back(port.tready);
            }
        }
        netlist_.addCell("ctrl_fsm", CellKind::Fsm, 16, std::move(status), {state_},
                         std::max<std::int64_t>(totalSteps_ + 1, 2));
        const NetId done = eqState(totalSteps_);
        netlist_.addPort("ap_done", rtl::PortDir::Out, 1, done);
    }

    const Kernel& k_;
    const KernelSchedule& sched_;
    const KernelBinding& bind_;
    rtl::Netlist netlist_;

    NetId apStart_ = rtl::kInvalid;
    NetId state_ = rtl::kInvalid;
    std::int64_t totalSteps_ = 0;

    std::map<PortId, NetId> scalarIn_;
    std::map<PortId, unsigned> scalarOutWidth_;
    std::map<PortId, std::vector<std::pair<NetId, NetId>>> scalarOutWrites_;
    std::map<PortId, StreamPortNets> streams_;
    std::map<ArrayId, ArrayNets> arrays_;
    std::map<VarId, VarNets> vars_;
    std::vector<SharedUnit> mulUnits_;
    std::vector<SharedUnit> divUnits_;
    std::map<std::pair<std::int64_t, unsigned>, NetId> constCache_;
    std::map<std::int64_t, NetId> eqCache_;
    std::map<ExprId, NetId> exprNet_;
};

} // namespace

rtl::Netlist generateRtl(const Kernel& kernel, const KernelSchedule& schedule,
                         const KernelBinding& binding) {
    return RtlGenerator(kernel, schedule, binding).run();
}

} // namespace socgen::hls
