#include "socgen/hls/binding.hpp"

#include <algorithm>

namespace socgen::hls {

namespace {

/// Left-edge packing of the ops in `cls` onto units; returns units used.
int packClass(const BlockSchedule& block, const LatencyModel& latency, FuClass cls,
              std::vector<int>& unitOf) {
    struct Item {
        OpId op;
        std::int64_t start;
        std::int64_t busyUntil;
    };
    std::vector<Item> items;
    for (OpId i = 0; i < block.dfg.size(); ++i) {
        const DfgOp& op = block.dfg.ops[i];
        if (fuClassOf(op) != cls) {
            continue;
        }
        const std::int64_t busy = cls == FuClass::Div ? latency.of(op) : 1;
        items.push_back(Item{i, block.startCycle[i], block.startCycle[i] + busy});
    }
    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return a.start < b.start; });
    std::vector<std::int64_t> unitFreeAt;
    for (const Item& item : items) {
        int unit = -1;
        for (std::size_t u = 0; u < unitFreeAt.size(); ++u) {
            if (unitFreeAt[u] <= item.start) {
                unit = static_cast<int>(u);
                break;
            }
        }
        if (unit < 0) {
            unit = static_cast<int>(unitFreeAt.size());
            unitFreeAt.push_back(0);
        }
        unitFreeAt[static_cast<std::size_t>(unit)] = item.busyUntil;
        unitOf[item.op] = unit;
    }
    return static_cast<int>(unitFreeAt.size());
}

} // namespace

BlockBinding bindBlock(const BlockSchedule& block, const LatencyModel& latency) {
    BlockBinding binding;
    binding.unitOf.assign(block.dfg.size(), -1);
    binding.mulUnits = packClass(block, latency, FuClass::Mul, binding.unitOf);
    binding.divUnits = packClass(block, latency, FuClass::Div, binding.unitOf);
    return binding;
}

KernelBinding bindKernel(const KernelSchedule& schedule, const LatencyModel& latency) {
    KernelBinding out;
    for (const auto& loop : schedule.loops) {
        out.loopBindings.push_back(bindBlock(loop.body, latency));
        out.mulUnits = std::max(out.mulUnits, out.loopBindings.back().mulUnits);
        out.divUnits = std::max(out.divUnits, out.loopBindings.back().divUnits);
    }
    out.topBinding = bindBlock(schedule.top, latency);
    out.mulUnits = std::max(out.mulUnits, out.topBinding.mulUnits);
    out.divUnits = std::max(out.divUnits, out.topBinding.divUnits);
    return out;
}

} // namespace socgen::hls
