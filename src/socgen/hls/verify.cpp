#include "socgen/hls/verify.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <set>

namespace socgen::hls {

namespace {

class Verifier {
public:
    explicit Verifier(const Kernel& k) : k_(k) {}

    void run() {
        checkPorts();
        for (StmtId id : k_.body()) {
            checkStmt(id);
        }
    }

private:
    void fail(const std::string& what) const {
        throw HlsError(format("kernel %s: %s", k_.name().c_str(), what.c_str()));
    }

    void checkPorts() const {
        std::set<std::string> names;
        for (const auto& p : k_.ports()) {
            if (p.name.empty()) {
                fail("empty port name");
            }
            if (!names.insert(p.name).second) {
                fail("duplicate port name '" + p.name + "'");
            }
            if (p.width == 0 || p.width > 64) {
                fail(format("port '%s' has unsupported width %u", p.name.c_str(), p.width));
            }
        }
    }

    void checkExpr(ExprId id) {
        if (id >= k_.exprs().size()) {
            fail("expression id out of range");
        }
        // Construction order guarantees operands have smaller ids; this
        // also rules out cycles.
        const Expr& e = k_.expr(id);
        const auto checkOperand = [&](ExprId op) {
            if (op == kNoId) {
                fail("missing expression operand");
            }
            if (op >= id) {
                fail("expression operand does not precede its use");
            }
            checkExpr(op);
        };
        switch (e.kind) {
        case ExprKind::Const:
            break;
        case ExprKind::Var:
            if (e.var >= k_.vars().size()) {
                fail("variable id out of range");
            }
            break;
        case ExprKind::Arg:
            if (e.port >= k_.ports().size() ||
                k_.port(e.port).kind != PortKind::ScalarIn) {
                fail("arg expression must reference a scalar-in port");
            }
            break;
        case ExprKind::ArrayLoad:
            if (e.array >= k_.arrays().size()) {
                fail("array id out of range");
            }
            checkOperand(e.a);
            break;
        case ExprKind::StreamRead:
            if (e.port >= k_.ports().size() ||
                k_.port(e.port).kind != PortKind::StreamIn) {
                fail("stream read must reference a stream-in port");
            }
            break;
        case ExprKind::Unary:
            checkOperand(e.a);
            break;
        case ExprKind::Binary:
            checkOperand(e.a);
            checkOperand(e.b);
            break;
        case ExprKind::Select:
            checkOperand(e.a);
            checkOperand(e.b);
            checkOperand(e.c);
            break;
        }
    }

    void checkStmt(StmtId id) {
        if (id >= k_.stmts().size()) {
            fail("statement id out of range");
        }
        const Stmt& s = k_.stmt(id);
        switch (s.kind) {
        case StmtKind::Assign:
            if (s.var >= k_.vars().size()) {
                fail("assign to unknown variable");
            }
            checkExpr(s.value);
            break;
        case StmtKind::ArrayStore:
            if (s.array >= k_.arrays().size()) {
                fail("store to unknown array");
            }
            checkExpr(s.index);
            checkExpr(s.value);
            break;
        case StmtKind::StreamWrite:
            if (s.port >= k_.ports().size() ||
                k_.port(s.port).kind != PortKind::StreamOut) {
                fail("stream write must reference a stream-out port");
            }
            checkExpr(s.value);
            break;
        case StmtKind::SetResult:
            if (s.port >= k_.ports().size() ||
                k_.port(s.port).kind != PortKind::ScalarOut) {
                fail("setResult must reference a scalar-out port");
            }
            checkExpr(s.value);
            break;
        case StmtKind::For:
            if (s.var >= k_.vars().size()) {
                fail("loop induction variable out of range");
            }
            checkExpr(s.value);
            for (StmtId inner : s.body) {
                checkStmt(inner);
            }
            break;
        case StmtKind::If:
            checkExpr(s.value);
            for (StmtId inner : s.body) {
                checkStmt(inner);
            }
            for (StmtId inner : s.elseBody) {
                checkStmt(inner);
            }
            break;
        }
    }

    const Kernel& k_;
};

} // namespace

void verify(const Kernel& kernel) {
    Verifier(kernel).run();
}

} // namespace socgen::hls
