#pragma once

#include "socgen/common/hash.hpp"
#include "socgen/hls/directives.hpp"
#include "socgen/hls/engine.hpp"

#include <string>
#include <string_view>

namespace socgen::hls {

/// Binary codec for HlsResult — the unit of persistence of the flow's
/// artifact store. The encoding is a versioned flat byte stream covering
/// every field the downstream flow consumes (RTL text, netlist, schedule,
/// binding, executable program, resources), so a decoded result is
/// interchangeable with a freshly synthesized one.
///
/// The format is internal to one store: no cross-version compatibility is
/// attempted — `decodeHlsResult` throws ArtifactError on any version or
/// structure mismatch and the caller re-synthesizes.

/// Current encoding version; bumped whenever the layout changes.
/// v2: Program carries the process-network payload (child programs,
/// channels, external-port bindings).
inline constexpr std::uint32_t kHlsResultCodecVersion = 2;

[[nodiscard]] std::string encodeHlsResult(const HlsResult& result);

/// Decodes an encoded HlsResult; throws socgen::ArtifactError on
/// truncation, trailing garbage, or version mismatch.
[[nodiscard]] HlsResult decodeHlsResult(std::string_view bytes);

/// Kernel/Directives transport codecs for the out-of-process worker
/// fleet: a stage request ships the full kernel AST and directive set
/// over the wire, so the worker synthesizes exactly what the service
/// would have — including tenant-supplied kernels that exist in no
/// library the worker could look up. Same versioning policy as the
/// HlsResult codec: internal to one build, no cross-version support.
inline constexpr std::uint32_t kKernelCodecVersion = 1;
inline constexpr std::uint32_t kDirectivesCodecVersion = 1;

[[nodiscard]] std::string encodeKernel(const Kernel& kernel);

/// Decodes an encoded Kernel; throws socgen::CodecError on truncation,
/// trailing garbage, or version mismatch.
[[nodiscard]] Kernel decodeKernel(std::string_view bytes);

[[nodiscard]] std::string encodeDirectives(const Directives& directives);

/// Decodes an encoded Directives; throws socgen::CodecError.
[[nodiscard]] Directives decodeDirectives(std::string_view bytes);

/// ProcessNetwork transport codec: processes (nested kernel ASTs),
/// channels and exports of one network node. Decoding validates the
/// reconstructed network structurally (ProcessNetwork::verify), so a
/// malformed or torn payload always surfaces as a named error —
/// CodecError for framing damage, HlsError / ChannelDeadlockError for
/// structures that frame correctly but describe an invalid network.
inline constexpr std::uint32_t kNetworkCodecVersion = 1;

[[nodiscard]] std::string encodeProcessNetwork(const ProcessNetwork& network);
[[nodiscard]] ProcessNetwork decodeProcessNetwork(std::string_view bytes);

/// Content fingerprint of a whole network: the network name, topology
/// (channels with their depths/tokens, exports) and every process's
/// kernel fingerprint. Any change to any process or to the wiring
/// changes the digest; a change to ONE process changes that process's
/// own fingerprintKernel too, which is what per-process artifact keys
/// hash — so editing one process re-synthesizes exactly that process.
[[nodiscard]] Digest128 fingerprintNetwork(const ProcessNetwork& network);

/// Content fingerprint of a kernel: covers the signature, locals, and the
/// whole statement/expression body, so any semantic change to the kernel
/// source changes the digest.
[[nodiscard]] Digest128 fingerprintKernel(const Kernel& kernel);

/// Content fingerprint of a directive set: covers every field that can
/// influence synthesis (clock, scheduler, resource limits, trip hints,
/// unroll factors, interface protocols), not just the rendered text.
[[nodiscard]] Digest128 fingerprintDirectives(const Directives& directives);

} // namespace socgen::hls
