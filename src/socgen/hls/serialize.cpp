#include "socgen/hls/serialize.hpp"

#include "socgen/common/binio.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

namespace socgen::hls {
namespace {

// The byte-stream primitives (BinWriter/BinReader) live in
// common/binio.hpp, shared with the worker wire protocol. The reader
// throws CodecError; decodeHlsResult converts that to ArtifactError so
// store callers keep one error type for "corrupt object".

// ---------------------------------------------------------------------------
// Per-type encode/decode pairs, innermost first.

void putResources(BinWriter& w, const ResourceEstimate& r) {
    w.i64(r.lut);
    w.i64(r.ff);
    w.i64(r.bram18);
    w.i64(r.dsp);
}

ResourceEstimate getResources(BinReader& r) {
    ResourceEstimate e;
    e.lut = r.i64();
    e.ff = r.i64();
    e.bram18 = r.i64();
    e.dsp = r.i64();
    return e;
}

void putPort(BinWriter& w, const KernelPort& p) {
    w.str(p.name);
    w.u32(static_cast<std::uint32_t>(p.kind));
    w.u32(p.width);
}

KernelPort getPort(BinReader& r) {
    KernelPort p;
    p.name = r.str();
    p.kind = static_cast<PortKind>(r.u32());
    p.width = r.u32();
    return p;
}

void putInstr(BinWriter& w, const Instr& ins) {
    w.u32(static_cast<std::uint32_t>(ins.op));
    w.u32(static_cast<std::uint32_t>(ins.bop));
    w.u32(static_cast<std::uint32_t>(ins.uop));
    w.u32(ins.dst);
    w.u32(ins.a);
    w.u32(ins.b);
    w.u32(ins.c);
    w.i64(ins.imm);
    w.u32(ins.port);
    w.u32(ins.array);
    w.u32(ins.target);
}

Instr getInstr(BinReader& r) {
    Instr ins;
    ins.op = static_cast<Opcode>(r.u32());
    ins.bop = static_cast<BinOp>(r.u32());
    ins.uop = static_cast<UnOp>(r.u32());
    ins.dst = r.u32();
    ins.a = r.u32();
    ins.b = r.u32();
    ins.c = r.u32();
    ins.imm = r.i64();
    ins.port = r.u32();
    ins.array = r.u32();
    ins.target = r.u32();
    return ins;
}

void putProgram(BinWriter& w, const Program& p) {
    w.str(p.kernelName);
    w.vec(p.instrs, [&](const Instr& ins) { putInstr(w, ins); });
    w.u32(p.registerCount);
    w.vec(p.varWidth, [&](unsigned v) { w.u32(v); });
    w.vec(p.arrays, [&](const ArraySpec& a) {
        w.u64(a.depth);
        w.u32(a.width);
    });
    w.vec(p.ports, [&](const KernelPort& kp) { putPort(w, kp); });
    // Process-network payload (all four tables empty for plain kernels;
    // the recursion is one level deep in practice — child programs of a
    // network are plain kernels).
    w.vec(p.processNames, [&](const std::string& n) { w.str(n); });
    w.vec(p.processPrograms, [&](const Program& child) { putProgram(w, child); });
    w.vec(p.channels, [&](const ProgramChannel& c) {
        w.str(c.name);
        w.u32(c.fromProcess);
        w.u32(c.fromPort);
        w.u32(c.toProcess);
        w.u32(c.toPort);
        w.u32(c.width);
        w.u32(c.depth);
        w.u32(c.initialTokens);
    });
    w.vec(p.bindings, [&](const ProgramBinding& b) {
        w.u32(b.networkPort);
        w.u32(b.process);
        w.u32(b.processPort);
    });
}

Program getProgram(BinReader& r) {
    Program p;
    p.kernelName = r.str();
    p.instrs = r.vec<Instr>([&] { return getInstr(r); });
    p.registerCount = r.u32();
    p.varWidth = r.vec<unsigned>([&] { return r.u32(); });
    p.arrays = r.vec<ArraySpec>([&] {
        ArraySpec a;
        a.depth = r.u64();
        a.width = r.u32();
        return a;
    });
    p.ports = r.vec<KernelPort>([&] { return getPort(r); });
    p.processNames = r.vec<std::string>([&] { return r.str(); });
    p.processPrograms = r.vec<Program>([&] { return getProgram(r); });
    p.channels = r.vec<ProgramChannel>([&] {
        ProgramChannel c;
        c.name = r.str();
        c.fromProcess = r.u32();
        c.fromPort = r.u32();
        c.toProcess = r.u32();
        c.toPort = r.u32();
        c.width = r.u32();
        c.depth = r.u32();
        c.initialTokens = r.u32();
        return c;
    });
    p.bindings = r.vec<ProgramBinding>([&] {
        ProgramBinding b;
        b.networkPort = r.u32();
        b.process = r.u32();
        b.processPort = r.u32();
        return b;
    });
    if (p.processNames.size() != p.processPrograms.size()) {
        throw CodecError("program: process name/program tables disagree");
    }
    return p;
}

void putDfgOp(BinWriter& w, const DfgOp& op) {
    w.u32(static_cast<std::uint32_t>(op.kind));
    w.u32(static_cast<std::uint32_t>(op.bop));
    w.u32(static_cast<std::uint32_t>(op.uop));
    w.u32(op.width);
    w.u32(op.array);
    w.u32(op.port);
    w.u32(op.loop);
    w.i64(op.loopLatency);
    w.vec(op.deps, [&](OpId d) { w.u32(d); });
    w.vec(op.varReads, [&](VarId v) { w.u32(v); });
    w.u32(op.assignsVar);
    w.u32(op.expr);
    w.u32(op.indexExpr);
    w.u32(op.valueExpr);
}

DfgOp getDfgOp(BinReader& r) {
    DfgOp op;
    op.kind = static_cast<OpKind>(r.u32());
    op.bop = static_cast<BinOp>(r.u32());
    op.uop = static_cast<UnOp>(r.u32());
    op.width = r.u32();
    op.array = r.u32();
    op.port = r.u32();
    op.loop = r.u32();
    op.loopLatency = r.i64();
    op.deps = r.vec<OpId>([&] { return r.u32(); });
    op.varReads = r.vec<VarId>([&] { return r.u32(); });
    op.assignsVar = r.u32();
    op.expr = r.u32();
    op.indexExpr = r.u32();
    op.valueExpr = r.u32();
    return op;
}

void putBlockSchedule(BinWriter& w, const BlockSchedule& b) {
    w.vec(b.dfg.ops, [&](const DfgOp& op) { putDfgOp(w, op); });
    w.vec(b.startCycle, [&](std::int64_t c) { w.i64(c); });
    w.i64(b.length);
}

BlockSchedule getBlockSchedule(BinReader& r) {
    BlockSchedule b;
    b.dfg.ops = r.vec<DfgOp>([&] { return getDfgOp(r); });
    b.startCycle = r.vec<std::int64_t>([&] { return r.i64(); });
    b.length = r.i64();
    return b;
}

void putSchedule(BinWriter& w, const KernelSchedule& s) {
    w.vec(s.loops, [&](const LoopSchedule& loop) {
        w.u32(loop.stmt);
        w.str(loop.inductionVar);
        w.i64(loop.tripCount);
        w.u8(loop.tripExact ? 1 : 0);
        putBlockSchedule(w, loop.body);
        w.u8(loop.pipelined ? 1 : 0);
        w.i64(loop.ii);
        w.i64(loop.totalCycles);
    });
    putBlockSchedule(w, s.top);
    w.i64(s.totalLatencyCycles);
}

KernelSchedule getSchedule(BinReader& r) {
    KernelSchedule s;
    s.loops = r.vec<LoopSchedule>([&] {
        LoopSchedule loop;
        loop.stmt = r.u32();
        loop.inductionVar = r.str();
        loop.tripCount = r.i64();
        loop.tripExact = r.u8() != 0;
        loop.body = getBlockSchedule(r);
        loop.pipelined = r.u8() != 0;
        loop.ii = r.i64();
        loop.totalCycles = r.i64();
        return loop;
    });
    s.top = getBlockSchedule(r);
    s.totalLatencyCycles = r.i64();
    return s;
}

void putBlockBinding(BinWriter& w, const BlockBinding& b) {
    w.vec(b.unitOf, [&](int u) { w.u32(static_cast<std::uint32_t>(u)); });
    w.u32(static_cast<std::uint32_t>(b.mulUnits));
    w.u32(static_cast<std::uint32_t>(b.divUnits));
}

BlockBinding getBlockBinding(BinReader& r) {
    BlockBinding b;
    b.unitOf = r.vec<int>([&] { return static_cast<int>(r.u32()); });
    b.mulUnits = static_cast<int>(r.u32());
    b.divUnits = static_cast<int>(r.u32());
    return b;
}

void putBinding(BinWriter& w, const KernelBinding& b) {
    w.vec(b.loopBindings, [&](const BlockBinding& lb) { putBlockBinding(w, lb); });
    putBlockBinding(w, b.topBinding);
    w.u32(static_cast<std::uint32_t>(b.mulUnits));
    w.u32(static_cast<std::uint32_t>(b.divUnits));
}

KernelBinding getBinding(BinReader& r) {
    KernelBinding b;
    b.loopBindings = r.vec<BlockBinding>([&] { return getBlockBinding(r); });
    b.topBinding = getBlockBinding(r);
    b.mulUnits = static_cast<int>(r.u32());
    b.divUnits = static_cast<int>(r.u32());
    return b;
}

void putNetlist(BinWriter& w, const rtl::Netlist& n) {
    w.str(n.name());
    // Drivers are not serialized: addCell() re-derives them from each
    // cell's output list during decode.
    w.vec(n.nets(), [&](const rtl::Net& net) {
        w.str(net.name);
        w.u32(net.width);
    });
    w.vec(n.cells(), [&](const rtl::Cell& cell) {
        w.str(cell.name);
        w.u32(static_cast<std::uint32_t>(cell.kind));
        w.u32(cell.width);
        w.vec(cell.inputs, [&](rtl::NetId id) { w.u32(id); });
        w.vec(cell.outputs, [&](rtl::NetId id) { w.u32(id); });
        w.i64(cell.param);
    });
    w.vec(n.ports(), [&](const rtl::Port& port) {
        w.str(port.name);
        w.u8(port.dir == rtl::PortDir::Out ? 1 : 0);
        w.u32(port.width);
        w.u32(port.net);
    });
}

rtl::Netlist getNetlist(BinReader& r) {
    rtl::Netlist n(r.str());
    try {
        const std::uint64_t netCount = r.size();
        for (std::uint64_t i = 0; i < netCount; ++i) {
            std::string name = r.str();
            const unsigned width = r.u32();
            (void)n.addNet(std::move(name), width);
        }
        const std::uint64_t cellCount = r.size();
        for (std::uint64_t i = 0; i < cellCount; ++i) {
            std::string name = r.str();
            const auto kind = static_cast<rtl::CellKind>(r.u32());
            const unsigned width = r.u32();
            auto inputs = r.vec<rtl::NetId>([&] { return r.u32(); });
            auto outputs = r.vec<rtl::NetId>([&] { return r.u32(); });
            const std::int64_t param = r.i64();
            (void)n.addCell(std::move(name), kind, width, std::move(inputs),
                            std::move(outputs), param);
        }
        const std::uint64_t portCount = r.size();
        for (std::uint64_t i = 0; i < portCount; ++i) {
            std::string name = r.str();
            const rtl::PortDir dir = r.u8() != 0 ? rtl::PortDir::Out : rtl::PortDir::In;
            const unsigned width = r.u32();
            const rtl::NetId net = r.u32();
            n.addPort(std::move(name), dir, width, net);
        }
    } catch (const CodecError&) {
        // Framing errors keep their own type; the top-level decode
        // converts them for store callers.
        throw;
    } catch (const Error& e) {
        // addCell/addPort structural checks (out-of-range ids, duplicate
        // drivers) mean the payload is corrupt even if well-framed.
        throw ArtifactError(std::string("corrupt netlist encoding: ") + e.what());
    }
    return n;
}

} // namespace

std::string encodeHlsResult(const HlsResult& result) {
    BinWriter w;
    w.u32(kHlsResultCodecVersion);
    w.str(result.kernelName);
    w.str(result.vhdl);
    w.str(result.verilog);
    w.str(result.directiveText);
    w.str(result.reportText);
    w.f64(result.toolSeconds);
    putResources(w, result.resources);
    putProgram(w, result.program);
    putSchedule(w, result.schedule);
    putBinding(w, result.binding);
    putNetlist(w, result.netlist);
    return w.take();
}

HlsResult decodeHlsResult(std::string_view bytes) {
    try {
        BinReader r(bytes);
        const std::uint32_t version = r.u32();
        if (version != kHlsResultCodecVersion) {
            throw ArtifactError(format("codec version mismatch: payload v%u, expected v%u",
                                       version, kHlsResultCodecVersion));
        }
        HlsResult result;
        result.kernelName = r.str();
        result.vhdl = r.str();
        result.verilog = r.str();
        result.directiveText = r.str();
        result.reportText = r.str();
        result.toolSeconds = r.f64();
        result.resources = getResources(r);
        result.program = getProgram(r);
        result.schedule = getSchedule(r);
        result.binding = getBinding(r);
        result.netlist = getNetlist(r);
        r.expectEnd();
        return result;
    } catch (const CodecError& e) {
        throw ArtifactError(e.what());
    }
}

// ---------------------------------------------------------------------------
// Kernel / Directives transport codecs (worker wire protocol).

std::string encodeKernel(const Kernel& kernel) {
    BinWriter w;
    w.u32(kKernelCodecVersion);
    w.str(kernel.name());
    w.vec(kernel.ports(), [&](const KernelPort& p) { putPort(w, p); });
    w.vec(kernel.vars(), [&](const KernelVar& v) {
        w.str(v.name);
        w.u32(v.width);
    });
    w.vec(kernel.arrays(), [&](const KernelArray& a) {
        w.str(a.name);
        w.u64(a.depth);
        w.u32(a.width);
    });
    w.vec(kernel.exprs(), [&](const Expr& e) {
        w.u32(static_cast<std::uint32_t>(e.kind));
        w.i64(e.value);
        w.u32(static_cast<std::uint32_t>(e.bop));
        w.u32(static_cast<std::uint32_t>(e.uop));
        w.u32(e.var);
        w.u32(e.port);
        w.u32(e.array);
        w.u32(e.a);
        w.u32(e.b);
        w.u32(e.c);
    });
    w.vec(kernel.stmts(), [&](const Stmt& s) {
        w.u32(static_cast<std::uint32_t>(s.kind));
        w.u32(s.var);
        w.u32(s.port);
        w.u32(s.array);
        w.u32(s.index);
        w.u32(s.value);
        w.vec(s.body, [&](StmtId id) { w.u32(id); });
        w.vec(s.elseBody, [&](StmtId id) { w.u32(id); });
    });
    w.vec(kernel.body(), [&](StmtId id) { w.u32(id); });
    return w.take();
}

Kernel decodeKernel(std::string_view bytes) {
    BinReader r(bytes);
    const std::uint32_t version = r.u32();
    if (version != kKernelCodecVersion) {
        throw CodecError(format("kernel codec mismatch: payload v%u, expected v%u",
                                version, kKernelCodecVersion));
    }
    Kernel k(r.str());
    k.ports_ = r.vec<KernelPort>([&] { return getPort(r); });
    k.vars_ = r.vec<KernelVar>([&] {
        KernelVar v;
        v.name = r.str();
        v.width = r.u32();
        return v;
    });
    k.arrays_ = r.vec<KernelArray>([&] {
        KernelArray a;
        a.name = r.str();
        a.depth = r.u64();
        a.width = r.u32();
        return a;
    });
    k.exprs_ = r.vec<Expr>([&] {
        Expr e;
        e.kind = static_cast<ExprKind>(r.u32());
        e.value = r.i64();
        e.bop = static_cast<BinOp>(r.u32());
        e.uop = static_cast<UnOp>(r.u32());
        e.var = r.u32();
        e.port = r.u32();
        e.array = r.u32();
        e.a = r.u32();
        e.b = r.u32();
        e.c = r.u32();
        return e;
    });
    k.stmts_ = r.vec<Stmt>([&] {
        Stmt s;
        s.kind = static_cast<StmtKind>(r.u32());
        s.var = r.u32();
        s.port = r.u32();
        s.array = r.u32();
        s.index = r.u32();
        s.value = r.u32();
        s.body = r.vec<StmtId>([&] { return r.u32(); });
        s.elseBody = r.vec<StmtId>([&] { return r.u32(); });
        return s;
    });
    k.body_ = r.vec<StmtId>([&] { return r.u32(); });
    r.expectEnd();
    return k;
}

std::string encodeDirectives(const Directives& d) {
    BinWriter w;
    w.u32(kDirectivesCodecVersion);
    w.f64(d.clockNs);
    w.u32(static_cast<std::uint32_t>(d.scheduler));
    w.u8(d.pipelineLoops ? 1 : 0);
    w.u8(d.enableOptimizer ? 1 : 0);
    w.i64(d.maxMulUnits);
    w.i64(d.maxDivUnits);
    w.i64(d.memPortsPerArray);
    w.i64(d.defaultTripCount);
    w.u64(d.tripCountHints.size());
    for (const auto& [loop, trip] : d.tripCountHints) {
        w.str(loop);
        w.i64(trip);
    }
    w.u64(d.unrollFactors.size());
    for (const auto& [loop, factor] : d.unrollFactors) {
        w.str(loop);
        w.i64(factor);
    }
    w.u64(d.interfaces.size());
    for (const auto& [port, protocol] : d.interfaces) {
        w.str(port);
        w.u32(static_cast<std::uint32_t>(protocol));
    }
    return w.take();
}

Directives decodeDirectives(std::string_view bytes) {
    BinReader r(bytes);
    const std::uint32_t version = r.u32();
    if (version != kDirectivesCodecVersion) {
        throw CodecError(format("directives codec mismatch: payload v%u, expected v%u",
                                version, kDirectivesCodecVersion));
    }
    Directives d;
    d.clockNs = r.f64();
    d.scheduler = static_cast<SchedulerKind>(r.u32());
    d.pipelineLoops = r.u8() != 0;
    d.enableOptimizer = r.u8() != 0;
    d.maxMulUnits = static_cast<int>(r.i64());
    d.maxDivUnits = static_cast<int>(r.i64());
    d.memPortsPerArray = static_cast<int>(r.i64());
    d.defaultTripCount = r.i64();
    const std::uint64_t trips = r.size();
    for (std::uint64_t i = 0; i < trips; ++i) {
        std::string loop = r.str();
        d.tripCountHints[std::move(loop)] = r.i64();
    }
    const std::uint64_t unrolls = r.size();
    for (std::uint64_t i = 0; i < unrolls; ++i) {
        std::string loop = r.str();
        d.unrollFactors[std::move(loop)] = static_cast<int>(r.i64());
    }
    const std::uint64_t ifaces = r.size();
    for (std::uint64_t i = 0; i < ifaces; ++i) {
        std::string port = r.str();
        d.interfaces[std::move(port)] = static_cast<InterfaceProtocol>(r.u32());
    }
    r.expectEnd();
    return d;
}

Digest128 fingerprintKernel(const Kernel& kernel) {
    HashStream h;
    h.field(std::string_view("socgen-kernel-v1"));
    h.field(kernel.name());
    h.field(static_cast<std::uint64_t>(kernel.ports().size()));
    for (const auto& p : kernel.ports()) {
        h.field(p.name);
        h.field(static_cast<std::uint64_t>(p.kind));
        h.field(static_cast<std::uint64_t>(p.width));
    }
    h.field(static_cast<std::uint64_t>(kernel.vars().size()));
    for (const auto& v : kernel.vars()) {
        h.field(v.name);
        h.field(static_cast<std::uint64_t>(v.width));
    }
    h.field(static_cast<std::uint64_t>(kernel.arrays().size()));
    for (const auto& a : kernel.arrays()) {
        h.field(a.name);
        h.field(static_cast<std::uint64_t>(a.depth));
        h.field(static_cast<std::uint64_t>(a.width));
    }
    h.field(static_cast<std::uint64_t>(kernel.exprs().size()));
    for (const auto& e : kernel.exprs()) {
        h.field(static_cast<std::uint64_t>(e.kind));
        h.field(e.value);
        h.field(static_cast<std::uint64_t>(e.bop));
        h.field(static_cast<std::uint64_t>(e.uop));
        h.field(static_cast<std::uint64_t>(e.var));
        h.field(static_cast<std::uint64_t>(e.port));
        h.field(static_cast<std::uint64_t>(e.array));
        h.field(static_cast<std::uint64_t>(e.a));
        h.field(static_cast<std::uint64_t>(e.b));
        h.field(static_cast<std::uint64_t>(e.c));
    }
    h.field(static_cast<std::uint64_t>(kernel.stmts().size()));
    for (const auto& s : kernel.stmts()) {
        h.field(static_cast<std::uint64_t>(s.kind));
        h.field(static_cast<std::uint64_t>(s.var));
        h.field(static_cast<std::uint64_t>(s.port));
        h.field(static_cast<std::uint64_t>(s.array));
        h.field(static_cast<std::uint64_t>(s.index));
        h.field(static_cast<std::uint64_t>(s.value));
        h.field(static_cast<std::uint64_t>(s.body.size()));
        for (const StmtId id : s.body) {
            h.field(static_cast<std::uint64_t>(id));
        }
        h.field(static_cast<std::uint64_t>(s.elseBody.size()));
        for (const StmtId id : s.elseBody) {
            h.field(static_cast<std::uint64_t>(id));
        }
    }
    h.field(static_cast<std::uint64_t>(kernel.body().size()));
    for (const StmtId id : kernel.body()) {
        h.field(static_cast<std::uint64_t>(id));
    }
    return h.digest();
}

Digest128 fingerprintDirectives(const Directives& d) {
    HashStream h;
    h.field(std::string_view("socgen-directives-v1"));
    h.field(d.clockNs);
    h.field(static_cast<std::uint64_t>(d.scheduler));
    h.field(static_cast<std::uint64_t>(d.pipelineLoops ? 1 : 0));
    h.field(static_cast<std::uint64_t>(d.enableOptimizer ? 1 : 0));
    h.field(static_cast<std::int64_t>(d.maxMulUnits));
    h.field(static_cast<std::int64_t>(d.maxDivUnits));
    h.field(static_cast<std::int64_t>(d.memPortsPerArray));
    h.field(d.defaultTripCount);
    // std::map iterates in key order, so the hash is order-independent of
    // insertion history.
    h.field(static_cast<std::uint64_t>(d.tripCountHints.size()));
    for (const auto& [loop, trip] : d.tripCountHints) {
        h.field(loop);
        h.field(trip);
    }
    h.field(static_cast<std::uint64_t>(d.unrollFactors.size()));
    for (const auto& [loop, factor] : d.unrollFactors) {
        h.field(loop);
        h.field(static_cast<std::int64_t>(factor));
    }
    h.field(static_cast<std::uint64_t>(d.interfaces.size()));
    for (const auto& [port, protocol] : d.interfaces) {
        h.field(port);
        h.field(static_cast<std::uint64_t>(protocol));
    }
    return h.digest();
}

std::string encodeProcessNetwork(const ProcessNetwork& network) {
    BinWriter w;
    w.u32(kNetworkCodecVersion);
    w.str(network.name());
    w.vec(network.processes(), [&](const Process& p) {
        w.str(p.name);
        w.str(encodeKernel(p.kernel));
    });
    w.vec(network.channels(), [&](const NetworkChannel& c) {
        w.str(c.name);
        w.str(c.fromProcess);
        w.str(c.fromPort);
        w.str(c.toProcess);
        w.str(c.toPort);
        w.u32(c.width);
        w.u32(c.depth);
        w.u32(c.initialTokens);
    });
    w.vec(network.bindings(), [&](const NetworkBinding& b) {
        w.str(b.networkPort);
        w.str(b.process);
        w.str(b.processPort);
    });
    return w.take();
}

ProcessNetwork decodeProcessNetwork(std::string_view bytes) {
    BinReader r(bytes);
    const std::uint32_t version = r.u32();
    if (version != kNetworkCodecVersion) {
        throw CodecError(format("network codec mismatch: payload v%u, expected v%u",
                                version, kNetworkCodecVersion));
    }
    ProcessNetwork net(r.str());
    const std::uint64_t processes = r.size();
    for (std::uint64_t i = 0; i < processes; ++i) {
        std::string name = r.str();
        Kernel kernel = decodeKernel(r.str());
        net.addProcess(std::move(name), std::move(kernel));
    }
    const std::uint64_t channels = r.size();
    for (std::uint64_t i = 0; i < channels; ++i) {
        NetworkChannel c;
        c.name = r.str();
        c.fromProcess = r.str();
        c.fromPort = r.str();
        c.toProcess = r.str();
        c.toPort = r.str();
        c.width = r.u32();
        c.depth = r.u32();
        c.initialTokens = r.u32();
        net.connect(std::move(c));
    }
    const std::uint64_t bindings = r.size();
    for (std::uint64_t i = 0; i < bindings; ++i) {
        std::string networkPort = r.str();
        std::string process = r.str();
        std::string processPort = r.str();
        net.exportPort(std::move(networkPort), std::move(process), std::move(processPort));
    }
    r.expectEnd();
    // A payload that frames correctly can still describe a broken network
    // (dangling ports, scalar channels, token-free cycles); decode refuses
    // to hand such a thing to the caller.
    net.verify();
    return net;
}

Digest128 fingerprintNetwork(const ProcessNetwork& network) {
    HashStream h;
    h.field(std::string_view("socgen-network-v1"));
    h.field(network.name());
    h.field(static_cast<std::uint64_t>(network.processes().size()));
    for (const Process& p : network.processes()) {
        h.field(p.name);
        const Digest128 k = fingerprintKernel(p.kernel);
        h.field(k.hi);
        h.field(k.lo);
    }
    h.field(static_cast<std::uint64_t>(network.channels().size()));
    for (const NetworkChannel& c : network.channels()) {
        h.field(c.name);
        h.field(c.fromProcess);
        h.field(c.fromPort);
        h.field(c.toProcess);
        h.field(c.toPort);
        h.field(static_cast<std::uint64_t>(c.width));
        h.field(static_cast<std::uint64_t>(c.depth));
        h.field(static_cast<std::uint64_t>(c.initialTokens));
    }
    h.field(static_cast<std::uint64_t>(network.bindings().size()));
    for (const NetworkBinding& b : network.bindings()) {
        h.field(b.networkPort);
        h.field(b.process);
        h.field(b.processPort);
    }
    return h.digest();
}

} // namespace socgen::hls
