#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace socgen::apps {

/// 8-bit grayscale image.
class GrayImage {
public:
    GrayImage() = default;
    GrayImage(unsigned width, unsigned height, std::uint8_t fill = 0);

    [[nodiscard]] unsigned width() const { return width_; }
    [[nodiscard]] unsigned height() const { return height_; }
    [[nodiscard]] std::size_t pixelCount() const {
        return static_cast<std::size_t>(width_) * height_;
    }

    [[nodiscard]] std::uint8_t at(unsigned x, unsigned y) const;
    void set(unsigned x, unsigned y, std::uint8_t value);

    [[nodiscard]] const std::vector<std::uint8_t>& pixels() const { return pixels_; }
    [[nodiscard]] std::vector<std::uint8_t>& pixels() { return pixels_; }

    friend bool operator==(const GrayImage&, const GrayImage&) = default;

private:
    unsigned width_ = 0;
    unsigned height_ = 0;
    std::vector<std::uint8_t> pixels_;
};

/// 24-bit RGB image; pixels pack to 0x00RRGGBB words for the stream path.
class RgbImage {
public:
    RgbImage() = default;
    RgbImage(unsigned width, unsigned height);

    [[nodiscard]] unsigned width() const { return width_; }
    [[nodiscard]] unsigned height() const { return height_; }
    [[nodiscard]] std::size_t pixelCount() const {
        return static_cast<std::size_t>(width_) * height_;
    }

    [[nodiscard]] std::uint32_t packedAt(unsigned x, unsigned y) const;
    void set(unsigned x, unsigned y, std::uint8_t r, std::uint8_t g, std::uint8_t b);

    /// 0x00RRGGBB words in row-major order (the DMA buffer layout).
    [[nodiscard]] std::vector<std::uint32_t> packedPixels() const;

private:
    unsigned width_ = 0;
    unsigned height_ = 0;
    std::vector<std::uint32_t> pixels_;
};

/// PGM (P5 binary / P2 ascii) reader and P5 writer.
[[nodiscard]] GrayImage readPgm(const std::string& path);
void writePgm(const std::string& path, const GrayImage& image);
[[nodiscard]] std::string encodePgm(const GrayImage& image);
[[nodiscard]] GrayImage decodePgm(std::string_view data);

/// PPM (P6) writer for RGB images.
void writePpm(const std::string& path, const RgbImage& image);

/// Deterministic synthetic test scene approximating the paper's Figure 7
/// input: dark textured background with brighter elliptical blobs — a
/// clearly bimodal intensity distribution so the Otsu threshold separates
/// foreground from background.
[[nodiscard]] RgbImage makeSyntheticScene(unsigned width, unsigned height,
                                          std::uint64_t seed = 42);

/// Grayscale rendering of the same scene (for direct gray pipelines).
[[nodiscard]] GrayImage makeSyntheticGrayScene(unsigned width, unsigned height,
                                               std::uint64_t seed = 42);

} // namespace socgen::apps
