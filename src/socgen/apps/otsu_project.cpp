#include "socgen/apps/otsu_project.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <memory>

namespace socgen::apps {

namespace {

/// Word-address memory layout of the case study buffers.
constexpr std::uint64_t kImgBase = 0x1000;
constexpr std::uint64_t kGrayBase = 0x100000;
constexpr std::uint64_t kGrayChBase = 0x180000;  ///< dummy drain of imageOutCH
constexpr std::uint64_t kHistBase = 0x200000;
constexpr std::uint64_t kThreshBase = 0x200200;
constexpr std::uint64_t kOutBase = 0x280000;

} // namespace

core::Htg makeOtsuHtg() {
    core::Htg htg;
    htg.addTask("readImage");
    core::HtgPhase phase;
    phase.name = "otsuPhase";
    phase.actors.push_back(core::HtgActor{
        "grayScale",
        {{"imageIn", 32}},
        {{"imageOutCH", 8}, {"imageOutSEG", 8}}});
    phase.actors.push_back(core::HtgActor{
        "computeHistogram", {{"grayScaleImage", 8}}, {{"histogram", 32}}});
    phase.actors.push_back(core::HtgActor{
        "halfProbability", {{"histogram", 32}}, {{"probability", 32}}});
    phase.actors.push_back(core::HtgActor{
        "segment",
        {{"grayScaleImage", 8}, {"otsuThreshold", 32}},
        {{"segmentedGrayImage", 8}}});
    phase.edges.push_back(
        core::HtgDataflowEdge{"grayScale", "imageOutCH", "computeHistogram",
                              "grayScaleImage"});
    phase.edges.push_back(
        core::HtgDataflowEdge{"computeHistogram", "histogram", "halfProbability",
                              "histogram"});
    phase.edges.push_back(
        core::HtgDataflowEdge{"halfProbability", "probability", "segment",
                              "otsuThreshold"});
    // grayScale.imageOutSEG and segment.grayScaleImage intentionally have
    // no intra-phase edge: the gray image round-trips through DDR (see
    // header comment).
    htg.addPhase(std::move(phase));
    htg.addTask("writeImage");
    htg.addEdge("readImage", "otsuPhase");
    htg.addEdge("otsuPhase", "writeImage");
    htg.validate();
    return htg;
}

core::HtgPartition otsuArchPartition(int arch) {
    // Table I: Arch1 = histogram; Arch2 = otsuMethod; Arch3 = histogram +
    // otsuMethod; Arch4 = all four.
    switch (arch) {
    case 1: return otsuMaskPartition(0b0010);
    case 2: return otsuMaskPartition(0b0100);
    case 3: return otsuMaskPartition(0b0110);
    case 4: return otsuMaskPartition(0b1111);
    default:
        throw Error(format("otsu case study has architectures 1..4, not %d", arch));
    }
}

core::HtgPartition otsuMaskPartition(unsigned mask) {
    core::HtgPartition partition;
    for (std::size_t i = 0; i < kOtsuStages.size(); ++i) {
        partition.mapping[kOtsuStages[i]] = (mask & (1u << i)) != 0
                                                ? core::Mapping::Hardware
                                                : core::Mapping::Software;
    }
    return partition;
}

hls::KernelLibrary makeOtsuKernelLibrary(std::int64_t pixelCount) {
    hls::KernelLibrary lib;
    lib.add(makeGrayScaleKernel(pixelCount));
    lib.add(makeHistogramKernel(pixelCount));
    lib.add(makeOtsuKernel(pixelCount));
    lib.add(makeBinarizationKernel(pixelCount));
    return lib;
}

std::map<std::string, hls::Directives> otsuKernelDirectives() {
    return {
        {"grayScale", grayScaleDirectives()},
        {"computeHistogram", histogramDirectives()},
        {"halfProbability", otsuDirectives()},
        {"segment", binarizationDirectives()},
    };
}

core::FlowOptions otsuFlowOptions() {
    core::FlowOptions options;
    options.kernelDirectives = otsuKernelDirectives();
    return options;
}

// ---------------------------------------------------------------------------
// OtsuSystemRunner

OtsuSystemRunner::OtsuSystemRunner(const core::FlowResult& flow,
                                   core::HtgPartition partition,
                                   soc::SystemOptions options)
    : flow_(flow), partition_(std::move(partition)), options_(options) {}

bool OtsuSystemRunner::isHw(const std::string& stage) const {
    return partition_.of(stage) == core::Mapping::Hardware;
}

OtsuSystemRunner::SocLink OtsuSystemRunner::socLinkFor(const std::string& node,
                                                       const std::string& port,
                                                       bool nodeIsSource) const {
    for (const auto& s : flow_.design.streams()) {
        if (nodeIsSource && !s.from.isSoc() && s.from.instance == node &&
            s.from.port == port && s.to.isSoc()) {
            return SocLink{s.dmaInstance, s.dmaRoute};
        }
        if (!nodeIsSource && !s.to.isSoc() && s.to.instance == node &&
            s.to.port == port && s.from.isSoc()) {
            return SocLink{s.dmaInstance, s.dmaRoute};
        }
    }
    throw SimulationError(format("no 'soc link for %s/%s in design %s", node.c_str(),
                                 port.c_str(), flow_.design.name().c_str()));
}

OtsuSystemRunner::Result OtsuSystemRunner::run(const RgbImage& image) {
    return run(image, {});
}

OtsuSystemRunner::Result OtsuSystemRunner::run(
    const RgbImage& image,
    const std::function<void(soc::SystemSimulator&)>& configure) {
    const std::uint64_t npix = image.pixelCount();
    const bool gHw = isHw("grayScale");
    const bool hHw = isHw("computeHistogram");
    const bool oHw = isHw("halfProbability");
    const bool bHw = isHw("segment");

    const bool sharedDma = flow_.design.dmaPolicy() == soc::DmaPolicy::SharedDma;
    if (gHw && !hHw && sharedDma && options_.channelCapacity < npix) {
        throw SimulationError(
            "partition (grayScale HW, histogram SW) needs two concurrent S2MM "
            "streams; with the shared DMA the CH stream must be fully buffered — "
            "raise channelCapacity to >= the pixel count or use DmaPolicy::DmaPerLink");
    }

    soc::SystemSimulator sim(flow_.design, flow_.programs, options_);
    if (configure) {
        configure(sim);
    }
    soc::ZynqPs& ps = sim.ps();

    // readImage: stage the RGB buffer in DDR.
    const std::vector<std::uint32_t> packed = image.packedPixels();
    ps.task("readImage", imageIoSwCycles(npix), [packed](soc::Memory& mem) {
        mem.writeBlock(kImgBase, packed);
    });

    // -- grayScale -------------------------------------------------------------
    if (!gHw) {
        ps.task("grayScale(sw)", grayScaleSwCycles(npix), [npix](soc::Memory& mem) {
            for (std::uint64_t i = 0; i < npix; ++i) {
                mem.writeWord(kGrayBase + i,
                              grayFromPacked(mem.readWord(kImgBase + i)));
            }
        });
    } else {
        const SocLink seg = socLinkFor("grayScale", "imageOutSEG", true);
        sim.psArmReadDma(seg.dma, seg.route, kGrayBase, static_cast<std::uint32_t>(npix));
        SocLink chDrain;
        bool chSeparateEngine = false;
        if (!hHw) {
            chDrain = socLinkFor("grayScale", "imageOutCH", true);
            chSeparateEngine = chDrain.dma != seg.dma;
            if (chSeparateEngine) {
                sim.psArmReadDma(chDrain.dma, chDrain.route, kGrayChBase,
                                 static_cast<std::uint32_t>(npix));
            }
        }
        const SocLink in = socLinkFor("grayScale", "imageIn", false);
        sim.psWriteDma(in.dma, in.route, kImgBase, static_cast<std::uint32_t>(npix));
        sim.psWaitReadDma(seg.dma);
        if (!hHw) {
            if (chSeparateEngine) {
                sim.psWaitReadDma(chDrain.dma);
            } else {
                // Shared engine: the CH stream buffered fully in its FIFO;
                // drain it now.
                sim.psArmReadDma(chDrain.dma, chDrain.route, kGrayChBase,
                                 static_cast<std::uint32_t>(npix));
                sim.psWaitReadDma(chDrain.dma);
            }
        }
    }

    // -- computeHistogram --------------------------------------------------------
    if (!hHw) {
        ps.task("histogram(sw)", histogramSwCycles(npix), [npix](soc::Memory& mem) {
            std::array<std::uint32_t, 256> hist{};
            for (std::uint64_t i = 0; i < npix; ++i) {
                ++hist[mem.readWord(kGrayBase + i) & 0xFF];
            }
            for (std::uint64_t i = 0; i < 256; ++i) {
                mem.writeWord(kHistBase + i, hist[i]);
            }
        });
    } else {
        SocLink out;
        if (!oHw) {
            out = socLinkFor("computeHistogram", "histogram", true);
            sim.psArmReadDma(out.dma, out.route, kHistBase, 256);
        }
        if (!gHw) {
            const SocLink in = socLinkFor("computeHistogram", "grayScaleImage", false);
            sim.psWriteDma(in.dma, in.route, kGrayBase, static_cast<std::uint32_t>(npix));
        }
        if (!oHw) {
            sim.psWaitReadDma(out.dma);
        }
    }

    // -- halfProbability (otsuMethod) --------------------------------------------
    if (!oHw) {
        ps.task("otsuMethod(sw)", otsuSwCycles(npix), [npix](soc::Memory& mem) {
            std::array<std::uint32_t, 256> hist{};
            for (std::uint64_t i = 0; i < 256; ++i) {
                hist[i] = mem.readWord(kHistBase + i);
            }
            mem.writeWord(kThreshBase, otsuThresholdRef(hist, npix));
        });
    } else {
        SocLink out;
        if (!bHw) {
            out = socLinkFor("halfProbability", "probability", true);
            sim.psArmReadDma(out.dma, out.route, kThreshBase, 1);
        }
        if (!hHw) {
            const SocLink in = socLinkFor("halfProbability", "histogram", false);
            sim.psWriteDma(in.dma, in.route, kHistBase, 256);
        }
        if (!bHw) {
            sim.psWaitReadDma(out.dma);
        }
    }

    // -- segment (binarization) ----------------------------------------------------
    if (!bHw) {
        ps.task("binarization(sw)", binarizationSwCycles(npix), [npix](soc::Memory& mem) {
            const std::uint32_t threshold = mem.readWord(kThreshBase);
            for (std::uint64_t i = 0; i < npix; ++i) {
                const std::uint32_t g = mem.readWord(kGrayBase + i) & 0xFF;
                mem.writeWord(kOutBase + i, g > threshold ? 255 : 0);
            }
        });
    } else {
        const SocLink out = socLinkFor("segment", "segmentedGrayImage", true);
        sim.psArmReadDma(out.dma, out.route, kOutBase, static_cast<std::uint32_t>(npix));
        if (!oHw) {
            // The threshold must arrive before the pixel stream: the
            // segment kernel reads it first.
            const SocLink thr = socLinkFor("segment", "otsuThreshold", false);
            sim.psWriteDma(thr.dma, thr.route, kThreshBase, 1);
        }
        const SocLink gray = socLinkFor("segment", "grayScaleImage", false);
        sim.psWriteDma(gray.dma, gray.route, kGrayBase, static_cast<std::uint32_t>(npix));
        sim.psWaitReadDma(out.dma);
    }

    // writeImage: capture the output buffer.
    auto output = std::make_shared<GrayImage>(image.width(), image.height());
    ps.task("writeImage", imageIoSwCycles(npix), [output, npix](soc::Memory& mem) {
        for (std::uint64_t i = 0; i < npix; ++i) {
            output->pixels()[i] = static_cast<std::uint8_t>(mem.readWord(kOutBase + i));
        }
    });

    Result result;
    result.cycles = sim.run();
    result.report = sim.report();
    result.output = *output;
    return result;
}

} // namespace socgen::apps
