#pragma once

#include "socgen/hls/directives.hpp"
#include "socgen/hls/network.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace socgen::apps {

/// -- Multi-process example applications ------------------------------------
///
/// The paper's Otsu case study runs its four tasks as four DSL nodes; the
/// process-network model lets one node host all four as a dataflow
/// pipeline instead — one accelerator whose stages overlap on a stream.

/// The Otsu filter as a 4-process dataflow network inside a single node:
///
///   grayScale ──imageOutCH──▶ computeHistogram ──histogram──▶ halfProbability
///       │                                                          │
///       └──────────────imageOutSEG (depth = segChannelDepth)───────┼──▶ segment
///                                                     otsuThreshold┘
///
/// External ports: `imageIn` (stream in, 32) and `segmentedGrayImage`
/// (stream out, 8) — the same signature a fused single-kernel Otsu node
/// would expose.
///
/// `segChannelDepth` sizes the gray→segment bypass channel. `segment`
/// reads the threshold BEFORE its pixel loop, and the threshold only
/// exists after every pixel passed through histogram+otsu — so the
/// bypass must buffer the whole image (depth >= pixelCount) or the
/// network stalls permanently once the channel fills: the canonical
/// insufficient-FIFO-depth deadlock, which the cosim watchdog reports
/// with per-channel forensics.
[[nodiscard]] hls::ProcessNetwork makeOtsuDataflowNetwork(std::int64_t pixelCount,
                                                          std::uint32_t segChannelDepth);

/// Per-process directives of the Otsu network, keyed by process name
/// (feed into HlsEngine::synthesize(network, ...) or, prefixed with
/// "<node>/", into FlowOptions::kernelDirectives).
[[nodiscard]] std::map<std::string, hls::Directives> otsuDataflowDirectives();

/// -- Streaming producer/filter/consumer triad ------------------------------
///
/// A self-contained network with no stream inputs: `produce` generates
/// `sampleCount` samples, `filter` transforms them, `consume` folds them
/// into a checksum exported as the scalar `checksum`.
[[nodiscard]] hls::ProcessNetwork makeStreamTriadNetwork(std::int64_t sampleCount);

/// Software reference of the triad's checksum (32-bit wrapping).
[[nodiscard]] std::uint32_t streamTriadChecksumRef(std::int64_t sampleCount);

/// -- Pipelined-vs-sequential benchmark kernels (bench_dataflow) ------------

/// One pipeline stage: `dout[i] = (din[i] + addend) * 3` over
/// `sampleCount` samples (32-bit stream in/out, named `din`/`dout`).
[[nodiscard]] hls::Kernel makeStreamStageKernel(std::string name,
                                                std::int64_t sampleCount,
                                                std::int64_t addend);

/// The sequential single-kernel equivalent of a 3-stage pipeline: the
/// same three per-sample transforms, materialised stage by stage through
/// internal buffers (exactly what running the three kernels back-to-back
/// on one core does). Ports `din`/`dout`, bit-identical output to the
/// pipelined network.
[[nodiscard]] hls::Kernel makeFusedTriStageKernel(std::int64_t sampleCount);

/// The pipelined 3-process network (stage0 → stage1 → stage2) computing
/// the same function as makeFusedTriStageKernel; external ports
/// `din`/`dout`.
[[nodiscard]] hls::ProcessNetwork makeStreamPipelineNetwork(std::int64_t sampleCount);

/// Software reference of the tri-stage transform.
[[nodiscard]] std::vector<std::uint32_t>
triStageRef(const std::vector<std::uint32_t>& input);

} // namespace socgen::apps
