#include "socgen/apps/kernels.hpp"

namespace socgen::apps {

hls::Kernel makeAddKernel() {
    using namespace hls;
    KernelBuilder kb("ADD");
    const PortId a = kb.scalarIn("A", 32);
    const PortId b = kb.scalarIn("B", 32);
    const PortId ret = kb.scalarOut("return", 32);
    kb.setResult(ret, kb.add(kb.arg(a), kb.arg(b)));
    return kb.build();
}

hls::Kernel makeMulKernel() {
    using namespace hls;
    KernelBuilder kb("MUL");
    const PortId a = kb.scalarIn("A", 32);
    const PortId b = kb.scalarIn("B", 32);
    const PortId ret = kb.scalarOut("return", 32);
    kb.setResult(ret, kb.mul(kb.arg(a), kb.arg(b)));
    return kb.build();
}

hls::Kernel makeGaussKernel(std::int64_t sampleCount) {
    using namespace hls;
    KernelBuilder kb("GAUSS");
    const PortId in = kb.streamIn("in", 8);
    const PortId out = kb.streamOut("out", 8);
    const VarId i = kb.var("i", 32);
    const VarId cur = kb.var("cur", 8);
    const VarId p1 = kb.var("p1", 8);
    const VarId p2 = kb.var("p2", 8);

    kb.assign(p1, kb.c(0));
    kb.assign(p2, kb.c(0));
    kb.forLoop(i, kb.c(sampleCount));
    kb.assign(cur, kb.read(in));
    kb.write(out, kb.shr(kb.add(kb.add(kb.v(p2), kb.shl(kb.v(p1), kb.c(1))), kb.v(cur)),
                         kb.c(2)));
    kb.assign(p2, kb.v(p1));
    kb.assign(p1, kb.v(cur));
    kb.endLoop();
    return kb.build();
}

hls::Kernel makeEdgeKernel(std::int64_t sampleCount) {
    using namespace hls;
    KernelBuilder kb("EDGE");
    const PortId in = kb.streamIn("in", 8);
    const PortId out = kb.streamOut("out", 8);
    const VarId i = kb.var("i", 32);
    const VarId cur = kb.var("cur", 8);
    const VarId prev = kb.var("prev", 8);

    kb.assign(prev, kb.c(0));
    kb.forLoop(i, kb.c(sampleCount));
    kb.assign(cur, kb.read(in));
    kb.write(out, kb.select(kb.gt(kb.v(cur), kb.v(prev)),
                            kb.sub(kb.v(cur), kb.v(prev)),
                            kb.sub(kb.v(prev), kb.v(cur))));
    kb.assign(prev, kb.v(cur));
    kb.endLoop();
    return kb.build();
}

std::vector<std::uint8_t> gaussRef(const std::vector<std::uint8_t>& input) {
    std::vector<std::uint8_t> out(input.size());
    std::uint32_t p1 = 0;
    std::uint32_t p2 = 0;
    for (std::size_t i = 0; i < input.size(); ++i) {
        const std::uint32_t cur = input[i];
        out[i] = static_cast<std::uint8_t>(((p2 + 2 * p1 + cur) >> 2) & 0xFF);
        p2 = p1;
        p1 = cur;
    }
    return out;
}

std::vector<std::uint8_t> edgeRef(const std::vector<std::uint8_t>& input) {
    std::vector<std::uint8_t> out(input.size());
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < input.size(); ++i) {
        const std::uint32_t cur = input[i];
        out[i] = static_cast<std::uint8_t>(cur > prev ? cur - prev : prev - cur);
        prev = cur;
    }
    return out;
}

namespace {

/// Shared windowing semantics of the SOBEL kernel and its reference:
/// at linear index k (column c, row r), the 3x3 window holds the pixels
/// of columns c-2..c and rows r-2..r (taps shift across row boundaries,
/// exactly as the hardware line buffers behave); the output is
/// min(|gx| + |gy|, 255) when r >= 2 and c >= 2, else 0.
struct SobelWindowModel {
    std::uint32_t p00 = 0, p01 = 0, p02 = 0;
    std::uint32_t p10 = 0, p11 = 0, p12 = 0;
    std::uint32_t p20 = 0, p21 = 0, p22 = 0;
    std::vector<std::uint32_t> line0;
    std::vector<std::uint32_t> line1;

    explicit SobelWindowModel(std::size_t width) : line0(width, 0), line1(width, 0) {}

    std::uint8_t push(std::uint32_t cur, std::size_t col, std::size_t row) {
        const std::uint32_t top = line0[col];
        const std::uint32_t mid = line1[col];
        line0[col] = mid;
        line1[col] = cur;
        p00 = p01; p01 = p02; p02 = top;
        p10 = p11; p11 = p12; p12 = mid;
        p20 = p21; p21 = p22; p22 = cur;
        const std::uint32_t gxPos = p02 + 2 * p12 + p22;
        const std::uint32_t gxNeg = p00 + 2 * p10 + p20;
        const std::uint32_t gyPos = p20 + 2 * p21 + p22;
        const std::uint32_t gyNeg = p00 + 2 * p01 + p02;
        const std::uint32_t gx = gxPos > gxNeg ? gxPos - gxNeg : gxNeg - gxPos;
        const std::uint32_t gy = gyPos > gyNeg ? gyPos - gyNeg : gyNeg - gyPos;
        const std::uint32_t mag = std::min<std::uint32_t>(gx + gy, 255);
        return static_cast<std::uint8_t>((row >= 2 && col >= 2) ? mag : 0);
    }
};

} // namespace

hls::Kernel makeSobelKernel(std::int64_t width, std::int64_t height) {
    using namespace hls;
    KernelBuilder kb("SOBEL");
    const PortId in = kb.streamIn("in", 8);
    const PortId out = kb.streamOut("out", 8);
    const ArrayId line0 = kb.array("line0", static_cast<std::size_t>(width), 8);
    const ArrayId line1 = kb.array("line1", static_cast<std::size_t>(width), 8);
    const VarId idx = kb.var("idx", 32);
    const VarId col = kb.var("col", 32);
    const VarId row = kb.var("row", 32);
    const VarId cur = kb.var("cur", 8);
    const VarId top = kb.var("top", 8);
    const VarId mid = kb.var("mid", 8);
    const VarId p00 = kb.var("p00", 8);
    const VarId p01 = kb.var("p01", 8);
    const VarId p02 = kb.var("p02", 8);
    const VarId p10 = kb.var("p10", 8);
    const VarId p11 = kb.var("p11", 8);
    const VarId p12 = kb.var("p12", 8);
    const VarId p20 = kb.var("p20", 8);
    const VarId p21 = kb.var("p21", 8);
    const VarId p22 = kb.var("p22", 8);
    const VarId gx = kb.var("gx", 16);
    const VarId gy = kb.var("gy", 16);
    const VarId mag = kb.var("mag", 16);
    const VarId atEol = kb.var("atEol", 1);

    kb.assign(col, kb.c(0));
    kb.assign(row, kb.c(0));
    kb.forLoop(idx, kb.c(width * height));
    kb.assign(cur, kb.read(in));
    // Line buffers: top <- two rows up, mid <- one row up, then rotate.
    kb.assign(top, kb.load(line0, kb.v(col)));
    kb.assign(mid, kb.load(line1, kb.v(col)));
    kb.arrayStore(line0, kb.v(col), kb.v(mid));
    kb.arrayStore(line1, kb.v(col), kb.v(cur));
    // Shift the 3x3 window left.
    kb.assign(p00, kb.v(p01));
    kb.assign(p01, kb.v(p02));
    kb.assign(p02, kb.v(top));
    kb.assign(p10, kb.v(p11));
    kb.assign(p11, kb.v(p12));
    kb.assign(p12, kb.v(mid));
    kb.assign(p20, kb.v(p21));
    kb.assign(p21, kb.v(p22));
    kb.assign(p22, kb.v(cur));
    // |Gx| and |Gy| via positive/negative tap sums.
    const auto absDiff = [&](ExprId a, ExprId b) {
        return kb.select(kb.gt(a, b), kb.sub(a, b), kb.sub(b, a));
    };
    const ExprId gxPos =
        kb.add(kb.add(kb.v(p02), kb.shl(kb.v(p12), kb.c(1))), kb.v(p22));
    const ExprId gxNeg =
        kb.add(kb.add(kb.v(p00), kb.shl(kb.v(p10), kb.c(1))), kb.v(p20));
    kb.assign(gx, absDiff(gxPos, gxNeg));
    const ExprId gyPos =
        kb.add(kb.add(kb.v(p20), kb.shl(kb.v(p21), kb.c(1))), kb.v(p22));
    const ExprId gyNeg =
        kb.add(kb.add(kb.v(p00), kb.shl(kb.v(p01), kb.c(1))), kb.v(p02));
    kb.assign(gy, absDiff(gyPos, gyNeg));
    kb.assign(mag, kb.bin(hls::BinOp::Min, kb.add(kb.v(gx), kb.v(gy)), kb.c(255)));
    // Border handling: emit 0 until the window is fully inside the image.
    const ExprId valid =
        kb.bin(hls::BinOp::And, kb.ge(kb.v(row), kb.c(2)), kb.ge(kb.v(col), kb.c(2)));
    kb.write(out, kb.select(valid, kb.v(mag), kb.c(0)));
    // Column/row bookkeeping.
    kb.assign(atEol, kb.eq(kb.v(col), kb.c(width - 1)));
    kb.assign(row, kb.add(kb.v(row), kb.v(atEol)));
    kb.assign(col, kb.select(kb.v(atEol), kb.c(0), kb.add(kb.v(col), kb.c(1))));
    kb.endLoop();
    return kb.build();
}

GrayImage sobelRef(const GrayImage& input) {
    GrayImage out(input.width(), input.height());
    SobelWindowModel window(input.width());
    std::size_t k = 0;
    for (unsigned r = 0; r < input.height(); ++r) {
        for (unsigned c = 0; c < input.width(); ++c) {
            out.pixels()[k++] = window.push(input.at(c, r), c, r);
        }
    }
    return out;
}

} // namespace socgen::apps
