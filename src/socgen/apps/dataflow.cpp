#include "socgen/apps/dataflow.hpp"

#include "socgen/apps/otsu.hpp"

namespace socgen::apps {

hls::ProcessNetwork makeOtsuDataflowNetwork(std::int64_t pixelCount,
                                            std::uint32_t segChannelDepth) {
    using namespace hls;
    ProcessNetwork net("otsuDataflow");
    net.addProcess("grayScale", makeGrayScaleKernel(pixelCount));
    net.addProcess("computeHistogram", makeHistogramKernel(pixelCount));
    net.addProcess("halfProbability", makeOtsuKernel(pixelCount));
    net.addProcess("segment", makeBinarizationKernel(pixelCount));

    net.connect(NetworkChannel{"grayToHist", "grayScale", "imageOutCH",
                               "computeHistogram", "grayScaleImage", 8, 16, 0});
    net.connect(NetworkChannel{"histToOtsu", "computeHistogram", "histogram",
                               "halfProbability", "histogram", 32, 16, 0});
    net.connect(NetworkChannel{"otsuToSeg", "halfProbability", "probability", "segment",
                               "otsuThreshold", 32, 2, 0});
    // The image bypass: every gray pixel waits here until the threshold
    // arrives, so the channel must hold the whole image (see header).
    net.connect(NetworkChannel{"grayToSeg", "grayScale", "imageOutSEG", "segment",
                               "grayScaleImage", 8, segChannelDepth, 0});

    net.exportPort("imageIn", "grayScale", "imageIn");
    net.exportPort("segmentedGrayImage", "segment", "segmentedGrayImage");
    return net;
}

std::map<std::string, hls::Directives> otsuDataflowDirectives() {
    return {
        {"grayScale", grayScaleDirectives()},
        {"computeHistogram", histogramDirectives()},
        {"halfProbability", otsuDirectives()},
        {"segment", binarizationDirectives()},
    };
}

namespace {

hls::Kernel makeTriadProducer(std::int64_t sampleCount) {
    using namespace hls;
    KernelBuilder kb("produce");
    const PortId out = kb.streamOut("data", 32);
    const VarId i = kb.var("i", 32);
    kb.forLoop(i, kb.c(sampleCount));
    kb.write(out, kb.add(kb.mul(kb.v(i), kb.c(37)), kb.c(11)));
    kb.endLoop();
    return kb.build();
}

hls::Kernel makeTriadFilter(std::int64_t sampleCount) {
    using namespace hls;
    KernelBuilder kb("filter");
    const PortId in = kb.streamIn("din", 32);
    const PortId out = kb.streamOut("dout", 32);
    const VarId i = kb.var("i", 32);
    const VarId cur = kb.var("cur", 32);
    kb.forLoop(i, kb.c(sampleCount));
    kb.assign(cur, kb.read(in));
    kb.write(out, kb.add(kb.v(cur), kb.shr(kb.v(cur), kb.c(3))));
    kb.endLoop();
    return kb.build();
}

hls::Kernel makeTriadConsumer(std::int64_t sampleCount) {
    using namespace hls;
    KernelBuilder kb("consume");
    const PortId in = kb.streamIn("din", 32);
    const PortId sum = kb.scalarOut("checksum", 32);
    const VarId i = kb.var("i", 32);
    const VarId acc = kb.var("acc", 32);
    kb.assign(acc, kb.c(0));
    kb.forLoop(i, kb.c(sampleCount));
    kb.assign(acc, kb.add(kb.v(acc), kb.read(in)));
    kb.endLoop();
    kb.setResult(sum, kb.v(acc));
    return kb.build();
}

} // namespace

hls::ProcessNetwork makeStreamTriadNetwork(std::int64_t sampleCount) {
    using namespace hls;
    ProcessNetwork net("streamTriad");
    net.addProcess("produce", makeTriadProducer(sampleCount));
    net.addProcess("filter", makeTriadFilter(sampleCount));
    net.addProcess("consume", makeTriadConsumer(sampleCount));
    net.connect(NetworkChannel{"raw", "produce", "data", "filter", "din", 32, 8, 0});
    net.connect(NetworkChannel{"cooked", "filter", "dout", "consume", "din", 32, 8, 0});
    net.exportPort("checksum", "consume", "checksum");
    return net;
}

std::uint32_t streamTriadChecksumRef(std::int64_t sampleCount) {
    std::uint32_t acc = 0;
    for (std::int64_t i = 0; i < sampleCount; ++i) {
        const std::uint32_t raw =
            static_cast<std::uint32_t>(i) * 37u + 11u;
        acc += raw + (raw >> 3);
    }
    return acc;
}

namespace {

/// The three per-sample transforms of the tri-stage pipeline. Stage k
/// computes y = (x + kAddend[k]) * 3; all arithmetic wraps at 32 bits.
constexpr std::int64_t kAddend[3] = {1, 5, 9};

} // namespace

hls::Kernel makeStreamStageKernel(std::string name, std::int64_t sampleCount,
                                  std::int64_t addend) {
    using namespace hls;
    KernelBuilder kb(std::move(name));
    const PortId in = kb.streamIn("din", 32);
    const PortId out = kb.streamOut("dout", 32);
    const VarId i = kb.var("i", 32);
    kb.forLoop(i, kb.c(sampleCount));
    kb.write(out, kb.mul(kb.add(kb.read(in), kb.c(addend)), kb.c(3)));
    kb.endLoop();
    return kb.build();
}

hls::Kernel makeFusedTriStageKernel(std::int64_t sampleCount) {
    using namespace hls;
    KernelBuilder kb("triStage");
    const PortId in = kb.streamIn("din", 32);
    const PortId out = kb.streamOut("dout", 32);
    const ArrayId buf0 = kb.array("buf0", static_cast<std::size_t>(sampleCount), 32);
    const ArrayId buf1 = kb.array("buf1", static_cast<std::size_t>(sampleCount), 32);
    const VarId i = kb.var("i", 32);
    const VarId j = kb.var("j", 32);
    const VarId k = kb.var("k", 32);
    kb.forLoop(i, kb.c(sampleCount));
    kb.arrayStore(buf0, kb.v(i), kb.mul(kb.add(kb.read(in), kb.c(kAddend[0])), kb.c(3)));
    kb.endLoop();
    kb.forLoop(j, kb.c(sampleCount));
    kb.arrayStore(buf1, kb.v(j),
                  kb.mul(kb.add(kb.load(buf0, kb.v(j)), kb.c(kAddend[1])), kb.c(3)));
    kb.endLoop();
    kb.forLoop(k, kb.c(sampleCount));
    kb.write(out, kb.mul(kb.add(kb.load(buf1, kb.v(k)), kb.c(kAddend[2])), kb.c(3)));
    kb.endLoop();
    return kb.build();
}

hls::ProcessNetwork makeStreamPipelineNetwork(std::int64_t sampleCount) {
    using namespace hls;
    ProcessNetwork net("triStagePipe");
    net.addProcess("stage0", makeStreamStageKernel("stage0", sampleCount, kAddend[0]));
    net.addProcess("stage1", makeStreamStageKernel("stage1", sampleCount, kAddend[1]));
    net.addProcess("stage2", makeStreamStageKernel("stage2", sampleCount, kAddend[2]));
    net.connect(NetworkChannel{"s01", "stage0", "dout", "stage1", "din", 32, 8, 0});
    net.connect(NetworkChannel{"s12", "stage1", "dout", "stage2", "din", 32, 8, 0});
    net.exportPort("din", "stage0", "din");
    net.exportPort("dout", "stage2", "dout");
    return net;
}

std::vector<std::uint32_t> triStageRef(const std::vector<std::uint32_t>& input) {
    std::vector<std::uint32_t> out;
    out.reserve(input.size());
    for (const std::uint32_t x : input) {
        std::uint32_t y = x;
        for (const std::int64_t a : kAddend) {
            y = (y + static_cast<std::uint32_t>(a)) * 3u;
        }
        out.push_back(y);
    }
    return out;
}

} // namespace socgen::apps
