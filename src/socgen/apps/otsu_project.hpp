#pragma once

#include "socgen/apps/image.hpp"
#include "socgen/apps/otsu.hpp"
#include "socgen/core/flow.hpp"
#include "socgen/core/htg.hpp"
#include "socgen/soc/system_sim.hpp"

#include <array>
#include <functional>
#include <string>

namespace socgen::apps {

/// Names of the four hardware-capable pipeline stages, in dataflow order
/// (the row labels of the paper's Table I map onto the Arch4 node names:
/// grayScale, histogram -> computeHistogram, otsuMethod ->
/// halfProbability, binarization -> segment).
inline constexpr std::array<const char*, 4> kOtsuStages = {
    "grayScale", "computeHistogram", "halfProbability", "segment"};

/// Builds the case study's two-level HTG (Figure 8): readImage ->
/// [grayScale -> computeHistogram -> halfProbability -> segment] ->
/// writeImage, where the middle four tasks form a dataflow phase.
///
/// Note on the gray image path: the Arch4 listing in the paper links
/// grayScale's imageOutSEG directly to segment's grayScaleImage. A
/// bounded-FIFO pipeline deadlocks on that link because segment cannot
/// consume pixels until the threshold (which needs the whole image) is
/// ready; our HTG therefore stores the gray image to DDR through 'soc
/// and re-streams it for segmentation — same tasks, same interfaces, but
/// executable with realistic FIFO depths. DESIGN.md documents this; a
/// test demonstrates the deadlock on the literal paper topology.
[[nodiscard]] core::Htg makeOtsuHtg();

/// Table I's four partitions (arch = 1..4).
[[nodiscard]] core::HtgPartition otsuArchPartition(int arch);

/// A partition from a 4-bit mask over kOtsuStages (bit i = stage i in
/// hardware) — used by the DSE explorer.
[[nodiscard]] core::HtgPartition otsuMaskPartition(unsigned mask);

/// Kernel library for all four stages at a given image size.
[[nodiscard]] hls::KernelLibrary makeOtsuKernelLibrary(std::int64_t pixelCount);

/// Per-kernel directive map for FlowOptions::kernelDirectives.
[[nodiscard]] std::map<std::string, hls::Directives> otsuKernelDirectives();

/// Convenience: flow options preconfigured for the case study.
[[nodiscard]] core::FlowOptions otsuFlowOptions();

/// Runs the generated architecture end to end on the simulated board:
/// loads the RGB image into DDR, enqueues the PS program implied by the
/// partition (software tasks with modelled cost, DMA transfers for
/// hardware stages), simulates until idle, and returns the output image.
class OtsuSystemRunner {
public:
    struct Result {
        GrayImage output;
        std::uint64_t cycles = 0;
        std::string report;
    };

    /// `flow` must outlive the runner; the partition is copied.
    OtsuSystemRunner(const core::FlowResult& flow, core::HtgPartition partition,
                     soc::SystemOptions options = {});

    [[nodiscard]] Result run(const RgbImage& image);

    /// As run(), but calls `configure` on the freshly built simulator
    /// before any PS program is enqueued — the hook the resilience
    /// harness uses to arm a FaultInjector against the system.
    [[nodiscard]] Result run(const RgbImage& image,
                             const std::function<void(soc::SystemSimulator&)>& configure);

private:
    struct SocLink {
        std::string dma;
        int route = -1;
    };

    /// Finds the DMA channel serving a 'soc link touching (node, port).
    [[nodiscard]] SocLink socLinkFor(const std::string& node, const std::string& port,
                                     bool nodeIsSource) const;
    [[nodiscard]] bool isHw(const std::string& stage) const;

    const core::FlowResult& flow_;
    core::HtgPartition partition_;
    soc::SystemOptions options_;
};

} // namespace socgen::apps
