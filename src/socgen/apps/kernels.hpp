#pragma once

#include "socgen/apps/image.hpp"
#include "socgen/hls/ir.hpp"

#include <cstdint>
#include <vector>

namespace socgen::apps {

/// Kernels of the paper's running example (Figure 4): ADD and MUL are
/// memory-mapped AXI-Lite cores configured by the GPP; GAUSS and EDGE
/// form an AXI-Stream image-processing pipeline.

/// ADD: i "A", i "B", i "return" — return = A + B.
[[nodiscard]] hls::Kernel makeAddKernel();

/// MUL: i "A", i "B", i "return" — return = A * B.
[[nodiscard]] hls::Kernel makeMulKernel();

/// GAUSS: is "in", is "out" — causal 3-tap binomial smoothing
/// y[i] = (x[i-2] + 2 x[i-1] + x[i]) >> 2 over `sampleCount` samples.
[[nodiscard]] hls::Kernel makeGaussKernel(std::int64_t sampleCount);

/// EDGE: is "in", is "out" — first-difference edge detector
/// y[i] = |x[i] - x[i-1]|.
[[nodiscard]] hls::Kernel makeEdgeKernel(std::int64_t sampleCount);

/// SOBEL: is "in", is "out" — 2D 3x3 Sobel gradient magnitude over a
/// width x height gray image streamed row-major. Uses two BRAM line
/// buffers and a 3x3 register window (the classic HLS streaming-filter
/// structure); the window trails the input by one row and one column, so
/// output pixel k is the gradient of the window ending at input pixel k
/// (border pixels emit 0).
[[nodiscard]] hls::Kernel makeSobelKernel(std::int64_t width, std::int64_t height);

/// Software references for verification.
[[nodiscard]] std::vector<std::uint8_t> gaussRef(const std::vector<std::uint8_t>& input);
[[nodiscard]] std::vector<std::uint8_t> edgeRef(const std::vector<std::uint8_t>& input);

/// Reference with exactly the kernel's windowing semantics.
[[nodiscard]] GrayImage sobelRef(const GrayImage& input);

} // namespace socgen::apps
