#include "socgen/apps/image.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"

#include <cctype>
#include <sstream>

namespace socgen::apps {

GrayImage::GrayImage(unsigned width, unsigned height, std::uint8_t fill)
    : width_(width), height_(height), pixels_(pixelCount(), fill) {}

std::uint8_t GrayImage::at(unsigned x, unsigned y) const {
    require(x < width_ && y < height_, "pixel out of range");
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

void GrayImage::set(unsigned x, unsigned y, std::uint8_t value) {
    require(x < width_ && y < height_, "pixel out of range");
    pixels_[static_cast<std::size_t>(y) * width_ + x] = value;
}

RgbImage::RgbImage(unsigned width, unsigned height)
    : width_(width), height_(height), pixels_(pixelCount(), 0) {}

std::uint32_t RgbImage::packedAt(unsigned x, unsigned y) const {
    require(x < width_ && y < height_, "pixel out of range");
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

void RgbImage::set(unsigned x, unsigned y, std::uint8_t r, std::uint8_t g, std::uint8_t b) {
    require(x < width_ && y < height_, "pixel out of range");
    pixels_[static_cast<std::size_t>(y) * width_ + x] =
        (static_cast<std::uint32_t>(r) << 16) | (static_cast<std::uint32_t>(g) << 8) | b;
}

std::vector<std::uint32_t> RgbImage::packedPixels() const {
    return pixels_;
}

// ---------------------------------------------------------------------------
// PGM / PPM

std::string encodePgm(const GrayImage& image) {
    std::ostringstream out;
    out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
    out.write(reinterpret_cast<const char*>(image.pixels().data()),
              static_cast<std::streamsize>(image.pixels().size()));
    return out.str();
}

namespace {

/// Reads the next whitespace/comment-delimited token of a PNM header.
std::string nextHeaderToken(std::string_view data, std::size_t& pos) {
    while (pos < data.size()) {
        const char c = data[pos];
        if (c == '#') {
            while (pos < data.size() && data[pos] != '\n') {
                ++pos;
            }
        } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            ++pos;
        } else {
            break;
        }
    }
    const std::size_t start = pos;
    while (pos < data.size() &&
           std::isspace(static_cast<unsigned char>(data[pos])) == 0) {
        ++pos;
    }
    if (start == pos) {
        throw Error("pgm: truncated header");
    }
    return std::string(data.substr(start, pos - start));
}

} // namespace

GrayImage decodePgm(std::string_view data) {
    std::size_t pos = 0;
    const std::string magic = nextHeaderToken(data, pos);
    if (magic != "P5" && magic != "P2") {
        throw Error("pgm: unsupported magic '" + magic + "'");
    }
    const unsigned width = static_cast<unsigned>(std::stoul(nextHeaderToken(data, pos)));
    const unsigned height = static_cast<unsigned>(std::stoul(nextHeaderToken(data, pos)));
    const unsigned maxval = static_cast<unsigned>(std::stoul(nextHeaderToken(data, pos)));
    if (maxval == 0 || maxval > 255) {
        throw Error("pgm: unsupported maxval");
    }
    GrayImage image(width, height);
    if (magic == "P5") {
        ++pos;  // single whitespace after maxval
        if (data.size() - pos < image.pixelCount()) {
            throw Error("pgm: truncated pixel data");
        }
        for (std::size_t i = 0; i < image.pixelCount(); ++i) {
            image.pixels()[i] = static_cast<std::uint8_t>(data[pos + i]);
        }
    } else {
        for (std::size_t i = 0; i < image.pixelCount(); ++i) {
            image.pixels()[i] =
                static_cast<std::uint8_t>(std::stoul(nextHeaderToken(data, pos)));
        }
    }
    return image;
}

GrayImage readPgm(const std::string& path) {
    return decodePgm(readTextFile(path));
}

void writePgm(const std::string& path, const GrayImage& image) {
    writeBinaryFile(path, encodePgm(image));
}

void writePpm(const std::string& path, const RgbImage& image) {
    std::ostringstream out;
    out << "P6\n" << image.width() << ' ' << image.height() << "\n255\n";
    for (unsigned y = 0; y < image.height(); ++y) {
        for (unsigned x = 0; x < image.width(); ++x) {
            const std::uint32_t px = image.packedAt(x, y);
            out.put(static_cast<char>((px >> 16) & 0xFF));
            out.put(static_cast<char>((px >> 8) & 0xFF));
            out.put(static_cast<char>(px & 0xFF));
        }
    }
    writeBinaryFile(path, out.str());
}

// ---------------------------------------------------------------------------
// Synthetic scenes

namespace {

/// xorshift64* deterministic PRNG.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(seed == 0 ? 0x9E3779B97F4A7C15ULL : seed) {}

    std::uint64_t next() {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545F4914F6CDD1DULL;
    }

    /// Uniform in [lo, hi].
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
        return lo + next() % (hi - lo + 1);
    }

private:
    std::uint64_t state_;
};

} // namespace

RgbImage makeSyntheticScene(unsigned width, unsigned height, std::uint64_t seed) {
    Rng rng(seed);
    RgbImage image(width, height);
    // Dark textured background.
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            const auto base = static_cast<std::uint8_t>(28 + rng.range(0, 24));
            image.set(x, y, base, static_cast<std::uint8_t>(base + rng.range(0, 6)),
                      static_cast<std::uint8_t>(base / 2));
        }
    }
    // Bright elliptical blobs (the "foreground" objects).
    const unsigned blobs = 3 + static_cast<unsigned>(rng.range(0, 2));
    for (unsigned b = 0; b < blobs; ++b) {
        const auto cx = static_cast<long>(rng.range(width / 6, width - width / 6));
        const auto cy = static_cast<long>(rng.range(height / 6, height - height / 6));
        const auto rx = static_cast<long>(rng.range(width / 12, width / 5));
        const auto ry = static_cast<long>(rng.range(height / 12, height / 5));
        for (long y = cy - ry; y <= cy + ry; ++y) {
            for (long x = cx - rx; x <= cx + rx; ++x) {
                if (x < 0 || y < 0 || x >= static_cast<long>(width) ||
                    y >= static_cast<long>(height)) {
                    continue;
                }
                const double dx = static_cast<double>(x - cx) / static_cast<double>(rx);
                const double dy = static_cast<double>(y - cy) / static_cast<double>(ry);
                if (dx * dx + dy * dy <= 1.0) {
                    const auto lum = static_cast<std::uint8_t>(185 + rng.range(0, 60));
                    image.set(static_cast<unsigned>(x), static_cast<unsigned>(y), lum,
                              static_cast<std::uint8_t>(lum - rng.range(0, 20)),
                              static_cast<std::uint8_t>(lum - rng.range(0, 40)));
                }
            }
        }
    }
    return image;
}

GrayImage makeSyntheticGrayScene(unsigned width, unsigned height, std::uint64_t seed) {
    const RgbImage rgb = makeSyntheticScene(width, height, seed);
    GrayImage gray(width, height);
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            const std::uint32_t px = rgb.packedAt(x, y);
            const std::uint32_t r = (px >> 16) & 0xFF;
            const std::uint32_t g = (px >> 8) & 0xFF;
            const std::uint32_t b = px & 0xFF;
            gray.set(x, y, static_cast<std::uint8_t>((r * 77 + g * 150 + b * 29) >> 8));
        }
    }
    return gray;
}

} // namespace socgen::apps
